module hacfs

go 1.22
