// Package hacfs is a Go implementation of HAC ("Hierarchy And
// Content"), the file system of Gopal & Manber's OSDI 1999 paper
// "Integrating Content-Based Access Mechanisms with Hierarchical File
// Systems".
//
// HAC combines name-based and content-based access to files: it is a
// complete hierarchical file system in which any directory may carry a
// query. Such semantic directories are populated with symbolic links to
// the files matching the query, yet remain ordinary directories — files
// and links can be added, removed, renamed and the system keeps query
// results consistent with the user's manual edits (the paper's scope
// consistency), re-indexes lazily (data consistency), and can import
// results from remote query systems through semantic mount points.
//
// # Quick start
//
//	fs := hacfs.NewVolume()                       // in-memory HAC volume
//	fs.MkdirAll("/notes")
//	fs.WriteFile("/notes/a.txt", []byte("fingerprint matching"))
//	fs.Reindex("/")                               // index the volume
//	fs.SemDir("/fp", "fingerprint")               // semantic directory
//	entries, _ := fs.ReadDir("/fp")               // links to matches
//
// # Options
//
// Volumes and evaluation passes are configured with functional options:
//
//	fs := hacfs.New(hacfs.NewMemFS(),
//	        hacfs.WithParallelism(0),  // 0 = NumCPU workers
//	        hacfs.WithVerify(true))
//	fs.Reindex("/")                               // parallel tokenize
//	fs.SyncAll(hacfs.WithParallelism(1))          // serial, this pass only
//
// Options given to New become the volume's defaults; options given to
// Sync, SyncAll or Reindex override them for that pass. The struct-based
// constructors (NewVolumeOver with Options) remain for compatibility.
//
// # Errors
//
// Failures carry the failing operation and path as a *PathError;
// errors.As recovers it while errors.Is keeps matching the sentinels:
//
//	err := fs.SetQuery("/plain", "q")
//	var pe *hacfs.PathError
//	errors.As(err, &pe)                  // pe.Path == "/plain"
//	errors.Is(err, hacfs.ErrNotSemantic) // true
//
// The package is a thin facade: the implementation lives in internal
// packages (internal/hac for the HAC layer, internal/vfs for the
// substrate, internal/remote for the network protocol), re-exported
// here as aliases so downstream users have one import path.
package hacfs

import (
	"io"
	"log"
	"net"

	"hacfs/internal/catalog"
	"hacfs/internal/hac"
	"hacfs/internal/index"
	"hacfs/internal/obs"
	"hacfs/internal/remote"
	"hacfs/internal/remotefs"
	"hacfs/internal/vfs"
)

// FS is a HAC file system. It implements FileSystem (all hierarchical
// operations) and adds the semantic operations: SemDir, SetQuery,
// Sync, Reindex, SemanticMount, Links, Extract, and so on.
type FS = hac.FS

// Options configures a HAC volume (struct form; the functional Option
// values below are the preferred interface).
type Options = hac.Options

// Option is a functional configuration value accepted by New and, for
// per-pass overrides, by FS.Sync, FS.SyncAll and FS.Reindex.
type Option = hac.Option

// Functional options.
var (
	// WithParallelism sets the worker count for Reindex tokenization
	// and within-level query re-evaluation (0 = NumCPU, 1 = serial).
	WithParallelism = hac.WithParallelism
	// WithVerify toggles Glimpse-style verification of query matches.
	WithVerify = hac.WithVerify
	// WithContext bounds one evaluation pass with a context.
	WithContext = hac.WithContext
	// WithAttrCacheSize bounds the attribute cache (construction only).
	WithAttrCacheSize = hac.WithAttrCacheSize
	// WithRemoteTimeout bounds each remote-namespace RPC (construction
	// only; default 10s).
	WithRemoteTimeout = hac.WithRemoteTimeout
	// WithTransducer registers an attribute transducer (construction
	// only).
	WithTransducer = hac.WithTransducer
	// WithObserver directs a volume's metrics and spans to an Observer
	// (construction only). nil selects the process-wide DefaultObserver;
	// DiscardObserver disables recording.
	WithObserver = hac.WithObserver
)

// SearchResult is the paged result handle returned by FS.Search:
// cursor iteration with Next/More/Cursor, eager collection with All,
// and plan introspection with Explain and Stats.
type SearchResult = hac.SearchResult

// SearchStats summarizes one Search evaluation (match count, cache
// hit, planner leaf count, postings skipped by scope pruning).
type SearchStats = hac.SearchStats

// SearchOption configures one FS.Search call.
type SearchOption = hac.SearchOption

// Search options.
var (
	// WithScope restricts a search to a directory subtree (default "/").
	WithScope = hac.WithScope
	// WithPageSize sets how many paths each Next page holds.
	WithPageSize = hac.WithPageSize
	// WithLimit caps the total number of matches returned.
	WithLimit = hac.WithLimit
	// WithAfter resumes iteration from a cursor of a previous result.
	WithAfter = hac.WithAfter
	// WithoutCache bypasses the volume's query-result cache.
	WithoutCache = hac.WithoutCache
)

// DefaultSearchPageSize is the page size Search uses unless overridden
// with WithPageSize.
const DefaultSearchPageSize = hac.DefaultPageSize

// PathError records the operation and path of a failed HAC or substrate
// call. Recover it with errors.As; the wrapped sentinel remains
// matchable with errors.Is.
type PathError = vfs.PathError

// FileSystem is the hierarchical operation set shared by HAC volumes
// and raw substrates.
type FileSystem = vfs.FileSystem

// File is an open file handle.
type File = vfs.File

// Info describes a file system object.
type Info = vfs.Info

// DirEntry is one directory-listing entry.
type DirEntry = vfs.DirEntry

// MemFS is the in-memory substrate file system.
type MemFS = vfs.MemFS

// Link is a classified symbolic link in a semantic directory.
type Link = hac.Link

// LinkClass is the paper's three-way link classification.
type LinkClass = hac.LinkClass

// The three link classes (§2.3 of the paper).
const (
	Transient  = hac.Transient  // produced by query evaluation
	Permanent  = hac.Permanent  // added explicitly by the user
	Prohibited = hac.Prohibited // deleted by the user; never re-added
)

// Namespace is a remote file or query system that can be semantically
// mounted (§3 of the paper).
type Namespace = hac.Namespace

// ContextNamespace is a Namespace whose calls honor a context; HAC
// bounds such namespaces with the volume's remote timeout during
// evaluation.
type ContextNamespace = hac.ContextNamespace

// NodeType distinguishes files, directories and symlinks in Info and
// DirEntry.
type NodeType = vfs.NodeType

// The node types.
const (
	FileType    = vfs.TypeFile
	DirType     = vfs.TypeDir
	SymlinkType = vfs.TypeSymlink
)

// Open-flag constants for OpenFile.
const (
	ORead   = vfs.ORead
	OWrite  = vfs.OWrite
	OCreate = vfs.OCreate
	OTrunc  = vfs.OTrunc
	OAppend = vfs.OAppend
	OExcl   = vfs.OExcl
)

// Common error sentinels, matchable with errors.Is.
var (
	ErrNotExist    = vfs.ErrNotExist
	ErrExist       = vfs.ErrExist
	ErrNotDir      = vfs.ErrNotDir
	ErrIsDir       = vfs.ErrIsDir
	ErrNotEmpty    = vfs.ErrNotEmpty
	ErrNotSemantic = hac.ErrNotSemantic
	ErrDependedOn  = hac.ErrDependedOn
	ErrDanglingRef = hac.ErrDanglingRef
	ErrNoNamespace = hac.ErrNoNamespace
	// ErrCorruptVolume marks a volume image rejected by LoadVolume —
	// truncated, bit-flipped, version-skewed or otherwise undecodable.
	ErrCorruptVolume = hac.ErrCorruptVolume
	// ErrNoSnapshot marks a SaveVolume over a substrate that cannot
	// produce a snapshot (does not implement Snapshotter).
	ErrNoSnapshot = hac.ErrNoSnapshot
	// ErrInjected and ErrCrashed are the fault sentinels produced by a
	// FaultFS substrate.
	ErrInjected = vfs.ErrInjected
	ErrCrashed  = vfs.ErrCrashed
	// ErrQuotaExceeded, ErrBackpressure and ErrShuttingDown are the
	// multi-tenant serving sentinels (DESIGN.md §12): a write past the
	// tenant's byte/document quota, an admission rejected by the
	// in-flight limit (retryable), and a server draining for shutdown.
	// All three travel the remote protocols typed.
	ErrQuotaExceeded = vfs.ErrQuotaExceeded
	ErrBackpressure  = vfs.ErrBackpressure
	ErrShuttingDown  = vfs.ErrShuttingDown
	// ErrShardUnavailable marks a cluster search that lost a shard: no
	// replica of it answered (DESIGN.md §14). Delivered as a
	// *vfs.PathError whose Path names the shard, through both wire
	// protocols.
	ErrShardUnavailable = vfs.ErrShardUnavailable
)

// New layers HAC over a substrate file system, configured by functional
// options — the canonical constructor.
func New(under FileSystem, opts ...Option) *FS {
	return hac.NewWith(under, opts...)
}

// NewVolume returns a HAC file system over a fresh in-memory substrate.
func NewVolume(opts ...Option) *FS {
	return hac.NewWith(vfs.New(), opts...)
}

// NewVolumeOver layers HAC over an existing substrate — any
// FileSystem, including another process's exported volume.
//
// Deprecated: Use New with functional options.
func NewVolumeOver(under FileSystem, opts Options) *FS {
	return hac.New(under, opts)
}

// NewMemFS returns a bare in-memory hierarchical file system (the
// substrate without the HAC layer).
func NewMemFS() *MemFS { return vfs.New() }

// Snapshotter is implemented by substrates that can export a full
// snapshot of their tree; FS.SaveVolume requires one.
type Snapshotter = vfs.Snapshotter

// FaultFS wraps a substrate with deterministic, seed-driven fault
// injection — per-operation error rates, crash points that freeze the
// store, torn writes, latency — for crash-consistency testing (see
// DESIGN.md §8).
type FaultFS = vfs.FaultFS

// FaultConfig configures a FaultFS.
type FaultConfig = vfs.FaultConfig

// FaultStats are a FaultFS's per-operation counters.
type FaultStats = vfs.FaultStats

// NewFaultFS wraps under with fault injection.
func NewFaultFS(under FileSystem, cfg FaultConfig) *FaultFS {
	return vfs.NewFaultFS(under, cfg)
}

// CrashWriter is an io.Writer that fails permanently after a byte
// limit, for simulating a crash during a volume save.
type CrashWriter = vfs.CrashWriter

// DialRemote connects to a remote CBA server (cmd/hacindexd) and
// returns a Namespace that can be passed to FS.SemanticMount. name
// becomes the namespace name inside the volume.
func DialRemote(name, addr string) *remote.Client {
	return remote.Dial(name, addr)
}

// ServeIndex starts serving the tree at root in fsys over the remote
// CBA protocol on addr, blocking until the listener fails. It is the
// library form of cmd/hacindexd.
func ServeIndex(fsys FileSystem, root, addr string, logger *log.Logger) error {
	backend, err := remote.NewIndexBackend(fsys, root)
	if err != nil {
		return err
	}
	return remote.NewServer(backend, logger).ListenAndServe(addr)
}

// Transducer extracts attribute terms (such as "from:alice") from a
// document, in the spirit of SFS transducers. Register one with
// FS.RegisterTransducer.
type Transducer = index.Transducer

// Built-in transducers.
var (
	EmailTransducer  = index.EmailTransducer
	PathTransducer   = index.PathTransducer
	SourceTransducer = index.SourceTransducer
)

// Scheduler periodically re-runs the data-consistency pass; see
// FS.StartAutoReindex.
type Scheduler = hac.Scheduler

// LoadVolume restores a volume saved with FS.SaveVolume, rebuilding the
// index and settling all consistency. Corrupted or truncated images
// fail with an error wrapping ErrCorruptVolume, never a panic.
func LoadVolume(r io.Reader, opts Options) (*FS, error) {
	return hac.LoadVolume(r, opts)
}

// LoadVolumeFile restores a volume from a file written by
// FS.SaveVolumeFile (or any reader-based save).
func LoadVolumeFile(path string, opts Options) (*FS, error) {
	return hac.LoadVolumeFile(path, opts)
}

// DialFS connects to a remote volume served by cmd/hacvold (or
// ServeFS) and returns a FileSystem view of it. The result composes
// with everything local: mount it into a MemFS with Mount, or use it
// as the substrate of a local HAC layer.
func DialFS(addr string) *remotefs.Client {
	return remotefs.Dial(addr)
}

// ServeFS exports a file system — typically a live HAC volume — on
// addr over the remote file-system protocol, blocking until the
// listener fails. It is the library form of cmd/hacvold.
func ServeFS(fsys FileSystem, addr string, logger *log.Logger) error {
	return remotefs.NewServer(fsys, logger).ListenAndServe(addr)
}

// CatalogEntry is one published semantic directory in a catalog.
type CatalogEntry = catalog.Entry

// Catalog is the §3.2 central database of published semantic
// directories.
type Catalog = catalog.Catalog

// NewCatalog returns an empty catalog; serve it with ServeCatalog or
// use it in-process.
func NewCatalog() *Catalog { return catalog.New() }

// DialCatalog connects to a catalog server (cmd/haccatd).
func DialCatalog(addr string) *catalog.Client { return catalog.Dial(addr) }

// ServeCatalog exposes a catalog on addr, blocking until the listener
// fails. It is the library form of cmd/haccatd.
func ServeCatalog(cat *Catalog, addr string, logger *log.Logger) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return catalog.NewServer(cat, logger).Serve(l)
}

// Observer bundles a metrics Registry and a span Tracer — the sink
// every instrumented layer records into. Inject one per volume with
// WithObserver, or share the process-wide DefaultObserver.
type Observer = obs.Observer

// Registry is a metrics registry: counters, gauges and fixed-bucket
// histograms with Prometheus-text and expvar exposition.
type Registry = obs.Registry

// Tracer retains recent operation spans in a bounded ring buffer.
type Tracer = obs.Tracer

// Span is one traced operation (Sync pass, per-directory evaluation).
type Span = obs.Span

// NewObserver returns an observer with a fresh registry and tracer,
// isolated from the process-wide default.
func NewObserver() *Observer { return obs.NewObserver() }

// DefaultObserver returns the process-wide observer — the one behind
// the daemons' -debug-addr endpoints and every volume built without
// WithObserver.
func DefaultObserver() *Observer { return obs.Default() }

// DiscardObserver returns the no-op observer: instrumented code runs
// unchanged but records nothing (one nil check per record).
func DiscardObserver() *Observer { return obs.Discard() }

// ServeDebug starts the observability HTTP server (Prometheus /metrics,
// /debug/vars, /debug/pprof, /debug/spans) for o on addr — the library
// form of the daemons' -debug-addr flag. The returned listener owns the
// server; closing it stops serving. addr may be ":0".
func ServeDebug(addr string, o *Observer) (net.Listener, error) {
	return obs.Serve(addr, o)
}

// Walk traverses a file system tree depth-first in name order, without
// following symlinks.
func Walk(fsys FileSystem, root string, fn vfs.WalkFunc) error {
	return vfs.Walk(fsys, root, fn)
}

// Files lists all regular files under root, sorted.
func Files(fsys FileSystem, root string) ([]string, error) {
	return vfs.Files(fsys, root)
}
