package hacfs_test

import (
	"fmt"
	"log"

	"hacfs"
)

// The canonical loop: index a volume, attach a query to a directory,
// tune the result by hand, and let a reindex settle new files.
func Example() {
	fs := hacfs.NewVolume()
	fs.MkdirAll("/notes")
	fs.WriteFile("/notes/pie.txt", []byte("apple pie recipe"))
	fs.WriteFile("/notes/bread.txt", []byte("banana bread recipe"))
	if _, err := fs.Reindex("/"); err != nil {
		log.Fatal(err)
	}

	if err := fs.MkSemDir("/recipes", "recipe"); err != nil {
		log.Fatal(err)
	}
	entries, _ := fs.ReadDir("/recipes")
	for _, e := range entries {
		fmt.Println(e.Name)
	}
	// Output:
	// bread.txt
	// pie.txt
}

// Deleting a query-produced link prohibits it: it never silently
// returns, even across reindexing.
func ExampleFS_Remove() {
	fs := hacfs.NewVolume()
	fs.MkdirAll("/docs")
	fs.WriteFile("/docs/a.txt", []byte("apple"))
	fs.WriteFile("/docs/b.txt", []byte("apple too"))
	fs.Reindex("/")
	fs.MkSemDir("/sel", "apple")

	fs.Remove("/sel/a.txt") // the user's deletion is remembered
	fs.Reindex("/")         // ...and survives the next consistency pass

	links, _ := fs.Links("/sel")
	for _, l := range links {
		fmt.Printf("%s %s\n", l.Class, l.Target)
	}
	// Output:
	// prohibited /docs/a.txt
	// transient /docs/b.txt
}

// Queries can reference other directories (§2.5): the referenced
// directory's current link set — including manual edits — feeds the
// query, and renames never break the reference.
func ExampleFS_MkSemDir_dirReference() {
	fs := hacfs.NewVolume()
	fs.MkdirAll("/docs")
	fs.WriteFile("/docs/one.txt", []byte("apple banana"))
	fs.WriteFile("/docs/two.txt", []byte("apple"))
	fs.Reindex("/")

	fs.MkSemDir("/curated", "apple")
	fs.MkSemDir("/refined", "dir:/curated AND NOT banana")

	fs.Rename("/curated", "/picks") // the reference survives
	fs.Sync("/")

	q, _ := fs.QueryDisplay("/refined")
	fmt.Println(q)
	targets, _ := fs.LinkTargets("/refined")
	fmt.Println(targets[0])
	// Output:
	// (dir:/picks AND (NOT banana))
	// /docs/two.txt
}

// Transducers add typed attribute terms, queryable like words.
func ExampleFS_RegisterTransducer() {
	fs := hacfs.NewVolume()
	fs.RegisterTransducer(".eml", hacfs.EmailTransducer)
	fs.MkdirAll("/mail")
	fs.WriteFile("/mail/m1.eml", []byte("from alice\n\nhello\n"))
	fs.WriteFile("/mail/m2.eml", []byte("from bob\n\nhello\n"))
	fs.Reindex("/")

	fs.MkSemDir("/from-alice", "from:alice")
	targets, _ := fs.LinkTargets("/from-alice")
	fmt.Println(targets)
	// Output:
	// [/mail/m1.eml]
}
