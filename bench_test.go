// Benchmarks that regenerate every table of the paper's evaluation
// (§4). Run with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTableN_* family corresponds to one paper table; the
// derived percentages the paper reports (slowdowns, overheads) are
// printed as custom metrics and tabulated by cmd/hacbench. See
// EXPERIMENTS.md for the paper-vs-measured record.
package hacfs

import (
	"fmt"
	"testing"

	"hacfs/internal/andrew"
	"hacfs/internal/baseline"
	"hacfs/internal/bench"
	"hacfs/internal/bitset"
	"hacfs/internal/corpus"
	"hacfs/internal/hac"
	"hacfs/internal/index"
	"hacfs/internal/vfs"
)

// benchAndrew is the Andrew-tree size used by the Table 1 and Table 2
// benchmarks: 20 directories × 10 files of 4 KB, on the scale of the
// original benchmark's source tree.
var benchAndrew = andrew.Spec{Dirs: 20, FilesPerDir: 10, FileSize: 4096, MakeRounds: 2}

// benchCorpus is the document database for the Table 3 and Table 4
// benchmarks (scaled from the paper's 17000 files / 150 MB; use
// cmd/hacbench -files/-mean to run full size).
var benchCorpus = corpus.Spec{Files: 2000, MeanWords: 150, Seed: 1}

// runAndrew builds the source tree and runs the five phases on fsys.
func runAndrew(b *testing.B, fsys vfs.FileSystem) andrew.Result {
	b.Helper()
	if err := andrew.GenerateSource(fsys, "/src", benchAndrew); err != nil {
		b.Fatal(err)
	}
	res, err := andrew.Run(fsys, "/src", "/dst", benchAndrew)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// ---- Table 1: Andrew Benchmark, UNIX vs HAC -------------------------

func BenchmarkTable1_UNIX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runAndrew(b, vfs.New())
	}
}

func BenchmarkTable1_HAC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runAndrew(b, hac.New(vfs.New(), hac.Options{}))
	}
}

// Per-phase benchmarks so the per-phase overhead pattern of Table 1
// (worst in MakeDir/Copy, least in Make) is directly visible.
func BenchmarkTable1_Phases(b *testing.B) {
	for _, sys := range []string{"UNIX", "HAC"} {
		sys := sys
		b.Run(sys, func(b *testing.B) {
			var acc andrew.Result
			for i := 0; i < b.N; i++ {
				var fsys vfs.FileSystem = vfs.New()
				if sys == "HAC" {
					fsys = hac.New(vfs.New(), hac.Options{})
				}
				res := runAndrew(b, fsys)
				acc.MakeDir += res.MakeDir
				acc.Copy += res.Copy
				acc.Scan += res.Scan
				acc.Read += res.Read
				acc.Make += res.Make
			}
			n := float64(b.N)
			b.ReportMetric(float64(acc.MakeDir.Nanoseconds())/n, "makedir-ns")
			b.ReportMetric(float64(acc.Copy.Nanoseconds())/n, "copy-ns")
			b.ReportMetric(float64(acc.Scan.Nanoseconds())/n, "scan-ns")
			b.ReportMetric(float64(acc.Read.Nanoseconds())/n, "read-ns")
			b.ReportMetric(float64(acc.Make.Nanoseconds())/n, "make-ns")
		})
	}
}

// ---- Table 2: user-level FS slowdowns -------------------------------

func BenchmarkTable2_Jade(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runAndrew(b, baseline.NewJade(vfs.New()))
	}
}

func BenchmarkTable2_Pseudo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := baseline.NewPseudo(vfs.New())
		runAndrew(b, p)
		p.Close()
	}
}

func BenchmarkTable2_HAC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runAndrew(b, hac.New(vfs.New(), hac.Options{}))
	}
}

// ---- Table 3: indexing through HAC vs direct ------------------------

func BenchmarkTable3_IndexDirect(b *testing.B) {
	raw := vfs.New()
	if err := raw.MkdirAll("/db"); err != nil {
		b.Fatal(err)
	}
	if _, err := corpus.Generate(raw, "/db", benchCorpus); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := index.New()
		if _, _, _, err := ix.SyncTree(raw, "/db"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_IndexThroughHAC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fs := hac.New(vfs.New(), hac.Options{})
		if err := fs.MkdirAll("/db"); err != nil {
			b.Fatal(err)
		}
		if _, err := corpus.Generate(fs, "/db", benchCorpus); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := fs.Reindex("/db"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Table 4: smkdir vs direct search, three query classes ----------

func benchTable4(b *testing.B, queryStr string, direct bool) {
	env, err := bench.NewTable4Env(benchCorpus)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if direct {
			if _, err := env.DirectSearch(queryStr); err != nil {
				b.Fatal(err)
			}
			continue
		}
		dir := fmt.Sprintf("/q%d", i)
		if _, err := env.HACSmkdir(dir, queryStr); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := env.Cleanup(dir); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkTable4_Few_Glimpse(b *testing.B)          { benchTable4(b, "markerfew", true) }
func BenchmarkTable4_Few_HAC(b *testing.B)              { benchTable4(b, "markerfew", false) }
func BenchmarkTable4_Intermediate_Glimpse(b *testing.B) { benchTable4(b, "markermid", true) }
func BenchmarkTable4_Intermediate_HAC(b *testing.B)     { benchTable4(b, "markermid", false) }
func BenchmarkTable4_Many_Glimpse(b *testing.B)         { benchTable4(b, "markermany", true) }
func BenchmarkTable4_Many_HAC(b *testing.B)             { benchTable4(b, "markermany", false) }

// ---- Space overheads (§4 in-text) ------------------------------------

func BenchmarkSpaceOverhead(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Space(benchAndrew, 4)
		if err != nil {
			b.Fatal(err)
		}
		last = res.MetaOverheadPct
	}
	b.ReportMetric(last, "meta-overhead-%")
}

func BenchmarkBitmapFootprint(b *testing.B) {
	// The paper's N/8 formula at N = 17000: ~2 KB per semantic dir.
	const n = 17000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bm := bitset.NewBitmap(n)
		for j := 0; j < n; j += 8 {
			bm.Add(uint32(j))
		}
		if bm.SizeBytes() < n/8 {
			b.Fatal("bitmap smaller than N/8")
		}
	}
}

// ---- Ablations -------------------------------------------------------

func BenchmarkAblationOrder_Targeted(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationOrder(300, 4, 12); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationSets(17000, []float64{0.001, 0.01, 0.1, 0.5})
	}
}

// ---- Core-operation micro-benchmarks ---------------------------------

func BenchmarkMkSemDir(b *testing.B) {
	fs := NewVolume()
	if err := fs.MkdirAll("/db"); err != nil {
		b.Fatal(err)
	}
	if _, err := corpus.Generate(fs, "/db", corpus.Spec{Files: 500, Seed: 2}); err != nil {
		b.Fatal(err)
	}
	if _, err := fs.Reindex("/"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := fmt.Sprintf("/s%d", i)
		if err := fs.MkSemDir(dir, "markermid"); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := fs.RemoveAll(dir); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkSyncPropagation(b *testing.B) {
	fs := NewVolume()
	if err := fs.MkdirAll("/db"); err != nil {
		b.Fatal(err)
	}
	if _, err := corpus.Generate(fs, "/db", corpus.Spec{Files: 500, Seed: 2}); err != nil {
		b.Fatal(err)
	}
	if _, err := fs.Reindex("/"); err != nil {
		b.Fatal(err)
	}
	if err := fs.MkSemDir("/a", "markermany"); err != nil {
		b.Fatal(err)
	}
	if err := fs.MkSemDir("/a/b", "markermid"); err != nil {
		b.Fatal(err)
	}
	if err := fs.MkSemDir("/a/b/c", "markerfew"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.Sync("/a"); err != nil {
			b.Fatal(err)
		}
	}
}
