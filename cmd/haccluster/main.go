// Command haccluster is the sharded-cluster coordinator daemon
// (DESIGN.md §14): it fans searches out to a fleet of hacindexd shard
// replicas and serves the merged result over the ordinary remote
// protocols, so any existing client — hacsh, hacbench, another HAC
// volume's semantic mount — can point at it unchanged.
//
// Usage:
//
//	haccluster -map cluster.map [-addr host:port] [-allow-partial]
//
// The shard map file declares shards, replicas and routes (see
// internal/cluster.ParseMap). SIGHUP reloads it in place: in-flight
// searches finish against the old map, live cursors keep draining as
// long as their shard IDs survive.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hacfs/internal/cluster"
	"hacfs/internal/obs"
	"hacfs/internal/remote"
)

var (
	addr         = flag.String("addr", "127.0.0.1:7678", "listen address")
	debugAddr    = flag.String("debug-addr", "", "serve /metrics, /debug/vars, /debug/pprof, /debug/spans, /debug/slow and /debug/trace on this address")
	slowThresh   = flag.Duration("slow-threshold", obs.DefSlowThreshold, "record ops slower than this in /debug/slow (0 disables)")
	mapFile      = flag.String("map", "", "shard map file (required)")
	allowPartial = flag.Bool("allow-partial", false, "serve partial results when a shard is unreachable instead of failing the search")
	timeout      = flag.Duration("timeout", 5*time.Second, "per-replica attempt timeout")
	cooldown     = flag.Duration("cooldown", 2*time.Second, "how long a failed replica is skipped before being probed again")
	pageSize     = flag.Int("page", 512, "per-shard fetch page size")
	waitShards   = flag.Duration("wait-shards", 0, "at startup, wait up to this long for every shard to answer a ping")
	resyncPause  = flag.Duration("resync-stagger", time.Second, "jittered pause between replicas of a shard during a rolling resync (0 = back to back; one replica per shard rebuilds at a time either way)")
)

func main() {
	flag.Parse()
	logger := log.New(os.Stderr, "haccluster: ", log.LstdFlags)
	if *mapFile == "" {
		fmt.Fprintln(os.Stderr, "haccluster: -map is required")
		flag.Usage()
		os.Exit(2)
	}

	m, err := loadMap(*mapFile)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	coord := cluster.New(m, cluster.Options{
		AllowPartial:  *allowPartial,
		Timeout:       *timeout,
		Cooldown:      *cooldown,
		PageSize:      *pageSize,
		ResyncStagger: *resyncPause,
		Observer:      obs.Default(),
	})
	defer coord.Close()
	logger.Printf("coordinating %d shards from %s", len(m.Shards()), *mapFile)

	if *waitShards > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *waitShards)
		for coord.Ping(ctx) != nil && ctx.Err() == nil {
			time.Sleep(50 * time.Millisecond)
		}
		cancel()
		if err := coord.Ping(context.Background()); err != nil {
			logger.Printf("warning: not all shards answered after %s: %v", *waitShards, err)
		}
	}

	obs.Default().Slow().SetThreshold(*slowThresh)
	if *debugAddr != "" {
		dl, err := obs.Serve(*debugAddr, obs.Default())
		if err != nil {
			logger.Fatalf("debug listener: %v", err)
		}
		logger.Printf("debug endpoints on http://%s/metrics", dl.Addr())
	}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			m, err := loadMap(*mapFile)
			if err != nil {
				logger.Printf("reload: %v (keeping current map)", err)
				continue
			}
			coord.Reload(m)
			logger.Printf("reloaded shard map (generation %d, %d shards)",
				coord.Map().Generation(), len(m.Shards()))
		}
	}()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	logger.Printf("serving cluster search on %s", *addr)
	srv := remote.NewServer(coord, logger)
	if err := srv.Serve(l); err != nil {
		logger.Fatalf("serve: %v", err)
	}
}

func loadMap(path string) (*cluster.Map, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading shard map: %w", err)
	}
	m, err := cluster.ParseMap(string(text))
	if err != nil {
		return nil, err
	}
	return m, nil
}
