// Command mkcorpus writes a synthetic document corpus to the host file
// system — the stand-in for the paper's 17,000-file personal database,
// useful for inspecting what the experiments index and for driving
// hacindexd -dir.
//
// Usage:
//
//	mkcorpus -out DIR [-files N] [-words N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hacfs/internal/corpus"
	"hacfs/internal/vfs"
)

var (
	out   = flag.String("out", "", "destination directory on the host file system (required)")
	files = flag.Int("files", 500, "number of files")
	words = flag.Int("words", 200, "mean words per file")
	seed  = flag.Int64("seed", 1, "generator seed")
)

func main() {
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "mkcorpus: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	// Generate into memory first, then copy out, so the generator stays
	// a pure function of its Spec.
	mem := vfs.New()
	if err := mem.MkdirAll("/c"); err != nil {
		fatal(err)
	}
	man, err := corpus.Generate(mem, "/c", corpus.Spec{Files: *files, MeanWords: *words, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	for _, fm := range man.Files {
		rel := fm.Path[len("/c/"):]
		dst := filepath.Join(*out, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			fatal(err)
		}
		data, err := mem.ReadFile(fm.Path)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(dst, data, 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wrote %d files (%.1f MB) to %s\n",
		len(man.Files), float64(man.TotalBytes)/(1<<20), *out)
	fmt.Printf("planted markers:")
	for term, paths := range man.MarkerFiles {
		fmt.Printf(" %s=%d", term, len(paths))
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mkcorpus: %v\n", err)
	os.Exit(1)
}
