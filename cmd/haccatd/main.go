// Command haccatd runs the central catalog server of §3.2: users
// publish the names, queries and query-results of their semantic
// directories here, search the collection, and find users with similar
// classifications.
//
// Usage:
//
//	haccatd [-addr host:port]
package main

import (
	"flag"
	"log"
	"net"
	"os"

	"hacfs/internal/catalog"
	"hacfs/internal/obs"
)

var (
	addr       = flag.String("addr", "127.0.0.1:7679", "listen address")
	debugAddr  = flag.String("debug-addr", "", "serve /metrics, /debug/vars, /debug/pprof, /debug/spans, /debug/slow and /debug/trace on this address")
	slowThresh = flag.Duration("slow-threshold", obs.DefSlowThreshold, "record ops slower than this in /debug/slow (0 disables)")
)

func main() {
	flag.Parse()
	logger := log.New(os.Stderr, "haccatd: ", log.LstdFlags)
	obs.Default().Slow().SetThreshold(*slowThresh)
	if *debugAddr != "" {
		dl, err := obs.Serve(*debugAddr, obs.Default())
		if err != nil {
			logger.Fatalf("debug listener: %v", err)
		}
		logger.Printf("debug endpoints on http://%s/metrics", dl.Addr())
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	logger.Printf("catalog serving on %s", *addr)
	if err := catalog.NewServer(catalog.New(), logger).Serve(l); err != nil {
		logger.Fatalf("serve: %v", err)
	}
}
