// Command hacbench regenerates the paper's evaluation tables (§4 of
// Gopal & Manber, OSDI 1999) and the ablation experiments.
//
// Usage:
//
//	hacbench [flags] all|table1|table2|table3|table4|space|ablate-order|ablate-sets|ablate-scope
//
// Flags scale the workloads; the defaults run in seconds on a laptop.
// For a paper-scale Table 3/4 run use -files 17000 -words 1200 (about
// 150 MB of corpus).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"hacfs/internal/andrew"
	"hacfs/internal/bench"
	"hacfs/internal/corpus"
	"hacfs/internal/obs"
)

var (
	dirs        = flag.Int("dirs", 20, "Andrew tree: directories")
	filesPerDir = flag.Int("files-per-dir", 10, "Andrew tree: files per directory")
	fileSize    = flag.Int("file-size", 4096, "Andrew tree: bytes per file")
	makeRounds  = flag.Int("make-rounds", 2, "Andrew Make phase: hash rounds")
	files       = flag.Int("files", 2000, "corpus: number of files (paper: 17000)")
	words       = flag.Int("words", 150, "corpus: mean words per file (paper-scale: ~1200)")
	seed        = flag.Int64("seed", 1, "corpus: generator seed")
	reps        = flag.Int("reps", 3, "repetitions per timed measurement")
	semDirs     = flag.Int("sem-dirs", 12, "parallel: independent semantic directories")
	maxWorkers  = flag.Int("workers", 4, "parallel: highest worker count measured")
	ioLatency   = flag.Duration("io-latency", 200*time.Microsecond, "parallel: emulated per-read device latency (0 = pure in-memory)")
	obsAddr     = flag.String("obs", "", "serve /metrics and /debug/pprof on this address while benchmarks run")
	obsJSON     = flag.String("obs-json", "BENCH_obs.json", "obs experiment: write machine-readable results here (empty = skip)")
	searchReps  = flag.Int("search-samples", 1500, "compaction: timed Search calls per phase")
	compJSON    = flag.String("compaction-json", "BENCH_compaction.json", "compaction experiment: write machine-readable results here (empty = skip)")
	planReps    = flag.Int("plan-samples", 300, "planner: timed runs per query per mode")
	planJSON    = flag.String("planner-json", "BENCH_planner.json", "planner experiment: write machine-readable results here (empty = skip)")

	serveClients  = flag.Int("serve-clients", 1000, "serve: closed-loop simulated clients")
	serveTenants  = flag.Int("serve-tenants", 4, "serve: tenant volumes")
	serveConns    = flag.Int("serve-conns", 8, "serve: shared TCP connections per protocol")
	serveDuration = flag.Duration("serve-duration", 5*time.Second, "serve: measured window per protocol")
	serveDocs     = flag.Int("serve-docs", 300, "serve: corpus files per tenant volume")
	serveNetDelay = flag.Duration("serve-net-delay", 2*time.Millisecond, "serve: emulated network round-trip paid by both protocols (0 = none)")
	serveAddr     = flag.String("serve-addr", "", "serve: drive this external hacvold instead of an in-process server (tenants t0..tN-1 must exist)")
	serveJSON     = flag.String("serve-json", "BENCH_serve.json", "serve experiment: write machine-readable results here (empty = skip)")

	clusterShards   = flag.String("cluster-shards", "1,2,4,8", "cluster: comma-separated shard counts to sweep")
	clusterReplicas = flag.Int("cluster-replicas", 1, "cluster: replicas per shard")
	clusterClients  = flag.Int("cluster-clients", 24, "cluster: closed-loop client goroutines")
	clusterDuration = flag.Duration("cluster-duration", 2*time.Second, "cluster: measured window per shard count")
	clusterDocs     = flag.Int("cluster-docs", 40, "cluster: documents per routed subtree (8 subtrees)")
	clusterScan     = flag.Duration("cluster-scan-delay", 100*time.Microsecond, "cluster: emulated per-matched-document scan latency at each shard replica (0 = in-memory)")
	clusterGlobal   = flag.Int("cluster-global-pct", 10, "cluster: percent of queries scattered cluster-wide instead of scoped to one subtree")
	clusterKill     = flag.Bool("cluster-kill", false, "cluster: kill one replica mid-run at the largest shard count (needs -cluster-replicas >= 2)")
	clusterAddr     = flag.String("cluster-addr", "", "cluster: drive this external haccluster coordinator instead of in-process fleets")
	clusterScopes   = flag.String("cluster-scopes", "", "cluster: comma-separated scope subtrees for routed queries (default /t0../t7; set to match the external coordinator's shard map)")
	clusterQuery    = flag.String("cluster-query", "markermid", "cluster: search term the clients issue")
	clusterJSON     = flag.String("cluster-json", "BENCH_cluster.json", "cluster experiment: write machine-readable results here (empty = skip)")

	casSizes        = flag.String("cas-sizes", "1000,10000,100000", "cas: comma-separated volume sizes (files) for the clone-vs-save sweep")
	casFileSize     = flag.Int("cas-file-size", 256, "cas: bytes per file in the clone-vs-save and dirty-save sweeps")
	casSaveFiles    = flag.Int("cas-save-files", 10000, "cas: volume size for the dirty-fraction save sweep (0 = skip)")
	casSyncFiles    = flag.Int("cas-sync-files", 2000, "cas: files in the replication volume (0 = skip)")
	casSyncFileSize = flag.Int("cas-sync-size", 16384, "cas: bytes per file in the replication volume")
	casDirty        = flag.String("cas-dirty", "1,10,50", "cas: comma-separated dirty percentages for the save and sync sweeps")
	casJSON         = flag.String("cas-json", "BENCH_cas.json", "cas experiment: write machine-readable results here (empty = skip)")
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}

	if *obsAddr != "" {
		dl, err := obs.Serve(*obsAddr, obs.Default())
		if err != nil {
			fmt.Fprintf(os.Stderr, "hacbench: debug listener: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hacbench: debug endpoints on http://%s/metrics\n", dl.Addr())
	}

	aspec := andrew.Spec{Dirs: *dirs, FilesPerDir: *filesPerDir, FileSize: *fileSize, MakeRounds: *makeRounds}
	cspec := corpus.Spec{Files: *files, MeanWords: *words, Seed: *seed}

	for _, cmd := range args {
		var err error
		switch cmd {
		case "all":
			err = runAll(aspec, cspec)
		case "table1":
			err = table1(aspec)
		case "table2":
			err = table2(aspec)
		case "table3":
			err = table3(cspec)
		case "table4":
			err = table4(cspec)
		case "space":
			err = space(aspec)
		case "parallel":
			err = parallel(cspec)
		case "obs":
			err = obsOverhead(cspec)
		case "compaction":
			err = compaction(cspec)
		case "planner":
			err = planner(cspec)
		case "serve":
			err = serveBench()
		case "cluster":
			err = clusterBench()
		case "cas":
			err = casBench()
		case "trace":
			err = traceDemo()
		case "ablate-order":
			err = ablateOrder()
		case "ablate-sets":
			err = ablateSets()
		case "ablate-scope":
			err = ablateScope()
		case "ablate-cache":
			err = ablateCache(aspec)
		default:
			fmt.Fprintf(os.Stderr, "hacbench: unknown experiment %q\n\n", cmd)
			usage()
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hacbench: %s: %v\n", cmd, err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: hacbench [flags] [experiment ...]

Experiments (default: all):
  table1        Andrew Benchmark, UNIX vs HAC          (paper Table 1)
  table2        user-level FS %% slowdowns              (paper Table 2)
  table3        indexing time/space, direct vs HAC     (paper Table 3)
  table4        query cost, smkdir vs direct search    (paper Table 4)
  space         metadata and shared-memory footprints  (§4 in-text)
  parallel      evaluation engine vs worker count      (EXPERIMENTS.md)
  obs           instrumentation overhead, on vs off    (EXPERIMENTS.md)
  compaction    Search latency under concurrent merge  (EXPERIMENTS.md)
  planner       cost-based planner vs naive pipeline   (EXPERIMENTS.md)
  serve         multi-tenant serving, line vs mux      (EXPERIMENTS.md)
  cluster       sharded scatter-gather search scaling  (EXPERIMENTS.md)
  cas           content-addressed substrate: clone vs save, diff sync (EXPERIMENTS.md)
  trace         issue one traced search, render the distributed trace
  ablate-order  targeted vs full consistency updates   (DESIGN.md A1)
  ablate-sets   bitmap vs sparse result sets           (DESIGN.md A2)
  ablate-scope  scope-direction design comparison      (DESIGN.md A3)
  ablate-cache  attribute cache on/off under Andrew    (DESIGN.md A4)

Flags:
`)
	flag.PrintDefaults()
}

func runAll(aspec andrew.Spec, cspec corpus.Spec) error {
	for _, f := range []func() error{
		func() error { return table1(aspec) },
		func() error { return table2(aspec) },
		func() error { return table3(cspec) },
		func() error { return table4(cspec) },
		func() error { return space(aspec) },
		func() error { return parallel(cspec) },
		func() error { return obsOverhead(cspec) },
		func() error { return compaction(cspec) },
		func() error { return planner(cspec) },
		ablateOrder,
		ablateSets,
		ablateScope,
		func() error { return ablateCache(aspec) },
	} {
		if err := f(); err != nil {
			return err
		}
	}
	return nil
}

func newTab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}

func table1(spec andrew.Spec) error {
	fmt.Printf("== Table 1: Andrew Benchmark (dirs=%d files/dir=%d size=%dB) ==\n",
		spec.Dirs, spec.FilesPerDir, spec.FileSize)
	// Average over repetitions.
	var avg [2]andrew.Result
	var names [2]string
	for r := 0; r < *reps; r++ {
		rows, err := bench.Table1(spec)
		if err != nil {
			return err
		}
		for i, row := range rows {
			names[i] = row.System
			avg[i].MakeDir += row.Result.MakeDir
			avg[i].Copy += row.Result.Copy
			avg[i].Scan += row.Result.Scan
			avg[i].Read += row.Result.Read
			avg[i].Make += row.Result.Make
		}
	}
	w := newTab()
	fmt.Fprintln(w, "File System\tMakedir\tCopy\tScan\tRead\tMake\tTotal")
	for i := range avg {
		n := time.Duration(*reps)
		res := andrew.Result{
			MakeDir: avg[i].MakeDir / n, Copy: avg[i].Copy / n,
			Scan: avg[i].Scan / n, Read: avg[i].Read / n, Make: avg[i].Make / n,
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\n", names[i],
			ms(res.MakeDir), ms(res.Copy), ms(res.Scan), ms(res.Read), ms(res.Make), ms(res.Total()))
	}
	w.Flush()
	unix := avg[0].MakeDir + avg[0].Copy + avg[0].Scan + avg[0].Read + avg[0].Make
	hacT := avg[1].MakeDir + avg[1].Copy + avg[1].Scan + avg[1].Read + avg[1].Make
	fmt.Printf("HAC slowdown vs UNIX: %.1f%%  (paper: 46%%, 57s vs 38s)\n\n",
		bench.Slowdown(unix, hacT))
	return nil
}

func table2(spec andrew.Spec) error {
	fmt.Printf("== Table 2: %% slowdown of user-level file systems ==\n")
	// Average the slowdowns over repetitions.
	sums := map[string]float64{}
	var order []string
	for r := 0; r < *reps; r++ {
		rows, err := bench.Table2(spec)
		if err != nil {
			return err
		}
		for _, row := range rows {
			if _, ok := sums[row.System]; !ok {
				order = append(order, row.System)
			}
			sums[row.System] += row.SlowdownPct
		}
	}
	w := newTab()
	fmt.Fprintln(w, "File System\t% Slowdown\t(paper)")
	paper := map[string]string{"Jade FS": "36", "Pseudo FS": "33.41", "HAC FS": "46"}
	for _, name := range order {
		fmt.Fprintf(w, "%s\t%.2f\t%s\n", name, sums[name]/float64(*reps), paper[name])
	}
	w.Flush()
	fmt.Println()
	return nil
}

func table3(spec corpus.Spec) error {
	fmt.Printf("== Table 3: indexing %d files ==\n", spec.Files)
	res, err := bench.Table3Reps(spec, *reps)
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "System\tIndex time\tIndex size")
	fmt.Fprintf(w, "Glimpse on UNIX\t%s\t%dKB\n", ms(res.DirectTime), res.DirectIndexBytes/1024)
	fmt.Fprintf(w, "Glimpse through HAC\t%s\t%dKB\n", ms(res.HACTime), res.HACIndexBytes/1024)
	w.Flush()
	fmt.Printf("corpus: %d files, %.1f MB\n", res.Files, float64(res.CorpusBytes)/(1<<20))
	fmt.Printf("time overhead: %.1f%% (paper: 27%%)   space overhead: %.1f%% (paper: 15%%)\n\n",
		res.TimeOverheadPct(), res.SpaceOverheadPct())
	return nil
}

func table4(spec corpus.Spec) error {
	fmt.Printf("== Table 4: query cost, smkdir (HAC) vs direct search ==\n")
	rows, err := bench.Table4(spec, *reps)
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "Query class\tMatches\tGlimpse/UNIX\tHAC smkdir\tOverhead\t(paper)")
	paper := map[string]string{"few": "~300%", "intermediate": "~15%", "many": "~2%"}
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%.1f%%\t%s\n",
			r.Class, r.Matches, ms(r.Direct), ms(r.HAC), r.OverheadPct, paper[r.Class])
	}
	w.Flush()
	fmt.Println()
	return nil
}

func space(spec andrew.Spec) error {
	fmt.Printf("== Space overheads (§4 in-text) ==\n")
	res, err := bench.Space(spec, 4)
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintf(w, "UNIX metadata\t%d KB\n", res.UnixMetaBytes/1024)
	fmt.Fprintf(w, "HAC metadata\t%d KB\t(paper: 222KB vs 210KB, ~5%%)\n", res.HACMetaBytes/1024)
	fmt.Fprintf(w, "metadata overhead\t%.1f%%\n", res.MetaOverheadPct)
	fmt.Fprintf(w, "shared memory (attr cache + fd table)\t%d KB\t(paper: ~16KB/process)\n",
		res.SharedMemoryBytes/1024)
	fmt.Fprintf(w, "result bitmap per semantic dir\t%d B\t(paper: N/8 ≈ 2KB at N=17000)\n",
		res.BitmapBytesPerDir)
	w.Flush()
	fmt.Println()
	return nil
}

func parallel(spec corpus.Spec) error {
	fmt.Printf("== Parallel evaluation engine (files=%d sem-dirs=%d io-latency=%s) ==\n",
		spec.Files, *semDirs, *ioLatency)
	counts := []int{1}
	for w := 2; w <= *maxWorkers; w *= 2 {
		counts = append(counts, w)
	}
	rows, err := bench.ParallelEval(spec, counts, *semDirs, *reps, *ioLatency)
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "Workers\tReindex\tspeedup\tSyncAll\tspeedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%s\t%.2fx\t%s\t%.2fx\n",
			r.Workers, ms(r.Reindex), r.ReindexSpeedup, ms(r.SyncAll), r.SyncAllSpeedup)
	}
	w.Flush()
	fmt.Println()
	return nil
}

func obsOverhead(spec corpus.Spec) error {
	fmt.Printf("== Instrumentation overhead (files=%d sem-dirs=%d workers=%d, in-memory) ==\n",
		spec.Files, *semDirs, *maxWorkers)
	res, err := bench.ObsOverhead(spec, *semDirs, *reps, *maxWorkers)
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "Observability\tReindex\tSyncAll")
	fmt.Fprintf(w, "discard (handles nil)\t%s\t%s\n", ms(res.Off.Reindex), ms(res.Off.SyncAll))
	fmt.Fprintf(w, "enabled, unscraped\t%s\t%s\n", ms(res.On.Reindex), ms(res.On.SyncAll))
	fmt.Fprintf(w, "overhead\t%.1f%%\t%.1f%%\n", res.ReindexOverheadPct(), res.SyncAllOverheadPct())
	w.Flush()
	fmt.Printf("enabled run registered %d metric series, retained %d spans\n", res.Series, res.Spans)
	fmt.Printf("wire: %d mux searches, untraced %s vs traced end-to-end %s (overhead %.1f%%)\n",
		res.WireOps, ms(res.WireOff), ms(res.WireOn), res.WireOverheadPct())
	if *obsJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*obsJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *obsJSON)
	}
	fmt.Println()
	return nil
}

func compaction(spec corpus.Spec) error {
	fmt.Printf("== Online compaction: Search under concurrent merge (files=%d samples=%d) ==\n",
		spec.Files, *searchReps)
	res, err := bench.Compaction(spec, *searchReps)
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "Phase\tSearch p50\tSearch p99")
	fmt.Fprintf(w, "idle (%d sealed segments)\t%s\t%s\n", res.Segments, ms(res.IdleP50), ms(res.IdleP99))
	fmt.Fprintf(w, "during merge churn (%d merges)\t%s\t%s\n", res.Merges, ms(res.MergeP50), ms(res.MergeP99))
	w.Flush()
	fmt.Printf("p99 under merge / idle p99: %.2fx (target: < 2x — snapshots keep readers off the merge path)\n", res.P99Ratio)
	if *compJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*compJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *compJSON)
	}
	fmt.Println()
	return nil
}

func planner(spec corpus.Spec) error {
	fmt.Printf("== Cost-based planner: paged Search vs naive pipeline (files=%d samples=%d) ==\n",
		spec.Files, *planReps)
	res, err := bench.Planner(spec, *planReps)
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "Query\tScope\tMatches\tNaive p99\tCold p99\tWarm p99\tCold ×\tWarm ×")
	for _, q := range res.Queries {
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%s\t%s\t%.1fx\t%.1fx\n",
			q.Query, q.Scope, q.Matches,
			ms(q.NaiveP99), ms(q.ColdP99), ms(q.WarmP99),
			q.SpeedupCold, q.SpeedupWarm)
	}
	w.Flush()
	if *planJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*planJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *planJSON)
	}
	fmt.Println()
	return nil
}

func serveBench() error {
	spec := bench.ServeSpec{
		Clients:       *serveClients,
		Tenants:       *serveTenants,
		Conns:         *serveConns,
		Duration:      *serveDuration,
		DocsPerTenant: *serveDocs,
		NetDelay:      *serveNetDelay,
		Seed:          *seed,
		Addr:          *serveAddr,
	}
	if spec.NetDelay == 0 {
		spec.NetDelay = -1 // flag 0 means "really none", not "default"
	}
	target := "in-process server"
	if spec.Addr != "" {
		target = spec.Addr
	}
	fmt.Printf("== Multi-tenant serving: %d closed-loop clients, %d tenants, %d conns, %s each (%s, %s emulated RTT) ==\n",
		spec.Clients, spec.Tenants, spec.Conns, spec.Duration, target, *serveNetDelay)
	res, err := bench.ServeLoad(spec)
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "Protocol\tConns\tOps\tThroughput\tp50\tp99\tp99.9")
	for _, pr := range []bench.ServeProtoResult{res.Line, res.Mux} {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.0f op/s\t%s\t%s\t%s\n",
			pr.Protocol, pr.Conns, pr.Ops, pr.Throughput, ms(pr.P50), ms(pr.P99), ms(pr.P999))
	}
	w.Flush()
	fmt.Printf("mux throughput / line throughput: %.1fx (same connection count)\n\n", res.MuxSpeedup)
	w = newTab()
	fmt.Fprintln(w, "Tenant (mux)\tOps\tBackpressure\tp50\tp99\tp99.9")
	for _, ts := range res.Mux.Tenants {
		fmt.Fprintf(w, "%s\t%d\t%d\t%s\t%s\t%s\n",
			ts.Tenant, ts.Ops, ts.Backpressure, ms(ts.P50), ms(ts.P99), ms(ts.P999))
	}
	w.Flush()
	fmt.Printf("per-tenant p99 spread: %.2fx worst/best (fair scheduling target: < 3x)\n", res.FairnessP99Ratio)
	if *serveJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*serveJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *serveJSON)
	}
	fmt.Println()
	return nil
}

// parseInts parses a comma-separated list of positive integers, exiting
// with a usage error on junk.
func parseInts(flagName, s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			usageErr("%s: %q is not a positive count", flagName, f)
		}
		out = append(out, n)
	}
	return out
}

func casBench() error {
	spec := bench.CASSpec{
		Sizes:        parseInts("-cas-sizes", *casSizes),
		FileSize:     *casFileSize,
		SaveFiles:    *casSaveFiles,
		SyncFiles:    *casSyncFiles,
		SyncFileSize: *casSyncFileSize,
		DirtyPcts:    parseInts("-cas-dirty", *casDirty),
		Reps:         *reps,
		Seed:         *seed,
	}
	fmt.Printf("== Content-addressed substrate: O(manifest) clone vs full save, manifest-diff sync (sizes=%s file-size=%dB) ==\n",
		*casSizes, spec.FileSize)
	res, err := bench.CAS(spec)
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "Files\tContent\tSnapshot\tClone\tFull save\tImage")
	us := func(d time.Duration) string {
		return fmt.Sprintf("%.2fµs", float64(d.Nanoseconds())/1000)
	}
	for _, r := range res.Sizes {
		fmt.Fprintf(w, "%d\t%.1fMB\t%s\t%s\t%s\t%.1fMB\n",
			r.Files, float64(r.Bytes)/(1<<20), us(r.Snapshot), us(r.Clone),
			ms(r.FullSave), float64(r.ImageBytes)/(1<<20))
	}
	w.Flush()
	if len(res.Sizes) >= 2 {
		fmt.Printf("clone latency growth %d -> %d files: %.2fx (target: < 2x); full save growth: %.1fx (target: >= 10x)\n",
			res.Sizes[0].Files, res.Sizes[len(res.Sizes)-1].Files, res.CloneGrowth, res.SaveGrowth)
	}
	if len(res.SaveDirty) > 0 {
		fmt.Printf("\nSave cost vs dirty fraction (%d files; clean files are never re-hashed):\n", res.SaveFiles)
		w = newTab()
		fmt.Fprintln(w, "Dirty\tRewritten\tSave\tImage")
		for _, r := range res.SaveDirty {
			fmt.Fprintf(w, "%d%%\t%d\t%s\t%.1fMB\n", r.DirtyPct, r.Rewritten, ms(r.Save), float64(r.ImageBytes)/(1<<20))
		}
		w.Flush()
	}
	if len(res.SyncDirty) > 0 {
		fmt.Printf("\nReplication (%d files x %dB; full-content mirror ships %.1fMB, cold manifest-diff %.1fMB):\n",
			res.SyncFiles, res.SyncFileSize,
			float64(res.FullSyncBytes)/(1<<20), float64(res.ColdSyncBytes)/(1<<20))
		w = newTab()
		fmt.Fprintln(w, "Dirty\tRewritten\tManifest\tBlobs\tBlob bytes\tWire total\t% of full")
		for _, r := range res.SyncDirty {
			fmt.Fprintf(w, "%d%%\t%d\t%.1fKB\t%d\t%.1fKB\t%.1fKB\t%.2f%%\n",
				r.DirtyPct, r.Rewritten, float64(r.ManifestBytes)/1024, r.BlobsFetched,
				float64(r.BlobBytes)/1024, float64(r.WireBytes)/1024, r.PctOfFull)
		}
		w.Flush()
		fmt.Printf("manifest-diff at %d%% dirty ships %.2f%% of full-sync bytes (target: < 5%%)\n",
			res.SyncDirty[0].DirtyPct, res.SyncDirty[0].PctOfFull)
	}
	if *casJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*casJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *casJSON)
	}
	fmt.Println()
	return nil
}

// usageErr reports a nonsensical flag combination and exits with the
// conventional usage status instead of booting (or hanging) a fleet.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hacbench: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "run 'hacbench -h' for flag usage")
	os.Exit(2)
}

func clusterBench() error {
	var counts []int
	seen := map[int]bool{}
	for _, f := range strings.Split(*clusterShards, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			usageErr("-cluster-shards: %q is not a shard count", f)
		}
		if n <= 0 {
			usageErr("-cluster-shards: shard count %d is not positive", n)
		}
		if seen[n] {
			usageErr("-cluster-shards: duplicate shard count %d", n)
		}
		seen[n] = true
		counts = append(counts, n)
	}
	if len(counts) == 0 && *clusterAddr == "" {
		usageErr("-cluster-shards is empty")
	}
	if *clusterReplicas < 1 {
		usageErr("-cluster-replicas must be at least 1, got %d", *clusterReplicas)
	}
	if *clusterKill && *clusterReplicas < 2 {
		usageErr("-cluster-kill needs -cluster-replicas >= 2 (a lone replica has nothing to fail over to)")
	}
	if *clusterKill && *clusterAddr != "" {
		usageErr("-cluster-kill only works on the in-process fleet, not with -cluster-addr")
	}
	var scopes []string
	for _, s := range strings.Split(*clusterScopes, ",") {
		if s = strings.TrimSpace(s); s == "" {
			continue
		}
		if !strings.HasPrefix(s, "/") {
			usageErr("-cluster-scopes: scope %q is not absolute", s)
		}
		scopes = append(scopes, s)
	}

	spec := bench.ClusterSpec{
		ShardCounts: counts,
		Replicas:    *clusterReplicas,
		Clients:     *clusterClients,
		Duration:    *clusterDuration,
		DocsPerTree: *clusterDocs,
		ScanDelay:   *clusterScan,
		GlobalPct:   *clusterGlobal,
		KillReplica: *clusterKill,
		Query:       *clusterQuery,
		Seed:        *seed,
		Addr:        *clusterAddr,
		Scopes:      scopes,
	}
	if spec.ScanDelay == 0 {
		spec.ScanDelay = -1 // flag 0 means "really none", not "default"
	}
	target := "in-process fleets"
	if spec.Addr != "" {
		target = spec.Addr
	}
	fmt.Printf("== Sharded cluster: scatter-gather search scaling (%s, %d clients, %d replicas/shard, %s per count, %s scan emulation) ==\n",
		target, *clusterClients, *clusterReplicas, *clusterDuration, *clusterScan)
	res, err := bench.ClusterLoad(spec)
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "Shards\tReplicas\tOps\tErrors\tFailovers\tThroughput\tp50\tp99\tscatter p99\t")
	for _, r := range res.Runs {
		note := ""
		if r.Killed {
			note = "replica killed mid-run"
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%.0f op/s\t%s\t%s\t%s\t%s\n",
			r.Shards, r.Replicas, r.Ops, r.Errors, r.Failovers,
			r.Throughput, ms(r.P50), ms(r.P99), ms(r.ScatterP99), note)
	}
	w.Flush()
	if res.Speedup4x > 0 {
		fmt.Printf("Search throughput at 4 shards / 1 shard: %.1fx (target: >= 3x)\n", res.Speedup4x)
	}
	if res.SpeedupMax > 0 {
		fmt.Printf("Search throughput at max shards / 1 shard: %.1fx\n", res.SpeedupMax)
	}
	if *clusterJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*clusterJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *clusterJSON)
	}
	fmt.Println()
	return nil
}

func ablateOrder() error {
	fmt.Printf("== Ablation A1: consistency propagation order ==\n")
	res, err := bench.AblationOrder(1000, 5, 40)
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintf(w, "semantic dirs\t%d (chain %d, unrelated %d)\n",
		res.SemanticDirs, res.AffectedDirs, res.SemanticDirs-res.AffectedDirs)
	fmt.Fprintf(w, "targeted sync (paper's policy)\t%s\n", ms(res.Targeted))
	fmt.Fprintf(w, "full re-evaluation\t%s\n", ms(res.Full))
	fmt.Fprintf(w, "speedup from dependency tracking\t%.1fx\n", res.SpeedupFactor)
	w.Flush()
	fmt.Println()
	return nil
}

func ablateSets() error {
	fmt.Printf("== Ablation A2: bitmap vs sparse result sets (N=17000) ==\n")
	rows := bench.AblationSets(17000, []float64{0.0005, 0.01, 0.1, 0.5})
	w := newTab()
	fmt.Fprintln(w, "matches\tbitmap bytes\tsparse bytes\tbitmap ∩\tsparse ∩")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%s\t%s\n",
			r.Matches, r.BitmapBytes, r.SparseBytes,
			r.BitmapIntersect, r.SparseIntersect)
	}
	w.Flush()
	fmt.Println("(paper stores bitmaps — N/8 bytes — and defers sparse sets to future work)")
	fmt.Println()
	return nil
}

func ablateCache(spec andrew.Spec) error {
	fmt.Printf("== Ablation A4: attribute cache under the Andrew benchmark ==\n")
	res, err := bench.AblationAttrCache(spec, *reps)
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "\tScan\tRead\tTotal")
	fmt.Fprintf(w, "with attr cache\t%s\t%s\t%s\n", ms(res.WithCache), ms(res.ReadWith), ms(res.TotalWith))
	fmt.Fprintf(w, "without (cap 1)\t%s\t%s\t%s\n", ms(res.WithoutCache), ms(res.ReadWithout), ms(res.TotalWithout))
	w.Flush()
	fmt.Println("(the paper keeps this cache in shared memory to speed Scan and Read)")
	fmt.Println()
	return nil
}

func ablateScope() error {
	fmt.Printf("== Ablation A3: scope refinement direction (§2.3 design choice) ==\n")
	res, err := bench.AblationScopeDirection(50)
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintf(w, "out-of-hierarchy child links attempted\t%d\n", res.ChildEdits)
	fmt.Fprintf(w, "accepted by HAC (child refines parent)\t%d\n", res.OutOfHierarchyAccepted)
	fmt.Fprintf(w, "parent link-set changes under HAC\t%d\n", res.HACParentChanges)
	fmt.Fprintf(w, "parent changes under rejected union design\t%d\n", res.RejectedParentChanges)
	w.Flush()
	fmt.Println()
	return nil
}
