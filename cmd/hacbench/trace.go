package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"hacfs/internal/corpus"
	"hacfs/internal/hac"
	"hacfs/internal/obs"
	"hacfs/internal/remotefs"
	"hacfs/internal/serve"
	"hacfs/internal/vfs"
)

var (
	traceQuery  = flag.String("trace-query", "", "trace: query to search for (default: a marker from the demo corpus)")
	traceTenant = flag.String("trace-tenant", "", "trace: tenant to address (with -serve-addr)")
	traceDebug  = flag.String("trace-debug", "", "trace: base URL of the server's debug endpoints, e.g. http://127.0.0.1:7801 (with -serve-addr; fetches the server half of the trace)")
)

// traceDemo issues one traced paged search and renders the resulting
// distributed trace as a tree. Against -serve-addr it drives an
// external hacvold (the server half of the trace is fetched from
// -trace-debug's /debug/trace endpoint); without it, an in-process
// client/server pair over a loopback socket shows the same mechanics
// self-contained.
func traceDemo() error {
	if *serveAddr != "" {
		return traceRemote(*serveAddr, *traceDebug)
	}
	return traceLoopback()
}

// traceRemote traces one search against an external server.
func traceRemote(addr, debugURL string) error {
	o := obs.NewObserver()
	mc := remotefs.DialMux(addr)
	defer mc.Close()
	mc.SetObserver(o)
	view := mc
	if *traceTenant != "" {
		view = mc.Tenant(*traceTenant)
		view.SetObserver(o)
	}
	q := *traceQuery
	if q == "" {
		q = "markermany"
	}

	sp, ctx := o.Tracer().StartCtx(context.Background(), "bench.trace")
	sp.Annotate("query", q)
	paths, _, err := view.SearchPage(ctx, q, "/", 0, 16)
	sp.FinishErr(err)
	if err != nil {
		return fmt.Errorf("traced search: %w", err)
	}
	id := sp.Context().Trace
	fmt.Printf("== Distributed trace: search %q on %s (%d matches) ==\n", q, addr, len(paths))
	fmt.Printf("trace id: %s\n", id)

	spans := o.Tracer().ByTrace(id)
	if debugURL != "" {
		remote, err := fetchTrace(debugURL, id)
		if err != nil {
			return fmt.Errorf("fetching server spans: %w", err)
		}
		spans = append(spans, remote...)
	} else {
		fmt.Println("(no -trace-debug: rendering the client half only)")
	}
	renderTrace(spans)
	return nil
}

// traceLoopback runs the whole demonstration in one process: a
// two-tenant host served over a real socket, one traced search, both
// halves of the trace read from the shared span ring.
func traceLoopback() error {
	o := obs.NewObserver()
	mem := vfs.New()
	if err := mem.MkdirAll("/docs"); err != nil {
		return err
	}
	if _, err := corpus.Generate(mem, "/docs", corpus.Spec{Files: 120, Seed: *seed}); err != nil {
		return err
	}
	hfs := hac.New(mem, hac.Options{Observer: o})
	if _, err := hfs.Reindex("/"); err != nil {
		return err
	}
	host := serve.NewHost(0, o)
	if err := host.AddTenant("t0", hfs, serve.Quota{}, ""); err != nil {
		return err
	}
	host.SetDefault("t0")
	srv := remotefs.NewHostServer(host, nil)
	srv.SetObserver(o)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(l)
	defer srv.Close()

	mc := remotefs.DialMux(l.Addr().String())
	defer mc.Close()
	mc.SetObserver(o)
	q := *traceQuery
	if q == "" {
		q = "markermany"
	}
	sp, ctx := o.Tracer().StartCtx(context.Background(), "bench.trace")
	sp.Annotate("query", q)
	paths, _, err := mc.SearchPage(ctx, q, "/", 0, 16)
	sp.FinishErr(err)
	if err != nil {
		return fmt.Errorf("traced search: %w", err)
	}
	id := sp.Context().Trace
	fmt.Printf("== Distributed trace: search %q over loopback (%d matches) ==\n", q, len(paths))
	fmt.Printf("trace id: %s\n", id)
	renderTrace(o.Tracer().ByTrace(id))
	return nil
}

// fetchTrace pulls the server-side spans of one trace from a debug
// endpoint (obs.Serve's /debug/trace).
func fetchTrace(base string, id obs.TraceID) ([]*obs.Span, error) {
	u := strings.TrimRight(base, "/")
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	u += "/debug/trace?id=" + url.QueryEscape(id.String())
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	// obs.Span's exported, JSON-tagged fields round-trip; the unexported
	// runtime state stays zero, which rendering never touches.
	var spans []*obs.Span
	if err := json.Unmarshal(body, &spans); err != nil {
		return nil, fmt.Errorf("%s: %w", u, err)
	}
	return spans, nil
}

// renderTrace prints spans as a parent/child tree, children indented
// under their parent, siblings in start order. Spans whose parent is
// missing from the set (e.g. the ring evicted it) root the tree.
func renderTrace(spans []*obs.Span) {
	if len(spans) == 0 {
		fmt.Println("no spans retained for this trace")
		return
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	byID := make(map[obs.SpanID]*obs.Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	children := make(map[obs.SpanID][]*obs.Span, len(spans))
	var roots []*obs.Span
	for _, s := range spans {
		if s.Parent != 0 && byID[s.Parent] != nil {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	var render func(s *obs.Span, depth int)
	render = func(s *obs.Span, depth int) {
		line := fmt.Sprintf("%s%-24s %10.3fms", strings.Repeat("  ", depth), s.Name,
			float64(s.Dur)/float64(time.Millisecond))
		for _, a := range s.Attrs {
			line += fmt.Sprintf("  %s=%s", a.Key, a.Value)
		}
		if s.Err != "" {
			line += "  err=" + s.Err
		}
		fmt.Println(line)
		for _, c := range children[s.ID] {
			render(c, depth+1)
		}
	}
	for _, r := range roots {
		render(r, 0)
	}
	fmt.Printf("%d span(s)\n\n", len(spans))
}
