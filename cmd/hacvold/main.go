// Command hacvold serves HAC volumes over the remote file-system
// protocol, so other machines can mount them syntactically (hacsh:
// mount <dir> <addr>) and browse their semantic directories — the
// paper's §3.2 coworker-sharing scenario across a network.
//
// Usage:
//
//	hacvold [-addr host:port] [-volume file.hac] [-save file.hac -save-every 30s] [-demo -files N]
//	hacvold -tenant alice=alice.hac -tenant bob -save-dir /var/hac \
//	        [-quota-bytes N] [-quota-docs N] [-quota-inflight N]
//
// Without -tenant flags one volume is served to every client, as
// before. Each -tenant flag adds an isolated volume under that name
// (loaded from the given image, or fresh); clients address tenants
// over the multiplexed binary protocol, and legacy clients reach the
// first tenant. Quota flags bound every tenant; -save-dir checkpoints
// each tenant to <dir>/<name>.hac.
//
// Connections speak either the legacy gob protocol or the multiplexed
// binary framing — the server sniffs the first bytes, so old clients
// keep working unchanged.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: it stops
// accepting connections, drains in-flight requests (new ones fail with
// a typed shutting-down error), writes a final atomic checkpoint of
// every volume, then exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"hacfs/internal/corpus"
	"hacfs/internal/hac"
	"hacfs/internal/obs"
	"hacfs/internal/remotefs"
	"hacfs/internal/serve"
	"hacfs/internal/vfs"
	"hacfs/internal/vfs/cas"
)

// tenantFlags collects repeated -tenant name[=volume.hac] flags.
type tenantFlags []struct{ name, volume string }

func (t *tenantFlags) String() string { return fmt.Sprintf("%d tenants", len(*t)) }

func (t *tenantFlags) Set(v string) error {
	name, vol, _ := strings.Cut(v, "=")
	if name == "" {
		return fmt.Errorf("empty tenant name")
	}
	*t = append(*t, struct{ name, volume string }{name, vol})
	return nil
}

var (
	addr          = flag.String("addr", "127.0.0.1:7678", "listen address")
	debugAddr     = flag.String("debug-addr", "", "serve /metrics, /debug/vars, /debug/pprof, /debug/spans, /debug/slow and /debug/trace on this address")
	volume        = flag.String("volume", "", "serve a volume saved by hacsh's save command")
	savePath      = flag.String("save", "", "checkpoint the volume to this file (atomic replace)")
	saveDir       = flag.String("save-dir", "", "checkpoint each tenant to <dir>/<name>.hac")
	saveEvery     = flag.Duration("save-every", 30*time.Second, "interval between checkpoints when -save/-save-dir is set")
	mergeEvery    = flag.Duration("merge-every", 15*time.Second, "background segment-merge check interval (0 disables the merger)")
	drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long a graceful shutdown waits for in-flight requests")
	workers       = flag.Int("workers", 0, "execution slots shared fairly across tenants (0 = CPU-scaled)")
	quotaBytes    = flag.Int64("quota-bytes", 0, "per-tenant byte quota (0 = unlimited)")
	quotaDocs     = flag.Int64("quota-docs", 0, "per-tenant document quota (0 = unlimited)")
	quotaInflight = flag.Int64("quota-inflight", 0, "per-tenant in-flight request limit (0 = unlimited)")
	slowThresh    = flag.Duration("slow-threshold", obs.DefSlowThreshold, "record ops slower than this in /debug/slow (0 disables)")
	sloLatency    = flag.Duration("slo-latency", 0, "per-tenant latency objective; enables SLO burn-rate gauges (0 = no SLO)")
	sloTarget     = flag.Float64("slo-target", 0.99, "fraction of requests that should meet -slo-latency")
	demo          = flag.Bool("demo", false, "serve a volume seeded with a demo corpus")
	nfiles        = flag.Int("files", 200, "demo corpus size")
	seedVal       = flag.Int64("seed", 42, "demo corpus seed")
	useCAS        = flag.Bool("cas", true, "back volumes with one process-wide content-addressed blob store: identical content across tenants is stored once, quotas charge unique bytes, v4 images save O(changed content)")
)

// blobStore is the process-wide content-addressed store every tenant
// volume shares when -cas is on (nil otherwise).
var blobStore *cas.BlobStore

var tenants tenantFlags

func main() {
	flag.Var(&tenants, "tenant", "serve an isolated volume as name[=volume.hac]; repeatable")
	flag.Parse()
	logger := log.New(os.Stderr, "hacvold: ", log.LstdFlags)

	quota := serve.Quota{MaxBytes: *quotaBytes, MaxDocs: *quotaDocs, MaxInflight: *quotaInflight}
	host := serve.NewHost(*workers, obs.Default())
	obs.Default().Slow().SetThreshold(*slowThresh)
	if *useCAS {
		blobStore = cas.NewStore()
		blobStore.PublishMetrics(obs.Default().Registry())
	}

	// Resolve the tenant set: explicit -tenant flags, or one default
	// volume from the legacy flags.
	if len(tenants) == 0 {
		tenants = tenantFlags{{name: "default", volume: *volume}}
	} else if *volume != "" {
		logger.Fatalf("-volume and -tenant are mutually exclusive; use -tenant name=%s", *volume)
	}

	var mergeStops []func()
	for i, tc := range tenants {
		fs, err := openVolume(logger, tc.volume)
		if err != nil {
			logger.Fatalf("tenant %s: %v", tc.name, err)
		}
		save := ""
		switch {
		case *saveDir != "":
			save = filepath.Join(*saveDir, tc.name+".hac")
		case *savePath != "" && len(tenants) == 1:
			save = *savePath
		}
		if err := host.AddTenant(tc.name, fs, quota, save); err != nil {
			logger.Fatal(err)
		}
		if *sloLatency > 0 {
			if err := host.SetSLO(tc.name, serve.SLO{Latency: *sloLatency, Target: *sloTarget}); err != nil {
				logger.Fatal(err)
			}
		}
		if i == 0 {
			host.SetDefault(tc.name)
		}
		if *mergeEvery > 0 {
			mergeStops = append(mergeStops, fs.Index().StartMerger(*mergeEvery))
		}
		s := fs.Stats()
		logger.Printf("tenant %s: %d directories, %d semantic%s", tc.name,
			s.Directories, s.SemanticDirs, checkpointNote(save))
	}
	defer func() {
		for _, stop := range mergeStops {
			stop()
		}
	}()

	if *saveEvery > 0 && (*saveDir != "" || *savePath != "") {
		go func() {
			for range time.Tick(*saveEvery) {
				if err := host.Checkpoint(); err != nil {
					logger.Printf("checkpoint failed: %v", err)
					continue
				}
				logger.Printf("checkpointed %d volume(s)", len(host.Tenants()))
			}
		}()
	}

	if *debugAddr != "" {
		dl, err := obs.Serve(*debugAddr, obs.Default())
		if err != nil {
			logger.Fatalf("debug listener: %v", err)
		}
		logger.Printf("debug endpoints on http://%s/metrics", dl.Addr())
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	srv := remotefs.NewHostServer(host, logger)
	logger.Printf("serving %d tenant(s) on %s", len(host.Tenants()), *addr)

	// Graceful shutdown: refuse new connections, drain in-flight
	// requests, take a final checkpoint, exit.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	shuttingDown := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-sigCh
		logger.Printf("%s: draining (up to %s)...", sig, *drainTimeout)
		close(shuttingDown)
		srv.CloseListener()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := host.Drain(ctx); err != nil {
			logger.Printf("drain incomplete: %v", err)
		}
		if err := host.Checkpoint(); err != nil {
			logger.Printf("final checkpoint failed: %v", err)
		} else if *saveDir != "" || *savePath != "" {
			logger.Printf("final checkpoint written")
		}
		srv.Close()
		logger.Printf("bye")
	}()

	err = srv.Serve(l)
	select {
	case <-shuttingDown:
		<-done // wait out the drain + final checkpoint
	default:
		if err != nil {
			logger.Fatalf("serve: %v", err)
		}
	}
}

// openVolume loads a saved image, or builds a fresh (possibly
// demo-seeded) volume when path is empty. With -cas every volume —
// loaded or fresh — shares the process-wide blob store, so identical
// content across tenants occupies memory once.
func openVolume(logger *log.Logger, path string) (*hac.FS, error) {
	if path != "" {
		fs, err := hac.LoadVolumeFile(path, hac.Options{BlobStore: blobStore})
		if err != nil {
			return nil, fmt.Errorf("loading volume: %w", err)
		}
		logger.Printf("loaded volume from %s", path)
		return fs, nil
	}
	var substrate vfs.FileSystem = vfs.New()
	if blobStore != nil {
		substrate = cas.New(blobStore)
	}
	fs := hac.New(substrate, hac.Options{})
	if *demo {
		if err := fs.MkdirAll("/docs"); err != nil {
			return nil, err
		}
		if _, err := corpus.Generate(fs, "/docs", corpus.Spec{Files: *nfiles, Seed: *seedVal}); err != nil {
			return nil, fmt.Errorf("seeding: %w", err)
		}
		if _, err := fs.Reindex("/"); err != nil {
			return nil, fmt.Errorf("indexing: %w", err)
		}
		logger.Printf("seeded %d demo documents under /docs", *nfiles)
	}
	return fs, nil
}

func checkpointNote(save string) string {
	if save == "" {
		return ""
	}
	return ", checkpointing to " + save
}
