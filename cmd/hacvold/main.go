// Command hacvold serves a whole HAC volume over the remote
// file-system protocol, so other machines can mount it syntactically
// (hacsh: mount <dir> <addr>) and browse its semantic directories —
// the paper's §3.2 coworker-sharing scenario across a network.
//
// Usage:
//
//	hacvold [-addr host:port] [-volume file.hac] [-save file.hac -save-every 30s] [-demo -files N]
//
// With -volume the served volume is loaded from a file saved by hacsh's
// save command; a truncated or corrupted image is rejected at startup
// (the image carries a length frame and CRC-32C trailer, DESIGN.md §8).
// With -save the volume is checkpointed periodically through an atomic
// write-temp/fsync/rename, so a crash mid-save never clobbers the last
// good image. With -demo a synthetic corpus is generated and indexed.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"time"

	"hacfs/internal/corpus"
	"hacfs/internal/hac"
	"hacfs/internal/obs"
	"hacfs/internal/remotefs"
	"hacfs/internal/vfs"
)

var (
	addr       = flag.String("addr", "127.0.0.1:7678", "listen address")
	debugAddr  = flag.String("debug-addr", "", "serve /metrics, /debug/vars, /debug/pprof and /debug/spans on this address")
	volume     = flag.String("volume", "", "serve a volume saved by hacsh's save command")
	savePath   = flag.String("save", "", "checkpoint the volume to this file (atomic replace)")
	saveEvery  = flag.Duration("save-every", 30*time.Second, "interval between checkpoints when -save is set")
	mergeEvery = flag.Duration("merge-every", 15*time.Second, "background segment-merge check interval (0 disables the merger)")
	demo       = flag.Bool("demo", false, "serve a volume seeded with a demo corpus")
	nfiles     = flag.Int("files", 200, "demo corpus size")
	seedVal    = flag.Int64("seed", 42, "demo corpus seed")
)

func main() {
	flag.Parse()
	logger := log.New(os.Stderr, "hacvold: ", log.LstdFlags)

	var fs *hac.FS
	switch {
	case *volume != "":
		var err error
		fs, err = hac.LoadVolumeFile(*volume, hac.Options{})
		if err != nil {
			logger.Fatalf("loading volume: %v", err)
		}
		logger.Printf("loaded volume from %s", *volume)
	default:
		fs = hac.New(vfs.New(), hac.Options{})
		if *demo {
			if err := fs.MkdirAll("/docs"); err != nil {
				logger.Fatal(err)
			}
			if _, err := corpus.Generate(fs, "/docs", corpus.Spec{Files: *nfiles, Seed: *seedVal}); err != nil {
				logger.Fatalf("seeding: %v", err)
			}
			if _, err := fs.Reindex("/"); err != nil {
				logger.Fatalf("indexing: %v", err)
			}
			logger.Printf("seeded %d demo documents under /docs", *nfiles)
		}
	}

	if *mergeEvery > 0 {
		stop := fs.Index().StartMerger(*mergeEvery)
		defer stop()
		logger.Printf("background merger checking every %s", *mergeEvery)
	}

	if *savePath != "" {
		go func() {
			for range time.Tick(*saveEvery) {
				if err := fs.SaveVolumeFile(*savePath); err != nil {
					logger.Printf("checkpoint to %s failed: %v", *savePath, err)
					continue
				}
				logger.Printf("checkpointed volume to %s", *savePath)
			}
		}()
		logger.Printf("checkpointing to %s every %s", *savePath, *saveEvery)
	}

	if *debugAddr != "" {
		dl, err := obs.Serve(*debugAddr, fs.Observer())
		if err != nil {
			logger.Fatalf("debug listener: %v", err)
		}
		logger.Printf("debug endpoints on http://%s/metrics", dl.Addr())
	}

	s := fs.Stats()
	logger.Printf("serving volume (%d directories, %d semantic) on %s",
		s.Directories, s.SemanticDirs, *addr)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	if err := remotefs.NewServer(fs, logger).Serve(l); err != nil {
		logger.Fatalf("serve: %v", err)
	}
}
