// Command hacindexd serves a document tree over the remote
// content-based-access protocol, so other HAC volumes can semantically
// mount it (§3 of the paper: "connect different file systems ...
// evaluate queries against different name spaces").
//
// Usage:
//
//	hacindexd [-addr host:port] [-files N] [-dir path]
//
// By default it serves a synthetic corpus; with -dir it indexes a real
// directory from the host file system (read-only snapshot taken at
// startup).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"

	"hacfs/internal/corpus"
	"hacfs/internal/obs"
	"hacfs/internal/remote"
	"hacfs/internal/vfs"
)

var (
	addr       = flag.String("addr", "127.0.0.1:7677", "listen address")
	debugAddr  = flag.String("debug-addr", "", "serve /metrics, /debug/vars, /debug/pprof, /debug/spans, /debug/slow and /debug/trace on this address")
	slowThresh = flag.Duration("slow-threshold", obs.DefSlowThreshold, "record ops slower than this in /debug/slow (0 disables)")
	nfiles     = flag.Int("files", 500, "synthetic corpus size (when -dir is not given)")
	seed       = flag.Int64("seed", 7, "synthetic corpus seed")
	hostDir    = flag.String("dir", "", "serve a snapshot of this host directory instead of a synthetic corpus")
	maxBytes   = flag.Int64("max-file-bytes", 1<<20, "skip host files larger than this (with -dir)")
	corpusRoot = flag.String("corpus-root", "/corpus", "root directory of the synthetic corpus; cluster shards serving distinct subtrees each pick their own")
)

func main() {
	flag.Parse()
	logger := log.New(os.Stderr, "hacindexd: ", log.LstdFlags)

	fsys := vfs.New()
	var err error
	switch {
	case *hostDir != "":
		var n int
		n, err = snapshotHostDir(fsys, *hostDir)
		if err == nil {
			logger.Printf("snapshotted %d files from %s", n, *hostDir)
		}
	default:
		err = fsys.MkdirAll(*corpusRoot)
		if err == nil {
			_, err = corpus.Generate(fsys, *corpusRoot, corpus.Spec{Files: *nfiles, Seed: *seed})
		}
	}
	if err != nil {
		logger.Fatalf("building document tree: %v", err)
	}

	backend, err := remote.NewIndexBackend(fsys, "/")
	if err != nil {
		logger.Fatalf("indexing: %v", err)
	}
	backend.Index().SetObserver(obs.Default())
	obs.Default().Slow().SetThreshold(*slowThresh)
	if *debugAddr != "" {
		dl, err := obs.Serve(*debugAddr, obs.Default())
		if err != nil {
			logger.Fatalf("debug listener: %v", err)
		}
		logger.Printf("debug endpoints on http://%s/metrics", dl.Addr())
	}
	st := backend.Index().Stats()
	logger.Printf("serving %d documents (%d terms, %d KB index) on %s",
		st.Docs, st.Terms, st.IndexBytes/1024, *addr)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	srv := remote.NewServer(backend, logger)
	if err := srv.Serve(l); err != nil {
		logger.Fatalf("serve: %v", err)
	}
}

// snapshotHostDir copies regular files under dir from the host OS into
// the in-memory volume, preserving relative paths.
func snapshotHostDir(fsys *vfs.MemFS, dir string) (int, error) {
	n := 0
	err := filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return nil // skip unreadable entries
		}
		if !info.Mode().IsRegular() || info.Size() > *maxBytes {
			return nil
		}
		rel, err := filepath.Rel(dir, p)
		if err != nil {
			return nil
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return nil
		}
		target := "/" + filepath.ToSlash(rel)
		if err := fsys.MkdirAll(vfs.Dir(target)); err != nil {
			return err
		}
		if err := fsys.WriteFile(target, data); err != nil {
			return err
		}
		n++
		return nil
	})
	if err != nil {
		return n, err
	}
	if n == 0 {
		return 0, fmt.Errorf("no regular files found under %s", dir)
	}
	return n, nil
}
