// Command hacsh is an interactive shell over a HAC volume — the
// closest equivalent of mounting the paper's file system and using
// cd/ls/smkdir/ssync from a terminal.
//
// Usage:
//
//	hacsh [-demo] [-files N] [-script file]
//
// With -demo the volume is seeded with a synthetic document corpus and
// indexed, so semantic directories have something to match. With
// -script, commands are read from the file instead of stdin (one per
// line; # starts a comment).
package main

import (
	"flag"
	"fmt"
	"os"

	"hacfs/internal/corpus"
	"hacfs/internal/hac"
	"hacfs/internal/obs"
	"hacfs/internal/shell"
	"hacfs/internal/vfs"
	"hacfs/internal/vfs/cas"
)

var (
	demo       = flag.Bool("demo", false, "seed the volume with a demo corpus under /docs and index it")
	demoFiles  = flag.Int("files", 200, "demo corpus size (with -demo)")
	scriptPath = flag.String("script", "", "read commands from this file instead of stdin")
	slowThresh = flag.Duration("slow-threshold", obs.DefSlowThreshold, "record ops slower than this for the slow command (0 disables)")
	useCAS     = flag.Bool("cas", true, "back the volume with the content-addressed substrate (enables snapshot/rollback/clone and dedup)")
)

func main() {
	flag.Parse()
	obs.Default().Slow().SetThreshold(*slowThresh)

	var substrate vfs.FileSystem = vfs.New()
	if *useCAS {
		substrate = cas.New(nil)
	}
	fs := hac.New(substrate, hac.Options{})
	if *demo {
		if err := seed(fs, *demoFiles); err != nil {
			fmt.Fprintf(os.Stderr, "hacsh: seeding demo corpus: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("seeded %d demo documents under /docs (markers: markerfew, markermid, markermany; topics: topic0key...)\n", *demoFiles)
	}

	sh := shell.New(fs, os.Stdout)
	in := os.Stdin
	interactive := true
	if *scriptPath != "" {
		f, err := os.Open(*scriptPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hacsh: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
		interactive = false
	}
	if interactive {
		fmt.Println("hacsh — HAC file system shell (type help for commands)")
	}
	if err := sh.Run(in, interactive); err != nil {
		fmt.Fprintf(os.Stderr, "hacsh: %v\n", err)
		os.Exit(1)
	}
}

func seed(fs *hac.FS, files int) error {
	if err := fs.MkdirAll("/docs"); err != nil {
		return err
	}
	if _, err := corpus.Generate(fs, "/docs", corpus.Spec{Files: files, Seed: 42}); err != nil {
		return err
	}
	_, err := fs.Reindex("/")
	return err
}
