package hacfs_test

import (
	"errors"
	"testing"

	"hacfs"
)

// TestFunctionalOptions covers the redesigned construction and
// evaluation API: functional options on the constructor set volume
// defaults, and per-pass options override them.
func TestFunctionalOptions(t *testing.T) {
	fs := hacfs.NewVolume(hacfs.WithParallelism(2), hacfs.WithVerify(true))
	if err := fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/docs/a.txt", []byte("apple pie recipe")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/docs/b.txt", []byte("banana bread recipe")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Reindex("/", hacfs.WithParallelism(4)); err != nil {
		t.Fatal(err)
	}
	if err := fs.SemDir("/recipes", "recipe"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncAll(hacfs.WithParallelism(1)); err != nil {
		t.Fatal(err)
	}
	targets, err := fs.LinkTargets("/recipes")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 2 {
		t.Fatalf("LinkTargets(/recipes) = %v, want 2 entries", targets)
	}
}

// TestDeprecatedConstructors keeps the pre-redesign entry points
// working: NewVolumeOver with an Options struct, and the MkSemDir /
// MakeSemantic pair now backed by SemDir.
func TestDeprecatedConstructors(t *testing.T) {
	fs := hacfs.NewVolumeOver(hacfs.NewMemFS(), hacfs.Options{Parallelism: 1})
	if err := fs.WriteFile("/n.txt", []byte("nutmeg spice")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/spices", "spice"); err != nil {
		t.Fatal(err)
	}
	// MkSemDir on an existing path must keep reporting "exists".
	if err := fs.MkSemDir("/spices", "spice"); !errors.Is(err, hacfs.ErrExist) {
		t.Fatalf("MkSemDir on existing dir = %v, want ErrExist", err)
	}
	if err := fs.Mkdir("/plain"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MakeSemantic("/plain", "nutmeg"); err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{"/spices", "/plain"} {
		if !fs.IsSemantic(dir) {
			t.Fatalf("IsSemantic(%s) = false", dir)
		}
	}
}

// TestPathErrorShape verifies the typed error contract: errors.As
// recovers the failing path and operation, while errors.Is keeps
// matching the sentinel the error wraps.
func TestPathErrorShape(t *testing.T) {
	fs := hacfs.NewVolume()
	if err := fs.Mkdir("/plain"); err != nil {
		t.Fatal(err)
	}
	_, err := fs.Query("/plain")
	if err == nil {
		t.Fatal("Query on non-semantic dir succeeded")
	}
	var pe *hacfs.PathError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v (%T) is not a *hacfs.PathError", err, err)
	}
	if pe.Path != "/plain" {
		t.Fatalf("PathError.Path = %q, want /plain", pe.Path)
	}
	if pe.Op == "" {
		t.Fatal("PathError.Op is empty")
	}
	if !errors.Is(err, hacfs.ErrNotSemantic) {
		t.Fatalf("errors.Is(%v, ErrNotSemantic) = false", err)
	}

	// Substrate errors carry the same shape through the HAC layer.
	_, err = fs.ReadFile("/missing")
	if !errors.As(err, &pe) || !errors.Is(err, hacfs.ErrNotExist) {
		t.Fatalf("ReadFile(/missing) = %v, want PathError wrapping ErrNotExist", err)
	}
}
