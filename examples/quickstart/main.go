// Quickstart: the smallest end-to-end use of the hacfs library —
// create a volume, add files, index, attach a query to a directory, and
// watch HAC keep it consistent.
package main

import (
	"fmt"
	"os"

	"hacfs"
)

func main() {
	fs := hacfs.NewVolume()

	// A HAC volume is an ordinary hierarchical file system.
	must("mkdir /notes", fs.MkdirAll("/notes"))
	must("write pie.txt", fs.WriteFile("/notes/pie.txt", []byte("apple pie recipe")))
	must("write bread.txt", fs.WriteFile("/notes/bread.txt", []byte("banana bread recipe")))
	must("write car.txt", fs.WriteFile("/notes/car.txt", []byte("car maintenance log")))

	// Index the volume (the paper's CBA mechanism), then create a
	// semantic directory: a directory with a query.
	_, err := fs.Reindex("/")
	must("reindex", err)
	must("semdir /recipes", fs.SemDir("/recipes", "recipe"))

	fmt.Println("links in /recipes:")
	printDir(fs, "/recipes")

	// It is still a regular directory: delete a link you don't want
	// (it becomes prohibited and will never silently return) ...
	must("remove bread.txt link", fs.Remove("/recipes/bread.txt"))

	// ... and new matching files appear at the next reindex.
	must("write cake.txt", fs.WriteFile("/notes/cake.txt", []byte("carrot cake recipe")))
	_, err = fs.Reindex("/")
	must("reindex", err)

	fmt.Println("\nafter deleting bread.txt and adding cake.txt:")
	printDir(fs, "/recipes")

	links, err := fs.Links("/recipes")
	must("links /recipes", err)
	fmt.Println("\nclassified links:")
	for _, l := range links {
		fmt.Printf("  %-10s %s\n", l.Class, l.Target)
	}
}

func printDir(fs *hacfs.FS, dir string) {
	entries, err := fs.ReadDir(dir)
	must("readdir "+dir, err)
	for _, e := range entries {
		target, _ := fs.Readlink(dir + "/" + e.Name)
		fmt.Printf("  %s -> %s\n", e.Name, target)
	}
}

// must aborts the example with a non-zero status, naming the step that
// failed.
func must(op string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %s: %v\n", op, err)
		os.Exit(1)
	}
}
