// Quickstart: the smallest end-to-end use of the hacfs library —
// create a volume, add files, index, attach a query to a directory, and
// watch HAC keep it consistent.
package main

import (
	"fmt"
	"log"

	"hacfs"
)

func main() {
	fs := hacfs.NewVolume()

	// A HAC volume is an ordinary hierarchical file system.
	must(fs.MkdirAll("/notes"))
	must(fs.WriteFile("/notes/pie.txt", []byte("apple pie recipe")))
	must(fs.WriteFile("/notes/bread.txt", []byte("banana bread recipe")))
	must(fs.WriteFile("/notes/car.txt", []byte("car maintenance log")))

	// Index the volume (the paper's CBA mechanism), then create a
	// semantic directory: a directory with a query.
	if _, err := fs.Reindex("/"); err != nil {
		log.Fatal(err)
	}
	must(fs.SemDir("/recipes", "recipe"))

	fmt.Println("links in /recipes:")
	printDir(fs, "/recipes")

	// It is still a regular directory: delete a link you don't want
	// (it becomes prohibited and will never silently return) ...
	must(fs.Remove("/recipes/bread.txt"))

	// ... and new matching files appear at the next reindex.
	must(fs.WriteFile("/notes/cake.txt", []byte("carrot cake recipe")))
	if _, err := fs.Reindex("/"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nafter deleting bread.txt and adding cake.txt:")
	printDir(fs, "/recipes")

	links, err := fs.Links("/recipes")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nclassified links:")
	for _, l := range links {
		fmt.Printf("  %-10s %s\n", l.Class, l.Target)
	}
}

func printDir(fs *hacfs.FS, dir string) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		target, _ := fs.Readlink(dir + "/" + e.Name)
		fmt.Printf("  %s -> %s\n", e.Name, target)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
