// Email semantic directories (§2.3 of the paper): "users can build
// email semantic directories, allowing a message to be in more than one
// directory (e.g., by sender, recipient, topic, and/or a combination)".
//
// A message lives once under /mail; the folders are semantic
// directories whose queries slice the mailbox by sender and by topic,
// so one message appears in several folders simultaneously — something
// a plain hierarchy cannot do.
package main

import (
	"fmt"
	"os"
	"strings"

	"hacfs"
)

type message struct {
	name, from, to, subject, body string
}

var inbox = []message{
	{"m1", "alice", "me", "fingerprint dataset", "the fingerprint dataset is uploaded"},
	{"m2", "bob", "me", "lunch", "lunch tomorrow?"},
	{"m3", "alice", "me", "budget", "budget spreadsheet attached"},
	{"m4", "carol", "me", "fingerprint paper", "draft of the fingerprint paper"},
	{"m5", "bob", "me", "fingerprint sensor", "the sensor hardware arrived"},
	{"m6", "alice", "me", "vacation", "out next week"},
}

func main() {
	fs := hacfs.NewVolume()
	must("mkdir /mail", fs.MkdirAll("/mail"))
	for _, m := range inbox {
		content := fmt.Sprintf("from %s\nto %s\nsubject %s\n\n%s\n", m.from, m.to, m.subject, m.body)
		must("write "+m.name, fs.WriteFile("/mail/"+m.name+".eml", []byte(content)))
	}
	_, err := fs.Reindex("/")
	must("reindex", err)

	// Folders by sender, by topic, and by a combination. The dir:/mail
	// reference scopes each folder over the mailbox (§2.5 DAG-based
	// scoping), wherever the folder itself lives.
	must("mkdir /folders", fs.MkdirAll("/folders"))
	must("semdir from-alice", fs.SemDir("/folders/from-alice", "dir:/mail AND from AND alice"))
	must("semdir from-bob", fs.SemDir("/folders/from-bob", "dir:/mail AND from AND bob"))
	must("semdir fingerprint", fs.SemDir("/folders/fingerprint", "dir:/mail AND fingerprint"))
	must("semdir alice-fingerprint", fs.SemDir("/folders/alice-fingerprint", "dir:/mail AND from AND alice AND fingerprint"))

	for _, f := range []string{
		"/folders/from-alice", "/folders/from-bob",
		"/folders/fingerprint", "/folders/alice-fingerprint",
	} {
		show(fs, f)
	}

	// m1 is in two folders at once.
	fmt.Println("\nfolders containing m1.eml:")
	for _, f := range []string{"/folders/from-alice", "/folders/from-bob", "/folders/fingerprint"} {
		targets, err := fs.Links(f)
		must("links "+f, err)
		for _, l := range targets {
			if strings.HasSuffix(l.Target, "m1.eml") && l.Class != hacfs.Prohibited {
				fmt.Printf("  %s\n", f)
			}
		}
	}

	// New mail shows up in every matching folder after a reindex —
	// "users can decide to update certain semantic directories as soon
	// as new mail comes in" (§2.4).
	must("write m7", fs.WriteFile("/mail/m7.eml",
		[]byte("from alice\nto me\nsubject fingerprint demo\n\ndemo on friday\n")))
	_, err = fs.Reindex("/mail")
	must("reindex /mail", err)
	fmt.Println("\nafter new mail m7 from alice about the fingerprint demo:")
	show(fs, "/folders/alice-fingerprint")

	// Filing by hand still works: drag a message out of a folder
	// (prohibited there) and into another (permanent there).
	must("move m5", fs.Rename("/folders/fingerprint/m5.eml", "/folders/from-alice/m5.eml"))
	fmt.Println("\nafter moving m5 from the fingerprint folder into from-alice:")
	show(fs, "/folders/fingerprint")
	show(fs, "/folders/from-alice")

	// The move survives every consistency pass.
	_, err = fs.Reindex("/")
	must("reindex", err)
	fmt.Println("\n...and it survives a full reindex:")
	show(fs, "/folders/fingerprint")
}

func show(fs *hacfs.FS, dir string) {
	entries, err := fs.ReadDir(dir)
	must("readdir "+dir, err)
	var names []string
	for _, e := range entries {
		names = append(names, e.Name)
	}
	fmt.Printf("%-28s %s\n", dir+":", strings.Join(names, " "))
}

// must aborts the example with a non-zero status, naming the step that
// failed.
func must(op string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "mailfolders: %s: %v\n", op, err)
		os.Exit(1)
	}
}
