// The paper's running example (§2.1): a researcher working on a
// fingerprint project whose material is scattered across email, notes,
// source code and papers. HAC gathers it all into one semantic
// directory, which the researcher then tunes by hand — and HAC keeps
// the hand-tuned result consistent as files and queries change.
package main

import (
	"fmt"
	"os"

	"hacfs"
)

func main() {
	fs := hacfs.NewVolume()

	// The scattered project material.
	seed(fs, map[string]string{
		"/mail/from-bob-1.eml":    "from bob subject fingerprint sensor calibration",
		"/mail/from-carol.eml":    "from carol subject lunch on tuesday",
		"/notes/meeting.txt":      "fingerprint project kickoff notes",
		"/notes/shopping.txt":     "milk eggs bread",
		"/src/match.c":            "int fingerprint match(image a, image b)",
		"/src/util.c":             "generic utility helpers",
		"/papers/survey.txt":      "survey of fingerprint matching algorithms",
		"/papers/crime-story.txt": "fingerprint evidence in the museum murder case",
		"/images/scan1.raw":       "binaryish sensor dump without keywords",
	})
	_, err := fs.Reindex("/")
	must("reindex", err)

	// One command gathers everything.
	must("semdir /fingerprint", fs.SemDir("/fingerprint", "fingerprint"))
	show(fs, "initial query result", "/fingerprint")

	// §2.3: no query system is perfect. The crime story matches but is
	// irrelevant — delete it. The deletion is remembered (prohibited).
	must("remove crime-story link", fs.Remove("/fingerprint/crime-story.txt"))

	// The raw sensor image is relevant but matches nothing — link it by
	// hand. The link is permanent: consistency passes never remove it.
	must("link scan1.raw", fs.Symlink("/images/scan1.raw", "/fingerprint/scan1.raw"))

	show(fs, "after manual tuning (crime story out, sensor image in)", "/fingerprint")

	// Refinement by hierarchy: a child semantic directory scopes over
	// the parent's links only.
	must("semdir /fingerprint/code", fs.SemDir("/fingerprint/code", "int OR match"))
	show(fs, "refinement /fingerprint/code (scope = parent's links)", "/fingerprint/code")

	// §2.5: queries can reference directories. Collect everything in
	// the tuned fingerprint collection that is NOT source code.
	must("semdir /fp-reading", fs.SemDir("/fp-reading", "dir:/fingerprint AND NOT int"))
	show(fs, "dir-reference query /fp-reading", "/fp-reading")

	// Consistency under change: new mail arrives, an old note is
	// archived out of existence. One reindex settles everything,
	// without touching the manual edits.
	must("write from-dave.eml", fs.WriteFile("/mail/from-dave.eml", []byte("from dave subject fingerprint dataset ready")))
	must("remove meeting.txt", fs.Remove("/notes/meeting.txt"))
	_, err = fs.Reindex("/")
	must("reindex", err)
	show(fs, "after new mail + archived note + reindex", "/fingerprint")

	fmt.Println("\nlink classification in /fingerprint:")
	links, err := fs.Links("/fingerprint")
	must("links /fingerprint", err)
	for _, l := range links {
		fmt.Printf("  %-10s %s\n", l.Class, l.Target)
	}

	// Renaming the referenced directory does not break /fp-reading.
	must("rename /fingerprint", fs.Rename("/fingerprint", "/fp-project"))
	must("sync", fs.Sync("/"))
	q, err := fs.QueryDisplay("/fp-reading")
	must("query display /fp-reading", err)
	fmt.Printf("\nafter rename, /fp-reading's query reads: %s\n", q)
	show(fs, "and still resolves", "/fp-reading")
}

func seed(fs *hacfs.FS, files map[string]string) {
	for p, content := range files {
		dir := p[:lastSlash(p)]
		must("mkdir "+dir, fs.MkdirAll(dir))
		must("write "+p, fs.WriteFile(p, []byte(content)))
	}
}

func lastSlash(p string) int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return i
		}
	}
	return 0
}

func show(fs *hacfs.FS, caption, dir string) {
	fmt.Printf("\n%s:\n", caption)
	entries, err := fs.ReadDir(dir)
	must("readdir "+dir, err)
	if len(entries) == 0 {
		fmt.Println("  (empty)")
	}
	for _, e := range entries {
		if e.Type == hacfs.SymlinkType {
			target, _ := fs.Readlink(dir + "/" + e.Name)
			fmt.Printf("  %s -> %s\n", e.Name, target)
		} else {
			fmt.Printf("  %s\n", e.Name)
		}
	}
}

// must aborts the example with a non-zero status, naming the step that
// failed.
func must(op string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "fingerprint: %s: %v\n", op, err)
		os.Exit(1)
	}
}
