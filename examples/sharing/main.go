// Sharing classifications (§3.2 of the paper): Alice curates semantic
// directories in her volume and serves it over the network; Bob mounts
// it syntactically and browses her classification instead of searching
// himself; and a central catalog of published semantic directories
// lets users find others with similar tastes.
package main

import (
	"fmt"
	"net"
	"os"
	"strings"

	"hacfs"
	"hacfs/internal/catalog"
	"hacfs/internal/remotefs"
)

func main() {
	// --- Alice curates her volume. ------------------------------------
	alice := hacfs.NewVolume()
	seed(alice, map[string]string{
		"/docs/fp-alg.txt":    "fingerprint matching algorithms",
		"/docs/fp-sensor.txt": "fingerprint sensor design notes",
		"/docs/iris.txt":      "iris recognition survey",
		"/docs/pie.txt":       "apple pie recipe",
	})
	must("alice semdir", alice.SemDir("/fingerprint", "fingerprint"))
	// Her personal touch: the iris survey belongs in the collection.
	must("alice link iris.txt", alice.Symlink("/docs/iris.txt", "/fingerprint/iris.txt"))

	// --- Alice's volume goes on the network (cmd/hacvold). -------------
	l, err := net.Listen("tcp", "127.0.0.1:0")
	must("listen", err)
	go remotefs.NewServer(alice, nil).Serve(l)

	// --- Bob mounts Alice's volume syntactically. ----------------------
	bobUnder := hacfs.NewMemFS()
	bob := hacfs.New(bobUnder)
	must("bob mkdir /net/alice", bob.MkdirAll("/net/alice"))
	must("bob mount", bobUnder.Mount("/net/alice", remotefs.Dial(l.Addr().String())))

	fmt.Println("Bob browses Alice's curated classification over the network:")
	entries, err := bob.ReadDir("/net/alice/fingerprint")
	must("bob readdir", err)
	for _, e := range entries {
		target, _ := bob.Readlink("/net/alice/fingerprint/" + e.Name)
		fmt.Printf("  %-16s -> %s\n", e.Name, target)
	}
	data, err := bob.ReadFile("/net/alice/docs/fp-alg.txt")
	must("bob read fp-alg.txt", err)
	fmt.Printf("  (reads one: %q)\n", data)

	// --- Bob has his own volume with his own classification. -----------
	seed(bob, map[string]string{
		"/papers/fp-survey.txt": "fingerprint biometrics overview",
		"/papers/gait.txt":      "gait recognition methods",
	})
	must("bob semdir", bob.SemDir("/biometrics", "fingerprint OR gait"))

	// --- The central catalog (§3.2). ------------------------------------
	cat := catalog.New()
	nA, err := cat.Publish("alice", alice)
	must("publish alice", err)
	nB, err := cat.Publish("bob", bob)
	must("publish bob", err)
	fmt.Printf("\ncatalog holds %d entries (%d from alice, %d from bob)\n",
		cat.Len(), nA, nB)

	hits, err := cat.Search("fingerprint")
	must("catalog search", err)
	fmt.Println("catalog search 'fingerprint':")
	for _, h := range hits {
		fmt.Printf("  %s %s  query=%s  (%d results)\n",
			h.User, h.Path, h.Query, len(h.Targets))
	}

	// Who classifies like Alice? (Different volumes hold different
	// files, so this demo's overlap is in naming; with shared storage
	// the overlap is in the files themselves.)
	matches, err := cat.SimilarTo("alice", "/fingerprint")
	must("catalog similar", err)
	if len(matches) == 0 {
		fmt.Println("\nno users with overlapping classifications (volumes are disjoint)")
	}
	for _, m := range matches {
		fmt.Printf("\nsimilar taste: %s %s (%.0f%% overlap)\n",
			m.Entry.User, m.Entry.Path, 100*m.Similarity)
	}

	// Finally: Bob can layer his own semantic view over the mounted
	// volume by querying the mounted subtree — Alice's files joined his
	// index when he reindexed the mount.
	_, err = bob.Reindex("/net/alice/docs")
	must("bob reindex mount", err)
	must("bob semdir /all-fp", bob.SemDir("/all-fp", "dir:/papers OR dir:\"/net/alice/docs\" AND fingerprint"))
	targets, err := bob.LinkTargets("/all-fp")
	must("bob links /all-fp", err)
	fmt.Println("\nBob's combined view (his papers + Alice's docs):")
	for _, target := range targets {
		if strings.Contains(target, "fp") {
			fmt.Printf("  %s\n", target)
		}
	}
}

func seed(fs *hacfs.FS, files map[string]string) {
	for p, content := range files {
		must("mkdir "+p, fs.MkdirAll(p[:strings.LastIndexByte(p, '/')]))
		must("write "+p, fs.WriteFile(p, []byte(content)))
	}
	_, err := fs.Reindex("/")
	must("reindex", err)
}

// must aborts the example with a non-zero status, naming the step that
// failed.
func must(op string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "sharing: %s: %v\n", op, err)
		os.Exit(1)
	}
}
