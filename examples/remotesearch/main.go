// Semantic mount points (§3 of the paper): mount a remote query system
// — here a digital library served over TCP by the same protocol
// cmd/hacindexd speaks — into a personal HAC volume, and build a
// personal, hand-tuned classification of remote information.
package main

import (
	"fmt"
	"net"
	"os"
	"strings"

	"hacfs"
	"hacfs/internal/remote"
	"hacfs/internal/vfs"
)

func main() {
	// --- The remote side: a digital library with its own index. ------
	libAddr := startLibrary(map[string]string{
		"/papers/fp-matching.ps":  "fingerprint matching algorithms survey",
		"/papers/fp-sensors.ps":   "fingerprint sensor hardware design",
		"/papers/iris.ps":         "iris recognition methods overview",
		"/papers/crime-report.ps": "fingerprint evidence in a murder case",
		"/papers/db-index.ps":     "database indexing structures",
	})

	// --- The local side: a personal HAC volume. ----------------------
	fs := hacfs.NewVolume()
	must("mkdir /library", fs.MkdirAll("/library"))
	must("mkdir /notes", fs.MkdirAll("/notes"))
	must("write my-fp-ideas.txt", fs.WriteFile("/notes/my-fp-ideas.txt", []byte("my own fingerprint ideas")))
	_, err := fs.Reindex("/")
	must("reindex", err)

	// Semantically mount the library. From now on, queries whose scope
	// includes /library import its results.
	client := hacfs.DialRemote("diglib", libAddr)
	must("semantic mount /library", fs.SemanticMount("/library", client))

	// "We can add a semantic mount point associated with a query for
	// fingerprint, thus ensuring that our knowledge of the subject is
	// up to date (at least with the library)."
	must("semdir /fp", fs.SemDir("/fp", "fingerprint"))
	fmt.Println("/fp gathers local and remote results:")
	show(fs, "/fp")

	// Personal classification of remote information: remove the crime
	// report (prohibited — it will not come back), keep the rest.
	entries, err := fs.ReadDir("/fp")
	must("readdir /fp", err)
	for _, e := range entries {
		if strings.Contains(e.Name, "crime") {
			must("remove "+e.Name, fs.Remove("/fp/"+e.Name))
		}
	}
	must("sync", fs.Sync("/"))
	fmt.Println("\nafter pruning the crime report (a prohibited link now):")
	show(fs, "/fp")

	// Refine within the personal collection: hardware papers only.
	must("semdir /fp/hardware", fs.SemDir("/fp/hardware", "sensor OR hardware"))
	fmt.Println("\nrefinement /fp/hardware (scope = the tuned /fp):")
	show(fs, "/fp/hardware")

	// sact: pull the content of a remote result through the link.
	entries, err = fs.ReadDir("/fp/hardware")
	must("readdir /fp/hardware", err)
	data, err := fs.Extract("/fp/hardware/" + entries[0].Name)
	must("extract "+entries[0].Name, err)
	fmt.Printf("\nsact %s:\n  %s\n", entries[0].Name, data)

	// The library is one namespace; local files are another — both
	// answered the same query, which is the §3.2 "multiple name spaces,
	// disjoint results" model.
	links, err := fs.Links("/fp")
	must("links /fp", err)
	local, remoteN := 0, 0
	for _, l := range links {
		if l.Class == hacfs.Prohibited {
			continue
		}
		if strings.HasPrefix(l.Target, "remote://") {
			remoteN++
		} else {
			local++
		}
	}
	fmt.Printf("\n/fp holds %d local and %d remote results\n", local, remoteN)
}

// startLibrary brings up an in-process remote CBA server and returns
// its address. In real deployments this is cmd/hacindexd on another
// machine.
func startLibrary(docs map[string]string) string {
	fsys := vfs.New()
	for p, content := range docs {
		must("library mkdir "+vfs.Dir(p), fsys.MkdirAll(vfs.Dir(p)))
		must("library write "+p, fsys.WriteFile(p, []byte(content)))
	}
	backend, err := remote.NewIndexBackend(fsys, "/")
	must("library index", err)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	must("library listen", err)
	go remote.NewServer(backend, nil).Serve(l)
	return l.Addr().String()
}

func show(fs *hacfs.FS, dir string) {
	entries, err := fs.ReadDir(dir)
	must("readdir "+dir, err)
	for _, e := range entries {
		if e.Type == hacfs.SymlinkType {
			target, _ := fs.Readlink(dir + "/" + e.Name)
			fmt.Printf("  %-26s -> %s\n", e.Name, target)
		} else {
			fmt.Printf("  %s/\n", e.Name)
		}
	}
}

// must aborts the example with a non-zero status, naming the step that
// failed.
func must(op string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "remotesearch: %s: %v\n", op, err)
		os.Exit(1)
	}
}
