package hacfs_test

import (
	"bytes"
	"errors"
	"testing"

	"hacfs"
)

// TestPublicAPIEndToEnd exercises the full public surface the way a
// downstream user would.
func TestPublicAPIEndToEnd(t *testing.T) {
	fs := hacfs.NewVolume()

	// Hierarchical operations.
	if err := fs.MkdirAll("/mail"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/mail/m1.eml", []byte("from alice\n\nfingerprint dataset ready\n")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/mail/m2.eml", []byte("from bob\n\nlunch plans\n")); err != nil {
		t.Fatal(err)
	}

	// Transducers and indexing.
	fs.RegisterTransducer(".eml", hacfs.EmailTransducer)
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}

	// Semantic directory with an attribute query.
	if err := fs.MkSemDir("/from-alice", "from:alice"); err != nil {
		t.Fatal(err)
	}
	targets, err := fs.LinkTargets("/from-alice")
	if err != nil || len(targets) != 1 || targets[0] != "/mail/m1.eml" {
		t.Fatalf("targets = %v, %v", targets, err)
	}

	// Link classification.
	links, err := fs.Links("/from-alice")
	if err != nil || len(links) != 1 || links[0].Class != hacfs.Transient {
		t.Fatalf("links = %v, %v", links, err)
	}

	// Error sentinels work through the facade.
	if _, err := fs.ReadFile("/nope"); !errors.Is(err, hacfs.ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
	if _, err := fs.Query("/mail"); !errors.Is(err, hacfs.ErrNotSemantic) {
		t.Fatalf("err = %v", err)
	}

	// Persistence round trip.
	var buf bytes.Buffer
	if err := fs.SaveVolume(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := hacfs.LoadVolume(&buf, hacfs.Options{
		// Transducers are code, not data: supply the same set the
		// saving volume used so the load-time reindex rebuilds the
		// attribute terms.
		Transducers: map[string][]hacfs.Transducer{".eml": {hacfs.EmailTransducer}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := restored.LinkTargets("/from-alice"); len(got) != 1 {
		t.Fatalf("restored targets = %v", got)
	}

	// Walk helper.
	var files []string
	err = hacfs.Walk(fs, "/", func(p string, info hacfs.Info) error {
		if info.Type == hacfs.FileType {
			files = append(files, p)
		}
		return nil
	})
	if err != nil || len(files) != 2 {
		t.Fatalf("walk files = %v, %v", files, err)
	}
}

func TestNewVolumeOver(t *testing.T) {
	under := hacfs.NewMemFS()
	if err := under.WriteFile("/pre-existing.txt", []byte("apple")); err != nil {
		t.Fatal(err)
	}
	fs := hacfs.NewVolumeOver(under, hacfs.Options{})
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	targets, err := fs.LinkTargets("/sel")
	if err != nil || len(targets) != 1 {
		t.Fatalf("targets = %v, %v", targets, err)
	}
}
