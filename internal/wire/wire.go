// Package wire implements the length-prefixed, multiplexed binary
// framing shared by the remote (content-based access) and remotefs
// (file-system export) protocols — the serving substrate that turns
// hacvold from a demo daemon into a multi-tenant server (DESIGN.md
// §12).
//
// A binary connection opens with a 5-byte hello in each direction:
//
//	"HACX" version(1)
//
// The magic cannot collide with either legacy protocol (the remote
// line protocol starts with an ASCII verb such as "PING"; the remotefs
// gob stream starts with a small varint-framed type definition), so a
// server can sniff the first bytes of a connection and fall back to
// the legacy decoder for old clients — auto-negotiation rather than
// rejection.
//
// After the hello, both directions carry frames:
//
//	length  uint32, big-endian — byte count of everything after itself
//	type    uint8              — protocol-specific frame type
//	flags   uint8              — FlagFinal ends a response stream,
//	                             FlagTrace precedes the payload with a
//	                             trace header
//	id      uint64, big-endian — request ID, chosen by the client
//	trace   24 bytes, only when FlagTrace is set — 128-bit trace ID
//	        followed by the sender's span ID (uint64, big-endian), the
//	        cross-process trace context of DESIGN.md §13
//	payload remaining bytes    — protocol-specific body
//
// Many requests may be in flight on one connection; responses carry
// the ID of the request they answer and may span several frames, the
// last one marked FlagFinal (streamed search result pages). Decoding
// is bounded: a frame whose declared length is shorter than the fixed
// header or longer than the caller's payload budget is rejected before
// any allocation, so a hostile length can never over-allocate.
//
// The trace header is optional and additive within version 1: a
// receiver that predates it would reject the unknown flag only if it
// validated flags (none do — flags are a bitfield by design), and the
// legacy peers that matter (line-protocol and gob clients) never see
// binary frames at all, because the magic-sniffing server routes them
// to the legacy decoders.
package wire

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hacfs/internal/obs"
)

// Magic opens every binary connection, followed by a version byte.
const Magic = "HACX"

// Version is the framing version this package speaks.
const Version = 1

// helloLen is the size of the connection preamble.
const helloLen = len(Magic) + 1

// headerLen is the fixed frame header after the length word:
// type(1) + flags(1) + id(8).
const headerLen = 10

// FlagFinal marks the last frame of a response stream.
const FlagFinal = 0x01

// FlagTrace marks a frame whose header is followed by a trace header:
// 16-byte trace ID + 8-byte sender span ID. WriteFrame sets it
// automatically when the frame carries a trace.
const FlagTrace = 0x02

// traceHeaderLen is the size of the optional trace header.
const traceHeaderLen = 16 + 8

// ErrNotBinary reports a connection preamble that is not the binary
// magic — the peer is speaking a legacy protocol.
var ErrNotBinary = errors.New("wire: not a binary-protocol connection")

// ErrVersion reports a binary peer speaking an unsupported framing
// version.
var ErrVersion = errors.New("wire: unsupported protocol version")

// Frame is one decoded protocol frame. Trace and Span, when non-zero,
// are the propagated trace context (sent as the optional FlagTrace
// header): the trace the request belongs to and the sender's span, the
// parent of whatever span the receiver starts.
type Frame struct {
	Type    uint8
	Flags   uint8
	ID      uint64
	Trace   obs.TraceID
	Span    obs.SpanID
	Payload []byte
}

// Final reports whether the frame ends its response stream.
func (f *Frame) Final() bool { return f.Flags&FlagFinal != 0 }

// WriteHello sends the connection preamble.
func WriteHello(w io.Writer, version uint8) error {
	var b [helloLen]byte
	copy(b[:], Magic)
	b[len(Magic)] = version
	_, err := w.Write(b[:])
	return err
}

// ReadHello consumes and validates the preamble, returning the peer's
// version. A non-magic preamble returns ErrNotBinary.
func ReadHello(r io.Reader) (uint8, error) {
	var b [helloLen]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	if string(b[:len(Magic)]) != Magic {
		return 0, ErrNotBinary
	}
	return b[len(Magic)], nil
}

// IsMagic reports whether prefix (at least len(Magic) bytes of a
// connection's first read) opens a binary connection. Servers peek
// this to auto-negotiate between the binary framing and the legacy
// protocol.
func IsMagic(prefix []byte) bool {
	return len(prefix) >= len(Magic) && string(prefix[:len(Magic)]) == Magic
}

// WriteFrame encodes one frame, emitting the trace header (and setting
// FlagTrace) when the frame carries a trace. The caller serializes
// concurrent writers (frames must not interleave mid-frame).
func WriteFrame(w io.Writer, f Frame) error {
	var hdr [4 + headerLen + traceHeaderLen]byte
	n := 4 + headerLen
	if !f.Trace.IsZero() {
		f.Flags |= FlagTrace
		copy(hdr[n:], f.Trace[:])
		binary.BigEndian.PutUint64(hdr[n+16:], uint64(f.Span))
		n += traceHeaderLen
	} else {
		f.Flags &^= FlagTrace
	}
	binary.BigEndian.PutUint32(hdr[0:4], uint32(n-4+len(f.Payload)))
	hdr[4] = f.Type
	hdr[5] = f.Flags
	binary.BigEndian.PutUint64(hdr[6:14], f.ID)
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame decodes one frame, rejecting any declared length below the
// fixed header (plus trace header when FlagTrace is set) or above
// maxPayload before allocating anything.
func ReadFrame(r io.Reader, maxPayload uint32) (Frame, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(lenb[:])
	if n < headerLen {
		return Frame{}, fmt.Errorf("wire: frame length %d below %d-byte header", n, headerLen)
	}
	if uint64(n-headerLen) > uint64(maxPayload)+traceHeaderLen {
		// Early reject of lengths too large under either header shape;
		// the exact payload bound is re-checked below once the flags say
		// whether a trace header is present. Nothing is allocated from
		// the declared length at this point.
		return Frame{}, fmt.Errorf("wire: frame payload %d exceeds limit %d", n-headerLen, maxPayload)
	}
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	f := Frame{Type: hdr[0], Flags: hdr[1], ID: binary.BigEndian.Uint64(hdr[2:10])}
	fixed := uint32(headerLen)
	if f.Flags&FlagTrace != 0 {
		fixed += traceHeaderLen
		if n < fixed {
			return Frame{}, fmt.Errorf("wire: frame length %d below %d-byte traced header", n, fixed)
		}
		var th [traceHeaderLen]byte
		if _, err := io.ReadFull(r, th[:]); err != nil {
			return Frame{}, err
		}
		copy(f.Trace[:], th[:16])
		f.Span = obs.SpanID(binary.BigEndian.Uint64(th[16:]))
	}
	if n-fixed > maxPayload {
		return Frame{}, fmt.Errorf("wire: frame payload %d exceeds limit %d", n-fixed, maxPayload)
	}
	if pl := n - fixed; pl > 0 {
		f.Payload = make([]byte, pl)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, err
		}
	}
	return f, nil
}

// ---------------------------------------------------------------------
// Payload building and bounded decoding
// ---------------------------------------------------------------------

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends v as a zig-zag signed varint.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendBytes appends p length-prefixed.
func AppendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendString appends s length-prefixed.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// Dec is a bounded payload decoder. Every accessor is a no-op once an
// error is recorded, so codecs can decode a whole struct and check
// Err() once. Length-prefixed fields are validated against the bytes
// actually remaining before any slice is taken, so a corrupt length
// cannot over-allocate.
type Dec struct {
	b   []byte
	err error
}

// NewDec wraps a payload for decoding.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decode error, if any.
func (d *Dec) Err() error { return d.err }

// Len returns the number of undecoded bytes remaining.
func (d *Dec) Len() int { return len(d.b) }

func (d *Dec) fail(format string, args ...interface{}) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

// Close errors if undecoded bytes remain, then returns Err.
func (d *Dec) Close() error {
	if d.err == nil && len(d.b) != 0 {
		d.fail("%d trailing payload bytes", len(d.b))
	}
	return d.err
}

// Uvarint decodes one unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Varint decodes one zig-zag signed varint.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Int decodes a varint that must fit an int.
func (d *Dec) Int() int {
	v := d.Varint()
	if int64(int(v)) != v {
		d.fail("varint %d overflows int", v)
		return 0
	}
	return int(v)
}

// Byte decodes one raw byte.
func (d *Dec) Byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// Bool decodes one byte as a boolean.
func (d *Dec) Bool() bool { return d.Byte() != 0 }

// Bytes decodes a length-prefixed byte field of at most max bytes. The
// returned slice aliases the payload; callers that retain it past the
// payload's life must copy.
func (d *Dec) Bytes(max int) []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(max) {
		d.fail("field of %d bytes exceeds limit %d", n, max)
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail("field of %d bytes but only %d remain", n, len(d.b))
		return nil
	}
	v := d.b[:n:n]
	d.b = d.b[n:]
	return v
}

// String decodes a length-prefixed string of at most max bytes.
func (d *Dec) String(max int) string { return string(d.Bytes(max)) }

// Strings decodes a count-prefixed list of strings, bounding both the
// element size and the total element count.
func (d *Dec) Strings(maxEach, maxCount int) []string {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(maxCount) {
		d.fail("list of %d entries exceeds limit %d", n, maxCount)
		return nil
	}
	// Each entry costs at least its one-byte length prefix, so the
	// remaining payload bounds the count; pre-allocate no more.
	if n > uint64(len(d.b)) {
		d.fail("list of %d entries but only %d payload bytes remain", n, len(d.b))
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, d.String(maxEach))
		if d.err != nil {
			return nil
		}
	}
	return out
}

// AppendStrings appends a count-prefixed string list.
func AppendStrings(b []byte, ss []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = AppendString(b, s)
	}
	return b
}

// AppendBool appends a boolean byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// ---------------------------------------------------------------------
// Client-side multiplexing
// ---------------------------------------------------------------------

// pendingCall collects the response frames for one request ID without
// ever blocking the connection's reader: frames queue under the call's
// own lock and a 1-slot ready channel wakes the waiter.
type pendingCall struct {
	mu     sync.Mutex
	frames []Frame
	err    error
	ready  chan struct{}
}

func newPendingCall() *pendingCall {
	return &pendingCall{ready: make(chan struct{}, 1)}
}

func (pc *pendingCall) push(f Frame) {
	pc.mu.Lock()
	pc.frames = append(pc.frames, f)
	pc.mu.Unlock()
	pc.wake()
}

func (pc *pendingCall) fail(err error) {
	pc.mu.Lock()
	if pc.err == nil {
		pc.err = err
	}
	pc.mu.Unlock()
	pc.wake()
}

func (pc *pendingCall) wake() {
	select {
	case pc.ready <- struct{}{}:
	default:
	}
}

// next returns the next queued frame, waiting for the reader or for
// ctx. After a connection failure it returns the recorded error.
func (pc *pendingCall) next(ctx context.Context) (Frame, error) {
	for {
		pc.mu.Lock()
		if len(pc.frames) > 0 {
			f := pc.frames[0]
			pc.frames = pc.frames[1:]
			pc.mu.Unlock()
			return f, nil
		}
		err := pc.err
		pc.mu.Unlock()
		if err != nil {
			return Frame{}, err
		}
		select {
		case <-pc.ready:
		case <-ctx.Done():
			return Frame{}, ctx.Err()
		}
	}
}

// Mux is the client side of one multiplexed binary connection: it
// assigns request IDs, serializes frame writes, and demultiplexes
// response frames to their callers by ID. It re-dials lazily after
// failures; in-flight calls on a dying connection fail fast rather
// than retry (the request may have executed).
type Mux struct {
	addr       string
	timeout    time.Duration
	maxPayload uint32

	mu      sync.Mutex // guards conn lifecycle and pending
	conn    net.Conn
	w       *bufio.Writer
	wmu     sync.Mutex   // serializes frame writes + flushes
	writers atomic.Int64 // senders in flight, for flush coalescing
	pending map[uint64]*pendingCall
	nextID  uint64
	gen     uint64 // bumped every re-dial, keys reader teardown
}

// NewMux returns a lazy client mux for the server at addr. maxPayload
// bounds one received frame's payload.
func NewMux(addr string, timeout time.Duration, maxPayload uint32) *Mux {
	return &Mux{addr: addr, timeout: timeout, maxPayload: maxPayload}
}

// Addr returns the server address the mux dials.
func (m *Mux) Addr() string { return m.addr }

// SetTimeout changes the dial / per-call default timeout.
func (m *Mux) SetTimeout(d time.Duration) {
	m.mu.Lock()
	m.timeout = d
	m.mu.Unlock()
}

// Close drops the connection, failing all in-flight calls; later calls
// re-dial.
func (m *Mux) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropLocked(errors.New("wire: connection closed"))
}

func (m *Mux) dropLocked(cause error) error {
	var err error
	if m.conn != nil {
		err = m.conn.Close()
	}
	m.conn, m.w = nil, nil
	for id, pc := range m.pending {
		pc.fail(cause)
		delete(m.pending, id)
	}
	return err
}

// ensureLocked dials and performs the hello exchange if no connection
// is live, then starts the demultiplexing reader.
func (m *Mux) ensureLocked(ctx context.Context) error {
	if m.conn != nil {
		return nil
	}
	d := net.Dialer{Timeout: m.timeout}
	conn, err := d.DialContext(ctx, "tcp", m.addr)
	if err != nil {
		return err
	}
	if m.timeout > 0 {
		conn.SetDeadline(time.Now().Add(m.timeout))
	}
	if err := WriteHello(conn, Version); err != nil {
		conn.Close()
		return err
	}
	ver, err := ReadHello(conn)
	if err != nil {
		conn.Close()
		return err
	}
	if ver != Version {
		conn.Close()
		return fmt.Errorf("%w: server speaks %d, client %d", ErrVersion, ver, Version)
	}
	conn.SetDeadline(time.Time{})
	m.conn = conn
	m.w = bufio.NewWriter(conn)
	m.pending = make(map[uint64]*pendingCall)
	m.gen++
	go m.readLoop(conn, m.gen)
	return nil
}

// readLoop demultiplexes response frames until the connection dies.
func (m *Mux) readLoop(conn net.Conn, gen uint64) {
	r := bufio.NewReader(conn)
	var cause error
	for {
		f, err := ReadFrame(r, m.maxPayload)
		if err != nil {
			cause = err
			break
		}
		m.mu.Lock()
		if m.gen != gen {
			m.mu.Unlock()
			return
		}
		pc, ok := m.pending[f.ID]
		if ok && f.Final() {
			delete(m.pending, f.ID)
		}
		m.mu.Unlock()
		if !ok {
			// A frame for a request nobody is waiting on: either a
			// canceled call (harmless, drop it) — unsolicited IDs also
			// land here and are ignored rather than trusted.
			continue
		}
		pc.push(f)
	}
	m.mu.Lock()
	if m.gen == gen {
		m.dropLocked(fmt.Errorf("wire: %s: connection lost: %w", m.addr, cause))
	}
	m.mu.Unlock()
}

// Stream is the response side of one call: a sequence of frames ending
// with FlagFinal.
type Stream struct {
	m    *Mux
	id   uint64
	pc   *pendingCall
	done bool
}

// Next returns the next response frame. After the FlagFinal frame has
// been returned it reports io.EOF.
func (s *Stream) Next(ctx context.Context) (Frame, error) {
	if s.done {
		return Frame{}, io.EOF
	}
	f, err := s.pc.next(ctx)
	if err != nil {
		s.Cancel()
		return Frame{}, err
	}
	if f.Final() {
		s.done = true
	}
	return f, nil
}

// Cancel abandons the call: later frames for its ID are dropped by the
// reader. It is safe to call at any time, including after completion.
func (s *Stream) Cancel() {
	s.m.mu.Lock()
	delete(s.m.pending, s.id)
	s.m.mu.Unlock()
}

// Call sends one request frame (the mux assigns its ID) and returns
// the response stream. When ctx carries a span context (obs.ContextWith
// / Tracer.StartCtx), it rides the frame as the FlagTrace header, so
// the server joins the caller's trace. Dial errors are returned as-is
// so callers can retry idempotent requests; write errors drop the
// connection.
func (m *Mux) Call(ctx context.Context, typ uint8, payload []byte) (*Stream, error) {
	sc, _ := obs.FromContext(ctx)
	return m.CallSC(ctx, sc, typ, payload)
}

// CallSC is Call with the span context supplied explicitly, for callers
// that already hold it — re-extracting it from ctx on every RPC is
// measurable on the hot path. A zero sc sends an untraced frame.
func (m *Mux) CallSC(ctx context.Context, sc obs.SpanContext, typ uint8, payload []byte) (*Stream, error) {
	m.mu.Lock()
	if err := m.ensureLocked(ctx); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	m.nextID++
	id := m.nextID
	pc := newPendingCall()
	m.pending[id] = pc
	conn, w := m.conn, m.w
	m.mu.Unlock()

	// Coalesced writes: frames from concurrent callers accumulate in
	// the buffered writer, and only the last sender in the pack pays
	// for the flush — one syscall carries a whole batch of requests.
	m.writers.Add(1)
	m.wmu.Lock()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetWriteDeadline(dl)
	} else if m.timeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(m.timeout))
	}
	err := WriteFrame(w, Frame{Type: typ, ID: id, Flags: FlagFinal, Trace: sc.Trace, Span: sc.Span, Payload: payload})
	if m.writers.Add(-1) == 0 && err == nil {
		err = w.Flush()
	}
	conn.SetWriteDeadline(time.Time{})
	m.wmu.Unlock()
	if err != nil {
		m.mu.Lock()
		if m.conn == conn {
			m.dropLocked(fmt.Errorf("wire: %s: write: %w", m.addr, err))
		}
		m.mu.Unlock()
		return nil, err
	}
	return &Stream{m: m, id: id, pc: pc}, nil
}

// CallOne performs a single-frame request/response round trip.
func (m *Mux) CallOne(ctx context.Context, typ uint8, payload []byte) (Frame, error) {
	sc, _ := obs.FromContext(ctx)
	return m.CallOneSC(ctx, sc, typ, payload)
}

// CallOneSC is CallOne with the span context supplied explicitly (see
// CallSC).
func (m *Mux) CallOneSC(ctx context.Context, sc obs.SpanContext, typ uint8, payload []byte) (Frame, error) {
	st, err := m.CallSC(ctx, sc, typ, payload)
	if err != nil {
		return Frame{}, err
	}
	defer st.Cancel()
	return st.Next(ctx)
}
