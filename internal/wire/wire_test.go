package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"hacfs/internal/obs"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: 1, ID: 1},
		{Type: 7, Flags: FlagFinal, ID: 1<<63 + 9, Payload: []byte("hello")},
		{Type: 255, ID: 0, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf, 1<<20)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Flags != want.Flags || got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
}

// TestFrameTraceRoundTrip: a frame with a span context grows a trace
// header and reads back identically; a traceless frame stays at the
// pre-trace encoding (10-byte header, no flag) so legacy peers parse it.
func TestFrameTraceRoundTrip(t *testing.T) {
	trace := obs.NewTraceID()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: 3, ID: 9, Flags: FlagFinal, Trace: trace, Span: 42, Payload: []byte("q")}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != trace || got.Span != 42 {
		t.Fatalf("trace context = {%s %d}, want {%s 42}", got.Trace, got.Span, trace)
	}
	if got.Flags&FlagTrace == 0 {
		t.Fatal("trace flag not set on a traced frame")
	}
	if got.Flags&FlagFinal == 0 || !bytes.Equal(got.Payload, []byte("q")) {
		t.Fatalf("frame fields damaged: %+v", got)
	}

	// Untraced frame: byte-identical to the pre-trace wire format.
	buf.Reset()
	if err := WriteFrame(&buf, Frame{Type: 3, ID: 9, Payload: []byte("q")}); err != nil {
		t.Fatal(err)
	}
	if n := buf.Len(); n != 4+10+1 {
		t.Fatalf("untraced frame is %d bytes, want %d (no trace header)", n, 4+10+1)
	}
	got, err = ReadFrame(&buf, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Trace.IsZero() || got.Span != 0 || got.Flags&FlagTrace != 0 {
		t.Fatalf("untraced frame read back a trace: %+v", got)
	}

	// FlagTrace set by a corrupt writer without the header bytes: the
	// declared length is too short for the fixed part and must error.
	buf.Reset()
	binary.Write(&buf, binary.BigEndian, uint32(10))
	hdr := make([]byte, 10)
	hdr[1] = FlagTrace
	buf.Write(hdr)
	if _, err := ReadFrame(&buf, 1<<20); err == nil {
		t.Fatal("traced frame without trace header bytes accepted")
	}
}

func TestReadFrameBounds(t *testing.T) {
	// Declared length below the header.
	var buf bytes.Buffer
	binary.Write(&buf, binary.BigEndian, uint32(3))
	buf.WriteString("abc")
	if _, err := ReadFrame(&buf, 1<<20); err == nil {
		t.Fatal("undersized length accepted")
	}
	// Declared length above the payload budget: must error before
	// consuming (or allocating) the oversized payload.
	buf.Reset()
	binary.Write(&buf, binary.BigEndian, uint32(10+101))
	if _, err := ReadFrame(&buf, 100); err == nil {
		t.Fatal("oversized length accepted")
	}
	// Truncated payload.
	buf.Reset()
	binary.Write(&buf, binary.BigEndian, uint32(10+5))
	buf.Write(make([]byte, 10+2))
	if _, err := ReadFrame(&buf, 1<<20); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestHello(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf, 3); err != nil {
		t.Fatal(err)
	}
	if !IsMagic(buf.Bytes()) {
		t.Fatal("hello does not carry the magic")
	}
	v, err := ReadHello(&buf)
	if err != nil || v != 3 {
		t.Fatalf("ReadHello = %d, %v", v, err)
	}
	if _, err := ReadHello(strings.NewReader("PING\n")); !errors.Is(err, ErrNotBinary) {
		t.Fatalf("line-protocol preamble: err = %v, want ErrNotBinary", err)
	}
	if IsMagic([]byte("PING")) || IsMagic([]byte("HA")) {
		t.Fatal("IsMagic false positive")
	}
}

func TestDecBounded(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 42)
	b = AppendVarint(b, -7)
	b = AppendString(b, "path")
	b = AppendStrings(b, []string{"a", "bb"})
	b = AppendBool(b, true)

	d := NewDec(b)
	if v := d.Uvarint(); v != 42 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := d.Varint(); v != -7 {
		t.Fatalf("varint = %d", v)
	}
	if s := d.String(64); s != "path" {
		t.Fatalf("string = %q", s)
	}
	if ss := d.Strings(64, 16); len(ss) != 2 || ss[1] != "bb" {
		t.Fatalf("strings = %v", ss)
	}
	if !d.Bool() {
		t.Fatal("bool = false")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// A huge declared string length must be rejected without
	// allocating.
	d = NewDec(AppendUvarint(nil, 1<<40))
	if d.Bytes(1<<20) != nil || d.Err() == nil {
		t.Fatal("oversized field accepted")
	}
	// A count larger than the remaining payload must be rejected.
	d = NewDec(AppendUvarint(nil, 1<<30))
	if d.Strings(64, 1<<31) != nil || d.Err() == nil {
		t.Fatal("oversized list accepted")
	}
	// Trailing bytes are an error.
	d = NewDec([]byte{0, 1})
	d.Uvarint()
	if err := d.Close(); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// echoServer speaks the framing: hello exchange, then echoes every
// request payload back on its ID, optionally split into two frames.
func echoServer(t *testing.T, split bool) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				if _, err := ReadHello(conn); err != nil {
					return
				}
				if err := WriteHello(conn, Version); err != nil {
					return
				}
				for {
					f, err := ReadFrame(conn, 1<<20)
					if err != nil {
						return
					}
					if split && len(f.Payload) > 1 {
						WriteFrame(conn, Frame{Type: f.Type, ID: f.ID, Payload: f.Payload[:1]})
						WriteFrame(conn, Frame{Type: f.Type, ID: f.ID, Flags: FlagFinal, Payload: f.Payload[1:]})
						continue
					}
					WriteFrame(conn, Frame{Type: f.Type, ID: f.ID, Flags: FlagFinal, Payload: f.Payload})
				}
			}()
		}
	}()
	return l.Addr().String()
}

func TestMuxConcurrentCalls(t *testing.T) {
	addr := echoServer(t, false)
	m := NewMux(addr, 5*time.Second, 1<<20)
	defer m.Close()
	ctx := context.Background()
	const n = 64
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			payload := []byte{byte(i), byte(i >> 8)}
			f, err := m.CallOne(ctx, 9, payload)
			if err == nil && !bytes.Equal(f.Payload, payload) {
				err = errors.New("payload mismatch across IDs")
			}
			errs <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestMuxStreamedResponse(t *testing.T) {
	addr := echoServer(t, true)
	m := NewMux(addr, 5*time.Second, 1<<20)
	defer m.Close()
	ctx := context.Background()
	st, err := m.Call(ctx, 3, []byte("xyz"))
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	for {
		f, err := st.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, f.Payload...)
	}
	if string(got) != "xyz" {
		t.Fatalf("reassembled stream = %q", got)
	}
}

func TestMuxVersionMismatch(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		ReadHello(conn)
		WriteHello(conn, 99) // wrong version
		buf := make([]byte, 1)
		conn.Read(buf) // hold until client gives up
	}()
	m := NewMux(l.Addr().String(), 2*time.Second, 1<<20)
	defer m.Close()
	if _, err := m.CallOne(context.Background(), 1, nil); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestMuxConnectionLossFailsPending(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		ReadHello(conn)
		WriteHello(conn, Version)
		ReadFrame(conn, 1<<20)
		conn.Close() // die without answering
	}()
	m := NewMux(l.Addr().String(), 2*time.Second, 1<<20)
	defer m.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := m.CallOne(ctx, 1, nil); err == nil {
		t.Fatal("call on dead connection succeeded")
	}
}
