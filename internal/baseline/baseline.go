// Package baseline re-implements, in simplified form, the two
// user-level file systems the paper compares HAC against in Table 2:
//
//   - Jade (Rao & Peterson): a logical name space resolved in user
//     space on top of physical file systems. JadeFS reproduces the
//     mechanism that costs Jade its overhead — per-component pathname
//     resolution through a user-level logical-name table with a
//     directory cache.
//
//   - Pseudo-file-systems (Welch & Ousterhout, Sprite): every operation
//     is forwarded as a message to a user-level server process. PseudoFS
//     reproduces that shape — each call is marshalled into a request,
//     handed to a server goroutine over a channel, executed there, and
//     the reply marshalled back.
//
// Both implement vfs.FileSystem, so the Andrew harness measures them
// exactly as it measures HAC and the raw substrate.
package baseline

import (
	"sync"

	"hacfs/internal/vfs"
)

// JadeFS layers a user-level logical name space over a substrate.
// Every path is resolved component by component against the logical
// prefix table and validated against the substrate, with a small
// resolution cache — the Jade mechanism.
type JadeFS struct {
	under vfs.FileSystem

	mu sync.Mutex
	// logical prefix → physical prefix; the identity mapping for "/" is
	// always present, and users may graft other file systems in.
	table map[string]string
	// resolution cache: logical directory → physical directory.
	cache    map[string]string
	cacheCap int
}

var _ vfs.FileSystem = (*JadeFS)(nil)

// NewJade returns a Jade-style layer over under. Resolution caching is
// off by default — Jade resolves every pathname in user space; call
// EnableCache to add a per-directory resolution cache.
func NewJade(under vfs.FileSystem) *JadeFS {
	return &JadeFS{
		under: under,
		table: map[string]string{"/": "/"},
	}
}

// EnableCache turns on the per-directory resolution cache with the
// given capacity.
func (j *JadeFS) EnableCache(capacity int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cacheCap = capacity
	j.cache = make(map[string]string, capacity)
}

// Graft maps the logical prefix onto a physical prefix, like attaching
// another file system to Jade's logical name space.
func (j *JadeFS) Graft(logical, physical string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.table[logical] = physical
	if j.cache != nil {
		j.cache = make(map[string]string, j.cacheCap)
	}
}

// resolve maps a logical path to a physical one, walking components
// through the prefix table. Intermediate directories are validated
// against the substrate (that is where Jade pays its overhead); results
// are cached per directory.
func (j *JadeFS) resolve(logical string) (string, error) {
	clean, err := vfs.Clean(logical)
	if err != nil {
		return "", err
	}
	dir, base := vfs.Split(clean)

	j.mu.Lock()
	if j.cache != nil {
		if phys, ok := j.cache[dir]; ok {
			j.mu.Unlock()
			if base == "" {
				return phys, nil
			}
			return vfs.Join(phys, base), nil
		}
	}
	j.mu.Unlock()

	// Longest-prefix match in the logical table.
	j.mu.Lock()
	bestLogical, bestPhysical := "/", "/"
	for lp, pp := range j.table {
		if vfs.HasPrefix(dir, lp) && len(lp) > len(bestLogical) {
			bestLogical, bestPhysical = lp, pp
		}
	}
	j.mu.Unlock()

	// Per-component validation from the graft point down.
	rest := dir[len(bestLogical):]
	phys := bestPhysical
	for _, c := range splitComponents(rest) {
		phys = vfs.Join(phys, c)
		if _, err := j.under.Lstat(phys); err != nil {
			return "", err
		}
	}
	j.mu.Lock()
	if j.cache != nil {
		if len(j.cache) >= j.cacheCap {
			for k := range j.cache {
				delete(j.cache, k)
				break
			}
		}
		j.cache[dir] = phys
	}
	j.mu.Unlock()
	if base == "" {
		return phys, nil
	}
	return vfs.Join(phys, base), nil
}

// invalidate drops cache entries under a logical path after mutations.
func (j *JadeFS) invalidate(logical string) {
	clean, err := vfs.Clean(logical)
	if err != nil {
		return
	}
	j.mu.Lock()
	for k := range j.cache {
		if vfs.HasPrefix(k, clean) {
			delete(j.cache, k)
		}
	}
	j.mu.Unlock()
}

func splitComponents(p string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(p); i++ {
		if i == len(p) || p[i] == '/' {
			if i > start {
				out = append(out, p[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// Mkdir creates a directory.
func (j *JadeFS) Mkdir(path string) error {
	p, err := j.resolve(path)
	if err != nil {
		return err
	}
	return j.under.Mkdir(p)
}

// MkdirAll creates a directory and missing parents.
func (j *JadeFS) MkdirAll(path string) error {
	clean, err := vfs.Clean(path)
	if err != nil {
		return err
	}
	// Component-wise so each level passes through resolution.
	cur := "/"
	for _, c := range splitComponents(clean) {
		cur = vfs.Join(cur, c)
		p, err := j.resolve(cur)
		if err != nil {
			return err
		}
		if mkErr := j.under.Mkdir(p); mkErr != nil {
			if _, statErr := j.under.Stat(p); statErr != nil {
				return mkErr
			}
		}
	}
	return nil
}

// Create creates or truncates a file.
func (j *JadeFS) Create(path string) (vfs.File, error) {
	p, err := j.resolve(path)
	if err != nil {
		return nil, err
	}
	return j.under.Create(p)
}

// Open opens a file for reading.
func (j *JadeFS) Open(path string) (vfs.File, error) {
	p, err := j.resolve(path)
	if err != nil {
		return nil, err
	}
	return j.under.Open(p)
}

// OpenFile opens a file with flags.
func (j *JadeFS) OpenFile(path string, flag int) (vfs.File, error) {
	p, err := j.resolve(path)
	if err != nil {
		return nil, err
	}
	return j.under.OpenFile(p, flag)
}

// ReadFile reads a whole file.
func (j *JadeFS) ReadFile(path string) ([]byte, error) {
	p, err := j.resolve(path)
	if err != nil {
		return nil, err
	}
	return j.under.ReadFile(p)
}

// WriteFile writes a whole file.
func (j *JadeFS) WriteFile(path string, data []byte) error {
	p, err := j.resolve(path)
	if err != nil {
		return err
	}
	return j.under.WriteFile(p, data)
}

// Symlink creates a symbolic link.
func (j *JadeFS) Symlink(target, link string) error {
	p, err := j.resolve(link)
	if err != nil {
		return err
	}
	return j.under.Symlink(target, p)
}

// Readlink reads a symbolic link.
func (j *JadeFS) Readlink(path string) (string, error) {
	p, err := j.resolve(path)
	if err != nil {
		return "", err
	}
	return j.under.Readlink(p)
}

// Remove deletes one object.
func (j *JadeFS) Remove(path string) error {
	p, err := j.resolve(path)
	if err != nil {
		return err
	}
	j.invalidate(path)
	return j.under.Remove(p)
}

// RemoveAll deletes a subtree.
func (j *JadeFS) RemoveAll(path string) error {
	p, err := j.resolve(path)
	if err != nil {
		return err
	}
	j.invalidate(path)
	return j.under.RemoveAll(p)
}

// Rename moves an object.
func (j *JadeFS) Rename(oldPath, newPath string) error {
	po, err := j.resolve(oldPath)
	if err != nil {
		return err
	}
	pn, err := j.resolve(newPath)
	if err != nil {
		return err
	}
	j.invalidate(oldPath)
	j.invalidate(newPath)
	return j.under.Rename(po, pn)
}

// Stat returns metadata, following symlinks.
func (j *JadeFS) Stat(path string) (vfs.Info, error) {
	p, err := j.resolve(path)
	if err != nil {
		return vfs.Info{}, err
	}
	return j.under.Stat(p)
}

// Lstat returns metadata without following a final symlink.
func (j *JadeFS) Lstat(path string) (vfs.Info, error) {
	p, err := j.resolve(path)
	if err != nil {
		return vfs.Info{}, err
	}
	return j.under.Lstat(p)
}

// ReadDir lists a directory.
func (j *JadeFS) ReadDir(path string) ([]vfs.DirEntry, error) {
	p, err := j.resolve(path)
	if err != nil {
		return nil, err
	}
	return j.under.ReadDir(p)
}
