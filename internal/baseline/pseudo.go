package baseline

import (
	"errors"
	"io"

	"hacfs/internal/vfs"
)

// PseudoFS forwards every operation as a message to a user-level server
// goroutine, in the style of Sprite's pseudo-file-systems: the kernel
// (caller) marshals a request, the server process executes it against
// the real file system, and the reply travels back. The forwarding hop
// is the measured overhead.
type PseudoFS struct {
	under    vfs.FileSystem
	requests chan request
	done     chan struct{}
}

var _ vfs.FileSystem = (*PseudoFS)(nil)

// request is one marshalled operation. fn carries per-handle
// operations (reads and writes on open files), which also traverse the
// hop.
type request struct {
	op     string
	path   string
	path2  string
	data   []byte
	flag   int
	fn     func() reply
	replyC chan reply
}

// reply is one marshalled result.
type reply struct {
	err     error
	data    []byte
	info    vfs.Info
	entries []vfs.DirEntry
	str     string
	file    vfs.File
	flagOut int
	off     int64
}

// ErrStopped is returned by operations after Close.
var ErrStopped = errors.New("baseline: pseudo-fs server stopped")

// NewPseudo starts a Pseudo-style layer over under. Call Close to stop
// its server goroutine.
func NewPseudo(under vfs.FileSystem) *PseudoFS {
	p := &PseudoFS{
		under:    under,
		requests: make(chan request),
		done:     make(chan struct{}),
	}
	go p.serve()
	return p
}

// Close stops the server goroutine.
func (p *PseudoFS) Close() {
	select {
	case <-p.done:
	default:
		close(p.done)
	}
}

// serve is the user-level server process: it executes marshalled
// requests one at a time.
func (p *PseudoFS) serve() {
	for {
		select {
		case <-p.done:
			return
		case req := <-p.requests:
			req.replyC <- p.execute(req)
		}
	}
}

func (p *PseudoFS) execute(req request) reply {
	switch req.op {
	case "fileop":
		return req.fn()
	case "mkdir":
		return reply{err: p.under.Mkdir(req.path)}
	case "mkdirall":
		return reply{err: p.under.MkdirAll(req.path)}
	case "openfile":
		f, err := p.under.OpenFile(req.path, req.flag)
		return reply{file: f, err: err}
	case "readfile":
		data, err := p.under.ReadFile(req.path)
		return reply{data: data, err: err}
	case "writefile":
		return reply{err: p.under.WriteFile(req.path, req.data)}
	case "symlink":
		return reply{err: p.under.Symlink(req.path2, req.path)}
	case "readlink":
		s, err := p.under.Readlink(req.path)
		return reply{str: s, err: err}
	case "remove":
		return reply{err: p.under.Remove(req.path)}
	case "removeall":
		return reply{err: p.under.RemoveAll(req.path)}
	case "rename":
		return reply{err: p.under.Rename(req.path, req.path2)}
	case "stat":
		info, err := p.under.Stat(req.path)
		return reply{info: info, err: err}
	case "lstat":
		info, err := p.under.Lstat(req.path)
		return reply{info: info, err: err}
	case "readdir":
		entries, err := p.under.ReadDir(req.path)
		return reply{entries: entries, err: err}
	default:
		return reply{err: errors.New("baseline: unknown op " + req.op)}
	}
}

// call marshals one request, ships it to the server, and waits for the
// reply.
func (p *PseudoFS) call(req request) reply {
	req.replyC = make(chan reply, 1)
	select {
	case <-p.done:
		return reply{err: ErrStopped}
	case p.requests <- req:
	}
	return <-req.replyC
}

// Mkdir creates a directory.
func (p *PseudoFS) Mkdir(path string) error {
	return p.call(request{op: "mkdir", path: path}).err
}

// MkdirAll creates a directory and missing parents.
func (p *PseudoFS) MkdirAll(path string) error {
	return p.call(request{op: "mkdirall", path: path}).err
}

// Create creates or truncates a file.
func (p *PseudoFS) Create(path string) (vfs.File, error) {
	return p.OpenFile(path, vfs.ORead|vfs.OWrite|vfs.OCreate|vfs.OTrunc)
}

// Open opens a file for reading.
func (p *PseudoFS) Open(path string) (vfs.File, error) {
	return p.OpenFile(path, vfs.ORead)
}

// OpenFile opens a file with flags. The returned handle's reads and
// writes also traverse the message hop, as Sprite's did.
func (p *PseudoFS) OpenFile(path string, flag int) (vfs.File, error) {
	r := p.call(request{op: "openfile", path: path, flag: flag})
	if r.err != nil {
		return nil, r.err
	}
	return &pseudoFile{fs: p, f: r.file}, nil
}

// ReadFile reads a whole file.
func (p *PseudoFS) ReadFile(path string) ([]byte, error) {
	r := p.call(request{op: "readfile", path: path})
	return r.data, r.err
}

// WriteFile writes a whole file.
func (p *PseudoFS) WriteFile(path string, data []byte) error {
	return p.call(request{op: "writefile", path: path, data: data}).err
}

// Symlink creates a symbolic link.
func (p *PseudoFS) Symlink(target, link string) error {
	return p.call(request{op: "symlink", path: link, path2: target}).err
}

// Readlink reads a symbolic link.
func (p *PseudoFS) Readlink(path string) (string, error) {
	r := p.call(request{op: "readlink", path: path})
	return r.str, r.err
}

// Remove deletes one object.
func (p *PseudoFS) Remove(path string) error {
	return p.call(request{op: "remove", path: path}).err
}

// RemoveAll deletes a subtree.
func (p *PseudoFS) RemoveAll(path string) error {
	return p.call(request{op: "removeall", path: path}).err
}

// Rename moves an object.
func (p *PseudoFS) Rename(oldPath, newPath string) error {
	return p.call(request{op: "rename", path: oldPath, path2: newPath}).err
}

// Stat returns metadata, following symlinks.
func (p *PseudoFS) Stat(path string) (vfs.Info, error) {
	r := p.call(request{op: "stat", path: path})
	return r.info, r.err
}

// Lstat returns metadata without following a final symlink.
func (p *PseudoFS) Lstat(path string) (vfs.Info, error) {
	r := p.call(request{op: "lstat", path: path})
	return r.info, r.err
}

// ReadDir lists a directory.
func (p *PseudoFS) ReadDir(path string) ([]vfs.DirEntry, error) {
	r := p.call(request{op: "readdir", path: path})
	return r.entries, r.err
}

// pseudoFile forwards per-handle operations through the message hop,
// as Sprite pseudo-file-systems forwarded reads and writes. Like
// Sprite — whose kernel cached pseudo-file-system data in its ordinary
// file cache — sequential reads are served from a per-handle cache
// filled by a single hop, so a file costs one round trip to read, not
// one per block.
type pseudoFile struct {
	fs    *PseudoFS
	f     vfs.File
	cache []byte // whole-file cache for reads; nil until first Read
	off   int64  // read offset within cache
	dirty bool   // writes happened; cache must be refilled
}

// do executes fn on the server goroutine and returns its reply.
func (pf *pseudoFile) do(fn func() reply) reply {
	return pf.fs.call(request{op: "fileop", fn: fn})
}

// fill fetches the whole file into the read cache with one hop.
func (pf *pseudoFile) fill() error {
	r := pf.do(func() reply {
		info, err := pf.f.Stat()
		if err != nil {
			return reply{err: err}
		}
		buf := make([]byte, info.Size)
		if info.Size > 0 {
			if _, err := pf.f.ReadAt(buf, 0); err != nil && err != io.EOF {
				return reply{err: err}
			}
		}
		off, err := pf.f.Seek(0, io.SeekCurrent)
		return reply{data: buf, off: off, err: err}
	})
	if r.err != nil {
		return r.err
	}
	pf.cache = r.data
	pf.off = r.off
	pf.dirty = false
	return nil
}

func (pf *pseudoFile) Read(b []byte) (int, error) {
	if pf.cache == nil || pf.dirty {
		if err := pf.fill(); err != nil {
			return 0, err
		}
	}
	if pf.off >= int64(len(pf.cache)) {
		return 0, io.EOF
	}
	n := copy(b, pf.cache[pf.off:])
	pf.off += int64(n)
	return n, nil
}

func (pf *pseudoFile) Write(b []byte) (int, error) {
	cached := pf.cache != nil
	r := pf.do(func() reply {
		if cached {
			// Reads advanced only the client-side offset; bring the
			// server in line before writing at the current position.
			if _, err := pf.f.Seek(pf.off, io.SeekStart); err != nil {
				return reply{err: err}
			}
		}
		n, err := pf.f.Write(b)
		return reply{flagOut: n, err: err}
	})
	if r.err == nil {
		pf.dirty = true
		pf.off += int64(r.flagOut)
	}
	return r.flagOut, r.err
}

func (pf *pseudoFile) Seek(offset int64, whence int) (int64, error) {
	r := pf.do(func() reply {
		off, err := pf.f.Seek(offset, whence)
		return reply{off: off, err: err}
	})
	if r.err == nil {
		pf.off = r.off
	}
	return r.off, r.err
}

func (pf *pseudoFile) ReadAt(b []byte, off int64) (int, error) {
	r := pf.do(func() reply {
		n, err := pf.f.ReadAt(b, off)
		return reply{flagOut: n, err: err}
	})
	return r.flagOut, r.err
}

func (pf *pseudoFile) WriteAt(b []byte, off int64) (int, error) {
	r := pf.do(func() reply {
		n, err := pf.f.WriteAt(b, off)
		return reply{flagOut: n, err: err}
	})
	if r.err == nil {
		pf.dirty = true
	}
	return r.flagOut, r.err
}

func (pf *pseudoFile) Truncate(size int64) error {
	err := pf.do(func() reply { return reply{err: pf.f.Truncate(size)} }).err
	if err == nil {
		pf.dirty = true
	}
	return err
}

func (pf *pseudoFile) Close() error {
	return pf.do(func() reply { return reply{err: pf.f.Close()} }).err
}

func (pf *pseudoFile) Name() string { return pf.f.Name() }

func (pf *pseudoFile) Stat() (vfs.Info, error) {
	r := pf.do(func() reply {
		info, err := pf.f.Stat()
		return reply{info: info, err: err}
	})
	return r.info, r.err
}
