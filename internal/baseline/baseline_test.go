package baseline

import (
	"errors"
	"io"
	"reflect"
	"testing"

	"hacfs/internal/andrew"
	"hacfs/internal/vfs"
)

// layers returns each baseline layer over a fresh substrate plus the
// substrate itself, for equivalence testing.
func layers(t *testing.T) map[string]vfs.FileSystem {
	t.Helper()
	pseudo := NewPseudo(vfs.New())
	t.Cleanup(pseudo.Close)
	return map[string]vfs.FileSystem{
		"raw":    vfs.New(),
		"jade":   NewJade(vfs.New()),
		"pseudo": pseudo,
	}
}

func TestLayersBehaveLikeRaw(t *testing.T) {
	for name, fsys := range layers(t) {
		name, fsys := name, fsys
		t.Run(name, func(t *testing.T) {
			if err := fsys.MkdirAll("/a/b"); err != nil {
				t.Fatal(err)
			}
			if err := fsys.WriteFile("/a/b/f.txt", []byte("hello")); err != nil {
				t.Fatal(err)
			}
			data, err := fsys.ReadFile("/a/b/f.txt")
			if err != nil || string(data) != "hello" {
				t.Fatalf("ReadFile = %q, %v", data, err)
			}
			info, err := fsys.Stat("/a/b/f.txt")
			if err != nil || info.Size != 5 {
				t.Fatalf("Stat = %+v, %v", info, err)
			}
			if err := fsys.Symlink("/a/b/f.txt", "/a/ln"); err != nil {
				t.Fatal(err)
			}
			if target, err := fsys.Readlink("/a/ln"); err != nil || target != "/a/b/f.txt" {
				t.Fatalf("Readlink = %q, %v", target, err)
			}
			if err := fsys.Rename("/a/b/f.txt", "/a/b/g.txt"); err != nil {
				t.Fatal(err)
			}
			entries, err := fsys.ReadDir("/a/b")
			if err != nil || len(entries) != 1 || entries[0].Name != "g.txt" {
				t.Fatalf("ReadDir = %v, %v", entries, err)
			}
			// Handle I/O.
			f, err := fsys.Open("/a/b/g.txt")
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 2)
			if n, err := f.Read(buf); err != nil || n != 2 || string(buf) != "he" {
				t.Fatalf("Read = %d %q %v", n, buf, err)
			}
			if _, err := f.Seek(0, io.SeekStart); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			if err := fsys.Remove("/a/ln"); err != nil {
				t.Fatal(err)
			}
			if err := fsys.RemoveAll("/a"); err != nil {
				t.Fatal(err)
			}
			if _, err := fsys.Stat("/a"); !errors.Is(err, vfs.ErrNotExist) {
				t.Fatalf("Stat after RemoveAll = %v", err)
			}
		})
	}
}

func TestLayersEquivalentTreeState(t *testing.T) {
	results := map[string][]string{}
	for name, fsys := range layers(t) {
		if err := andrew.GenerateSource(fsys, "/src", andrew.Spec{Dirs: 3, FilesPerDir: 4, FileSize: 512}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := andrew.Run(fsys, "/src", "/dst", andrew.Spec{Dirs: 3, FilesPerDir: 4, FileSize: 512}); err != nil {
			t.Fatalf("%s: andrew: %v", name, err)
		}
		files, err := vfs.Files(fsys, "/")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results[name] = files
	}
	if !reflect.DeepEqual(results["raw"], results["jade"]) {
		t.Fatalf("jade diverged from raw:\n%v\nvs\n%v", results["jade"], results["raw"])
	}
	if !reflect.DeepEqual(results["raw"], results["pseudo"]) {
		t.Fatalf("pseudo diverged from raw:\n%v\nvs\n%v", results["pseudo"], results["raw"])
	}
}

func TestJadeGraft(t *testing.T) {
	under := vfs.New()
	if err := under.MkdirAll("/physical/store"); err != nil {
		t.Fatal(err)
	}
	if err := under.WriteFile("/physical/store/f.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	j := NewJade(under)
	j.Graft("/logical", "/physical")
	data, err := j.ReadFile("/logical/store/f.txt")
	if err != nil || string(data) != "x" {
		t.Fatalf("grafted read = %q, %v", data, err)
	}
	// Writes through the graft land physically.
	if err := j.WriteFile("/logical/store/new.txt", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := under.Stat("/physical/store/new.txt"); err != nil {
		t.Fatalf("grafted write missing: %v", err)
	}
}

func TestJadeCacheInvalidation(t *testing.T) {
	j := NewJade(vfs.New())
	if err := j.MkdirAll("/d/e"); err != nil {
		t.Fatal(err)
	}
	if err := j.WriteFile("/d/e/f", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Stat("/d/e/f"); err != nil {
		t.Fatal(err) // primes the cache for /d/e
	}
	if err := j.RemoveAll("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Stat("/d/e/f"); err == nil {
		t.Fatal("stale cache let a removed path resolve")
	}
}

func TestPseudoAfterClose(t *testing.T) {
	p := NewPseudo(vfs.New())
	p.Close()
	if err := p.Mkdir("/x"); !errors.Is(err, ErrStopped) {
		t.Fatalf("op after close err = %v", err)
	}
	p.Close() // idempotent
}

func TestPseudoHandleOps(t *testing.T) {
	p := NewPseudo(vfs.New())
	defer p.Close()
	f, err := p.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("X"), 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(3); err != nil {
		t.Fatal(err)
	}
	info, err := f.Stat()
	if err != nil || info.Size != 3 {
		t.Fatalf("Stat = %+v, %v", info, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := f.Read(buf); err != nil || string(buf) != "aXc" {
		t.Fatalf("Read = %q, %v", buf, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if f.Name() != "/f" {
		t.Fatalf("Name = %q", f.Name())
	}
}

func TestPseudoConcurrent(t *testing.T) {
	p := NewPseudo(vfs.New())
	defer p.Close()
	if err := p.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		i := i
		go func() {
			for k := 0; k < 50; k++ {
				p := p
				name := "/d/f" + string(rune('a'+i))
				if err := p.WriteFile(name, []byte{byte(k)}); err != nil {
					done <- err
					return
				}
				if _, err := p.ReadFile(name); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
