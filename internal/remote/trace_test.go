package remote

import (
	"bufio"
	"context"
	"net"
	"strconv"
	"sync"
	"testing"
	"time"

	"hacfs/internal/obs"
)

// TestTraceJoinsServerSpan: a traced client search arms the server via
// the TRACE verb, so the server-side span joins the caller's trace with
// the client RPC span as its parent.
func TestTraceJoinsServerSpan(t *testing.T) {
	clientObs, srvObs := obs.NewObserver(), obs.NewObserver()
	c, srv := startServer(t)
	srv.SetObserver(srvObs)
	c.SetObserver(clientObs)

	root, ctx := clientObs.Tracer().StartCtx(context.Background(), "test.root")
	paths, err := c.SearchContext(ctx, "fingerprint")
	root.FinishErr(err)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("search returned nothing")
	}

	id := root.Trace
	var rpc *obs.Span
	for _, sp := range clientObs.Tracer().ByTrace(id) {
		if sp.Name == "rpc.remote.Search" {
			rpc = sp
		}
	}
	if rpc == nil || rpc.Parent != root.ID {
		t.Fatalf("client ring: rpc span %+v, want child of root %d", rpc, root.ID)
	}
	// The server finishes its span around writing the reply; poll.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var joined *obs.Span
		for _, sp := range srvObs.Tracer().ByTrace(id) {
			if sp.Name == "remote.Search" {
				joined = sp
			}
		}
		if joined != nil {
			if joined.Parent != rpc.ID {
				t.Fatalf("server span parent = %d, want client rpc span %d", joined.Parent, rpc.ID)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never retained a remote.Search span for trace %s", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// legacyServer speaks the pre-TRACE line protocol: SEARCH and PING
// work, any other verb gets ERR "unknown verb" but the connection
// stays up — exactly what an old binary does. It records every verb
// it sees so the test can check what the client actually sent.
func legacyServer(t *testing.T) (addr string, verbs func() []string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	var mu sync.Mutex
	var seen []string
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				r := bufio.NewReader(conn)
				w := bufio.NewWriter(conn)
				for {
					line, err := readLine(r)
					if err != nil {
						return
					}
					verb, _ := splitVerb(line)
					mu.Lock()
					seen = append(seen, verb)
					mu.Unlock()
					switch verb {
					case verbSearch:
						writeLine(w, replyOK, "1")
						writeLine(w, quote("/hit"))
					case verbPing:
						writeLine(w, replyPong)
					default:
						writeLine(w, replyErr, quote("unknown verb "+strconv.Quote(verb)))
					}
					if err := w.Flush(); err != nil {
						return
					}
				}
			}()
		}
	}()
	return l.Addr().String(), func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), seen...)
	}
}

// TestTraceDegradesAgainstLegacyServer: a traced client against a
// server that predates the TRACE verb still gets its results — the ERR
// reply marks the connection as untraceable and the client never sends
// TRACE on it again.
func TestTraceDegradesAgainstLegacyServer(t *testing.T) {
	addr, verbs := legacyServer(t)
	o := obs.NewObserver()
	c := Dial("legacy", addr)
	c.SetTimeout(5 * time.Second)
	defer c.Close()
	c.SetObserver(o)

	root, ctx := o.Tracer().StartCtx(context.Background(), "test.root")
	defer root.Finish()
	for i := 0; i < 2; i++ {
		paths, err := c.SearchContext(ctx, "q")
		if err != nil || len(paths) != 1 || paths[0] != "/hit" {
			t.Fatalf("search %d via legacy server = %v, %v", i, paths, err)
		}
	}
	got := verbs()
	if len(got) < 3 || got[0] != verbTrace {
		t.Fatalf("verbs = %v, want a leading TRACE probe then searches", got)
	}
	traceSends := 0
	for _, v := range got {
		if v == verbTrace {
			traceSends++
		}
	}
	if traceSends != 1 {
		t.Fatalf("client sent TRACE %d times on one refused connection, want 1: %v", traceSends, got)
	}
	searches := 0
	for _, v := range got {
		if v == verbSearch {
			searches++
		}
	}
	if searches != 2 {
		t.Fatalf("server saw %d SEARCH verbs, want 2: %v", searches, got)
	}
}
