package remote

import (
	"time"

	"hacfs/internal/obs"
)

// rpcMetrics instruments one protocol method: call count, transport
// latency and error count.
type rpcMetrics struct {
	calls   *obs.Counter   // remote_rpc_total{method=...}
	errors  *obs.Counter   // remote_rpc_errors_total{method=...}
	seconds *obs.Histogram // remote_rpc_seconds{method=...}
}

// done records one finished call. Pass a pointer to the method's named
// error result and register with defer so the outcome is captured on
// every return path.
func (m rpcMetrics) done(start time.Time, err *error) {
	m.calls.Add(1)
	m.seconds.ObserveSince(start)
	if *err != nil {
		m.errors.Add(1)
	}
}

// clientMetrics is the client's handle bundle, resolved once at Dial
// (against obs.Default()) or by SetObserver.
type clientMetrics struct {
	ping, search, fetch rpcMetrics

	retries      *obs.Counter // remote_rpc_retries_total
	dialFailures *obs.Counter // remote_dial_failures_total
}

func newClientMetrics(o *obs.Observer) clientMetrics {
	r := o.Registry()
	m := func(method string) rpcMetrics {
		return rpcMetrics{
			calls:   r.Counter("remote_rpc_total", "method", method),
			errors:  r.Counter("remote_rpc_errors_total", "method", method),
			seconds: r.Histogram("remote_rpc_seconds", nil, "method", method),
		}
	}
	return clientMetrics{
		ping:         m("ping"),
		search:       m("search"),
		fetch:        m("fetch"),
		retries:      r.Counter("remote_rpc_retries_total"),
		dialFailures: r.Counter("remote_dial_failures_total"),
	}
}

// SetObserver redirects the client's metrics and spans to o (they
// default to the process-wide obs.Default()).
func (c *Client) SetObserver(o *obs.Observer) {
	if o == nil {
		o = obs.Discard()
	}
	c.mu.Lock()
	c.met = newClientMetrics(o)
	c.obsv = o
	c.mu.Unlock()
}
