package remote

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"hacfs/internal/obs"
)

// Client talks the remote CBA protocol and implements hac.Namespace —
// and hac.ContextNamespace, so evaluation passes can bound every call
// with a context on top of the client's own per-request timeout. A
// single connection is maintained and re-dialed on failure; the client
// is safe for concurrent use (requests are serialized).
type Client struct {
	name    string
	addr    string
	timeout time.Duration

	mu      sync.Mutex
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	noTrace bool // this connection's server rejected TRACE; stop sending it
	met     clientMetrics
	obsv    *obs.Observer
}

// Dial creates a client for the server at addr. name becomes the
// namespace name inside the HAC volume. No connection is made until the
// first request.
func Dial(name, addr string) *Client {
	return &Client{
		name:    name,
		addr:    addr,
		timeout: 10 * time.Second,
		met:     newClientMetrics(obs.Default()),
		obsv:    obs.Default(),
	}
}

// SetTimeout changes the per-request deadline.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// Name returns the namespace name.
func (c *Client) Name() string { return c.name }

// Close tears down the connection; later requests re-dial.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropLocked()
}

func (c *Client) dropLocked() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn, c.r, c.w = nil, nil, nil
	return err
}

func (c *Client) ensureLocked(ctx context.Context) error {
	if c.conn != nil {
		return nil
	}
	d := net.Dialer{Timeout: c.timeout}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		c.met.dialFailures.Add(1)
		return fmt.Errorf("remote: dial %s: %w", c.addr, err)
	}
	c.conn = conn
	c.r = bufio.NewReader(conn)
	c.w = bufio.NewWriter(conn)
	// A fresh connection may be to an upgraded server: probe TRACE again.
	c.noTrace = false
	return nil
}

// sendTraceLocked arms the server with the caller's trace context, so
// the next command's server span joins the distributed trace. Best
// effort: a pre-TRACE server answers ERR "unknown verb" and keeps the
// connection alive — remember its refusal and never send TRACE on this
// connection again. Transport errors surface on the command that
// follows, not here.
func (c *Client) sendTraceLocked(ctx context.Context) {
	sc, ok := obs.FromContext(ctx)
	if !ok || c.noTrace {
		return
	}
	// Send on the current connection only — no retry/redial, so the
	// armed state cannot outlive the connection it was sent on.
	if err := c.ensureLocked(ctx); err != nil {
		return
	}
	if dl := c.deadlineLocked(ctx); !dl.IsZero() {
		c.conn.SetDeadline(dl)
	}
	if err := writeLine(c.w, verbTrace, sc.Trace.String(), strconv.FormatUint(uint64(sc.Span), 10)); err != nil {
		return
	}
	if err := c.w.Flush(); err != nil {
		return
	}
	line, err := readLine(c.r)
	if err != nil {
		c.dropLocked()
		return
	}
	if verb, _ := splitVerb(line); verb != replyOK {
		c.noTrace = true
	}
}

// deadlineLocked computes the connection deadline for one request: the
// per-request timeout, further tightened by the context's deadline.
func (c *Client) deadlineLocked(ctx context.Context) time.Time {
	var dl time.Time
	if c.timeout > 0 {
		dl = time.Now().Add(c.timeout)
	}
	if cd, ok := ctx.Deadline(); ok && (dl.IsZero() || cd.Before(dl)) {
		dl = cd
	}
	return dl
}

// roundTrip sends one request line and returns the first reply line.
// On transport errors the connection is dropped and the request retried
// once on a fresh connection.
func (c *Client) roundTrip(ctx context.Context, parts ...string) (string, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if attempt > 0 {
			c.met.retries.Add(1)
		}
		if err := ctx.Err(); err != nil {
			return "", err
		}
		if err := c.ensureLocked(ctx); err != nil {
			return "", err
		}
		if dl := c.deadlineLocked(ctx); !dl.IsZero() {
			c.conn.SetDeadline(dl)
		}
		if err := writeLine(c.w, parts...); err == nil {
			if err = c.w.Flush(); err == nil {
				line, err := readLine(c.r)
				if err == nil {
					return line, nil
				}
				lastErr = err
			} else {
				lastErr = err
			}
		} else {
			lastErr = err
		}
		c.dropLocked()
	}
	return "", fmt.Errorf("remote: %s: %w", c.addr, lastErr)
}

// Ping checks liveness.
func (c *Client) Ping() error { return c.PingContext(context.Background()) }

// PingContext checks liveness, bounded by ctx.
func (c *Client) PingContext(ctx context.Context) (err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.met.ping.done(time.Now(), &err)
	line, err := c.roundTrip(ctx, verbPing)
	if err != nil {
		return err
	}
	if line != replyPong {
		return fmt.Errorf("remote: unexpected ping reply %q", line)
	}
	return nil
}

// Search evaluates a query on the remote system and returns matching
// remote paths.
func (c *Client) Search(q string) ([]string, error) {
	return c.SearchContext(context.Background(), q)
}

// SearchContext is Search bounded by ctx (dial, send and reply all
// honor the context's deadline and cancellation).
func (c *Client) SearchContext(ctx context.Context, q string) (_ []string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.met.search.done(time.Now(), &err)
	var sp *obs.Span
	sp, ctx = c.obsv.Tracer().StartCtx(ctx, "rpc.remote.Search")
	sp.Annotate("query", q)
	defer func() { sp.FinishErr(err) }()
	c.sendTraceLocked(ctx)
	line, err := c.roundTrip(ctx, verbSearch, quote(q))
	if err != nil {
		return nil, err
	}
	verb, arg := splitVerb(line)
	switch verb {
	case replyOK:
		n, err := strconv.Atoi(arg)
		if err != nil || n < 0 {
			c.dropLocked()
			return nil, fmt.Errorf("remote: malformed result count %q", arg)
		}
		out := make([]string, 0, n)
		for i := 0; i < n; i++ {
			pl, err := readLine(c.r)
			if err != nil {
				c.dropLocked()
				return nil, err
			}
			p, err := unquote(pl)
			if err != nil {
				c.dropLocked()
				return nil, fmt.Errorf("remote: malformed result line %q", pl)
			}
			out = append(out, p)
		}
		return out, nil
	case replyErr:
		msg, _ := unquote(arg)
		return nil, decodeWireError(msg)
	default:
		c.dropLocked()
		return nil, fmt.Errorf("remote: unexpected reply %q", line)
	}
}

// SearchPage fetches one cursor page of matches: at most limit paths
// starting at cursor after (0 = first page), plus the cursor of the
// next page (0 = no more). The cursor is opaque; pass it back verbatim.
func (c *Client) SearchPage(ctx context.Context, q string, after uint64, limit int) (_ []string, _ uint64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.met.search.done(time.Now(), &err)
	var sp *obs.Span
	sp, ctx = c.obsv.Tracer().StartCtx(ctx, "rpc.remote.SearchPage")
	sp.Annotate("query", q)
	defer func() { sp.FinishErr(err) }()
	c.sendTraceLocked(ctx)
	line, err := c.roundTrip(ctx, verbSearchPage,
		strconv.FormatUint(after, 10), strconv.Itoa(limit), quote(q))
	if err != nil {
		return nil, 0, err
	}
	verb, arg := splitVerb(line)
	switch verb {
	case replyOK:
		cnt, nextStr := splitVerb(arg)
		n, cerr := strconv.Atoi(cnt)
		next, nerr := strconv.ParseUint(nextStr, 10, 64)
		if cerr != nil || nerr != nil || n < 0 {
			c.dropLocked()
			return nil, 0, fmt.Errorf("remote: malformed page header %q", arg)
		}
		out := make([]string, 0, n)
		for i := 0; i < n; i++ {
			pl, err := readLine(c.r)
			if err != nil {
				c.dropLocked()
				return nil, 0, err
			}
			p, err := unquote(pl)
			if err != nil {
				c.dropLocked()
				return nil, 0, fmt.Errorf("remote: malformed result line %q", pl)
			}
			out = append(out, p)
		}
		return out, next, nil
	case replyErr:
		msg, _ := unquote(arg)
		return nil, 0, decodeWireError(msg)
	default:
		c.dropLocked()
		return nil, 0, fmt.Errorf("remote: unexpected reply %q", line)
	}
}

// SearchPageUnder fetches one scope-restricted cursor page plus the
// index epoch it was served from, via the SEARCHU verb. An empty scope
// means the whole tree.
func (c *Client) SearchPageUnder(ctx context.Context, q, scope string, after uint64, limit int) (_ []string, _ uint64, _ uint64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.met.search.done(time.Now(), &err)
	var sp *obs.Span
	sp, ctx = c.obsv.Tracer().StartCtx(ctx, "rpc.remote.SearchUnder")
	sp.Annotate("query", q)
	defer func() { sp.FinishErr(err) }()
	c.sendTraceLocked(ctx)
	line, err := c.roundTrip(ctx, verbSearchUnder,
		strconv.FormatUint(after, 10), strconv.Itoa(limit), quote(scope), quote(q))
	if err != nil {
		return nil, 0, 0, err
	}
	verb, arg := splitVerb(line)
	switch verb {
	case replyOK:
		cnt, rest := splitVerb(arg)
		nextStr, epochStr := splitVerb(rest)
		n, cerr := strconv.Atoi(cnt)
		next, nerr := strconv.ParseUint(nextStr, 10, 64)
		epoch, eerr := strconv.ParseUint(epochStr, 10, 64)
		if cerr != nil || nerr != nil || eerr != nil || n < 0 {
			c.dropLocked()
			return nil, 0, 0, fmt.Errorf("remote: malformed page header %q", arg)
		}
		out := make([]string, 0, n)
		for i := 0; i < n; i++ {
			pl, err := readLine(c.r)
			if err != nil {
				c.dropLocked()
				return nil, 0, 0, err
			}
			p, err := unquote(pl)
			if err != nil {
				c.dropLocked()
				return nil, 0, 0, fmt.Errorf("remote: malformed result line %q", pl)
			}
			out = append(out, p)
		}
		return out, next, epoch, nil
	case replyErr:
		msg, _ := unquote(arg)
		return nil, 0, 0, decodeWireError(msg)
	default:
		c.dropLocked()
		return nil, 0, 0, fmt.Errorf("remote: unexpected reply %q", line)
	}
}

// Resync asks the server to rebuild its index from the document tree.
func (c *Client) Resync(ctx context.Context) (err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	line, err := c.roundTrip(ctx, verbResync)
	if err != nil {
		return err
	}
	verb, arg := splitVerb(line)
	switch verb {
	case replyOK:
		return nil
	case replyErr:
		msg, _ := unquote(arg)
		return decodeWireError(msg)
	default:
		c.dropLocked()
		return fmt.Errorf("remote: unexpected reply %q", line)
	}
}

// Fetch retrieves one remote document.
func (c *Client) Fetch(path string) ([]byte, error) {
	return c.FetchContext(context.Background(), path)
}

// FetchContext is Fetch bounded by ctx.
func (c *Client) FetchContext(ctx context.Context, path string) (_ []byte, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.met.fetch.done(time.Now(), &err)
	line, err := c.roundTrip(ctx, verbFetch, quote(path))
	if err != nil {
		return nil, err
	}
	verb, arg := splitVerb(line)
	switch verb {
	case replyData:
		n, err := strconv.Atoi(arg)
		if err != nil || n < 0 || n > maxFetch {
			c.dropLocked()
			return nil, fmt.Errorf("remote: malformed data length %q", arg)
		}
		buf := make([]byte, n)
		if _, err := readFull(c.r, buf); err != nil {
			c.dropLocked()
			return nil, err
		}
		return buf, nil
	case replyErr:
		msg, _ := unquote(arg)
		return nil, decodeWireError(msg)
	default:
		c.dropLocked()
		return nil, fmt.Errorf("remote: unexpected reply %q", line)
	}
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
