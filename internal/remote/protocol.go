// Package remote implements a network protocol for content-based
// access, so a HAC volume can semantically mount query systems running
// elsewhere (§3 of the paper). The server side exposes an index over a
// document tree; the client side implements hac.Namespace.
//
// The wire protocol is a line-oriented text protocol over TCP:
//
//	C: SEARCH <quoted-query>\n        S: OK <n>\n  then n path lines
//	C: SEARCHP <after> <limit> <quoted-query>\n
//	                                  S: OK <n> <next>\n then n path lines
//	                                  (<next> = cursor of the next page, 0 = done)
//	C: SEARCHU <after> <limit> <quoted-scope> <quoted-query>\n
//	                                  S: OK <n> <next> <epoch>\n then n path lines
//	                                  (scope-restricted page; epoch = the
//	                                  index epoch the page was served from)
//	C: RESYNC\n                       S: OK\n  (rebuild the served index)
//	C: FETCH <quoted-path>\n          S: DATA <len>\n then len bytes
//	C: PING\n                         S: PONG\n
//	C: TRACE <trace-id> <span-id>\n   S: OK\n
//	any error                         S: ERR <quoted-message>\n
//
// ERR messages may carry a typed error in the encodeWireError format
// (errors.go); clients reconstruct the *vfs.PathError and its sentinel,
// and fall back to a plain *ServerError for unmarked messages.
//
// TRACE arms the connection with a trace context (32-hex-digit trace
// ID, decimal parent span ID) applied to the next command, which joins
// the caller's distributed trace. Servers that predate the verb answer
// ERR "unknown verb" and keep the connection alive; clients treat that
// as "tracing unsupported" and stop sending it.
//
// Strings are Go-quoted (strconv.Quote) so queries and paths may
// contain spaces safely.
package remote

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Protocol verbs.
const (
	verbSearch      = "SEARCH"
	verbSearchPage  = "SEARCHP"
	verbSearchUnder = "SEARCHU"
	verbResync      = "RESYNC"
	verbFetch       = "FETCH"
	verbPing        = "PING"
	verbTrace       = "TRACE"

	replyOK   = "OK"
	replyData = "DATA"
	replyErr  = "ERR"
	replyPong = "PONG"
)

// maxLine bounds a single protocol line; longer lines are rejected.
const maxLine = 64 * 1024

// maxFetch bounds a FETCH response body.
const maxFetch = 16 << 20

// writeLine writes one protocol line.
func writeLine(w io.Writer, parts ...string) error {
	_, err := io.WriteString(w, strings.Join(parts, " ")+"\n")
	return err
}

// readLine reads one protocol line, enforcing the length bound
// incrementally so an unterminated line cannot consume unbounded
// memory.
func readLine(r *bufio.Reader) (string, error) {
	var sb strings.Builder
	for {
		chunk, err := r.ReadSlice('\n')
		sb.Write(chunk)
		if sb.Len() > maxLine {
			return "", fmt.Errorf("remote: protocol line exceeds %d bytes", maxLine)
		}
		switch err {
		case nil:
			return strings.TrimRight(sb.String(), "\r\n"), nil
		case bufio.ErrBufferFull:
			continue
		default:
			return "", err
		}
	}
}

// splitVerb separates the verb from its argument.
func splitVerb(line string) (verb, arg string) {
	i := strings.IndexByte(line, ' ')
	if i < 0 {
		return line, ""
	}
	return line[:i], line[i+1:]
}

// quote encodes an argument for the wire.
func quote(s string) string { return strconv.Quote(s) }

// unquote decodes a wire argument.
func unquote(s string) (string, error) { return strconv.Unquote(s) }

// cutQuotedPair decodes two space-separated quoted arguments.
func cutQuotedPair(s string) (a, b string, err error) {
	a, rest, err := cutQuoted(s)
	if err != nil {
		return "", "", err
	}
	b, err = unquote(strings.TrimLeft(rest, " "))
	return a, b, err
}
