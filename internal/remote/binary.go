package remote

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hacfs/internal/obs"
	"hacfs/internal/vfs"
	"hacfs/internal/wire"
)

// Binary protocol (DESIGN.md §12). A connection that opens with the
// wire magic speaks length-prefixed frames instead of the legacy line
// protocol; the server sniffs the first bytes and serves both. Frame
// types:
//
//	fPing    → fPong
//	fSearch  → fPage* — the server pages the result through the cursor
//	           machinery and streams one fPage frame per page; the last
//	           carries FlagFinal. Payload: after(u64) pageSize(varint)
//	           limitPages(varint, 0 = all) query(string).
//	fSearch2 → fPage2* — the scoped form: the request payload adds a
//	           scope string after limitPages, each response page leads
//	           with the index epoch it was served from (DESIGN.md §14).
//	fFetch   → fData
//	fResync  → fOK — rebuild the served index from its document tree.
//	fStatus  → fStatV — epoch(uvarint) version(uvarint) docs(uvarint).
//	fErr     ends any request with a message (typed via errors.go).
//
// Many requests may be in flight per connection; responses interleave
// by request ID.
const (
	fPing uint8 = iota + 1
	fPong
	fSearch
	fPage
	fFetch
	fData
	fErr
	fSearch2
	fPage2
	fResync
	fOK
	fStatus
	fStatV
)

// maxFramePayload bounds one binary frame's payload: a fetched
// document plus slack for framing fields.
const maxFramePayload = maxFetch + 64*1024

// maxPageEntries bounds the declared path count of one result page.
const maxPageEntries = 1 << 20

// appendSearchReq encodes an fSearch payload.
func appendSearchReq(b []byte, q string, after uint64, pageSize, limitPages int) []byte {
	b = wire.AppendUvarint(b, after)
	b = wire.AppendVarint(b, int64(pageSize))
	b = wire.AppendVarint(b, int64(limitPages))
	b = wire.AppendString(b, q)
	return b
}

// decodeSearchReq decodes an fSearch payload.
func decodeSearchReq(payload []byte) (q string, after uint64, pageSize, limitPages int, err error) {
	d := wire.NewDec(payload)
	after = d.Uvarint()
	pageSize = d.Int()
	limitPages = d.Int()
	q = d.String(maxLine)
	return q, after, pageSize, limitPages, d.Close()
}

// appendPage encodes an fPage payload: the next cursor and one page of
// paths.
func appendPage(b []byte, next uint64, paths []string) []byte {
	b = wire.AppendUvarint(b, next)
	b = wire.AppendStrings(b, paths)
	return b
}

// decodePage decodes an fPage payload.
func decodePage(payload []byte) (paths []string, next uint64, err error) {
	d := wire.NewDec(payload)
	next = d.Uvarint()
	paths = d.Strings(maxLine, maxPageEntries)
	return paths, next, d.Close()
}

// appendSearchReq2 encodes an fSearch2 payload: the fSearch fields plus
// the scope root.
func appendSearchReq2(b []byte, q, scope string, after uint64, pageSize, limitPages int) []byte {
	b = wire.AppendUvarint(b, after)
	b = wire.AppendVarint(b, int64(pageSize))
	b = wire.AppendVarint(b, int64(limitPages))
	b = wire.AppendString(b, scope)
	b = wire.AppendString(b, q)
	return b
}

// decodeSearchReq2 decodes an fSearch2 payload.
func decodeSearchReq2(payload []byte) (q, scope string, after uint64, pageSize, limitPages int, err error) {
	d := wire.NewDec(payload)
	after = d.Uvarint()
	pageSize = d.Int()
	limitPages = d.Int()
	scope = d.String(maxLine)
	q = d.String(maxLine)
	return q, scope, after, pageSize, limitPages, d.Close()
}

// appendPage2 encodes an fPage2 payload: the serving epoch, the next
// cursor and one page of paths.
func appendPage2(b []byte, epoch, next uint64, paths []string) []byte {
	b = wire.AppendUvarint(b, epoch)
	b = wire.AppendUvarint(b, next)
	b = wire.AppendStrings(b, paths)
	return b
}

// decodePage2 decodes an fPage2 payload.
func decodePage2(payload []byte) (paths []string, next, epoch uint64, err error) {
	d := wire.NewDec(payload)
	epoch = d.Uvarint()
	next = d.Uvarint()
	paths = d.Strings(maxLine, maxPageEntries)
	return paths, next, epoch, d.Close()
}

// serveBinary answers framed requests on conn until it dies. Each
// request runs on its own goroutine (bounded per connection) so slow
// searches do not block pings — the multiplexing that the line
// protocol lacked.
func (s *Server) serveBinary(conn net.Conn, r frameReader) {
	ver, err := wire.ReadHello(r)
	if err != nil {
		return
	}
	// Always answer with the server's own hello: a client speaking a
	// different framing version reads it and reports a clean versioned
	// error instead of misparsing a frame.
	if err := wire.WriteHello(conn, wire.Version); err != nil {
		return
	}
	w := newFrameWriter(conn)
	if ver != wire.Version {
		w.send(wire.Frame{Type: fErr, Flags: wire.FlagFinal,
			Payload: []byte(fmt.Sprintf("unsupported protocol version %d (server speaks %d)", ver, wire.Version))})
		return
	}
	// Bound concurrent requests per connection.
	sem := make(chan struct{}, 64)
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		f, err := wire.ReadFrame(r, maxFramePayload)
		if err != nil {
			return
		}
		sem <- struct{}{}
		reqWG.Add(1)
		go func(f wire.Frame) {
			defer reqWG.Done()
			defer func() { <-sem }()
			s.handleFrame(w, f)
		}(f)
	}
}

// frameReader is the buffered reader serveConn peeked the magic from.
type frameReader interface {
	Read([]byte) (int, error)
}

// frameWriter serializes response frames onto one connection. Frames
// accumulate in a buffered writer and only the last sender in a pack
// flushes, batching syscalls under load without adding idle latency.
type frameWriter struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	writers atomic.Int64
}

func newFrameWriter(conn net.Conn) *frameWriter {
	return &frameWriter{bw: bufio.NewWriterSize(conn, 64<<10)}
}

func (w *frameWriter) send(f wire.Frame) error {
	w.writers.Add(1)
	w.mu.Lock()
	defer w.mu.Unlock()
	err := wire.WriteFrame(w.bw, f)
	if w.writers.Add(-1) == 0 && err == nil {
		err = w.bw.Flush()
	}
	return err
}

func (w *frameWriter) sendErr(id uint64, err error) error {
	return w.send(wire.Frame{Type: fErr, Flags: wire.FlagFinal, ID: id, Payload: []byte(encodeWireError(err))})
}

func (s *Server) handleFrame(w *frameWriter, f wire.Frame) {
	// A traced frame carries the caller's span context in its header;
	// joining it links the server's spans into the client's trace.
	ctx := context.Background()
	if sc := (obs.SpanContext{Trace: f.Trace, Span: f.Span}); sc.Valid() {
		ctx = obs.ContextWith(ctx, sc)
	}
	switch f.Type {
	case fPing:
		w.send(wire.Frame{Type: fPong, Flags: wire.FlagFinal, ID: f.ID})
	case fSearch:
		q, after, pageSize, limitPages, err := decodeSearchReq(f.Payload)
		if err != nil {
			w.sendErr(f.ID, err)
			return
		}
		s.streamSearch(ctx, w, f.ID, fPage, q, "", after, pageSize, limitPages)
	case fSearch2:
		q, scope, after, pageSize, limitPages, err := decodeSearchReq2(f.Payload)
		if err != nil {
			w.sendErr(f.ID, err)
			return
		}
		s.streamSearch(ctx, w, f.ID, fPage2, q, scope, after, pageSize, limitPages)
	case fResync:
		rs, ok := s.backend.(Resyncer)
		if !ok {
			w.sendErr(f.ID, &vfs.PathError{Op: "resync", Path: "/", Err: vfs.ErrUnsupported})
			return
		}
		sp, opCtx := s.startOp(ctx, "remote.Resync", "")
		start := time.Now()
		err := rs.Resync(opCtx)
		s.finishOp(sp, "remote.Resync", "", start, err)
		if err != nil {
			w.sendErr(f.ID, err)
			return
		}
		w.send(wire.Frame{Type: fOK, Flags: wire.FlagFinal, ID: f.ID})
	case fStatus:
		sb, ok := s.backend.(StatusBackend)
		if !ok {
			w.sendErr(f.ID, &vfs.PathError{Op: "status", Path: "/", Err: vfs.ErrUnsupported})
			return
		}
		epoch, version, docs := sb.Status()
		var b []byte
		b = wire.AppendUvarint(b, epoch)
		b = wire.AppendUvarint(b, version)
		b = wire.AppendUvarint(b, uint64(docs))
		w.send(wire.Frame{Type: fStatV, Flags: wire.FlagFinal, ID: f.ID, Payload: b})
	case fFetch:
		d := wire.NewDec(f.Payload)
		path := d.String(maxLine)
		if err := d.Close(); err != nil {
			w.sendErr(f.ID, err)
			return
		}
		data, err := s.backend.Fetch(path)
		if err != nil {
			w.sendErr(f.ID, err)
			return
		}
		if len(data) > maxFetch {
			w.sendErr(f.ID, errors.New("document too large"))
			return
		}
		w.send(wire.Frame{Type: fData, Flags: wire.FlagFinal, ID: f.ID, Payload: data})
	default:
		w.sendErr(f.ID, fmt.Errorf("unknown frame type %d", f.Type))
	}
}

// streamSearch answers one fSearch/fSearch2 request: it pages the
// result through the cursor machinery and streams one reply frame per
// page, the last carrying FlagFinal. replyType selects the page
// encoding (fPage, or fPage2 with the serving epoch).
func (s *Server) streamSearch(ctx context.Context, w *frameWriter, id uint64, replyType uint8, q, scope string, after uint64, pageSize, limitPages int) {
	if pageSize <= 0 {
		pageSize = 512
	}
	opName := "remote.Search"
	if replyType == fPage2 {
		opName = "remote.SearchUnder"
	}
	sp, opCtx := s.startOp(ctx, opName, q)
	start := time.Now()

	var fetchPage func(cursor uint64) ([]string, uint64, uint64, error)
	if sb, ok := s.backend.(ScopedBackend); ok {
		fetchPage = func(cur uint64) ([]string, uint64, uint64, error) {
			return sb.SearchPageUnder(opCtx, q, scope, cur, pageSize)
		}
	} else if scope != "" && scope != "/" {
		err := &vfs.PathError{Op: "searchu", Path: scope, Err: vfs.ErrUnsupported}
		s.finishOp(sp, opName, q, start, err)
		w.sendErr(id, err)
		return
	} else if pb, ok := s.backend.(PagedBackend); ok {
		fetchPage = func(cur uint64) ([]string, uint64, uint64, error) {
			paths, next, err := pb.SearchPage(q, cur, pageSize)
			return paths, next, 0, err
		}
	} else {
		// Unpaged backend: the whole result as a single final page.
		paths, err := s.backend.Search(q)
		s.finishOp(sp, opName, q, start, err)
		if err != nil {
			w.sendErr(id, err)
			return
		}
		w.send(wire.Frame{Type: replyType, Flags: wire.FlagFinal, ID: id, Payload: s.encodePage(replyType, 0, 0, paths)})
		return
	}

	// Stream pages until the cursor runs out or the client's page
	// budget is spent.
	cursor := after
	for page := 0; ; page++ {
		paths, next, epoch, err := fetchPage(cursor)
		if err != nil {
			s.finishOp(sp, opName, q, start, err)
			w.sendErr(id, err)
			return
		}
		final := next == 0 || (limitPages > 0 && page+1 >= limitPages)
		fr := wire.Frame{Type: replyType, ID: id, Payload: s.encodePage(replyType, epoch, next, paths)}
		if final {
			fr.Flags = wire.FlagFinal
		}
		if err := w.send(fr); err != nil {
			s.finishOp(sp, opName, q, start, err)
			return
		}
		if final {
			s.finishOp(sp, opName, q, start, nil)
			return
		}
		cursor = next
	}
}

func (s *Server) encodePage(replyType uint8, epoch, next uint64, paths []string) []byte {
	if replyType == fPage2 {
		return appendPage2(nil, epoch, next, paths)
	}
	return appendPage(nil, next, paths)
}

// BinClient speaks the multiplexed binary protocol and implements
// hac.Namespace and hac.ContextNamespace, like the line-protocol
// Client — but many requests proceed concurrently on one connection,
// and search results stream in pages instead of one counted blob.
type BinClient struct {
	name string
	mux  *wire.Mux
	met  clientMetrics
	obsv *obs.Observer
}

// DialBin creates a binary-protocol client for the server at addr.
// name becomes the namespace name inside the HAC volume. No connection
// is made until the first request.
func DialBin(name, addr string) *BinClient {
	return &BinClient{
		name: name,
		mux:  wire.NewMux(addr, 10*time.Second, maxFramePayload),
		met:  newClientMetrics(obs.Default()),
		obsv: obs.Default(),
	}
}

// SetObserver redirects the client's metrics and spans.
func (c *BinClient) SetObserver(o *obs.Observer) {
	if o == nil {
		o = obs.Discard()
	}
	c.met = newClientMetrics(o)
	c.obsv = o
}

// startRPC opens a client span for one search call. The returned
// context carries the span, so the mux stamps its trace header onto
// the request frame and the server joins the same trace.
func (c *BinClient) startRPC(ctx context.Context, name, q string) (*obs.Span, context.Context) {
	sp, ctx := c.obsv.Tracer().StartCtx(ctx, name)
	sp.Annotate("query", q)
	return sp, ctx
}

// SetTimeout changes the dial/request deadline.
func (c *BinClient) SetTimeout(d time.Duration) { c.mux.SetTimeout(d) }

// Name returns the namespace name.
func (c *BinClient) Name() string { return c.name }

// Close tears down the connection; later requests re-dial.
func (c *BinClient) Close() error { return c.mux.Close() }

// Ping checks liveness.
func (c *BinClient) Ping() error { return c.PingContext(context.Background()) }

// PingContext checks liveness, bounded by ctx.
func (c *BinClient) PingContext(ctx context.Context) (err error) {
	defer c.met.ping.done(time.Now(), &err)
	f, err := c.mux.CallOne(ctx, fPing, nil)
	if err != nil {
		return err
	}
	if f.Type != fPong {
		return c.unexpected(f)
	}
	return nil
}

func (c *BinClient) unexpected(f wire.Frame) error {
	if f.Type == fErr {
		return decodeWireError(string(f.Payload))
	}
	return fmt.Errorf("remote: unexpected frame type %d", f.Type)
}

// Search evaluates a query on the remote system, streaming all result
// pages.
func (c *BinClient) Search(q string) ([]string, error) {
	return c.SearchContext(context.Background(), q)
}

// SearchContext is Search bounded by ctx.
func (c *BinClient) SearchContext(ctx context.Context, q string) (_ []string, err error) {
	defer c.met.search.done(time.Now(), &err)
	sp, ctx := c.startRPC(ctx, "rpc.remote.Search", q)
	defer func() { sp.FinishErr(err) }()
	var out []string
	err = c.searchPages(ctx, q, 0, 0, 0, func(paths []string, next uint64) {
		out = append(out, paths...)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SearchPage fetches one cursor page, for callers that page explicitly
// (the PagedBackend shape). The server streams; asking for one page
// bounds the stream to one frame.
func (c *BinClient) SearchPage(ctx context.Context, q string, after uint64, limit int) (_ []string, _ uint64, err error) {
	defer c.met.search.done(time.Now(), &err)
	sp, ctx := c.startRPC(ctx, "rpc.remote.SearchPage", q)
	defer func() { sp.FinishErr(err) }()
	var out []string
	var nextOut uint64
	err = c.searchPages(ctx, q, after, limit, 1, func(paths []string, next uint64) {
		out = append(out, paths...)
		nextOut = next
	})
	if err != nil {
		return nil, 0, err
	}
	return out, nextOut, nil
}

// searchPages issues one search call and invokes fn for every streamed
// page frame.
func (c *BinClient) searchPages(ctx context.Context, q string, after uint64, pageSize, limitPages int, fn func([]string, uint64)) error {
	st, err := c.mux.Call(ctx, fSearch, appendSearchReq(nil, q, after, pageSize, limitPages))
	if err != nil {
		return err
	}
	defer st.Cancel()
	for {
		f, err := st.Next(ctx)
		if err != nil {
			return err
		}
		if f.Type != fPage {
			return c.unexpected(f)
		}
		paths, next, err := decodePage(f.Payload)
		if err != nil {
			return err
		}
		fn(paths, next)
		if f.Final() {
			return nil
		}
	}
}

// SearchPageUnder fetches one scope-restricted cursor page, plus the
// index epoch the server pinned it against — the shard-facing call a
// cluster coordinator fans out (DESIGN.md §14).
func (c *BinClient) SearchPageUnder(ctx context.Context, q, scope string, after uint64, limit int) (_ []string, _ uint64, _ uint64, err error) {
	defer c.met.search.done(time.Now(), &err)
	sp, ctx := c.startRPC(ctx, "rpc.remote.SearchUnder", q)
	defer func() { sp.FinishErr(err) }()
	var out []string
	var nextOut, epochOut uint64
	err = c.searchPagesScoped(ctx, q, scope, after, limit, 1, func(paths []string, next, epoch uint64) {
		out = append(out, paths...)
		nextOut, epochOut = next, epoch
	})
	if err != nil {
		return nil, 0, 0, err
	}
	return out, nextOut, epochOut, nil
}

// SearchUnderContext streams every result page of a scope-restricted
// query and returns all matching paths.
func (c *BinClient) SearchUnderContext(ctx context.Context, q, scope string) (_ []string, err error) {
	defer c.met.search.done(time.Now(), &err)
	sp, ctx := c.startRPC(ctx, "rpc.remote.SearchUnder", q)
	defer func() { sp.FinishErr(err) }()
	var out []string
	err = c.searchPagesScoped(ctx, q, scope, 0, 0, 0, func(paths []string, _, _ uint64) {
		out = append(out, paths...)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// searchPagesScoped issues one scoped search call and invokes fn for
// every streamed page frame.
func (c *BinClient) searchPagesScoped(ctx context.Context, q, scope string, after uint64, pageSize, limitPages int, fn func([]string, uint64, uint64)) error {
	st, err := c.mux.Call(ctx, fSearch2, appendSearchReq2(nil, q, scope, after, pageSize, limitPages))
	if err != nil {
		return err
	}
	defer st.Cancel()
	for {
		f, err := st.Next(ctx)
		if err != nil {
			return err
		}
		if f.Type != fPage2 {
			return c.unexpected(f)
		}
		paths, next, epoch, err := decodePage2(f.Payload)
		if err != nil {
			return err
		}
		fn(paths, next, epoch)
		if f.Final() {
			return nil
		}
	}
}

// Resync asks the server to rebuild its index from the document tree.
func (c *BinClient) Resync(ctx context.Context) (err error) {
	sp, ctx := c.startRPC(ctx, "rpc.remote.Resync", "")
	defer func() { sp.FinishErr(err) }()
	f, err := c.mux.CallOne(ctx, fResync, nil)
	if err != nil {
		return err
	}
	if f.Type != fOK {
		return c.unexpected(f)
	}
	return nil
}

// Status reports the server's index epoch, mutation version and live
// document count.
func (c *BinClient) Status(ctx context.Context) (epoch, version uint64, docs int, err error) {
	f, err := c.mux.CallOne(ctx, fStatus, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	if f.Type != fStatV {
		return 0, 0, 0, c.unexpected(f)
	}
	d := wire.NewDec(f.Payload)
	epoch = d.Uvarint()
	version = d.Uvarint()
	docs = int(d.Uvarint())
	return epoch, version, docs, d.Close()
}

// Fetch retrieves one remote document.
func (c *BinClient) Fetch(path string) ([]byte, error) {
	return c.FetchContext(context.Background(), path)
}

// FetchContext is Fetch bounded by ctx.
func (c *BinClient) FetchContext(ctx context.Context, path string) (_ []byte, err error) {
	defer c.met.fetch.done(time.Now(), &err)
	f, err := c.mux.CallOne(ctx, fFetch, wire.AppendString(nil, path))
	if err != nil {
		return nil, err
	}
	if f.Type != fData {
		return nil, c.unexpected(f)
	}
	return f.Payload, nil
}
