package remote

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hacfs/internal/obs"
	"hacfs/internal/wire"
)

// Binary protocol (DESIGN.md §12). A connection that opens with the
// wire magic speaks length-prefixed frames instead of the legacy line
// protocol; the server sniffs the first bytes and serves both. Frame
// types:
//
//	fPing    → fPong
//	fSearch  → fPage* — the server pages the result through the cursor
//	           machinery and streams one fPage frame per page; the last
//	           carries FlagFinal. Payload: after(u64) pageSize(varint)
//	           limitPages(varint, 0 = all) query(string).
//	fFetch   → fData
//	fErr     ends any request with a message.
//
// Many requests may be in flight per connection; responses interleave
// by request ID.
const (
	fPing uint8 = iota + 1
	fPong
	fSearch
	fPage
	fFetch
	fData
	fErr
)

// maxFramePayload bounds one binary frame's payload: a fetched
// document plus slack for framing fields.
const maxFramePayload = maxFetch + 64*1024

// maxPageEntries bounds the declared path count of one result page.
const maxPageEntries = 1 << 20

// appendSearchReq encodes an fSearch payload.
func appendSearchReq(b []byte, q string, after uint64, pageSize, limitPages int) []byte {
	b = wire.AppendUvarint(b, after)
	b = wire.AppendVarint(b, int64(pageSize))
	b = wire.AppendVarint(b, int64(limitPages))
	b = wire.AppendString(b, q)
	return b
}

// decodeSearchReq decodes an fSearch payload.
func decodeSearchReq(payload []byte) (q string, after uint64, pageSize, limitPages int, err error) {
	d := wire.NewDec(payload)
	after = d.Uvarint()
	pageSize = d.Int()
	limitPages = d.Int()
	q = d.String(maxLine)
	return q, after, pageSize, limitPages, d.Close()
}

// appendPage encodes an fPage payload: the next cursor and one page of
// paths.
func appendPage(b []byte, next uint64, paths []string) []byte {
	b = wire.AppendUvarint(b, next)
	b = wire.AppendStrings(b, paths)
	return b
}

// decodePage decodes an fPage payload.
func decodePage(payload []byte) (paths []string, next uint64, err error) {
	d := wire.NewDec(payload)
	next = d.Uvarint()
	paths = d.Strings(maxLine, maxPageEntries)
	return paths, next, d.Close()
}

// serveBinary answers framed requests on conn until it dies. Each
// request runs on its own goroutine (bounded per connection) so slow
// searches do not block pings — the multiplexing that the line
// protocol lacked.
func (s *Server) serveBinary(conn net.Conn, r frameReader) {
	ver, err := wire.ReadHello(r)
	if err != nil {
		return
	}
	// Always answer with the server's own hello: a client speaking a
	// different framing version reads it and reports a clean versioned
	// error instead of misparsing a frame.
	if err := wire.WriteHello(conn, wire.Version); err != nil {
		return
	}
	w := newFrameWriter(conn)
	if ver != wire.Version {
		w.send(wire.Frame{Type: fErr, Flags: wire.FlagFinal,
			Payload: []byte(fmt.Sprintf("unsupported protocol version %d (server speaks %d)", ver, wire.Version))})
		return
	}
	// Bound concurrent requests per connection.
	sem := make(chan struct{}, 64)
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		f, err := wire.ReadFrame(r, maxFramePayload)
		if err != nil {
			return
		}
		sem <- struct{}{}
		reqWG.Add(1)
		go func(f wire.Frame) {
			defer reqWG.Done()
			defer func() { <-sem }()
			s.handleFrame(w, f)
		}(f)
	}
}

// frameReader is the buffered reader serveConn peeked the magic from.
type frameReader interface {
	Read([]byte) (int, error)
}

// frameWriter serializes response frames onto one connection. Frames
// accumulate in a buffered writer and only the last sender in a pack
// flushes, batching syscalls under load without adding idle latency.
type frameWriter struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	writers atomic.Int64
}

func newFrameWriter(conn net.Conn) *frameWriter {
	return &frameWriter{bw: bufio.NewWriterSize(conn, 64<<10)}
}

func (w *frameWriter) send(f wire.Frame) error {
	w.writers.Add(1)
	w.mu.Lock()
	defer w.mu.Unlock()
	err := wire.WriteFrame(w.bw, f)
	if w.writers.Add(-1) == 0 && err == nil {
		err = w.bw.Flush()
	}
	return err
}

func (w *frameWriter) sendErr(id uint64, err error) error {
	return w.send(wire.Frame{Type: fErr, Flags: wire.FlagFinal, ID: id, Payload: []byte(err.Error())})
}

func (s *Server) handleFrame(w *frameWriter, f wire.Frame) {
	// A traced frame carries the caller's span context in its header;
	// joining it links the server's spans into the client's trace.
	ctx := context.Background()
	if sc := (obs.SpanContext{Trace: f.Trace, Span: f.Span}); sc.Valid() {
		ctx = obs.ContextWith(ctx, sc)
	}
	switch f.Type {
	case fPing:
		w.send(wire.Frame{Type: fPong, Flags: wire.FlagFinal, ID: f.ID})
	case fSearch:
		q, after, pageSize, limitPages, err := decodeSearchReq(f.Payload)
		if err != nil {
			w.sendErr(f.ID, err)
			return
		}
		if pageSize <= 0 {
			pageSize = 512
		}
		sp, _ := s.startOp(ctx, "remote.Search", q)
		start := time.Now()
		pb, paged := s.backend.(PagedBackend)
		if !paged {
			// Unpaged backend: the whole result as a single final page.
			paths, err := s.backend.Search(q)
			s.finishOp(sp, "remote.Search", q, start, err)
			if err != nil {
				w.sendErr(f.ID, err)
				return
			}
			w.send(wire.Frame{Type: fPage, Flags: wire.FlagFinal, ID: f.ID, Payload: appendPage(nil, 0, paths)})
			return
		}
		// Stream pages through the cursor machinery until the cursor
		// runs out or the client's page budget is spent.
		cursor := after
		for page := 0; ; page++ {
			paths, next, err := pb.SearchPage(q, cursor, pageSize)
			if err != nil {
				s.finishOp(sp, "remote.Search", q, start, err)
				w.sendErr(f.ID, err)
				return
			}
			final := next == 0 || (limitPages > 0 && page+1 >= limitPages)
			fr := wire.Frame{Type: fPage, ID: f.ID, Payload: appendPage(nil, next, paths)}
			if final {
				fr.Flags = wire.FlagFinal
			}
			if err := w.send(fr); err != nil {
				s.finishOp(sp, "remote.Search", q, start, err)
				return
			}
			if final {
				s.finishOp(sp, "remote.Search", q, start, nil)
				return
			}
			cursor = next
		}
	case fFetch:
		d := wire.NewDec(f.Payload)
		path := d.String(maxLine)
		if err := d.Close(); err != nil {
			w.sendErr(f.ID, err)
			return
		}
		data, err := s.backend.Fetch(path)
		if err != nil {
			w.sendErr(f.ID, err)
			return
		}
		if len(data) > maxFetch {
			w.sendErr(f.ID, errors.New("document too large"))
			return
		}
		w.send(wire.Frame{Type: fData, Flags: wire.FlagFinal, ID: f.ID, Payload: data})
	default:
		w.sendErr(f.ID, fmt.Errorf("unknown frame type %d", f.Type))
	}
}

// BinClient speaks the multiplexed binary protocol and implements
// hac.Namespace and hac.ContextNamespace, like the line-protocol
// Client — but many requests proceed concurrently on one connection,
// and search results stream in pages instead of one counted blob.
type BinClient struct {
	name string
	mux  *wire.Mux
	met  clientMetrics
	obsv *obs.Observer
}

// DialBin creates a binary-protocol client for the server at addr.
// name becomes the namespace name inside the HAC volume. No connection
// is made until the first request.
func DialBin(name, addr string) *BinClient {
	return &BinClient{
		name: name,
		mux:  wire.NewMux(addr, 10*time.Second, maxFramePayload),
		met:  newClientMetrics(obs.Default()),
		obsv: obs.Default(),
	}
}

// SetObserver redirects the client's metrics and spans.
func (c *BinClient) SetObserver(o *obs.Observer) {
	if o == nil {
		o = obs.Discard()
	}
	c.met = newClientMetrics(o)
	c.obsv = o
}

// startRPC opens a client span for one search call. The returned
// context carries the span, so the mux stamps its trace header onto
// the request frame and the server joins the same trace.
func (c *BinClient) startRPC(ctx context.Context, name, q string) (*obs.Span, context.Context) {
	sp, ctx := c.obsv.Tracer().StartCtx(ctx, name)
	sp.Annotate("query", q)
	return sp, ctx
}

// SetTimeout changes the dial/request deadline.
func (c *BinClient) SetTimeout(d time.Duration) { c.mux.SetTimeout(d) }

// Name returns the namespace name.
func (c *BinClient) Name() string { return c.name }

// Close tears down the connection; later requests re-dial.
func (c *BinClient) Close() error { return c.mux.Close() }

// Ping checks liveness.
func (c *BinClient) Ping() error { return c.PingContext(context.Background()) }

// PingContext checks liveness, bounded by ctx.
func (c *BinClient) PingContext(ctx context.Context) (err error) {
	defer c.met.ping.done(time.Now(), &err)
	f, err := c.mux.CallOne(ctx, fPing, nil)
	if err != nil {
		return err
	}
	if f.Type != fPong {
		return c.unexpected(f)
	}
	return nil
}

func (c *BinClient) unexpected(f wire.Frame) error {
	if f.Type == fErr {
		return errors.New("remote: server: " + string(f.Payload))
	}
	return fmt.Errorf("remote: unexpected frame type %d", f.Type)
}

// Search evaluates a query on the remote system, streaming all result
// pages.
func (c *BinClient) Search(q string) ([]string, error) {
	return c.SearchContext(context.Background(), q)
}

// SearchContext is Search bounded by ctx.
func (c *BinClient) SearchContext(ctx context.Context, q string) (_ []string, err error) {
	defer c.met.search.done(time.Now(), &err)
	sp, ctx := c.startRPC(ctx, "rpc.remote.Search", q)
	defer func() { sp.FinishErr(err) }()
	var out []string
	err = c.searchPages(ctx, q, 0, 0, 0, func(paths []string, next uint64) {
		out = append(out, paths...)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SearchPage fetches one cursor page, for callers that page explicitly
// (the PagedBackend shape). The server streams; asking for one page
// bounds the stream to one frame.
func (c *BinClient) SearchPage(ctx context.Context, q string, after uint64, limit int) (_ []string, _ uint64, err error) {
	defer c.met.search.done(time.Now(), &err)
	sp, ctx := c.startRPC(ctx, "rpc.remote.SearchPage", q)
	defer func() { sp.FinishErr(err) }()
	var out []string
	var nextOut uint64
	err = c.searchPages(ctx, q, after, limit, 1, func(paths []string, next uint64) {
		out = append(out, paths...)
		nextOut = next
	})
	if err != nil {
		return nil, 0, err
	}
	return out, nextOut, nil
}

// searchPages issues one search call and invokes fn for every streamed
// page frame.
func (c *BinClient) searchPages(ctx context.Context, q string, after uint64, pageSize, limitPages int, fn func([]string, uint64)) error {
	st, err := c.mux.Call(ctx, fSearch, appendSearchReq(nil, q, after, pageSize, limitPages))
	if err != nil {
		return err
	}
	defer st.Cancel()
	for {
		f, err := st.Next(ctx)
		if err != nil {
			return err
		}
		if f.Type != fPage {
			return c.unexpected(f)
		}
		paths, next, err := decodePage(f.Payload)
		if err != nil {
			return err
		}
		fn(paths, next)
		if f.Final() {
			return nil
		}
	}
}

// Fetch retrieves one remote document.
func (c *BinClient) Fetch(path string) ([]byte, error) {
	return c.FetchContext(context.Background(), path)
}

// FetchContext is Fetch bounded by ctx.
func (c *BinClient) FetchContext(ctx context.Context, path string) (_ []byte, err error) {
	defer c.met.fetch.done(time.Now(), &err)
	f, err := c.mux.CallOne(ctx, fFetch, wire.AppendString(nil, path))
	if err != nil {
		return nil, err
	}
	if f.Type != fData {
		return nil, c.unexpected(f)
	}
	return f.Payload, nil
}
