package remote

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"hacfs/internal/vfs"
)

// Typed errors over the wire. Both protocols carry errors as one
// message string (the line protocol's ERR reply, the mux's fErr frame).
// A bare string loses the error's type, so cluster failures — a shard
// lost mid-query, a quota rejection — would reach clients as anonymous
// text instead of a *vfs.PathError they can errors.Is against.
//
// encodeWireError flattens an error into a message that starts with a
// marker no human-written message uses; decodeWireError reconstructs
// the *vfs.PathError (op, path, sentinel) on the client side. Messages
// without the marker — from pre-codec servers, or free-form failures —
// decode to the legacy *ServerError, so old and new peers interoperate
// in both directions.
//
// Marker format (all fields strconv-quoted, space-separated):
//
//	!pe1 <op> <path> <code> <message>
//
// code names a vfs sentinel ("" = none survives the trip; the message
// alone is kept).

// wireErrMarker opens an encoded typed error. The leading '!' cannot
// start a quoted field, which is what legacy decode expects first.
const wireErrMarker = "!pe1"

// wireCodes maps sentinel codes to the sentinels themselves. Only
// errors meaningful across a process boundary are listed; purely local
// conditions (ErrClosed, ErrInjected, ...) stay free-form.
var wireCodes = map[string]error{
	"not-exist":         vfs.ErrNotExist,
	"exist":             vfs.ErrExist,
	"not-dir":           vfs.ErrNotDir,
	"is-dir":            vfs.ErrIsDir,
	"invalid":           vfs.ErrInvalid,
	"unsupported":       vfs.ErrUnsupported,
	"quota":             vfs.ErrQuotaExceeded,
	"backpressure":      vfs.ErrBackpressure,
	"shutting-down":     vfs.ErrShuttingDown,
	"shard-unavailable": vfs.ErrShardUnavailable,
}

// codeOf returns the wire code for err's sentinel, or "".
func codeOf(err error) string {
	for code, sentinel := range wireCodes {
		if errors.Is(err, sentinel) {
			return code
		}
	}
	return ""
}

// encodeWireError renders err for the wire.
func encodeWireError(err error) string {
	var op, path string
	inner := err
	var pe *vfs.PathError
	if errors.As(err, &pe) {
		op, path, inner = pe.Op, pe.Path, pe.Err
	}
	code := codeOf(err)
	if op == "" && path == "" && code == "" {
		return err.Error() // nothing typed to preserve
	}
	return strings.Join([]string{
		wireErrMarker, quote(op), quote(path), quote(code), quote(inner.Error()),
	}, " ")
}

// wireWrapped carries a decoded message while unwrapping to the
// sentinel its wire code named, so errors.Is works on the
// reconstructed error without losing the server's detail text.
type wireWrapped struct {
	msg      string
	sentinel error
}

func (w *wireWrapped) Error() string { return w.msg }
func (w *wireWrapped) Unwrap() error { return w.sentinel }

// ServerError is a free-form failure reported by the server — anything
// the typed codec does not cover, including every error from a
// pre-codec server. It is terminal: retrying another replica cannot
// help, the server itself answered.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "remote: server: " + e.Msg }

// decodeWireError reconstructs a server-reported error from its wire
// message.
func decodeWireError(msg string) error {
	rest, ok := strings.CutPrefix(msg, wireErrMarker+" ")
	if !ok {
		return &ServerError{Msg: msg}
	}
	fields := make([]string, 0, 4)
	for len(fields) < 4 {
		rest = strings.TrimLeft(rest, " ")
		q, tail, err := cutQuoted(rest)
		if err != nil {
			return &ServerError{Msg: msg} // malformed marker: keep the text
		}
		fields = append(fields, q)
		rest = tail
	}
	op, path, code, text := fields[0], fields[1], fields[2], fields[3]
	inner := error(errors.New(text))
	if sentinel, ok := wireCodes[code]; ok {
		if text == sentinel.Error() {
			inner = sentinel
		} else {
			inner = &wireWrapped{msg: text, sentinel: sentinel}
		}
	}
	if op == "" && path == "" {
		return inner
	}
	return &vfs.PathError{Op: op, Path: path, Err: inner}
}

// cutQuoted splits one Go-quoted field off the front of s.
func cutQuoted(s string) (field, rest string, err error) {
	q, err := strconv.QuotedPrefix(s)
	if err != nil {
		return "", "", err
	}
	field, err = strconv.Unquote(q)
	if err != nil {
		return "", "", fmt.Errorf("remote: malformed quoted field: %w", err)
	}
	return field, s[len(q):], nil
}
