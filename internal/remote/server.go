package remote

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hacfs/internal/index"
	"hacfs/internal/obs"
	"hacfs/internal/query"
	"hacfs/internal/query/plan"
	"hacfs/internal/vfs"
	"hacfs/internal/wire"
)

// Backend answers the two remote operations. IndexBackend is the
// standard implementation; tests may supply others.
type Backend interface {
	Search(q string) ([]string, error)
	Fetch(path string) ([]byte, error)
}

// PagedBackend is an optional Backend extension serving cursor-paged
// searches (the SEARCHP verb). A server whose backend lacks it answers
// SEARCHP with the full result as a single page.
type PagedBackend interface {
	SearchPage(q string, after uint64, limit int) ([]string, uint64, error)
}

// ScopedBackend is an optional Backend extension serving
// scope-restricted cursor pages (the SEARCHU verb and fSearch2 frame).
// The context carries the caller's trace and deadline across the
// backend — a cluster coordinator fans it out to shards. epoch reports
// the index epoch the page was pinned against, so a paging caller can
// observe epoch drift between pages.
type ScopedBackend interface {
	SearchPageUnder(ctx context.Context, q, scope string, after uint64, limit int) (paths []string, next, epoch uint64, err error)
}

// Resyncer is an optional Backend extension that rebuilds the served
// index from its document tree (the RESYNC verb and fResync frame). A
// cluster coordinator fans it out to every shard replica.
type Resyncer interface {
	Resync(ctx context.Context) error
}

// StatusBackend is an optional Backend extension reporting index state
// (the fStatus frame): the merge epoch, the mutation version and the
// live document count.
type StatusBackend interface {
	Status() (epoch, version uint64, docs int)
}

// IndexBackend serves searches from an index over a file system tree —
// a remote Glimpse, in the paper's terms.
type IndexBackend struct {
	ix   *index.Index
	fsys vfs.FileSystem
	root string

	resyncMu sync.Mutex // serializes Resync tree walks
}

// NewIndexBackend indexes the tree at root in fsys and serves it.
func NewIndexBackend(fsys vfs.FileSystem, root string) (*IndexBackend, error) {
	b := &IndexBackend{ix: index.New(), fsys: fsys, root: root}
	if _, _, _, err := b.ix.SyncTree(fsys, root); err != nil {
		return nil, err
	}
	return b, nil
}

// Index exposes the backend's index, e.g. for stats.
func (b *IndexBackend) Index() *index.Index { return b.ix }

// Search evaluates a query over the backend's index. Directory
// references have no meaning in a remote namespace and match nothing.
func (b *IndexBackend) Search(q string) ([]string, error) {
	res, _, _, err := b.search(q, "", 0, 0)
	return res, err
}

// SearchPage serves one cursor page: matches with DocID >= after, at
// most limit of them (<= 0 = all), plus the next cursor (0 = done).
func (b *IndexBackend) SearchPage(q string, after uint64, limit int) ([]string, uint64, error) {
	paths, next, _, err := b.search(q, "", after, limit)
	return paths, next, err
}

// SearchPageUnder serves one scope-restricted cursor page plus the
// index epoch it was pinned against.
func (b *IndexBackend) SearchPageUnder(_ context.Context, q, scope string, after uint64, limit int) ([]string, uint64, uint64, error) {
	return b.search(q, scope, after, limit)
}

// Resync re-walks the backend's document tree, folding any changes into
// the served index.
func (b *IndexBackend) Resync(_ context.Context) error {
	b.resyncMu.Lock()
	defer b.resyncMu.Unlock()
	_, _, _, err := b.ix.SyncTree(b.fsys, b.root)
	return err
}

// Status reports the served index's epoch, version and live doc count.
func (b *IndexBackend) Status() (epoch, version uint64, docs int) {
	snap := b.ix.Snapshot()
	return snap.Epoch(), snap.Version(), b.ix.Stats().Docs
}

// search compiles q with the cost-based planner against a pinned
// snapshot, restricted to scope ("" or "/" = whole tree). The nil Refs
// map makes dir: references match nothing, the pre-planner behavior
// for remote namespaces.
func (b *IndexBackend) search(q, scope string, after uint64, limit int) ([]string, uint64, uint64, error) {
	ast, err := query.Parse(q)
	if err != nil {
		if errors.Is(err, query.ErrEmpty) {
			return nil, 0, 0, nil
		}
		return nil, 0, 0, err
	}
	snap := b.ix.Snapshot()
	p, err := plan.Build(ast, plan.Scope{Prefix: scope}, &plan.SnapEnv{Snap: snap})
	if err != nil {
		return nil, 0, 0, err
	}
	bm, err := p.Exec()
	if err != nil {
		return nil, 0, 0, err
	}
	if after == 0 && limit <= 0 {
		// Unpaged: the full result, path-sorted as before.
		return snap.Paths(bm), 0, snap.Epoch(), nil
	}
	ids := bm.Slice()
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= after })
	ids = ids[i:]
	var next uint64
	if limit > 0 && len(ids) > limit {
		ids = ids[:limit]
		next = ids[len(ids)-1] + 1
	}
	return snap.PathsOf(ids), next, snap.Epoch(), nil
}

// Fetch reads one document.
func (b *IndexBackend) Fetch(path string) ([]byte, error) {
	return b.fsys.ReadFile(path)
}

// Server accepts protocol connections and answers them from a Backend.
type Server struct {
	backend Backend
	logger  *log.Logger
	obsv    *obs.Observer

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server for the given backend. logger may be nil
// to disable logging.
func NewServer(backend Backend, logger *log.Logger) *Server {
	return &Server{
		backend: backend,
		logger:  logger,
		obsv:    obs.Default(),
		conns:   make(map[net.Conn]struct{}),
	}
}

// SetObserver redirects the server's spans and slow-op records, e.g.
// to a private observer in tests.
func (s *Server) SetObserver(o *obs.Observer) {
	if o == nil {
		o = obs.Discard()
	}
	s.obsv = o
}

// startOp opens a server span for one search operation. A trace armed
// by the client (TRACE verb or binary frame header) is joined;
// untraced requests still get a root span, so the server's span ring
// sees every remote search. The companion finishOp closes the span and
// records the op in the slow log when it crossed the threshold.
func (s *Server) startOp(ctx context.Context, name, arg string) (*obs.Span, context.Context) {
	sp, ctx := s.obsv.Tracer().StartCtx(ctx, name)
	sp.Annotate("query", arg)
	return sp, ctx
}

func (s *Server) finishOp(sp *obs.Span, name, arg string, start time.Time, err error) {
	sp.FinishErr(err)
	dur := time.Since(start)
	if slow := s.obsv.Slow(); slow.Over(dur) {
		op := obs.SlowOp{Op: name, Arg: arg, Dur: dur}
		if sp != nil {
			op.Trace = sp.Context().Trace
		}
		if err != nil {
			op.Err = err.Error()
		}
		slow.Record(op)
	}
}

// Serve accepts connections on l until Close is called. It always
// returns a non-nil error; after Close the error is net.ErrClosed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves. It returns the bound
// address on a channel-free API by blocking; use Listen + Serve to
// learn the port first.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Close stops accepting and closes all live connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// serveConn handles one client connection until EOF or error. The
// first bytes select the protocol: the wire magic enters the
// multiplexed binary framing, anything else falls back to the legacy
// line protocol, so old clients keep working unchanged.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	if prefix, err := r.Peek(4); err == nil && wire.IsMagic(prefix) {
		s.serveBinary(conn, r)
		return
	}
	w := bufio.NewWriter(conn)
	// The connection's armed trace context: set by TRACE, consumed by
	// the next command. One goroutine serves the whole line loop, so no
	// locking is needed.
	var pending obs.SpanContext
	for {
		line, err := readLine(r)
		if err != nil {
			return
		}
		if err := s.handle(w, line, &pending); err != nil {
			s.logf("remote: %v", err)
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) handle(w *bufio.Writer, line string, pending *obs.SpanContext) error {
	verb, arg := splitVerb(line)
	// Consume the armed trace (TRACE applies to the next command only).
	ctx := context.Background()
	if pending.Valid() {
		ctx = obs.ContextWith(ctx, *pending)
		*pending = obs.SpanContext{}
	}
	switch verb {
	case verbPing:
		return writeLine(w, replyPong)
	case verbTrace:
		idStr, spanStr := splitVerb(arg)
		id, err := obs.ParseTraceID(idStr)
		span, serr := strconv.ParseUint(spanStr, 10, 64)
		if err != nil || serr != nil {
			return writeLine(w, replyErr, quote("malformed trace arguments"))
		}
		*pending = obs.SpanContext{Trace: id, Span: obs.SpanID(span)}
		return writeLine(w, replyOK)
	case verbSearch:
		q, err := unquote(arg)
		if err != nil {
			return writeLine(w, replyErr, quote("malformed query argument"))
		}
		sp, _ := s.startOp(ctx, "remote.Search", q)
		start := time.Now()
		results, err := s.backend.Search(q)
		s.finishOp(sp, "remote.Search", q, start, err)
		if err != nil {
			return writeLine(w, replyErr, quote(encodeWireError(err)))
		}
		if err := writeLine(w, replyOK, strconv.Itoa(len(results))); err != nil {
			return err
		}
		for _, p := range results {
			if err := writeLine(w, quote(p)); err != nil {
				return err
			}
		}
		return nil
	case verbSearchPage:
		fields := strings.SplitN(arg, " ", 3)
		if len(fields) != 3 {
			return writeLine(w, replyErr, quote("malformed page arguments"))
		}
		after, aerr := strconv.ParseUint(fields[0], 10, 64)
		limit, lerr := strconv.Atoi(fields[1])
		q, qerr := unquote(fields[2])
		if aerr != nil || lerr != nil || qerr != nil {
			return writeLine(w, replyErr, quote("malformed page arguments"))
		}
		var results []string
		var next uint64
		var err error
		sp, opCtx := s.startOp(ctx, "remote.SearchPage", q)
		start := time.Now()
		if sb, ok := s.backend.(ScopedBackend); ok {
			// The scoped form also carries the trace context through.
			results, next, _, err = sb.SearchPageUnder(opCtx, q, "", after, limit)
		} else if pb, ok := s.backend.(PagedBackend); ok {
			results, next, err = pb.SearchPage(q, after, limit)
		} else if after == 0 {
			// Unpaged backend: everything as one page.
			results, err = s.backend.Search(q)
		}
		s.finishOp(sp, "remote.SearchPage", q, start, err)
		if err != nil {
			return writeLine(w, replyErr, quote(encodeWireError(err)))
		}
		if err := writeLine(w, replyOK, strconv.Itoa(len(results)), strconv.FormatUint(next, 10)); err != nil {
			return err
		}
		for _, p := range results {
			if err := writeLine(w, quote(p)); err != nil {
				return err
			}
		}
		return nil
	case verbSearchUnder:
		fields := strings.SplitN(arg, " ", 3)
		if len(fields) != 3 {
			return writeLine(w, replyErr, quote("malformed page arguments"))
		}
		after, aerr := strconv.ParseUint(fields[0], 10, 64)
		limit, lerr := strconv.Atoi(fields[1])
		scope, q, serr := cutQuotedPair(fields[2])
		if aerr != nil || lerr != nil || serr != nil {
			return writeLine(w, replyErr, quote("malformed page arguments"))
		}
		sb, ok := s.backend.(ScopedBackend)
		if !ok {
			return writeLine(w, replyErr, quote(encodeWireError(
				&vfs.PathError{Op: "searchu", Path: scope, Err: vfs.ErrUnsupported})))
		}
		sp, opCtx := s.startOp(ctx, "remote.SearchUnder", q)
		start := time.Now()
		results, next, epoch, err := sb.SearchPageUnder(opCtx, q, scope, after, limit)
		s.finishOp(sp, "remote.SearchUnder", q, start, err)
		if err != nil {
			return writeLine(w, replyErr, quote(encodeWireError(err)))
		}
		if err := writeLine(w, replyOK, strconv.Itoa(len(results)),
			strconv.FormatUint(next, 10), strconv.FormatUint(epoch, 10)); err != nil {
			return err
		}
		for _, p := range results {
			if err := writeLine(w, quote(p)); err != nil {
				return err
			}
		}
		return nil
	case verbResync:
		rs, ok := s.backend.(Resyncer)
		if !ok {
			return writeLine(w, replyErr, quote(encodeWireError(
				&vfs.PathError{Op: "resync", Path: "/", Err: vfs.ErrUnsupported})))
		}
		sp, opCtx := s.startOp(ctx, "remote.Resync", "")
		start := time.Now()
		err := rs.Resync(opCtx)
		s.finishOp(sp, "remote.Resync", "", start, err)
		if err != nil {
			return writeLine(w, replyErr, quote(encodeWireError(err)))
		}
		return writeLine(w, replyOK)
	case verbFetch:
		p, err := unquote(arg)
		if err != nil {
			return writeLine(w, replyErr, quote("malformed path argument"))
		}
		data, err := s.backend.Fetch(p)
		if err != nil {
			return writeLine(w, replyErr, quote(encodeWireError(err)))
		}
		if len(data) > maxFetch {
			return writeLine(w, replyErr, quote("document too large"))
		}
		if err := writeLine(w, replyData, strconv.Itoa(len(data))); err != nil {
			return err
		}
		_, err = w.Write(data)
		return err
	default:
		return writeLine(w, replyErr, quote(fmt.Sprintf("unknown verb %q", verb)))
	}
}
