package remote

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"strconv"
	"sync"

	"hacfs/internal/bitset"
	"hacfs/internal/index"
	"hacfs/internal/query"
	"hacfs/internal/vfs"
)

// Backend answers the two remote operations. IndexBackend is the
// standard implementation; tests may supply others.
type Backend interface {
	Search(q string) ([]string, error)
	Fetch(path string) ([]byte, error)
}

// IndexBackend serves searches from an index over a file system tree —
// a remote Glimpse, in the paper's terms.
type IndexBackend struct {
	ix   *index.Index
	fsys vfs.FileSystem
}

// NewIndexBackend indexes the tree at root in fsys and serves it.
func NewIndexBackend(fsys vfs.FileSystem, root string) (*IndexBackend, error) {
	b := &IndexBackend{ix: index.New(), fsys: fsys}
	if _, _, _, err := b.ix.SyncTree(fsys, root); err != nil {
		return nil, err
	}
	return b, nil
}

// Index exposes the backend's index, e.g. for stats.
func (b *IndexBackend) Index() *index.Index { return b.ix }

// Search evaluates a query over the backend's index. Directory
// references have no meaning in a remote namespace and match nothing.
func (b *IndexBackend) Search(q string) ([]string, error) {
	ast, err := query.Parse(q)
	if err != nil {
		if errors.Is(err, query.ErrEmpty) {
			return nil, nil
		}
		return nil, err
	}
	bm, err := query.Eval(ast, &backendEnv{b.ix})
	if err != nil {
		return nil, err
	}
	return b.ix.Paths(bm), nil
}

// Fetch reads one document.
func (b *IndexBackend) Fetch(path string) ([]byte, error) {
	return b.fsys.ReadFile(path)
}

// backendEnv evaluates query primitives over a bare index.
type backendEnv struct{ ix *index.Index }

func (e *backendEnv) Term(w string) (*bitset.Segmented, error)   { return e.ix.Lookup(w), nil }
func (e *backendEnv) Prefix(p string) (*bitset.Segmented, error) { return e.ix.LookupPrefix(p), nil }
func (e *backendEnv) Fuzzy(w string) (*bitset.Segmented, error)  { return e.ix.LookupFuzzy(w), nil }
func (e *backendEnv) Universe() (*bitset.Segmented, error)       { return e.ix.AllDocs(), nil }
func (e *backendEnv) DirRef(*query.DirRef) (*bitset.Segmented, error) {
	// No local directories exist here; the reference selects nothing.
	return bitset.NewSegmented(), nil
}

// Server accepts protocol connections and answers them from a Backend.
type Server struct {
	backend Backend
	logger  *log.Logger

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server for the given backend. logger may be nil
// to disable logging.
func NewServer(backend Backend, logger *log.Logger) *Server {
	return &Server{
		backend: backend,
		logger:  logger,
		conns:   make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections on l until Close is called. It always
// returns a non-nil error; after Close the error is net.ErrClosed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves. It returns the bound
// address on a channel-free API by blocking; use Listen + Serve to
// learn the port first.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Close stops accepting and closes all live connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// serveConn handles one client connection until EOF or error.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := readLine(r)
		if err != nil {
			return
		}
		if err := s.handle(w, line); err != nil {
			s.logf("remote: %v", err)
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) handle(w *bufio.Writer, line string) error {
	verb, arg := splitVerb(line)
	switch verb {
	case verbPing:
		return writeLine(w, replyPong)
	case verbSearch:
		q, err := unquote(arg)
		if err != nil {
			return writeLine(w, replyErr, quote("malformed query argument"))
		}
		results, err := s.backend.Search(q)
		if err != nil {
			return writeLine(w, replyErr, quote(err.Error()))
		}
		if err := writeLine(w, replyOK, strconv.Itoa(len(results))); err != nil {
			return err
		}
		for _, p := range results {
			if err := writeLine(w, quote(p)); err != nil {
				return err
			}
		}
		return nil
	case verbFetch:
		p, err := unquote(arg)
		if err != nil {
			return writeLine(w, replyErr, quote("malformed path argument"))
		}
		data, err := s.backend.Fetch(p)
		if err != nil {
			return writeLine(w, replyErr, quote(err.Error()))
		}
		if len(data) > maxFetch {
			return writeLine(w, replyErr, quote("document too large"))
		}
		if err := writeLine(w, replyData, strconv.Itoa(len(data))); err != nil {
			return err
		}
		_, err = w.Write(data)
		return err
	default:
		return writeLine(w, replyErr, quote(fmt.Sprintf("unknown verb %q", verb)))
	}
}
