package remote

import (
	"context"
	"net"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"hacfs/internal/hac"
	"hacfs/internal/vfs"
)

// startServer brings up a server over a small corpus and returns a
// connected client.
func startServer(t *testing.T) (*Client, *Server) {
	t.Helper()
	fsys := vfs.New()
	docs := map[string]string{
		"/papers/fp-matching.ps":  "fingerprint matching algorithms survey",
		"/papers/fp-sensors.ps":   "fingerprint sensor hardware design",
		"/papers/iris.ps":         "iris recognition methods",
		"/papers/crime-report.ps": "fingerprint evidence in murder case",
	}
	for p, content := range docs {
		if err := fsys.MkdirAll(vfs.Dir(p)); err != nil {
			t.Fatal(err)
		}
		if err := fsys.WriteFile(p, []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	backend, err := NewIndexBackend(fsys, "/")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(backend, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(srv.Close)

	c := Dial("diglib", l.Addr().String())
	c.SetTimeout(5 * time.Second)
	t.Cleanup(func() { c.Close() })
	return c, srv
}

func TestPing(t *testing.T) {
	c, _ := startServer(t)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestSearch(t *testing.T) {
	c, _ := startServer(t)
	got, err := c.Search("fingerprint AND NOT murder")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/papers/fp-matching.ps", "/papers/fp-sensors.ps"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Search = %v, want %v", got, want)
	}
	// Empty result.
	got, err = c.Search("nonexistentterm")
	if err != nil || len(got) != 0 {
		t.Fatalf("empty Search = %v, %v", got, err)
	}
	// Empty query.
	got, err = c.Search("")
	if err != nil || len(got) != 0 {
		t.Fatalf("blank Search = %v, %v", got, err)
	}
}

func TestSearchBadQuery(t *testing.T) {
	c, _ := startServer(t)
	_, err := c.Search("((broken")
	if err == nil || !strings.Contains(err.Error(), "server:") {
		t.Fatalf("bad query err = %v", err)
	}
	// Connection still usable after a server-side error.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after error: %v", err)
	}
}

func TestSearchPage(t *testing.T) {
	c, _ := startServer(t)
	// Walk the whole result in pages of 1 and compare against the
	// unpaged answer.
	want, err := c.Search("fingerprint")
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 3 {
		t.Fatalf("unpaged Search = %v", want)
	}
	var got []string
	var after uint64
	ctx := context.Background()
	for pages := 0; ; pages++ {
		if pages > len(want) {
			t.Fatalf("cursor did not terminate: got %v", got)
		}
		page, next, err := c.SearchPage(ctx, "fingerprint", after, 1)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page...)
		if next == 0 {
			break
		}
		after = next
	}
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("paged Search = %v, want %v", got, want)
	}

	// Unlimited page = everything at once, terminated.
	all, next, err := c.SearchPage(ctx, "fingerprint", 0, 0)
	if err != nil || next != 0 {
		t.Fatalf("unlimited page: %v, next=%d", err, next)
	}
	sort.Strings(all)
	if !reflect.DeepEqual(all, want) {
		t.Fatalf("unlimited page = %v, want %v", all, want)
	}

	// Server-side errors come back as ERR.
	if _, _, err := c.SearchPage(ctx, "((broken", 0, 1); err == nil ||
		!strings.Contains(err.Error(), "server:") {
		t.Fatalf("bad query err = %v", err)
	}
}

func TestFetch(t *testing.T) {
	c, _ := startServer(t)
	data, err := c.Fetch("/papers/iris.ps")
	if err != nil || string(data) != "iris recognition methods" {
		t.Fatalf("Fetch = %q, %v", data, err)
	}
	if _, err := c.Fetch("/papers/none.ps"); err == nil {
		t.Fatal("Fetch of missing file succeeded")
	}
}

func TestQueryWithSpaces(t *testing.T) {
	c, _ := startServer(t)
	// The quoted protocol must survive arbitrary whitespace.
	got, err := c.Search("  fingerprint   AND   sensor ")
	if err != nil || len(got) != 1 {
		t.Fatalf("Search with spaces = %v, %v", got, err)
	}
}

func TestReconnectAfterServerSideClose(t *testing.T) {
	c, srv := startServer(t)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// Kill the client's connection server-side; next request re-dials.
	srv.mu.Lock()
	for conn := range srv.conns {
		conn.Close()
	}
	srv.mu.Unlock()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after reconnect: %v", err)
	}
}

func TestDirRefMatchesNothingRemotely(t *testing.T) {
	c, _ := startServer(t)
	got, err := c.Search("fingerprint AND dir:#42")
	if err != nil || len(got) != 0 {
		t.Fatalf("dir-ref Search = %v, %v", got, err)
	}
}

func TestClientIsNamespace(t *testing.T) {
	var _ hac.Namespace = (*Client)(nil)
}

// End-to-end: mount the remote server into a HAC volume and build a
// semantic directory from it (the §3 scenario).
func TestSemanticMountOverNetwork(t *testing.T) {
	c, _ := startServer(t)
	fs := hac.New(vfs.New(), hac.Options{})
	if err := fs.MkdirAll("/lib"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SemanticMount("/lib", c); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/fp", "fingerprint AND NOT murder"); err != nil {
		t.Fatal(err)
	}
	targets, err := fs.LinkTargets("/fp")
	if err != nil || len(targets) != 2 {
		t.Fatalf("targets = %v, %v", targets, err)
	}
	// sact across the network.
	entries, _ := fs.ReadDir("/fp")
	data, err := fs.Extract(vfs.Join("/fp", entries[0].Name))
	if err != nil || !strings.Contains(string(data), "fingerprint") {
		t.Fatalf("Extract = %q, %v", data, err)
	}
}

func TestServerCloseUnblocksServe(t *testing.T) {
	backend, err := NewIndexBackend(vfs.New(), "/")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(backend, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	time.Sleep(10 * time.Millisecond)
	srv.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}
