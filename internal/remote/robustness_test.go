package remote

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"
)

// rawConn opens a raw TCP connection to the test server.
func rawConn(t *testing.T) net.Conn {
	t.Helper()
	c, _ := startServer(t)
	if err := c.Ping(); err != nil { // ensures the server is up
		t.Fatal(err)
	}
	addr := c.addr
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	return conn
}

func TestServerSurvivesGarbage(t *testing.T) {
	conn := rawConn(t)
	if _, err := conn.Write([]byte("\x00\xff\x13garbage\r\n")); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		// Dropping the connection is acceptable; crashing is not, and
		// the next test would catch a dead server.
		return
	}
	if !strings.HasPrefix(line, "ERR") {
		t.Fatalf("garbage reply = %q, want ERR", line)
	}
	// The protocol keeps working on the same connection after an error.
	if _, err := conn.Write([]byte("PING\n")); err != nil {
		t.Fatal(err)
	}
	line, err = r.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "PONG" {
		t.Fatalf("ping after garbage = %q, %v", line, err)
	}
}

func TestServerRejectsMalformedArgs(t *testing.T) {
	conn := rawConn(t)
	r := bufio.NewReader(conn)
	for _, bad := range []string{
		"SEARCH notquoted\n",
		"FETCH \"unterminated\n",
		"SEARCH\n",
	} {
		if _, err := conn.Write([]byte(bad)); err != nil {
			t.Fatal(err)
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("server dropped connection on %q: %v", bad, err)
		}
		if !strings.HasPrefix(line, "ERR") {
			t.Fatalf("reply to %q = %q, want ERR", bad, line)
		}
	}
}

func TestServerBoundsLineLength(t *testing.T) {
	conn := rawConn(t)
	// A line above maxLine must not be buffered indefinitely; the server
	// either errors or drops the connection without consuming unbounded
	// memory. Send maxLine+2 bytes.
	big := make([]byte, maxLine+2)
	for i := range big {
		big[i] = 'a'
	}
	big[len(big)-1] = '\n'
	if _, err := conn.Write(big); err != nil {
		return // connection refused mid-write: fine
	}
	r := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	_, _ = r.ReadString('\n') // any outcome but a hang is acceptable
}
