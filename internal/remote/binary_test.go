package remote

import (
	"bytes"
	"context"
	"io"
	"net"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"hacfs/internal/wire"
)

// startBinClient connects a binary-protocol client to the same server
// the line-protocol helper builds.
func startBinClient(t *testing.T) (*BinClient, *Client) {
	t.Helper()
	lc, _ := startServer(t)
	bc := DialBin("diglib", lc.addr)
	bc.SetTimeout(5 * time.Second)
	t.Cleanup(func() { bc.Close() })
	return bc, lc
}

func TestBinPingSearchFetch(t *testing.T) {
	bc, _ := startBinClient(t)
	if err := bc.Ping(); err != nil {
		t.Fatal(err)
	}
	got, err := bc.Search("fingerprint")
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	want := []string{"/papers/crime-report.ps", "/papers/fp-matching.ps", "/papers/fp-sensors.ps"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("search = %v, want %v", got, want)
	}
	data, err := bc.Fetch("/papers/iris.ps")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "iris recognition") {
		t.Fatalf("fetch = %q", data)
	}
	if _, err := bc.Search("fingerprint AND ("); err == nil {
		t.Fatal("malformed query did not error")
	}
	if _, err := bc.Fetch("/no/such/file"); err == nil {
		t.Fatal("missing fetch did not error")
	}
}

// TestBinStreamedPages forces a tiny page size and checks the client
// reassembles the multi-frame stream, and that explicit paging through
// the cursor sees every result exactly once.
func TestBinStreamedPages(t *testing.T) {
	bc, _ := startBinClient(t)
	ctx := context.Background()

	var all []string
	err := bc.searchPages(ctx, "fingerprint", 0, 1, 0, func(paths []string, next uint64) {
		all = append(all, paths...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("streamed %d paths, want 3: %v", len(all), all)
	}

	// Page-at-a-time through the cursor.
	var paged []string
	var after uint64
	for {
		paths, next, err := bc.SearchPage(ctx, "fingerprint", after, 2)
		if err != nil {
			t.Fatal(err)
		}
		paged = append(paged, paths...)
		if next == 0 {
			break
		}
		after = next
	}
	sort.Strings(all)
	sort.Strings(paged)
	if !reflect.DeepEqual(all, paged) {
		t.Fatalf("paged %v != streamed %v", paged, all)
	}
}

// TestBinManyInFlight issues many concurrent requests over ONE client
// (one connection) and checks every reply routes to its caller.
func TestBinManyInFlight(t *testing.T) {
	bc, _ := startBinClient(t)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 200)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				paths, err := bc.SearchContext(ctx, "fingerprint")
				if err == nil && len(paths) != 3 {
					errs <- io.ErrUnexpectedEOF
					return
				}
				errs <- err
			} else {
				data, err := bc.FetchContext(ctx, "/papers/iris.ps")
				if err == nil && !strings.Contains(string(data), "iris") {
					errs <- io.ErrUnexpectedEOF
					return
				}
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestBinAndLineCoexist runs both protocols against one server: the
// peek-based negotiation must route each connection correctly.
func TestBinAndLineCoexist(t *testing.T) {
	bc, lc := startBinClient(t)
	want, err := lc.Search("fingerprint")
	if err != nil {
		t.Fatal(err)
	}
	got, err := bc.Search("fingerprint")
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(want)
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("binary %v != line %v", got, want)
	}
}

// TestBinVersionRejected checks the versioned-error path: a client
// with an unsupported framing version receives an error frame, not a
// hang or a crash.
func TestBinVersionRejected(t *testing.T) {
	lc, _ := startServer(t)
	conn, err := net.DialTimeout("tcp", lc.addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := wire.WriteHello(conn, 42); err != nil {
		t.Fatal(err)
	}
	ver, err := wire.ReadHello(conn)
	if err != nil {
		t.Fatal(err)
	}
	if ver != wire.Version {
		t.Fatalf("server hello version = %d, want %d", ver, wire.Version)
	}
	f, err := wire.ReadFrame(conn, maxFramePayload)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != fErr || !strings.Contains(string(f.Payload), "unsupported protocol version") {
		t.Fatalf("reply = type %d %q, want versioned error", f.Type, f.Payload)
	}
}

// FuzzDecodeFrame drives the server-side binary decode path with
// arbitrary bytes: framing, then the per-type payload decoders. It
// must never panic, and every accepted field must respect its bound.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 3, 'a', 'b', 'c'})
	f.Add(func() []byte {
		var buf bytes.Buffer
		wire.WriteFrame(&buf, wire.Frame{Type: fSearch, ID: 7, Payload: appendSearchReq(nil, "a AND b", 9, 4, 0)})
		return buf.Bytes()
	}())
	f.Add(func() []byte {
		var buf bytes.Buffer
		wire.WriteFrame(&buf, wire.Frame{Type: fPage, Flags: wire.FlagFinal, ID: 3, Payload: appendPage(nil, 11, []string{"/a", "/b"})})
		return buf.Bytes()
	}())
	// Huge declared frame length: must be rejected, not allocated.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			fr, err := wire.ReadFrame(r, maxFramePayload)
			if err != nil {
				return
			}
			switch fr.Type {
			case fSearch:
				q, _, _, _, err := decodeSearchReq(fr.Payload)
				if err == nil && len(q) > maxLine {
					t.Fatalf("accepted query of %d bytes", len(q))
				}
			case fPage:
				paths, _, err := decodePage(fr.Payload)
				if err == nil {
					for _, p := range paths {
						if len(p) > maxLine {
							t.Fatalf("accepted path of %d bytes", len(p))
						}
					}
				}
			case fFetch, fData, fErr, fPing, fPong:
				d := wire.NewDec(fr.Payload)
				_ = d.String(maxLine)
			}
		}
	})
}
