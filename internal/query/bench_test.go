package query

import "testing"

func BenchmarkParseSimple(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse("fingerprint AND NOT murder"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseComplex(b *testing.B) {
	const q = `(apple OR banana) AND NOT (cherry AND dir:/some/path) OR ch* AND ~fuzzy`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEval(b *testing.B) {
	env := testEnv()
	n := MustParse("(apple OR cherry) AND NOT banana")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(n, env); err != nil {
			b.Fatal(err)
		}
	}
}
