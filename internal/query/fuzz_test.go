package query

import (
	"testing"

	"hacfs/internal/bitset"
)

// fuzzEnv answers every primitive with a fixed small set so Eval can
// run on arbitrary parsed input.
type fuzzEnv struct{}

func (fuzzEnv) Term(string) (*bitset.Segmented, error)    { return bitset.SegmentedOf(1, 2), nil }
func (fuzzEnv) Prefix(string) (*bitset.Segmented, error)  { return bitset.SegmentedOf(2, 3), nil }
func (fuzzEnv) Fuzzy(string) (*bitset.Segmented, error)   { return bitset.SegmentedOf(3), nil }
func (fuzzEnv) Universe() (*bitset.Segmented, error)      { return bitset.SegmentedOf(1, 2, 3, 4), nil }
func (fuzzEnv) DirRef(*DirRef) (*bitset.Segmented, error) { return bitset.SegmentedOf(4), nil }

// FuzzParse checks three total properties of the parser on arbitrary
// input: it never panics; accepted input re-parses from its canonical
// String form to the same canonical form; and Eval of accepted input
// never panics.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"", "apple", "apple AND banana", "a OR (b AND NOT c)",
		"ch* ~fuzzy dir:/x dir:#12", `dir:"/with space"`, "((((", "a )",
		"NOT NOT NOT x", "!a|b&c", "~", "*", "dir:", "a\x00b", "AND",
		"dir:#99999999999999999999", "\"quoted\"", "~x* AND y",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		n, err := Parse(input)
		if err != nil {
			return
		}
		canon := n.String()
		n2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) does not re-parse: %v", canon, input, err)
		}
		if n2.String() != canon {
			t.Fatalf("canonical form unstable: %q → %q", canon, n2.String())
		}
		if _, err := Eval(n, fuzzEnv{}); err != nil {
			t.Fatalf("Eval of accepted query %q failed: %v", canon, err)
		}
	})
}
