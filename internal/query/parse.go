package query

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrEmpty is returned by Parse for queries with no expression.
var ErrEmpty = errors.New("query: empty expression")

// SyntaxError describes a parse failure with its byte offset in the
// input.
type SyntaxError struct {
	Input string
	Pos   int
	Msg   string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("query: %s at offset %d in %q", e.Msg, e.Pos, e.Input)
}

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokLParen
	tokRParen
	tokAnd
	tokOr
	tokNot
	tokTerm
	tokPrefix
	tokFuzzy
	tokDirPath
	tokDirUID
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	in  string
	pos int
}

func isSpecial(b byte) bool {
	switch b {
	case '(', ')', '&', '|', '!', '"', ' ', '\t', '\n', '\r':
		return true
	}
	return false
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.in) {
		switch b := lx.in[lx.pos]; b {
		case ' ', '\t', '\n', '\r':
			lx.pos++
			continue
		case '(':
			lx.pos++
			return token{tokLParen, "(", lx.pos - 1}, nil
		case ')':
			lx.pos++
			return token{tokRParen, ")", lx.pos - 1}, nil
		case '&':
			lx.pos++
			return token{tokAnd, "&", lx.pos - 1}, nil
		case '|':
			lx.pos++
			return token{tokOr, "|", lx.pos - 1}, nil
		case '!':
			lx.pos++
			return token{tokNot, "!", lx.pos - 1}, nil
		case '"':
			return token{}, &SyntaxError{lx.in, lx.pos, "unexpected quote outside dir:"}
		default:
			return lx.word()
		}
	}
	return token{tokEOF, "", lx.pos}, nil
}

// word lexes a bare word, a keyword, a prefix term, or a dir: reference.
func (lx *lexer) word() (token, error) {
	start := lx.pos
	for lx.pos < len(lx.in) && !isSpecial(lx.in[lx.pos]) {
		lx.pos++
	}
	w := lx.in[start:lx.pos]

	// dir: references may continue with a quoted path (spaces allowed).
	if strings.HasPrefix(strings.ToLower(w), "dir:") {
		rest := w[4:]
		if rest == "" && lx.pos < len(lx.in) && lx.in[lx.pos] == '"' {
			lx.pos++ // consume opening quote
			qstart := lx.pos
			for lx.pos < len(lx.in) && lx.in[lx.pos] != '"' {
				lx.pos++
			}
			if lx.pos >= len(lx.in) {
				return token{}, &SyntaxError{lx.in, start, "unterminated quoted path"}
			}
			rest = lx.in[qstart:lx.pos]
			lx.pos++ // consume closing quote
		}
		if rest == "" {
			return token{}, &SyntaxError{lx.in, start, "dir: requires a path or #uid"}
		}
		if rest[0] == '#' {
			uid, err := strconv.ParseUint(rest[1:], 10, 64)
			if err != nil {
				return token{}, &SyntaxError{lx.in, start, "malformed dir:#uid"}
			}
			if uid == 0 {
				// UID 0 is the reserved "unbound" value and never names
				// a directory.
				return token{}, &SyntaxError{lx.in, start, "dir:#0 is not a valid directory id"}
			}
			return token{tokDirUID, rest[1:], start}, nil
		}
		return token{tokDirPath, rest, start}, nil
	}

	switch strings.ToUpper(w) {
	case "AND":
		return token{tokAnd, w, start}, nil
	case "OR":
		return token{tokOr, w, start}, nil
	case "NOT":
		return token{tokNot, w, start}, nil
	}
	if strings.HasPrefix(w, "~") {
		f := strings.TrimLeft(w, "~")
		if f == "" {
			return token{}, &SyntaxError{lx.in, start, "bare ~ is not a term"}
		}
		return token{tokFuzzy, strings.ToLower(f), start}, nil
	}
	if strings.HasSuffix(w, "*") {
		p := strings.TrimRight(w, "*")
		if p == "" {
			return token{}, &SyntaxError{lx.in, start, "bare * is not a term"}
		}
		return token{tokPrefix, strings.ToLower(p), start}, nil
	}
	return token{tokTerm, strings.ToLower(w), start}, nil
}

type parser struct {
	lx  *lexer
	tok token
	in  string
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) fail(msg string) error {
	return &SyntaxError{p.in, p.tok.pos, msg}
}

// Parse parses a query expression. It returns ErrEmpty for blank input.
func Parse(input string) (Node, error) {
	p := &parser{lx: &lexer{in: input}, in: input}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind == tokEOF {
		return nil, ErrEmpty
	}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.fail("unexpected trailing input")
	}
	return n, nil
}

// MustParse is Parse for tests and examples with known-good queries.
func MustParse(input string) Node {
	n, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return n
}

func (p *parser) parseOr() (Node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Node, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok.kind {
		case tokAnd:
			if err := p.advance(); err != nil {
				return nil, err
			}
		case tokNot, tokLParen, tokTerm, tokPrefix, tokFuzzy, tokDirPath, tokDirUID:
			// adjacency is implicit AND
		default:
			return l, nil
		}
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &And{L: l, R: r}
	}
}

func (p *parser) parseNot() (Node, error) {
	if p.tok.kind == tokNot {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Node, error) {
	switch t := p.tok; t.kind {
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.fail("missing )")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return n, nil
	case tokTerm:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Term{Text: t.text}, nil
	case tokPrefix:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Prefix{Text: t.text}, nil
	case tokFuzzy:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Fuzzy{Text: t.text}, nil
	case tokDirPath:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &DirRef{Path: t.text}, nil
	case tokDirUID:
		uid, _ := strconv.ParseUint(t.text, 10, 64)
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &DirRef{UID: uid}, nil
	case tokEOF:
		return nil, p.fail("unexpected end of query")
	default:
		return nil, p.fail("unexpected token " + t.text)
	}
}
