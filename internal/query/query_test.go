package query

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"hacfs/internal/bitset"
)

// mapEnv is a test Env backed by literal sets.
type mapEnv struct {
	terms    map[string][]uint32
	dirs     map[uint64][]uint32
	universe []uint32
}

// segOf lifts plain uint32 ids into a segmented set (all in segment 0).
func segOf(ids ...uint32) *bitset.Segmented {
	out := bitset.NewSegmented()
	for _, id := range ids {
		out.Add(uint64(id))
	}
	return out
}

func (e *mapEnv) Term(w string) (*bitset.Segmented, error) {
	return segOf(e.terms[w]...), nil
}

func (e *mapEnv) Prefix(p string) (*bitset.Segmented, error) {
	out := bitset.NewSegmented()
	for w, ids := range e.terms {
		if strings.HasPrefix(w, p) {
			out.Or(segOf(ids...))
		}
	}
	return out, nil
}

func (e *mapEnv) Fuzzy(w string) (*bitset.Segmented, error) {
	out := bitset.NewSegmented()
	for t, ids := range e.terms {
		if t == w || oneOff(t, w) {
			out.Or(segOf(ids...))
		}
	}
	return out, nil
}

// oneOff is a simple same-length substitution check for the test env.
func oneOff(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	return diff == 1
}

func (e *mapEnv) DirRef(r *DirRef) (*bitset.Segmented, error) {
	ids, ok := e.dirs[r.UID]
	if !ok {
		return nil, fmt.Errorf("no directory #%d", r.UID)
	}
	return segOf(ids...), nil
}

func (e *mapEnv) Universe() (*bitset.Segmented, error) {
	return segOf(e.universe...), nil
}

func testEnv() *mapEnv {
	return &mapEnv{
		terms: map[string][]uint32{
			"apple":  {1, 2, 3},
			"banana": {2, 3, 4},
			"cherry": {3, 5},
			"chess":  {6},
		},
		dirs:     map[uint64][]uint32{7: {1, 5}},
		universe: []uint32{1, 2, 3, 4, 5, 6},
	}
}

func evalStr(t *testing.T, q string) []uint32 {
	t.Helper()
	n, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	bm, err := Eval(n, testEnv())
	if err != nil {
		t.Fatalf("Eval(%q): %v", q, err)
	}
	out := make([]uint32, 0, bm.Len())
	bm.Range(func(id uint64) bool {
		out = append(out, uint32(id))
		return true
	})
	return out
}

func ids(xs ...uint32) []uint32 { return xs }

func equal(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEvalBasics(t *testing.T) {
	cases := []struct {
		q    string
		want []uint32
	}{
		{"apple", ids(1, 2, 3)},
		{"apple AND banana", ids(2, 3)},
		{"apple banana", ids(2, 3)}, // adjacency is AND
		{"apple & banana", ids(2, 3)},
		{"apple OR cherry", ids(1, 2, 3, 5)},
		{"apple | cherry", ids(1, 2, 3, 5)},
		{"NOT apple", ids(4, 5, 6)},
		{"!apple", ids(4, 5, 6)},
		{"apple AND NOT banana", ids(1)},
		{"(apple OR cherry) AND banana", ids(2, 3)},
		{"apple OR banana AND cherry", ids(1, 2, 3)}, // AND binds tighter
		{"ch*", ids(3, 5, 6)},
		{"dir:#7", ids(1, 5)},
		{"dir:#7 AND cherry", ids(5)},
		{"NOT NOT apple", ids(1, 2, 3)},
		{"missing", nil},
		{"APPLE", ids(1, 2, 3)}, // terms are case-folded
		{"apple and banana", ids(2, 3)},
		{"~apble", ids(1, 2, 3)}, // fuzzy: one substitution from apple
		{"~chess", ids(6)},       // fuzzy: exact term also matches
	}
	for _, c := range cases {
		if got := evalStr(t, c.q); !equal(got, c.want) {
			t.Errorf("Eval(%q) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"(apple",
		"apple)",
		"AND apple",
		"apple AND",
		"apple OR",
		"NOT",
		"*",
		"dir:",
		`dir:"unterminated`,
		"dir:#notanumber",
		`"quoted"`,
	}
	for _, q := range bad {
		_, err := Parse(q)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
			continue
		}
		if q == "" || strings.TrimSpace(q) == "" {
			if !errors.Is(err, ErrEmpty) {
				t.Errorf("Parse(%q) err = %v, want ErrEmpty", q, err)
			}
			continue
		}
		var se *SyntaxError
		if !errors.As(err, &se) {
			t.Errorf("Parse(%q) err %T, want *SyntaxError", q, err)
		}
	}
}

func TestDirRefForms(t *testing.T) {
	n, err := Parse(`dir:/projects/fingerprint`)
	if err != nil {
		t.Fatal(err)
	}
	refs := Refs(n)
	if len(refs) != 1 || refs[0].Path != "/projects/fingerprint" || refs[0].UID != 0 {
		t.Fatalf("refs = %+v", refs)
	}
	n, err = Parse(`dir:"/with spaces/dir"`)
	if err != nil {
		t.Fatal(err)
	}
	if refs := Refs(n); refs[0].Path != "/with spaces/dir" {
		t.Fatalf("quoted path = %q", refs[0].Path)
	}
	n, err = Parse("dir:#42 AND apple")
	if err != nil {
		t.Fatal(err)
	}
	if refs := Refs(n); len(refs) != 1 || refs[0].UID != 42 {
		t.Fatalf("uid refs = %+v", refs)
	}
}

func TestRefsMutation(t *testing.T) {
	n := MustParse("dir:/a AND (dir:/b OR apple)")
	refs := Refs(n)
	if len(refs) != 2 {
		t.Fatalf("len(refs) = %d", len(refs))
	}
	refs[0].UID = 10
	refs[1].UID = 20
	s := n.String()
	if !strings.Contains(s, "dir:#10") || !strings.Contains(s, "dir:#20") {
		t.Fatalf("bound query = %q", s)
	}
}

func TestTerms(t *testing.T) {
	n := MustParse("apple AND (banana OR apple) AND NOT cherry")
	got := Terms(n)
	want := []string{"apple", "banana", "cherry"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
}

func TestStringRoundTrip(t *testing.T) {
	queries := []string{
		"apple",
		"apple AND banana",
		"apple OR (banana AND NOT cherry)",
		"ch* AND dir:#9",
		"NOT (apple OR banana)",
		"dir:/some/path AND apple",
	}
	for _, q := range queries {
		n1 := MustParse(q)
		s := n1.String()
		n2, err := Parse(s)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", s, q, err)
		}
		if n2.String() != s {
			t.Fatalf("round trip unstable: %q → %q", s, n2.String())
		}
	}
}

func TestEvalUnboundDirRefErrors(t *testing.T) {
	n := MustParse("dir:#999")
	if _, err := Eval(n, testEnv()); err == nil {
		t.Fatal("Eval of unknown dir ref succeeded")
	}
}

// Property: parsing never panics and either errors or yields a
// re-parseable string.
func TestPropertyParseTotal(t *testing.T) {
	f := func(s string) bool {
		n, err := Parse(s)
		if err != nil {
			return true
		}
		_, err = Parse(n.String())
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan's law holds under Eval for random term pairs.
func TestPropertyEvalDeMorgan(t *testing.T) {
	env := testEnv()
	words := []string{"apple", "banana", "cherry", "chess", "missing"}
	f := func(ai, bi uint8) bool {
		a, b := words[int(ai)%len(words)], words[int(bi)%len(words)]
		lhs, err := Eval(MustParse(fmt.Sprintf("NOT (%s OR %s)", a, b)), env)
		if err != nil {
			return false
		}
		rhs, err := Eval(MustParse(fmt.Sprintf("(NOT %s) AND (NOT %s)", a, b)), env)
		if err != nil {
			return false
		}
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AND is commutative and OR distributes over AND.
func TestPropertyBooleanAlgebra(t *testing.T) {
	env := testEnv()
	words := []string{"apple", "banana", "cherry", "chess"}
	f := func(ai, bi, ci uint8) bool {
		a := words[int(ai)%len(words)]
		b := words[int(bi)%len(words)]
		c := words[int(ci)%len(words)]
		and1, _ := Eval(MustParse(a+" AND "+b), env)
		and2, _ := Eval(MustParse(b+" AND "+a), env)
		if !and1.Equal(and2) {
			return false
		}
		lhs, _ := Eval(MustParse(fmt.Sprintf("%s OR (%s AND %s)", a, b, c)), env)
		rhs, _ := Eval(MustParse(fmt.Sprintf("(%s OR %s) AND (%s OR %s)", a, b, a, c)), env)
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFuzzyParsing(t *testing.T) {
	n := MustParse("~apple AND banana")
	if n.String() != "(~apple AND banana)" {
		t.Fatalf("String = %q", n.String())
	}
	if _, err := Parse("~"); err == nil {
		t.Fatal("bare ~ accepted")
	}
	// Round trip.
	n2, err := Parse(n.String())
	if err != nil || n2.String() != n.String() {
		t.Fatalf("round trip: %v, %q", err, n2)
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("apple AND (")
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(se.Error(), "offset") {
		t.Fatalf("Error() = %q", se.Error())
	}
}
