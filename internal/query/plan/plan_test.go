package plan

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hacfs/internal/bitset"
	"hacfs/internal/index"
	"hacfs/internal/query"
)

// buildCorpus indexes a randomized tree with controllable segment
// layout and churn, returning the index and a few interior dirs.
func buildCorpus(rng *rand.Rand, files int) (*index.Index, []string) {
	ix := index.New()
	ix.SetSealThreshold(1 + rng.Intn(40)) // vary segment layouts
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "rare"}
	dirs := []string{"/a", "/a/x", "/b", "/b/y", "/c"}
	for i := 0; i < files; i++ {
		d := dirs[rng.Intn(len(dirs))]
		var content []string
		for _, w := range words {
			if rng.Intn(3) == 0 {
				content = append(content, w)
			}
		}
		content = append(content, fmt.Sprintf("u%d", i))
		ix.Add(fmt.Sprintf("%s/f%03d.txt", d, i), []byte(strings.Join(content, " ")))
	}
	// Churn: removes and renames to exercise tombstones + dirs moves.
	for i := 0; i < files/5; i++ {
		j := rng.Intn(files)
		p := fmt.Sprintf("%s/f%03d.txt", dirs[j%len(dirs)], j)
		switch rng.Intn(3) {
		case 0:
			ix.Remove(p)
		case 1:
			ix.RenamePath(p, fmt.Sprintf("/c/m%03d.txt", j))
		case 2:
			ix.Add(p, []byte("alpha rewritten"))
		}
	}
	if rng.Intn(2) == 0 {
		ix.ForceMerge()
	}
	return ix, dirs
}

// randomAST generates a random query over the corpus vocabulary,
// including prefix, fuzzy, and dir-reference leaves.
func randomAST(rng *rand.Rand, depth int) query.Node {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(6) {
		case 0:
			return &query.Term{Text: "alpha"}
		case 1:
			return &query.Term{Text: []string{"beta", "gamma", "rare", "missing"}[rng.Intn(4)]}
		case 2:
			return &query.Prefix{Text: []string{"ga", "ze", "u1"}[rng.Intn(3)]}
		case 3:
			return &query.Fuzzy{Text: "alpka"}
		case 4:
			return &query.DirRef{UID: uint64(1 + rng.Intn(3))}
		default:
			return &query.Term{Text: "delta"}
		}
	}
	switch rng.Intn(3) {
	case 0:
		return &query.And{L: randomAST(rng, depth-1), R: randomAST(rng, depth-1)}
	case 1:
		return &query.Or{L: randomAST(rng, depth-1), R: randomAST(rng, depth-1)}
	default:
		return &query.Not{X: randomAST(rng, depth-1)}
	}
}

// naiveScoped is the oracle: naive Eval, then intersect with the scope
// documents — the semantics the old FS.Search implemented.
func naiveScoped(t *testing.T, ast query.Node, env *SnapEnv, sc Scope) *bitset.Segmented {
	t.Helper()
	res, err := query.Eval(ast, env)
	if err != nil {
		t.Fatalf("naive eval: %v", err)
	}
	docs := env.Snap.DocsUnder(sc.prefixRoot())
	if sc.Set != nil {
		docs.And(sc.Set)
	}
	res.And(docs)
	return res
}

func TestPlannerMatchesNaiveEval(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 150; trial++ {
		ix, dirs := buildCorpus(rng, 40+rng.Intn(80))
		snap := ix.Snapshot()

		// Random directory-reference link sets out of the corpus.
		refs := map[uint64]*bitset.Segmented{}
		all := snap.AllDocs().Slice()
		for uid := uint64(1); uid <= 3; uid++ {
			set := bitset.NewSegmented()
			for _, id := range all {
				if rng.Intn(4) == 0 {
					set.Add(id)
				}
			}
			refs[uid] = set
		}
		env := &SnapEnv{Snap: snap, Refs: refs}

		ast := randomAST(rng, 1+rng.Intn(3))

		// Random scope: unrestricted, syntactic, semantic, or both.
		sc := Scope{}
		switch rng.Intn(4) {
		case 1:
			sc.Prefix = dirs[rng.Intn(len(dirs))]
		case 2:
			sc.Set = refs[1].Clone()
		case 3:
			sc.Prefix = dirs[rng.Intn(len(dirs))]
			sc.Set = refs[2].Clone()
		}

		want := naiveScoped(t, ast, env, sc)

		p, err := Build(ast, sc, env)
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}
		got, err := p.Exec()
		if err != nil {
			t.Fatalf("trial %d: exec: %v", trial, err)
		}
		if !got.Equal(want) || !want.Equal(got) {
			t.Fatalf("trial %d: plan mismatch for %s (scope %+v):\n got %v\nwant %v\nplan:\n%s",
				trial, ast.String(), sc, got, want, p.Explain())
		}

		// Re-exec must be stable.
		again, err := p.Exec()
		if err != nil || !again.Equal(got) {
			t.Fatalf("trial %d: re-exec diverged (err=%v)", trial, err)
		}
	}
}

func TestPlannerScopePruningSkipsPostings(t *testing.T) {
	ix := index.New()
	ix.SetSealThreshold(8)
	for i := 0; i < 32; i++ {
		ix.Add(fmt.Sprintf("/big/f%d.txt", i), []byte("common"))
	}
	for i := 0; i < 4; i++ {
		ix.Add(fmt.Sprintf("/tiny/f%d.txt", i), []byte("common"))
	}
	env := &SnapEnv{Snap: ix.Snapshot()}
	p, err := Build(&query.Term{Text: "common"}, Scope{Prefix: "/tiny"}, env)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("scoped search found %d docs, want 4", res.Len())
	}
	if p.Stats().PostingsSkipped < 32 {
		t.Fatalf("postings skipped = %d, want >= 32", p.Stats().PostingsSkipped)
	}
}

func TestPlannerOrdersAndCheapestFirst(t *testing.T) {
	ix := index.New()
	for i := 0; i < 100; i++ {
		content := "common"
		if i == 0 {
			content = "common needle"
		}
		ix.Add(fmt.Sprintf("/f%d.txt", i), []byte(content))
	}
	env := &SnapEnv{Snap: ix.Snapshot()}
	ast := &query.And{L: &query.Term{Text: "common"}, R: &query.Term{Text: "needle"}}
	p, err := Build(ast, Scope{}, env)
	if err != nil {
		t.Fatal(err)
	}
	ex := p.Explain()
	// needle (cost 1) must come before common (cost 100).
	if ni, ci := strings.Index(ex, "needle"), strings.Index(ex, "common"); ni < 0 || ci < 0 || ni > ci {
		t.Fatalf("AND not reordered cheapest-first:\n%s", ex)
	}
	res, err := p.Exec()
	if err != nil || res.Len() != 1 {
		t.Fatalf("exec: %v, len %d", err, res.Len())
	}
}

// TestPlannerPrefixFuzzySelectivity pins the cost model for prefix and
// fuzzy leaves: they get real estimates from the per-segment term
// dictionaries, so a selective prefix or fuzzy leaf now runs before a
// common bare term in an AND chain instead of always sorting last.
func TestPlannerPrefixFuzzySelectivity(t *testing.T) {
	for _, seal := range []int{4, 1 << 20} { // sealed dictionaries and active-only scan
		ix := index.New()
		ix.SetSealThreshold(seal)
		for i := 0; i < 100; i++ {
			content := "common"
			if i < 2 {
				content += " zygote"
			}
			if i < 3 {
				content += " alpka"
			}
			ix.Add(fmt.Sprintf("/f%d.txt", i), []byte(content))
		}
		env := &SnapEnv{Snap: ix.Snapshot()}

		if got := env.PrefixCost("zy"); got != 2 {
			t.Errorf("seal=%d: PrefixCost(zy) = %d, want 2", seal, got)
		}
		if got := env.PrefixCost("common"); got != 100 {
			t.Errorf("seal=%d: PrefixCost(common) = %d, want 100", seal, got)
		}
		if got := env.FuzzyCost("alpha"); got != 3 { // "alpka" is one edit away
			t.Errorf("seal=%d: FuzzyCost(alpha) = %d, want 3", seal, got)
		}
		if got := env.FuzzyCost("zzzzzzz"); got != 0 {
			t.Errorf("seal=%d: FuzzyCost(zzzzzzz) = %d, want 0", seal, got)
		}

		// The selective prefix leaf must be ordered before the common term.
		ast := &query.And{L: &query.Term{Text: "common"}, R: &query.Prefix{Text: "zy"}}
		p, err := Build(ast, Scope{}, env)
		if err != nil {
			t.Fatal(err)
		}
		ex := p.Explain()
		if pi, ci := strings.Index(ex, "zy"), strings.Index(ex, "common"); pi < 0 || ci < 0 || pi > ci {
			t.Fatalf("seal=%d: prefix leaf not ordered before common term:\n%s", seal, ex)
		}
		if strings.Contains(ex, "cost=scan") {
			t.Fatalf("seal=%d: prefix leaf still priced as scan:\n%s", seal, ex)
		}
		if res, err := p.Exec(); err != nil || res.Len() != 2 {
			t.Fatalf("seal=%d: exec: %v, len %d", seal, err, res.Len())
		}

		// Same for a selective fuzzy leaf.
		ast2 := &query.And{L: &query.Term{Text: "common"}, R: &query.Fuzzy{Text: "alpha"}}
		p2, err := Build(ast2, Scope{}, env)
		if err != nil {
			t.Fatal(err)
		}
		ex2 := p2.Explain()
		if fi, ci := strings.Index(ex2, "alpha"), strings.Index(ex2, "common"); fi < 0 || ci < 0 || fi > ci {
			t.Fatalf("seal=%d: fuzzy leaf not ordered before common term:\n%s", seal, ex2)
		}
	}
}

func TestCacheVersionInvalidation(t *testing.T) {
	c := NewCache(8)
	res := bitset.SegmentedOf(1, 2, 3)
	c.Put("k", res, 7, nil)
	if got, ok := c.Get("k", 7, nil); !ok || got.Len() != 3 {
		t.Fatalf("valid entry missed")
	}
	if _, ok := c.Get("k", 8, nil); ok {
		t.Fatalf("version-stale entry served")
	}
	if c.Len() != 0 {
		t.Fatalf("stale entry not evicted")
	}
}

func TestCacheDepInvalidation(t *testing.T) {
	c := NewCache(8)
	epochs := map[uint64]uint64{42: 1}
	valid := func(deps []Dep) bool {
		for _, d := range deps {
			if epochs[d.UID] != d.Epoch {
				return false
			}
		}
		return true
	}
	c.Put("k", bitset.SegmentedOf(9), 1, []Dep{{UID: 42, Epoch: 1}})
	if _, ok := c.Get("k", 1, valid); !ok {
		t.Fatalf("valid entry missed")
	}
	epochs[42] = 2 // the referenced directory's links changed
	if _, ok := c.Get("k", 1, valid); ok {
		t.Fatalf("dep-stale entry served")
	}
}

func TestCacheCopiesAreIndependent(t *testing.T) {
	c := NewCache(8)
	c.Put("k", bitset.SegmentedOf(1, 2), 1, nil)
	got, _ := c.Get("k", 1, nil)
	got.Add(99)
	again, _ := c.Get("k", 1, nil)
	if again.Contains(99) {
		t.Fatalf("cache entry aliased with returned copy")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", bitset.SegmentedOf(1), 1, nil)
	c.Put("b", bitset.SegmentedOf(2), 1, nil)
	c.Get("a", 1, nil) // touch a; b is now oldest
	c.Put("c", bitset.SegmentedOf(3), 1, nil)
	if _, ok := c.Get("b", 1, nil); ok {
		t.Fatalf("LRU kept the least-recently-used entry")
	}
	if _, ok := c.Get("a", 1, nil); !ok {
		t.Fatalf("LRU evicted the recently-used entry")
	}
}
