package plan

import (
	"container/list"
	"sync"

	"hacfs/internal/bitset"
)

// Cache is an epoch-keyed LRU of query results. An entry is keyed by
// the canonical query text plus scope key, and is valid only while
//
//   - the index version it was computed at still stands (any document
//     commit, tombstone, rename, or merge advances the version), and
//   - every dependency epoch matches: one Dep per directory whose link
//     set the result depends on (the scope directory and every dir:
//     reference), with the epoch HAC bumps through the dependency graph
//     whenever that directory's links change.
//
// Stale entries are evicted on lookup; there is no background sweep.
// Cache is safe for concurrent use.
type Cache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recent
	m   map[string]*list.Element

	hits, misses uint64
}

// Dep pins one directory's link-set epoch.
type Dep struct {
	UID   uint64
	Epoch uint64
}

type cacheEntry struct {
	key     string
	res     *bitset.Segmented
	version uint64
	deps    []Dep
}

// DefaultCacheSize is the default entry capacity.
const DefaultCacheSize = 256

// NewCache returns an empty cache holding at most max entries (<= 0
// uses DefaultCacheSize).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &Cache{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

// Get returns a copy of the cached result for key if it is still valid
// at the given index version and dependency epochs (compared via
// depsValid, which receives the entry's recorded deps; a nil depsValid
// accepts any deps). Invalid entries are evicted.
func (c *Cache) Get(key string, version uint64, depsValid func([]Dep) bool) (*bitset.Segmented, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses++
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.version != version || (depsValid != nil && !depsValid(ent.deps)) {
		c.ll.Remove(el)
		delete(c.m, key)
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return ent.res.Clone(), true
}

// Put stores res for key at the given version and dependency epochs,
// taking ownership of res (callers must not mutate it afterwards).
func (c *Cache) Put(key string, res *bitset.Segmented, version uint64, deps []Dep) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.res, ent.version, ent.deps = res, version, deps
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, version: version, deps: deps})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Purge drops every entry.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.m = make(map[string]*list.Element)
}

// HitsMisses returns the lifetime lookup counters.
func (c *Cache) HitsMisses() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
