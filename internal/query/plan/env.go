package plan

import (
	"hacfs/internal/bitset"
	"hacfs/internal/index"
	"hacfs/internal/query"
)

// SnapEnv adapts a pinned index snapshot to the planner's Env. All
// methods are lock-free with respect to the embedding layer: the
// snapshot takes the index's own read lock per call, and directory
// references resolve through the Refs map, which the caller populates
// up front (HAC binds and resolves them under its volume lock before
// planning, precisely so evaluation can run without it).
type SnapEnv struct {
	Snap *index.Snapshot
	// Refs maps a bound directory reference's UID to its pinned link
	// set. A reference absent from the map matches nothing — remote
	// backends serve namespaces with no semantic directories at all and
	// leave Refs nil; HAC rejects dangling references before planning.
	Refs map[uint64]*bitset.Segmented
}

func (e *SnapEnv) Term(w string) (*bitset.Segmented, error)   { return e.Snap.Lookup(w), nil }
func (e *SnapEnv) Prefix(p string) (*bitset.Segmented, error) { return e.Snap.LookupPrefix(p), nil }
func (e *SnapEnv) Fuzzy(w string) (*bitset.Segmented, error)  { return e.Snap.LookupFuzzy(w), nil }
func (e *SnapEnv) Universe() (*bitset.Segmented, error)       { return e.Snap.AllDocs(), nil }

func (e *SnapEnv) DirRef(ref *query.DirRef) (*bitset.Segmented, error) {
	if set, ok := e.Refs[ref.UID]; ok {
		return set.Clone(), nil
	}
	return bitset.NewSegmented(), nil
}

func (e *SnapEnv) TermUnder(w, root string) (*bitset.Segmented, int, error) {
	res, skipped := e.Snap.LookupUnder(w, root)
	return res, skipped, nil
}

func (e *SnapEnv) TermCost(w string) int { return e.Snap.TermCost(w) }

func (e *SnapEnv) PrefixCost(p string) int { return e.Snap.PrefixCost(p) }

func (e *SnapEnv) FuzzyCost(w string) int { return e.Snap.FuzzyCost(w) }

func (e *SnapEnv) DocsUnder(root string) (*bitset.Segmented, error) {
	return e.Snap.DocsUnder(root), nil
}

func (e *SnapEnv) ScopeCost(root string) int { return e.Snap.ScopeCost(root) }

func (e *SnapEnv) RefCost(ref *query.DirRef) int {
	if set, ok := e.Refs[ref.UID]; ok {
		return set.Len()
	}
	return 0
}
