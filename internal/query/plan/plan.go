// Package plan implements HAC's cost-based query evaluator. The naive
// query.Eval walks the AST left-to-right, materializes the full
// universe for every NOT, and evaluates dir:-scoped queries over all
// postings before filtering; this package plans first and evaluates
// second:
//
//   - the AST is normalized to negation normal form and AND/OR chains
//     are flattened into n-ary nodes;
//   - each leaf gets a selectivity estimate from segment statistics
//     (TermCost: posting cardinality; ScopeCost: composite dirs index);
//   - AND chains re-order cheapest-first, so the accumulator shrinks as
//     early as possible and later intersections gallop over small
//     arrays instead of scanning dense bitmaps;
//   - negations execute as AndNot against the (already scope-bounded)
//     accumulator instead of materializing the universe;
//   - a syntactic scope pushes down into term lookups (LookupUnder),
//     touching only in-scope postings and skipping whole segments that
//     hold nothing under the scope root.
//
// The planned result is provably the naive result restricted to the
// scope: every rewrite preserves exec(n, scope) = Eval(n) ∧ scope,
// which the equivalence property tests in plan_test.go check across
// randomized queries and corpora.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"hacfs/internal/bitset"
	"hacfs/internal/query"
)

// Scope restricts evaluation to a subset of the document space.
// Prefix is a syntactic scope root ("" or "/" means unrestricted) and
// is pushed down into term lookups; Set is an explicit document set (a
// semantic directory's resolved scope), intersected with every result.
// Both may apply at once.
type Scope struct {
	Prefix string
	Set    *bitset.Segmented
}

// unrestricted reports whether the scope admits every document.
func (sc Scope) unrestricted() bool {
	return (sc.Prefix == "" || sc.Prefix == "/") && sc.Set == nil
}

// prefixRoot returns the effective syntactic root.
func (sc Scope) prefixRoot() string {
	if sc.Prefix == "" {
		return "/"
	}
	return sc.Prefix
}

// Key returns a canonical string for the scope, used in cache keys.
// Semantic scope sets are not hashed — callers that pass a Set must
// incorporate its identity (the scope directory's UID) into their own
// key via Dep entries.
func (sc Scope) Key() string {
	if sc.Set != nil {
		return "set|" + sc.prefixRoot()
	}
	return "prefix|" + sc.prefixRoot()
}

// Env supplies the primitives a plan evaluates over: the naive
// query.Env surface plus the statistics and scoped lookups the cost
// model needs. SnapEnv adapts an index snapshot.
type Env interface {
	query.Env
	// TermUnder returns the live documents containing word whose path
	// lies under root, plus how many posting entries the scope pruning
	// skipped.
	TermUnder(word, root string) (*bitset.Segmented, int, error)
	// TermCost estimates the posting cardinality of word.
	TermCost(word string) int
	// PrefixCost estimates the total posting cardinality of terms with
	// the given prefix.
	PrefixCost(prefix string) int
	// FuzzyCost estimates the total posting cardinality of terms within
	// edit distance 1 of word.
	FuzzyCost(word string) int
	// DocsUnder returns the live documents under root.
	DocsUnder(root string) (*bitset.Segmented, error)
	// ScopeCost estimates how many documents lie under root.
	ScopeCost(root string) int
	// RefCost estimates the link-set size of a directory reference.
	RefCost(ref *query.DirRef) int
}

// costExpensive marks operators with no cheap selectivity estimate
// (negations, saturated OR chains); they sort last in an AND chain so
// the accumulator is already small when they run.
const costExpensive = 1 << 30

// node ops.
const (
	opAnd = iota
	opOr
	opNot
	opLeaf
)

// node is one planned operator. And/Or are n-ary after flattening; Not
// has exactly one child; Leaf wraps a Term/Prefix/Fuzzy/DirRef.
type node struct {
	op   int
	kids []*node
	leaf query.Node
	cost int
}

// Plan is a compiled, reusable evaluation plan for one query under one
// scope. Exec may be called repeatedly (e.g. against the same pinned
// snapshot); it is not safe for concurrent use.
type Plan struct {
	root     *node
	scope    Scope
	env      Env
	scopeSet *bitset.Segmented // memoized scope document set (exec.go)
	stats    Stats
	executed bool // Exec ran at least once; Explain shows its stats
}

// Stats describes what one Exec did.
type Stats struct {
	Leaves          int // leaf lookups evaluated
	PostingsSkipped int // posting entries scope pruning avoided
	CacheHit        bool
}

// Build compiles ast into a plan over env, restricted to scope. The
// ast is not modified.
func Build(ast query.Node, scope Scope, env Env) (*Plan, error) {
	if root := scope.prefixRoot(); root != "/" && env.ScopeCost(root) == env.ScopeCost("/") {
		// The prefix admits every document — the composite dirs index
		// keeps tombstoned slots, so the counts match exactly only when
		// nothing lies outside root. Drop it so term lookups take the
		// unscoped fast path instead of cloning full-segment containers.
		scope.Prefix = "/"
	}
	n, err := lower(ast, false, env)
	if err != nil {
		return nil, err
	}
	return &Plan{root: n, scope: scope, env: env}, nil
}

// lower converts a query AST to a planned node tree: De Morgan pushes
// negation down to the leaves (neg tracks parity), And/Or chains
// flatten, and every AND's children sort cheapest-first with negations
// last.
func lower(ast query.Node, neg bool, env Env) (*node, error) {
	switch x := ast.(type) {
	case *query.And:
		op := opAnd
		if neg { // NOT (a AND b) = NOT a OR NOT b
			op = opOr
		}
		l, err := lower(x.L, neg, env)
		if err != nil {
			return nil, err
		}
		r, err := lower(x.R, neg, env)
		if err != nil {
			return nil, err
		}
		return combine(op, l, r), nil
	case *query.Or:
		op := opOr
		if neg { // NOT (a OR b) = NOT a AND NOT b
			op = opAnd
		}
		l, err := lower(x.L, neg, env)
		if err != nil {
			return nil, err
		}
		r, err := lower(x.R, neg, env)
		if err != nil {
			return nil, err
		}
		return combine(op, l, r), nil
	case *query.Not:
		return lower(x.X, !neg, env)
	case *query.Term, *query.Prefix, *query.Fuzzy, *query.DirRef:
		n := &node{op: opLeaf, leaf: x, cost: leafCost(x, env)}
		if neg {
			return &node{op: opNot, kids: []*node{n}, cost: costExpensive}, nil
		}
		return n, nil
	default:
		return nil, fmt.Errorf("plan: unknown node type %T", ast)
	}
}

// combine builds an n-ary node, flattening children with the same op,
// and orders AND children for execution.
func combine(op int, kids ...*node) *node {
	n := &node{op: op}
	for _, k := range kids {
		if k.op == op {
			n.kids = append(n.kids, k.kids...)
		} else {
			n.kids = append(n.kids, k)
		}
	}
	if op == opAnd {
		orderAnd(n)
	}
	n.cost = naryCost(op, n.kids)
	return n
}

// orderAnd sorts an AND's children: positive children cheapest-first
// (the accumulator shrinks fastest), then negations (executed as
// AndNot against the shrunken accumulator), also cheapest-first. The
// sort is stable so equal-cost children keep source order, which keeps
// Explain output deterministic.
func orderAnd(n *node) {
	sort.SliceStable(n.kids, func(i, j int) bool {
		ni, nj := n.kids[i], n.kids[j]
		if (ni.op == opNot) != (nj.op == opNot) {
			return nj.op == opNot
		}
		return ni.cost < nj.cost
	})
}

func naryCost(op int, kids []*node) int {
	if len(kids) == 0 {
		return 0
	}
	switch op {
	case opAnd:
		// The chain costs what its most selective positive costs.
		best := costExpensive
		for _, k := range kids {
			if k.op != opNot && k.cost < best {
				best = k.cost
			}
		}
		return best
	case opOr:
		total := 0
		for _, k := range kids {
			if total += k.cost; total >= costExpensive {
				return costExpensive
			}
		}
		return total
	default:
		return costExpensive
	}
}

// leafCost prices a leaf by its estimated result cardinality. Prefix
// and fuzzy leaves get real estimates from the per-segment term
// dictionaries (index/dict.go) — summed posting cardinalities over the
// matching vocabulary range — so a selective prefix ("zyg*") now sorts
// before a common bare term in an AND chain instead of always last.
func leafCost(leaf query.Node, env Env) int {
	switch x := leaf.(type) {
	case *query.Term:
		return env.TermCost(x.Text)
	case *query.Prefix:
		return env.PrefixCost(x.Text)
	case *query.Fuzzy:
		return env.FuzzyCost(x.Text)
	case *query.DirRef:
		return env.RefCost(x)
	default:
		return costExpensive
	}
}

// Stats returns what the last Exec did.
func (p *Plan) Stats() Stats { return p.stats }

// Explain renders the plan as an indented tree with per-node cost
// estimates, for the shell's `explain` command and SearchResult.
func (p *Plan) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scope: %s", p.scope.prefixRoot())
	if p.scope.Set != nil {
		fmt.Fprintf(&sb, " ∩ set(%d docs)", p.scope.Set.Len())
	} else if !p.scope.unrestricted() {
		fmt.Fprintf(&sb, " (≈%d docs)", p.env.ScopeCost(p.scope.prefixRoot()))
	}
	sb.WriteByte('\n')
	p.root.explain(&sb, 0)
	// Estimates above, reality below: once the plan has run, append what
	// the execution actually did, so a captured slow-query plan shows
	// both sides (a cache-served search never ran, and shows none).
	if p.executed {
		fmt.Fprintf(&sb, "exec: leaves=%d postings_skipped=%d\n",
			p.stats.Leaves, p.stats.PostingsSkipped)
	}
	return sb.String()
}

func (n *node) explain(sb *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	switch n.op {
	case opAnd:
		fmt.Fprintf(sb, "%sAND %s\n", indent, costStr(n.cost))
	case opOr:
		fmt.Fprintf(sb, "%sOR %s\n", indent, costStr(n.cost))
	case opNot:
		fmt.Fprintf(sb, "%sNOT\n", indent)
	case opLeaf:
		fmt.Fprintf(sb, "%s%s %s\n", indent, n.leaf.String(), costStr(n.cost))
		return
	}
	for _, k := range n.kids {
		k.explain(sb, depth+1)
	}
}

func costStr(c int) string {
	if c >= costExpensive {
		return "(cost=scan)"
	}
	return fmt.Sprintf("(cost=%d)", c)
}
