package plan

import (
	"hacfs/internal/bitset"
	"hacfs/internal/query"
)

// Exec evaluates the plan and returns the matching documents,
// restricted to the plan's scope. The result is owned by the caller.
//
// Every node maintains the invariant
//
//	exec(n) = query.Eval(n, env) ∧ scopeDocs
//
// which makes two shortcuts sound: an AND's negations run as AndNot
// against the accumulator (acc ⊆ scopeDocs, so subtracting the scoped
// or unscoped operand is the same set), and the complement base for a
// bare NOT is the scope's document set, not the whole universe.
func (p *Plan) Exec() (*bitset.Segmented, error) {
	p.stats = Stats{}
	p.executed = true
	return p.exec(p.root)
}

// scopeDocs materializes the scope's full document set, memoized for
// the lifetime of the plan: it is only needed by bare negations and
// non-term leaves, and with the composite dirs index it is
// O(result), not O(corpus). The returned set is a clone.
func (p *Plan) scopeDocs() (*bitset.Segmented, error) {
	if p.scopeSet == nil {
		sc := p.scope
		base, err := p.env.DocsUnder(sc.prefixRoot())
		if err != nil {
			return nil, err
		}
		if sc.Set != nil {
			base.And(sc.Set)
		}
		p.scopeSet = base
	}
	return p.scopeSet.Clone(), nil
}

func (p *Plan) exec(n *node) (*bitset.Segmented, error) {
	switch n.op {
	case opLeaf:
		return p.execLeaf(n.leaf)
	case opNot:
		base, err := p.scopeDocs()
		if err != nil {
			return nil, err
		}
		if !base.Any() {
			return base, nil
		}
		v, err := p.exec(n.kids[0])
		if err != nil {
			return nil, err
		}
		base.AndNot(v)
		return base, nil
	case opOr:
		acc := bitset.NewSegmented()
		for _, k := range n.kids {
			v, err := p.exec(k)
			if err != nil {
				return nil, err
			}
			acc.Or(v)
		}
		return acc, nil
	case opAnd:
		return p.execAnd(n)
	}
	return nil, errUnknownOp
}

var errUnknownOp = &planError{"unknown plan operator"}

type planError struct{ msg string }

func (e *planError) Error() string { return "plan: " + e.msg }

// execAnd evaluates an n-ary AND: positive children first (already
// cost-ordered, so the accumulator shrinks as early as possible, and
// an empty accumulator short-circuits the rest), then negations as
// AndNot.
func (p *Plan) execAnd(n *node) (*bitset.Segmented, error) {
	var acc *bitset.Segmented
	for _, k := range n.kids {
		if k.op == opNot {
			continue
		}
		if acc != nil && !acc.Any() {
			return acc, nil
		}
		v, err := p.exec(k)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = v
		} else {
			acc.And(v)
		}
	}
	if acc == nil {
		// Pure negation: subtract from the scope's documents.
		base, err := p.scopeDocs()
		if err != nil {
			return nil, err
		}
		acc = base
	}
	for _, k := range n.kids {
		if k.op != opNot {
			continue
		}
		if !acc.Any() {
			return acc, nil
		}
		// acc ⊆ scopeDocs, so subtracting the scoped operand equals
		// subtracting the unscoped one.
		v, err := p.exec(k.kids[0])
		if err != nil {
			return nil, err
		}
		acc.AndNot(v)
	}
	return acc, nil
}

// execLeaf evaluates one primitive, scope applied. Terms push the
// syntactic scope down into the composite index; other primitives
// evaluate fully and intersect with the scope's document set.
func (p *Plan) execLeaf(leaf query.Node) (*bitset.Segmented, error) {
	p.stats.Leaves++
	sc := p.scope
	if t, ok := leaf.(*query.Term); ok {
		var res *bitset.Segmented
		if root := sc.prefixRoot(); root != "/" {
			r, skipped, err := p.env.TermUnder(t.Text, root)
			if err != nil {
				return nil, err
			}
			p.stats.PostingsSkipped += skipped
			res = r
		} else {
			r, err := p.env.Term(t.Text)
			if err != nil {
				return nil, err
			}
			res = r
		}
		if sc.Set != nil {
			res.And(sc.Set)
		}
		return res, nil
	}

	var res *bitset.Segmented
	var err error
	switch x := leaf.(type) {
	case *query.Prefix:
		res, err = p.env.Prefix(x.Text)
	case *query.Fuzzy:
		res, err = p.env.Fuzzy(x.Text)
	case *query.DirRef:
		res, err = p.env.DirRef(x)
	default:
		return nil, errUnknownOp
	}
	if err != nil {
		return nil, err
	}
	if !sc.unrestricted() && res.Any() {
		docs, err := p.scopeDocs()
		if err != nil {
			return nil, err
		}
		res.And(docs)
	}
	return res, nil
}
