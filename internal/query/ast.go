// Package query implements HAC's query language: the boolean search
// expressions users attach to semantic directories.
//
// The grammar is Glimpse-flavored boolean search extended with the
// paper's §2.5 directory references:
//
//	expr    = or
//	or      = and { ("OR" | "|") and }
//	and     = not { ("AND" | "&")? not }     // adjacency is AND
//	not     = ("NOT" | "!")* primary
//	primary = "(" expr ")" | term | prefix | fuzzy | dirref
//	term    = word                            // case-insensitive
//	prefix  = word "*"                        // prefix match
//	fuzzy   = "~" word                        // approximate (edit distance 1)
//	dirref  = "dir:" path | "dir:#" uid       // §2.5 directory reference
//
// A dirref evaluates to the current link set of another directory,
// letting users combine searching with edited query results. HAC
// rewrites path dirrefs to UID dirrefs before storing a query, so
// renaming a referenced directory does not invalidate it (§2.5); both
// spellings parse.
package query

import (
	"fmt"
	"strings"

	"hacfs/internal/bitset"
)

// Node is a parsed query expression.
type Node interface {
	// String renders the node in canonical re-parseable form.
	String() string
}

// And matches documents matched by both operands.
type And struct{ L, R Node }

// Or matches documents matched by either operand.
type Or struct{ L, R Node }

// Not matches documents in the universe not matched by the operand.
type Not struct{ X Node }

// Term matches documents containing the (normalized) word.
type Term struct{ Text string }

// Prefix matches documents containing any word with the given prefix.
type Prefix struct{ Text string }

// Fuzzy matches documents containing any word within edit distance 1
// of the text — Glimpse's approximate matching, spelled "~word".
type Fuzzy struct{ Text string }

// DirRef evaluates to the current link set of another directory. After
// binding, UID is non-zero and is what gets serialized; before binding
// only Path is set.
type DirRef struct {
	Path string // as written by the user ("" once bound and re-parsed)
	UID  uint64 // stable directory identity (0 until bound)
}

func (n *And) String() string { return "(" + n.L.String() + " AND " + n.R.String() + ")" }
func (n *Or) String() string  { return "(" + n.L.String() + " OR " + n.R.String() + ")" }
func (n *Not) String() string { return "(NOT " + n.X.String() + ")" }
func (n *Term) String() string {
	return n.Text
}
func (n *Prefix) String() string { return n.Text + "*" }
func (n *Fuzzy) String() string  { return "~" + n.Text }
func (n *DirRef) String() string {
	if n.UID != 0 {
		return fmt.Sprintf("dir:#%d", n.UID)
	}
	return "dir:" + quoteIfNeeded(n.Path)
}

func quoteIfNeeded(p string) string {
	if strings.ContainsAny(p, " \t()&|!\"") {
		return `"` + p + `"`
	}
	return p
}

// Refs returns pointers to every DirRef in the expression, in
// left-to-right order. Callers may mutate them (HAC uses this to bind
// paths to UIDs).
func Refs(n Node) []*DirRef {
	var out []*DirRef
	var visit func(Node)
	visit = func(n Node) {
		switch x := n.(type) {
		case *And:
			visit(x.L)
			visit(x.R)
		case *Or:
			visit(x.L)
			visit(x.R)
		case *Not:
			visit(x.X)
		case *DirRef:
			out = append(out, x)
		}
	}
	visit(n)
	return out
}

// Terms returns the distinct Term texts in the expression, in
// left-to-right first-occurrence order.
func Terms(n Node) []string {
	var out []string
	seen := map[string]bool{}
	var visit func(Node)
	visit = func(n Node) {
		switch x := n.(type) {
		case *And:
			visit(x.L)
			visit(x.R)
		case *Or:
			visit(x.L)
			visit(x.R)
		case *Not:
			visit(x.X)
		case *Term:
			if !seen[x.Text] {
				seen[x.Text] = true
				out = append(out, x.Text)
			}
		}
	}
	visit(n)
	return out
}

// Env supplies the primitive result sets a query evaluates over. It is
// the interface between the query language and the CBA mechanism —
// the paper's "simple, well defined API" between HAC and Glimpse.
type Env interface {
	// Term returns the documents containing the word.
	Term(word string) (*bitset.Segmented, error)
	// Prefix returns the documents containing any word with the prefix.
	Prefix(prefix string) (*bitset.Segmented, error)
	// Fuzzy returns the documents containing any word within edit
	// distance 1 of the word (approximate matching).
	Fuzzy(word string) (*bitset.Segmented, error)
	// DirRef returns the current link set of the referenced directory.
	DirRef(ref *DirRef) (*bitset.Segmented, error)
	// Universe returns all documents in scope, the complement base for
	// NOT.
	Universe() (*bitset.Segmented, error)
}

// Eval evaluates the expression against env. The result is owned by
// the caller.
func Eval(n Node, env Env) (*bitset.Segmented, error) {
	switch x := n.(type) {
	case *And:
		l, err := Eval(x.L, env)
		if err != nil {
			return nil, err
		}
		if !l.Any() { // short-circuit: ∅ AND r = ∅
			return l, nil
		}
		r, err := Eval(x.R, env)
		if err != nil {
			return nil, err
		}
		l.And(r)
		return l, nil
	case *Or:
		l, err := Eval(x.L, env)
		if err != nil {
			return nil, err
		}
		r, err := Eval(x.R, env)
		if err != nil {
			return nil, err
		}
		l.Or(r)
		return l, nil
	case *Not:
		u, err := env.Universe()
		if err != nil {
			return nil, err
		}
		v, err := Eval(x.X, env)
		if err != nil {
			return nil, err
		}
		u.AndNot(v)
		return u, nil
	case *Term:
		return env.Term(x.Text)
	case *Prefix:
		return env.Prefix(x.Text)
	case *Fuzzy:
		return env.Fuzzy(x.Text)
	case *DirRef:
		return env.DirRef(x)
	default:
		return nil, fmt.Errorf("query: unknown node type %T", n)
	}
}
