package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"hacfs/internal/bitset"
	"hacfs/internal/corpus"
	"hacfs/internal/hac"
	"hacfs/internal/query"
	"hacfs/internal/vfs"
)

// ---------------------------------------------------------------------
// Cost-based planner — paged Search vs the pre-planner pipeline
// ---------------------------------------------------------------------

// PlannerQueryResult is one (query, scope) row of the planner
// experiment: the naive pipeline's latency against the planner's, cold
// (cache bypassed) and warm (second identical search).
type PlannerQueryResult struct {
	Query   string
	Scope   string
	Matches int

	NaiveP50 time.Duration
	NaiveP99 time.Duration
	ColdP50  time.Duration
	ColdP99  time.Duration
	WarmP50  time.Duration
	WarmP99  time.Duration

	PostingsSkipped int // scope pruning: postings never touched, cold run

	SpeedupCold float64 // NaiveP99 / ColdP99
	SpeedupWarm float64 // NaiveP99 / WarmP99
}

// PlannerResult reports the planner experiment: time-to-first-page of
// the redesigned Search against the pre-planner pipeline (evaluate the
// whole query over the whole index, materialize and sort every matching
// path, filter by scope prefix), over the Table-4 selectivity classes.
type PlannerResult struct {
	Files   int
	Samples int
	Queries []PlannerQueryResult
}

// naiveEnv replays the pre-planner evaluation: every leaf is fetched
// whole from the snapshot, with no reordering, no scope pruning and no
// caching. Directory references resolve to nothing (the measured
// queries use none).
type naiveEnv struct {
	snap interface {
		Lookup(string) *bitset.Segmented
		LookupPrefix(string) *bitset.Segmented
		LookupFuzzy(string) *bitset.Segmented
		AllDocs() *bitset.Segmented
	}
}

func (e naiveEnv) Term(w string) (*bitset.Segmented, error)   { return e.snap.Lookup(w), nil }
func (e naiveEnv) Prefix(p string) (*bitset.Segmented, error) { return e.snap.LookupPrefix(p), nil }
func (e naiveEnv) Fuzzy(w string) (*bitset.Segmented, error)  { return e.snap.LookupFuzzy(w), nil }
func (e naiveEnv) Universe() (*bitset.Segmented, error)       { return e.snap.AllDocs(), nil }
func (e naiveEnv) DirRef(*query.DirRef) (*bitset.Segmented, error) {
	return bitset.NewSegmented(), nil
}

// Planner measures the cost-based planner experiment over a generated
// corpus: for each (query, scope) pair it times `samples` runs of the
// naive pipeline and of the planner path cold and warm, and reports
// latency percentiles and speedups. The planner rows measure
// time-to-first-page — the latency a paged client actually pays —
// which is the redesign's point: evaluation prunes out-of-scope
// postings and path materialization is lazy.
func Planner(spec corpus.Spec, samples int) (PlannerResult, error) {
	if samples <= 0 {
		samples = 300
	}
	mem := vfs.New()
	if err := mem.MkdirAll("/db"); err != nil {
		return PlannerResult{}, err
	}
	man, err := corpus.Generate(mem, "/db", spec)
	if err != nil {
		return PlannerResult{}, err
	}
	hfs := hac.New(mem, hac.Options{})
	if _, err := hfs.Reindex("/db"); err != nil {
		return PlannerResult{}, err
	}

	// A directory holding many-match files, for the scoped row.
	manyFiles := man.MarkerFiles["markermany"]
	if len(manyFiles) == 0 {
		return PlannerResult{}, fmt.Errorf("bench: corpus planted no markermany files")
	}
	subdir := vfs.Dir(manyFiles[0])

	cases := []struct{ q, scope string }{
		{"markermany", "/db"},                   // Table-4 many-match class
		{"markermany AND markermid", "/db"},     // AND-chain reordering
		{"markermany AND NOT markerfew", "/db"}, // NOT pushdown
		{"markermany", subdir},                  // dir-scoped: composite-index pruning
		{"markerfew", "/db"},                    // few-match class (sanity: no regression)
	}

	res := PlannerResult{Files: len(man.Files), Samples: samples}
	ctx := context.Background()
	for _, tc := range cases {
		ast, err := query.Parse(tc.q)
		if err != nil {
			return res, err
		}

		row := PlannerQueryResult{Query: tc.q, Scope: tc.scope}

		// Naive: whole-index evaluation, all paths materialized and
		// sorted, scope applied as an afterthought on path strings.
		runtime.GC() // each mode starts with the previous mode's garbage collected
		naive := make([]time.Duration, 0, samples)
		for i := 0; i < samples; i++ {
			start := time.Now()
			snap := hfs.Index().Snapshot()
			bm, err := query.Eval(ast, naiveEnv{snap: snap})
			if err != nil {
				return res, err
			}
			paths := snap.Paths(bm)
			n := 0
			for _, p := range paths {
				if tc.scope == "/db" || vfs.HasPrefix(p, tc.scope) {
					n++
				}
			}
			naive = append(naive, time.Since(start))
			if i == 0 {
				row.Matches = n
			}
		}

		// Planner, cold: cache bypassed, first page materialized.
		runtime.GC()
		cold := make([]time.Duration, 0, samples)
		for i := 0; i < samples; i++ {
			start := time.Now()
			r, err := hfs.Search(ctx, tc.q, hac.WithScope(tc.scope), hac.WithoutCache())
			if err != nil {
				return res, err
			}
			r.Next()
			cold = append(cold, time.Since(start))
			if i == 0 {
				st := r.Stats()
				row.PostingsSkipped = st.PostingsSkipped
				if st.Matches != row.Matches {
					return res, fmt.Errorf("bench: planner disagrees with naive on %q in %s: %d vs %d",
						tc.q, tc.scope, st.Matches, row.Matches)
				}
			}
		}

		// Planner, warm: identical searches served from the epoch-keyed
		// result cache.
		if _, err := hfs.Search(ctx, tc.q, hac.WithScope(tc.scope)); err != nil {
			return res, err
		}
		runtime.GC()
		warm := make([]time.Duration, 0, samples)
		for i := 0; i < samples; i++ {
			start := time.Now()
			r, err := hfs.Search(ctx, tc.q, hac.WithScope(tc.scope))
			if err != nil {
				return res, err
			}
			r.Next()
			warm = append(warm, time.Since(start))
		}

		row.NaiveP50, row.NaiveP99 = percentile(naive, 0.50), percentile(naive, 0.99)
		row.ColdP50, row.ColdP99 = percentile(cold, 0.50), percentile(cold, 0.99)
		row.WarmP50, row.WarmP99 = percentile(warm, 0.50), percentile(warm, 0.99)
		if row.ColdP99 > 0 {
			row.SpeedupCold = float64(row.NaiveP99) / float64(row.ColdP99)
		}
		if row.WarmP99 > 0 {
			row.SpeedupWarm = float64(row.NaiveP99) / float64(row.WarmP99)
		}
		res.Queries = append(res.Queries, row)
	}
	return res, nil
}
