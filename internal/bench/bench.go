// Package bench implements the paper's evaluation (§4): one experiment
// per table, plus the ablations listed in DESIGN.md. Both the
// testing.B benchmarks in bench_test.go and the cmd/hacbench table
// printer drive these functions, so the numbers in EXPERIMENTS.md are
// regenerated from exactly this code.
package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"hacfs/internal/andrew"
	"hacfs/internal/baseline"
	"hacfs/internal/bitset"
	"hacfs/internal/corpus"
	"hacfs/internal/hac"
	"hacfs/internal/index"
	"hacfs/internal/query"
	"hacfs/internal/vfs"
)

// ---------------------------------------------------------------------
// Table 1 — Andrew Benchmark, UNIX vs HAC
// ---------------------------------------------------------------------

// Table1Row is one file system's Andrew result.
type Table1Row struct {
	System string
	Result andrew.Result
}

// Table1 runs the Andrew benchmark on the raw substrate ("UNIX") and on
// a HAC volume over an identical substrate.
func Table1(spec andrew.Spec) ([]Table1Row, error) {
	var rows []Table1Row

	raw := vfs.New()
	if err := andrew.GenerateSource(raw, "/src", spec); err != nil {
		return nil, err
	}
	rawRes, err := andrew.Run(raw, "/src", "/dst", spec)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{System: "UNIX", Result: rawRes})

	hacFS := hac.New(vfs.New(), hac.Options{})
	if err := andrew.GenerateSource(hacFS, "/src", spec); err != nil {
		return nil, err
	}
	hacRes, err := andrew.Run(hacFS, "/src", "/dst", spec)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{System: "HAC", Result: hacRes})
	return rows, nil
}

// Slowdown returns (b-a)/a as a percentage.
func Slowdown(a, b time.Duration) float64 {
	if a <= 0 {
		return 0
	}
	return 100 * float64(b-a) / float64(a)
}

// ---------------------------------------------------------------------
// Table 2 — % slowdown of user-level file systems vs the substrate
// ---------------------------------------------------------------------

// Table2Row is one layered file system's slowdown.
type Table2Row struct {
	System      string
	SlowdownPct float64
	Total       time.Duration
	RawTotal    time.Duration
}

// Table2 measures the Andrew slowdown of the Jade-style, Pseudo-style
// and HAC layers relative to the raw substrate. Each layer runs over
// its own fresh substrate with the same workload.
func Table2(spec andrew.Spec) ([]Table2Row, error) {
	run := func(fsys vfs.FileSystem) (time.Duration, error) {
		if err := andrew.GenerateSource(fsys, "/src", spec); err != nil {
			return 0, err
		}
		res, err := andrew.Run(fsys, "/src", "/dst", spec)
		if err != nil {
			return 0, err
		}
		return res.Total(), nil
	}

	rawTotal, err := run(vfs.New())
	if err != nil {
		return nil, err
	}

	pseudo := baseline.NewPseudo(vfs.New())
	defer pseudo.Close()

	systems := []struct {
		name string
		fsys vfs.FileSystem
	}{
		{"Jade FS", baseline.NewJade(vfs.New())},
		{"Pseudo FS", pseudo},
		{"HAC FS", hac.New(vfs.New(), hac.Options{})},
	}
	var rows []Table2Row
	for _, s := range systems {
		total, err := run(s.fsys)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		rows = append(rows, Table2Row{
			System:      s.name,
			SlowdownPct: Slowdown(rawTotal, total),
			Total:       total,
			RawTotal:    rawTotal,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Table 3 — indexing time and space, direct vs through HAC
// ---------------------------------------------------------------------

// Table3Result compares indexing a corpus directly over the substrate
// with indexing the same corpus through the HAC layer.
type Table3Result struct {
	Files       int
	CorpusBytes int

	DirectTime time.Duration
	HACTime    time.Duration

	DirectIndexBytes int
	HACIndexBytes    int // index + HAC's own structures
}

// TimeOverheadPct returns the indexing-time overhead of HAC.
func (r Table3Result) TimeOverheadPct() float64 {
	return Slowdown(r.DirectTime, r.HACTime)
}

// SpaceOverheadPct returns the index-space overhead of HAC.
func (r Table3Result) SpaceOverheadPct() float64 {
	if r.DirectIndexBytes == 0 {
		return 0
	}
	return 100 * float64(r.HACIndexBytes-r.DirectIndexBytes) / float64(r.DirectIndexBytes)
}

// Table3 builds the corpus twice (identical content) and indexes one
// copy directly and one through HAC, as the paper did with Glimpse.
// Each side is timed reps times on fresh indexes over the same
// substrate, alternating, and the minimum is reported (the measurement
// least disturbed by the garbage collector).
func Table3(spec corpus.Spec) (Table3Result, error) {
	return Table3Reps(spec, 3)
}

// Table3Reps is Table3 with an explicit repetition count.
func Table3Reps(spec corpus.Spec, reps int) (Table3Result, error) {
	var res Table3Result
	if reps <= 0 {
		reps = 1
	}

	// One substrate for the direct side, one for the HAC side — same
	// content.
	raw := vfs.New()
	if err := raw.MkdirAll("/db"); err != nil {
		return res, err
	}
	man, err := corpus.Generate(raw, "/db", spec)
	if err != nil {
		return res, err
	}
	res.Files = len(man.Files)
	res.CorpusBytes = man.TotalBytes

	hacUnder := vfs.New()
	if err := hacUnder.MkdirAll("/db"); err != nil {
		return res, err
	}
	if _, err := corpus.Generate(hacUnder, "/db", spec); err != nil {
		return res, err
	}

	for r := 0; r < reps; r++ {
		// Direct: Glimpse over UNIX, fresh index.
		runtime.GC()
		ix := index.New()
		start := time.Now()
		if _, _, _, err := ix.SyncTree(raw, "/db"); err != nil {
			return res, err
		}
		d := time.Since(start)
		if res.DirectTime == 0 || d < res.DirectTime {
			res.DirectTime = d
		}
		res.DirectIndexBytes = ix.Stats().IndexBytes

		// Through HAC: fresh layer over the prepared substrate.
		runtime.GC()
		hacFS := hac.New(hacUnder, hac.Options{})
		start = time.Now()
		if _, err := hacFS.Reindex("/db"); err != nil {
			return res, err
		}
		h := time.Since(start)
		if res.HACTime == 0 || h < res.HACTime {
			res.HACTime = h
		}
		res.HACIndexBytes = hacFS.Index().Stats().IndexBytes + hacFS.MetadataBytes()
	}
	return res, nil
}

// ---------------------------------------------------------------------
// Table 4 — query cost: smkdir vs direct search
// ---------------------------------------------------------------------

// Table4Row compares one query class.
type Table4Row struct {
	Class       string // "few", "intermediate", "many"
	Query       string
	Matches     int
	Direct      time.Duration // Glimpse on UNIX
	HAC         time.Duration // smkdir on HAC
	OverheadPct float64
}

// Table4Env is the prepared state for Table 4 runs: one corpus, indexed
// both directly and under HAC.
type Table4Env struct {
	Raw      *vfs.MemFS
	Ix       *index.Index
	HacFS    *hac.FS
	Manifest *corpus.Manifest
}

// NewTable4Env generates and indexes the corpus once; individual query
// classes are then measured against it.
func NewTable4Env(spec corpus.Spec) (*Table4Env, error) {
	raw := vfs.New()
	if err := raw.MkdirAll("/db"); err != nil {
		return nil, err
	}
	man, err := corpus.Generate(raw, "/db", spec)
	if err != nil {
		return nil, err
	}
	ix := index.New()
	if _, _, _, err := ix.SyncTree(raw, "/db"); err != nil {
		return nil, err
	}

	// VerifyMatches puts HAC's engine on the same footing as the direct
	// search: both confirm candidates by scanning file content, like
	// Glimpse's grep pass.
	hacFS := hac.New(vfs.New(), hac.Options{VerifyMatches: true})
	if err := hacFS.MkdirAll("/db"); err != nil {
		return nil, err
	}
	if _, err := corpus.Generate(hacFS, "/db", spec); err != nil {
		return nil, err
	}
	if _, err := hacFS.Reindex("/db"); err != nil {
		return nil, err
	}
	return &Table4Env{Raw: raw, Ix: ix, HacFS: hacFS, Manifest: man}, nil
}

// DirectSearch is "Glimpse on UNIX": evaluate the query on the index,
// then — as Glimpse does to print matching lines — read every matching
// file and scan it for the query terms. It returns the matched paths.
func (e *Table4Env) DirectSearch(q string) ([]string, error) {
	ast, err := query.Parse(q)
	if err != nil {
		return nil, err
	}
	bm, err := query.Eval(ast, indexEnv{e.Ix})
	if err != nil {
		return nil, err
	}
	paths := e.Ix.Paths(bm)
	terms := query.Terms(ast)
	for _, p := range paths {
		data, err := e.Raw.ReadFile(p)
		if err != nil {
			return nil, err
		}
		scanForTerms(data, terms)
	}
	return paths, nil
}

// HACSmkdir is the HAC side of the paper's measurement: create a
// semantic directory for the query. The engine (with VerifyMatches)
// evaluates the query and scans each candidate exactly as DirectSearch
// does; HAC's additional cost is the directory, its structures, and the
// materialized links. It returns the number of links created.
func (e *Table4Env) HACSmkdir(dir, q string) (int, error) {
	if err := e.HacFS.MkSemDir(dir, q); err != nil {
		return 0, err
	}
	entries, err := e.HacFS.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	return len(entries), nil
}

// Cleanup removes a semantic directory created by HACSmkdir so the next
// measurement starts clean.
func (e *Table4Env) Cleanup(dir string) error { return e.HacFS.RemoveAll(dir) }

// scanForTerms is the grep phase: count term occurrences in content.
// The result is returned so the scan cannot be optimized away.
func scanForTerms(data []byte, terms []string) int {
	total := 0
	content := strings.ToLower(string(data))
	for _, t := range terms {
		total += strings.Count(content, t)
	}
	return total
}

// indexEnv evaluates query primitives over a bare index (directory
// references resolve to nothing, as in a standalone search tool).
type indexEnv struct{ ix *index.Index }

func (e indexEnv) Term(w string) (*bitset.Segmented, error)   { return e.ix.Lookup(w), nil }
func (e indexEnv) Prefix(p string) (*bitset.Segmented, error) { return e.ix.LookupPrefix(p), nil }
func (e indexEnv) Fuzzy(w string) (*bitset.Segmented, error)  { return e.ix.LookupFuzzy(w), nil }
func (e indexEnv) Universe() (*bitset.Segmented, error)       { return e.ix.AllDocs(), nil }
func (e indexEnv) DirRef(*query.DirRef) (*bitset.Segmented, error) {
	return e.ix.AllDocs(), nil
}

// Table4 measures the three query classes of the paper: very few
// matches, an intermediate number, and a lot of matches.
func Table4(spec corpus.Spec, reps int) ([]Table4Row, error) {
	if reps <= 0 {
		reps = 3
	}
	env, err := NewTable4Env(spec)
	if err != nil {
		return nil, err
	}
	classes := []struct {
		name  string
		query string
	}{
		{"few", "markerfew"},
		{"intermediate", "markermid"},
		{"many", "markermany"},
	}
	var rows []Table4Row
	seq := 0
	for _, c := range classes {
		row := Table4Row{Class: c.name, Query: c.query}

		// Warm both sides once, unmeasured: first-touch and structure
		// growth would otherwise be charged to whichever side runs
		// first.
		if _, err := env.DirectSearch(c.query); err != nil {
			return nil, err
		}
		warm := fmt.Sprintf("/w%d", seq)
		seq++
		if _, err := env.HACSmkdir(warm, c.query); err != nil {
			return nil, err
		}
		if err := env.Cleanup(warm); err != nil {
			return nil, err
		}

		// Paired, interleaved measurements with the garbage collector
		// quiesced before each timed section; iterate until enough wall
		// clock accumulates for a stable average. reps scales the floor.
		floor := time.Duration(reps) * 10 * time.Millisecond
		var direct, hacTime time.Duration
		iters := 0
		for (direct < floor || hacTime < floor) && iters < 500 {
			runtime.GC()
			start := time.Now()
			paths, err := env.DirectSearch(c.query)
			if err != nil {
				return nil, err
			}
			direct += time.Since(start)
			row.Matches = len(paths)

			dir := fmt.Sprintf("/q%d", seq)
			seq++
			runtime.GC()
			start = time.Now()
			if _, err := env.HACSmkdir(dir, c.query); err != nil {
				return nil, err
			}
			hacTime += time.Since(start)
			if err := env.Cleanup(dir); err != nil {
				return nil, err
			}
			iters++
		}

		row.Direct = direct / time.Duration(iters)
		row.HAC = hacTime / time.Duration(iters)
		row.OverheadPct = Slowdown(row.Direct, row.HAC)
		rows = append(rows, row)
	}
	return rows, nil
}
