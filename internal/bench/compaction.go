package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"hacfs/internal/corpus"
	"hacfs/internal/hac"
	"hacfs/internal/vfs"
)

// ---------------------------------------------------------------------
// Segmented store — Search latency with and without a concurrent merge
// ---------------------------------------------------------------------

// CompactionResult reports Search latency percentiles over the same
// query mix, measured first on an idle volume and then while a
// background loop continuously tombstones documents, seals segments and
// forces merges. The epoch-pinned snapshots are supposed to make the
// merge invisible to readers; P99Ratio is the measured cost of being
// wrong about that.
type CompactionResult struct {
	Files    int
	Samples  int
	Segments int // sealed segments when the idle phase was measured

	IdleP50  time.Duration
	IdleP99  time.Duration
	MergeP50 time.Duration
	MergeP99 time.Duration

	Merges   int     // merges committed during the concurrent phase
	P99Ratio float64 // MergeP99 / IdleP99
}

func percentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// Compaction measures the online-compaction experiment: samples
// searches per phase over the generated corpus, with the merge churn of
// the second phase re-adding a rotating slice of documents (tombstoning
// their old slots) and forcing a full merge each round.
func Compaction(spec corpus.Spec, samples int) (CompactionResult, error) {
	if samples <= 0 {
		// p99 of n samples is the ⌈n/100⌉-th worst; below ~1000 samples it
		// degenerates into a max-of-a-handful and the ratio turns noisy.
		samples = 1500
	}
	mem := vfs.New()
	if err := mem.MkdirAll("/db"); err != nil {
		return CompactionResult{}, err
	}
	man, err := corpus.Generate(mem, "/db", spec)
	if err != nil {
		return CompactionResult{}, err
	}
	hfs := hac.New(mem, hac.Options{})
	// A low seal threshold keeps the segment set non-trivial, so merges
	// have real input to compact.
	hfs.Index().SetSealThreshold(256)
	if _, err := hfs.Reindex("/db"); err != nil {
		return CompactionResult{}, err
	}

	queries := make([]string, 0, len(man.TopicTerm)+1)
	queries = append(queries, man.TopicTerm...)
	queries = append(queries, "markermid")

	// measure times Search calls round-robin over the query mix. It
	// stops once it has `samples` timings AND more() says the phase has
	// seen enough concurrent work (nil more() means stop at samples).
	measure := func(more func() bool) []time.Duration {
		ds := make([]time.Duration, 0, samples)
		for i := 0; len(ds) < samples || (more != nil && more() && i < samples*1000); i++ {
			q := queries[i%len(queries)]
			start := time.Now()
			if _, err := hfs.SearchPaths(q, "/"); err != nil {
				return nil
			}
			ds = append(ds, time.Since(start))
		}
		return ds
	}

	res := CompactionResult{
		Files:    len(man.Files),
		Samples:  samples,
		Segments: hfs.Index().Stats().Segments,
	}

	idle := measure(nil)
	if idle == nil {
		return res, fmt.Errorf("bench: idle search failed")
	}

	// Concurrent phase: churn re-adds a rotating slice of the corpus
	// (tombstoning the previous slots) and forces a merge every round,
	// so Search continuously races commit points.
	startEpoch := hfs.Index().Epoch()
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		ix := hfs.Index()
		round := 0
		for {
			select {
			case <-stop:
				done <- nil
				return
			default:
			}
			for i := 0; i < 64; i++ {
				f := man.Files[(round*64+i)%len(man.Files)]
				data, err := mem.ReadFile(f.Path)
				if err != nil {
					done <- err
					return
				}
				ix.Add(f.Path, data)
				// Pace the updater: on a single core an unbroken
				// tokenize/commit burst would otherwise charge whole
				// scheduler quanta to the searcher we are measuring.
				runtime.Gosched()
			}
			ix.ForceMerge()
			round++
		}
	}()
	// Keep sampling until at least a handful of merges have actually
	// committed under us; a fast query mix can otherwise drain its
	// sample budget before the first merge lands.
	const minMerges = 5
	merged := measure(func() bool {
		return hfs.Index().Epoch()-startEpoch < minMerges
	})
	close(stop)
	if err := <-done; err != nil {
		return res, err
	}
	if merged == nil {
		return res, fmt.Errorf("bench: search under merge failed")
	}

	res.IdleP50 = percentile(idle, 0.50)
	res.IdleP99 = percentile(idle, 0.99)
	res.MergeP50 = percentile(merged, 0.50)
	res.MergeP99 = percentile(merged, 0.99)
	res.Merges = int(hfs.Index().Epoch() - startEpoch)
	if res.IdleP99 > 0 {
		res.P99Ratio = float64(res.MergeP99) / float64(res.IdleP99)
	}
	return res, nil
}
