package bench

import (
	"fmt"
	"runtime"
	"time"

	"hacfs/internal/corpus"
	"hacfs/internal/hac"
	"hacfs/internal/obs"
	"hacfs/internal/vfs"
)

// ---------------------------------------------------------------------
// Instrumentation overhead — enabled-but-unscraped metrics vs disabled
// ---------------------------------------------------------------------

// ObsOverheadResult compares the parallel engine's Reindex and SyncAll
// with observability fully enabled (live registry + tracer, nobody
// scraping) against the same passes with a discard observer (every
// metric handle nil). The substrate is pure in-memory with no emulated
// I/O latency — the worst case for *relative* instrumentation cost,
// since there is no device time to hide behind.
type ObsOverheadResult struct {
	Workers int          `json:"workers"`
	Reps    int          `json:"reps"`
	Files   int          `json:"files"`
	SemDirs int          `json:"sem_dirs"`
	Off     ObsModeTimes `json:"off"`
	On      ObsModeTimes `json:"on"`
	Series  int          `json:"series"` // metric series live on the enabled registry
	Spans   int          `json:"spans"`  // spans started by the enabled tracer
}

// ObsModeTimes holds one observer mode's best-of-reps timings.
type ObsModeTimes struct {
	Reindex time.Duration `json:"reindex_ns"`
	SyncAll time.Duration `json:"syncall_ns"`
}

// ReindexOverheadPct is the enabled-over-disabled Reindex slowdown.
func (r *ObsOverheadResult) ReindexOverheadPct() float64 {
	return Slowdown(r.Off.Reindex, r.On.Reindex)
}

// SyncAllOverheadPct is the enabled-over-disabled SyncAll slowdown.
func (r *ObsOverheadResult) SyncAllOverheadPct() float64 {
	return Slowdown(r.Off.SyncAll, r.On.SyncAll)
}

// ObsOverhead measures the cost of leaving instrumentation on. Each
// repetition builds two fresh HAC layers over one shared corpus — one
// with obs.Discard(), one with a private live observer — and runs a
// cold Reindex plus a full SyncAll over ndirs independent semantic
// directories on each. Modes are interleaved within a repetition so
// drift hits both equally; the minimum per mode is reported.
func ObsOverhead(spec corpus.Spec, ndirs, reps, workers int) (*ObsOverheadResult, error) {
	if reps <= 0 {
		reps = 1
	}
	if ndirs <= 0 {
		ndirs = 12
	}
	if workers <= 0 {
		workers = 4
	}

	mem := vfs.New()
	if err := mem.MkdirAll("/db"); err != nil {
		return nil, err
	}
	man, err := corpus.Generate(mem, "/db", spec)
	if err != nil {
		return nil, err
	}
	queries := parallelQueries(man, ndirs)

	res := &ObsOverheadResult{
		Workers: workers, Reps: reps, Files: spec.Files, SemDirs: ndirs,
	}
	measure := func(o *obs.Observer, into *ObsModeTimes) error {
		runtime.GC()
		hfs := hac.New(mem, hac.Options{VerifyMatches: true, Observer: o})
		start := time.Now()
		if _, err := hfs.Reindex("/db", hac.WithParallelism(workers)); err != nil {
			return err
		}
		if d := time.Since(start); into.Reindex == 0 || d < into.Reindex {
			into.Reindex = d
		}
		for i, q := range queries {
			if err := hfs.SemDir(fmt.Sprintf("/q%02d", i), q); err != nil {
				return fmt.Errorf("semdir %q: %w", q, err)
			}
		}
		runtime.GC()
		start = time.Now()
		if err := hfs.SyncAll(hac.WithParallelism(workers)); err != nil {
			return err
		}
		if d := time.Since(start); into.SyncAll == 0 || d < into.SyncAll {
			into.SyncAll = d
		}
		return nil
	}

	for r := 0; r < reps; r++ {
		if err := measure(obs.Discard(), &res.Off); err != nil {
			return nil, err
		}
		live := obs.NewObserver()
		if err := measure(live, &res.On); err != nil {
			return nil, err
		}
		res.Series = len(live.Registry().Snapshot())
		res.Spans = int(live.Tracer().Total())
	}
	return res, nil
}
