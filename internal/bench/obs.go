package bench

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sort"
	"time"

	"hacfs/internal/corpus"
	"hacfs/internal/hac"
	"hacfs/internal/obs"
	"hacfs/internal/remotefs"
	"hacfs/internal/serve"
	"hacfs/internal/vfs"
)

// ---------------------------------------------------------------------
// Instrumentation overhead — enabled-but-unscraped metrics vs disabled
// ---------------------------------------------------------------------

// ObsOverheadResult compares the parallel engine's Reindex and SyncAll
// with observability fully enabled (live registry + tracer, nobody
// scraping) against the same passes with a discard observer (every
// metric handle nil). The substrate is pure in-memory with no emulated
// I/O latency — the worst case for *relative* instrumentation cost,
// since there is no device time to hide behind.
type ObsOverheadResult struct {
	Workers int          `json:"workers"`
	Reps    int          `json:"reps"`
	Files   int          `json:"files"`
	SemDirs int          `json:"sem_dirs"`
	Off     ObsModeTimes `json:"off"`
	On      ObsModeTimes `json:"on"`
	Series  int          `json:"series"` // metric series live on the enabled registry
	Spans   int          `json:"spans"`  // spans started by the enabled tracer

	// Wire phase: paged searches through a real loopback mux connection
	// (client → serve.Host → engine), observability off vs on — "on"
	// carries the trace header on every frame and spans on both sides.
	// Ops are timed individually, alternating between the two live
	// stacks so both sample the same host-noise spectrum, and each
	// duration is WireOps ops at that variant's 10th-percentile
	// per-op latency (the sustainable floor, noise bursts excluded).
	WireOps int           `json:"wire_ops"`
	WireOff time.Duration `json:"wire_off_ns"` // WireOps searches at the p10 op latency, discard observers
	WireOn  time.Duration `json:"wire_on_ns"`  // same with live observers + end-to-end tracing
}

// ObsModeTimes holds one observer mode's median-of-reps timings.
// Median, not minimum: single-run Reindex/SyncAll times on a busy host
// spread ±30%, and the minimum of a handful of draws from such a
// distribution swings far more between two identical variants than the
// instrumentation cost being measured (it regularly produced "enabled
// is 15% faster than disabled" artifacts). The median of
// order-alternated reps cancels host drift instead of amplifying it.
type ObsModeTimes struct {
	Reindex time.Duration `json:"reindex_ns"`
	SyncAll time.Duration `json:"syncall_ns"`
}

// ReindexOverheadPct is the enabled-over-disabled Reindex slowdown.
func (r *ObsOverheadResult) ReindexOverheadPct() float64 {
	return Slowdown(r.Off.Reindex, r.On.Reindex)
}

// SyncAllOverheadPct is the enabled-over-disabled SyncAll slowdown.
func (r *ObsOverheadResult) SyncAllOverheadPct() float64 {
	return Slowdown(r.Off.SyncAll, r.On.SyncAll)
}

// WireOverheadPct is the traced-over-untraced slowdown of remote
// searches: what end-to-end tracing (frame trace headers, client and
// server spans, slow-op checks) costs per RPC.
func (r *ObsOverheadResult) WireOverheadPct() float64 {
	return Slowdown(r.WireOff, r.WireOn)
}

// ObsOverhead measures the cost of leaving instrumentation on. Each
// repetition builds two fresh HAC layers over one shared corpus — one
// with obs.Discard(), one with a private live observer — and runs a
// cold Reindex plus a full SyncAll over ndirs independent semantic
// directories on each. Modes are interleaved within a repetition so
// drift hits both equally; the median per mode is reported (see
// ObsModeTimes).
func ObsOverhead(spec corpus.Spec, ndirs, reps, workers int) (*ObsOverheadResult, error) {
	if reps <= 0 {
		reps = 1
	}
	if ndirs <= 0 {
		ndirs = 12
	}
	if workers <= 0 {
		workers = 4
	}

	mem := vfs.New()
	if err := mem.MkdirAll("/db"); err != nil {
		return nil, err
	}
	man, err := corpus.Generate(mem, "/db", spec)
	if err != nil {
		return nil, err
	}
	queries := parallelQueries(man, ndirs)

	res := &ObsOverheadResult{
		Workers: workers, Reps: reps, Files: spec.Files, SemDirs: ndirs,
	}
	type phaseTimes struct {
		reindex, syncall []time.Duration
	}
	var offT, onT phaseTimes
	measure := func(o *obs.Observer, into *phaseTimes) error {
		runtime.GC()
		hfs := hac.New(mem, hac.Options{VerifyMatches: true, Observer: o})
		start := time.Now()
		if _, err := hfs.Reindex("/db", hac.WithParallelism(workers)); err != nil {
			return err
		}
		into.reindex = append(into.reindex, time.Since(start))
		// Settle the index outside both timed windows: Reindex leaves
		// merge-policy debt (sealed segments just under the trigger), and
		// whether the next merge fires inside Reindex or inside the first
		// SyncAll commits is threshold luck that shifts milliseconds of
		// merge work between the two phase measurements — far more than
		// the instrumentation cost being measured.
		hfs.Index().ForceMerge()
		for i, q := range queries {
			if err := hfs.SemDir(fmt.Sprintf("/q%02d", i), q); err != nil {
				return fmt.Errorf("semdir %q: %w", q, err)
			}
		}
		runtime.GC()
		start = time.Now()
		if err := hfs.SyncAll(hac.WithParallelism(workers)); err != nil {
			return err
		}
		into.syncall = append(into.syncall, time.Since(start))
		return nil
	}

	// Alternate run order per rep for the same fairness reason as the
	// wire phase below: best-of-reps must not give one variant all the
	// freshest CPU windows.
	for r := 0; r < reps; r++ {
		live := obs.NewObserver()
		runOff := func() error { return measure(obs.Discard(), &offT) }
		runOn := func() error { return measure(live, &onT) }
		first, second := runOff, runOn
		if r%2 == 1 {
			first, second = second, first
		}
		if err := first(); err != nil {
			return nil, err
		}
		if err := second(); err != nil {
			return nil, err
		}
		res.Series = len(live.Registry().Snapshot())
		res.Spans = int(live.Tracer().Total())
	}
	median := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}
	res.Off = ObsModeTimes{Reindex: median(offT.reindex), SyncAll: median(offT.syncall)}
	res.On = ObsModeTimes{Reindex: median(onT.reindex), SyncAll: median(onT.syncall)}

	// Wire phase: the same corpus served over a loopback mux connection,
	// measuring paged searches with observability discarded end to end
	// vs live end to end (the live side stamps a trace header on every
	// request frame and opens client + server + engine spans).
	res.WireOps = 400
	setupWire := func(o *obs.Observer) (run func(n int) error, cleanup func(), err error) {
		hfs := hac.New(mem, hac.Options{Observer: o})
		if _, err := hfs.Reindex("/db", hac.WithParallelism(workers)); err != nil {
			return nil, nil, err
		}
		host := serve.NewHost(workers, o)
		if err := host.AddTenant("t0", hfs, serve.Quota{}, ""); err != nil {
			return nil, nil, err
		}
		host.SetDefault("t0")
		srv := remotefs.NewHostServer(host, nil)
		srv.SetObserver(o)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		go srv.Serve(l)
		mc := remotefs.DialMux(l.Addr().String())
		mc.SetObserver(o)
		q := queries[0]
		run = func(n int) error {
			for i := 0; i < n; i++ {
				if _, _, err := mc.SearchPage(context.Background(), q, "/", 0, 64); err != nil {
					return err
				}
			}
			return nil
		}
		cleanup = func() { mc.Close(); srv.Close() }
		return run, cleanup, nil
	}
	// Both stacks stay up for the whole phase and single timed ops
	// alternate between them, order flipping every round: host load is
	// bursty enough that batches run back to back see systematically
	// different CPU windows and fabricate (or hide) overhead that
	// per-op profiling cannot find. Pairing at op granularity makes
	// both variants sample the same noise spectrum, and the reported
	// durations are WireOps ops at each variant's 10th-percentile
	// latency — the sustainable floor with noise bursts excluded, which
	// is the statistic that actually isolates the instrumentation cost.
	runOff, cleanOff, err := setupWire(obs.Discard())
	if err != nil {
		return nil, err
	}
	defer cleanOff()
	runOn, cleanOn, err := setupWire(obs.NewObserver())
	if err != nil {
		return nil, err
	}
	defer cleanOn()
	if err := runOff(16); err != nil { // warm connections and caches
		return nil, err
	}
	if err := runOn(16); err != nil {
		return nil, err
	}
	samples := res.WireOps * reps
	offNS := make([]time.Duration, 0, samples)
	onNS := make([]time.Duration, 0, samples)
	runtime.GC()
	for i := 0; i < samples; i++ {
		first, second := runOff, runOn
		firstInto, secondInto := &offNS, &onNS
		if i%2 == 1 {
			first, second = second, first
			firstInto, secondInto = secondInto, firstInto
		}
		start := time.Now()
		if err := first(1); err != nil {
			return nil, err
		}
		*firstInto = append(*firstInto, time.Since(start))
		start = time.Now()
		if err := second(1); err != nil {
			return nil, err
		}
		*secondInto = append(*secondInto, time.Since(start))
	}
	p10 := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/10]
	}
	res.WireOff = p10(offNS) * time.Duration(res.WireOps)
	res.WireOn = p10(onNS) * time.Duration(res.WireOps)
	return res, nil
}
