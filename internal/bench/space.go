package bench

import (
	"fmt"

	"hacfs/internal/andrew"
	"hacfs/internal/hac"
	"hacfs/internal/vfs"
)

// SpaceResult reproduces the in-text space measurements of §4:
// metadata footprint of the same tree under raw UNIX vs under HAC
// (222 KB vs 210 KB, ~5%, in the paper), the per-process shared-memory
// footprint (~16 KB), and the per-semantic-directory result bitmap
// (N/8 bytes, ~2 KB at N = 17000).
type SpaceResult struct {
	UnixMetaBytes int
	HACMetaBytes  int // substrate metadata + HAC structures

	SharedMemoryBytes int

	IndexedFiles       int
	BitmapBytesPerDir  int
	SemanticDirs       int
	MetaOverheadPct    float64
	PaperBitmapFormula int // N/8, for the report
}

// Space builds an Andrew tree on both systems, adds a few semantic
// directories on the HAC side, and measures footprints.
func Space(spec andrew.Spec, semDirs int) (SpaceResult, error) {
	var res SpaceResult
	if spec.Dirs <= 0 {
		spec.Dirs = 20 // match andrew.Spec's default
	}

	raw := vfs.New()
	if err := andrew.GenerateSource(raw, "/src", spec); err != nil {
		return res, err
	}
	res.UnixMetaBytes = raw.MetadataBytes()

	under := vfs.New()
	fs := hac.New(under, hac.Options{})
	if err := andrew.GenerateSource(fs, "/src", spec); err != nil {
		return res, err
	}
	if _, err := fs.Reindex("/"); err != nil {
		return res, err
	}
	for i := 0; i < semDirs; i++ {
		// Selective queries (one file each) so the measurement captures
		// HAC's structures, not hundreds of materialized symlink nodes.
		q := fmt.Sprintf("au%dx0", i%spec.Dirs)
		if err := fs.MkSemDir(fmt.Sprintf("/sel%d", i), q); err != nil {
			return res, err
		}
	}
	// Exercise the attribute cache and descriptor table so the
	// shared-memory figure reflects steady-state use.
	files, err := vfs.Files(fs, "/src")
	if err != nil {
		return res, err
	}
	var open []vfs.File
	for i, p := range files {
		if _, err := fs.Stat(p); err != nil {
			return res, err
		}
		if i < 16 {
			f, err := fs.Open(p)
			if err != nil {
				return res, err
			}
			open = append(open, f)
		}
	}
	res.SharedMemoryBytes = fs.SharedMemoryBytes()
	for _, f := range open {
		f.Close()
	}

	res.HACMetaBytes = under.MetadataBytes() + fs.MetadataBytes()
	res.IndexedFiles = fs.Index().NumDocs()
	res.SemanticDirs = semDirs
	res.BitmapBytesPerDir = (fs.Index().Universe() + 7) / 8
	res.PaperBitmapFormula = res.IndexedFiles / 8
	if res.UnixMetaBytes > 0 {
		res.MetaOverheadPct = 100 * float64(res.HACMetaBytes-res.UnixMetaBytes) / float64(res.UnixMetaBytes)
	}
	return res, nil
}
