package bench

import (
	"fmt"
	"runtime"
	"time"

	"hacfs/internal/andrew"
	"hacfs/internal/bitset"
	"hacfs/internal/corpus"
	"hacfs/internal/hac"
	"hacfs/internal/vfs"
)

// ---------------------------------------------------------------------
// Ablation A1 — consistency propagation order
//
// The paper re-evaluates only the directories that transitively depend
// on a change, in topological order (§2.3, §2.5). The obvious
// alternative is to re-evaluate every semantic directory on every
// change. This ablation builds a volume with one deep dependent chain
// plus many unrelated semantic directories and measures both policies
// after an edit at the chain's head.
// ---------------------------------------------------------------------

// A1Result compares targeted and full re-evaluation.
type A1Result struct {
	ChainDepth    time.Duration `json:"-"` // unused; kept simple below
	Targeted      time.Duration
	Full          time.Duration
	SemanticDirs  int
	AffectedDirs  int
	SpeedupFactor float64
}

// AblationOrder measures targeted (dependency-driven) versus full
// re-evaluation. chain is the depth of the dependent chain; unrelated
// is the number of independent semantic directories.
func AblationOrder(files, chain, unrelated int) (A1Result, error) {
	var res A1Result
	fs := hac.New(vfs.New(), hac.Options{})
	if err := fs.MkdirAll("/db"); err != nil {
		return res, err
	}
	if _, err := corpus.Generate(fs, "/db", corpus.Spec{Files: files, Seed: 3}); err != nil {
		return res, err
	}
	if _, err := fs.Reindex("/"); err != nil {
		return res, err
	}

	// The dependent chain: /chain0 ← /chain1 ← ... (query references).
	if err := fs.MkSemDir("/chain0", "markermany"); err != nil {
		return res, err
	}
	for i := 1; i < chain; i++ {
		q := fmt.Sprintf("dir:/chain%d AND markermany", i-1)
		if err := fs.MkSemDir(fmt.Sprintf("/chain%d", i), q); err != nil {
			return res, err
		}
	}
	// Unrelated semantic directories.
	for i := 0; i < unrelated; i++ {
		if err := fs.MkSemDir(fmt.Sprintf("/other%d", i), "markermid"); err != nil {
			return res, err
		}
	}
	res.SemanticDirs = chain + unrelated
	res.AffectedDirs = chain

	// Targeted: the paper's policy — Sync from the edited directory.
	start := time.Now()
	if err := fs.Sync("/chain0"); err != nil {
		return res, err
	}
	res.Targeted = time.Since(start)

	// Full: re-evaluate everything.
	start = time.Now()
	if err := fs.SyncAll(); err != nil {
		return res, err
	}
	res.Full = time.Since(start)

	if res.Targeted > 0 {
		res.SpeedupFactor = float64(res.Full) / float64(res.Targeted)
	}
	return res, nil
}

// ---------------------------------------------------------------------
// Ablation A2 — bitmap vs sparse result representation
//
// The paper stores per-directory query results as N/8-byte bitmaps and
// names sparse sets as future work. This ablation measures both
// representations across match densities.
// ---------------------------------------------------------------------

// A2Row is one density point.
type A2Row struct {
	Universe    int
	Matches     int
	BitmapBytes int
	SparseBytes int
	// Time to intersect the result with a same-density scope set, the
	// hot operation in scope consistency.
	BitmapIntersect time.Duration
	SparseIntersect time.Duration
}

// AblationSets measures representation cost at several densities.
func AblationSets(universe int, densities []float64) []A2Row {
	var rows []A2Row
	for _, d := range densities {
		matches := int(d * float64(universe))
		bmA, bmB := bitset.NewBitmap(universe), bitset.NewBitmap(universe)
		spA, spB := bitset.NewSparse(), bitset.NewSparse()
		for i := 0; i < matches; i++ {
			id := uint32(i * universe / max(matches, 1))
			bmA.Add(id)
			spA.Add(id)
			id2 := uint32((i*universe/max(matches, 1) + 7) % universe)
			bmB.Add(id2)
			spB.Add(id2)
		}
		row := A2Row{
			Universe:    universe,
			Matches:     matches,
			BitmapBytes: bmA.SizeBytes(),
			SparseBytes: spA.SizeBytes(),
		}

		const reps = 100
		start := time.Now()
		for r := 0; r < reps; r++ {
			c := bmA.Clone()
			c.And(bmB)
		}
		row.BitmapIntersect = time.Since(start) / reps

		start = time.Now()
		for r := 0; r < reps; r++ {
			out := bitset.NewSparse()
			spA.Range(func(id uint32) bool {
				if spB.Contains(id) {
					out.Add(id)
				}
				return true
			})
		}
		row.SparseIntersect = time.Since(start) / reps
		rows = append(rows, row)
	}
	return rows
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------
// Ablation A4 — the attribute cache
//
// §4 credits the shared-memory attribute cache with speeding up the
// Scan and Read phases ("this helps to speed up Scan and Read
// operations on that file"). This ablation runs the Andrew benchmark
// on HAC with the cache effectively disabled (capacity 1) and with the
// default capacity, and reports the Scan-phase times.
// ---------------------------------------------------------------------

// A4Result compares Andrew Scan/Read with and without the attribute
// cache.
type A4Result struct {
	WithCache    time.Duration // Scan phase
	WithoutCache time.Duration
	ReadWith     time.Duration
	ReadWithout  time.Duration
	TotalWith    time.Duration
	TotalWithout time.Duration
}

// AblationAttrCache measures the attribute cache's contribution. reps
// runs are averaged.
func AblationAttrCache(spec andrew.Spec, reps int) (A4Result, error) {
	var res A4Result
	if reps <= 0 {
		reps = 3
	}
	one := func(opts hac.Options) (andrew.Result, error) {
		runtime.GC()
		fs := hac.New(vfs.New(), opts)
		if err := andrew.GenerateSource(fs, "/src", spec); err != nil {
			return andrew.Result{}, err
		}
		return andrew.Run(fs, "/src", "/dst", spec)
	}
	// One unmeasured warmup of each configuration, then interleaved
	// measured runs so allocator and GC state cannot favor either side.
	if _, err := one(hac.Options{}); err != nil {
		return res, err
	}
	if _, err := one(hac.Options{AttrCacheSize: 1}); err != nil {
		return res, err
	}
	for r := 0; r < reps; r++ {
		a, err := one(hac.Options{})
		if err != nil {
			return res, err
		}
		res.WithCache += a.Scan
		res.ReadWith += a.Read
		res.TotalWith += a.Total()

		b, err := one(hac.Options{AttrCacheSize: 1})
		if err != nil {
			return res, err
		}
		res.WithoutCache += b.Scan
		res.ReadWithout += b.Read
		res.TotalWithout += b.Total()
	}
	n := time.Duration(reps)
	res.WithCache /= n
	res.ReadWith /= n
	res.TotalWith /= n
	res.WithoutCache /= n
	res.ReadWithout /= n
	res.TotalWithout /= n
	return res, nil
}

// ---------------------------------------------------------------------
// Ablation A3 — scope refinement direction
//
// §2.3 argues for child-refines-parent over the rejected
// parent-unions-children design, because the rejected design cannot
// hold information that defies strict hierarchy: adding a link to a
// child forcibly changes the parent. This ablation counts, under a
// random classification workload, how many parent link-sets each policy
// disturbs when users edit children.
// ---------------------------------------------------------------------

// A3Result compares the two scope-direction designs.
type A3Result struct {
	ChildEdits             int
	HACParentChanges       int // always 0: child edits never leak upward
	RejectedParentChanges  int // every out-of-scope child addition leaks
	OutOfHierarchyAccepted int // links HAC accepted that defy the hierarchy
}

// AblationScopeDirection simulates `edits` child-link additions, half
// of which point outside the parent's scope, and counts how each design
// reacts. HAC is measured on a real volume; the rejected design is
// modeled (its parent set must absorb every child addition).
func AblationScopeDirection(edits int) (A3Result, error) {
	var res A3Result
	fs := hac.New(vfs.New(), hac.Options{})
	files := map[string]string{
		"/in/a.txt":  "inside apple",
		"/in/b.txt":  "inside banana",
		"/out/c.txt": "outside cherry",
		"/out/d.txt": "outside date",
	}
	for p, content := range files {
		if err := fs.MkdirAll(vfs.Dir(p)); err != nil {
			return res, err
		}
		if err := fs.WriteFile(p, []byte(content)); err != nil {
			return res, err
		}
	}
	if _, err := fs.Reindex("/"); err != nil {
		return res, err
	}
	if err := fs.MkSemDir("/parent", "inside"); err != nil {
		return res, err
	}
	if err := fs.MkSemDir("/parent/child", "inside OR outside"); err != nil {
		return res, err
	}

	outTargets := []string{"/out/c.txt", "/out/d.txt"}
	for i := 0; i < edits; i++ {
		target := outTargets[i%len(outTargets)]
		before, err := fs.LinkTargets("/parent")
		if err != nil {
			return res, err
		}
		name := fmt.Sprintf("/parent/child/ln%d", i)
		if err := fs.Symlink(target, name); err != nil {
			return res, err
		}
		after, err := fs.LinkTargets("/parent")
		if err != nil {
			return res, err
		}
		res.ChildEdits++
		if len(after) != len(before) {
			res.HACParentChanges++
		}
		res.OutOfHierarchyAccepted++
		// The rejected design: parent = union of children's scopes, so
		// this out-of-scope addition would have changed the parent.
		res.RejectedParentChanges++
		if err := fs.Remove(name); err != nil {
			return res, err
		}
	}
	return res, nil
}
