package bench

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"time"

	"hacfs/internal/hac"
	"hacfs/internal/remotefs"
	"hacfs/internal/vfs"
	"hacfs/internal/vfs/cas"
)

// ---------------------------------------------------------------------
// Content-addressed substrate — snapshot/clone cost, save cost vs
// dirty fraction, manifest-diff replication vs full-content sync
// ---------------------------------------------------------------------

// CASSpec configures the content-addressed substrate experiment.
type CASSpec struct {
	Sizes        []int // volume sizes (files) for the clone-vs-save sweep
	FileSize     int   // bytes per file in the sweep volumes
	SaveFiles    int   // volume size for the dirty-fraction save sweep
	SyncFiles    int   // files in the replication volume
	SyncFileSize int   // bytes per file in the replication volume
	DirtyPcts    []int // dirty fractions (percent) for the save and sync sweeps
	Reps         int   // repetitions per timed measurement
	Seed         int64
}

// CASSizeRow is one volume size in the clone-vs-save sweep: the median
// latency of an O(manifest) Snapshot/Clone against a full SaveVolume of
// the same volume.
type CASSizeRow struct {
	Files      int
	Bytes      int64 // total content bytes
	Snapshot   time.Duration
	Clone      time.Duration
	FullSave   time.Duration
	ImageBytes int64 // v4 image size (manifest + distinct blobs + index)
}

// CASSaveRow is one dirty fraction in the save sweep: the cost of
// SaveVolume after rewriting that share of the volume's files.
type CASSaveRow struct {
	DirtyPct   int
	Rewritten  int
	Save       time.Duration
	ImageBytes int64
}

// CASSyncRow is one dirty fraction in the replication sweep: the bytes
// a manifest-diff re-sync ships after that share of the source changed,
// as a fraction of what a full-content sync ships.
type CASSyncRow struct {
	DirtyPct      int
	Rewritten     int
	ManifestBytes int64
	BlobsFetched  int
	BlobBytes     int64
	WireBytes     int64   // manifest + blob bytes actually shipped
	PctOfFull     float64 // WireBytes as a percentage of FullSyncBytes
}

// CASResult reports the content-addressed substrate experiment.
type CASResult struct {
	FileSize       int
	Sizes          []CASSizeRow
	SnapshotGrowth float64 // Snapshot latency, largest volume / smallest
	CloneGrowth    float64 // Clone latency, largest volume / smallest (target < 2x)
	SaveGrowth     float64 // FullSave latency, largest / smallest (target >= 10x)

	SaveFiles int
	SaveDirty []CASSaveRow

	SyncFiles     int
	SyncFileSize  int
	FullSyncBytes int64 // content bytes a full (non-CAS) mirror ships
	ColdSyncBytes int64 // first manifest-diff sync into an empty store
	SyncDirty     []CASSyncRow
}

// countWriter counts bytes written and discards them.
type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// casVolume is a content-addressed hac volume plus the bookkeeping the
// sweeps need to dirty it deterministically.
type casVolume struct {
	fs    *hac.FS
	cfs   *cas.FS
	paths []string
	rng   *rand.Rand
	size  int
	gen   int
}

// buildCASVolume populates a cas-backed volume with files of unique
// pseudo-random content, 100 per directory.
func buildCASVolume(files, size int, seed int64) (*casVolume, error) {
	cfs := cas.New(nil)
	fs := hac.New(cfs, hac.Options{})
	v := &casVolume{fs: fs, cfs: cfs, rng: rand.New(rand.NewSource(seed)), size: size}
	for i := 0; i < files; i++ {
		if i%100 == 0 {
			if err := fs.MkdirAll(fmt.Sprintf("/d%04d", i/100)); err != nil {
				return nil, err
			}
		}
		p := fmt.Sprintf("/d%04d/f%06d.txt", i/100, i)
		if err := fs.WriteFile(p, v.content()); err != nil {
			return nil, err
		}
		v.paths = append(v.paths, p)
	}
	return v, nil
}

// content returns a fresh never-before-seen blob of the volume's file
// size: a generation header (so no two calls collide) over random fill.
func (v *casVolume) content() []byte {
	v.gen++
	buf := make([]byte, v.size)
	v.rng.Read(buf)
	copy(buf, fmt.Sprintf("gen %d ", v.gen))
	return buf
}

// dirty rewrites pct percent of the volume's files (at least one) with
// fresh content and returns how many it touched.
func (v *casVolume) dirty(pct int) (int, error) {
	n := len(v.paths) * pct / 100
	if n < 1 {
		n = 1
	}
	// Spread the rewrites across the tree rather than clustering at the
	// front, so per-directory locality doesn't flatter the measurement.
	step := len(v.paths) / n
	if step < 1 {
		step = 1
	}
	count := 0
	for i := 0; i < len(v.paths) && count < n; i += step {
		if err := v.fs.WriteFile(v.paths[i], v.content()); err != nil {
			return count, err
		}
		count++
	}
	return count, nil
}

// timeMedian runs fn reps times and returns the median wall time.
func timeMedian(reps int, fn func() error) (time.Duration, error) {
	return timeMedianN(reps, 1, fn)
}

// timeMedianN takes reps samples of iters back-to-back runs each and
// returns the median per-run time. Batching keeps sub-microsecond ops —
// Snapshot and Clone are pointer swaps — above timer resolution.
func timeMedianN(reps, iters int, fn func() error) (time.Duration, error) {
	if reps < 1 {
		reps = 1
	}
	samples := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		for j := 0; j < iters; j++ {
			if err := fn(); err != nil {
				return 0, err
			}
		}
		samples = append(samples, time.Since(start)/time.Duration(iters))
	}
	return percentile(samples, 0.5), nil
}

// CAS measures the content-addressed substrate: Snapshot/Clone latency
// against full SaveVolume across volume sizes (sealing shares the tree,
// so it should stay flat while saving grows with the volume), save cost
// as a function of how much of the volume is dirty, and the bytes a
// manifest-diff re-sync ships versus a full-content mirror.
func CAS(spec CASSpec) (CASResult, error) {
	if spec.FileSize <= 0 {
		spec.FileSize = 256
	}
	if spec.Reps < 1 {
		spec.Reps = 3
	}
	if len(spec.DirtyPcts) == 0 {
		spec.DirtyPcts = []int{1, 10, 50}
	}
	res := CASResult{
		FileSize:     spec.FileSize,
		SaveFiles:    spec.SaveFiles,
		SyncFiles:    spec.SyncFiles,
		SyncFileSize: spec.SyncFileSize,
	}

	// Part 1: Snapshot/Clone vs full SaveVolume across volume sizes.
	for _, files := range spec.Sizes {
		v, err := buildCASVolume(files, spec.FileSize, spec.Seed)
		if err != nil {
			return res, err
		}
		row := CASSizeRow{Files: files, Bytes: int64(files) * int64(spec.FileSize)}
		if row.Snapshot, err = timeMedianN(spec.Reps, 256, func() error {
			v.cfs.Snapshot()
			return nil
		}); err != nil {
			return res, err
		}
		if row.Clone, err = timeMedianN(spec.Reps, 256, func() error {
			v.cfs.Clone()
			return nil
		}); err != nil {
			return res, err
		}
		if row.FullSave, err = timeMedian(spec.Reps, func() error {
			var cw countWriter
			if err := v.fs.SaveVolume(&cw); err != nil {
				return err
			}
			row.ImageBytes = cw.n
			return nil
		}); err != nil {
			return res, err
		}
		res.Sizes = append(res.Sizes, row)
	}
	if n := len(res.Sizes); n >= 2 {
		first, last := res.Sizes[0], res.Sizes[n-1]
		res.SnapshotGrowth = ratio(last.Snapshot, first.Snapshot)
		res.CloneGrowth = ratio(last.Clone, first.Clone)
		res.SaveGrowth = ratio(last.FullSave, first.FullSave)
	}

	// Part 2: save cost vs dirty fraction. The first save pays for the
	// whole volume; subsequent saves re-hash nothing clean, so their cost
	// tracks the image write, not the rewrite history.
	if spec.SaveFiles > 0 {
		v, err := buildCASVolume(spec.SaveFiles, spec.FileSize, spec.Seed+1)
		if err != nil {
			return res, err
		}
		for _, pct := range append([]int{0}, spec.DirtyPcts...) {
			row := CASSaveRow{DirtyPct: pct}
			if pct > 0 {
				if row.Rewritten, err = v.dirty(pct); err != nil {
					return res, err
				}
			}
			if row.Save, err = timeMedian(spec.Reps, func() error {
				var cw countWriter
				if err := v.fs.SaveVolume(&cw); err != nil {
					return err
				}
				row.ImageBytes = cw.n
				return nil
			}); err != nil {
				return res, err
			}
			res.SaveDirty = append(res.SaveDirty, row)
		}
	}

	// Part 3: replication. Serve the source volume over the remote
	// protocol, mirror it, then dirty increasing fractions and compare
	// what a manifest-diff re-sync ships against a full-content mirror.
	if spec.SyncFiles > 0 {
		if err := casSyncSweep(spec, &res); err != nil {
			return res, err
		}
	}
	return res, nil
}

func casSyncSweep(spec CASSpec, res *CASResult) error {
	src, err := buildCASVolume(spec.SyncFiles, spec.SyncFileSize, spec.Seed+2)
	if err != nil {
		return err
	}
	srv := remotefs.NewServer(src.fs, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(l)
	defer srv.Close()
	client := remotefs.Dial(l.Addr().String())
	defer client.Close()
	ctx := context.Background()

	// A plain in-memory destination cannot dedup, so this measures what
	// replication cost before the substrate: every file's content.
	full, err := remotefs.MirrorVolume(ctx, client, vfs.New())
	if err != nil {
		return fmt.Errorf("full mirror: %w", err)
	}
	res.FullSyncBytes = full.ContentBytes

	dst := cas.New(nil)
	cold, err := remotefs.MirrorVolume(ctx, client, dst)
	if err != nil {
		return fmt.Errorf("cold sync: %w", err)
	}
	res.ColdSyncBytes = cold.ContentBytes

	for _, pct := range spec.DirtyPcts {
		row := CASSyncRow{DirtyPct: pct}
		if row.Rewritten, err = src.dirty(pct); err != nil {
			return err
		}
		stats, err := remotefs.MirrorVolume(ctx, client, dst)
		if err != nil {
			return fmt.Errorf("re-sync at %d%% dirty: %w", pct, err)
		}
		if stats.Mode != "manifest-diff" {
			return fmt.Errorf("re-sync at %d%% dirty ran in %q mode", pct, stats.Mode)
		}
		row.ManifestBytes = stats.ManifestBytes
		row.BlobsFetched = stats.BlobsFetched
		row.BlobBytes = stats.BlobBytes
		row.WireBytes = stats.ManifestBytes + stats.BlobBytes
		if res.FullSyncBytes > 0 {
			row.PctOfFull = 100 * float64(row.WireBytes) / float64(res.FullSyncBytes)
		}
		res.SyncDirty = append(res.SyncDirty, row)
	}
	return nil
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}
