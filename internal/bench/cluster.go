package bench

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"hacfs/internal/cluster"
	"hacfs/internal/obs"
	"hacfs/internal/remote"
	"hacfs/internal/vfs"
)

// ---------------------------------------------------------------------
// Sharded cluster — scatter-gather search scaling and replica failover
// ---------------------------------------------------------------------

// ClusterSpec configures the cluster scaling experiment: for each shard
// count it boots a fleet of shard servers behind a haccluster-style
// coordinator, drives closed-loop search clients against the
// coordinator's public wire protocol, and measures throughput. With
// Addr set it instead drives an already-running coordinator (the CI
// smoke uses this against real hacindexd processes).
type ClusterSpec struct {
	ShardCounts []int         // shard counts to sweep (default 1,2,4,8)
	Replicas    int           // replicas per shard (default 1)
	Clients     int           // closed-loop client goroutines (default 24)
	Duration    time.Duration // measured window per shard count (default 2s)
	Trees       int           // routed scope subtrees /t0../tN-1 (default 8)
	DocsPerTree int           // documents per subtree (default 40)
	// ScanDelay is the emulated per-matched-document scan latency a
	// shard pays, serialized per replica. In memory every shard count
	// finishes at CPU speed and the sweep flatlines; the serial delay
	// models the disk-backed postings scan that sharding actually
	// divides, the same way the I/O benchmarks emulate device latency.
	ScanDelay   time.Duration
	GlobalPct   int  // percent of queries scattered cluster-wide (default 10)
	KillReplica bool // kill one replica mid-run at the largest shard count
	Query       string
	Seed        int64
	Addr        string   // external coordinator address; "" = in-process fleets
	Scopes      []string // scoped-query subtrees (default /t0../tTrees-1)
}

func (s ClusterSpec) withDefaults() ClusterSpec {
	if len(s.ShardCounts) == 0 {
		s.ShardCounts = []int{1, 2, 4, 8}
	}
	if s.Replicas <= 0 {
		s.Replicas = 1
	}
	if s.Clients <= 0 {
		s.Clients = 24
	}
	if s.Duration <= 0 {
		s.Duration = 2 * time.Second
	}
	if s.Trees <= 0 {
		s.Trees = 8
	}
	if s.DocsPerTree <= 0 {
		s.DocsPerTree = 40
	}
	if s.ScanDelay == 0 {
		s.ScanDelay = 100 * time.Microsecond
	}
	if s.ScanDelay < 0 {
		s.ScanDelay = 0
	}
	if s.GlobalPct < 0 || s.GlobalPct > 100 {
		s.GlobalPct = 10
	}
	if s.Query == "" {
		s.Query = "markermid"
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if len(s.Scopes) == 0 {
		for t := 0; t < s.Trees; t++ {
			s.Scopes = append(s.Scopes, fmt.Sprintf("/t%d", t))
		}
	}
	return s
}

// Validate rejects nonsensical combinations up front — a bad spec must
// fail with an error, never hang a half-booted fleet.
func (s ClusterSpec) Validate() error {
	if len(s.ShardCounts) == 0 {
		return fmt.Errorf("cluster: no shard counts given")
	}
	seen := map[int]bool{}
	for _, n := range s.ShardCounts {
		if n <= 0 {
			return fmt.Errorf("cluster: shard count %d is not positive", n)
		}
		if seen[n] {
			return fmt.Errorf("cluster: duplicate shard count %d", n)
		}
		seen[n] = true
		if s.Addr == "" && n > s.Trees {
			return fmt.Errorf("cluster: %d shards but only %d routed subtrees — some shards would own nothing", n, s.Trees)
		}
	}
	if s.Replicas < 1 {
		return fmt.Errorf("cluster: replicas must be at least 1, got %d", s.Replicas)
	}
	if s.KillReplica && s.Replicas < 2 {
		return fmt.Errorf("cluster: -cluster-kill needs at least 2 replicas per shard, got %d", s.Replicas)
	}
	if s.KillReplica && s.Addr != "" {
		return fmt.Errorf("cluster: -cluster-kill only works on the in-process fleet, not an external coordinator")
	}
	return nil
}

// ClusterRunStats is one shard count's measurement.
type ClusterRunStats struct {
	Shards     int
	Replicas   int
	Ops        int64
	Errors     int64 // client-visible search failures
	Failovers  int64 // replica failovers absorbed by the coordinator
	Throughput float64
	P50        time.Duration
	P99        time.Duration
	ScatterP50 time.Duration // cluster-wide (unscoped) queries only
	ScatterP99 time.Duration
	Killed     bool // a replica was killed mid-run
}

// ClusterResult is the whole experiment, written to BENCH_cluster.json.
type ClusterResult struct {
	Trees       int
	DocsPerTree int
	Clients     int
	Replicas    int
	Duration    time.Duration
	ScanDelay   time.Duration
	GlobalPct   int
	Query       string
	Addr        string // non-empty when driving an external coordinator

	Runs []ClusterRunStats

	// Speedup4x is Search throughput at 4 shards over 1 shard — the
	// acceptance bar is >= 3x. SpeedupMax is the largest swept shard
	// count over 1 shard.
	Speedup4x  float64
	SpeedupMax float64
}

// ClusterLoad runs the experiment.
func ClusterLoad(spec ClusterSpec) (*ClusterResult, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	res := &ClusterResult{
		Trees:       spec.Trees,
		DocsPerTree: spec.DocsPerTree,
		Clients:     spec.Clients,
		Replicas:    spec.Replicas,
		Duration:    spec.Duration,
		ScanDelay:   spec.ScanDelay,
		GlobalPct:   spec.GlobalPct,
		Query:       spec.Query,
		Addr:        spec.Addr,
	}

	if spec.Addr != "" {
		st, err := clusterRun(spec, spec.Addr, nil, nil)
		if err != nil {
			return nil, err
		}
		res.Runs = append(res.Runs, *st)
		return res, nil
	}

	maxN := 0
	for _, n := range spec.ShardCounts {
		if n > maxN {
			maxN = n
		}
	}
	for _, n := range spec.ShardCounts {
		fleet, err := bootCluster(spec, n)
		if err != nil {
			return nil, fmt.Errorf("booting %d-shard fleet: %w", n, err)
		}
		var kill func()
		if spec.KillReplica && n == maxN {
			kill = fleet.killOneReplica
		}
		st, err := clusterRun(spec, fleet.addr, fleet.obsv, kill)
		fleet.close()
		if err != nil {
			return nil, err
		}
		st.Shards = n
		res.Runs = append(res.Runs, *st)
	}

	base := 0.0
	for _, r := range res.Runs {
		if r.Shards == 1 {
			base = r.Throughput
		}
	}
	if base > 0 {
		for _, r := range res.Runs {
			if r.Shards == 4 {
				res.Speedup4x = r.Throughput / base
			}
			if r.Shards == maxN && maxN > 1 {
				res.SpeedupMax = r.Throughput / base
			}
		}
	}
	return res, nil
}

// delayBackend wraps a shard's index backend with the emulated
// postings-scan latency: ScanDelay per matched document, held under a
// per-replica mutex because the modeled resource (one disk arm, one
// scan thread) is serial. This is what makes the sweep honest — the
// aggregate scan capacity is exactly what adding shards multiplies.
type delayBackend struct {
	*remote.IndexBackend
	mu     sync.Mutex
	perDoc time.Duration
}

func (d *delayBackend) SearchPageUnder(ctx context.Context, q, scope string, after uint64, limit int) ([]string, uint64, uint64, error) {
	paths, next, epoch, err := d.IndexBackend.SearchPageUnder(ctx, q, scope, after, limit)
	if err == nil && d.perDoc > 0 && len(paths) > 0 {
		d.mu.Lock()
		time.Sleep(time.Duration(len(paths)) * d.perDoc)
		d.mu.Unlock()
	}
	return paths, next, epoch, err
}

// clusterFleet is one booted in-process cluster: shard replica servers,
// the coordinator, and the coordinator's public TCP endpoint.
type clusterFleet struct {
	addr   string
	obsv   *obs.Observer
	coord  *cluster.Coordinator
	cSrv   *remote.Server
	shards [][]*remote.Server // [shard][replica]
}

// bootCluster builds an n-shard fleet: subtree /t{i} is routed to shard
// i%n, every replica of a shard indexes an identical copy of its
// subtrees, and a coordinator serves the merged cluster over TCP.
func bootCluster(spec ClusterSpec, n int) (f *clusterFleet, err error) {
	f = &clusterFleet{obsv: obs.NewObserver(), shards: make([][]*remote.Server, n)}
	defer func() {
		if err != nil {
			f.close()
		}
	}()

	var mapText strings.Builder
	for id := 0; id < n; id++ {
		var addrs []string
		for r := 0; r < spec.Replicas; r++ {
			fsys, terr := clusterTree(spec, id, n)
			if terr != nil {
				return nil, terr
			}
			backend, berr := remote.NewIndexBackend(fsys, "/")
			if berr != nil {
				return nil, berr
			}
			srv := remote.NewServer(&delayBackend{IndexBackend: backend, perDoc: spec.ScanDelay}, nil)
			srv.SetObserver(obs.Discard())
			l, lerr := net.Listen("tcp", "127.0.0.1:0")
			if lerr != nil {
				return nil, lerr
			}
			go srv.Serve(l)
			addrs = append(addrs, l.Addr().String())
			f.shards[id] = append(f.shards[id], srv)
		}
		fmt.Fprintf(&mapText, "shard %d %s\n", id, strings.Join(addrs, ","))
	}
	for t := 0; t < spec.Trees; t++ {
		fmt.Fprintf(&mapText, "route /t%d %d\n", t, t%n)
	}

	m, err := cluster.ParseMap(mapText.String())
	if err != nil {
		return nil, err
	}
	f.coord = cluster.New(m, cluster.Options{
		Name:     "bench",
		Timeout:  2 * time.Second,
		Cooldown: 100 * time.Millisecond,
		PageSize: 256,
		Observer: f.obsv,
	})
	f.cSrv = remote.NewServer(f.coord, nil)
	f.cSrv.SetObserver(f.obsv)
	cl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go f.cSrv.Serve(cl)
	f.addr = cl.Addr().String()
	return f, nil
}

// clusterTree builds the document tree one replica of shard id serves:
// the subtrees routed to it, a quarter of each tree's documents
// carrying the planted search term.
func clusterTree(spec ClusterSpec, id, n int) (*vfs.MemFS, error) {
	fsys := vfs.New()
	for t := 0; t < spec.Trees; t++ {
		if t%n != id {
			continue
		}
		dir := fmt.Sprintf("/t%d", t)
		if err := fsys.MkdirAll(dir); err != nil {
			return nil, err
		}
		for j := 0; j < spec.DocsPerTree; j++ {
			term := "fillerterm"
			if j%4 == 0 {
				term = spec.Query
			}
			body := fmt.Sprintf("%s tree%d doc%03d alpha beta gamma delta", term, t, j)
			if err := fsys.WriteFile(fmt.Sprintf("%s/doc%03d.txt", dir, j), []byte(body)); err != nil {
				return nil, err
			}
		}
	}
	return fsys, nil
}

// killOneReplica closes the first replica server of shard 0, connection
// and listener included — from the coordinator's side the replica dies
// mid-run and every subsequent read must fail over.
func (f *clusterFleet) killOneReplica() {
	if len(f.shards) > 0 && len(f.shards[0]) > 0 {
		f.shards[0][0].Close()
	}
}

func (f *clusterFleet) close() {
	if f.cSrv != nil {
		f.cSrv.Close()
	}
	if f.coord != nil {
		f.coord.Close()
	}
	for _, reps := range f.shards {
		for _, srv := range reps {
			srv.Close()
		}
	}
}

// clusterRun drives the closed-loop client fleet against one
// coordinator for spec.Duration. GlobalPct percent of queries scatter
// cluster-wide (scope /); the rest pick a routed subtree. Every query
// drains its full paged cursor, so latency covers the whole search.
func clusterRun(spec ClusterSpec, addr string, obsv *obs.Observer, kill func()) (*ClusterRunStats, error) {
	type clientStats struct {
		lat  []time.Duration
		scat []time.Duration
		errs int64
	}
	stats := make([]clientStats, spec.Clients)

	begin := make(chan struct{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < spec.Clients; g++ {
		cl := remote.DialBin("bench", addr)
		cl.SetObserver(obs.Discard())
		cl.SetTimeout(10 * time.Second)
		defer cl.Close()
		wg.Add(1)
		go func(g int, cl *remote.BinClient) {
			defer wg.Done()
			st := &stats[g]
			rng := rand.New(rand.NewSource(spec.Seed + int64(g)))
			ctx := context.Background()
			<-begin
			for {
				select {
				case <-stop:
					return
				default:
				}
				scope := "/"
				global := rng.Intn(100) < spec.GlobalPct
				if !global {
					scope = spec.Scopes[rng.Intn(len(spec.Scopes))]
				}
				t0 := time.Now()
				var after uint64
				var err error
				for {
					var next uint64
					_, next, _, err = cl.SearchPageUnder(ctx, spec.Query, scope, after, 512)
					if err != nil || next == 0 {
						break
					}
					after = next
				}
				d := time.Since(t0)
				if err != nil {
					st.errs++
					continue
				}
				st.lat = append(st.lat, d)
				if global {
					st.scat = append(st.scat, d)
				}
			}
		}(g, cl)
	}

	var killTimer *time.Timer
	killed := false
	if kill != nil {
		killTimer = time.AfterFunc(spec.Duration/2, kill)
		killed = true
	}
	start := time.Now()
	close(begin)
	time.Sleep(spec.Duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	if killTimer != nil {
		killTimer.Stop()
	}

	out := &ClusterRunStats{Replicas: spec.Replicas, Killed: killed}
	var all, scat []time.Duration
	for g := range stats {
		all = append(all, stats[g].lat...)
		scat = append(scat, stats[g].scat...)
		out.Errors += stats[g].errs
	}
	out.Ops = int64(len(all))
	out.Throughput = float64(len(all)) / elapsed.Seconds()
	out.P50 = percentile(all, 0.50)
	out.P99 = percentile(all, 0.99)
	out.ScatterP50 = percentile(scat, 0.50)
	out.ScatterP99 = percentile(scat, 0.99)
	if obsv != nil {
		for name, v := range obsv.Registry().Snapshot() {
			if strings.HasPrefix(name, "cluster_replica_failovers_total") {
				out.Failovers += int64(v)
			}
		}
	}
	return out, nil
}
