package bench

import (
	"testing"

	"hacfs/internal/andrew"
	"hacfs/internal/corpus"
)

// Small specs keep unit tests fast; the real numbers come from
// cmd/hacbench and the root bench_test.go.
var (
	tinyAndrew = andrew.Spec{Dirs: 3, FilesPerDir: 3, FileSize: 1024, MakeRounds: 1}
	tinyCorpus = corpus.Spec{Files: 120, MeanWords: 60, Seed: 5}
)

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(tinyAndrew)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].System != "UNIX" || rows[1].System != "HAC" {
		t.Fatalf("rows = %+v", rows)
	}
	// The same workload must have run on both systems.
	if rows[0].Result.FilesRead != rows[1].Result.FilesRead ||
		rows[0].Result.Scanned != rows[1].Result.Scanned {
		t.Fatalf("workloads differ: %+v vs %+v", rows[0].Result, rows[1].Result)
	}
	for _, r := range rows {
		if r.Result.Total() <= 0 {
			t.Fatalf("%s total not positive", r.System)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2(tinyAndrew)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.System] = true
		if r.Total <= 0 || r.RawTotal <= 0 {
			t.Fatalf("%s: non-positive timings: %+v", r.System, r)
		}
	}
	for _, want := range []string{"Jade FS", "Pseudo FS", "HAC FS"} {
		if !names[want] {
			t.Fatalf("missing system %s in %v", want, names)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	res, err := Table3(tinyCorpus)
	if err != nil {
		t.Fatal(err)
	}
	if res.Files != 120 {
		t.Fatalf("Files = %d", res.Files)
	}
	if res.DirectTime <= 0 || res.HACTime <= 0 {
		t.Fatalf("timings = %+v", res)
	}
	// HAC stores strictly more than the bare index.
	if res.HACIndexBytes <= res.DirectIndexBytes {
		t.Fatalf("HAC index bytes %d not above direct %d",
			res.HACIndexBytes, res.DirectIndexBytes)
	}
	if res.SpaceOverheadPct() <= 0 {
		t.Fatalf("space overhead = %f", res.SpaceOverheadPct())
	}
}

func TestTable4Shape(t *testing.T) {
	rows, err := Table4(tinyCorpus, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	// Match counts follow the corpus markers: few < intermediate < many.
	if !(rows[0].Matches < rows[1].Matches && rows[1].Matches < rows[2].Matches) {
		t.Fatalf("match counts not increasing: %+v", rows)
	}
	if rows[0].Matches != 1 {
		t.Fatalf("few-class matches = %d, want 1", rows[0].Matches)
	}
	for _, r := range rows {
		if r.Direct <= 0 || r.HAC <= 0 {
			t.Fatalf("%s: non-positive timings", r.Class)
		}
	}
}

func TestTable4EnvAgreement(t *testing.T) {
	env, err := NewTable4Env(tinyCorpus)
	if err != nil {
		t.Fatal(err)
	}
	// Direct search and HAC smkdir agree on the result set.
	paths, err := env.DirectSearch("markermid")
	if err != nil {
		t.Fatal(err)
	}
	n, err := env.HACSmkdir("/check", "markermid")
	if err != nil {
		t.Fatal(err)
	}
	if n != len(paths) {
		t.Fatalf("HAC found %d, direct found %d", n, len(paths))
	}
	if len(paths) != len(env.Manifest.MarkerFiles["markermid"]) {
		t.Fatalf("direct found %d, manifest says %d",
			len(paths), len(env.Manifest.MarkerFiles["markermid"]))
	}
	if err := env.Cleanup("/check"); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceShape(t *testing.T) {
	res, err := Space(tinyAndrew, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.HACMetaBytes <= res.UnixMetaBytes {
		t.Fatalf("HAC metadata %d not above UNIX %d", res.HACMetaBytes, res.UnixMetaBytes)
	}
	if res.MetaOverheadPct <= 0 {
		t.Fatalf("overhead pct = %f", res.MetaOverheadPct)
	}
	if res.SharedMemoryBytes <= 0 {
		t.Fatal("shared memory not positive")
	}
	if res.BitmapBytesPerDir <= 0 {
		t.Fatal("bitmap bytes not positive")
	}
}

func TestAblationOrder(t *testing.T) {
	res, err := AblationOrder(100, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.SemanticDirs != 8 || res.AffectedDirs != 3 {
		t.Fatalf("res = %+v", res)
	}
	if res.Targeted <= 0 || res.Full <= 0 {
		t.Fatalf("timings = %+v", res)
	}
}

func TestAblationSets(t *testing.T) {
	rows := AblationSets(10000, []float64{0.001, 0.1, 0.5})
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	// Sparse wins at low density, bitmap at high density.
	if rows[0].SparseBytes >= rows[0].BitmapBytes {
		t.Fatalf("sparse not smaller at low density: %+v", rows[0])
	}
	if rows[2].SparseBytes <= rows[2].BitmapBytes {
		t.Fatalf("bitmap not smaller at high density: %+v", rows[2])
	}
	// Bitmap bytes are density-independent.
	if rows[0].BitmapBytes != rows[2].BitmapBytes {
		t.Fatalf("bitmap size varied with density")
	}
}

func TestAblationAttrCache(t *testing.T) {
	res, err := AblationAttrCache(tinyAndrew, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.WithCache <= 0 || res.WithoutCache <= 0 ||
		res.TotalWith <= 0 || res.TotalWithout <= 0 {
		t.Fatalf("timings = %+v", res)
	}
}

func TestAblationScopeDirection(t *testing.T) {
	res, err := AblationScopeDirection(10)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChildEdits != 10 {
		t.Fatalf("edits = %d", res.ChildEdits)
	}
	// The paper's design: child edits never change the parent.
	if res.HACParentChanges != 0 {
		t.Fatalf("HAC parent changed %d times", res.HACParentChanges)
	}
	// The rejected design would have changed it every time.
	if res.RejectedParentChanges != 10 {
		t.Fatalf("modeled rejected-design changes = %d", res.RejectedParentChanges)
	}
	if res.OutOfHierarchyAccepted != 10 {
		t.Fatalf("HAC rejected out-of-hierarchy links: %+v", res)
	}
}
