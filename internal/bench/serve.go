package bench

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hacfs/internal/corpus"
	"hacfs/internal/hac"
	"hacfs/internal/obs"
	"hacfs/internal/remotefs"
	"hacfs/internal/serve"
	"hacfs/internal/vfs"
)

// ---------------------------------------------------------------------
// Multi-tenant serving — closed-loop load, line protocol vs mux
// ---------------------------------------------------------------------

// ServeSpec configures the closed-loop load experiment: Clients
// simulated clients spread over Tenants tenants drive mixed
// read/search/sync traffic through Conns shared TCP connections —
// once over the legacy one-request-at-a-time protocol, once over the
// multiplexed binary framing — against a multi-tenant server.
type ServeSpec struct {
	Clients       int           // closed-loop client goroutines (default 1000)
	Tenants       int           // hosted volumes (default 4)
	Conns         int           // shared connections per protocol (default 8)
	Duration      time.Duration // measured window per protocol (default 5s)
	DocsPerTenant int           // corpus size per tenant volume (default 300)
	NetDelay      time.Duration // emulated network round-trip (default 2ms, <0 disables)
	Seed          int64
	Addr          string // external server address; "" = in-process
}

func (s ServeSpec) withDefaults() ServeSpec {
	if s.Clients <= 0 {
		s.Clients = 1000
	}
	if s.Tenants <= 0 {
		s.Tenants = 4
	}
	if s.Conns <= 0 {
		s.Conns = 8
	}
	if s.Conns < s.Tenants {
		s.Conns = s.Tenants // the line protocol pins each conn to a tenant
	}
	if s.Duration <= 0 {
		s.Duration = 5 * time.Second
	}
	if s.DocsPerTenant <= 0 {
		s.DocsPerTenant = 300
	}
	if s.NetDelay == 0 {
		s.NetDelay = 2 * time.Millisecond
	}
	if s.NetDelay < 0 {
		s.NetDelay = 0
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// ServeTenantStats is one tenant's view of one protocol run.
type ServeTenantStats struct {
	Tenant       string
	Ops          int64
	Errors       int64
	Backpressure int64
	P50          time.Duration
	P99          time.Duration
	P999         time.Duration
}

// ServeProtoResult is one protocol's aggregate.
type ServeProtoResult struct {
	Protocol   string // "line" or "mux"
	Conns      int
	Ops        int64
	Throughput float64 // ops per second
	P50        time.Duration
	P99        time.Duration
	P999       time.Duration
	Tenants    []ServeTenantStats
}

// ServeResult is the whole experiment, written to BENCH_serve.json.
type ServeResult struct {
	Clients       int
	TenantCount   int
	Conns         int
	DocsPerTenant int
	Duration      time.Duration
	NetDelay      time.Duration // emulated network round-trip paid by both protocols

	Line ServeProtoResult
	Mux  ServeProtoResult

	// MuxSpeedup is mux throughput over line throughput at equal
	// connection count.
	MuxSpeedup float64
	// FairnessP99Ratio is the worst per-tenant p99 over the best, in
	// the mux run — 1.0 is perfectly fair scheduling.
	FairnessP99Ratio float64
}

// opClient is the per-tenant view a load goroutine drives; both
// protocol clients satisfy it.
type opClient interface {
	ReadFile(path string) ([]byte, error)
	SearchPage(ctx context.Context, query, scope string, after uint64, limit int) ([]string, uint64, error)
	SyncPath(path string) error
	WriteFile(path string, data []byte) error
}

// ServeLoad runs the experiment. With spec.Addr empty it boots an
// in-process multi-tenant server (tenants t0..tN-1, each volume
// seeded and indexed); otherwise it drives the server at Addr, which
// must host tenants under the same names.
func ServeLoad(spec ServeSpec) (*ServeResult, error) {
	spec = spec.withDefaults()

	addr := spec.Addr
	if addr == "" {
		var cleanup func()
		var err error
		addr, cleanup, err = bootServer(spec)
		if err != nil {
			return nil, err
		}
		defer cleanup()
	}

	tenantNames := make([]string, spec.Tenants)
	for i := range tenantNames {
		tenantNames[i] = fmt.Sprintf("t%d", i)
	}

	// Each tenant's known document set, for the read mix. External
	// servers are seeded by us so the paths are known there too.
	// Seeding goes straight to the server; only measured traffic pays
	// the emulated network latency.
	docs, err := seedOverWire(spec, addr, tenantNames)
	if err != nil {
		return nil, err
	}

	// Loopback has no meaningful round-trip time, which is precisely
	// what a line protocol is bound by — so, like the I/O benchmarks'
	// emulated device latency, the load runs through a proxy that
	// delays every byte by half the configured RTT in each direction
	// (latency only: delivery is pipelined, bandwidth is unconstrained).
	// Both protocols pay it equally.
	if spec.NetDelay > 0 {
		proxyAddr, stopProxy, err := startDelayProxy(addr, spec.NetDelay/2)
		if err != nil {
			return nil, err
		}
		defer stopProxy()
		addr = proxyAddr
	}

	res := &ServeResult{
		Clients:       spec.Clients,
		TenantCount:   spec.Tenants,
		Conns:         spec.Conns,
		DocsPerTenant: spec.DocsPerTenant,
		Duration:      spec.Duration,
		NetDelay:      spec.NetDelay,
	}

	line, err := runProto(spec, "line", addr, tenantNames, docs)
	if err != nil {
		return nil, err
	}
	res.Line = *line
	mux, err := runProto(spec, "mux", addr, tenantNames, docs)
	if err != nil {
		return nil, err
	}
	res.Mux = *mux

	if res.Line.Throughput > 0 {
		res.MuxSpeedup = res.Mux.Throughput / res.Line.Throughput
	}
	var worst, best time.Duration
	for _, t := range res.Mux.Tenants {
		if t.P99 > worst {
			worst = t.P99
		}
		if best == 0 || t.P99 < best {
			best = t.P99
		}
	}
	if best > 0 {
		res.FairnessP99Ratio = float64(worst) / float64(best)
	}
	return res, nil
}

// bootServer hosts spec.Tenants seeded volumes in-process and returns
// the listen address.
func bootServer(spec ServeSpec) (string, func(), error) {
	host := serve.NewHost(0, obs.NewObserver())
	for i := 0; i < spec.Tenants; i++ {
		hfs := hac.New(vfs.New(), hac.Options{Observer: obs.Discard()})
		if err := hfs.MkdirAll("/docs"); err != nil {
			return "", nil, err
		}
		cspec := corpus.Spec{Files: spec.DocsPerTenant, MeanWords: 60, Seed: spec.Seed + int64(i)}
		if _, err := corpus.Generate(hfs, "/docs", cspec); err != nil {
			return "", nil, err
		}
		if _, err := hfs.Reindex("/"); err != nil {
			return "", nil, err
		}
		if err := host.AddTenant(fmt.Sprintf("t%d", i), hfs, serve.Quota{}, ""); err != nil {
			return "", nil, err
		}
	}
	srv := remotefs.NewHostServer(host, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go srv.Serve(l)
	return l.Addr().String(), srv.Close, nil
}

// seedOverWire makes sure every tenant has the bench's known read set,
// writing it through the wire (idempotent for the in-process server,
// required for an external one), and returns the per-tenant paths.
func seedOverWire(spec ServeSpec, addr string, tenantNames []string) (map[string][]string, error) {
	mux := remotefs.DialMux(addr)
	mux.SetTimeout(20 * time.Second)
	defer mux.Close()
	docs := make(map[string][]string, len(tenantNames))
	for _, name := range tenantNames {
		c := mux.Tenant(name)
		if err := c.MkdirAll("/bench"); err != nil {
			return nil, fmt.Errorf("tenant %s: %w", name, err)
		}
		paths := make([]string, 32)
		for i := range paths {
			paths[i] = fmt.Sprintf("/bench/doc%02d.txt", i)
			body := fmt.Sprintf("markermid benchdoc %s %02d payload", name, i)
			if err := c.WriteFile(paths[i], []byte(body)); err != nil {
				return nil, fmt.Errorf("tenant %s: %w", name, err)
			}
		}
		docs[name] = paths
	}
	return docs, nil
}

// startDelayProxy listens locally and relays every connection to
// backend, delivering each byte oneWay later than it was read. Reads
// and delayed writes are decoupled through a queue, so the delay is
// pure latency — many requests can be in the pipe at once, which is
// exactly the property a multiplexed protocol exploits and a
// one-request-at-a-time protocol cannot.
func startDelayProxy(backend string, oneWay time.Duration) (string, func(), error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	var conns sync.Map // *net.TCPConn → struct{}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				b, err := net.Dial("tcp", backend)
				if err != nil {
					c.Close()
					return
				}
				conns.Store(c, struct{}{})
				conns.Store(b, struct{}{})
				go relayDelayed(b, c, oneWay)
				go relayDelayed(c, b, oneWay)
			}(c)
		}
	}()
	stop := func() {
		l.Close()
		conns.Range(func(k, _ any) bool {
			k.(net.Conn).Close()
			return true
		})
	}
	return l.Addr().String(), stop, nil
}

// relayDelayed pumps src → dst, holding each chunk back until its due
// time. A reader goroutine keeps draining src while earlier chunks
// wait, so the delay never caps throughput.
func relayDelayed(dst, src net.Conn, oneWay time.Duration) {
	type chunk struct {
		b   []byte
		due time.Time
	}
	ch := make(chan chunk, 4096)
	go func() {
		defer close(ch)
		for {
			buf := make([]byte, 32<<10)
			n, err := src.Read(buf)
			if n > 0 {
				ch <- chunk{buf[:n], time.Now().Add(oneWay)}
			}
			if err != nil {
				return
			}
		}
	}()
	for c := range ch {
		if d := time.Until(c.due); d > 0 {
			time.Sleep(d)
		}
		if _, err := dst.Write(c.b); err != nil {
			break
		}
	}
	// Propagate EOF so the other side's reader unblocks; half-close
	// when possible to let in-flight responses drain the other way.
	if tc, ok := dst.(*net.TCPConn); ok {
		tc.CloseWrite()
	} else {
		dst.Close()
	}
}

// runProto drives one closed-loop phase over one protocol. Clients are
// split evenly across tenants; connections are split evenly too, so
// both protocols get exactly spec.Conns TCP connections.
func runProto(spec ServeSpec, proto, addr string, tenantNames []string, docs map[string][]string) (*ServeProtoResult, error) {
	nT := len(tenantNames)
	connsPerTenant := spec.Conns / nT
	if connsPerTenant == 0 {
		connsPerTenant = 1
	}

	// Build the shared connection pool: per tenant, connsPerTenant
	// transport clients. The line protocol pins a connection to one
	// tenant; the mux shares the same physical conns via tenant views,
	// but to keep connection counts equal we give it the same layout.
	pool := make(map[string][]opClient, nT)
	var closers []func() error
	for _, name := range tenantNames {
		for i := 0; i < connsPerTenant; i++ {
			switch proto {
			case "line":
				c := remotefs.Dial(addr)
				c.SetTimeout(30 * time.Second)
				c.SetTenant(name)
				c.SetObserver(obs.Discard())
				pool[name] = append(pool[name], c)
				closers = append(closers, c.Close)
			case "mux":
				m := remotefs.DialMux(addr)
				m.SetTimeout(30 * time.Second)
				m.SetObserver(obs.Discard())
				pool[name] = append(pool[name], m.Tenant(name))
				closers = append(closers, m.Close)
			}
		}
	}
	defer func() {
		for _, c := range closers {
			c()
		}
	}()

	type clientStats struct {
		lat          []time.Duration
		errs         int64
		backpressure int64
	}
	stats := make([]clientStats, spec.Clients)
	tenantOf := make([]int, spec.Clients)

	ctx := context.Background()
	var start atomic.Int64 // set right before the goroutines are released
	stop := make(chan struct{})
	begin := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < spec.Clients; g++ {
		ti := g % nT
		tenantOf[g] = ti
		name := tenantNames[ti]
		conn := pool[name][(g/nT)%len(pool[name])]
		paths := docs[name]
		wg.Add(1)
		go func(g int, c opClient, paths []string) {
			defer wg.Done()
			st := &stats[g]
			<-begin
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				t0 := time.Now()
				switch i % 10 {
				case 7, 8: // 20% search
					_, _, err = c.SearchPage(ctx, "markermid", "/", 0, 16)
				case 9: // 10% ssync
					err = c.SyncPath("/bench")
				default: // 70% read
					_, err = c.ReadFile(paths[i%len(paths)])
				}
				d := time.Since(t0)
				if err != nil {
					if errors.Is(err, vfs.ErrBackpressure) {
						st.backpressure++
						continue // retry later, as a real client would
					}
					st.errs++
					continue
				}
				st.lat = append(st.lat, d)
			}
		}(g, conn, paths)
	}

	start.Store(time.Now().UnixNano())
	close(begin)
	time.Sleep(spec.Duration)
	close(stop)
	wg.Wait()
	elapsed := time.Duration(time.Now().UnixNano() - start.Load())

	// Aggregate: global and per tenant.
	out := &ServeProtoResult{Protocol: proto, Conns: connsPerTenant * nT}
	var all []time.Duration
	perTenant := make([][]time.Duration, nT)
	tErrs := make([]int64, nT)
	tBP := make([]int64, nT)
	for g := range stats {
		ti := tenantOf[g]
		all = append(all, stats[g].lat...)
		perTenant[ti] = append(perTenant[ti], stats[g].lat...)
		tErrs[ti] += stats[g].errs
		tBP[ti] += stats[g].backpressure
	}
	out.Ops = int64(len(all))
	out.Throughput = float64(len(all)) / elapsed.Seconds()
	out.P50 = percentile(all, 0.50)
	out.P99 = percentile(all, 0.99)
	out.P999 = percentile(all, 0.999)
	for ti, name := range tenantNames {
		out.Tenants = append(out.Tenants, ServeTenantStats{
			Tenant:       name,
			Ops:          int64(len(perTenant[ti])),
			Errors:       tErrs[ti],
			Backpressure: tBP[ti],
			P50:          percentile(perTenant[ti], 0.50),
			P99:          percentile(perTenant[ti], 0.99),
			P999:         percentile(perTenant[ti], 0.999),
		})
	}
	sort.Slice(out.Tenants, func(i, j int) bool { return out.Tenants[i].Tenant < out.Tenants[j].Tenant })
	return out, nil
}
