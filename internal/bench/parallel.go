package bench

import (
	"fmt"
	"runtime"
	"time"

	"hacfs/internal/corpus"
	"hacfs/internal/hac"
	"hacfs/internal/vfs"
)

// ---------------------------------------------------------------------
// Parallel evaluation engine — Reindex and SyncAll vs worker count
// ---------------------------------------------------------------------

// ParallelRow reports one worker count of the parallel-engine
// experiment. Speedups are relative to the workers=1 row of the same
// run.
type ParallelRow struct {
	Workers        int
	Reindex        time.Duration
	SyncAll        time.Duration
	ReindexSpeedup float64
	SyncAllSpeedup float64
}

// latencyFS delegates to an in-memory substrate but charges a fixed
// latency per ReadFile, standing in for the per-read device cost the
// paper's 1999 disks paid (~10ms; we default far below that). The
// in-memory MemFS has no I/O wait at all, which would reduce the
// experiment to pure CPU scaling — meaningless on a single-core
// machine and not what the engine's concurrency primarily buys:
// overlapping reads during tokenization and match verification.
type latencyFS struct {
	vfs.FileSystem
	delay time.Duration
}

func (l *latencyFS) ReadFile(path string) ([]byte, error) {
	if l.delay > 0 {
		time.Sleep(l.delay)
	}
	return l.FileSystem.ReadFile(path)
}

func (l *latencyFS) Open(path string) (vfs.File, error) {
	return l.OpenFile(path, vfs.ORead)
}

func (l *latencyFS) OpenFile(path string, flag int) (vfs.File, error) {
	if l.delay > 0 && flag&vfs.OCreate == 0 {
		time.Sleep(l.delay)
	}
	return l.FileSystem.OpenFile(path, flag)
}

// parallelQueries derives independent semantic-directory queries with
// known, overlapping result sets from the generated manifest: each one
// combines a planted marker with a topic term, so every directory has
// enough candidate files that verification does real work.
func parallelQueries(man *corpus.Manifest, n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		topic := man.TopicTerm[i%len(man.TopicTerm)]
		if i%2 == 0 {
			out = append(out, fmt.Sprintf("markermid OR %s", topic))
		} else {
			out = append(out, fmt.Sprintf("markermid AND NOT %s", topic))
		}
	}
	return out
}

// ParallelEval measures the evaluation engine at each worker count:
// cold Reindex over the corpus (parallel read+tokenize, single-writer
// merge), and full SyncAll over ndirs independent semantic directories
// with match verification on (the Glimpse-style scan makes each
// directory's evaluation expensive, which is the workload within-level
// parallelism targets). ioLatency is charged on every substrate read
// (see latencyFS). Fresh volumes per measurement; minimum of reps
// repetitions is reported.
func ParallelEval(spec corpus.Spec, workerCounts []int, ndirs, reps int, ioLatency time.Duration) ([]ParallelRow, error) {
	if reps <= 0 {
		reps = 1
	}
	if ndirs <= 0 {
		ndirs = 12
	}

	// One substrate shared by every measurement: generation cost is
	// excluded from the timings, and Reindex/SyncAll never mutate the
	// corpus files themselves.
	mem := vfs.New()
	if err := mem.MkdirAll("/db"); err != nil {
		return nil, err
	}
	man, err := corpus.Generate(mem, "/db", spec)
	if err != nil {
		return nil, err
	}
	under := &latencyFS{FileSystem: mem, delay: ioLatency}
	queries := parallelQueries(man, ndirs)

	rows := make([]ParallelRow, 0, len(workerCounts))
	for _, w := range workerCounts {
		row := ParallelRow{Workers: w}
		for r := 0; r < reps; r++ {
			// Cold Reindex on a fresh HAC layer.
			runtime.GC()
			hfs := hac.New(under, hac.Options{VerifyMatches: true})
			start := time.Now()
			if _, err := hfs.Reindex("/db", hac.WithParallelism(w)); err != nil {
				return nil, err
			}
			d := time.Since(start)
			if row.Reindex == 0 || d < row.Reindex {
				row.Reindex = d
			}

			// Independent semantic directories at the root (so each
			// one's scope spans the corpus), then a full
			// re-evaluation pass over all of them.
			for i, q := range queries {
				if err := hfs.SemDir(fmt.Sprintf("/q%02d", i), q); err != nil {
					return nil, fmt.Errorf("semdir %q: %w", q, err)
				}
			}
			runtime.GC()
			start = time.Now()
			if err := hfs.SyncAll(hac.WithParallelism(w)); err != nil {
				return nil, err
			}
			d = time.Since(start)
			if row.SyncAll == 0 || d < row.SyncAll {
				row.SyncAll = d
			}
		}
		rows = append(rows, row)
	}
	for i := range rows {
		if rows[0].Reindex > 0 {
			rows[i].ReindexSpeedup = float64(rows[0].Reindex) / float64(rows[i].Reindex)
		}
		if rows[0].SyncAll > 0 {
			rows[i].SyncAllSpeedup = float64(rows[0].SyncAll) / float64(rows[i].SyncAll)
		}
	}
	return rows, nil
}
