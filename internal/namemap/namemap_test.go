package namemap

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRegisterAndResolve(t *testing.T) {
	m := New()
	uid := m.Register("/projects/fingerprint")
	if uid == 0 {
		t.Fatal("Register returned the reserved UID 0")
	}
	if again := m.Register("/projects/fingerprint"); again != uid {
		t.Fatalf("re-Register returned %d, want %d", again, uid)
	}
	if p, ok := m.PathOf(uid); !ok || p != "/projects/fingerprint" {
		t.Fatalf("PathOf = %q, %v", p, ok)
	}
	if got, ok := m.UIDOf("/projects/fingerprint"); !ok || got != uid {
		t.Fatalf("UIDOf = %d, %v", got, ok)
	}
	if _, ok := m.PathOf(9999); ok {
		t.Fatal("PathOf of unknown UID succeeded")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestUIDsAreUnique(t *testing.T) {
	m := New()
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		uid := m.Register(fmt.Sprintf("/d%d", i))
		if seen[uid] {
			t.Fatalf("duplicate UID %d", uid)
		}
		seen[uid] = true
	}
}

func TestRenameUpdatesSubtree(t *testing.T) {
	m := New()
	a := m.Register("/old")
	b := m.Register("/old/sub")
	c := m.Register("/old/sub/deep")
	d := m.Register("/other")

	// The rename-stability property from §2.5: UIDs survive renames.
	if n := m.Rename("/old", "/new"); n != 3 {
		t.Fatalf("Rename updated %d entries, want 3", n)
	}
	for uid, want := range map[uint64]string{
		a: "/new",
		b: "/new/sub",
		c: "/new/sub/deep",
		d: "/other",
	} {
		if p, ok := m.PathOf(uid); !ok || p != want {
			t.Fatalf("PathOf(%d) = %q, want %q", uid, p, want)
		}
	}
	if _, ok := m.UIDOf("/old"); ok {
		t.Fatal("old path still registered")
	}
	// Prefix must be component-wise: /newt is not inside /new.
	e := m.Register("/newt")
	m.Rename("/new", "/renamed")
	if p, _ := m.PathOf(e); p != "/newt" {
		t.Fatalf("sibling path corrupted: %q", p)
	}
}

func TestRemoveSubtree(t *testing.T) {
	m := New()
	a := m.Register("/gone")
	b := m.Register("/gone/child")
	c := m.Register("/stays")

	gone := m.RemoveSubtree("/gone")
	if !reflect.DeepEqual(gone, []uint64{a, b}) {
		t.Fatalf("RemoveSubtree = %v, want [%d %d]", gone, a, b)
	}
	if _, ok := m.PathOf(a); ok {
		t.Fatal("removed UID still resolves")
	}
	if _, ok := m.PathOf(c); !ok {
		t.Fatal("unrelated UID removed")
	}
}

func TestPathsSorted(t *testing.T) {
	m := New()
	m.Register("/z")
	m.Register("/a")
	if got := m.Paths(); !reflect.DeepEqual(got, []string{"/a", "/z"}) {
		t.Fatalf("Paths = %v", got)
	}
}

func TestSizeBytes(t *testing.T) {
	m := New()
	if m.SizeBytes() != 0 {
		t.Fatal("empty map has nonzero size")
	}
	m.Register("/abc")
	if m.SizeBytes() <= 0 {
		t.Fatal("SizeBytes not positive after Register")
	}
}

// Property: after any sequence of renames, PathOf∘UIDOf is the identity
// on all registered paths.
func TestPropertyBijection(t *testing.T) {
	f := func(ops []uint8) bool {
		m := New()
		for i, op := range ops {
			switch op % 3 {
			case 0:
				m.Register(fmt.Sprintf("/d%d", int(op)%8))
			case 1:
				m.Rename(fmt.Sprintf("/d%d", int(op)%8), fmt.Sprintf("/r%d", i))
			case 2:
				m.RemoveSubtree(fmt.Sprintf("/d%d", int(op)%8))
			}
		}
		for _, p := range m.Paths() {
			uid, ok := m.UIDOf(p)
			if !ok {
				return false
			}
			back, ok := m.PathOf(uid)
			if !ok || back != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
