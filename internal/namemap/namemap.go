// Package namemap implements the paper's global mapping of unique
// directory identifiers to path names (§2.5).
//
// Queries that reference other directories store UIDs, not paths, so
// that renaming a directory does not invalidate the queries that refer
// to it: "instead of updating the queries of all directories like new
// that depend on old, HAC simply updates the global map when old is
// renamed". Rename here does exactly that one update, for the renamed
// directory and everything registered beneath it.
//
// The map is safe for concurrent use.
package namemap

import (
	"sort"
	"sync"

	"hacfs/internal/vfs"
)

// Map is a bidirectional UID ↔ path registry. UIDs are issued by the
// map and never reused.
type Map struct {
	mu      sync.RWMutex
	nextUID uint64
	byUID   map[uint64]string
	byPath  map[string]uint64
}

// New returns an empty map.
func New() *Map {
	return &Map{
		nextUID: 1, // UID 0 means "unbound" in query.DirRef
		byUID:   make(map[uint64]string),
		byPath:  make(map[string]uint64),
	}
}

// Register assigns a fresh UID to path, or returns the existing UID if
// path is already registered.
func (m *Map) Register(path string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if uid, ok := m.byPath[path]; ok {
		return uid
	}
	uid := m.nextUID
	m.nextUID++
	m.byUID[uid] = path
	m.byPath[path] = uid
	return uid
}

// PathOf resolves a UID to its current path.
func (m *Map) PathOf(uid uint64) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, ok := m.byUID[uid]
	return p, ok
}

// UIDOf resolves a path to its UID.
func (m *Map) UIDOf(path string) (uint64, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	uid, ok := m.byPath[path]
	return uid, ok
}

// Len returns the number of registered directories.
func (m *Map) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.byUID)
}

// Rename records that the directory at oldPath moved to newPath,
// updating it and every registered descendant. It returns the number of
// entries updated.
func (m *Map) Rename(oldPath, newPath string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for uid, p := range m.byUID {
		if !vfs.HasPrefix(p, oldPath) {
			continue
		}
		np := newPath + p[len(oldPath):]
		delete(m.byPath, p)
		m.byUID[uid] = np
		m.byPath[np] = uid
		n++
	}
	return n
}

// RemoveSubtree drops the registration of path and every registered
// descendant, returning the removed UIDs.
func (m *Map) RemoveSubtree(path string) []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var gone []uint64
	for uid, p := range m.byUID {
		if vfs.HasPrefix(p, path) {
			gone = append(gone, uid)
			delete(m.byPath, p)
			delete(m.byUID, uid)
		}
	}
	sort.Slice(gone, func(i, j int) bool { return gone[i] < gone[j] })
	return gone
}

// Paths returns all registered paths, sorted. Intended for diagnostics
// and the space-overhead experiment.
func (m *Map) Paths() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.byPath))
	for p := range m.byPath {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// SizeBytes estimates the map's in-memory footprint for the
// space-overhead experiment.
func (m *Map) SizeBytes() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	total := 0
	for _, p := range m.byUID {
		// Each entry appears in two maps: uid→path and path→uid.
		total += 2*len(p) + 2*16
	}
	return total
}
