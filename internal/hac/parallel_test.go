package hac

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"hacfs/internal/vfs"
)

// buildSeededVolume constructs a volume with a pseudo-random corpus and
// a DAG of semantic directories — several independent ones plus dir:
// references two levels deep — driven entirely by seed, so two calls
// with the same seed produce identical starting states regardless of
// the parallelism they will later be evaluated with.
func buildSeededVolume(t *testing.T, seed int64, par int) *FS {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	fs := New(vfs.New(), Options{Parallelism: par})
	words := []string{
		"apple", "banana", "cherry", "date", "elder", "fig",
		"grape", "mango", "nutmeg", "olive", "peach", "quince",
	}
	dirs := []string{"/docs", "/mail", "/src", "/notes"}
	for _, d := range dirs {
		if err := fs.MkdirAll(d); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 120; i++ {
		d := dirs[rng.Intn(len(dirs))]
		n := 3 + rng.Intn(6)
		terms := make([]string, n)
		for j := range terms {
			terms[j] = words[rng.Intn(len(words))]
		}
		p := fmt.Sprintf("%s/f%03d.txt", d, i)
		if err := fs.WriteFile(p, []byte(strings.Join(terms, " "))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	// Semantic directories live at the root so each query's implicit
	// scope (the parent's) spans the whole corpus; the dir: references
	// form a DAG three levels deep.
	semdirs := []struct{ path, q string }{
		{"/q-apple", "apple"},
		{"/q-banana", "banana"},
		{"/q-cherry", "cherry"},
		{"/q-grape", "grape"},
		{"/q-olive", "olive OR peach"},
		{"/q-fruit", "apple OR banana OR cherry"},
		{"/q-mix1", "dir:/q-apple AND banana"},
		{"/q-mix2", "dir:/q-fruit AND NOT cherry"},
		{"/q-deep", "dir:/q-mix1 OR dir:/q-mix2"},
	}
	for _, sd := range semdirs {
		if err := fs.SemDir(sd.path, sd.q); err != nil {
			t.Fatalf("SemDir(%s, %q): %v", sd.path, sd.q, err)
		}
	}
	return fs
}

// volumeFingerprint serializes every semantic directory's full link
// state — link names included, so base~N collision suffixes count —
// into one string for byte-identical comparison.
func volumeFingerprint(t *testing.T, fs *FS) string {
	t.Helper()
	var b strings.Builder
	for _, dir := range fs.SemanticDirs() {
		links, err := fs.Links(dir)
		if err != nil {
			t.Fatalf("Links(%s): %v", dir, err)
		}
		fmt.Fprintf(&b, "%s\n", dir)
		for _, l := range links {
			fmt.Fprintf(&b, "  %q -> %q [%s]\n", l.Name, l.Target, l.Class)
		}
	}
	return b.String()
}

// TestParallelSyncDeterministic is the engine's core guarantee: a
// parallel Reindex+SyncAll commits byte-for-byte the same link sets
// (names, targets, classes) as a serial run over the same volume.
func TestParallelSyncDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		serial := buildSeededVolume(t, seed, 1)
		par := buildSeededVolume(t, seed, 8)

		// Perturb both volumes identically so the re-evaluation has
		// real drops and adds to commit.
		for _, fs := range []*FS{serial, par} {
			for _, p := range []string{"/docs/f000.txt", "/mail/f001.txt"} {
				// The seeded writer may not have placed both; ignore misses.
				fs.Remove(p)
			}
			if err := fs.WriteFile("/docs/fresh1.txt", []byte("apple cherry banana")); err != nil {
				t.Fatal(err)
			}
			if err := fs.WriteFile("/notes/fresh2.txt", []byte("olive banana grape")); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := serial.Reindex("/", WithParallelism(1)); err != nil {
			t.Fatalf("seed %d: serial Reindex: %v", seed, err)
		}
		if _, err := par.Reindex("/", WithParallelism(8)); err != nil {
			t.Fatalf("seed %d: parallel Reindex: %v", seed, err)
		}

		a, b := volumeFingerprint(t, serial), volumeFingerprint(t, par)
		if a != b {
			t.Fatalf("seed %d: parallel link state diverges from serial:\n--- serial ---\n%s--- parallel ---\n%s", seed, a, b)
		}
		if strings.Count(a, "->") < 20 {
			t.Fatalf("seed %d: suspiciously few links — scope misconfigured?\n%s", seed, a)
		}
		for _, q := range []string{"apple", "banana AND olive", "dir:/q-fruit"} {
			sa, errA := serial.SearchPaths(q, "/")
			pb, errB := par.SearchPaths(q, "/")
			if (errA == nil) != (errB == nil) {
				t.Fatalf("seed %d: Search(%q) errors differ: %v vs %v", seed, q, errA, errB)
			}
			if fmt.Sprint(sa) != fmt.Sprint(pb) {
				t.Fatalf("seed %d: Search(%q) = %v (serial) vs %v (parallel)", seed, q, sa, pb)
			}
		}
		if problems := par.CheckConsistency(); len(problems) > 0 {
			t.Fatalf("seed %d: CheckConsistency after parallel sync: %v", seed, problems)
		}
	}
}

// TestParallelSyncWithVerify runs the same determinism check with
// match verification on — the configuration the benchmark uses — so
// the parallel read path through substrate file handles is exercised.
func TestParallelSyncWithVerify(t *testing.T) {
	serial := buildSeededVolume(t, 7, 1)
	par := buildSeededVolume(t, 7, 8)
	serial.verify = true
	par.verify = true
	if err := serial.SyncAll(WithParallelism(1)); err != nil {
		t.Fatal(err)
	}
	if err := par.SyncAll(WithParallelism(8)); err != nil {
		t.Fatal(err)
	}
	if a, b := volumeFingerprint(t, serial), volumeFingerprint(t, par); a != b {
		t.Fatalf("verify-mode parallel sync diverges:\n--- serial ---\n%s--- parallel ---\n%s", a, b)
	}
}

// TestParallelSyncConcurrentMutation hammers a volume with writers,
// readers and parallel evaluation passes at once. The generation
// counter must ensure no stale staged result is ever committed: after
// the dust settles, one final Reindex must leave the volume fully
// consistent. Run under -race this also validates the lock scheme.
func TestParallelSyncConcurrentMutation(t *testing.T) {
	fs := buildSeededVolume(t, 99, 0)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: keeps creating and removing files and permanent links.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p := fmt.Sprintf("/docs/churn%d.txt", i%5)
			if i%2 == 0 {
				fs.WriteFile(p, []byte("apple churn banana"))
			} else {
				fs.Remove(p)
			}
			if i%3 == 0 {
				fs.MarkPermanent("/q-grape", "/docs/f002.txt")
			}
		}
	}()

	// Readers: Search and ReadDir must proceed during evaluation.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				fs.SearchPaths("apple OR banana", "/")
				fs.ReadDir("/q-fruit")
				fs.LinkTargets("/q-deep")
				fs.Stats()
			}
		}()
	}

	// Evaluator: repeated parallel passes racing the mutators above.
	for i := 0; i < 25; i++ {
		if err := fs.SyncAll(WithParallelism(4)); err != nil {
			t.Fatalf("SyncAll pass %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	if _, err := fs.Reindex("/", WithParallelism(4)); err != nil {
		t.Fatal(err)
	}
	if problems := fs.CheckConsistency(); len(problems) > 0 {
		t.Fatalf("CheckConsistency after concurrent mutation: %v", problems)
	}
}

// TestParallelReindexMatchesSerial checks the single-writer merge:
// document IDs assigned during a parallel Reindex must equal the
// serial assignment, observable through identical search results and
// index statistics.
func TestParallelReindexMatchesSerial(t *testing.T) {
	serial := New(vfs.New(), Options{})
	par := New(vfs.New(), Options{})
	rng := rand.New(rand.NewSource(5))
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	// Deterministic corpus, written identically to both volumes.
	for i := 0; i < 60; i++ {
		n := 2 + rng.Intn(4)
		terms := make([]string, n)
		for j := range terms {
			terms[j] = words[rng.Intn(len(words))]
		}
		body := []byte(strings.Join(terms, " "))
		p := fmt.Sprintf("/corpus/doc%02d.txt", i)
		for _, fs := range []*FS{serial, par} {
			if err := fs.MkdirAll("/corpus"); err != nil {
				t.Fatal(err)
			}
			if err := fs.WriteFile(p, body); err != nil {
				t.Fatal(err)
			}
		}
	}
	repS, err := serial.Reindex("/", WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	repP, err := par.Reindex("/", WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if repS != repP {
		t.Fatalf("IndexReport differs: serial %+v, parallel %+v", repS, repP)
	}
	for _, w := range words {
		sa, _ := serial.SearchPaths(w, "/")
		pb, _ := par.SearchPaths(w, "/")
		if fmt.Sprint(sa) != fmt.Sprint(pb) {
			t.Fatalf("Search(%q) = %v (serial) vs %v (parallel)", w, sa, pb)
		}
	}
}

// TestSyncGenerationFallback pins the staleness protocol directly: a
// mutation interleaved between the engine's evaluation and commit
// phases must not lose its effect to a stale staged result.
func TestSyncGenerationFallback(t *testing.T) {
	fs := buildSeededVolume(t, 3, 4)
	// Bump the generation mid-flight by mutating from another
	// goroutine while SyncAll runs repeatedly; the engine either
	// commits (gen unchanged) or falls back to serial re-evaluation.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			fs.Symlink("/docs/f003.txt", fmt.Sprintf("/notes/l%d", i))
		}
	}()
	for i := 0; i < 50; i++ {
		if err := fs.SyncAll(WithParallelism(4)); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if err := fs.SyncAll(WithParallelism(4)); err != nil {
		t.Fatal(err)
	}
	if problems := fs.CheckConsistency(); len(problems) > 0 {
		t.Fatalf("CheckConsistency: %v", problems)
	}
}
