package hac

// Model-based consistency checking (DESIGN.md §8). A randomized
// operation sequence — creates, writes, removes, renames, semantic
// directory edits, link edits, Sync, Reindex, save/crash/load cycles —
// is driven simultaneously against a HAC volume over a fault-injecting
// substrate (vfs.FaultFS) and a pure in-memory oracle that implements
// the paper's scope-consistency rules directly. After every step the
// harness asserts the three §2.3 invariants:
//
//	I1  transient links ⊆ the scope provided by the parent;
//	I2  every file matching the query, minus prohibited and permanent
//	    targets, is linked (transient completeness);
//	I3  prohibited targets never silently reappear.
//
// The oracle keeps the model deliberately simple: semantic directories
// live at the root with single-term queries and no dir: references, so
// the expected transient set is exactly {indexed files containing the
// term} − prohibited − permanent, where "indexed" means the state of
// the corpus at the last reindex (the paper's lazy data consistency).
// Within that restriction the check is total: the harness compares the
// complete classified link sets, which subsumes all three invariants,
// and additionally runs FS.CheckConsistency (I1/I4 plus physical-link
// audit) every step.
//
// When an injected fault makes an operation fail, the harness settles
// the volume (faults off, full Reindex — the paper's recovery story),
// re-learns the user-level state through the public API, and asserts
// that the settled volume again satisfies scope consistency exactly —
// so every fault is followed by a hard assertion, and prohibitions
// recorded before the fault must still be present afterwards.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"hacfs/internal/vfs"
	"hacfs/internal/vfs/cas"
)

// mcVocab is the closed vocabulary the oracle shares with the
// tokenizer: lowercase alphanumeric words, all within term bounds.
var mcVocab = []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}

// mcDir is the oracle's view of one semantic directory.
type mcDir struct {
	query      string          // single term; "" = no query
	trans      map[string]bool // expected transient targets
	permanent  map[string]bool
	prohibited map[string]bool
}

func newMCDir() *mcDir {
	return &mcDir{
		trans:      map[string]bool{},
		permanent:  map[string]bool{},
		prohibited: map[string]bool{},
	}
}

// mcModel is the in-memory oracle.
type mcModel struct {
	files   map[string]string          // path → contents (current)
	indexed map[string]map[string]bool // path → term set at last reindex
	dirs    []string                   // syntactic directories under /docs (sorted, includes /docs)
	sem     map[string]*mcDir          // semantic directories (at root)
	nameSeq int                        // unique-name counter (survives crashes)
}

func newMCModel() *mcModel {
	return &mcModel{
		files:   map[string]string{},
		indexed: map[string]map[string]bool{},
		dirs:    []string{"/docs"},
		sem:     map[string]*mcDir{},
	}
}

func (m *mcModel) clone() *mcModel {
	c := newMCModel()
	for p, s := range m.files {
		c.files[p] = s
	}
	for p, ts := range m.indexed {
		nt := map[string]bool{}
		for t := range ts {
			nt[t] = true
		}
		c.indexed[p] = nt
	}
	c.dirs = append([]string(nil), m.dirs...)
	for d, md := range m.sem {
		nd := newMCDir()
		nd.query = md.query
		for t := range md.trans {
			nd.trans[t] = true
		}
		for t := range md.permanent {
			nd.permanent[t] = true
		}
		for t := range md.prohibited {
			nd.prohibited[t] = true
		}
		c.sem[d] = nd
	}
	c.nameSeq = m.nameSeq
	return c
}

func termsOf(content string) map[string]bool {
	ts := map[string]bool{}
	for _, w := range strings.Fields(content) {
		ts[w] = true
	}
	return ts
}

// reindex moves the oracle's indexed view to the current corpus and
// re-evaluates every semantic directory, mirroring FS.Reindex.
func (m *mcModel) reindex() {
	m.indexed = map[string]map[string]bool{}
	for p, content := range m.files {
		m.indexed[p] = termsOf(content)
	}
	m.reevalAll()
}

// reeval recomputes one directory's expected transient set from the
// indexed view — the paper's scope-consistency rule for a root-level
// directory whose scope is the whole volume.
func (m *mcModel) reeval(d *mcDir) {
	d.trans = map[string]bool{}
	if d.query == "" {
		return
	}
	for p, terms := range m.indexed {
		if terms[d.query] && !d.prohibited[p] && !d.permanent[p] {
			d.trans[p] = true
		}
	}
}

func (m *mcModel) reevalAll() {
	for _, d := range m.sem {
		m.reeval(d)
	}
}

// renamePath rewrites every occurrence of old → new (file rename).
func (m *mcModel) renamePath(oldPath, newPath string) {
	if c, ok := m.files[oldPath]; ok {
		delete(m.files, oldPath)
		m.files[newPath] = c
	}
	if ts, ok := m.indexed[oldPath]; ok {
		delete(m.indexed, oldPath)
		m.indexed[newPath] = ts
	}
	for _, d := range m.sem {
		renameKey(d.trans, oldPath, newPath)
		renameKey(d.permanent, oldPath, newPath)
		renameKey(d.prohibited, oldPath, newPath)
	}
}

// renamePrefix rewrites every path at or under oldPrefix (dir rename).
func (m *mcModel) renamePrefix(oldPrefix, newPrefix string) {
	rewrite := func(p string) (string, bool) {
		if p == oldPrefix {
			return newPrefix, true
		}
		if strings.HasPrefix(p, oldPrefix+"/") {
			return newPrefix + p[len(oldPrefix):], true
		}
		return p, false
	}
	remapStr := func(mp map[string]string) {
		for p, v := range mp {
			if np, ok := rewrite(p); ok {
				delete(mp, p)
				mp[np] = v
			}
		}
	}
	remapTerms := func(mp map[string]map[string]bool) {
		for p, v := range mp {
			if np, ok := rewrite(p); ok {
				delete(mp, p)
				mp[np] = v
			}
		}
	}
	remapStr(m.files)
	remapTerms(m.indexed)
	for i, d := range m.dirs {
		if nd, ok := rewrite(d); ok {
			m.dirs[i] = nd
		}
	}
	sort.Strings(m.dirs)
	for _, d := range m.sem {
		remapBool(d.trans, rewrite)
		remapBool(d.permanent, rewrite)
		remapBool(d.prohibited, rewrite)
	}
}

func remapBool(mp map[string]bool, rewrite func(string) (string, bool)) {
	for p := range mp {
		if np, ok := rewrite(p); ok {
			delete(mp, p)
			mp[np] = true
		}
	}
}

func renameKey(mp map[string]bool, oldKey, newKey string) {
	if mp[oldKey] {
		delete(mp, oldKey)
		mp[newKey] = true
	}
}

// mcHarness couples the system under test, the oracle, and the fault
// substrate.
type mcHarness struct {
	t     *testing.T
	rng   *rand.Rand
	fs    *FS
	fault *vfs.FaultFS // nil after a crash-recovery re-home
	m     *mcModel
	rate  float64 // error rate while faults are armed
	steps int
}

func newMCHarness(t *testing.T, seed int64, rate float64) *mcHarness {
	return newMCHarnessOn(t, seed, rate, vfs.New())
}

// newMCHarnessOn runs the walk over an arbitrary substrate — the same
// checks drive MemFS and the content-addressed cas.FS, which is exactly
// the substrate-equivalence claim of DESIGN.md §15.
func newMCHarnessOn(t *testing.T, seed int64, rate float64, inner vfs.FileSystem) *mcHarness {
	fault := vfs.NewFaultFS(inner, vfs.FaultConfig{Seed: seed, TornWrites: true})
	h := &mcHarness{
		t:     t,
		rng:   rand.New(rand.NewSource(seed)),
		fs:    New(fault, Options{}),
		fault: fault,
		m:     newMCModel(),
		rate:  rate,
	}
	// Seed corpus: a handful of files, then index.
	if err := h.fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		p := fmt.Sprintf("/docs/seed%d.txt", i)
		content := h.randContent()
		if err := h.fs.WriteFile(p, []byte(content)); err != nil {
			t.Fatal(err)
		}
		h.m.files[p] = content
	}
	if _, err := h.fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	h.m.reindex()
	// Two semantic directories from the start.
	h.opSemDir()
	h.opSemDir()
	h.assertConsistent("setup")
	fault.SetErrorRate(rate)
	return h
}

func (h *mcHarness) randContent() string {
	n := 1 + h.rng.Intn(4)
	words := make([]string, n)
	for i := range words {
		words[i] = mcVocab[h.rng.Intn(len(mcVocab))]
	}
	return strings.Join(words, " ")
}

func (h *mcHarness) randTerm() string { return mcVocab[h.rng.Intn(len(mcVocab))] }

func (h *mcHarness) randDir() string { return h.m.dirs[h.rng.Intn(len(h.m.dirs))] }

func (h *mcHarness) randFile() (string, bool) {
	if len(h.m.files) == 0 {
		return "", false
	}
	paths := make([]string, 0, len(h.m.files))
	for p := range h.m.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths[h.rng.Intn(len(paths))], true
}

func (h *mcHarness) randSem() (string, *mcDir, bool) {
	if len(h.m.sem) == 0 {
		return "", nil, false
	}
	names := make([]string, 0, len(h.m.sem))
	for d := range h.m.sem {
		names = append(names, d)
	}
	sort.Strings(names)
	d := names[h.rng.Intn(len(names))]
	return d, h.m.sem[d], true
}

func (h *mcHarness) freshName(prefix string) string {
	h.m.nameSeq++
	return fmt.Sprintf("%s%d", prefix, h.m.nameSeq)
}

// step runs one random operation and asserts consistency. Injected
// failures route through settle().
func (h *mcHarness) step() {
	h.steps++
	var err error
	var op string
	switch k := h.rng.Intn(100); {
	case k < 15:
		op = "writeNew"
		p := vfs.Join(h.randDir(), h.freshName("f")+".txt")
		content := h.randContent()
		if err = h.fs.WriteFile(p, []byte(content)); err == nil {
			h.m.files[p] = content
		}
	case k < 25:
		op = "overwrite"
		if p, ok := h.randFile(); ok {
			content := h.randContent()
			if err = h.fs.WriteFile(p, []byte(content)); err == nil {
				h.m.files[p] = content
			}
		}
	case k < 33:
		op = "removeFile"
		if p, ok := h.randFile(); ok {
			if err = h.fs.Remove(p); err == nil {
				delete(h.m.files, p)
			}
		}
	case k < 40:
		op = "renameFile"
		if p, ok := h.randFile(); ok {
			np := vfs.Join(h.randDir(), h.freshName("r")+".txt")
			if err = h.fs.Rename(p, np); err == nil {
				h.m.renamePath(p, np)
			}
		}
	case k < 44:
		op = "renameDir"
		err = h.opRenameDir()
	case k < 49:
		op = "mkdir"
		p := vfs.Join(h.randDir(), h.freshName("d"))
		if err = h.fs.Mkdir(p); err == nil {
			h.m.dirs = append(h.m.dirs, p)
			sort.Strings(h.m.dirs)
		}
	case k < 57:
		op = "semDir"
		err = h.opSemDir()
	case k < 65:
		op = "removeLink"
		err = h.opRemoveLink()
	case k < 72:
		op = "permanentLink"
		err = h.opPermanentLink()
	case k < 77:
		op = "markProhibited"
		if d, md, ok := h.randSem(); ok {
			target, tok := h.randFile()
			if !tok {
				break
			}
			if err = h.fs.MarkProhibited(d, target); err == nil {
				delete(md.trans, target)
				delete(md.permanent, target)
				md.prohibited[target] = true
			}
		}
	case k < 82:
		op = "unprohibit"
		err = h.opUnprohibit()
	case k < 90:
		op = "sync"
		if err = h.fs.Sync("/"); err == nil {
			h.m.reevalAll()
		}
	default:
		op = "reindex"
		if _, err = h.fs.Reindex("/"); err == nil {
			h.m.reindex()
		}
	}
	// Observation (settle + assertion) runs with faults quiesced, so
	// injected errors can only corrupt the volume, never the check.
	if h.fault != nil {
		h.fault.SetErrorRate(0)
	}
	if err != nil {
		h.settle(op, err)
	}
	h.assertConsistent(op)
	if h.fault != nil {
		h.fault.SetErrorRate(h.rate)
	}
}

// opSemDir creates a fresh semantic directory or re-queries an
// existing one (both through SemDir, the paper's smkdir).
func (h *mcHarness) opSemDir() error {
	var d string
	if h.rng.Intn(2) == 0 && len(h.m.sem) > 0 && len(h.m.sem) < 6 {
		d, _, _ = h.randSem()
	} else if len(h.m.sem) < 6 {
		d = "/" + h.freshName("s")
	} else {
		d, _, _ = h.randSem()
	}
	term := h.randTerm()
	if err := h.fs.SemDir(d, term); err != nil {
		return err
	}
	md, ok := h.m.sem[d]
	if !ok {
		md = newMCDir()
		h.m.sem[d] = md
	}
	md.query = term
	h.m.reeval(md)
	return nil
}

func (h *mcHarness) opRenameDir() error {
	// Pick a directory strictly under /docs so semantic dirs and the
	// corpus root stay put.
	var cands []string
	for _, d := range h.m.dirs {
		if d != "/docs" {
			cands = append(cands, d)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	src := cands[h.rng.Intn(len(cands))]
	// Destination parent must not be inside src.
	var parents []string
	for _, d := range h.m.dirs {
		if d != src && !strings.HasPrefix(d, src+"/") {
			parents = append(parents, d)
		}
	}
	dst := vfs.Join(parents[h.rng.Intn(len(parents))], h.freshName("d"))
	if err := h.fs.Rename(src, dst); err != nil {
		return err
	}
	h.m.renamePrefix(src, dst)
	return nil
}

// opRemoveLink removes one link (transient or permanent) from a
// semantic directory through the hierarchical interface; HAC must
// record a prohibition (§2.3).
func (h *mcHarness) opRemoveLink() error {
	d, md, ok := h.randSem()
	if !ok || len(md.trans)+len(md.permanent) == 0 {
		return nil
	}
	var targets []string
	for t := range md.trans {
		targets = append(targets, t)
	}
	for t := range md.permanent {
		targets = append(targets, t)
	}
	sort.Strings(targets)
	target := targets[h.rng.Intn(len(targets))]
	// Find the physical link name through the public API.
	links, err := h.fs.Links(d)
	if err != nil {
		return err
	}
	name := ""
	for _, l := range links {
		if l.Target == target && l.Class != Prohibited {
			name = l.Name
		}
	}
	if name == "" {
		h.t.Fatalf("model target %s has no SUT link in %s", target, d)
	}
	if err := h.fs.Remove(vfs.Join(d, name)); err != nil {
		return err
	}
	delete(md.trans, target)
	delete(md.permanent, target)
	md.prohibited[target] = true
	return nil
}

// opPermanentLink adds a user symlink inside a semantic directory; HAC
// must classify it permanent and clear any prohibition.
func (h *mcHarness) opPermanentLink() error {
	d, md, ok := h.randSem()
	if !ok {
		return nil
	}
	target, tok := h.randFile()
	if !tok {
		return nil
	}
	if err := h.fs.Symlink(target, vfs.Join(d, h.freshName("u"))); err != nil {
		return err
	}
	delete(md.trans, target)
	delete(md.prohibited, target)
	md.permanent[target] = true
	return nil
}

func (h *mcHarness) opUnprohibit() error {
	d, md, ok := h.randSem()
	if !ok || len(md.prohibited) == 0 {
		return nil
	}
	var targets []string
	for t := range md.prohibited {
		targets = append(targets, t)
	}
	sort.Strings(targets)
	target := targets[h.rng.Intn(len(targets))]
	if err := h.fs.Unprohibit(d, target); err != nil {
		return err
	}
	delete(md.prohibited, target)
	// Unprohibit re-evaluates the directory immediately.
	h.m.reeval(md)
	return nil
}

// settle recovers from a failed operation: faults off, a full Reindex
// (the paper: "at reindexing time, all scope and data inconsistencies
// are settled"), then the oracle re-learns user-level state through
// the public API. Prohibitions recorded before the fault must survive
// — a fault may abort an edit, but must never silently resurrect a
// prohibited link (I3 across failures).
func (h *mcHarness) settle(op string, opErr error) {
	h.t.Helper()
	if !errors.Is(opErr, vfs.ErrInjected) && !errors.Is(opErr, vfs.ErrCrashed) {
		h.t.Fatalf("step %d (%s): non-injected failure: %v", h.steps, op, opErr)
	}
	before := map[string]map[string]bool{}
	for d, md := range h.m.sem {
		before[d] = map[string]bool{}
		for t := range md.prohibited {
			before[d][t] = true
		}
	}
	if _, err := h.fs.Reindex("/"); err != nil {
		h.t.Fatalf("step %d (%s): settle reindex failed: %v", h.steps, op, err)
	}
	h.relearn()
	// I3 across the fault: the failed op may legitimately have removed
	// a prohibition only if it was an op that does so explicitly.
	explicit := op == "unprohibit" || op == "permanentLink" || op == "renameFile" || op == "renameDir"
	if !explicit {
		for d, md := range h.m.sem {
			for t := range before[d] {
				if !md.prohibited[t] {
					h.t.Fatalf("step %d (%s): prohibition %s in %s lost across fault", h.steps, op, t, d)
				}
			}
		}
	}
}

// relearn rebuilds the oracle's user-level state from the SUT's public
// API after a fault, then derives the expected transient sets. The
// volume has just been reindexed, so current files are the indexed
// view.
func (h *mcHarness) relearn() {
	h.t.Helper()
	m := newMCModel()
	m.nameSeq = h.m.nameSeq
	m.dirs = nil
	err := vfs.Walk(h.fs, "/docs", func(p string, info vfs.Info) error {
		switch info.Type {
		case vfs.TypeDir:
			m.dirs = append(m.dirs, p)
		case vfs.TypeFile:
			data, err := h.fs.ReadFile(p)
			if err != nil {
				return err
			}
			m.files[p] = string(data)
		}
		return nil
	})
	if err != nil {
		h.t.Fatalf("relearn walk: %v", err)
	}
	sort.Strings(m.dirs)
	for _, d := range h.fs.SemanticDirs() {
		md := newMCDir()
		q, err := h.fs.Query(d)
		if err != nil {
			h.t.Fatalf("relearn query of %s: %v", d, err)
		}
		md.query = q
		links, err := h.fs.Links(d)
		if err != nil {
			h.t.Fatalf("relearn links of %s: %v", d, err)
		}
		for _, l := range links {
			switch l.Class {
			case Permanent:
				md.permanent[l.Target] = true
			case Prohibited:
				md.prohibited[l.Target] = true
			}
		}
		m.sem[d] = md
	}
	m.reindex() // indexed := files, expected transients derived
	h.m = m
}

// assertConsistent is the heart of the harness: the complete
// classified link state of every semantic directory must equal the
// oracle's, and the volume's own audit must be clean.
func (h *mcHarness) assertConsistent(op string) {
	h.t.Helper()
	if problems := h.fs.CheckConsistency(); len(problems) > 0 {
		h.t.Fatalf("step %d (%s): CheckConsistency: %v", h.steps, op, problems)
	}
	sutSem := h.fs.SemanticDirs()
	wantSem := make([]string, 0, len(h.m.sem))
	for d := range h.m.sem {
		wantSem = append(wantSem, d)
	}
	sort.Strings(wantSem)
	if !reflect.DeepEqual(sutSem, wantSem) {
		h.t.Fatalf("step %d (%s): semantic dirs = %v, want %v", h.steps, op, sutSem, wantSem)
	}
	for d, md := range h.m.sem {
		links, err := h.fs.Links(d)
		if err != nil {
			h.t.Fatalf("step %d (%s): Links(%s): %v", h.steps, op, d, err)
		}
		gotTrans, gotPerm, gotProh := map[string]bool{}, map[string]bool{}, map[string]bool{}
		for _, l := range links {
			switch l.Class {
			case Transient:
				gotTrans[l.Target] = true
			case Permanent:
				gotPerm[l.Target] = true
			case Prohibited:
				gotProh[l.Target] = true
			}
		}
		// I2: transient completeness (and no extras).
		if !reflect.DeepEqual(gotTrans, md.trans) {
			h.t.Fatalf("step %d (%s): %s transient = %v, want %v", h.steps, op, d, keys(gotTrans), keys(md.trans))
		}
		if !reflect.DeepEqual(gotPerm, md.permanent) {
			h.t.Fatalf("step %d (%s): %s permanent = %v, want %v", h.steps, op, d, keys(gotPerm), keys(md.permanent))
		}
		// I3: prohibited exactly as recorded, and never linked.
		if !reflect.DeepEqual(gotProh, md.prohibited) {
			h.t.Fatalf("step %d (%s): %s prohibited = %v, want %v", h.steps, op, d, keys(gotProh), keys(md.prohibited))
		}
		for t := range gotProh {
			if gotTrans[t] || gotPerm[t] {
				h.t.Fatalf("step %d (%s): %s: prohibited %s is linked", h.steps, op, d, t)
			}
		}
		// I1: every transient target lies in the parent-provided scope
		// (the indexed corpus, for a root-level directory).
		for t := range gotTrans {
			if _, ok := h.m.indexed[t]; !ok {
				h.t.Fatalf("step %d (%s): %s: transient %s outside indexed scope", h.steps, op, d, t)
			}
		}
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// mcSeeds are the per-run seeds; ≥ 8 per the acceptance criteria.
var mcSeeds = []int64{1, 2, 3, 4, 5, 6, 7, 8}

const mcStepsPerSeed = 250

// mcSubstrates names the substrate families every model-check walk
// runs over: the MemFS baseline and the content-addressed cas.FS.
var mcSubstrates = []struct {
	name string
	mk   func() vfs.FileSystem
}{
	{"memfs", func() vfs.FileSystem { return vfs.New() }},
	{"cas", func() vfs.FileSystem { return cas.New(nil) }},
}

// TestModelCheckFaultFree pins the oracle itself: with no faults the
// SUT and the model must stay in lock-step for the whole walk.
func TestModelCheckFaultFree(t *testing.T) {
	for _, sub := range mcSubstrates {
		for _, seed := range mcSeeds {
			sub, seed := sub, seed
			t.Run(fmt.Sprintf("%s/seed%d", sub.name, seed), func(t *testing.T) {
				t.Parallel()
				h := newMCHarnessOn(t, seed, 0, sub.mk())
				for i := 0; i < mcStepsPerSeed; i++ {
					h.step()
				}
			})
		}
	}
}

// TestModelCheckWithInjectedErrors runs the same walk with a 5% error
// rate on every substrate operation: each failed op is followed by a
// settle (Reindex) and a full re-assertion, so scope consistency is
// proven restorable after every injected fault.
func TestModelCheckWithInjectedErrors(t *testing.T) {
	for _, sub := range mcSubstrates {
		for _, seed := range mcSeeds {
			sub, seed := sub, seed
			t.Run(fmt.Sprintf("%s/seed%d", sub.name, seed), func(t *testing.T) {
				t.Parallel()
				h := newMCHarnessOn(t, seed, 0.05, sub.mk())
				for i := 0; i < mcStepsPerSeed; i++ {
					h.step()
				}
				st := h.fault.Stats()
				if st.Ops == 0 {
					t.Fatal("fault substrate counted no operations")
				}
				if st.Injected == 0 {
					t.Fatalf("no faults injected over %d substrate ops at 5%%", st.Ops)
				}
				var perOp uint64
				for _, n := range st.Errors {
					perOp += n
				}
				if perOp != st.Injected {
					t.Fatalf("per-op injected counters (%d) disagree with total (%d)", perOp, st.Injected)
				}
			})
		}
	}
}

// TestModelCheckCrashRecovery injects a crash at every save point: the
// volume is saved, a torn copy of that save is proven unloadable, the
// live store is frozen mid-sequence (ErrCrashed), and recovery goes
// through LoadVolume + Reindex on the last good image. The walk then
// continues on the recovered volume, with the oracle rolled back to
// its state at the save — so all three invariants are re-proven after
// every crash, including the lost-window semantics.
func TestModelCheckCrashRecovery(t *testing.T) {
	const savePointEvery = 25
	for _, sub := range mcSubstrates {
		for _, seed := range mcSeeds {
			sub, seed := sub, seed
			t.Run(fmt.Sprintf("%s/seed%d", sub.name, seed), func(t *testing.T) {
				t.Parallel()
				h := newMCHarnessOn(t, seed, 0, sub.mk())
				for i := 0; i < mcStepsPerSeed; i++ {
					h.step()
					if i%savePointEvery != savePointEvery-1 {
						continue
					}
					// Save point: capture a good image and the oracle.
					var good bytes.Buffer
					if err := h.fs.SaveVolume(&good); err != nil {
						t.Fatalf("step %d: save: %v", i, err)
					}
					saved := h.m.clone()

					// A crash tears the concurrent save at a random point;
					// the torn image must never load.
					var torn bytes.Buffer
					limit := h.rng.Intn(good.Len())
					if err := h.fs.SaveVolume(&vfs.CrashWriter{W: &torn, Limit: limit}); err == nil {
						t.Fatalf("step %d: torn save (limit %d) reported success", i, limit)
					}
					if _, err := LoadVolume(bytes.NewReader(torn.Bytes()), Options{}); err == nil {
						t.Fatalf("step %d: torn image (limit %d of %d) loaded", i, limit, good.Len())
					}

					// The machine dies a few operations later: every
					// subsequent substrate op must fail, losing the window
					// since the save.
					if h.fault != nil {
						h.fault.CrashAfter(uint64(1 + h.rng.Intn(20)))
						for h.fault != nil && !h.fault.Crashed() {
							p := vfs.Join("/docs", h.freshName("w")+".txt")
							if err := h.fs.WriteFile(p, []byte(h.randContent())); err != nil {
								if !errors.Is(err, vfs.ErrCrashed) && !errors.Is(err, vfs.ErrInjected) {
									t.Fatalf("step %d: pre-crash write: %v", i, err)
								}
								break
							}
						}
						if err := h.fs.Sync("/"); err == nil {
							t.Fatalf("step %d: Sync succeeded on crashed store", i)
						}
					}

					// Recovery: LoadVolume + Reindex from the good image.
					recovered, err := LoadVolume(bytes.NewReader(good.Bytes()), Options{})
					if err != nil {
						t.Fatalf("step %d: recovery load: %v", i, err)
					}
					if _, err := recovered.Reindex("/"); err != nil {
						t.Fatalf("step %d: recovery reindex: %v", i, err)
					}
					h.fs = recovered
					h.fault = nil // recovered volume runs on a fresh substrate of the image's choosing
					h.m = saved
					// The restored volume was fully reindexed on load, so
					// the oracle's indexed view catches up to its files.
					h.m.reindex()
					h.assertConsistent("recovery")
				}
			})
		}
	}
}
