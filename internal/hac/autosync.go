package hac

import (
	"sync"

	"hacfs/internal/vfs"
)

// autoSyncSet tracks path prefixes with immediate data consistency.
type autoSyncSet struct {
	mu       sync.RWMutex
	prefixes map[string]bool
}

func (s *autoSyncSet) covers(path string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for p := range s.prefixes {
		if vfs.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

// EnableAutoSync makes file changes under prefix take effect
// immediately: the changed file is re-indexed and scope consistency
// restored as part of the mutating call, instead of waiting for the
// next Reindex. This is §2.4's "users can decide to update certain
// semantic directories as soon as new mail comes in, but not when an
// application modifies some files" — enable it for the mail spool,
// leave the rest lazy.
func (fs *FS) EnableAutoSync(prefix string) error {
	clean, err := vfs.Clean(prefix)
	if err != nil {
		return &vfs.PathError{Op: "autosync", Path: prefix, Err: err}
	}
	fs.autoSync.mu.Lock()
	if fs.autoSync.prefixes == nil {
		fs.autoSync.prefixes = make(map[string]bool)
	}
	fs.autoSync.prefixes[clean] = true
	fs.autoSync.mu.Unlock()
	return nil
}

// DisableAutoSync removes a prefix registered with EnableAutoSync.
func (fs *FS) DisableAutoSync(prefix string) {
	clean, err := vfs.Clean(prefix)
	if err != nil {
		return
	}
	fs.autoSync.mu.Lock()
	delete(fs.autoSync.prefixes, clean)
	fs.autoSync.mu.Unlock()
}

// autoSyncTouch is called after a successful mutation of the file at
// path (removed reports deletions). If the path is covered by an
// auto-sync prefix, the index entry is refreshed and every semantic
// directory re-evaluated. Callers must not hold fs.mu.
func (fs *FS) autoSyncTouch(path string, removed bool) {
	if !fs.autoSync.covers(path) {
		return
	}
	if removed {
		fs.ix.Remove(path)
	} else {
		info, err := fs.under.Stat(path)
		if err != nil || info.IsDir() {
			return
		}
		data, err := fs.under.ReadFile(path)
		if err != nil {
			return
		}
		fs.ix.AddWithTime(path, data, info.ModTime)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.gen++ // the index changed; staged engine results are stale
	// The change can affect any semantic directory whose scope covers
	// the file; re-evaluate everything in dependency order.
	_ = fs.syncAllLocked()
}
