package hac

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"hacfs/internal/vfs"
)

func TestMakeSyntactic(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/sel/apple2.txt"); err != nil { // a prohibition
		t.Fatal(err)
	}
	before, _ := fs.ReadDir("/sel")

	if err := fs.MakeSyntactic("/sel"); err != nil {
		t.Fatal(err)
	}
	if fs.IsSemantic("/sel") {
		t.Fatal("still semantic")
	}
	// Links kept as plain symlinks.
	after, _ := fs.ReadDir("/sel")
	if len(after) != len(before) {
		t.Fatalf("links changed: %d → %d", len(before), len(after))
	}
	// No query anymore.
	if _, err := fs.Query("/sel"); !errors.Is(err, ErrNotSemantic) {
		t.Fatalf("Query err = %v", err)
	}
	// Consistency passes leave it alone now.
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	final, _ := fs.ReadDir("/sel")
	if len(final) != len(after) {
		t.Fatal("reindex touched a syntactic directory's links")
	}
	// And CBA can be re-added at any time (the paper's promise).
	if err := fs.MakeSemantic("/sel", "cherry"); err != nil {
		t.Fatal(err)
	}
	// Old links were adopted as permanent; cherry matches joined them.
	targets := targetsOf(t, fs, "/sel")
	if len(targets) < len(after) {
		t.Fatalf("adoption lost links: %v", targets)
	}
	if err := fs.MakeSyntactic("/docs"); !errors.Is(err, ErrNotSemantic) {
		t.Fatalf("MakeSyntactic on syntactic dir err = %v", err)
	}
}

// TestCoworkerSharing reproduces §3.2: "Other users (e.g., coworkers on
// the same project) can use syntactic mount points to browse through
// one user's personal classification ... and retrieve relevant
// information."
func TestCoworkerSharing(t *testing.T) {
	// Alice curates a fingerprint collection in her HAC volume.
	alice := newTestFS(t)
	if err := alice.MkSemDir("/fingerprint", "apple OR cherry"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Remove("/fingerprint/m2.txt"); err != nil { // her pruning
		t.Fatal(err)
	}

	// Bob syntactically mounts Alice's volume into his own substrate.
	bobUnder := vfs.New()
	bob := New(bobUnder, Options{})
	if err := bob.MkdirAll("/alice"); err != nil {
		t.Fatal(err)
	}
	if err := bobUnder.Mount("/alice", alice); err != nil {
		t.Fatal(err)
	}

	// Bob browses Alice's personal classification without running any
	// searches himself.
	entries, err := bob.ReadDir("/alice/fingerprint")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no links visible through the mount")
	}
	for _, e := range entries {
		if strings.Contains(e.Name, "m2") {
			t.Fatal("Alice's pruning not reflected")
		}
	}
	// He can read a result through her links.
	data, err := bob.ReadFile("/alice/fingerprint/apple1.txt")
	if err != nil || string(data) != "apple fruit red" {
		t.Fatalf("read through shared classification = %q, %v", data, err)
	}
	// Alice keeps curating; Bob sees it live.
	if err := alice.Symlink("/docs/banana.txt", "/fingerprint/extra"); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.ReadFile("/alice/fingerprint/extra"); err != nil {
		t.Fatalf("live update invisible: %v", err)
	}
}

// TestConcurrentUse hammers one volume from several goroutines; run
// with -race.
func TestConcurrentUse(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				switch g % 3 {
				case 0: // writer
					p := "/docs/w" + string(rune('a'+g)) + ".txt"
					if err := fs.WriteFile(p, []byte("apple concurrent")); err != nil {
						t.Errorf("write: %v", err)
						return
					}
					if _, err := fs.Stat(p); err != nil {
						t.Errorf("stat: %v", err)
						return
					}
				case 1: // searcher + syncer
					if _, err := fs.SearchPaths("apple", "/"); err != nil {
						t.Errorf("search: %v", err)
						return
					}
					if err := fs.Sync("/sel"); err != nil {
						t.Errorf("sync: %v", err)
						return
					}
				case 2: // reader + reindexer
					if _, err := fs.ReadDir("/sel"); err != nil {
						t.Errorf("readdir: %v", err)
						return
					}
					if i%10 == 0 {
						if _, err := fs.Reindex("/docs"); err != nil {
							t.Errorf("reindex: %v", err)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	// The volume is still coherent.
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	if got := targetsOf(t, fs, "/sel"); len(got) < 3 {
		t.Fatalf("targets after concurrency = %v", got)
	}
}
