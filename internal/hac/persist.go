package hac

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"hacfs/internal/vfs"
)

// Volume persistence. The paper's HAC stores its per-directory
// structures on disk alongside the file system; here the whole volume —
// substrate tree plus HAC's semantic metadata — serializes to one
// stream. The index is not stored: it is rebuilt by the Reindex pass
// that loading performs (exactly the paper's recovery story, where
// reindexing settles all consistency).
//
// The on-disk image is crash-safe (DESIGN.md §8): a fixed header
// carries a magic number, a format version and the payload length, the
// gob payload follows, and a CRC-32C trailer covers the payload. A
// torn or bit-flipped image fails the length or checksum test and
// LoadVolume reports a typed *vfs.PathError wrapping ErrCorruptVolume
// instead of feeding garbage to gob. SaveVolumeFile writes through a
// temp file, fsyncs and renames, so a crash during save leaves the
// previous image intact.

const volumeVersion = 2

// volumeMagic opens every volume image ("HACV" plus a format byte).
var volumeMagic = [4]byte{'H', 'A', 'C', 'V'}

// maxVolumePayload bounds the claimed payload length so a corrupt
// header cannot demand an absurd allocation.
const maxVolumePayload = 1 << 30

// volumeCRC is the CRC-32C (Castagnoli) table used for the trailer.
var volumeCRC = crc32.MakeTable(crc32.Castagnoli)

// Persistence sentinels, matchable with errors.Is through the typed
// *vfs.PathError that SaveVolume and LoadVolume return.
var (
	// ErrCorruptVolume marks a volume image that is truncated,
	// bit-flipped, version-skewed or otherwise undecodable.
	ErrCorruptVolume = errors.New("hac: corrupt volume image")
	// ErrNoSnapshot means the substrate cannot produce a snapshot, so
	// the volume cannot be saved from this layer.
	ErrNoSnapshot = errors.New("hac: substrate cannot snapshot")
)

// volErr wraps persistence failures in the typed error shape of the
// rest of the API (errors.As(*vfs.PathError), errors.Is(sentinel)).
func volErr(op string, err error) error {
	return &vfs.PathError{Op: op, Path: "volume", Err: err}
}

type volumeImage struct {
	Version int
	Nodes   []vfs.SnapNode
	Dirs    []dirImage
}

// dirImage is the persisted form of one directory's HAC state. The
// query is stored in display form (dir: references as path names) and
// re-bound on load, since UIDs are an in-memory notion.
type dirImage struct {
	Path       string
	Semantic   bool
	Query      string
	Class      map[string]int    // target → LinkClass (transient/permanent)
	LinkNames  map[string]string // target → symlink base name
	Prohibited []string
}

// SaveVolume writes the volume — files, directories, links, queries and
// link classifications — to w as a checksummed, length-framed image.
// The substrate must implement vfs.Snapshotter (MemFS does; wrappers
// like vfs.FaultFS delegate); otherwise a *vfs.PathError wrapping
// ErrNoSnapshot is returned.
func (fs *FS) SaveVolume(w io.Writer) error {
	snapper, ok := fs.under.(vfs.Snapshotter)
	if !ok {
		return volErr("savevolume", fmt.Errorf("%w: substrate %T", ErrNoSnapshot, fs.under))
	}
	nodes := snapper.Snapshot()
	if len(nodes) == 0 {
		return volErr("savevolume", fmt.Errorf("%w: substrate %T produced no snapshot", ErrNoSnapshot, fs.under))
	}
	img := volumeImage{Version: volumeVersion, Nodes: nodes}

	fs.mu.RLock()
	uids := make([]uint64, 0, len(fs.dirs))
	for uid := range fs.dirs {
		uids = append(uids, uid)
	}
	sort.Slice(uids, func(i, j int) bool { return uids[i] < uids[j] })
	for _, uid := range uids {
		ds := fs.dirs[uid]
		p, ok := fs.pathOfLocked(uid)
		if !ok {
			continue
		}
		di := dirImage{Path: p, Semantic: ds.semantic}
		if ds.semantic {
			di.Class = make(map[string]int, len(ds.class))
			di.LinkNames = make(map[string]string, len(ds.linkName))
			for t, c := range ds.class {
				di.Class[t] = int(c)
				di.LinkNames[t] = ds.linkName[t]
			}
			for t := range ds.prohibited {
				di.Prohibited = append(di.Prohibited, t)
			}
			sort.Strings(di.Prohibited)
		}
		img.Dirs = append(img.Dirs, di)
	}
	// Queries in display form, which requires the lock released per the
	// QueryDisplay API; collect paths first.
	type pending struct {
		idx  int
		path string
	}
	var queries []pending
	for i, di := range img.Dirs {
		if di.Semantic {
			queries = append(queries, pending{i, di.Path})
		}
	}
	fs.mu.RUnlock()

	for _, q := range queries {
		disp, err := fs.QueryDisplay(q.path)
		if err != nil {
			return volErr("savevolume", fmt.Errorf("serializing query of %s: %w", q.path, err))
		}
		img.Dirs[q.idx].Query = disp
	}

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&img); err != nil {
		return volErr("savevolume", fmt.Errorf("encoding volume: %w", err))
	}

	// Frame: magic | u16 version | u64 length | payload | u32 CRC-32C.
	var hdr [14]byte
	copy(hdr[:4], volumeMagic[:])
	binary.BigEndian.PutUint16(hdr[4:6], volumeVersion)
	binary.BigEndian.PutUint64(hdr[6:14], uint64(payload.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return volErr("savevolume", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return volErr("savevolume", err)
	}
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], crc32.Checksum(payload.Bytes(), volumeCRC))
	if _, err := w.Write(trailer[:]); err != nil {
		return volErr("savevolume", err)
	}
	return nil
}

// readVolumePayload reads and verifies one framed image, returning the
// gob payload. Every failure wraps ErrCorruptVolume.
func readVolumePayload(r io.Reader) ([]byte, error) {
	var hdr [14]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorruptVolume, err)
	}
	if !bytes.Equal(hdr[:4], volumeMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorruptVolume, hdr[:4])
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != volumeVersion {
		return nil, fmt.Errorf("%w: unsupported volume version %d", ErrCorruptVolume, v)
	}
	length := binary.BigEndian.Uint64(hdr[6:14])
	if length > maxVolumePayload {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrCorruptVolume, length)
	}
	payload := make([]byte, int(length))
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload: %v", ErrCorruptVolume, err)
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return nil, fmt.Errorf("%w: missing checksum trailer: %v", ErrCorruptVolume, err)
	}
	if got, want := crc32.Checksum(payload, volumeCRC), binary.BigEndian.Uint32(trailer[:]); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (%08x != %08x)", ErrCorruptVolume, got, want)
	}
	return payload, nil
}

// LoadVolume reconstructs a volume saved by SaveVolume: the image frame
// is verified (length and CRC), the substrate tree restored, semantic
// metadata re-attached, queries re-bound, and a full Reindex run so the
// index and all transient links are consistent. Corrupt or truncated
// images — including any input that would panic the gob decoder — fail
// with a *vfs.PathError wrapping ErrCorruptVolume.
func LoadVolume(r io.Reader, opts Options) (fs *FS, err error) {
	defer func() {
		// gob can panic on adversarial input; surface it as corruption
		// rather than crashing the caller.
		if p := recover(); p != nil {
			fs, err = nil, volErr("loadvolume", fmt.Errorf("%w: decode panic: %v", ErrCorruptVolume, p))
		}
	}()
	payload, err := readVolumePayload(r)
	if err != nil {
		return nil, volErr("loadvolume", err)
	}
	var img volumeImage
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&img); err != nil {
		return nil, volErr("loadvolume", fmt.Errorf("%w: decoding volume: %v", ErrCorruptVolume, err))
	}
	if img.Version != volumeVersion {
		return nil, volErr("loadvolume", fmt.Errorf("%w: unsupported volume version %d", ErrCorruptVolume, img.Version))
	}
	mem, err := vfs.FromSnapshot(img.Nodes)
	if err != nil {
		return nil, volErr("loadvolume", fmt.Errorf("%w: %v", ErrCorruptVolume, err))
	}
	fs = New(mem, opts)

	// Register every directory first, so queries can reference any of
	// them during binding.
	fs.mu.Lock()
	for _, di := range img.Dirs {
		fs.registerDirLocked(di.Path)
	}
	// Restore semantic state.
	for _, di := range img.Dirs {
		if !di.Semantic {
			continue
		}
		ds, _ := fs.stateAtLocked(di.Path)
		ds.semantic = true
		for t, c := range di.Class {
			ds.class[t] = LinkClass(c)
			if name, ok := di.LinkNames[t]; ok {
				ds.linkName[t] = name
			}
		}
		for _, t := range di.Prohibited {
			ds.prohibited[t] = true
		}
	}
	// Bind queries (display form → UIDs) and dependency edges.
	for _, di := range img.Dirs {
		if !di.Semantic {
			continue
		}
		ds, _ := fs.stateAtLocked(di.Path)
		ast, err := parseQuery(di.Query)
		if err != nil {
			fs.mu.Unlock()
			return nil, volErr("loadvolume", fmt.Errorf("%w: re-parsing query of %s: %v", ErrCorruptVolume, di.Path, err))
		}
		if err := fs.installQueryLocked(ds, di.Path, ast); err != nil {
			fs.mu.Unlock()
			return nil, volErr("loadvolume", fmt.Errorf("%w: re-binding query of %s: %v", ErrCorruptVolume, di.Path, err))
		}
	}
	fs.mu.Unlock()

	// Rebuild the index and settle every consistency, as the paper's
	// reindex does.
	if _, err := fs.Reindex("/"); err != nil {
		return nil, err
	}
	return fs, nil
}

// SaveVolumeFile atomically saves the volume to path: the image is
// written to a temporary file in the same directory, fsynced, and
// renamed over path, then the directory is fsynced. A crash at any
// point leaves either the old image or the new one — never a torn mix.
func (fs *FS) SaveVolumeFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return volErr("savevolume", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := fs.SaveVolume(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(volErr("savevolume", err))
	}
	if err := tmp.Close(); err != nil {
		return fail(volErr("savevolume", err))
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fail(volErr("savevolume", err))
	}
	// Persist the rename itself. Some platforms refuse to fsync
	// directories; the rename is still atomic there.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// LoadVolumeFile loads a volume image from path (see LoadVolume).
func LoadVolumeFile(path string, opts Options) (*FS, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, volErr("loadvolume", err)
	}
	defer f.Close()
	return LoadVolume(f, opts)
}
