package hac

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"hacfs/internal/vfs"
)

// Volume persistence. The paper's HAC stores its per-directory
// structures on disk alongside the file system; here the whole volume —
// substrate tree plus HAC's semantic metadata — serializes to one
// stream. The index is not stored: it is rebuilt by the Reindex pass
// that loading performs (exactly the paper's recovery story, where
// reindexing settles all consistency).

const volumeVersion = 1

type volumeImage struct {
	Version int
	Nodes   []vfs.SnapNode
	Dirs    []dirImage
}

// dirImage is the persisted form of one directory's HAC state. The
// query is stored in display form (dir: references as path names) and
// re-bound on load, since UIDs are an in-memory notion.
type dirImage struct {
	Path       string
	Semantic   bool
	Query      string
	Class      map[string]int    // target → LinkClass (transient/permanent)
	LinkNames  map[string]string // target → symlink base name
	Prohibited []string
}

// SaveVolume writes the volume — files, directories, links, queries and
// link classifications — to w.
func (fs *FS) SaveVolume(w io.Writer) error {
	mem, ok := fs.under.(*vfs.MemFS)
	if !ok {
		return fmt.Errorf("hac: SaveVolume requires a MemFS substrate, not %T", fs.under)
	}
	img := volumeImage{Version: volumeVersion, Nodes: mem.Snapshot()}

	fs.mu.RLock()
	uids := make([]uint64, 0, len(fs.dirs))
	for uid := range fs.dirs {
		uids = append(uids, uid)
	}
	sort.Slice(uids, func(i, j int) bool { return uids[i] < uids[j] })
	for _, uid := range uids {
		ds := fs.dirs[uid]
		p, ok := fs.pathOfLocked(uid)
		if !ok {
			continue
		}
		di := dirImage{Path: p, Semantic: ds.semantic}
		if ds.semantic {
			di.Class = make(map[string]int, len(ds.class))
			di.LinkNames = make(map[string]string, len(ds.linkName))
			for t, c := range ds.class {
				di.Class[t] = int(c)
				di.LinkNames[t] = ds.linkName[t]
			}
			for t := range ds.prohibited {
				di.Prohibited = append(di.Prohibited, t)
			}
			sort.Strings(di.Prohibited)
		}
		img.Dirs = append(img.Dirs, di)
	}
	// Queries in display form, which requires the lock released per the
	// QueryDisplay API; collect paths first.
	type pending struct {
		idx  int
		path string
	}
	var queries []pending
	for i, di := range img.Dirs {
		if di.Semantic {
			queries = append(queries, pending{i, di.Path})
		}
	}
	fs.mu.RUnlock()

	for _, q := range queries {
		disp, err := fs.QueryDisplay(q.path)
		if err != nil {
			return fmt.Errorf("hac: serializing query of %s: %w", q.path, err)
		}
		img.Dirs[q.idx].Query = disp
	}

	if err := gob.NewEncoder(w).Encode(&img); err != nil {
		return fmt.Errorf("hac: encoding volume: %w", err)
	}
	return nil
}

// LoadVolume reconstructs a volume saved by SaveVolume: the substrate
// tree is restored, semantic metadata re-attached, queries re-bound,
// and a full Reindex run so the index and all transient links are
// consistent.
func LoadVolume(r io.Reader, opts Options) (*FS, error) {
	var img volumeImage
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("hac: decoding volume: %w", err)
	}
	if img.Version != volumeVersion {
		return nil, fmt.Errorf("hac: unsupported volume version %d", img.Version)
	}
	mem, err := vfs.FromSnapshot(img.Nodes)
	if err != nil {
		return nil, err
	}
	fs := New(mem, opts)

	// Register every directory first, so queries can reference any of
	// them during binding.
	fs.mu.Lock()
	for _, di := range img.Dirs {
		fs.registerDirLocked(di.Path)
	}
	// Restore semantic state.
	for _, di := range img.Dirs {
		if !di.Semantic {
			continue
		}
		ds, _ := fs.stateAtLocked(di.Path)
		ds.semantic = true
		for t, c := range di.Class {
			ds.class[t] = LinkClass(c)
			if name, ok := di.LinkNames[t]; ok {
				ds.linkName[t] = name
			}
		}
		for _, t := range di.Prohibited {
			ds.prohibited[t] = true
		}
	}
	// Bind queries (display form → UIDs) and dependency edges.
	for _, di := range img.Dirs {
		if !di.Semantic {
			continue
		}
		ds, _ := fs.stateAtLocked(di.Path)
		ast, err := parseQuery(di.Query)
		if err != nil {
			fs.mu.Unlock()
			return nil, fmt.Errorf("hac: re-parsing query of %s: %w", di.Path, err)
		}
		if err := fs.installQueryLocked(ds, di.Path, ast); err != nil {
			fs.mu.Unlock()
			return nil, fmt.Errorf("hac: re-binding query of %s: %w", di.Path, err)
		}
	}
	fs.mu.Unlock()

	// Rebuild the index and settle every consistency, as the paper's
	// reindex does.
	if _, err := fs.Reindex("/"); err != nil {
		return nil, err
	}
	return fs, nil
}
