package hac

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"hacfs/internal/index"
	"hacfs/internal/vfs"
	"hacfs/internal/vfs/cas"
)

// Volume persistence. The paper's HAC stores its per-directory
// structures on disk alongside the file system; here the whole volume —
// substrate tree plus HAC's semantic metadata — serializes to one
// stream. Since version 3 the image also carries the segmented index
// (index.Save's per-segment blocks appended after the main frame), so a
// load resumes from the saved postings and the settling Reindex only
// re-tokenizes files that actually changed. Version-2 images — which
// stored no index — still load; the Reindex rebuilds it from scratch,
// exactly the old recovery story.
//
// The on-disk image is crash-safe (DESIGN.md §8): a fixed header
// carries a magic number, a format version and the payload length, the
// gob payload follows, and a CRC-32C trailer covers the payload. A
// torn or bit-flipped main frame fails the length or checksum test and
// LoadVolume reports a typed *vfs.PathError wrapping ErrCorruptVolume
// instead of feeding garbage to gob. The appended index section is
// framed per segment: damage that loses the stream position (a torn
// save) rejects the whole image — recovery proceeds from the previous
// good one — while a bit flip contained to one segment block costs only
// that segment, which the load-time Reindex restores from the file
// tree. SaveVolumeFile writes through a temp file, fsyncs and renames,
// so a crash during save leaves the previous image intact.

const (
	casVolumeVersion    = 4 // content-addressed images: manifest + blob section + index section
	volumeVersion       = 3
	legacyVolumeVersion = 2 // pre-segmented-index images, no index section
)

// volumeMagic opens every volume image ("HACV" plus a format byte).
var volumeMagic = [4]byte{'H', 'A', 'C', 'V'}

// maxVolumePayload bounds the claimed payload length so a corrupt
// header cannot demand an absurd allocation.
const maxVolumePayload = 1 << 30

// volumeCRC is the CRC-32C (Castagnoli) table used for the trailer.
var volumeCRC = crc32.MakeTable(crc32.Castagnoli)

// Persistence sentinels, matchable with errors.Is through the typed
// *vfs.PathError that SaveVolume and LoadVolume return.
var (
	// ErrCorruptVolume marks a volume image that is truncated,
	// bit-flipped, version-skewed or otherwise undecodable. It aliases
	// vfs.ErrCorruptVolume — the same sentinel the index layer wraps —
	// so one errors.Is test covers damage found at either layer.
	ErrCorruptVolume = vfs.ErrCorruptVolume
	// ErrNoSnapshot means the substrate cannot produce a snapshot, so
	// the volume cannot be saved from this layer.
	ErrNoSnapshot = errors.New("hac: substrate cannot snapshot")
)

// volErr wraps persistence failures in the typed error shape of the
// rest of the API (errors.As(*vfs.PathError), errors.Is(sentinel)).
func volErr(op string, err error) error {
	return &vfs.PathError{Op: op, Path: "volume", Err: err}
}

type volumeImage struct {
	Version int
	Nodes   []vfs.SnapNode // v2/v3: full tree with content inline
	Dirs    []dirImage
	// Manifest is the encoded cas.Manifest of a version-4 image: the
	// tree with file content referenced by hash. The blobs themselves
	// follow the main frame in the blob section, each stored once no
	// matter how many files (or tenants at load time, via a shared
	// store) reference it.
	Manifest []byte
}

// dirImage is the persisted form of one directory's HAC state. The
// query is stored in display form (dir: references as path names) and
// re-bound on load, since UIDs are an in-memory notion.
type dirImage struct {
	Path       string
	Semantic   bool
	Query      string
	Class      map[string]int    // target → LinkClass (transient/permanent)
	LinkNames  map[string]string // target → symlink base name
	Prohibited []string
}

// casSubstrate unwraps layering (vfs.FaultFS and anything else exposing
// Under()) down to a content-addressed substrate, or nil.
func casSubstrate(under vfs.FileSystem) *cas.FS {
	for {
		if c, ok := under.(*cas.FS); ok {
			return c
		}
		u, ok := under.(interface{ Under() vfs.FileSystem })
		if !ok {
			return nil
		}
		under = u.Under()
	}
}

// CASManifest returns the live manifest of the volume's
// content-addressed substrate — the send half of manifest-diff
// replication (remotefs.BlobSource). Volumes on other substrates return
// vfs.ErrUnsupported, which tells a syncing peer to fall back to
// full-content copy.
func (fs *FS) CASManifest() (*cas.Manifest, error) {
	cfs := casSubstrate(fs.under)
	if cfs == nil {
		return nil, &vfs.PathError{Op: "manifest", Path: "/", Err: vfs.ErrUnsupported}
	}
	return cfs.Manifest(), nil
}

// CASBlobs returns the content of each requested blob in request order
// (remotefs.BlobSource). A hash the store no longer holds — the peer's
// manifest raced a local rewrite — is reported as vfs.ErrNotExist; the
// peer refetches the manifest and retries.
func (fs *FS) CASBlobs(hashes []cas.Hash) ([][]byte, error) {
	cfs := casSubstrate(fs.under)
	if cfs == nil {
		return nil, &vfs.PathError{Op: "blobs", Path: "/", Err: vfs.ErrUnsupported}
	}
	store := cfs.Store()
	out := make([][]byte, len(hashes))
	for i, h := range hashes {
		data, ok := store.Get(h)
		if !ok {
			return nil, &vfs.PathError{Op: "blobs", Path: h.String(), Err: vfs.ErrNotExist}
		}
		out[i] = data
	}
	return out, nil
}

// SaveVolume writes the volume — files, directories, links, queries and
// link classifications — to w as a checksummed, length-framed image.
//
// On a content-addressed substrate (cas.FS, possibly wrapped in
// vfs.FaultFS) the image is version 4: the main frame carries the
// manifest (paths and hashes, no content) and a blob section follows
// with each distinct blob exactly once — files sharing content, however
// many, cost one copy, and clean files cost no re-hashing (their hashes
// are cached on the tree). Other substrates must implement
// vfs.Snapshotter (MemFS does) and save the inline version-3 form;
// otherwise a *vfs.PathError wrapping ErrNoSnapshot is returned.
func (fs *FS) SaveVolume(w io.Writer) error {
	var img volumeImage
	var manifest *cas.Manifest
	var blobs map[cas.Hash][]byte
	if cfs := casSubstrate(fs.under); cfs != nil {
		manifest, blobs = cfs.ImageData()
		img.Version = casVolumeVersion
		img.Manifest = manifest.EncodeBinary()
	} else {
		snapper, ok := fs.under.(vfs.Snapshotter)
		if !ok {
			return volErr("savevolume", fmt.Errorf("%w: substrate %T", ErrNoSnapshot, fs.under))
		}
		nodes := snapper.Snapshot()
		if len(nodes) == 0 {
			return volErr("savevolume", fmt.Errorf("%w: substrate %T produced no snapshot", ErrNoSnapshot, fs.under))
		}
		img.Version = volumeVersion
		img.Nodes = nodes
	}

	fs.mu.RLock()
	uids := make([]uint64, 0, len(fs.dirs))
	for uid := range fs.dirs {
		uids = append(uids, uid)
	}
	sort.Slice(uids, func(i, j int) bool { return uids[i] < uids[j] })
	for _, uid := range uids {
		ds := fs.dirs[uid]
		p, ok := fs.pathOfLocked(uid)
		if !ok {
			continue
		}
		di := dirImage{Path: p, Semantic: ds.semantic}
		if ds.semantic {
			di.Class = make(map[string]int, len(ds.class))
			di.LinkNames = make(map[string]string, len(ds.linkName))
			for t, c := range ds.class {
				di.Class[t] = int(c)
				di.LinkNames[t] = ds.linkName[t]
			}
			for t := range ds.prohibited {
				di.Prohibited = append(di.Prohibited, t)
			}
			sort.Strings(di.Prohibited)
		}
		img.Dirs = append(img.Dirs, di)
	}
	// Queries in display form, which requires the lock released per the
	// QueryDisplay API; collect paths first.
	type pending struct {
		idx  int
		path string
	}
	var queries []pending
	for i, di := range img.Dirs {
		if di.Semantic {
			queries = append(queries, pending{i, di.Path})
		}
	}
	fs.mu.RUnlock()

	for _, q := range queries {
		disp, err := fs.QueryDisplay(q.path)
		if err != nil {
			return volErr("savevolume", fmt.Errorf("serializing query of %s: %w", q.path, err))
		}
		img.Dirs[q.idx].Query = disp
	}

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&img); err != nil {
		return volErr("savevolume", fmt.Errorf("encoding volume: %w", err))
	}
	if err := writeVolumeFrame(w, uint16(img.Version), payload.Bytes()); err != nil {
		return volErr("savevolume", err)
	}
	// Version 4: the blob section — every distinct content blob the
	// manifest references, hash-framed, before the index section.
	if img.Version == casVolumeVersion {
		if err := writeBlobSection(w, manifest, blobs); err != nil {
			return volErr("savevolume", err)
		}
	}
	// The index section: the segmented image, one framed block per
	// segment (see internal/index/persist.go). Appending it after the
	// main frame keeps version-2 readers' framing intact.
	if err := fs.ix.Save(w); err != nil {
		return volErr("savevolume", fmt.Errorf("writing index section: %w", err))
	}
	return nil
}

// Blob section framing (v4): magic "HACB" | u32 blob count | per blob:
// hash[32] | u64 length | content. The SHA-256 hash doubles as the
// integrity check — the loader recomputes it over the content, so a
// flipped bit anywhere in a blob rejects the image with
// ErrCorruptVolume (volume content is all-or-nothing; the per-segment
// tolerance of the index section is unchanged).
var blobSectionMagic = [4]byte{'H', 'A', 'C', 'B'}

// maxBlobCount bounds the declared blob count before any allocation.
const maxBlobCount = 1 << 24

func writeBlobSection(w io.Writer, m *cas.Manifest, blobs map[cas.Hash][]byte) error {
	hashes := m.Hashes()
	var hdr [8]byte
	copy(hdr[:4], blobSectionMagic[:])
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(hashes)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, h := range hashes {
		data, ok := blobs[h]
		if !ok {
			return fmt.Errorf("hac: manifest references blob %s absent from the store", h.Short())
		}
		var bh [40]byte
		copy(bh[:32], h[:])
		binary.BigEndian.PutUint64(bh[32:40], uint64(len(data)))
		if _, err := w.Write(bh[:]); err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
	}
	return nil
}

// readBlobSection loads every blob into store, verifying content
// against its declared hash. It returns the hashes loaded, in section
// order, so the caller can release its temporary references once the
// restored tree holds its own.
func readBlobSection(r io.Reader, store *cas.BlobStore) ([]cas.Hash, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short blob section header: %v", ErrCorruptVolume, err)
	}
	if !bytes.Equal(hdr[:4], blobSectionMagic[:]) {
		return nil, fmt.Errorf("%w: bad blob section magic %q", ErrCorruptVolume, hdr[:4])
	}
	count := binary.BigEndian.Uint32(hdr[4:8])
	if count > maxBlobCount {
		return nil, fmt.Errorf("%w: implausible blob count %d", ErrCorruptVolume, count)
	}
	loaded := make([]cas.Hash, 0, min(int(count), 1<<16))
	for i := uint32(0); i < count; i++ {
		var bh [40]byte
		if _, err := io.ReadFull(r, bh[:]); err != nil {
			return loaded, fmt.Errorf("%w: truncated blob header: %v", ErrCorruptVolume, err)
		}
		var h cas.Hash
		copy(h[:], bh[:32])
		length := binary.BigEndian.Uint64(bh[32:40])
		if length > maxVolumePayload {
			return loaded, fmt.Errorf("%w: implausible blob length %d", ErrCorruptVolume, length)
		}
		data := make([]byte, int(length))
		if _, err := io.ReadFull(r, data); err != nil {
			return loaded, fmt.Errorf("%w: truncated blob content: %v", ErrCorruptVolume, err)
		}
		got, _ := store.Put(data)
		loaded = append(loaded, got)
		if got != h {
			return loaded, fmt.Errorf("%w: blob hash mismatch (%s != %s)", ErrCorruptVolume, got.Short(), h.Short())
		}
	}
	return loaded, nil
}

// writeVolumeFrame writes one framed image: magic | u16 version | u64
// length | payload | u32 CRC-32C.
func writeVolumeFrame(w io.Writer, version uint16, payload []byte) error {
	var hdr [14]byte
	copy(hdr[:4], volumeMagic[:])
	binary.BigEndian.PutUint16(hdr[4:6], version)
	binary.BigEndian.PutUint64(hdr[6:14], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], crc32.Checksum(payload, volumeCRC))
	if _, err := w.Write(trailer[:]); err != nil {
		return err
	}
	return nil
}

// readVolumePayload reads and verifies one framed image, returning the
// gob payload and the frame's format version (current or legacy). Every
// failure wraps ErrCorruptVolume.
func readVolumePayload(r io.Reader) ([]byte, uint16, error) {
	var hdr [14]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: short header: %v", ErrCorruptVolume, err)
	}
	if !bytes.Equal(hdr[:4], volumeMagic[:]) {
		return nil, 0, fmt.Errorf("%w: bad magic %q", ErrCorruptVolume, hdr[:4])
	}
	version := binary.BigEndian.Uint16(hdr[4:6])
	switch version {
	case casVolumeVersion, volumeVersion, legacyVolumeVersion:
	default:
		return nil, 0, fmt.Errorf("%w: unsupported volume version %d", ErrCorruptVolume, version)
	}
	length := binary.BigEndian.Uint64(hdr[6:14])
	if length > maxVolumePayload {
		return nil, 0, fmt.Errorf("%w: implausible payload length %d", ErrCorruptVolume, length)
	}
	payload := make([]byte, int(length))
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, fmt.Errorf("%w: truncated payload: %v", ErrCorruptVolume, err)
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: missing checksum trailer: %v", ErrCorruptVolume, err)
	}
	if got, want := crc32.Checksum(payload, volumeCRC), binary.BigEndian.Uint32(trailer[:]); got != want {
		return nil, 0, fmt.Errorf("%w: checksum mismatch (%08x != %08x)", ErrCorruptVolume, got, want)
	}
	return payload, version, nil
}

// LoadVolume reconstructs a volume saved by SaveVolume: the image frame
// is verified (length and CRC), the substrate tree restored, the index
// section loaded, semantic metadata re-attached, queries re-bound, and
// a settling Reindex run so the index and all transient links are
// consistent. Corrupt or truncated images — including any input that
// would panic the gob decoder — fail with a *vfs.PathError wrapping
// ErrCorruptVolume, with one deliberate exception: damage contained to
// a single segment block of the index section costs that segment only,
// and the settling Reindex re-indexes its documents from the restored
// tree. Version-2 images carry no index section and rebuild the index
// from scratch the same way.
func LoadVolume(r io.Reader, opts Options) (fs *FS, err error) {
	var loadedCAS *cas.FS
	defer func() {
		// gob can panic on adversarial input; surface it as corruption
		// rather than crashing the caller.
		if p := recover(); p != nil {
			fs, err = nil, volErr("loadvolume", fmt.Errorf("%w: decode panic: %v", ErrCorruptVolume, p))
		}
		// A failure after the content-addressed tree materialized (index
		// section, query binding, settling reindex) discards the tree —
		// release its blob references so a shared store is not left
		// pinning a volume that never loaded.
		if err != nil && loadedCAS != nil {
			loadedCAS.Release()
		}
	}()
	payload, version, err := readVolumePayload(r)
	if err != nil {
		return nil, volErr("loadvolume", err)
	}
	var img volumeImage
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&img); err != nil {
		return nil, volErr("loadvolume", fmt.Errorf("%w: decoding volume: %v", ErrCorruptVolume, err))
	}
	if img.Version != int(version) {
		return nil, volErr("loadvolume", fmt.Errorf("%w: payload version %d in v%d frame", ErrCorruptVolume, img.Version, version))
	}

	// Restore the substrate. Version 4 materializes the manifest against
	// a content-addressed store — opts.BlobStore if set (shared across
	// volumes: blobs another tenant already loaded cost nothing beyond a
	// reference), else a private one. Earlier versions rebuild a MemFS
	// from the inline snapshot.
	var substrate vfs.FileSystem
	if version == casVolumeVersion {
		m, mErr := cas.DecodeManifest(img.Manifest)
		if mErr != nil {
			return nil, volErr("loadvolume", fmt.Errorf("%w: manifest: %v", ErrCorruptVolume, mErr))
		}
		store := opts.BlobStore
		if store == nil {
			store = cas.NewStore()
		}
		// The loader holds one temporary reference per section blob;
		// FromManifest takes the tree's own references on top, and the
		// temporaries are dropped on every exit path — success, corrupt
		// section, or dangling manifest — so a failed load leaves a
		// shared store exactly as it found it.
		loaded, bErr := readBlobSection(r, store)
		releaseTemp := func() {
			for _, h := range loaded {
				store.Unref(h)
			}
		}
		if bErr != nil {
			releaseTemp()
			return nil, volErr("loadvolume", bErr)
		}
		cfs, fErr := cas.FromManifest(m, store)
		if fErr != nil {
			releaseTemp()
			if errors.Is(fErr, vfs.ErrNotExist) {
				// The manifest names a blob neither the image nor the
				// shared store holds: the image is incomplete.
				fErr = fmt.Errorf("%w: %v", ErrCorruptVolume, fErr)
			}
			return nil, volErr("loadvolume", fErr)
		}
		releaseTemp()
		substrate, loadedCAS = cfs, cfs
	} else {
		mem, memErr := vfs.FromSnapshot(img.Nodes)
		if memErr != nil {
			return nil, volErr("loadvolume", fmt.Errorf("%w: %v", ErrCorruptVolume, memErr))
		}
		substrate = mem
	}

	// The index section follows the main frame (and, in version 4, the
	// blob section). Transducers are code, not data (Options.Transducers),
	// so they re-attach through load options — the loaded index is
	// non-empty, which is exactly what RegisterTransducer refuses.
	var preIx *index.Index
	if version == volumeVersion || version == casVolumeVersion {
		var ixOpts []index.LoadOption
		for ext, ts := range opts.Transducers {
			for _, t := range ts {
				ixOpts = append(ixOpts, index.WithLoadTransducer(ext, t))
			}
		}
		ix, ixErr := index.LoadIndex(r, ixOpts...)
		if ixErr != nil {
			if ix == nil || errors.Is(ixErr, index.ErrBlockFraming) {
				// The stream position is lost: a torn save. Nothing past
				// this point is trustworthy, so the whole image is
				// rejected and recovery proceeds from the previous one.
				return nil, volErr("loadvolume", fmt.Errorf("index section: %w", ixErr))
			}
			// Contained damage: the intact segments loaded, the torn
			// one's documents are simply absent, and the settling
			// Reindex below restores them from the tree.
		}
		preIx = ix
	}
	fs = newFS(substrate, opts, preIx)

	// Register every directory first, so queries can reference any of
	// them during binding.
	fs.mu.Lock()
	for _, di := range img.Dirs {
		fs.registerDirLocked(di.Path)
	}
	// Restore semantic state.
	for _, di := range img.Dirs {
		if !di.Semantic {
			continue
		}
		ds, _ := fs.stateAtLocked(di.Path)
		ds.semantic = true
		for t, c := range di.Class {
			ds.class[t] = LinkClass(c)
			if name, ok := di.LinkNames[t]; ok {
				ds.linkName[t] = name
			}
		}
		for _, t := range di.Prohibited {
			ds.prohibited[t] = true
		}
	}
	// Bind queries (display form → UIDs) and dependency edges.
	for _, di := range img.Dirs {
		if !di.Semantic {
			continue
		}
		ds, _ := fs.stateAtLocked(di.Path)
		ast, err := parseQuery(di.Query)
		if err != nil {
			fs.mu.Unlock()
			return nil, volErr("loadvolume", fmt.Errorf("%w: re-parsing query of %s: %v", ErrCorruptVolume, di.Path, err))
		}
		if err := fs.installQueryLocked(ds, di.Path, ast); err != nil {
			fs.mu.Unlock()
			return nil, volErr("loadvolume", fmt.Errorf("%w: re-binding query of %s: %v", ErrCorruptVolume, di.Path, err))
		}
	}
	fs.mu.Unlock()

	// Rebuild the index and settle every consistency, as the paper's
	// reindex does.
	if _, err := fs.Reindex("/"); err != nil {
		return nil, err
	}
	return fs, nil
}

// SaveVolumeFile atomically saves the volume to path: the image is
// written to a temporary file in the same directory, fsynced, and
// renamed over path, then the directory is fsynced. A crash at any
// point leaves either the old image or the new one — never a torn mix.
func (fs *FS) SaveVolumeFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return volErr("savevolume", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := fs.SaveVolume(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(volErr("savevolume", err))
	}
	if err := tmp.Close(); err != nil {
		return fail(volErr("savevolume", err))
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fail(volErr("savevolume", err))
	}
	// Persist the rename itself. Some platforms refuse to fsync
	// directories; the rename is still atomic there.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// LoadVolumeFile loads a volume image from path (see LoadVolume).
func LoadVolumeFile(path string, opts Options) (*FS, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, volErr("loadvolume", err)
	}
	defer f.Close()
	return LoadVolume(f, opts)
}
