package hac

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"time"

	"hacfs/internal/bitset"
	"hacfs/internal/index"
	"hacfs/internal/obs"
	"hacfs/internal/query"
	"hacfs/internal/query/plan"
	"hacfs/internal/vfs"
)

// DefaultPageSize is the page size SearchResult.Next uses unless
// WithPageSize overrides it.
const DefaultPageSize = 256

// SearchOption configures one Search call.
type SearchOption func(*searchConfig)

type searchConfig struct {
	scope    string
	pageSize int
	limit    int
	after    uint64
	noCache  bool
}

// WithScope restricts the search to the scope provided by path: a
// syntactic directory contributes its subtree, a semantic directory its
// current link targets (§2.3). The default scope is the root.
func WithScope(path string) SearchOption {
	return func(c *searchConfig) { c.scope = path }
}

// WithPageSize sets how many paths each SearchResult.Next call
// materializes (default DefaultPageSize; <= 0 means one page with
// everything).
func WithPageSize(n int) SearchOption {
	return func(c *searchConfig) { c.pageSize = n }
}

// WithLimit caps the total number of matches the result iterates over
// (<= 0, the default, means unlimited).
func WithLimit(n int) SearchOption {
	return func(c *searchConfig) { c.limit = n }
}

// WithAfter resumes iteration from a cursor previously returned by
// SearchResult.Cursor: only matches at or beyond the cursor position
// are returned. The zero cursor starts from the beginning.
func WithAfter(cursor uint64) SearchOption {
	return func(c *searchConfig) { c.after = cursor }
}

// WithoutCache bypasses the volume's query-result cache for this call,
// neither reading nor populating it.
func WithoutCache() SearchOption {
	return func(c *searchConfig) { c.noCache = true }
}

// SearchStats summarizes how one Search was answered.
type SearchStats struct {
	Matches         int  // total matches the result iterates over
	Cached          bool // answered from the query-result cache
	Leaves          int  // leaf lookups the plan evaluated (0 when cached)
	PostingsSkipped int  // posting entries scope pruning avoided
}

// SearchResult is a paged view over one search's matches, pinned to the
// index snapshot the query was evaluated against. Pages materialize
// paths lazily: only the documents a Next call covers are resolved.
// Iteration order is document-ID order (stable for a given volume), not
// lexicographic; SearchPaths sorts for callers that want the old
// behavior. A SearchResult is not safe for concurrent use.
type SearchResult struct {
	snap     *index.Snapshot
	ids      []index.DocID // ascending
	pos      int
	pageSize int
	cursor   uint64
	plan     *plan.Plan
	stats    SearchStats
}

// Len returns the total number of matches (after cursor and limit).
func (r *SearchResult) Len() int { return len(r.ids) }

// Next materializes the next page of matching paths off the pinned
// snapshot. It returns false when the result is exhausted.
func (r *SearchResult) Next() ([]string, bool) {
	if r.pos >= len(r.ids) {
		return nil, false
	}
	end := r.pos + r.pageSize
	if r.pageSize <= 0 || end > len(r.ids) {
		end = len(r.ids)
	}
	page := r.ids[r.pos:end]
	r.pos = end
	r.cursor = page[len(page)-1] + 1
	return r.snap.PathsOf(page), true
}

// More reports whether pages remain.
func (r *SearchResult) More() bool { return r.pos < len(r.ids) }

// Cursor returns an opaque resume position: passing it to a new Search
// via WithAfter continues where iteration stopped, even across index
// mutations (matches that still exist keep their position).
func (r *SearchResult) Cursor() uint64 { return r.cursor }

// All drains the remaining pages into one slice, in iteration order.
func (r *SearchResult) All() []string {
	var out []string
	for {
		page, ok := r.Next()
		if !ok {
			return out
		}
		out = append(out, page...)
	}
}

// Plan returns the compiled evaluation plan (nil for an empty query).
func (r *SearchResult) Plan() *plan.Plan { return r.plan }

// Explain renders the evaluation plan with per-node cost estimates.
func (r *SearchResult) Explain() string {
	if r.plan == nil {
		return "empty query\n"
	}
	return r.plan.Explain()
}

// Stats returns how the search was answered.
func (r *SearchResult) Stats() SearchStats { return r.stats }

// Search evaluates an ad-hoc query without creating a semantic
// directory — the programmatic equivalent of running Glimpse directly,
// restricted to a HAC scope (WithScope). The query is compiled by the
// cost-based planner (package plan) and answered from the volume's
// epoch-keyed result cache when a previous identical search is still
// valid.
//
// The volume lock is held only while directory references are bound,
// the snapshot is pinned and semantic scopes are resolved to document
// sets; plan evaluation and path materialization run without it, so a
// long search no longer blocks mutations.
func (fs *FS) Search(ctx context.Context, queryStr string, opts ...SearchOption) (out *SearchResult, err error) {
	searchStart := time.Now()
	defer fs.met.searchSeconds.ObserveSince(searchStart)
	cfg := searchConfig{scope: "/", pageSize: DefaultPageSize}
	for _, o := range opts {
		o(&cfg)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// StartFrom, not StartCtx: nothing below Search starts spans of its
	// own, so re-wrapping the span into ctx would be pure overhead on
	// the serving hot path.
	var sp *obs.Span
	if cfg.scope != "/" {
		sp = fs.obsv.Tracer().StartFrom(ctx, "hac.Search", "query", queryStr, "scope", cfg.scope)
	} else {
		sp = fs.obsv.Tracer().StartFrom(ctx, "hac.Search", "query", queryStr)
	}
	defer func() {
		sp.FinishErr(err)
		// Over-threshold searches land in the slow-op log with the plan
		// that ran, so /debug/slow answers "which plan was that" after
		// the fact (capture cost is paid only once already slow).
		dur := time.Since(searchStart)
		if slow := fs.obsv.Slow(); slow.Over(dur) {
			op := obs.SlowOp{
				Op:     "hac.Search",
				Tenant: obs.TenantFromContext(ctx),
				Arg:    queryStr,
				Dur:    dur,
				Trace:  sp.Context().Trace,
			}
			if err != nil {
				op.Err = err.Error()
			}
			if out != nil && out.plan != nil {
				op.Detail = out.Explain()
			}
			slow.Record(op)
		}
	}()
	clean, err := vfs.Clean(cfg.scope)
	if err != nil {
		return nil, &vfs.PathError{Op: "search", Path: cfg.scope, Err: err}
	}
	ast, err := fs.parseQueryTimed(queryStr)
	if err != nil {
		return nil, err
	}
	if ast == nil {
		return &SearchResult{pageSize: cfg.pageSize, cursor: cfg.after}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 1, under the volume read lock: bind path references, pin an
	// index snapshot, resolve every semantic input (dir: references and
	// a semantic scope) to a concrete document set, and record the
	// epochs the result depends on. Everything afterwards runs off the
	// snapshot alone.
	fs.mu.RLock()
	env := &plan.SnapEnv{Snap: fs.ix.Snapshot()}
	var deps []plan.Dep
	refs := query.Refs(ast)
	if len(refs) > 0 {
		env.Refs = make(map[uint64]*bitset.Segmented, len(refs))
	}
	for _, ref := range refs {
		if ref.UID == 0 {
			rp, cerr := vfs.Clean(ref.Path)
			if cerr != nil {
				fs.mu.RUnlock()
				return nil, &vfs.PathError{Op: "search", Path: "dir:" + ref.Path, Err: ErrDanglingRef}
			}
			uid, ok := fs.names.UIDOf(rp)
			if !ok {
				fs.mu.RUnlock()
				return nil, &vfs.PathError{Op: "search", Path: "dir:" + rp, Err: ErrDanglingRef}
			}
			ref.UID = uid
		}
		if _, seen := env.Refs[ref.UID]; seen {
			continue
		}
		p, ok := fs.pathOfLocked(ref.UID)
		if !ok {
			fs.mu.RUnlock()
			return nil, &vfs.PathError{Op: "search", Path: fmt.Sprintf("dir:#%d", ref.UID), Err: ErrDanglingRef}
		}
		env.Refs[ref.UID] = fs.providedScopeLocalLocked(env.Snap, p)
		deps = append(deps, plan.Dep{UID: ref.UID, Epoch: fs.scopeEpoch[ref.UID]})
	}
	sc := plan.Scope{Prefix: clean}
	scopeKey := "p:" + clean
	if ds, ok := fs.stateAtLocked(clean); ok && ds.semantic {
		sc = plan.Scope{Set: fs.providedScopeLocalLocked(env.Snap, clean)}
		scopeKey = "u:" + strconv.FormatUint(ds.uid, 10)
		deps = append(deps, plan.Dep{UID: ds.uid, Epoch: fs.scopeEpoch[ds.uid]})
	}
	fs.mu.RUnlock()

	p, err := plan.Build(ast, sc, env)
	if err != nil {
		return nil, err
	}
	fs.met.plansBuilt.Add(1)

	// The key is the canonical bound query plus the scope's identity;
	// validity is the index version the entry was computed at plus the
	// link-set epoch of every directory it read.
	key := ast.String() + "\x00" + scopeKey
	version := env.Snap.Version()
	cur := make(map[uint64]uint64, len(deps))
	for _, d := range deps {
		cur[d.UID] = d.Epoch
	}
	depsValid := func(entDeps []plan.Dep) bool {
		for _, d := range entDeps {
			if cur[d.UID] != d.Epoch {
				return false
			}
		}
		return true
	}

	var res *bitset.Segmented
	cached := false
	if !cfg.noCache {
		if r, ok := fs.qcache.Get(key, version, depsValid); ok {
			res, cached = r, true
			fs.met.planCacheHits.Add(1)
		} else {
			fs.met.planCacheMisses.Add(1)
		}
	}
	if res == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		evalStart := time.Now()
		r, err := p.Exec()
		fs.met.queryEvalSeconds.ObserveSince(evalStart)
		if err != nil {
			return nil, err
		}
		fs.met.postingsSkipped.Add(int64(p.Stats().PostingsSkipped))
		if !cfg.noCache {
			fs.qcache.Put(key, r.Clone(), version, deps)
		}
		res = r
	}

	ids := res.Slice()
	if cfg.after > 0 {
		i := sort.Search(len(ids), func(i int) bool { return ids[i] >= cfg.after })
		ids = ids[i:]
	}
	if cfg.limit > 0 && len(ids) > cfg.limit {
		ids = ids[:cfg.limit]
	}
	st := p.Stats()
	return &SearchResult{
		snap:     env.Snap,
		ids:      ids,
		pageSize: cfg.pageSize,
		cursor:   cfg.after,
		plan:     p,
		stats: SearchStats{
			Matches:         len(ids),
			Cached:          cached,
			Leaves:          st.Leaves,
			PostingsSkipped: st.PostingsSkipped,
		},
	}, nil
}

// SearchPaths evaluates queryStr against the scope provided by
// scopePath and returns every matching local path, sorted — the
// original Search signature.
//
// Deprecated: use Search, which pages results lazily and exposes the
// evaluation plan; SearchPaths materializes everything eagerly.
func (fs *FS) SearchPaths(queryStr, scopePath string) ([]string, error) {
	res, err := fs.Search(context.Background(), queryStr, WithScope(scopePath))
	if err != nil {
		return nil, err
	}
	paths := res.All()
	sort.Strings(paths)
	return paths, nil
}

// SearchPage returns one page of matches starting at the given cursor
// (0 = first page) with at most limit paths (<= 0 = everything), plus
// the cursor for the next page — 0 when no pages remain. It exists for
// the remote protocol layers, which forward cursors across the wire.
func (fs *FS) SearchPage(queryStr, scopePath string, after uint64, limit int) ([]string, uint64, error) {
	return fs.SearchPageContext(context.Background(), queryStr, scopePath, after, limit)
}

// SearchPageContext is SearchPage with the request context threaded
// through (remotefs.ContextSearcher), so a trace propagated from a
// remote client links into the planner's spans and the tenant baggage
// reaches the slow-op log.
func (fs *FS) SearchPageContext(ctx context.Context, queryStr, scopePath string, after uint64, limit int) ([]string, uint64, error) {
	opts := []SearchOption{WithScope(scopePath), WithAfter(after), WithPageSize(limit)}
	if limit > 0 {
		// One extra match beyond the page, so More() can tell whether a
		// next page exists without fetching it.
		opts = append(opts, WithLimit(limit+1))
	}
	res, err := fs.Search(ctx, queryStr, opts...)
	if err != nil {
		return nil, 0, err
	}
	page, ok := res.Next()
	if !ok {
		return nil, 0, nil
	}
	if !res.More() {
		return page, 0, nil
	}
	return page, res.Cursor(), nil
}
