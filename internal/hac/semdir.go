package hac

import (
	"fmt"
	"sort"
	"time"

	"hacfs/internal/query"
	"hacfs/internal/vfs"
)

// SemDir ensures a semantic directory at path with the given query —
// the single entry point behind the paper's smkdir. If path does not
// exist the directory is created (and removed again should query
// installation fail, so creation is atomic). If path is an existing
// directory it is converted in place, keeping its contents; existing
// symbolic links are classified permanent (the user put them there).
//
// The query may be empty, in which case the directory starts with no
// transient links and can be given a query later with SetQuery.
// Otherwise the directory is populated immediately: HAC evaluates the
// query over the scope provided by the parent and creates a transient
// symbolic link for every match.
func (fs *FS) SemDir(path, queryStr string) error {
	clean, err := vfs.Clean(path)
	if err != nil {
		return pathErr("smkdir", path, err)
	}
	ast, err := fs.parseQueryTimed(queryStr)
	if err != nil {
		return err
	}
	created := false
	if _, lerr := fs.under.Lstat(clean); lerr != nil {
		if !isNotExist(lerr) {
			return lerr
		}
		if err := fs.Mkdir(clean); err != nil {
			return err
		}
		created = true
	} else {
		info, err := fs.under.Stat(clean)
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return pathErr("smkdir", path, vfs.ErrNotDir)
		}
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ds := fs.registerDirLocked(clean)
	if err := fs.makeSemanticLocked(ds, clean, ast, !created); err != nil {
		if created {
			// Roll back so smkdir is atomic: demote the directory before
			// releasing the lock (no other goroutine may observe a
			// half-built semantic directory), then remove it.
			ds.semantic = false
			fs.mu.Unlock()
			_ = fs.Remove(clean)
			fs.mu.Lock()
		}
		return err
	}
	return fs.syncFromLocked(ds.uid)
}

// makeSemanticLocked promotes ds to semantic (adopting the directory's
// pre-existing symlinks as permanent links when adoptLinks is set) and
// installs the query. Caller holds fs.mu for writing.
func (fs *FS) makeSemanticLocked(ds *dirState, clean string, ast query.Node, adoptLinks bool) error {
	if !ds.semantic {
		ds.semantic = true
		fs.gen++
		if adoptLinks {
			entries, err := fs.under.ReadDir(clean)
			if err != nil {
				return err
			}
			for _, e := range entries {
				if e.Type != vfs.TypeSymlink {
					continue
				}
				lp := vfs.Join(clean, e.Name)
				if target, err := fs.under.Readlink(lp); err == nil {
					ds.class[target] = Permanent
					ds.linkName[target] = e.Name
				}
			}
		}
	}
	return fs.installQueryLocked(ds, clean, ast)
}

// MkSemDir creates a new semantic directory at path with the given
// query. It fails if path already exists.
//
// Deprecated: Use SemDir, which additionally converts existing
// directories in place.
func (fs *FS) MkSemDir(path, queryStr string) error {
	clean, err := vfs.Clean(path)
	if err != nil {
		return pathErr("smkdir", path, err)
	}
	if _, lerr := fs.under.Lstat(clean); lerr == nil {
		// Preserve the substrate's "already exists" error.
		return fs.Mkdir(clean)
	}
	return fs.SemDir(clean, queryStr)
}

// MakeSemantic converts an existing directory into a semantic directory
// with the given query. It fails if path does not exist.
//
// Deprecated: Use SemDir, which additionally creates the directory when
// it is missing.
func (fs *FS) MakeSemantic(path, queryStr string) error {
	clean, err := vfs.Clean(path)
	if err != nil {
		return pathErr("smkdir", path, err)
	}
	info, err := fs.under.Stat(clean)
	if err != nil {
		return err
	}
	if !info.IsDir() {
		return pathErr("smkdir", path, vfs.ErrNotDir)
	}
	return fs.SemDir(clean, queryStr)
}

// MakeSyntactic discards a directory's content-based behavior (the
// paper: CBA features "can be discarded and added at any time"). The
// directory keeps every current link — they become plain symlinks the
// consistency machinery no longer touches — and its query, link
// classifications and prohibitions are dropped. Directories whose
// queries reference it keep working: it now provides scope like any
// syntactic directory. It fails with ErrNotSemantic if the directory is
// not semantic.
func (fs *FS) MakeSyntactic(path string) error {
	clean, err := vfs.Clean(path)
	if err != nil {
		return &vfs.PathError{Op: "smkdir", Path: path, Err: err}
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ds, ok := fs.stateAtLocked(clean)
	if !ok || !ds.semantic {
		return &vfs.PathError{Op: "smkdir", Path: path, Err: ErrNotSemantic}
	}
	fs.gen++
	ds.semantic = false
	ds.ast = nil
	ds.queryText = ""
	ds.class = make(map[string]LinkClass)
	ds.prohibited = make(map[string]bool)
	ds.linkName = make(map[string]string)
	// Keep only the implicit parent dependency so moves stay tracked.
	if err := fs.rebindDepsLocked(ds); err != nil {
		return err
	}
	// The scope it provides changed shape; dependents must adapt.
	fs.bumpScopeEpochLocked(ds.uid)
	return fs.syncDependentsLocked(ds.uid)
}

// SetQuery replaces the query of a semantic directory (the paper's
// srm/squery write path; §2.3 case 4) and restores scope consistency
// for it and everything that depends on it.
func (fs *FS) SetQuery(path, queryStr string) error {
	clean, err := vfs.Clean(path)
	if err != nil {
		return &vfs.PathError{Op: "squery", Path: path, Err: err}
	}
	ast, err := fs.parseQueryTimed(queryStr)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ds, ok := fs.stateAtLocked(clean)
	if !ok || !ds.semantic {
		return &vfs.PathError{Op: "squery", Path: path, Err: ErrNotSemantic}
	}
	fs.gen++
	if err := fs.installQueryLocked(ds, clean, ast); err != nil {
		return err
	}
	return fs.syncFromLocked(ds.uid)
}

// Query returns the canonical query text of a semantic directory (the
// paper's sreadin). Directory references are rendered as dir:#uid; use
// QueryDisplay for a human-readable form.
func (fs *FS) Query(path string) (string, error) {
	clean, err := vfs.Clean(path)
	if err != nil {
		return "", &vfs.PathError{Op: "squery", Path: path, Err: err}
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	ds, ok := fs.stateAtLocked(clean)
	if !ok || !ds.semantic {
		return "", &vfs.PathError{Op: "squery", Path: path, Err: ErrNotSemantic}
	}
	return ds.queryText, nil
}

// QueryDisplay returns the query with directory references rendered as
// current path names.
func (fs *FS) QueryDisplay(path string) (string, error) {
	clean, err := vfs.Clean(path)
	if err != nil {
		return "", &vfs.PathError{Op: "squery", Path: path, Err: err}
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	ds, ok := fs.stateAtLocked(clean)
	if !ok || !ds.semantic {
		return "", &vfs.PathError{Op: "squery", Path: path, Err: ErrNotSemantic}
	}
	if ds.ast == nil {
		return "", nil
	}
	// Render on a rebound copy so the stored AST keeps UIDs.
	copyAST, err := query.Parse(ds.queryText)
	if err != nil {
		return ds.queryText, nil
	}
	for _, ref := range query.Refs(copyAST) {
		if p, ok := fs.pathOfLocked(ref.UID); ok {
			ref.Path, ref.UID = p, 0
		}
	}
	return copyAST.String(), nil
}

// parseQuery parses a possibly empty query string.
func parseQuery(queryStr string) (query.Node, error) {
	if queryStr == "" {
		return nil, nil
	}
	ast, err := query.Parse(queryStr)
	if err == query.ErrEmpty {
		return nil, nil
	}
	return ast, err
}

// parseQueryTimed is parseQuery recording the parse latency into the
// volume's registry.
func (fs *FS) parseQueryTimed(queryStr string) (query.Node, error) {
	start := time.Now()
	ast, err := parseQuery(queryStr)
	fs.met.queryParseSeconds.ObserveSince(start)
	return ast, err
}

// installQueryLocked binds a parsed query to ds: path references are
// resolved to UIDs via the global map, the canonical text is stored,
// and the dependency graph is updated (rejecting cycles). Caller holds
// fs.mu.
func (fs *FS) installQueryLocked(ds *dirState, dirPath string, ast query.Node) error {
	if ast != nil {
		for _, ref := range query.Refs(ast) {
			if ref.UID != 0 {
				if _, ok := fs.pathOfLocked(ref.UID); !ok {
					return fmt.Errorf("%w: dir:#%d", ErrDanglingRef, ref.UID)
				}
				continue
			}
			rp, err := vfs.Clean(ref.Path)
			if err != nil {
				return fmt.Errorf("%w: dir:%s", ErrDanglingRef, ref.Path)
			}
			info, err := fs.under.Stat(rp)
			if err != nil || !info.IsDir() {
				return fmt.Errorf("%w: dir:%s", ErrDanglingRef, ref.Path)
			}
			refDS := fs.registerDirLocked(rp)
			ref.UID = refDS.uid
			ref.Path = ""
		}
	}
	prevAST, prevText := ds.ast, ds.queryText
	ds.ast = ast
	if ast != nil {
		ds.queryText = ast.String()
	} else {
		ds.queryText = ""
	}
	if err := fs.rebindDepsLocked(ds); err != nil {
		ds.ast, ds.queryText = prevAST, prevText
		return err
	}
	return nil
}

// rebindDepsLocked recomputes ds's dependency edges: its parent (the
// implicit hierarchical dependency of §2.3) plus every directory its
// query references (§2.5). Caller holds fs.mu.
func (fs *FS) rebindDepsLocked(ds *dirState) error {
	dirPath, ok := fs.pathOfLocked(ds.uid)
	if !ok {
		return fmt.Errorf("%w: uid %d", ErrDanglingRef, ds.uid)
	}
	deps := make([]uint64, 0, 4)
	if dirPath != "/" {
		parent := fs.registerDirLocked(vfs.Dir(dirPath))
		deps = append(deps, parent.uid)
	}
	if ds.ast != nil {
		for _, ref := range query.Refs(ds.ast) {
			deps = append(deps, ref.UID)
		}
	}
	return fs.graph.SetDeps(ds.uid, deps)
}

// SemanticDirs returns the paths of all semantic directories in the
// volume, sorted.
func (fs *FS) SemanticDirs() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for uid, ds := range fs.dirs {
		if !ds.semantic {
			continue
		}
		if p, ok := fs.pathOfLocked(uid); ok {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Links returns the classified links of a semantic directory, sorted by
// target: transient and permanent links with their link names, and
// prohibited targets with empty names.
func (fs *FS) Links(path string) ([]Link, error) {
	clean, err := vfs.Clean(path)
	if err != nil {
		return nil, &vfs.PathError{Op: "slinks", Path: path, Err: err}
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	ds, ok := fs.stateAtLocked(clean)
	if !ok || !ds.semantic {
		return nil, &vfs.PathError{Op: "slinks", Path: path, Err: ErrNotSemantic}
	}
	out := make([]Link, 0, len(ds.class)+len(ds.prohibited))
	for target, class := range ds.class {
		out = append(out, Link{Name: ds.linkName[target], Target: target, Class: class})
	}
	for target := range ds.prohibited {
		out = append(out, Link{Target: target, Class: Prohibited})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target < out[j].Target })
	return out, nil
}

// LinkTargets returns the targets of the directory's current links
// (transient + permanent), sorted — the scope it provides.
func (fs *FS) LinkTargets(path string) ([]string, error) {
	links, err := fs.Links(path)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(links))
	for _, l := range links {
		if l.Class != Prohibited {
			out = append(out, l.Target)
		}
	}
	return out, nil
}

// MarkPermanent promotes an existing link to permanent, or creates a
// new permanent link to target. This is one of the paper's "special API
// routines to directly modify the set of permanent and prohibited
// symbolic links" (§2.3, footnote).
func (fs *FS) MarkPermanent(dirPath, target string) error {
	clean, err := vfs.Clean(dirPath)
	if err != nil {
		return &vfs.PathError{Op: "spermanent", Path: dirPath, Err: err}
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ds, ok := fs.stateAtLocked(clean)
	if !ok || !ds.semantic {
		return &vfs.PathError{Op: "spermanent", Path: dirPath, Err: ErrNotSemantic}
	}
	fs.gen++
	delete(ds.prohibited, target)
	if _, had := ds.class[target]; !had {
		name, err := fs.materializeLinkLocked(ds, clean, target)
		if err != nil {
			return err
		}
		ds.linkName[target] = name
	}
	ds.class[target] = Permanent
	fs.bumpScopeEpochLocked(ds.uid)
	return fs.syncDependentsLocked(ds.uid)
}

// MarkProhibited records target as prohibited in the directory,
// removing its link if present. Prohibited targets are never re-added
// by the consistency algorithm.
func (fs *FS) MarkProhibited(dirPath, target string) error {
	clean, err := vfs.Clean(dirPath)
	if err != nil {
		return &vfs.PathError{Op: "sprohibit", Path: dirPath, Err: err}
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ds, ok := fs.stateAtLocked(clean)
	if !ok || !ds.semantic {
		return &vfs.PathError{Op: "sprohibit", Path: dirPath, Err: ErrNotSemantic}
	}
	fs.gen++
	if name, had := ds.linkName[target]; had {
		if err := fs.under.Remove(vfs.Join(clean, name)); err != nil && !isNotExist(err) {
			return err
		}
		delete(ds.class, target)
		delete(ds.linkName, target)
	}
	ds.prohibited[target] = true
	fs.bumpScopeEpochLocked(ds.uid)
	return fs.syncDependentsLocked(ds.uid)
}

// Unprohibit removes a prohibition; the target becomes eligible to
// return as a transient link at the next consistency pass, which is run
// immediately.
func (fs *FS) Unprohibit(dirPath, target string) error {
	clean, err := vfs.Clean(dirPath)
	if err != nil {
		return &vfs.PathError{Op: "sunprohibit", Path: dirPath, Err: err}
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ds, ok := fs.stateAtLocked(clean)
	if !ok || !ds.semantic {
		return &vfs.PathError{Op: "sunprohibit", Path: dirPath, Err: ErrNotSemantic}
	}
	fs.gen++
	delete(ds.prohibited, target)
	fs.bumpScopeEpochLocked(ds.uid)
	return fs.syncFromLocked(ds.uid)
}

// materializeLinkLocked creates the symlink for target inside dir,
// choosing a collision-free name, and returns the name. Caller holds
// fs.mu.
func (fs *FS) materializeLinkLocked(ds *dirState, dirPath, target string) (string, error) {
	base := linkBaseName(target)
	name := base
	for n := 2; ; n++ {
		if _, err := fs.under.Lstat(vfs.Join(dirPath, name)); err != nil {
			break // name is free
		}
		name = fmt.Sprintf("%s~%d", base, n)
	}
	if err := fs.under.Symlink(target, vfs.Join(dirPath, name)); err != nil {
		return "", err
	}
	return name, nil
}

// linkBaseName derives a symlink name from a target path or remote
// target.
func linkBaseName(target string) string {
	if ns, rp, ok := splitRemoteTarget(target); ok {
		return ns + "." + vfs.Base(rp)
	}
	return vfs.Base(target)
}
