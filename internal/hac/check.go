package hac

import (
	"fmt"
	"sort"

	"hacfs/internal/vfs"
)

// CheckConsistency audits the volume against the paper's invariants and
// returns a description of every violation found (empty means
// consistent). It verifies, for each semantic directory:
//
//   - I1: every local transient link target lies in the scope provided
//     by the parent;
//   - I4: no prohibited target is currently linked;
//   - the physical symlinks in the directory match the classification
//     exactly (same names, same targets);
//   - the dependency graph has a node for the directory and an edge to
//     its parent.
//
// It is a diagnostic: it takes the volume lock (shared, so concurrent
// readers proceed) and is not cheap.
func (fs *FS) CheckConsistency() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var problems []string
	report := func(format string, args ...interface{}) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	uids := make([]uint64, 0, len(fs.dirs))
	for uid := range fs.dirs {
		uids = append(uids, uid)
	}
	sort.Slice(uids, func(i, j int) bool { return uids[i] < uids[j] })

	for _, uid := range uids {
		ds := fs.dirs[uid]
		dirPath, ok := fs.pathOfLocked(uid)
		if !ok {
			report("directory uid %d has no path in the global map", uid)
			continue
		}
		if !fs.graph.Has(uid) {
			report("%s: missing dependency-graph node", dirPath)
		}
		if !ds.semantic {
			continue
		}

		// I1: transient ⊆ parent scope (local targets only; remote
		// targets are checked against their namespaces at sync time).
		// Scope and ID resolution share one snapshot, so a merge
		// committing mid-audit cannot fabricate a violation.
		snap := fs.ix.Snapshot()
		scope := fs.providedScopeLocalLocked(snap, vfs.Dir(dirPath))
		for target, class := range ds.class {
			if class != Transient || IsRemoteTarget(target) {
				continue
			}
			if p, ok := fs.resolveToIndexedLocked(target); ok {
				if id, ok := snap.IDOf(p); ok && !scope.Contains(id) {
					report("%s: I1 violated: transient %s outside parent scope", dirPath, target)
				}
			}
		}
		// I4: prohibited ∩ linked = ∅.
		for target := range ds.prohibited {
			if _, linked := ds.class[target]; linked {
				report("%s: I4 violated: %s is both prohibited and linked", dirPath, target)
			}
		}
		// Physical links mirror the classification.
		entries, err := fs.under.ReadDir(dirPath)
		if err != nil {
			report("%s: unreadable: %v", dirPath, err)
			continue
		}
		physical := map[string]string{} // name → target
		for _, e := range entries {
			if e.Type != vfs.TypeSymlink {
				continue
			}
			if target, err := fs.under.Readlink(vfs.Join(dirPath, e.Name)); err == nil {
				physical[e.Name] = target
			}
		}
		for target, name := range ds.linkName {
			got, ok := physical[name]
			switch {
			case !ok:
				report("%s: classified link %s (→ %s) has no symlink", dirPath, name, target)
			case got != target:
				report("%s: symlink %s points to %s, classified as %s", dirPath, name, got, target)
			}
			delete(physical, name)
		}
		for name, target := range physical {
			report("%s: unclassified symlink %s → %s", dirPath, name, target)
		}
	}
	return problems
}
