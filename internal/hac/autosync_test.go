package hac

import "testing"

func TestAutoSyncNewMail(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/inbox-apple", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.EnableAutoSync("/mail"); err != nil {
		t.Fatal(err)
	}
	// New mail appears immediately, no Reindex call.
	if err := fs.WriteFile("/mail/m3.txt", []byte("apple arrives instantly")); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, target := range targetsOf(t, fs, "/inbox-apple") {
		if target == "/mail/m3.txt" {
			found = true
		}
	}
	if !found {
		t.Fatal("auto-synced file did not appear")
	}
	// Deleting the mail removes the link immediately too.
	if err := fs.Remove("/mail/m3.txt"); err != nil {
		t.Fatal(err)
	}
	for _, target := range targetsOf(t, fs, "/inbox-apple") {
		if target == "/mail/m3.txt" {
			t.Fatal("deleted auto-synced file still linked")
		}
	}
}

func TestAutoSyncScopeLimited(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.EnableAutoSync("/mail"); err != nil {
		t.Fatal(err)
	}
	// A change outside the auto-sync prefix stays lazy (§2.4: "but not
	// when an application modifies some files").
	if err := fs.WriteFile("/docs/lazy.txt", []byte("apple but lazy")); err != nil {
		t.Fatal(err)
	}
	for _, target := range targetsOf(t, fs, "/sel") {
		if target == "/docs/lazy.txt" {
			t.Fatal("out-of-prefix change applied eagerly")
		}
	}
	// Until the periodic pass runs.
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, target := range targetsOf(t, fs, "/sel") {
		if target == "/docs/lazy.txt" {
			found = true
		}
	}
	if !found {
		t.Fatal("lazy change lost")
	}
}

func TestAutoSyncDisable(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.EnableAutoSync("/mail"); err != nil {
		t.Fatal(err)
	}
	fs.DisableAutoSync("/mail")
	if err := fs.WriteFile("/mail/m9.txt", []byte("apple after disable")); err != nil {
		t.Fatal(err)
	}
	for _, target := range targetsOf(t, fs, "/sel") {
		if target == "/mail/m9.txt" {
			t.Fatal("auto-sync still active after disable")
		}
	}
}
