package hac

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"hacfs/internal/vfs"
)

// fuzzSeedImage builds a small but representative volume image: files,
// nested directories, two semantic directories (one referencing the
// other via dir:), a permanent link and a prohibition.
func fuzzSeedImage(tb testing.TB) []byte {
	tb.Helper()
	fs := New(vfs.New(), Options{})
	if err := fs.MkdirAll("/docs/sub"); err != nil {
		tb.Fatal(err)
	}
	files := map[string]string{
		"/docs/apple1.txt":     "apple fruit red",
		"/docs/apple2.txt":     "apple banana mixed",
		"/docs/sub/cherry.txt": "cherry fruit",
	}
	for p, c := range files {
		if err := fs.WriteFile(p, []byte(c)); err != nil {
			tb.Fatal(err)
		}
	}
	if _, err := fs.Reindex("/"); err != nil {
		tb.Fatal(err)
	}
	if err := fs.SemDir("/fruit", "fruit"); err != nil {
		tb.Fatal(err)
	}
	if err := fs.SemDir("/apples", "apple AND dir:/fruit"); err != nil {
		tb.Fatal(err)
	}
	if err := fs.Symlink("/docs/apple2.txt", "/fruit/kept"); err != nil {
		tb.Fatal(err)
	}
	if err := fs.MarkProhibited("/fruit", "/docs/apple1.txt"); err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fs.SaveVolume(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoadVolume feeds arbitrary bytes — seeded with valid images and
// systematic corruptions of them — to LoadVolume. The contract under
// test: a load either succeeds, or fails with an error; it never
// panics, and corrupted or truncated images of a valid volume are
// detected (the frame makes anything but payload-preserving mutations
// fail checksum or length verification).
func FuzzLoadVolume(f *testing.F) {
	img := fuzzSeedImage(f)
	f.Add(img)
	f.Add([]byte{})
	f.Add(img[:len(img)/2])
	f.Add(img[:13])
	flipped := append([]byte(nil), img...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add(append(append([]byte(nil), img...), 0xde, 0xad))
	f.Add([]byte("HACV not a real image"))

	f.Fuzz(func(t *testing.T, data []byte) {
		fs, err := LoadVolume(bytes.NewReader(data), Options{})
		if err != nil {
			if fs != nil {
				t.Fatalf("LoadVolume returned both a volume and error %v", err)
			}
			return
		}
		// A successfully loaded volume must be internally consistent
		// and usable.
		if problems := fs.CheckConsistency(); len(problems) > 0 {
			t.Fatalf("loaded volume inconsistent: %v", problems)
		}
		if _, err := fs.Reindex("/"); err != nil {
			t.Fatalf("reindex of loaded volume: %v", err)
		}
	})
}

// TestFuzzSeedsLoad pins the seed corpus behavior outside of fuzzing
// mode: the pristine image loads; truncations (anywhere) and bit flips
// in the main frame fail with ErrCorruptVolume. A flip in the appended
// index section is exercised separately: it may be contained to one
// segment, in which case the load succeeds and the reindex recovers
// (TestLoadVolumeRejectsCorruption covers that contract in depth).
func TestFuzzSeedsLoad(t *testing.T) {
	img := fuzzSeedImage(t)
	if _, err := LoadVolume(bytes.NewReader(img), Options{}); err != nil {
		t.Fatalf("pristine seed image: %v", err)
	}
	mainLen := 14 + int(binary.BigEndian.Uint64(img[6:14])) + 4
	bad := [][]byte{
		{},
		img[:13],
		img[:len(img)/2],
		img[:len(img)-1],
	}
	flipped := append([]byte(nil), img...)
	flipped[mainLen/2] ^= 0x40
	bad = append(bad, flipped)
	for i, data := range bad {
		if _, err := LoadVolume(bytes.NewReader(data), Options{}); !errors.Is(err, ErrCorruptVolume) {
			t.Errorf("corrupt variant %d: err = %v, want ErrCorruptVolume", i, err)
		}
	}
	idxFlip := append([]byte(nil), img...)
	idxFlip[(mainLen+len(img))/2] ^= 0x40
	if fs, err := LoadVolume(bytes.NewReader(idxFlip), Options{}); err != nil {
		if fs != nil || !errors.Is(err, ErrCorruptVolume) {
			t.Errorf("index-section flip: fs=%v err=%v", fs != nil, err)
		}
	} else if problems := fs.CheckConsistency(); len(problems) > 0 {
		t.Errorf("index-section flip loaded an inconsistent volume: %v", problems)
	}
}
