package hac

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"hacfs/internal/bitset"
	"hacfs/internal/index"
	"hacfs/internal/query"
	"hacfs/internal/vfs"
)

// pathErr wraps err with the operation and path that failed, so callers
// can recover the path via errors.As(&hacfs.PathError{}) while
// errors.Is against the sentinels keeps working through Unwrap.
func pathErr(op, path string, err error) error {
	return &vfs.PathError{Op: op, Path: path, Err: err}
}

// Sync restores scope consistency (§2.3) for the directory at path and
// everything that directly or indirectly depends on it — the paper's
// ssync command. Directories are re-evaluated level by level in
// topological order of the dependency DAG (§2.5); within one level
// (an antichain of the DAG) directories are independent and are
// evaluated concurrently by the engine in engine.go. Options override
// the volume defaults for this pass (WithParallelism, WithVerify,
// WithContext).
func (fs *FS) Sync(path string, opts ...Option) error {
	clean, err := vfs.Clean(path)
	if err != nil {
		return pathErr("ssync", path, err)
	}
	cfg := fs.evalCfg(opts)
	start := time.Now()
	cfg.span, cfg.ctx = fs.obsv.Tracer().StartCtx(cfg.ctx, "hac.Sync")
	cfg.span.Annotate("path", clean)
	fs.mu.Lock()
	info, err := fs.under.Stat(clean)
	if err != nil {
		fs.mu.Unlock()
		cfg.span.FinishErr(err)
		return err
	}
	if !info.IsDir() {
		fs.mu.Unlock()
		err = pathErr("ssync", path, vfs.ErrNotDir)
		cfg.span.FinishErr(err)
		return err
	}
	ds := fs.registerDirLocked(clean)
	uid := ds.uid
	fs.mu.Unlock()
	err = fs.syncLevels(fs.graph.AffectedLevels(uid, true), cfg)
	fs.met.syncTotal.Add(1)
	fs.met.syncSeconds.ObserveSince(start)
	cfg.span.FinishErr(err)
	return err
}

// SyncPath is Sync with volume-default options, under the fixed
// signature that the serving layer (remotefs.PathSyncer) dispatches
// ssync requests through.
func (fs *FS) SyncPath(path string) error { return fs.Sync(path) }

// SyncPathContext is SyncPath with the request context threaded
// through (remotefs.ContextSyncer), so a trace propagated from a
// remote client links into the pass's spans.
func (fs *FS) SyncPathContext(ctx context.Context, path string) error {
	return fs.Sync(path, WithContext(ctx))
}

// SyncAll restores scope consistency for the whole volume, level by
// level (see Sync).
func (fs *FS) SyncAll(opts ...Option) error {
	cfg := fs.evalCfg(opts)
	start := time.Now()
	cfg.span, cfg.ctx = fs.obsv.Tracer().StartCtx(cfg.ctx, "hac.SyncAll")
	err := fs.syncLevels(fs.graph.TopoLevels(), cfg)
	fs.met.syncTotal.Add(1)
	fs.met.syncSeconds.ObserveSince(start)
	cfg.span.FinishErr(err)
	return err
}

// syncFromLocked re-evaluates uid itself (if semantic) and then every
// transitive dependent, in topological order. Caller holds fs.mu.
func (fs *FS) syncFromLocked(uid uint64) error {
	if ds, ok := fs.dirs[uid]; ok && ds.semantic {
		if err := fs.reevalLocked(ds); err != nil {
			return err
		}
	}
	return fs.syncDependentsLocked(uid)
}

// syncDependentsLocked re-evaluates every transitive dependent of uid,
// but not uid itself. Used when uid's link set was changed directly by
// the user: their edit is authoritative, only downstream scopes must
// adapt. Caller holds fs.mu.
func (fs *FS) syncDependentsLocked(uid uint64) error {
	for _, dep := range fs.graph.AffectedBy(uid) {
		ds, ok := fs.dirs[dep]
		if !ok || !ds.semantic {
			continue
		}
		if err := fs.reevalLocked(ds); err != nil {
			return err
		}
	}
	return nil
}

// reevalLocked recomputes the transient links of ds with the volume's
// default evaluation settings. Caller holds fs.mu for writing.
func (fs *FS) reevalLocked(ds *dirState) error {
	return fs.reevalCfgLocked(ds, fs.defaultEvalCfg())
}

// defaultEvalCfg is the volume's standing evaluation configuration,
// used by the serial consistency paths triggered from mutations.
func (fs *FS) defaultEvalCfg() evalConfig {
	return evalConfig{parallelism: 1, verify: fs.verify, ctx: context.Background()}
}

// reevalCfgLocked computes and immediately commits ds's new transient
// set — the serial form of the engine's evaluate/commit pipeline.
// Caller holds fs.mu for writing.
func (fs *FS) reevalCfgLocked(ds *dirState, cfg evalConfig) error {
	newTargets, err := fs.computeTargetsLocked(ds, cfg)
	if err != nil {
		return err
	}
	return fs.commitTargetsLocked(ds, newTargets)
}

// computeTargetsLocked evaluates ds's query and returns its new
// transient target set — the read-only half of the paper's
// scope-consistency algorithm:
//
//  1. re-evaluate the query over the scope provided by the parent;
//  2. discard results that are permanent or prohibited in ds;
//  3. the remainder is the new transient set (permanent and prohibited
//     sets are never touched).
//
// It mutates nothing, so the engine may run many of these concurrently
// under the read lock. Caller holds fs.mu (read suffices).
func (fs *FS) computeTargetsLocked(ds *dirState, cfg evalConfig) (map[string]bool, error) {
	dirPath, ok := fs.pathOfLocked(ds.uid)
	if !ok {
		return nil, fmt.Errorf("%w: uid %d", ErrDanglingRef, ds.uid)
	}
	parentPath := vfs.Dir(dirPath)
	fs.met.semdirEvals.Add(1)
	sp := cfg.span.Child("hac.eval")
	sp.Annotate("dir", dirPath)

	newTargets := make(map[string]bool)
	if ds.ast != nil {
		// Pin one index snapshot for the whole evaluation: every term
		// lookup, the scope restriction and the final path resolution see
		// the same segment set even if a background merge commits
		// mid-query.
		snap := fs.ix.Snapshot()
		evalStart := time.Now()
		local, err := query.Eval(ds.ast, &evalEnv{fs: fs, snap: snap})
		fs.met.queryEvalSeconds.ObserveSince(evalStart)
		fs.met.phaseEval.ObserveSince(evalStart)
		if err != nil {
			err = pathErr("ssync", dirPath, fmt.Errorf("evaluating query: %w", err))
			sp.FinishErr(err)
			return nil, err
		}
		// Scope restriction (§2.3/§2.5). A query without directory
		// references gets the strict hierarchical behavior: an implicit
		// "AND dir:<parent>". A query with explicit dir: references has
		// chosen DAG-based scoping, and the paper leaves the scope
		// entirely to the query ("users can choose strict hierarchical
		// dependencies, DAG based dependencies, or both").
		scopeStart := time.Now()
		if len(query.Refs(ds.ast)) == 0 {
			local.And(fs.providedScopeLocalLocked(snap, parentPath))
		}
		matched := snap.Paths(local)
		if cfg.verify {
			// Glimpse-style second level: confirm each candidate by
			// scanning its content for the query terms.
			verifyMatches(fs.under, matched, query.Terms(ds.ast))
		}
		fs.met.phaseScope.ObserveSince(scopeStart)
		for _, p := range matched {
			newTargets[p] = true
		}
		remoteStart := time.Now()
		remote, err := fs.evalRemoteLocked(cfg.ctx, ds, parentPath)
		fs.met.phaseRemote.ObserveSince(remoteStart)
		if err != nil {
			sp.FinishErr(err)
			return nil, err
		}
		for t := range remote {
			newTargets[t] = true
		}
	}

	// Never add what the user prohibited; never duplicate what the user
	// made permanent.
	for t := range ds.prohibited {
		delete(newTargets, t)
	}
	for t, c := range ds.class {
		if c == Permanent {
			delete(newTargets, t)
		}
	}
	sp.Annotate("targets", strconv.Itoa(len(newTargets)))
	sp.Finish()
	return newTargets, nil
}

// commitTargetsLocked diffs newTargets against ds's current transient
// set, mutating the underlying directory to match. Targets are
// processed in sorted order so the substrate mutations — and therefore
// collision-suffixed link names — are deterministic. Caller holds
// fs.mu for writing.
func (fs *FS) commitTargetsLocked(ds *dirState, newTargets map[string]bool) error {
	dirPath, ok := fs.pathOfLocked(ds.uid)
	if !ok {
		return fmt.Errorf("%w: uid %d", ErrDanglingRef, ds.uid)
	}
	commitStart := time.Now()
	var drop []string
	for t, c := range ds.class {
		if c == Transient && !newTargets[t] {
			drop = append(drop, t)
		}
	}
	sort.Strings(drop)
	for _, t := range drop {
		if name, ok := ds.linkName[t]; ok {
			if err := fs.under.Remove(vfs.Join(dirPath, name)); err != nil && !isNotExist(err) {
				return err
			}
		}
		delete(ds.class, t)
		delete(ds.linkName, t)
	}
	var add []string
	for t := range newTargets {
		if _, ok := ds.class[t]; !ok {
			add = append(add, t)
		}
	}
	sort.Strings(add)
	for _, t := range add {
		name, err := fs.materializeLinkLocked(ds, dirPath, t)
		if err != nil {
			return err
		}
		ds.class[t] = Transient
		ds.linkName[t] = name
	}
	if len(drop)+len(add) > 0 {
		fs.bumpScopeEpochLocked(ds.uid)
	}
	fs.met.linksDropped.Add(int64(len(drop)))
	fs.met.linksAdded.Add(int64(len(add)))
	fs.met.phaseCommit.ObserveSince(commitStart)
	repairStart := time.Now()
	// Crash repair (DESIGN.md §8): a fault between an unlink and a
	// relink — a torn rename rewrite, an interrupted commit — can leave
	// a classified target with its physical symlink missing, or (when
	// the fault hit a rename's link-rewrite pass) still pointing at the
	// pre-rename path. New transient targets were just materialized
	// above, but a previously-classified target is skipped by the add
	// loop and a permanent link is never re-derived at all, so both
	// would stay broken forever. The classification is authoritative:
	// re-create missing symlinks and re-point wrong ones, making every
	// consistency pass also a repair pass.
	var repair []string
	for t := range ds.class {
		name, ok := ds.linkName[t]
		if !ok || name == "" {
			continue
		}
		lp := vfs.Join(dirPath, name)
		info, err := fs.under.Lstat(lp)
		switch {
		case isNotExist(err):
			repair = append(repair, t)
		case err != nil:
			return err
		case info.Type == vfs.TypeSymlink:
			if got, rerr := fs.under.Readlink(lp); rerr == nil && got != t {
				if err := fs.under.Remove(lp); err != nil && !isNotExist(err) {
					return err
				}
				repair = append(repair, t)
			}
		}
	}
	sort.Strings(repair)
	for _, t := range repair {
		lp := vfs.Join(dirPath, ds.linkName[t])
		if err := fs.under.Symlink(t, lp); err != nil && !errors.Is(err, vfs.ErrExist) {
			return err
		}
	}
	fs.met.linksRepaired.Add(int64(len(repair)))
	fs.met.phaseRepair.ObserveSince(repairStart)
	return nil
}

func isNotExist(err error) bool { return errors.Is(err, vfs.ErrNotExist) }

// verifyMatches reads each candidate file and counts occurrences of the
// query terms, mimicking the grep pass of a two-level index like
// Glimpse. The count is returned so the scan has an observable result.
func verifyMatches(fsys vfs.FileSystem, paths []string, terms []string) int {
	total := 0
	for _, p := range paths {
		data, err := fsys.ReadFile(p)
		if err != nil {
			continue
		}
		content := strings.ToLower(string(data))
		for _, t := range terms {
			total += strings.Count(content, t)
		}
	}
	return total
}

// providedScopeLocalLocked returns the local-document scope a directory
// provides (§2.3):
//
//   - a semantic directory provides its current link targets plus the
//     regular files physically inside it;
//   - a syntactic directory (including the root) provides every indexed
//     file in its subtree.
//
// The scope is resolved against snap, so it composes with query results
// evaluated against the same snapshot. Caller holds fs.mu.
func (fs *FS) providedScopeLocalLocked(snap *index.Snapshot, dirPath string) *bitset.Segmented {
	ds, ok := fs.stateAtLocked(dirPath)
	if !ok || !ds.semantic {
		return snap.DocsUnder(dirPath)
	}
	var paths []string
	for t := range ds.class {
		if _, _, remote := splitRemoteTarget(t); remote {
			continue
		}
		if p, ok := fs.resolveToIndexedLocked(t); ok {
			paths = append(paths, p)
		}
	}
	if entries, err := fs.under.ReadDir(dirPath); err == nil {
		for _, e := range entries {
			if e.Type == vfs.TypeFile {
				paths = append(paths, vfs.Join(dirPath, e.Name))
			}
		}
	}
	return snap.IDsOf(paths)
}

// resolveToIndexedLocked maps a link target to an indexed document
// path, following symlink chains (a link in one semantic directory may
// point at a link in another). Caller holds fs.mu.
func (fs *FS) resolveToIndexedLocked(target string) (string, bool) {
	p := target
	for depth := 0; depth < 10; depth++ {
		if _, ok := fs.ix.IDOf(p); ok {
			return p, true
		}
		info, err := fs.under.Lstat(p)
		if err != nil || info.Type != vfs.TypeSymlink {
			return "", false
		}
		next, err := fs.under.Readlink(p)
		if err != nil {
			return "", false
		}
		if !vfs.IsAbs(next) {
			next = vfs.Join(vfs.Dir(p), next)
		}
		p = next
	}
	return "", false
}

// evalEnv adapts the CBA engine and directory scopes to the query
// evaluator — the paper's API between HAC and the CBA mechanism. All
// index reads go through one pinned snapshot, so the bitmaps an
// evaluation intersects share a single consistent ID space.
type evalEnv struct {
	fs   *FS
	snap *index.Snapshot
}

func (e *evalEnv) Term(w string) (*bitset.Segmented, error) { return e.snap.Lookup(w), nil }

func (e *evalEnv) Prefix(p string) (*bitset.Segmented, error) { return e.snap.LookupPrefix(p), nil }

func (e *evalEnv) Fuzzy(w string) (*bitset.Segmented, error) { return e.snap.LookupFuzzy(w), nil }

func (e *evalEnv) Universe() (*bitset.Segmented, error) { return e.snap.AllDocs(), nil }

// DirRef returns the scope provided by the referenced directory (§2.5:
// "the CBA mechanism can use HAC's API to obtain the existing
// query-result stored in that directory").
func (e *evalEnv) DirRef(ref *query.DirRef) (*bitset.Segmented, error) {
	p, ok := e.fs.pathOfLocked(ref.UID)
	if !ok {
		return nil, &vfs.PathError{Op: "eval", Path: fmt.Sprintf("dir:#%d", ref.UID), Err: ErrDanglingRef}
	}
	return e.fs.providedScopeLocalLocked(e.snap, p), nil
}

// IndexReport summarizes a Reindex run.
type IndexReport struct {
	Added   int
	Updated int
	Removed int
}

// Reindex runs the paper's §2.4 data-consistency pass over the subtree
// at root: every directory is registered in the global map (so it can
// serve as a scope or query reference), the CBA mechanism incrementally
// re-indexes the files, and every semantic directory is re-evaluated
// ("at reindexing time, all scope and data inconsistencies are
// settled"). The file walk goes through the HAC layer itself, as in
// the paper's Table 3 setup.
//
// Files are read and tokenized by a pool of cfg.parallelism workers
// (WithParallelism, default Options.Parallelism, 0 = NumCPU); index
// insertion stays single-writer in walk order, so document IDs — and
// therefore all downstream bitmaps — are identical to a serial run.
func (fs *FS) Reindex(root string, opts ...Option) (IndexReport, error) {
	cfg := fs.evalCfg(opts)
	reindexStart := time.Now()
	sp, ctx := fs.obsv.Tracer().StartCtx(cfg.ctx, "hac.Reindex")
	sp.Annotate("root", root)
	defer func() {
		fs.met.reindexTotal.Add(1)
		fs.met.reindexSeconds.ObserveSince(reindexStart)
	}()
	var rep IndexReport
	// Register directories first — the paper's per-directory structures
	// and global-map entries are part of HAC's indexing cost.
	err := vfs.Walk(fs, root, func(p string, info vfs.Info) error {
		if info.IsDir() {
			fs.mu.Lock()
			fs.registerDirLocked(p)
			fs.mu.Unlock()
		}
		return nil
	})
	if err != nil {
		sp.FinishErr(err)
		return rep, err
	}
	added, updated, removed, err := fs.ix.SyncTreeParallel(fs, root, cfg.parallelism)
	rep = IndexReport{Added: added, Updated: updated, Removed: removed}
	// The index changed outside fs.mu; bump the generation so any
	// evaluation pass that overlapped the re-index falls back rather
	// than committing results staged against the old index.
	fs.mu.Lock()
	fs.gen++
	fs.mu.Unlock()
	if err != nil {
		sp.FinishErr(err)
		return rep, err
	}
	sp.Annotate("added", strconv.Itoa(added))
	sp.Annotate("updated", strconv.Itoa(updated))
	sp.Annotate("removed", strconv.Itoa(removed))
	// Thread the reindex span's context into the consistency pass, so
	// its hac.SyncAll root nests in the same trace.
	err = fs.SyncAll(append(opts[:len(opts):len(opts)], WithContext(ctx))...)
	sp.FinishErr(err)
	return rep, err
}

// Stats reports HAC-layer health counters.
type Stats struct {
	Directories  int // directories with HAC bookkeeping
	SemanticDirs int
	GraphNodes   int
	AttrHits     int64
	AttrMisses   int64
	OpenHandles  int64
}

// Stats returns a snapshot of the layer's counters.
func (fs *FS) Stats() Stats {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	s := Stats{
		Directories: len(fs.dirs),
		GraphNodes:  fs.graph.Len(),
		OpenHandles: fs.fds.open64.Load(),
	}
	for _, ds := range fs.dirs {
		if ds.semantic {
			s.SemanticDirs++
		}
	}
	s.AttrHits, s.AttrMisses = fs.attrs.stats()
	return s
}

// MetadataBytes estimates the on-disk footprint of HAC's per-directory
// data structures (queries, link classifications, the global map, the
// dependency graph, and the per-semantic-directory result bitmap of N/8
// bytes) — the paper's "222 KB vs 210 KB" experiment.
func (fs *FS) MetadataBytes() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	total := fs.names.SizeBytes()
	universe := fs.ix.Universe()
	for _, ds := range fs.dirs {
		total += 48 // fixed per-directory record
		total += len(ds.queryText)
		for t := range ds.class {
			total += len(t) + len(ds.linkName[t]) + 8
		}
		for t := range ds.prohibited {
			total += len(t) + 8
		}
		// The compact query-result representation: one bit per indexed
		// file (§4). The paper initializes this structure (to "empty")
		// for every directory at mkdir time, so every registered
		// directory carries the N/8-byte slot.
		total += (universe + 7) / 8
		// One dependency-graph node with its edges.
		total += 16 + 16*len(fs.graph.Deps(ds.uid))
	}
	return total
}

// SharedMemoryBytes reports the footprint of the attribute cache and
// descriptor table — the structures the paper keeps in per-process
// shared memory (~16 KB per process in §4).
func (fs *FS) SharedMemoryBytes() int {
	return fs.attrs.sizeBytes() + fs.fds.sizeBytes()
}
