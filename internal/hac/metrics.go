package hac

import (
	"hacfs/internal/obs"
)

// fsMetrics is the HAC layer's metric handle bundle, resolved once at
// construction so hot paths record through direct pointers (each record
// is an atomic op; with a Discard observer every handle is nil and each
// record is a single nil check). The metric name catalog is documented
// in DESIGN.md §9.
type fsMetrics struct {
	// Consistency passes (Sync / SyncAll / Reindex).
	syncTotal      *obs.Counter   // hac_sync_total
	syncSeconds    *obs.Histogram // hac_sync_seconds
	reindexTotal   *obs.Counter   // hac_reindex_total
	reindexSeconds *obs.Histogram // hac_reindex_seconds

	// Per-phase timings of one evaluation pass (the paper's "where
	// does the time go": scope gather vs. query eval vs. remote import
	// vs. link commit vs. crash repair).
	phaseScope  *obs.Histogram // hac_sync_phase_seconds{phase="scope"}
	phaseEval   *obs.Histogram // hac_sync_phase_seconds{phase="eval"}
	phaseRemote *obs.Histogram // hac_sync_phase_seconds{phase="remote"}
	phaseCommit *obs.Histogram // hac_sync_phase_seconds{phase="commit"}
	phaseRepair *obs.Histogram // hac_sync_phase_seconds{phase="repair"}

	// Per-semantic-directory evaluation counts and fallbacks.
	semdirEvals   *obs.Counter // hac_semdir_evals_total
	genFallbacks  *obs.Counter // hac_eval_gen_fallbacks_total
	linksAdded    *obs.Counter // hac_links_added_total
	linksDropped  *obs.Counter // hac_links_dropped_total
	linksRepaired *obs.Counter // hac_links_repaired_total

	// Query front end.
	queryParseSeconds *obs.Histogram // hac_query_parse_seconds
	queryEvalSeconds  *obs.Histogram // hac_query_eval_seconds
	searchSeconds     *obs.Histogram // hac_search_seconds

	// Cost-based planner (plan package) and its result cache.
	plansBuilt      *obs.Counter // hac_plans_built_total
	planCacheHits   *obs.Counter // hac_plan_cache_hits_total
	planCacheMisses *obs.Counter // hac_plan_cache_misses_total
	postingsSkipped *obs.Counter // hac_postings_skipped_total

	// Evaluation worker pool.
	workersBusy *obs.Gauge // hac_eval_workers_busy
	queueDepth  *obs.Gauge // hac_eval_queue_depth

	// Remote namespace calls issued during evaluation.
	nsSearchSeconds *obs.Histogram // hac_ns_search_seconds
	nsErrors        *obs.Counter   // hac_ns_errors_total
}

// newFSMetrics resolves the handle bundle against o's registry (all
// handles nil when the observer records nothing).
func newFSMetrics(o *obs.Observer) *fsMetrics {
	r := o.Registry()
	phase := func(name string) *obs.Histogram {
		return r.Histogram("hac_sync_phase_seconds", nil, "phase", name)
	}
	return &fsMetrics{
		syncTotal:      r.Counter("hac_sync_total"),
		syncSeconds:    r.Histogram("hac_sync_seconds", nil),
		reindexTotal:   r.Counter("hac_reindex_total"),
		reindexSeconds: r.Histogram("hac_reindex_seconds", nil),

		phaseScope:  phase("scope"),
		phaseEval:   phase("eval"),
		phaseRemote: phase("remote"),
		phaseCommit: phase("commit"),
		phaseRepair: phase("repair"),

		semdirEvals:   r.Counter("hac_semdir_evals_total"),
		genFallbacks:  r.Counter("hac_eval_gen_fallbacks_total"),
		linksAdded:    r.Counter("hac_links_added_total"),
		linksDropped:  r.Counter("hac_links_dropped_total"),
		linksRepaired: r.Counter("hac_links_repaired_total"),

		queryParseSeconds: r.Histogram("hac_query_parse_seconds", nil),
		queryEvalSeconds:  r.Histogram("hac_query_eval_seconds", nil),
		searchSeconds:     r.Histogram("hac_search_seconds", nil),

		plansBuilt:      r.Counter("hac_plans_built_total"),
		planCacheHits:   r.Counter("hac_plan_cache_hits_total"),
		planCacheMisses: r.Counter("hac_plan_cache_misses_total"),
		postingsSkipped: r.Counter("hac_postings_skipped_total"),

		workersBusy: r.Gauge("hac_eval_workers_busy"),
		queueDepth:  r.Gauge("hac_eval_queue_depth"),

		nsSearchSeconds: r.Histogram("hac_ns_search_seconds", nil),
		nsErrors:        r.Counter("hac_ns_errors_total"),
	}
}

// registerVolumeGauges exposes this volume's structural counters as
// scrape-time gauges. When several volumes share one registry (the
// Default observer in tests), the most recently constructed volume
// wins — acceptable for process-level introspection, inject per-volume
// observers where isolation matters.
func (fs *FS) registerVolumeGauges(o *obs.Observer) {
	r := o.Registry()
	if r == nil {
		return
	}
	r.GaugeFunc("hac_directories", func() float64 {
		return float64(fs.Stats().Directories)
	})
	r.GaugeFunc("hac_semantic_dirs", func() float64 {
		return float64(fs.Stats().SemanticDirs)
	})
	r.GaugeFunc("hac_open_handles", func() float64 {
		return float64(fs.fds.open64.Load())
	})
	r.GaugeFunc("hac_attr_cache_hits", func() float64 {
		h, _ := fs.attrs.stats()
		return float64(h)
	})
	r.GaugeFunc("hac_attr_cache_misses", func() float64 {
		_, m := fs.attrs.stats()
		return float64(m)
	})
}

// Observer returns the volume's observability sink (never nil; a
// volume built with WithObserver(nil) reports the Discard observer).
func (fs *FS) Observer() *obs.Observer { return fs.obsv }
