package hac

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"hacfs/internal/vfs"
	"hacfs/internal/vfs/cas"
)

// newCASTestFS builds the standard test corpus over a content-addressed
// substrate, optionally backed by a shared blob store.
func newCASTestFS(t *testing.T, store *cas.BlobStore) *FS {
	t.Helper()
	fs := New(cas.New(store), Options{})
	files := map[string]string{
		"/docs/apple1.txt": "apple fruit red",
		"/docs/apple2.txt": "apple banana mixed",
		"/docs/banana.txt": "banana only yellow",
		"/docs/cherry.txt": "cherry tree dark",
		"/mail/m1.txt":     "apple message mail",
		"/mail/m2.txt":     "cherry message mail",
	}
	for p, content := range files {
		if err := fs.MkdirAll(vfs.Dir(p)); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile(p, []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	return fs
}

// saveImage serializes a volume and returns the raw image bytes.
func saveImage(t *testing.T, fs *FS) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := fs.SaveVolume(&buf); err != nil {
		t.Fatalf("SaveVolume: %v", err)
	}
	return buf.Bytes()
}

// blobSectionLen walks a v4 image's blob section (which starts right
// after the main frame) and returns its length in bytes.
func blobSectionLen(t *testing.T, img []byte, mainLen int) int {
	t.Helper()
	if !bytes.Equal(img[mainLen:mainLen+4], blobSectionMagic[:]) {
		t.Fatalf("no blob section at offset %d", mainLen)
	}
	count := binary.BigEndian.Uint32(img[mainLen+4 : mainLen+8])
	off := mainLen + 8
	for i := uint32(0); i < count; i++ {
		off += 40 + int(binary.BigEndian.Uint64(img[off+32:off+40]))
	}
	return off - mainLen
}

func TestVolumeV4RoundTrip(t *testing.T) {
	fs := newCASTestFS(t, nil)
	if err := fs.MkSemDir("/sel", "apple AND NOT banana"); err != nil {
		t.Fatal(err)
	}
	img := saveImage(t, fs)
	if v := binary.BigEndian.Uint16(img[4:6]); v != casVolumeVersion {
		t.Fatalf("cas substrate saved frame version %d, want %d", v, casVolumeVersion)
	}

	restored, err := LoadVolume(bytes.NewReader(img), Options{})
	if err != nil {
		t.Fatalf("LoadVolume: %v", err)
	}
	data, err := restored.ReadFile("/docs/apple1.txt")
	if err != nil || string(data) != "apple fruit red" {
		t.Fatalf("content = %q, %v", data, err)
	}
	if !restored.IsSemantic("/sel") {
		t.Fatal("semantic flag lost")
	}
	if got, want := targetsOf(t, restored, "/sel"), targetsOf(t, fs, "/sel"); !reflect.DeepEqual(got, want) {
		t.Fatalf("targets = %v, want %v", got, want)
	}
	// The restored substrate is content-addressed again and re-saves in
	// the same format.
	again := saveImage(t, restored)
	if v := binary.BigEndian.Uint16(again[4:6]); v != casVolumeVersion {
		t.Fatalf("re-save wrote version %d", v)
	}
	if _, err := LoadVolume(bytes.NewReader(again), Options{}); err != nil {
		t.Fatalf("second-generation image rejected: %v", err)
	}
}

func TestVolumeV4ThroughFaultFS(t *testing.T) {
	// The substrate unwrap sees through fault injection, so model checks
	// save and restore content-addressed volumes like any other.
	fault := vfs.NewFaultFS(cas.New(nil), vfs.FaultConfig{})
	fs := New(fault, Options{})
	if err := fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/docs/a.txt", []byte("apple")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	img := saveImage(t, fs)
	if v := binary.BigEndian.Uint16(img[4:6]); v != casVolumeVersion {
		t.Fatalf("fault-wrapped cas substrate saved version %d", v)
	}
	restored, err := LoadVolume(bytes.NewReader(img), Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantTargets(t, restored, "/sel", "/docs/a.txt")
}

// TestVolumeV4BlobDedupInImage pins the format's storage story: files
// with identical content contribute one blob to the image, so the image
// stays near-flat as duplicates multiply.
func TestVolumeV4BlobDedupInImage(t *testing.T) {
	fs := New(cas.New(nil), Options{})
	if err := fs.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	body := bytes.Repeat([]byte("payload "), 512) // 4 KiB
	for _, name := range []string{"/d/a", "/d/b", "/d/c", "/d/d"} {
		if err := fs.WriteFile(name, body); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	img := saveImage(t, fs)
	mainLen := mainFrameLen(t, img)
	if count := binary.BigEndian.Uint32(img[mainLen+4 : mainLen+8]); count != 1 {
		t.Fatalf("image carries %d blobs for 4 identical files, want 1", count)
	}
	if got := blobSectionLen(t, img, mainLen); got > 2*len(body) {
		t.Fatalf("blob section is %d bytes for one %d-byte blob", got, len(body))
	}
	restored, err := LoadVolume(bytes.NewReader(img), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"/d/a", "/d/b", "/d/c", "/d/d"} {
		data, err := restored.ReadFile(name)
		if err != nil || !bytes.Equal(data, body) {
			t.Fatalf("%s: content lost (%d bytes, %v)", name, len(data), err)
		}
	}
}

// TestVolumeV4SharedStoreDedup loads two tenants with identical content
// into one shared blob store: the second load adds no unique bytes, and
// unloading one tenant's volume leaves the other's content intact.
func TestVolumeV4SharedStoreDedup(t *testing.T) {
	imgA := saveImage(t, newCASTestFS(t, nil))
	imgB := saveImage(t, newCASTestFS(t, nil))

	shared := cas.NewStore()
	a, err := LoadVolume(bytes.NewReader(imgA), Options{BlobStore: shared})
	if err != nil {
		t.Fatal(err)
	}
	afterA := shared.UniqueBytes()
	if afterA == 0 {
		t.Fatal("first load stored nothing in the shared store")
	}
	b, err := LoadVolume(bytes.NewReader(imgB), Options{BlobStore: shared})
	if err != nil {
		t.Fatal(err)
	}
	if got := shared.UniqueBytes(); got != afterA {
		t.Fatalf("identical second tenant grew unique bytes %d → %d", afterA, got)
	}
	// Tenant A dropping every file must not free tenant B's content.
	for _, p := range []string{"/docs/apple1.txt", "/docs/apple2.txt", "/docs/banana.txt",
		"/docs/cherry.txt", "/mail/m1.txt", "/mail/m2.txt"} {
		if err := a.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
	data, err := b.ReadFile("/docs/apple1.txt")
	if err != nil || string(data) != "apple fruit red" {
		t.Fatalf("tenant B content lost after tenant A removal: %q, %v", data, err)
	}
}

// TestVolumeV4CorruptionRejected covers the new sections: truncation
// anywhere and bit flips in the main frame or the blob section reject
// the image with ErrCorruptVolume — a flipped content byte fails the
// blob's own SHA-256, there is no separate checksum to miss.
func TestVolumeV4CorruptionRejected(t *testing.T) {
	fs := newCASTestFS(t, nil)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	good := saveImage(t, fs)
	mainLen := mainFrameLen(t, good)
	blobLen := blobSectionLen(t, good, mainLen)

	cuts := []int{0, 5, 13, 14, mainLen - 1, mainLen, mainLen + 4, mainLen + 9,
		mainLen + blobLen/2, mainLen + blobLen - 1, mainLen + blobLen, len(good) - 1}
	for _, cut := range cuts {
		if cut > len(good) {
			continue
		}
		if _, err := LoadVolume(bytes.NewReader(good[:cut]), Options{}); !errors.Is(err, ErrCorruptVolume) {
			t.Fatalf("truncation at %d of %d: err = %v, want ErrCorruptVolume", cut, len(good), err)
		}
	}
	flips := []int{1, 5, 20, mainLen / 2, mainLen + 1, mainLen + 5, // magic/count
		mainLen + 8 + 7,                         // a hash byte
		mainLen + 8 + 45, mainLen + blobLen - 2} // content bytes
	for _, pos := range flips {
		mut := append([]byte(nil), good...)
		mut[pos] ^= 0x20
		if _, err := LoadVolume(bytes.NewReader(mut), Options{}); !errors.Is(err, ErrCorruptVolume) {
			t.Fatalf("bit flip at %d: err = %v, want ErrCorruptVolume", pos, err)
		}
	}
	// Pristine image still loads.
	if _, err := LoadVolume(bytes.NewReader(good), Options{}); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}
}

// TestVolumeV4FailedLoadLeavesSharedStoreClean: a rejected image must
// not leak blob references into a shared store — tenants that never
// materialized must not pin storage.
func TestVolumeV4FailedLoadLeavesSharedStoreClean(t *testing.T) {
	good := saveImage(t, newCASTestFS(t, nil))
	mainLen := mainFrameLen(t, good)
	blobLen := blobSectionLen(t, good, mainLen)

	shared := cas.NewStore()
	// Flip a byte deep in the blob section: several blobs load (and take
	// temporary references) before the damaged one rejects the image.
	mut := append([]byte(nil), good...)
	mut[mainLen+blobLen-2] ^= 0x01
	if _, err := LoadVolume(bytes.NewReader(mut), Options{BlobStore: shared}); !errors.Is(err, ErrCorruptVolume) {
		t.Fatalf("damaged image accepted: %v", err)
	}
	if got := shared.UniqueBytes(); got != 0 {
		t.Fatalf("failed load left %d bytes pinned in the shared store", got)
	}
	// Truncation after the blob section (inside the index frames) also
	// rejects; the store must again end clean.
	if _, err := LoadVolume(bytes.NewReader(good[:mainLen+blobLen+3]), Options{BlobStore: shared}); !errors.Is(err, ErrCorruptVolume) {
		t.Fatal("truncated index section accepted")
	}
	if got := shared.UniqueBytes(); got != 0 {
		t.Fatalf("failed index load left %d bytes pinned", got)
	}
}

// TestVolumeV4CrashDuringSave tears a v4 save at every section boundary
// region; every torn image is rejected and the previous good image
// still restores the volume.
func TestVolumeV4CrashDuringSave(t *testing.T) {
	fs := newCASTestFS(t, nil)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	good := saveImage(t, fs)
	mainLen := mainFrameLen(t, good)
	blobLen := blobSectionLen(t, good, mainLen)
	for _, limit := range []int{0, 13, 14, mainLen - 2, mainLen, mainLen + 6,
		mainLen + blobLen/2, mainLen + blobLen, len(good) - 1} {
		var torn bytes.Buffer
		if err := fs.SaveVolume(&vfs.CrashWriter{W: &torn, Limit: limit}); err == nil {
			t.Fatalf("save through crashing writer (limit %d) succeeded", limit)
		}
		if _, err := LoadVolume(bytes.NewReader(torn.Bytes()), Options{}); err == nil {
			t.Fatalf("torn image (limit %d) accepted", limit)
		}
	}
	restored, err := LoadVolume(bytes.NewReader(good), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := targetsOf(t, restored, "/sel"), targetsOf(t, fs, "/sel"); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovery targets = %v, want %v", got, want)
	}
}

// FuzzLoadVolumeV4 hammers the whole load path — frame, gob payload,
// manifest codec, blob section, index section — with mutated inputs. It
// must never panic and, when loading into a shared store, must never
// leak a byte of a rejected image.
func FuzzLoadVolumeV4(f *testing.F) {
	seedFS := New(cas.New(nil), Options{})
	if err := seedFS.MkdirAll("/d"); err != nil {
		f.Fatal(err)
	}
	if err := seedFS.WriteFile("/d/a.txt", []byte("apple seed")); err != nil {
		f.Fatal(err)
	}
	if err := seedFS.WriteFile("/d/b.txt", []byte("apple seed")); err != nil {
		f.Fatal(err)
	}
	if _, err := seedFS.Reindex("/"); err != nil {
		f.Fatal(err)
	}
	var img bytes.Buffer
	if err := seedFS.SaveVolume(&img); err != nil {
		f.Fatal(err)
	}
	f.Add(img.Bytes())
	f.Add([]byte{})
	f.Add([]byte("HACV\x00\x04junk"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := LoadVolume(bytes.NewReader(data), Options{}); err != nil {
			if !errors.Is(err, ErrCorruptVolume) {
				t.Fatalf("load error %v does not wrap ErrCorruptVolume", err)
			}
		}
		shared := cas.NewStore()
		if _, err := LoadVolume(bytes.NewReader(data), Options{BlobStore: shared}); err != nil {
			if got := shared.UniqueBytes(); got != 0 {
				t.Fatalf("rejected image pinned %d bytes in a shared store", got)
			}
		}
	})
}
