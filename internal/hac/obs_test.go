package hac

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hacfs/internal/andrew"
	"hacfs/internal/obs"
	"hacfs/internal/vfs"
)

// scrape fetches /metrics from a handler over a real HTTP round trip
// and returns the exposition text.
func scrape(t *testing.T, o *obs.Observer) string {
	t.Helper()
	srv := httptest.NewServer(obs.Handler(o))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// series extracts one sample value from Prometheus exposition text.
func series(t *testing.T, text, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("series %q not found in exposition", name)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("series %q value %q: %v", name, m[1], err)
	}
	return v
}

// TestObservabilityEndToEnd is the issue's acceptance check: a Sync
// over the Andrew source tree must produce non-zero per-phase
// histograms and at least one retained span per semantic directory,
// all verified by scraping the debug endpoint like a real collector
// would.
func TestObservabilityEndToEnd(t *testing.T) {
	o := obs.NewObserver()
	fs := New(vfs.New(), Options{Observer: o, VerifyMatches: true})

	spec := andrew.Spec{Dirs: 6, FilesPerDir: 5, FileSize: 512}
	if err := andrew.GenerateSource(fs, "/src", spec); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	queries := []string{"compute", "andrew AND mix", "au0x0", "compute AND NOT au1x1"}
	for i, q := range queries {
		if err := fs.SemDir(fmt.Sprintf("/q%d", i), q); err != nil {
			t.Fatalf("semdir %q: %v", q, err)
		}
	}
	if err := fs.SyncAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.SearchPaths("compute", "/src"); err != nil {
		t.Fatal(err)
	}

	text := scrape(t, o)

	// Counters and per-phase histograms must have moved.
	if got := series(t, text, "hac_sync_total"); got < 1 {
		t.Errorf("hac_sync_total = %g, want >= 1", got)
	}
	if got := series(t, text, "hac_reindex_total"); got != 1 {
		t.Errorf("hac_reindex_total = %g, want 1", got)
	}
	if got := series(t, text, "hac_semdir_evals_total"); got < float64(len(queries)) {
		t.Errorf("hac_semdir_evals_total = %g, want >= %d", got, len(queries))
	}
	for _, phase := range []string{"scope", "eval", "commit"} {
		name := fmt.Sprintf(`hac_sync_phase_seconds_count{phase=%q}`, phase)
		if got := series(t, text, name); got < 1 {
			t.Errorf("%s = %g, want >= 1", name, got)
		}
	}
	for _, name := range []string{
		"hac_query_parse_seconds_count",
		"hac_query_eval_seconds_count",
		"hac_search_seconds_count",
		"hac_links_added_total",
		"index_docs_indexed_total",
	} {
		if got := series(t, text, name); got < 1 {
			t.Errorf("%s = %g, want >= 1", name, got)
		}
	}
	// Scrape-time gauges reflect the volume.
	if got := series(t, text, "hac_semantic_dirs"); got != float64(len(queries)) {
		t.Errorf("hac_semantic_dirs = %g, want %d", got, len(queries))
	}
	if got := series(t, text, "index_docs"); got != float64(spec.Dirs*spec.FilesPerDir) {
		t.Errorf("index_docs = %g, want %d", got, spec.Dirs*spec.FilesPerDir)
	}
	if got := series(t, text, "hac_depgraph_nodes"); got < float64(len(queries)) {
		t.Errorf("hac_depgraph_nodes = %g, want >= %d", got, len(queries))
	}

	// At least one retained "hac.eval" span per semantic directory,
	// each annotated with the directory it evaluated.
	evalDirs := map[string]bool{}
	for _, sp := range o.Tracer().Recent() {
		if sp.Name != "hac.eval" {
			continue
		}
		for _, a := range sp.Attrs {
			if a.Key == "dir" {
				evalDirs[a.Value] = true
			}
		}
	}
	for i := range queries {
		dir := fmt.Sprintf("/q%d", i)
		if !evalDirs[dir] {
			t.Errorf("no retained hac.eval span for %s (got %v)", dir, evalDirs)
		}
	}
}

// TestObserverConcurrentScrape races Sync, Search and metric scrapes
// against each other; it exists to run under -race.
func TestObserverConcurrentScrape(t *testing.T) {
	o := obs.NewObserver()
	fs := New(vfs.New(), Options{Observer: o})
	if err := andrew.GenerateSource(fs, "/src", andrew.Spec{Dirs: 3, FilesPerDir: 3, FileSize: 256}); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := fs.SemDir(fmt.Sprintf("/q%d", i), "compute"); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if err := fs.SyncAll(WithParallelism(2)); err != nil {
					t.Errorf("SyncAll: %v", err)
					return
				}
				if _, err := fs.SearchPaths("mix", "/src"); err != nil {
					t.Errorf("Search: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			var b strings.Builder
			if err := o.Registry().WritePrometheus(&b); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			_ = o.Registry().Snapshot()
			_ = o.Tracer().Recent()
		}
	}()
	wg.Wait()
	if got := o.Registry().Counter("hac_sync_total").Value(); got < 1 {
		t.Fatalf("hac_sync_total = %d after concurrent syncs", got)
	}
}
