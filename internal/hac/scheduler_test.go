package hac

import (
	"errors"
	"testing"
	"time"

	"hacfs/internal/index"
	"hacfs/internal/vfs"
)

func TestSchedulerPeriodicReindex(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	before := len(targetsOf(t, fs, "/sel"))

	s := fs.StartAutoReindex("/", 5*time.Millisecond)
	defer s.Stop()

	// New matching file appears without any manual Reindex call.
	if err := fs.WriteFile("/docs/apple-auto.txt", []byte("apple appears automatically")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if len(targetsOf(t, fs, "/sel")) == before+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scheduler never picked up the new file")
		}
		time.Sleep(2 * time.Millisecond)
	}
	runs, err := s.Runs()
	if err != nil || runs == 0 {
		t.Fatalf("Runs = %d, %v", runs, err)
	}
}

func TestSchedulerTriggerNow(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	s := fs.StartAutoReindex("/", time.Hour) // ticker effectively never fires
	defer s.Stop()

	if err := fs.WriteFile("/docs/apple-now.txt", []byte("apple right now")); err != nil {
		t.Fatal(err)
	}
	if err := s.TriggerNow(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, target := range targetsOf(t, fs, "/sel") {
		if target == "/docs/apple-now.txt" {
			found = true
		}
	}
	if !found {
		t.Fatal("TriggerNow did not settle the new file")
	}
}

func TestSchedulerStopIdempotent(t *testing.T) {
	fs := newTestFS(t)
	s := fs.StartAutoReindex("/", time.Hour)
	s.Stop()
	s.Stop() // no panic
	if err := s.TriggerNow(); err != nil {
		t.Fatalf("TriggerNow after Stop = %v", err)
	}
}

func TestRegisterTransducerThroughHAC(t *testing.T) {
	// Registration is only legal on an empty store, so it happens before
	// the first Reindex (equivalently: Options.Transducers at New time).
	fs := New(vfs.New(), Options{})
	if err := fs.RegisterTransducer(".eml", index.EmailTransducer); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/mail"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/mail/m9.eml", []byte("from zed\n\nnothing else\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/fromzed", "from:zed"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/fromzed", "/mail/m9.eml")

	// Once documents are indexed, late registration fails loudly instead
	// of silently leaving them without attribute terms.
	if err := fs.RegisterTransducer(".txt", index.PathTransducer); !errors.Is(err, index.ErrNotEmpty) {
		t.Fatalf("late RegisterTransducer err = %v, want index.ErrNotEmpty", err)
	}
}
