package hac

import (
	"sync"
	"sync/atomic"

	"hacfs/internal/vfs"
)

// attrCache is HAC's attribute cache. The paper keeps it in UNIX shared
// memory so every process sees it; here the FS itself is shared, so a
// process-local map with the same hit/miss semantics plays that role.
// It speeds up the Scan and Read phases of the Andrew benchmark and its
// size is reported by the space-overhead experiment.
type attrCache struct {
	mu     sync.Mutex
	m      map[string]vfs.Info
	cap    int
	hits   atomic.Int64
	misses atomic.Int64
}

func newAttrCache(capacity int) *attrCache {
	return &attrCache{m: make(map[string]vfs.Info, capacity), cap: capacity}
}

func (c *attrCache) get(path string) (vfs.Info, bool) {
	c.mu.Lock()
	info, ok := c.m[path]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return info, ok
}

func (c *attrCache) put(path string, info vfs.Info) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) >= c.cap {
		// Evict an arbitrary entry; map iteration order serves as a
		// cheap random-replacement policy.
		for k := range c.m {
			delete(c.m, k)
			break
		}
	}
	c.m[path] = info
}

func (c *attrCache) invalidate(path string) {
	c.mu.Lock()
	delete(c.m, path)
	c.mu.Unlock()
}

// invalidatePrefix drops every entry at or under path; used on renames
// and subtree removals.
func (c *attrCache) invalidatePrefix(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.m {
		if vfs.HasPrefix(k, path) {
			delete(c.m, k)
		}
	}
}

// sizeBytes estimates the cache's payload footprint.
func (c *attrCache) sizeBytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for k := range c.m {
		total += len(k) + 64 // Info struct plus map overhead
	}
	return total
}

// stats returns hit and miss counts.
func (c *attrCache) stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// fdTable models the per-process open file-descriptor table the paper
// stores in shared memory; here it only does the accounting the space
// experiment needs.
type fdTable struct {
	open64    atomic.Int64 // currently open handles
	everOpen  atomic.Int64
	everClose atomic.Int64
	accesses  atomic.Int64 // per-read descriptor-table touches
}

// access records one descriptor-table touch (on each read).
func (t *fdTable) access() { t.accesses.Add(1) }

func newFDTable() *fdTable { return &fdTable{} }

func (t *fdTable) open() {
	t.open64.Add(1)
	t.everOpen.Add(1)
}

func (t *fdTable) close() {
	t.open64.Add(-1)
	t.everClose.Add(1)
}

const fdEntryBytes = 128 // descriptor slot size, per the paper's layout

func (t *fdTable) sizeBytes() int {
	n := t.open64.Load()
	if n < 0 {
		n = 0
	}
	return int(n) * fdEntryBytes
}

// trackedFile wraps a substrate file handle to keep the descriptor
// table and attribute cache coherent with reads and writes performed
// through the handle. As in the paper ("HAC accesses and updates the
// per-process file-descriptor table to implement the read-operation"),
// each read touches the descriptor table.
type trackedFile struct {
	vfs.File
	fs     *FS
	path   string
	closed bool
}

func (f *trackedFile) Read(p []byte) (int, error) {
	f.fs.fds.access()
	return f.File.Read(p)
}

func (f *trackedFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.fds.access()
	return f.File.ReadAt(p, off)
}

func (f *trackedFile) Write(p []byte) (int, error) {
	n, err := f.File.Write(p)
	if n > 0 {
		f.fs.attrs.invalidate(f.path)
	}
	return n, err
}

func (f *trackedFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := f.File.WriteAt(p, off)
	if n > 0 {
		f.fs.attrs.invalidate(f.path)
	}
	return n, err
}

func (f *trackedFile) Truncate(size int64) error {
	err := f.File.Truncate(size)
	if err == nil {
		f.fs.attrs.invalidate(f.path)
	}
	return err
}

func (f *trackedFile) Close() error {
	err := f.File.Close()
	if err == nil && !f.closed {
		f.closed = true
		f.fs.fds.close()
	}
	return err
}
