package hac

import (
	"errors"
	"reflect"
	"sort"
	"testing"

	"hacfs/internal/vfs"
)

// newTestFS builds a HAC volume over a small corpus with known terms:
//
//	/docs/apple1.txt   "apple fruit red"
//	/docs/apple2.txt   "apple banana mixed"
//	/docs/banana.txt   "banana only yellow"
//	/docs/cherry.txt   "cherry tree dark"
//	/mail/m1.txt       "apple message mail"
//	/mail/m2.txt       "cherry message mail"
func newTestFS(t *testing.T) *FS {
	t.Helper()
	fs := New(vfs.New(), Options{})
	files := map[string]string{
		"/docs/apple1.txt": "apple fruit red",
		"/docs/apple2.txt": "apple banana mixed",
		"/docs/banana.txt": "banana only yellow",
		"/docs/cherry.txt": "cherry tree dark",
		"/mail/m1.txt":     "apple message mail",
		"/mail/m2.txt":     "cherry message mail",
	}
	for p, content := range files {
		if err := fs.MkdirAll(vfs.Dir(p)); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile(p, []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	return fs
}

// targetsOf returns the sorted link targets (transient+permanent) of a
// semantic directory.
func targetsOf(t *testing.T, fs *FS, dir string) []string {
	t.Helper()
	targets, err := fs.LinkTargets(dir)
	if err != nil {
		t.Fatalf("LinkTargets(%s): %v", dir, err)
	}
	sort.Strings(targets)
	return targets
}

func wantTargets(t *testing.T, fs *FS, dir string, want ...string) {
	t.Helper()
	got := targetsOf(t, fs, dir)
	sort.Strings(want)
	if want == nil {
		want = []string{}
	}
	if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
		t.Fatalf("%s targets = %v, want %v", dir, got, want)
	}
}

func TestMkSemDirPopulates(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	if !fs.IsSemantic("/sel") {
		t.Fatal("IsSemantic = false")
	}
	wantTargets(t, fs, "/sel",
		"/docs/apple1.txt", "/docs/apple2.txt", "/mail/m1.txt")

	// The links exist as real symlinks in the underlying FS.
	entries, err := fs.ReadDir("/sel")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("ReadDir(/sel) has %d entries, want 3", len(entries))
	}
	for _, e := range entries {
		if e.Type != vfs.TypeSymlink {
			t.Fatalf("entry %s is %v, want symlink", e.Name, e.Type)
		}
	}
	// Reading through a link reaches the file (regular FS semantics).
	data, err := fs.ReadFile("/sel/apple1.txt")
	if err != nil || string(data) != "apple fruit red" {
		t.Fatalf("read through link = %q, %v", data, err)
	}
}

func TestMkSemDirEmptyQuery(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/empty", ""); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/empty")
	q, err := fs.Query("/empty")
	if err != nil || q != "" {
		t.Fatalf("Query = %q, %v", q, err)
	}
}

func TestMkSemDirBadQuery(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/bad", "((("); err == nil {
		t.Fatal("MkSemDir with bad query succeeded")
	}
	// Directory must not have been created.
	if _, err := fs.Stat("/bad"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("directory left behind: %v", err)
	}
}

func TestQueryRoundTrip(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple AND NOT banana"); err != nil {
		t.Fatal(err)
	}
	q, err := fs.Query("/sel")
	if err != nil {
		t.Fatal(err)
	}
	if q != "(apple AND (NOT banana))" {
		t.Fatalf("Query = %q", q)
	}
	wantTargets(t, fs, "/sel", "/docs/apple1.txt", "/mail/m1.txt")
	if _, err := fs.Query("/docs"); !errors.Is(err, ErrNotSemantic) {
		t.Fatalf("Query on syntactic dir err = %v", err)
	}
}

func TestScopeRefinement(t *testing.T) {
	fs := newTestFS(t)
	// Parent scoped to /docs via its position in the hierarchy.
	if err := fs.MkSemDir("/docs/fruity", "apple OR banana"); err != nil {
		t.Fatal(err)
	}
	// Scope of /docs/fruity is the /docs subtree: /mail/m1.txt excluded.
	wantTargets(t, fs, "/docs/fruity",
		"/docs/apple1.txt", "/docs/apple2.txt", "/docs/banana.txt")

	// Child refines the parent's scope (§2.3): only files that are in
	// the parent's link set can appear.
	if err := fs.MkSemDir("/docs/fruity/apples", "apple"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/docs/fruity/apples",
		"/docs/apple1.txt", "/docs/apple2.txt")

	// cherry matches nothing within the parent's scope.
	if err := fs.MkSemDir("/docs/fruity/cherries", "cherry"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/docs/fruity/cherries")
}

func TestPermanentLinkSurvivesSync(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	// User adds a link to a non-matching file: it becomes permanent.
	if err := fs.Symlink("/docs/cherry.txt", "/sel/cherry.txt"); err != nil {
		t.Fatal(err)
	}
	links, err := fs.Links("/sel")
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, l := range links {
		if l.Target == "/docs/cherry.txt" {
			found = true
			if l.Class != Permanent {
				t.Fatalf("user link class = %v, want Permanent", l.Class)
			}
		}
	}
	if !found {
		t.Fatal("user link not classified")
	}
	// A consistency pass must not delete it.
	if err := fs.Sync("/sel"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/sel",
		"/docs/apple1.txt", "/docs/apple2.txt", "/mail/m1.txt", "/docs/cherry.txt")
}

func TestProhibitedNeverReturns(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	// User deletes a transient link → prohibited.
	if err := fs.Remove("/sel/apple2.txt"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/sel", "/docs/apple1.txt", "/mail/m1.txt")

	links, _ := fs.Links("/sel")
	var prohibited bool
	for _, l := range links {
		if l.Target == "/docs/apple2.txt" && l.Class == Prohibited {
			prohibited = true
		}
	}
	if !prohibited {
		t.Fatal("deleted link not recorded as prohibited")
	}
	// Sync and Reindex must not bring it back (§2.3).
	if err := fs.Sync("/"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/sel", "/docs/apple1.txt", "/mail/m1.txt")

	// An explicit re-add by the user overrides the prohibition.
	if err := fs.Symlink("/docs/apple2.txt", "/sel/apple2.txt"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/sel",
		"/docs/apple1.txt", "/docs/apple2.txt", "/mail/m1.txt")
}

func TestUnprohibit(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/sel/apple1.txt"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/sel", "/docs/apple2.txt", "/mail/m1.txt")
	if err := fs.Unprohibit("/sel", "/docs/apple1.txt"); err != nil {
		t.Fatal(err)
	}
	// The target is eligible again and the immediate pass restores it.
	wantTargets(t, fs, "/sel",
		"/docs/apple1.txt", "/docs/apple2.txt", "/mail/m1.txt")
}

func TestMarkPermanentAndProhibited(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	// Footnote-1 API: direct manipulation of the link sets.
	if err := fs.MarkPermanent("/sel", "/docs/banana.txt"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/sel",
		"/docs/apple1.txt", "/docs/apple2.txt", "/docs/banana.txt", "/mail/m1.txt")
	// Promote an existing transient link.
	if err := fs.MarkPermanent("/sel", "/docs/apple1.txt"); err != nil {
		t.Fatal(err)
	}
	// Change the query: permanent links survive even though they do not
	// match, transient ones are replaced.
	if err := fs.SetQuery("/sel", "cherry"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/sel",
		"/docs/apple1.txt", "/docs/banana.txt", "/docs/cherry.txt", "/mail/m2.txt")

	if err := fs.MarkProhibited("/sel", "/docs/cherry.txt"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/sel",
		"/docs/apple1.txt", "/docs/banana.txt", "/mail/m2.txt")
	if err := fs.MarkPermanent("/x", "/y"); !errors.Is(err, vfs.ErrNotExist) && !errors.Is(err, ErrNotSemantic) {
		t.Fatalf("MarkPermanent on missing dir err = %v", err)
	}
}

func TestSetQueryPropagatesToChildren(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple OR cherry"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/sel/mailonly", "mail"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/sel/mailonly", "/mail/m1.txt", "/mail/m2.txt")

	// Narrow the parent: child must lose the out-of-scope link.
	if err := fs.SetQuery("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/sel/mailonly", "/mail/m1.txt")
}

func TestParentEditPropagates(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/sel/sub", "apple"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/sel/sub",
		"/docs/apple1.txt", "/docs/apple2.txt", "/mail/m1.txt")

	// Deleting a link in the parent shrinks the child's scope (§2.3
	// scope-inconsistency case 1) — immediately.
	if err := fs.Remove("/sel/apple1.txt"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/sel/sub", "/docs/apple2.txt", "/mail/m1.txt")

	// Adding a permanent link to the parent widens the child's scope.
	if err := fs.Symlink("/docs/banana.txt", "/sel/banana.txt"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetQuery("/sel/sub", "banana"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/sel/sub", "/docs/apple2.txt", "/docs/banana.txt")
}

func TestDataConsistencyIsLazy(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	// A new matching file does not appear until Reindex (§2.4).
	if err := fs.WriteFile("/docs/apple3.txt", []byte("apple new")); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/sel",
		"/docs/apple1.txt", "/docs/apple2.txt", "/mail/m1.txt")
	rep, err := fs.Reindex("/")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Added != 1 {
		t.Fatalf("Reindex added %d, want 1", rep.Added)
	}
	wantTargets(t, fs, "/sel",
		"/docs/apple1.txt", "/docs/apple2.txt", "/docs/apple3.txt", "/mail/m1.txt")

	// A deleted file's link disappears at the next Reindex.
	if err := fs.Remove("/docs/apple1.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/sel",
		"/docs/apple2.txt", "/docs/apple3.txt", "/mail/m1.txt")

	// A file modified to stop matching also drops out.
	if err := fs.WriteFile("/docs/apple2.txt", []byte("pear now")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/sel", "/docs/apple3.txt", "/mail/m1.txt")
}

func TestDirRefQueries(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/curated", "apple"); err != nil {
		t.Fatal(err)
	}
	// Hand-tune the curated set.
	if err := fs.Remove("/curated/m1.txt"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/docs/cherry.txt", "/curated/cherry.txt"); err != nil {
		t.Fatal(err)
	}
	// A query combining search with the curated directory (§2.5).
	if err := fs.MkSemDir("/combo", "dir:/curated AND NOT banana"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/combo", "/docs/apple1.txt", "/docs/cherry.txt")

	// Editing the referenced directory propagates to the referrer even
	// though it is not a hierarchical descendant.
	if err := fs.Remove("/curated/apple1.txt"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/combo", "/docs/cherry.txt")
}

func TestDAGScopingSkipsParentRestriction(t *testing.T) {
	fs := newTestFS(t)
	// A semantic dir inside an unrelated, empty syntactic directory.
	if err := fs.MkdirAll("/folders"); err != nil {
		t.Fatal(err)
	}
	// Hierarchical scoping: the parent provides no files, so a plain
	// query matches nothing.
	if err := fs.MkSemDir("/folders/plain", "apple"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/folders/plain")

	// DAG scoping (§2.5): an explicit dir: reference replaces the
	// implicit parent restriction, so the folder can classify files
	// that live elsewhere.
	if err := fs.MkSemDir("/folders/bydir", "dir:/docs AND apple"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/folders/bydir", "/docs/apple1.txt", "/docs/apple2.txt")
}

func TestDirRefSurvivesRename(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/curated", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/combo", "dir:/curated"); err != nil {
		t.Fatal(err)
	}
	// §2.5: renaming the referenced directory only updates the global
	// map; the query keeps working.
	if err := fs.Rename("/curated", "/renamed"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync("/"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/combo",
		"/docs/apple1.txt", "/docs/apple2.txt", "/mail/m1.txt")
	disp, err := fs.QueryDisplay("/combo")
	if err != nil {
		t.Fatal(err)
	}
	if disp != "dir:/renamed" {
		t.Fatalf("QueryDisplay = %q, want dir:/renamed", disp)
	}
}

func TestDirRefCycleRejected(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/a", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/b", "dir:/a"); err != nil {
		t.Fatal(err)
	}
	err := fs.SetQuery("/a", "dir:/b")
	if err == nil {
		t.Fatal("cycle accepted")
	}
	// The old query must still be in force.
	q, _ := fs.Query("/a")
	if q != "apple" {
		t.Fatalf("query after failed SetQuery = %q", q)
	}
}

func TestDanglingDirRef(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "dir:/nonexistent"); !errors.Is(err, ErrDanglingRef) {
		t.Fatalf("dangling ref err = %v", err)
	}
}

func TestRemoveReferencedDirRefused(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/curated", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/combo", "dir:/curated"); err != nil {
		t.Fatal(err)
	}
	if err := fs.RemoveAll("/curated"); !errors.Is(err, ErrDependedOn) {
		t.Fatalf("RemoveAll of referenced dir err = %v", err)
	}
	// Removing the referrer first unblocks it.
	if err := fs.RemoveAll("/combo"); err != nil {
		t.Fatal(err)
	}
	if err := fs.RemoveAll("/curated"); err != nil {
		t.Fatal(err)
	}
}

func TestMoveSemanticDirChangesScope(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/docs/sel", "apple OR cherry"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/docs/sel",
		"/docs/apple1.txt", "/docs/apple2.txt", "/docs/cherry.txt")

	// §2.3 scope-inconsistency case 2: moving the semantic directory to
	// a different parent changes its scope.
	if err := fs.Rename("/docs/sel", "/mail/sel"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/mail/sel", "/mail/m1.txt", "/mail/m2.txt")
	// Its query is intact.
	q, err := fs.Query("/mail/sel")
	if err != nil || q != "(apple OR cherry)" {
		t.Fatalf("query after move = %q, %v", q, err)
	}
}

func TestMoveLinkBetweenSemanticDirs(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/apples", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/cherries", "cherry"); err != nil {
		t.Fatal(err)
	}
	// Move a query result from one semantic dir to another: deletion
	// (prohibition) at the source, permanent link at the destination.
	if err := fs.Rename("/apples/apple1.txt", "/cherries/apple1.txt"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/apples", "/docs/apple2.txt", "/mail/m1.txt")
	wantTargets(t, fs, "/cherries",
		"/docs/apple1.txt", "/docs/cherry.txt", "/mail/m2.txt")

	links, _ := fs.Links("/cherries")
	for _, l := range links {
		if l.Target == "/docs/apple1.txt" && l.Class != Permanent {
			t.Fatalf("moved link class = %v, want Permanent", l.Class)
		}
	}
	// And the prohibition holds at the source across syncs.
	if err := fs.Sync("/"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/apples", "/docs/apple2.txt", "/mail/m1.txt")
}

func TestMakeSemantic(t *testing.T) {
	fs := newTestFS(t)
	// /docs exists with files; convert it in place.
	if err := fs.MkdirAll("/hand"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/mail/m2.txt", "/hand/keep.txt"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MakeSemantic("/hand", "apple"); err != nil {
		t.Fatal(err)
	}
	// Pre-existing symlink adopted as permanent; query results added.
	wantTargets(t, fs, "/hand",
		"/docs/apple1.txt", "/docs/apple2.txt", "/mail/m1.txt", "/mail/m2.txt")
	links, _ := fs.Links("/hand")
	for _, l := range links {
		if l.Target == "/mail/m2.txt" && l.Class != Permanent {
			t.Fatalf("adopted link class = %v", l.Class)
		}
	}
	if err := fs.MakeSemantic("/docs/apple1.txt", "x"); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatalf("MakeSemantic on file err = %v", err)
	}
}

func TestFuzzyQueryEndToEnd(t *testing.T) {
	fs := newTestFS(t)
	// "~aple" is one edit from "apple"; Glimpse-style approximate match.
	if err := fs.MkSemDir("/sel", "~aple"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/sel",
		"/docs/apple1.txt", "/docs/apple2.txt", "/mail/m1.txt")
}

func TestSearch(t *testing.T) {
	fs := newTestFS(t)
	got, err := fs.SearchPaths("apple AND banana", "/")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"/docs/apple2.txt"}) {
		t.Fatalf("Search = %v", got)
	}
	// Scoped search.
	got, err = fs.SearchPaths("apple", "/mail")
	if err != nil || !reflect.DeepEqual(got, []string{"/mail/m1.txt"}) {
		t.Fatalf("scoped Search = %v, %v", got, err)
	}
	// Empty query.
	got, err = fs.SearchPaths("", "/")
	if err != nil || got != nil {
		t.Fatalf("empty Search = %v, %v", got, err)
	}
}

func TestExtractLocal(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "cherry"); err != nil {
		t.Fatal(err)
	}
	data, err := fs.Extract("/sel/cherry.txt")
	if err != nil || string(data) != "cherry tree dark" {
		t.Fatalf("Extract = %q, %v", data, err)
	}
	// Extract on a plain file reads the file.
	data, err = fs.Extract("/docs/banana.txt")
	if err != nil || string(data) != "banana only yellow" {
		t.Fatalf("Extract plain = %q, %v", data, err)
	}
}

func TestLinkNameCollisions(t *testing.T) {
	fs := New(vfs.New(), Options{})
	for _, p := range []string{"/a", "/b"} {
		if err := fs.MkdirAll(p); err != nil {
			t.Fatal(err)
		}
	}
	// Two files with the same base name, both matching.
	if err := fs.WriteFile("/a/same.txt", []byte("needle one")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/b/same.txt", []byte("needle two")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/sel", "needle"); err != nil {
		t.Fatal(err)
	}
	entries, err := fs.ReadDir("/sel")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("expected 2 links, got %d", len(entries))
	}
	names := map[string]bool{}
	for _, e := range entries {
		names[e.Name] = true
	}
	if !names["same.txt"] || !names["same.txt~2"] {
		t.Fatalf("collision names = %v", names)
	}
}

func TestPassThroughEquivalence(t *testing.T) {
	// Invariant I8: hierarchical operations behave exactly like the raw
	// substrate.
	raw := vfs.New()
	layered := New(vfs.New(), Options{})

	type op func(fs vfs.FileSystem) error
	ops := []op{
		func(fs vfs.FileSystem) error { return fs.MkdirAll("/a/b") },
		func(fs vfs.FileSystem) error { return fs.WriteFile("/a/b/f.txt", []byte("hello")) },
		func(fs vfs.FileSystem) error { return fs.Symlink("/a/b/f.txt", "/a/ln") },
		func(fs vfs.FileSystem) error { return fs.Rename("/a/b/f.txt", "/a/b/g.txt") },
		func(fs vfs.FileSystem) error { return fs.Mkdir("/a/c") },
		func(fs vfs.FileSystem) error { return fs.Remove("/a/c") },
		func(fs vfs.FileSystem) error { return fs.WriteFile("/a/b/h.txt", []byte("h")) },
		func(fs vfs.FileSystem) error { return fs.RemoveAll("/a/b") },
	}
	for i, o := range ops {
		errRaw := o(raw)
		errHAC := o(layered)
		if (errRaw == nil) != (errHAC == nil) {
			t.Fatalf("op %d diverged: raw=%v hac=%v", i, errRaw, errHAC)
		}
	}
	rawFiles, _ := vfs.Files(raw, "/")
	hacFiles, _ := vfs.Files(layered, "/")
	if !reflect.DeepEqual(rawFiles, hacFiles) {
		t.Fatalf("file sets diverged: %v vs %v", rawFiles, hacFiles)
	}
}

func TestAttrCacheCoherence(t *testing.T) {
	fs := newTestFS(t)
	// Prime the cache, then hit it.
	before, err := fs.Stat("/docs/apple1.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/docs/apple1.txt"); err != nil {
		t.Fatal(err)
	}
	// A write must invalidate.
	if err := fs.WriteFile("/docs/apple1.txt", []byte("much longer content than before")); err != nil {
		t.Fatal(err)
	}
	after, err := fs.Stat("/docs/apple1.txt")
	if err != nil {
		t.Fatal(err)
	}
	if after.Size == before.Size {
		t.Fatalf("stale Stat after WriteFile: size %d", after.Size)
	}
	// A write through a handle must invalidate too.
	f, err := fs.OpenFile("/docs/apple1.txt", vfs.OWrite|vfs.OAppend)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("xxxx")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	again, _ := fs.Stat("/docs/apple1.txt")
	if again.Size != after.Size+4 {
		t.Fatalf("stale Stat after handle write: %d, want %d", again.Size, after.Size+4)
	}
	// Remove must invalidate.
	if err := fs.Remove("/docs/apple1.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/docs/apple1.txt"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("Stat of removed cached file err = %v", err)
	}
	s := fs.Stats()
	if s.AttrHits == 0 {
		t.Fatal("attribute cache never hit")
	}
}

func TestRenameDirKeepsIndexAndCache(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.Rename("/docs", "/papers"); err != nil {
		t.Fatal(err)
	}
	// The index followed the rename without a Reindex.
	got, err := fs.SearchPaths("cherry", "/papers")
	if err != nil || len(got) != 1 || got[0] != "/papers/cherry.txt" {
		t.Fatalf("Search after dir rename = %v, %v", got, err)
	}
	if _, err := fs.Stat("/docs/apple1.txt"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("stale cache entry for old path")
	}
}

func TestStatsAndFootprints(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	s := fs.Stats()
	if s.SemanticDirs != 1 || s.Directories < 3 || s.GraphNodes < 3 {
		t.Fatalf("Stats = %+v", s)
	}
	if fs.MetadataBytes() <= 0 {
		t.Fatal("MetadataBytes not positive")
	}
	if fs.SharedMemoryBytes() < 0 {
		t.Fatal("SharedMemoryBytes negative")
	}
	if s.OpenHandles != 0 {
		t.Fatalf("OpenHandles = %d, want 0", s.OpenHandles)
	}
}

func TestSyncIdempotent(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple OR banana"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/sel/sub", "banana"); err != nil {
		t.Fatal(err)
	}
	first := targetsOf(t, fs, "/sel/sub")
	for i := 0; i < 3; i++ {
		if err := fs.Sync("/"); err != nil {
			t.Fatal(err)
		}
	}
	if got := targetsOf(t, fs, "/sel/sub"); !reflect.DeepEqual(got, first) {
		t.Fatalf("Sync not idempotent: %v → %v", first, got)
	}
}
