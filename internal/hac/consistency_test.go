package hac

import (
	"fmt"
	"math/rand"
	"testing"

	"hacfs/internal/vfs"
)

// This file checks the DESIGN.md invariants I1–I7 under randomized
// operation sequences — the heart of the paper's scope-consistency
// claim.

// consistencyHarness drives a HAC volume through random user actions
// and then verifies the invariants.
type consistencyHarness struct {
	t   *testing.T
	fs  *FS
	rng *rand.Rand
	// semantic dirs created, in creation order (parents before
	// children).
	semDirs []string
	terms   []string
}

func newConsistencyHarness(t *testing.T, seed int64) *consistencyHarness {
	h := &consistencyHarness{
		t:     t,
		fs:    New(vfs.New(), Options{}),
		rng:   rand.New(rand.NewSource(seed)),
		terms: []string{"red", "green", "blue", "round", "flat"},
	}
	// Corpus: 30 files with random term subsets.
	if err := h.fs.MkdirAll("/data"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		var content string
		for _, term := range h.terms {
			if h.rng.Intn(2) == 0 {
				content += term + " "
			}
		}
		if err := h.fs.WriteFile(fmt.Sprintf("/data/f%02d.txt", i), []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	return h
}

func (h *consistencyHarness) randTerm() string { return h.terms[h.rng.Intn(len(h.terms))] }

func (h *consistencyHarness) randQuery() string {
	switch h.rng.Intn(4) {
	case 0:
		return h.randTerm()
	case 1:
		return h.randTerm() + " AND " + h.randTerm()
	case 2:
		return h.randTerm() + " OR " + h.randTerm()
	default:
		return h.randTerm() + " AND NOT " + h.randTerm()
	}
}

// step performs one random user action.
func (h *consistencyHarness) step(i int) {
	switch h.rng.Intn(9) {
	case 0: // create a semantic dir at the root
		p := fmt.Sprintf("/sd%d", i)
		if err := h.fs.MkSemDir(p, h.randQuery()); err == nil {
			h.semDirs = append(h.semDirs, p)
		}
	case 1: // create a semantic child of an existing semantic dir
		if len(h.semDirs) == 0 {
			return
		}
		parent := h.semDirs[h.rng.Intn(len(h.semDirs))]
		p := vfs.Join(parent, fmt.Sprintf("sub%d", i))
		if err := h.fs.MkSemDir(p, h.randQuery()); err == nil {
			h.semDirs = append(h.semDirs, p)
		}
	case 2: // delete a random link (→ prohibited)
		if len(h.semDirs) == 0 {
			return
		}
		dir := h.semDirs[h.rng.Intn(len(h.semDirs))]
		entries, err := h.fs.ReadDir(dir)
		if err != nil || len(entries) == 0 {
			return
		}
		e := entries[h.rng.Intn(len(entries))]
		if e.Type == vfs.TypeSymlink {
			_ = h.fs.Remove(vfs.Join(dir, e.Name))
		}
	case 3: // add a permanent link to a random file
		if len(h.semDirs) == 0 {
			return
		}
		dir := h.semDirs[h.rng.Intn(len(h.semDirs))]
		target := fmt.Sprintf("/data/f%02d.txt", h.rng.Intn(30))
		_ = h.fs.Symlink(target, vfs.Join(dir, fmt.Sprintf("perm%d", i)))
	case 4: // change a query
		if len(h.semDirs) == 0 {
			return
		}
		dir := h.semDirs[h.rng.Intn(len(h.semDirs))]
		_ = h.fs.SetQuery(dir, h.randQuery())
	case 5: // modify a corpus file, then reindex sometimes
		p := fmt.Sprintf("/data/f%02d.txt", h.rng.Intn(30))
		_ = h.fs.WriteFile(p, []byte(h.randQuery()))
		if h.rng.Intn(3) == 0 {
			if _, err := h.fs.Reindex("/"); err != nil {
				h.t.Fatalf("Reindex: %v", err)
			}
		}
	case 6: // rename a corpus file (classified targets must follow)
		from := fmt.Sprintf("/data/f%02d.txt", h.rng.Intn(30))
		to := fmt.Sprintf("/data/r%02d-%d.txt", h.rng.Intn(30), i)
		_ = h.fs.Rename(from, to)
	case 7: // footnote-1 API: force a permanent link
		if len(h.semDirs) == 0 {
			return
		}
		dir := h.semDirs[h.rng.Intn(len(h.semDirs))]
		target := fmt.Sprintf("/data/f%02d.txt", h.rng.Intn(30))
		_ = h.fs.MarkPermanent(dir, target)
	case 8: // lift a prohibition if one exists
		if len(h.semDirs) == 0 {
			return
		}
		dir := h.semDirs[h.rng.Intn(len(h.semDirs))]
		_, _, proh := h.linkSets(dir)
		for t := range proh {
			_ = h.fs.Unprohibit(dir, t)
			break
		}
	}
}

// linkSets returns (transient, permanent, prohibited) target sets of a
// semantic dir.
func (h *consistencyHarness) linkSets(dir string) (trans, perm, proh map[string]bool) {
	trans, perm, proh = map[string]bool{}, map[string]bool{}, map[string]bool{}
	links, err := h.fs.Links(dir)
	if err != nil {
		h.t.Fatalf("Links(%s): %v", dir, err)
	}
	for _, l := range links {
		switch l.Class {
		case Transient:
			trans[l.Target] = true
		case Permanent:
			perm[l.Target] = true
		case Prohibited:
			proh[l.Target] = true
		}
	}
	return trans, perm, proh
}

// scopeOf reproduces the scope definition independently: for a semantic
// parent, its link targets plus direct regular files; otherwise all
// indexed files under the parent path.
func (h *consistencyHarness) scopeOf(parent string) map[string]bool {
	out := map[string]bool{}
	if h.fs.IsSemantic(parent) {
		trans, perm, _ := h.linkSets(parent)
		for t := range trans {
			out[t] = true
		}
		for t := range perm {
			out[t] = true
		}
		entries, _ := h.fs.ReadDir(parent)
		for _, e := range entries {
			if e.Type == vfs.TypeFile {
				out[vfs.Join(parent, e.Name)] = true
			}
		}
		return out
	}
	bm := h.fs.Index().DocsUnder(parent)
	for _, p := range h.fs.Index().Paths(bm) {
		out[p] = true
	}
	return out
}

// verify asserts the invariants for every semantic directory.
func (h *consistencyHarness) verify(tag string) {
	for _, dir := range h.semDirs {
		if !h.fs.IsSemantic(dir) {
			continue // may have been removed
		}
		trans, perm, proh := h.linkSets(dir)
		scope := h.scopeOf(vfs.Dir(dir))

		// I1: transient ⊆ parent scope.
		for t := range trans {
			if IsRemoteTarget(t) {
				continue
			}
			if !scope[t] {
				h.t.Fatalf("%s: I1 violated in %s: transient %s outside scope", tag, dir, t)
			}
		}
		// I4: prohibited ∩ transient = ∅.
		for t := range proh {
			if trans[t] {
				h.t.Fatalf("%s: I4 violated in %s: prohibited %s is transient", tag, dir, t)
			}
		}
		// Classes are disjoint.
		for t := range perm {
			if trans[t] {
				h.t.Fatalf("%s: %s both transient and permanent in %s", tag, t, dir)
			}
		}
		// The directory's real symlinks mirror the classification.
		entries, err := h.fs.ReadDir(dir)
		if err != nil {
			h.t.Fatalf("%s: ReadDir(%s): %v", tag, dir, err)
		}
		linkCount := 0
		for _, e := range entries {
			if e.Type == vfs.TypeSymlink {
				linkCount++
			}
		}
		if linkCount != len(trans)+len(perm) {
			h.t.Fatalf("%s: %s has %d symlinks but %d classified links",
				tag, dir, linkCount, len(trans)+len(perm))
		}
	}
}

// verifyI2 asserts the completeness half of the invariant after a full
// Sync: transient = match(query, scope) − permanent − prohibited.
func (h *consistencyHarness) verifyI2() {
	for _, dir := range h.semDirs {
		if !h.fs.IsSemantic(dir) {
			continue
		}
		q, err := h.fs.Query(dir)
		if err != nil {
			continue
		}
		trans, perm, proh := h.linkSets(dir)
		want := map[string]bool{}
		if q != "" {
			matches, err := h.fs.SearchPaths(q, vfs.Dir(dir))
			if err != nil {
				h.t.Fatalf("Search(%q): %v", q, err)
			}
			for _, m := range matches {
				if !perm[m] && !proh[m] {
					want[m] = true
				}
			}
		}
		if len(want) != len(trans) {
			h.t.Fatalf("I2 violated in %s: transient %v, want %v (query %q)", dir, trans, want, q)
		}
		for m := range want {
			if !trans[m] {
				h.t.Fatalf("I2 violated in %s: missing transient %s", dir, m)
			}
		}
	}
}

func TestConsistencyRandomized(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			h := newConsistencyHarness(t, seed)
			for i := 0; i < 60; i++ {
				h.step(i)
				h.verify(fmt.Sprintf("step %d", i))
			}
			// After settling everything, the full invariant holds.
			if _, err := h.fs.Reindex("/"); err != nil {
				t.Fatal(err)
			}
			h.verify("final")
			h.verifyI2()
			if problems := h.fs.CheckConsistency(); len(problems) != 0 {
				t.Fatalf("audit failed: %v", problems)
			}

			// I7: Sync is idempotent.
			before := map[string][]string{}
			for _, d := range h.semDirs {
				if h.fs.IsSemantic(d) {
					before[d], _ = h.fs.LinkTargets(d)
				}
			}
			if err := h.fs.SyncAll(); err != nil {
				t.Fatal(err)
			}
			for d, want := range before {
				got, _ := h.fs.LinkTargets(d)
				if len(got) != len(want) {
					t.Fatalf("I7 violated: %s changed across idempotent sync", d)
				}
			}
		})
	}
}

// I3: consistency runs never mutate permanent or prohibited sets.
func TestConsistencyPreservesUserSets(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/docs/cherry.txt", "/sel/mine"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/sel/apple1.txt"); err != nil {
		t.Fatal(err)
	}

	snapshot := func() (perm, proh []string) {
		links, _ := fs.Links("/sel")
		for _, l := range links {
			switch l.Class {
			case Permanent:
				perm = append(perm, l.Target)
			case Prohibited:
				proh = append(proh, l.Target)
			}
		}
		return perm, proh
	}
	permBefore, prohBefore := snapshot()

	for i := 0; i < 3; i++ {
		if err := fs.SyncAll(); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Reindex("/"); err != nil {
			t.Fatal(err)
		}
	}
	permAfter, prohAfter := snapshot()
	if len(permBefore) != len(permAfter) || len(prohBefore) != len(prohAfter) {
		t.Fatalf("I3 violated: perm %v→%v, proh %v→%v",
			permBefore, permAfter, prohBefore, prohAfter)
	}
}

// Deep chains: a 5-level hierarchy refines correctly after edits at the
// top.
func TestDeepHierarchyPropagation(t *testing.T) {
	fs := newTestFS(t)
	paths := []string{"/l1", "/l1/l2", "/l1/l2/l3", "/l1/l2/l3/l4"}
	queries := []string{"apple OR banana OR cherry", "apple OR banana", "apple", "apple AND fruit"}
	for i, p := range paths {
		if err := fs.MkSemDir(p, queries[i]); err != nil {
			t.Fatal(err)
		}
	}
	wantTargets(t, fs, "/l1/l2/l3/l4", "/docs/apple1.txt")
	// Prohibit apple1 at the top: everything below loses it.
	if err := fs.Remove("/l1/apple1.txt"); err != nil {
		t.Fatal(err)
	}
	for _, p := range paths[1:] {
		for _, target := range targetsOf(t, fs, p) {
			if target == "/docs/apple1.txt" {
				t.Fatalf("%s still holds pruned target", p)
			}
		}
	}
	wantTargets(t, fs, "/l1/l2/l3/l4")
}
