package hac

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"hacfs/internal/vfs"
)

// newPagingFS builds a volume with many matching files so paging has
// several pages to walk.
func newPagingFS(t *testing.T, n int) *FS {
	t.Helper()
	fs := New(vfs.New(), Options{})
	if err := fs.MkdirAll("/corpus"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("/corpus/f%03d.txt", i)
		if err := fs.WriteFile(p, []byte("common payload")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestSearchPagedIteration(t *testing.T) {
	fs := newPagingFS(t, 20)
	res, err := fs.Search(context.Background(), "common", WithPageSize(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 20 {
		t.Fatalf("Len = %d, want 20", res.Len())
	}
	var all []string
	pages := 0
	for {
		page, ok := res.Next()
		if !ok {
			break
		}
		pages++
		if len(page) > 7 {
			t.Fatalf("page %d has %d paths, page size 7", pages, len(page))
		}
		all = append(all, page...)
	}
	if pages != 3 {
		t.Fatalf("pages = %d, want 3 (7+7+6)", pages)
	}
	want, err := fs.SearchPaths("common", "/")
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(all)
	if !reflect.DeepEqual(all, want) {
		t.Fatalf("paged union = %v\nwant %v", all, want)
	}
}

func TestSearchCursorResume(t *testing.T) {
	fs := newPagingFS(t, 12)
	res, err := fs.Search(context.Background(), "common", WithPageSize(5))
	if err != nil {
		t.Fatal(err)
	}
	first, ok := res.Next()
	if !ok || len(first) != 5 {
		t.Fatalf("first page = %v", first)
	}
	// Resume from the cursor with a fresh Search: must yield exactly the
	// remaining documents.
	rest, err := fs.Search(context.Background(), "common", WithAfter(res.Cursor()))
	if err != nil {
		t.Fatal(err)
	}
	got := append(append([]string{}, first...), rest.All()...)
	sort.Strings(got)
	want, _ := fs.SearchPaths("common", "/")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cursor resume union = %v\nwant %v", got, want)
	}
}

func TestSearchLimit(t *testing.T) {
	fs := newPagingFS(t, 20)
	res, err := fs.Search(context.Background(), "common", WithLimit(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 || len(res.All()) != 4 {
		t.Fatalf("limited Len = %d", res.Len())
	}
}

func TestSearchPageProtocolShape(t *testing.T) {
	fs := newPagingFS(t, 9)
	var got []string
	var cursor uint64
	for rounds := 0; ; rounds++ {
		if rounds > 10 {
			t.Fatal("SearchPage did not terminate")
		}
		page, next, err := fs.SearchPage("common", "/", cursor, 4)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page...)
		if next == 0 {
			break
		}
		cursor = next
	}
	want, _ := fs.SearchPaths("common", "/")
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SearchPage union = %v\nwant %v", got, want)
	}
}

func TestSearchCacheHitAndVersionInvalidation(t *testing.T) {
	fs := newTestFS(t)
	r1, err := fs.Search(context.Background(), "apple", WithScope("/docs"))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats().Cached {
		t.Fatal("first search reported cached")
	}
	r2, err := fs.Search(context.Background(), "apple", WithScope("/docs"))
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Stats().Cached {
		t.Fatal("identical second search not served from cache")
	}
	if !reflect.DeepEqual(r2.All(), r1.All()) {
		t.Fatal("cached result differs from computed result")
	}
	// Any index mutation advances the version and invalidates.
	if err := fs.WriteFile("/docs/apple9.txt", []byte("apple late")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Reindex("/docs"); err != nil {
		t.Fatal(err)
	}
	r3, err := fs.Search(context.Background(), "apple", WithScope("/docs"))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Stats().Cached {
		t.Fatal("stale entry served after index mutation")
	}
	paths := r3.All()
	sort.Strings(paths)
	want, _ := fs.SearchPaths("apple", "/docs")
	if !reflect.DeepEqual(paths, want) || len(paths) != 3 {
		t.Fatalf("post-mutation result = %v", paths)
	}
}

func TestSearchCacheDepgraphInvalidation(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	// Warm the cache through both semantic inputs: /sel as scope and as
	// a dir: reference.
	warm := func(q, scope string) []string {
		t.Helper()
		res, err := fs.Search(context.Background(), q, WithScope(scope))
		if err != nil {
			t.Fatal(err)
		}
		return res.All()
	}
	warm("fruit", "/sel")
	warm("dir:/sel AND fruit", "/")
	assertCached := func(q, scope string, want bool) {
		t.Helper()
		res, err := fs.Search(context.Background(), q, WithScope(scope))
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats().Cached != want {
			t.Fatalf("cached(%q, %q) = %v, want %v", q, scope, res.Stats().Cached, want)
		}
	}
	assertCached("fruit", "/sel", true)
	assertCached("dir:/sel AND fruit", "/", true)

	// Prohibiting a target changes the scope /sel provides; both cached
	// entries must die even though the index itself did not change.
	if err := fs.MarkProhibited("/sel", "/docs/apple1.txt"); err != nil {
		t.Fatal(err)
	}
	res, err := fs.Search(context.Background(), "fruit", WithScope("/sel"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats().Cached {
		t.Fatal("scope-stale entry served after MarkProhibited")
	}
	for _, p := range res.All() {
		if p == "/docs/apple1.txt" {
			t.Fatal("prohibited target still in scoped search result")
		}
	}
	res, err = fs.Search(context.Background(), "dir:/sel AND fruit", WithScope("/"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats().Cached {
		t.Fatal("ref-stale entry served after MarkProhibited")
	}
}

func TestSearchCacheTransitiveDepgraphInvalidation(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/base", "apple"); err != nil {
		t.Fatal(err)
	}
	// /derived's query references /base, so the depgraph records the
	// dependency; a link change in /base must invalidate searches that
	// only read /derived.
	if err := fs.MkSemDir("/derived", "dir:/base AND fruit"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := fs.Search(ctx, "fruit", WithScope("/derived")); err != nil {
		t.Fatal(err)
	}
	res, err := fs.Search(ctx, "fruit", WithScope("/derived"))
	if err != nil || !res.Stats().Cached {
		t.Fatalf("warmup not cached (err=%v)", err)
	}
	if err := fs.MarkProhibited("/base", "/docs/apple1.txt"); err != nil {
		t.Fatal(err)
	}
	res, err = fs.Search(ctx, "fruit", WithScope("/derived"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats().Cached {
		t.Fatal("transitively stale entry served: /base changed, /derived scope cached")
	}
	for _, p := range res.All() {
		if p == "/docs/apple1.txt" {
			t.Fatal("prohibited upstream target leaked into derived scope")
		}
	}
}

func TestSearchWithoutCache(t *testing.T) {
	fs := newTestFS(t)
	ctx := context.Background()
	if _, err := fs.Search(ctx, "apple", WithoutCache()); err != nil {
		t.Fatal(err)
	}
	res, err := fs.Search(ctx, "apple", WithoutCache())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats().Cached {
		t.Fatal("WithoutCache search served from cache")
	}
	if fs.qcache.Len() != 0 {
		t.Fatalf("WithoutCache populated the cache (%d entries)", fs.qcache.Len())
	}
}

func TestSearchDanglingRefTypedError(t *testing.T) {
	fs := newTestFS(t)
	_, err := fs.Search(context.Background(), "dir:/nowhere")
	if !errors.Is(err, ErrDanglingRef) {
		t.Fatalf("err = %v, want ErrDanglingRef", err)
	}
	var pe *vfs.PathError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *vfs.PathError", err)
	}
	if pe.Op != "search" || pe.Path != "dir:/nowhere" {
		t.Fatalf("PathError = {Op:%q Path:%q}", pe.Op, pe.Path)
	}
}

func TestSearchContextCanceled(t *testing.T) {
	fs := newTestFS(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fs.Search(ctx, "apple"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSearchExplainAndStats(t *testing.T) {
	fs := newTestFS(t)
	res, err := fs.Search(context.Background(), "apple AND fruit", WithScope("/docs"))
	if err != nil {
		t.Fatal(err)
	}
	ex := res.Explain()
	if ex == "" || res.Plan() == nil {
		t.Fatalf("Explain = %q, Plan = %v", ex, res.Plan())
	}
	if res.Stats().Leaves == 0 {
		t.Fatalf("stats = %+v, want evaluated leaves", res.Stats())
	}
	// Empty query: a well-formed empty result.
	empty, err := fs.Search(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 || empty.Plan() != nil {
		t.Fatalf("empty query result = %+v", empty)
	}
	if _, ok := empty.Next(); ok {
		t.Fatal("empty result produced a page")
	}
}

func TestSearchEquivalentToOldSemantics(t *testing.T) {
	// SearchPaths (the compatibility wrapper over the planner) must agree
	// with naive evaluation for a spread of query shapes and scopes.
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"apple", "apple AND banana", "apple OR cherry",
		"NOT apple", "apple AND NOT banana", "fru*", "mesage~",
		"dir:/sel AND fruit", "NOT (apple OR banana)",
	}
	scopes := []string{"/", "/docs", "/mail", "/sel"}
	for _, q := range queries {
		for _, scope := range scopes {
			got, err := fs.SearchPaths(q, scope)
			if err != nil {
				t.Fatalf("SearchPaths(%q, %q): %v", q, scope, err)
			}
			// Second run exercises the cache path; must be identical.
			again, err := fs.SearchPaths(q, scope)
			if err != nil || !reflect.DeepEqual(got, again) {
				t.Fatalf("cached SearchPaths(%q, %q) = %v, first %v (err=%v)",
					q, scope, again, got, err)
			}
		}
	}
}
