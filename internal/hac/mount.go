package hac

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"hacfs/internal/vfs"
)

// Namespace is a remote file or query system that can be semantically
// mounted (§3). It is deliberately opaque: HAC ships the user's query
// text and gets back result identifiers, "with whatever query mechanism
// is used there".
type Namespace interface {
	// Name identifies the namespace within one HAC volume; link targets
	// embed it.
	Name() string
	// Search evaluates a query and returns matching paths within the
	// namespace.
	Search(query string) ([]string, error)
	// Fetch retrieves the content behind one result, for the sact
	// command.
	Fetch(path string) ([]byte, error)
}

// ContextNamespace is implemented by namespaces whose calls honor a
// context (cancellation and deadlines). HAC bounds every evaluation-time
// remote call with the volume's RemoteTimeout through this interface;
// plain Namespaces are called without a bound.
type ContextNamespace interface {
	Namespace
	SearchContext(ctx context.Context, query string) ([]string, error)
	FetchContext(ctx context.Context, path string) ([]byte, error)
}

// rpcCtx derives the context for one remote namespace call: the pass
// context bounded by the volume's RemoteTimeout.
func (fs *FS) rpcCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if fs.remoteTimeout > 0 {
		return context.WithTimeout(ctx, fs.remoteTimeout)
	}
	return ctx, func() {}
}

// nsSearch runs one namespace search, context-bounded when the
// namespace supports it.
func (fs *FS) nsSearch(ctx context.Context, ns Namespace, q string) ([]string, error) {
	start := time.Now()
	defer fs.met.nsSearchSeconds.ObserveSince(start)
	var results []string
	var err error
	if cns, ok := ns.(ContextNamespace); ok {
		cctx, cancel := fs.rpcCtx(ctx)
		defer cancel()
		results, err = cns.SearchContext(cctx, q)
	} else {
		results, err = ns.Search(q)
	}
	if err != nil {
		fs.met.nsErrors.Add(1)
	}
	return results, err
}

// nsFetch runs one namespace fetch, context-bounded when the namespace
// supports it.
func (fs *FS) nsFetch(ctx context.Context, ns Namespace, path string) ([]byte, error) {
	if cns, ok := ns.(ContextNamespace); ok {
		cctx, cancel := fs.rpcCtx(ctx)
		defer cancel()
		return cns.FetchContext(cctx, path)
	}
	return ns.Fetch(path)
}

// remoteScheme prefixes link targets that point into mounted
// namespaces: "remote://<namespace><path>".
const remoteScheme = "remote://"

// RemoteTarget builds the link-target string for a result from a
// namespace.
func RemoteTarget(nsName, path string) string {
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	return remoteScheme + nsName + path
}

// splitRemoteTarget parses a remote link target. ok is false for local
// targets.
func splitRemoteTarget(target string) (nsName, path string, ok bool) {
	if !strings.HasPrefix(target, remoteScheme) {
		return "", "", false
	}
	rest := target[len(remoteScheme):]
	i := strings.IndexByte(rest, '/')
	if i <= 0 {
		return "", "", false
	}
	return rest[:i], rest[i:], true
}

// IsRemoteTarget reports whether a link target points into a mounted
// namespace.
func IsRemoteTarget(target string) bool {
	_, _, ok := splitRemoteTarget(target)
	return ok
}

// SemanticMount mounts a namespace at the directory path (the paper's
// smount). Several namespaces may be mounted on the same point —
// a multiple semantic mount point (§3.2) — and their results are
// treated as disjoint sets. Namespace names must be unique within the
// volume. Queries whose scope includes the mount point start importing
// results from the namespace immediately.
func (fs *FS) SemanticMount(path string, ns Namespace) error {
	clean, err := vfs.Clean(path)
	if err != nil {
		return &vfs.PathError{Op: "smount", Path: path, Err: err}
	}
	if ns == nil || ns.Name() == "" {
		return &vfs.PathError{Op: "smount", Path: path, Err: vfs.ErrInvalid}
	}
	info, err := fs.under.Stat(clean)
	if err != nil {
		return err
	}
	if !info.IsDir() {
		return &vfs.PathError{Op: "smount", Path: path, Err: vfs.ErrNotDir}
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, existing := range fs.mounts {
		for _, e := range existing {
			if e.Name() == ns.Name() {
				return fmt.Errorf("hac: namespace %q already mounted", ns.Name())
			}
		}
	}
	fs.registerDirLocked(clean)
	fs.mounts[clean] = append(fs.mounts[clean], ns)
	fs.gen++
	// Queries whose scope covers the new mount must import its results.
	return fs.syncAllLocked()
}

// SemanticUnmount detaches the named namespace from the mount point at
// path.
func (fs *FS) SemanticUnmount(path, nsName string) error {
	clean, err := vfs.Clean(path)
	if err != nil {
		return &vfs.PathError{Op: "sumount", Path: path, Err: err}
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	list := fs.mounts[clean]
	for i, ns := range list {
		if ns.Name() == nsName {
			fs.mounts[clean] = append(list[:i], list[i+1:]...)
			if len(fs.mounts[clean]) == 0 {
				delete(fs.mounts, clean)
			}
			fs.gen++
			return fs.syncAllLocked()
		}
	}
	return fmt.Errorf("%w: %s at %s", ErrNoNamespace, nsName, clean)
}

// SemanticMounts returns mount-point path → mounted namespace names.
func (fs *FS) SemanticMounts() map[string][]string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make(map[string][]string, len(fs.mounts))
	for p, list := range fs.mounts {
		names := make([]string, len(list))
		for i, ns := range list {
			names[i] = ns.Name()
		}
		sort.Strings(names)
		out[p] = names
	}
	return out
}

// syncAllLocked is SyncAll with fs.mu already held for writing (always
// serial — used by mutation paths).
func (fs *FS) syncAllLocked() error {
	for _, uid := range fs.graph.TopoAll() {
		ds, ok := fs.dirs[uid]
		if !ok || !ds.semantic {
			continue
		}
		if err := fs.reevalLocked(ds); err != nil {
			return err
		}
	}
	return nil
}

// evalRemoteLocked computes the remote link targets for ds's query
// (§3): every namespace mounted within the scope provided by
// parentPath evaluates the query independently; when the parent is
// itself semantic, results are further restricted to the remote
// targets the parent provides. Each remote call is bounded by ctx and
// the volume's RemoteTimeout. Caller holds fs.mu (read suffices).
func (fs *FS) evalRemoteLocked(ctx context.Context, ds *dirState, parentPath string) (map[string]bool, error) {
	if len(fs.mounts) == 0 || ds.queryText == "" {
		return nil, nil
	}
	out := make(map[string]bool)

	parentDS, ok := fs.stateAtLocked(parentPath)
	if ok && parentDS.semantic {
		// Scope = the parent's remote link targets. Query each
		// namespace that contributed and intersect.
		scope := make(map[string]bool)
		nsNames := make(map[string]bool)
		for t := range parentDS.class {
			if name, _, isRemote := splitRemoteTarget(t); isRemote {
				scope[t] = true
				nsNames[name] = true
			}
		}
		if len(scope) == 0 {
			return nil, nil
		}
		for _, list := range fs.mounts {
			for _, ns := range list {
				if !nsNames[ns.Name()] {
					continue
				}
				results, err := fs.nsSearch(ctx, ns, ds.queryText)
				if err != nil {
					return nil, fmt.Errorf("hac: remote search in %s: %w", ns.Name(), err)
				}
				for _, r := range results {
					t := RemoteTarget(ns.Name(), r)
					if scope[t] {
						out[t] = true
					}
				}
			}
		}
		return out, nil
	}

	// Syntactic parent: every mount point inside its subtree is in
	// scope; results are imported wholesale.
	for mp, list := range fs.mounts {
		if !vfs.HasPrefix(mp, parentPath) {
			continue
		}
		for _, ns := range list {
			results, err := fs.nsSearch(ctx, ns, ds.queryText)
			if err != nil {
				return nil, fmt.Errorf("hac: remote search in %s: %w", ns.Name(), err)
			}
			for _, r := range results {
				out[RemoteTarget(ns.Name(), r)] = true
			}
		}
	}
	return out, nil
}

// Extract returns the content behind a link in a semantic directory —
// the paper's sact command. Local targets are read through the file
// system; remote targets are fetched from their namespace. A plain file
// path reads the file itself.
func (fs *FS) Extract(linkPath string) ([]byte, error) {
	clean, err := vfs.Clean(linkPath)
	if err != nil {
		return nil, &vfs.PathError{Op: "sact", Path: linkPath, Err: err}
	}
	info, err := fs.under.Lstat(clean)
	if err != nil {
		return nil, err
	}
	if info.Type != vfs.TypeSymlink {
		return fs.under.ReadFile(clean)
	}
	target, err := fs.under.Readlink(clean)
	if err != nil {
		return nil, err
	}
	if nsName, rpath, ok := splitRemoteTarget(target); ok {
		ns := fs.namespaceByName(nsName)
		if ns == nil {
			return nil, pathErr("sact", linkPath, fmt.Errorf("%w: %s", ErrNoNamespace, nsName))
		}
		return fs.nsFetch(context.Background(), ns, rpath)
	}
	if !vfs.IsAbs(target) {
		target = vfs.Join(vfs.Dir(clean), target)
	}
	return fs.under.ReadFile(target)
}

func (fs *FS) namespaceByName(name string) Namespace {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	for _, list := range fs.mounts {
		for _, ns := range list {
			if ns.Name() == name {
				return ns
			}
		}
	}
	return nil
}
