package hac

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hacfs/internal/vfs"
)

// saveLoad round-trips a volume through the persistence format.
func saveLoad(t *testing.T, fs *FS) *FS {
	t.Helper()
	var buf bytes.Buffer
	if err := fs.SaveVolume(&buf); err != nil {
		t.Fatalf("SaveVolume: %v", err)
	}
	restored, err := LoadVolume(&buf, Options{})
	if err != nil {
		t.Fatalf("LoadVolume: %v", err)
	}
	return restored
}

func TestVolumeRoundTripBasics(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple AND NOT banana"); err != nil {
		t.Fatal(err)
	}
	restored := saveLoad(t, fs)

	// Files survived.
	data, err := restored.ReadFile("/docs/apple1.txt")
	if err != nil || string(data) != "apple fruit red" {
		t.Fatalf("content = %q, %v", data, err)
	}
	// The semantic directory survived with its query and links.
	if !restored.IsSemantic("/sel") {
		t.Fatal("semantic flag lost")
	}
	q, err := restored.Query("/sel")
	if err != nil || q != "(apple AND (NOT banana))" {
		t.Fatalf("query = %q, %v", q, err)
	}
	want := targetsOf(t, fs, "/sel")
	got := targetsOf(t, restored, "/sel")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("targets = %v, want %v", got, want)
	}
}

func TestVolumeRoundTripUserEdits(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	// A prohibition and a permanent link — the user's investment the
	// paper says HAC must never lose.
	if err := fs.Remove("/sel/apple2.txt"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/docs/cherry.txt", "/sel/mine.txt"); err != nil {
		t.Fatal(err)
	}

	restored := saveLoad(t, fs)
	links, err := restored.Links("/sel")
	if err != nil {
		t.Fatal(err)
	}
	classes := map[string]LinkClass{}
	for _, l := range links {
		classes[l.Target] = l.Class
	}
	if classes["/docs/apple2.txt"] != Prohibited {
		t.Fatalf("prohibition lost: %v", classes)
	}
	if classes["/docs/cherry.txt"] != Permanent {
		t.Fatalf("permanent link lost: %v", classes)
	}
	// The prohibited link stays out even after the load's reindex.
	for _, target := range targetsOf(t, restored, "/sel") {
		if target == "/docs/apple2.txt" {
			t.Fatal("prohibited target resurrected by load")
		}
	}
	// Link names survive (no duplicate links on the reload's sync).
	entries, _ := restored.ReadDir("/sel")
	names := map[string]bool{}
	for _, e := range entries {
		if names[e.Name] {
			t.Fatalf("duplicate link name %s", e.Name)
		}
		names[e.Name] = true
	}
	if !names["mine.txt"] {
		t.Fatalf("permanent link name lost: %v", names)
	}
}

func TestVolumeRoundTripDirRefs(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/curated", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/combo", "dir:/curated AND NOT banana"); err != nil {
		t.Fatal(err)
	}
	want := targetsOf(t, fs, "/combo")

	restored := saveLoad(t, fs)
	if got := targetsOf(t, restored, "/combo"); !reflect.DeepEqual(got, want) {
		t.Fatalf("dir-ref targets = %v, want %v", got, want)
	}
	// The dependency is live: editing /curated propagates.
	if err := restored.Remove("/curated/apple1.txt"); err != nil {
		t.Fatal(err)
	}
	for _, target := range targetsOf(t, restored, "/combo") {
		if target == "/docs/apple1.txt" {
			t.Fatal("restored dependency graph inert")
		}
	}
	// Display form still renders a path.
	disp, err := restored.QueryDisplay("/combo")
	if err != nil || disp != "(dir:/curated AND (NOT banana))" {
		t.Fatalf("display query = %q, %v", disp, err)
	}
}

func TestVolumeRoundTripHierarchy(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple OR cherry"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/sel/sub", "cherry"); err != nil {
		t.Fatal(err)
	}
	want := targetsOf(t, fs, "/sel/sub")
	restored := saveLoad(t, fs)
	if got := targetsOf(t, restored, "/sel/sub"); !reflect.DeepEqual(got, want) {
		t.Fatalf("child targets = %v, want %v", got, want)
	}
	// Data consistency after load: new files flow in on reindex.
	if err := restored.WriteFile("/docs/cherry2.txt", []byte("cherry again")); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, target := range targetsOf(t, restored, "/sel/sub") {
		if target == "/docs/cherry2.txt" {
			found = true
		}
	}
	if !found {
		t.Fatal("restored volume does not pick up new files")
	}
}

func TestLoadVolumeRejectsGarbage(t *testing.T) {
	if _, err := LoadVolume(bytes.NewReader([]byte("junk")), Options{}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSaveVolumeRequiresSnapshotter(t *testing.T) {
	// A HAC-over-HAC stack has a substrate that cannot snapshot; the
	// failure is a typed *vfs.PathError wrapping ErrNoSnapshot.
	inner := New(vfs.New(), Options{})
	outer := New(inner, Options{})
	var buf bytes.Buffer
	err := outer.SaveVolume(&buf)
	if err == nil {
		t.Fatal("SaveVolume over non-snapshotting substrate succeeded")
	}
	var pe *vfs.PathError
	if !errors.As(err, &pe) || pe.Op != "savevolume" {
		t.Fatalf("error = %#v, want *vfs.PathError{Op: savevolume}", err)
	}
	if !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("error %v does not wrap ErrNoSnapshot", err)
	}
}

func TestSaveVolumeThroughFaultFS(t *testing.T) {
	// A snapshot-capable wrapper (FaultFS) satisfies the Snapshotter
	// interface by delegation, so fault-injected volumes can be saved.
	fault := vfs.NewFaultFS(vfs.New(), vfs.FaultConfig{})
	fs := New(fault, Options{})
	if err := fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/docs/a.txt", []byte("apple")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fs.SaveVolume(&buf); err != nil {
		t.Fatalf("SaveVolume through FaultFS: %v", err)
	}
	restored, err := LoadVolume(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantTargets(t, restored, "/sel", "/docs/a.txt")
}

// mainFrameLen reads the main frame's claimed payload length out of a
// saved image and returns the total frame size (header + payload + CRC
// trailer); everything past it is the appended index section.
func mainFrameLen(t *testing.T, img []byte) int {
	t.Helper()
	if len(img) < 14 {
		t.Fatalf("image too short for a frame header: %d bytes", len(img))
	}
	return 14 + int(binary.BigEndian.Uint64(img[6:14])) + 4
}

// TestLoadVolumeRejectsCorruption checks that image damage never causes
// a panic or a silently wrong volume: truncation anywhere (a torn save)
// and bit flips in the main frame yield a typed error; bit flips in the
// appended index section either yield the same error or cost at most
// one segment, which the load-time reindex restores — the loaded volume
// must be indistinguishable from the original.
func TestLoadVolumeRejectsCorruption(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	want := targetsOf(t, fs, "/sel")
	var buf bytes.Buffer
	if err := fs.SaveVolume(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	mainLen := mainFrameLen(t, good)
	if mainLen >= len(good) {
		t.Fatalf("no index section appended: main frame %d of %d bytes", mainLen, len(good))
	}

	// Truncations tear the save mid-stream: always rejected, wherever
	// the cut lands — header, payload, trailer, or the index section.
	for _, cut := range []int{0, 3, 13, 14, len(good) / 3, mainLen - 1, mainLen, mainLen + 7, len(good) - 5, len(good) - 1} {
		if cut > len(good) {
			continue
		}
		_, err := LoadVolume(bytes.NewReader(good[:cut]), Options{})
		if err == nil {
			t.Fatalf("truncated image (%d of %d bytes) accepted", cut, len(good))
		}
		if !errors.Is(err, ErrCorruptVolume) {
			t.Fatalf("truncated image (%d bytes): error %v does not wrap ErrCorruptVolume", cut, err)
		}
	}
	// Bit flips in the main frame: always rejected.
	for _, pos := range []int{0, 5, 10, 20, mainLen / 2, mainLen - 2} {
		mut := append([]byte(nil), good...)
		mut[pos] ^= 0x40
		if _, err := LoadVolume(bytes.NewReader(mut), Options{}); err == nil {
			t.Fatalf("bit flip at %d accepted", pos)
		}
	}
	// Bit flips in the index section: rejected (framing damage) or
	// contained to a segment and fully recovered by the settling
	// reindex — never a half-working volume.
	for pos := mainLen; pos < len(good); pos += 11 {
		mut := append([]byte(nil), good...)
		mut[pos] ^= 0x40
		restored, err := LoadVolume(bytes.NewReader(mut), Options{})
		switch {
		case err != nil:
			if !errors.Is(err, ErrCorruptVolume) {
				t.Fatalf("index-section flip at %d: error %v does not wrap ErrCorruptVolume", pos, err)
			}
			if restored != nil {
				t.Fatalf("index-section flip at %d: both volume and error returned", pos)
			}
		default:
			if got := targetsOf(t, restored, "/sel"); !reflect.DeepEqual(got, want) {
				t.Fatalf("index-section flip at %d: targets = %v, want %v", pos, got, want)
			}
		}
	}
	// The pristine image still loads.
	if _, err := LoadVolume(bytes.NewReader(good), Options{}); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}
}

// legacyImageOf rewrites a freshly saved volume in the version-2
// format: the same gob payload (Version field set back) framed with
// version 2, and no index section — what a pre-segmented-index build
// would have written.
func legacyImageOf(t *testing.T, fs *FS) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := fs.SaveVolume(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	plen := int(binary.BigEndian.Uint64(good[6:14]))
	var img volumeImage
	if err := gob.NewDecoder(bytes.NewReader(good[14 : 14+plen])).Decode(&img); err != nil {
		t.Fatal(err)
	}
	img.Version = legacyVolumeVersion
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&img); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := writeVolumeFrame(&out, legacyVolumeVersion, payload.Bytes()); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestLoadVolumeLegacyV2 is the migration path: version-2 images (no
// index section) still load — the settling reindex rebuilds the index
// from scratch — and the next save writes the current format.
func TestLoadVolumeLegacyV2(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	want := targetsOf(t, fs, "/sel")
	legacy := legacyImageOf(t, fs)

	restored, err := LoadVolume(bytes.NewReader(legacy), Options{})
	if err != nil {
		t.Fatalf("legacy image rejected: %v", err)
	}
	if got := targetsOf(t, restored, "/sel"); !reflect.DeepEqual(got, want) {
		t.Fatalf("legacy targets = %v, want %v", got, want)
	}
	// The migrated volume saves in the current format, index section
	// included, and round-trips from there.
	var again bytes.Buffer
	if err := restored.SaveVolume(&again); err != nil {
		t.Fatal(err)
	}
	if mainFrameLen(t, again.Bytes()) >= again.Len() {
		t.Fatal("migrated save carries no index section")
	}
	re, err := LoadVolume(bytes.NewReader(again.Bytes()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := targetsOf(t, re, "/sel"); !reflect.DeepEqual(got, want) {
		t.Fatalf("migrated round-trip targets = %v, want %v", got, want)
	}
}

// TestLoadVolumeTornSegmentBlock pins the containment story on a
// many-segment index: flipping a byte inside one segment block's
// payload loses that segment only — the volume loads, the intact
// segments survive, and the settling reindex restores the lost
// documents, so the restored volume matches the original exactly.
func TestLoadVolumeTornSegmentBlock(t *testing.T) {
	fs := New(vfs.New(), Options{})
	fs.Index().SetSealThreshold(2) // force several sealed segments
	if err := fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	for _, f := range []struct{ name, body string }{
		{"a1.txt", "apple one"}, {"a2.txt", "apple two"}, {"a3.txt", "apple three"},
		{"a4.txt", "apple four"}, {"a5.txt", "apple five"}, {"a6.txt", "apple six"},
	} {
		if err := fs.WriteFile("/docs/"+f.name, []byte(f.body)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	want := targetsOf(t, fs, "/sel")
	var buf bytes.Buffer
	if err := fs.SaveVolume(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Walk the index section's block frames to find each segment block.
	var starts []int
	for off := mainFrameLen(t, good); off+18 <= len(good); {
		starts = append(starts, off)
		off += 14 + int(binary.BigEndian.Uint64(good[off+6:off+14])) + 4
	}
	if len(starts) < 3 { // container block + at least two segments
		t.Fatalf("expected a multi-segment index section, got %d blocks", len(starts))
	}
	// Flip a payload byte in the second segment block.
	mut := append([]byte(nil), good...)
	mut[starts[2]+14+3] ^= 0xff
	restored, err := LoadVolume(bytes.NewReader(mut), Options{})
	if err != nil {
		t.Fatalf("contained segment damage rejected the volume: %v", err)
	}
	if got := targetsOf(t, restored, "/sel"); !reflect.DeepEqual(got, want) {
		t.Fatalf("targets after segment loss = %v, want %v", got, want)
	}
	if got, want := restored.Index().NumDocs(), fs.Index().NumDocs(); got != want {
		t.Fatalf("restored index holds %d docs, want %d", got, want)
	}
}

func TestSaveVolumeFileAtomic(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "vol.hac")
	if err := fs.SaveVolumeFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadVolumeFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(targetsOf(t, restored, "/sel"), targetsOf(t, fs, "/sel")) {
		t.Fatal("file round trip lost targets")
	}
	// A second save overwrites atomically and leaves no temp litter.
	if err := fs.WriteFile("/docs/apple9.txt", []byte("apple nine")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SaveVolumeFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
	restored, err = LoadVolumeFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, target := range targetsOf(t, restored, "/sel") {
		found = found || target == "/docs/apple9.txt"
	}
	if !found {
		t.Fatal("second save did not capture the new file")
	}
}

// TestCrashDuringSaveLeavesPriorImageUsable is the save-point recovery
// story: a save torn at every possible byte boundary is always
// rejected by LoadVolume, and recovery proceeds from the previous good
// image with all user edits (prohibitions, permanent links) intact.
func TestCrashDuringSaveLeavesPriorImageUsable(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/sel/apple2.txt"); err != nil { // prohibition
		t.Fatal(err)
	}
	var good bytes.Buffer
	if err := fs.SaveVolume(&good); err != nil {
		t.Fatal(err)
	}

	// Tear the next save at a spread of crash points.
	for _, limit := range []int{0, 1, 13, 14, 15, good.Len() / 4, good.Len() / 2, good.Len() - 1} {
		var torn bytes.Buffer
		err := fs.SaveVolume(&vfs.CrashWriter{W: &torn, Limit: limit})
		if err == nil {
			t.Fatalf("save through crashing writer (limit %d) succeeded", limit)
		}
		if _, err := LoadVolume(bytes.NewReader(torn.Bytes()), Options{}); err == nil {
			t.Fatalf("torn image (limit %d) accepted", limit)
		}
	}

	// The earlier image still recovers the full state.
	restored, err := LoadVolume(bytes.NewReader(good.Bytes()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	links, err := restored.Links("/sel")
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range links {
		if l.Target == "/docs/apple2.txt" && l.Class != Prohibited {
			t.Fatalf("prohibition lost through crash recovery: %v", links)
		}
	}
	wantTargets(t, restored, "/sel", "/docs/apple1.txt", "/mail/m1.txt")
}

// TestProhibitedSurvivesLoadAndReindex pins the §2.3 guarantee across
// the full recovery path: prohibited links never silently reappear,
// even after LoadVolume plus an explicit Reindex plus a SyncAll.
func TestProhibitedSurvivesLoadAndReindex(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/sel/apple1.txt"); err != nil {
		t.Fatal(err)
	}
	restored := saveLoad(t, fs)
	for round := 0; round < 3; round++ {
		if _, err := restored.Reindex("/"); err != nil {
			t.Fatal(err)
		}
		if err := restored.SyncAll(); err != nil {
			t.Fatal(err)
		}
		for _, target := range targetsOf(t, restored, "/sel") {
			if target == "/docs/apple1.txt" {
				t.Fatalf("round %d: prohibited target resurrected", round)
			}
		}
		classes := map[string]LinkClass{}
		links, err := restored.Links("/sel")
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range links {
			classes[l.Target] = l.Class
		}
		if classes["/docs/apple1.txt"] != Prohibited {
			t.Fatalf("round %d: prohibition dropped: %v", round, classes)
		}
	}
}
