package hac

import (
	"bytes"
	"reflect"
	"testing"

	"hacfs/internal/vfs"
)

// saveLoad round-trips a volume through the persistence format.
func saveLoad(t *testing.T, fs *FS) *FS {
	t.Helper()
	var buf bytes.Buffer
	if err := fs.SaveVolume(&buf); err != nil {
		t.Fatalf("SaveVolume: %v", err)
	}
	restored, err := LoadVolume(&buf, Options{})
	if err != nil {
		t.Fatalf("LoadVolume: %v", err)
	}
	return restored
}

func TestVolumeRoundTripBasics(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple AND NOT banana"); err != nil {
		t.Fatal(err)
	}
	restored := saveLoad(t, fs)

	// Files survived.
	data, err := restored.ReadFile("/docs/apple1.txt")
	if err != nil || string(data) != "apple fruit red" {
		t.Fatalf("content = %q, %v", data, err)
	}
	// The semantic directory survived with its query and links.
	if !restored.IsSemantic("/sel") {
		t.Fatal("semantic flag lost")
	}
	q, err := restored.Query("/sel")
	if err != nil || q != "(apple AND (NOT banana))" {
		t.Fatalf("query = %q, %v", q, err)
	}
	want := targetsOf(t, fs, "/sel")
	got := targetsOf(t, restored, "/sel")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("targets = %v, want %v", got, want)
	}
}

func TestVolumeRoundTripUserEdits(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	// A prohibition and a permanent link — the user's investment the
	// paper says HAC must never lose.
	if err := fs.Remove("/sel/apple2.txt"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/docs/cherry.txt", "/sel/mine.txt"); err != nil {
		t.Fatal(err)
	}

	restored := saveLoad(t, fs)
	links, err := restored.Links("/sel")
	if err != nil {
		t.Fatal(err)
	}
	classes := map[string]LinkClass{}
	for _, l := range links {
		classes[l.Target] = l.Class
	}
	if classes["/docs/apple2.txt"] != Prohibited {
		t.Fatalf("prohibition lost: %v", classes)
	}
	if classes["/docs/cherry.txt"] != Permanent {
		t.Fatalf("permanent link lost: %v", classes)
	}
	// The prohibited link stays out even after the load's reindex.
	for _, target := range targetsOf(t, restored, "/sel") {
		if target == "/docs/apple2.txt" {
			t.Fatal("prohibited target resurrected by load")
		}
	}
	// Link names survive (no duplicate links on the reload's sync).
	entries, _ := restored.ReadDir("/sel")
	names := map[string]bool{}
	for _, e := range entries {
		if names[e.Name] {
			t.Fatalf("duplicate link name %s", e.Name)
		}
		names[e.Name] = true
	}
	if !names["mine.txt"] {
		t.Fatalf("permanent link name lost: %v", names)
	}
}

func TestVolumeRoundTripDirRefs(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/curated", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/combo", "dir:/curated AND NOT banana"); err != nil {
		t.Fatal(err)
	}
	want := targetsOf(t, fs, "/combo")

	restored := saveLoad(t, fs)
	if got := targetsOf(t, restored, "/combo"); !reflect.DeepEqual(got, want) {
		t.Fatalf("dir-ref targets = %v, want %v", got, want)
	}
	// The dependency is live: editing /curated propagates.
	if err := restored.Remove("/curated/apple1.txt"); err != nil {
		t.Fatal(err)
	}
	for _, target := range targetsOf(t, restored, "/combo") {
		if target == "/docs/apple1.txt" {
			t.Fatal("restored dependency graph inert")
		}
	}
	// Display form still renders a path.
	disp, err := restored.QueryDisplay("/combo")
	if err != nil || disp != "(dir:/curated AND (NOT banana))" {
		t.Fatalf("display query = %q, %v", disp, err)
	}
}

func TestVolumeRoundTripHierarchy(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple OR cherry"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/sel/sub", "cherry"); err != nil {
		t.Fatal(err)
	}
	want := targetsOf(t, fs, "/sel/sub")
	restored := saveLoad(t, fs)
	if got := targetsOf(t, restored, "/sel/sub"); !reflect.DeepEqual(got, want) {
		t.Fatalf("child targets = %v, want %v", got, want)
	}
	// Data consistency after load: new files flow in on reindex.
	if err := restored.WriteFile("/docs/cherry2.txt", []byte("cherry again")); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, target := range targetsOf(t, restored, "/sel/sub") {
		if target == "/docs/cherry2.txt" {
			found = true
		}
	}
	if !found {
		t.Fatal("restored volume does not pick up new files")
	}
}

func TestLoadVolumeRejectsGarbage(t *testing.T) {
	if _, err := LoadVolume(bytes.NewReader([]byte("junk")), Options{}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSaveVolumeRequiresMemFS(t *testing.T) {
	// A HAC-over-HAC stack has a non-MemFS substrate.
	inner := New(vfs.New(), Options{})
	outer := New(inner, Options{})
	var buf bytes.Buffer
	if err := outer.SaveVolume(&buf); err == nil {
		t.Fatal("SaveVolume over non-MemFS substrate succeeded")
	}
}
