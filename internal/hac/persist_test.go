package hac

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hacfs/internal/vfs"
)

// saveLoad round-trips a volume through the persistence format.
func saveLoad(t *testing.T, fs *FS) *FS {
	t.Helper()
	var buf bytes.Buffer
	if err := fs.SaveVolume(&buf); err != nil {
		t.Fatalf("SaveVolume: %v", err)
	}
	restored, err := LoadVolume(&buf, Options{})
	if err != nil {
		t.Fatalf("LoadVolume: %v", err)
	}
	return restored
}

func TestVolumeRoundTripBasics(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple AND NOT banana"); err != nil {
		t.Fatal(err)
	}
	restored := saveLoad(t, fs)

	// Files survived.
	data, err := restored.ReadFile("/docs/apple1.txt")
	if err != nil || string(data) != "apple fruit red" {
		t.Fatalf("content = %q, %v", data, err)
	}
	// The semantic directory survived with its query and links.
	if !restored.IsSemantic("/sel") {
		t.Fatal("semantic flag lost")
	}
	q, err := restored.Query("/sel")
	if err != nil || q != "(apple AND (NOT banana))" {
		t.Fatalf("query = %q, %v", q, err)
	}
	want := targetsOf(t, fs, "/sel")
	got := targetsOf(t, restored, "/sel")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("targets = %v, want %v", got, want)
	}
}

func TestVolumeRoundTripUserEdits(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	// A prohibition and a permanent link — the user's investment the
	// paper says HAC must never lose.
	if err := fs.Remove("/sel/apple2.txt"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/docs/cherry.txt", "/sel/mine.txt"); err != nil {
		t.Fatal(err)
	}

	restored := saveLoad(t, fs)
	links, err := restored.Links("/sel")
	if err != nil {
		t.Fatal(err)
	}
	classes := map[string]LinkClass{}
	for _, l := range links {
		classes[l.Target] = l.Class
	}
	if classes["/docs/apple2.txt"] != Prohibited {
		t.Fatalf("prohibition lost: %v", classes)
	}
	if classes["/docs/cherry.txt"] != Permanent {
		t.Fatalf("permanent link lost: %v", classes)
	}
	// The prohibited link stays out even after the load's reindex.
	for _, target := range targetsOf(t, restored, "/sel") {
		if target == "/docs/apple2.txt" {
			t.Fatal("prohibited target resurrected by load")
		}
	}
	// Link names survive (no duplicate links on the reload's sync).
	entries, _ := restored.ReadDir("/sel")
	names := map[string]bool{}
	for _, e := range entries {
		if names[e.Name] {
			t.Fatalf("duplicate link name %s", e.Name)
		}
		names[e.Name] = true
	}
	if !names["mine.txt"] {
		t.Fatalf("permanent link name lost: %v", names)
	}
}

func TestVolumeRoundTripDirRefs(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/curated", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/combo", "dir:/curated AND NOT banana"); err != nil {
		t.Fatal(err)
	}
	want := targetsOf(t, fs, "/combo")

	restored := saveLoad(t, fs)
	if got := targetsOf(t, restored, "/combo"); !reflect.DeepEqual(got, want) {
		t.Fatalf("dir-ref targets = %v, want %v", got, want)
	}
	// The dependency is live: editing /curated propagates.
	if err := restored.Remove("/curated/apple1.txt"); err != nil {
		t.Fatal(err)
	}
	for _, target := range targetsOf(t, restored, "/combo") {
		if target == "/docs/apple1.txt" {
			t.Fatal("restored dependency graph inert")
		}
	}
	// Display form still renders a path.
	disp, err := restored.QueryDisplay("/combo")
	if err != nil || disp != "(dir:/curated AND (NOT banana))" {
		t.Fatalf("display query = %q, %v", disp, err)
	}
}

func TestVolumeRoundTripHierarchy(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple OR cherry"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/sel/sub", "cherry"); err != nil {
		t.Fatal(err)
	}
	want := targetsOf(t, fs, "/sel/sub")
	restored := saveLoad(t, fs)
	if got := targetsOf(t, restored, "/sel/sub"); !reflect.DeepEqual(got, want) {
		t.Fatalf("child targets = %v, want %v", got, want)
	}
	// Data consistency after load: new files flow in on reindex.
	if err := restored.WriteFile("/docs/cherry2.txt", []byte("cherry again")); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, target := range targetsOf(t, restored, "/sel/sub") {
		if target == "/docs/cherry2.txt" {
			found = true
		}
	}
	if !found {
		t.Fatal("restored volume does not pick up new files")
	}
}

func TestLoadVolumeRejectsGarbage(t *testing.T) {
	if _, err := LoadVolume(bytes.NewReader([]byte("junk")), Options{}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSaveVolumeRequiresSnapshotter(t *testing.T) {
	// A HAC-over-HAC stack has a substrate that cannot snapshot; the
	// failure is a typed *vfs.PathError wrapping ErrNoSnapshot.
	inner := New(vfs.New(), Options{})
	outer := New(inner, Options{})
	var buf bytes.Buffer
	err := outer.SaveVolume(&buf)
	if err == nil {
		t.Fatal("SaveVolume over non-snapshotting substrate succeeded")
	}
	var pe *vfs.PathError
	if !errors.As(err, &pe) || pe.Op != "savevolume" {
		t.Fatalf("error = %#v, want *vfs.PathError{Op: savevolume}", err)
	}
	if !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("error %v does not wrap ErrNoSnapshot", err)
	}
}

func TestSaveVolumeThroughFaultFS(t *testing.T) {
	// A snapshot-capable wrapper (FaultFS) satisfies the Snapshotter
	// interface by delegation, so fault-injected volumes can be saved.
	fault := vfs.NewFaultFS(vfs.New(), vfs.FaultConfig{})
	fs := New(fault, Options{})
	if err := fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/docs/a.txt", []byte("apple")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fs.SaveVolume(&buf); err != nil {
		t.Fatalf("SaveVolume through FaultFS: %v", err)
	}
	restored, err := LoadVolume(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantTargets(t, restored, "/sel", "/docs/a.txt")
}

// TestLoadVolumeRejectsCorruption checks that every kind of image
// damage — truncation at any region, bit flips in header, payload or
// trailer — yields a typed error, never a panic or a silent
// half-loaded volume.
func TestLoadVolumeRejectsCorruption(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fs.SaveVolume(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncations: header, payload, trailer, empty.
	for _, cut := range []int{0, 3, 13, 14, len(good) / 3, len(good) / 2, len(good) - 5, len(good) - 1} {
		if cut > len(good) {
			continue
		}
		_, err := LoadVolume(bytes.NewReader(good[:cut]), Options{})
		if err == nil {
			t.Fatalf("truncated image (%d of %d bytes) accepted", cut, len(good))
		}
		if !errors.Is(err, ErrCorruptVolume) {
			t.Fatalf("truncated image (%d bytes): error %v does not wrap ErrCorruptVolume", cut, err)
		}
	}
	// Bit flips across the image.
	for _, pos := range []int{0, 5, 10, 20, len(good) / 2, len(good) - 2} {
		mut := append([]byte(nil), good...)
		mut[pos] ^= 0x40
		if _, err := LoadVolume(bytes.NewReader(mut), Options{}); err == nil {
			t.Fatalf("bit flip at %d accepted", pos)
		}
	}
	// The pristine image still loads.
	if _, err := LoadVolume(bytes.NewReader(good), Options{}); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}
}

func TestSaveVolumeFileAtomic(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "vol.hac")
	if err := fs.SaveVolumeFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadVolumeFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(targetsOf(t, restored, "/sel"), targetsOf(t, fs, "/sel")) {
		t.Fatal("file round trip lost targets")
	}
	// A second save overwrites atomically and leaves no temp litter.
	if err := fs.WriteFile("/docs/apple9.txt", []byte("apple nine")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SaveVolumeFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
	restored, err = LoadVolumeFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, target := range targetsOf(t, restored, "/sel") {
		found = found || target == "/docs/apple9.txt"
	}
	if !found {
		t.Fatal("second save did not capture the new file")
	}
}

// TestCrashDuringSaveLeavesPriorImageUsable is the save-point recovery
// story: a save torn at every possible byte boundary is always
// rejected by LoadVolume, and recovery proceeds from the previous good
// image with all user edits (prohibitions, permanent links) intact.
func TestCrashDuringSaveLeavesPriorImageUsable(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/sel/apple2.txt"); err != nil { // prohibition
		t.Fatal(err)
	}
	var good bytes.Buffer
	if err := fs.SaveVolume(&good); err != nil {
		t.Fatal(err)
	}

	// Tear the next save at a spread of crash points.
	for _, limit := range []int{0, 1, 13, 14, 15, good.Len() / 4, good.Len() / 2, good.Len() - 1} {
		var torn bytes.Buffer
		err := fs.SaveVolume(&vfs.CrashWriter{W: &torn, Limit: limit})
		if err == nil {
			t.Fatalf("save through crashing writer (limit %d) succeeded", limit)
		}
		if _, err := LoadVolume(bytes.NewReader(torn.Bytes()), Options{}); err == nil {
			t.Fatalf("torn image (limit %d) accepted", limit)
		}
	}

	// The earlier image still recovers the full state.
	restored, err := LoadVolume(bytes.NewReader(good.Bytes()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	links, err := restored.Links("/sel")
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range links {
		if l.Target == "/docs/apple2.txt" && l.Class != Prohibited {
			t.Fatalf("prohibition lost through crash recovery: %v", links)
		}
	}
	wantTargets(t, restored, "/sel", "/docs/apple1.txt", "/mail/m1.txt")
}

// TestProhibitedSurvivesLoadAndReindex pins the §2.3 guarantee across
// the full recovery path: prohibited links never silently reappear,
// even after LoadVolume plus an explicit Reindex plus a SyncAll.
func TestProhibitedSurvivesLoadAndReindex(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/sel/apple1.txt"); err != nil {
		t.Fatal(err)
	}
	restored := saveLoad(t, fs)
	for round := 0; round < 3; round++ {
		if _, err := restored.Reindex("/"); err != nil {
			t.Fatal(err)
		}
		if err := restored.SyncAll(); err != nil {
			t.Fatal(err)
		}
		for _, target := range targetsOf(t, restored, "/sel") {
			if target == "/docs/apple1.txt" {
				t.Fatalf("round %d: prohibited target resurrected", round)
			}
		}
		classes := map[string]LinkClass{}
		links, err := restored.Links("/sel")
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range links {
			classes[l.Target] = l.Class
		}
		if classes["/docs/apple1.txt"] != Prohibited {
			t.Fatalf("round %d: prohibition dropped: %v", round, classes)
		}
	}
}
