// Package hac implements the HAC (Hierarchy And Content) file system of
// Gopal & Manber, OSDI 1999 — the paper's primary contribution.
//
// HAC is a user-level layer over a hierarchical file system (here any
// vfs.FileSystem) that adds content-based access while preserving every
// hierarchical operation:
//
//   - Semantic directories (MkSemDir) carry a query; HAC materializes
//     the query result as symbolic links inside the directory.
//   - Every link in a semantic directory is classified transient
//     (query-produced), permanent (user-added) or prohibited
//     (user-deleted; never silently re-added) — §2.3.
//   - The scope-consistency algorithm (Sync) keeps each directory's
//     transient links equal to its query evaluated over the scope
//     provided by its parent, minus prohibited and permanent links,
//     re-evaluating dependents in topological order — §2.3, §2.5.
//   - Data consistency is restored lazily by Reindex — §2.4.
//   - Semantic mount points attach remote query systems so queries
//     whose scope includes the mount import remote results — §3.
//
// FS implements vfs.FileSystem, so applications (and the Andrew
// benchmark) can use a HAC volume exactly like the raw substrate; the
// extra bookkeeping done on each call is precisely the overhead the
// paper's Table 1 measures.
package hac

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"hacfs/internal/depgraph"
	"hacfs/internal/index"
	"hacfs/internal/namemap"
	"hacfs/internal/obs"
	"hacfs/internal/query"
	"hacfs/internal/query/plan"
	"hacfs/internal/vfs"
	"hacfs/internal/vfs/cas"
)

// Errors specific to the HAC layer.
var (
	ErrNotSemantic  = errors.New("hac: not a semantic directory")
	ErrDependedOn   = errors.New("hac: directory is referenced by other queries")
	ErrDanglingRef  = errors.New("hac: query references a missing directory")
	ErrRemoteTarget = errors.New("hac: target is in a remote namespace")
	ErrNoNamespace  = errors.New("hac: no such mounted namespace")
)

// LinkClass is the §2.3 classification of a symbolic link in a
// semantic directory.
type LinkClass int

// The three link classes.
const (
	Transient LinkClass = iota
	Permanent
	Prohibited
)

func (c LinkClass) String() string {
	switch c {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case Prohibited:
		return "prohibited"
	default:
		return fmt.Sprintf("LinkClass(%d)", int(c))
	}
}

// Link describes one classified link of a semantic directory. For
// prohibited targets Name is empty (the link no longer exists).
type Link struct {
	Name   string // symlink base name within the directory
	Target string // link target (a path, or a remote target)
	Class  LinkClass
}

// dirState is HAC's per-directory bookkeeping — the "data structures
// that store its query, its query-result, and its set of permanent and
// prohibited symbolic links" the paper creates at mkdir time.
type dirState struct {
	uid       uint64
	semantic  bool
	queryText string     // canonical bound form ("" when no query)
	ast       query.Node // nil when no query

	// Link bookkeeping, all keyed by target.
	class      map[string]LinkClass // transient and permanent links
	prohibited map[string]bool
	linkName   map[string]string // target → symlink base name
}

func newDirState(uid uint64) *dirState {
	return &dirState{
		uid:        uid,
		class:      make(map[string]LinkClass),
		prohibited: make(map[string]bool),
		linkName:   make(map[string]string),
	}
}

// targets returns all linked targets (transient + permanent), which is
// the scope this directory provides (§2.3), in map form.
func (ds *dirState) targets() map[string]bool {
	out := make(map[string]bool, len(ds.class))
	for t := range ds.class {
		out[t] = true
	}
	return out
}

// Options configures a HAC file system.
type Options struct {
	// AttrCacheSize bounds the attribute cache (default 4096 entries).
	AttrCacheSize int
	// VerifyMatches makes the CBA engine confirm every query match by
	// scanning the file's content, the way Glimpse's second level greps
	// its candidate files. Slower, but the engine cost then matches a
	// standalone Glimpse run (used by the Table 4 experiment).
	VerifyMatches bool
	// Parallelism is the default worker count for Reindex tokenization
	// and within-level query re-evaluation (see engine.go). 0 selects
	// runtime.NumCPU(); 1 keeps every pass serial. Per-pass overrides
	// are available via WithParallelism.
	Parallelism int
	// RemoteTimeout bounds each dial/RPC issued to a mounted remote
	// namespace during evaluation, so a hung server cannot wedge Sync.
	// 0 selects the 10s default; negative disables the bound.
	RemoteTimeout time.Duration
	// Transducers registers attribute extractors at creation, keyed by
	// file extension ("" = every file). Transducers are code and are
	// not part of a saved volume; pass the same set to LoadVolume that
	// the saving volume used, or attribute-term links will be dropped
	// by the load-time reindex.
	Transducers map[string][]index.Transducer
	// Observer receives the volume's metrics and spans. nil selects the
	// process-wide obs.Default(); pass obs.Discard() to disable
	// recording entirely (the hacbench "obs" experiment measures the
	// difference).
	Observer *obs.Observer
	// BlobStore, when set, is the content-addressed store LoadVolume
	// materializes version-4 images into (DESIGN.md §15). Sharing one
	// store across volumes — hacvold passes one per process — stores
	// identical content once no matter how many tenants hold it. nil
	// gives each loaded volume a private store.
	BlobStore *cas.BlobStore
}

// DefaultRemoteTimeout bounds remote-namespace RPCs when
// Options.RemoteTimeout is zero.
const DefaultRemoteTimeout = 10 * time.Second

// FS is a HAC file system layered over a substrate. It implements
// vfs.FileSystem; semantic functionality is exposed through additional
// methods.
type FS struct {
	under vfs.FileSystem
	ix    *index.Index
	names *namemap.Map
	graph *depgraph.Graph

	// mu is a read/write lock: mutations and link commits hold it for
	// writing; Search, Links, Stats, CheckConsistency and the engine's
	// evaluation phase hold it for reading, so readers no longer
	// serialize behind re-evaluation. gen is bumped by every mutation
	// under the write lock; the engine uses it to detect interleaved
	// mutations between its evaluation and commit phases (engine.go).
	mu     sync.RWMutex
	gen    uint64
	dirs   map[uint64]*dirState
	mounts map[string][]Namespace // mount point path → mounted namespaces

	// scopeEpoch counts, per directory UID, how many times the scope the
	// directory provides (its link set) has changed. Search results are
	// cached keyed on these epochs plus the index version; a bump — which
	// propagates through the dependency graph to every transitive
	// dependent — invalidates cached results that read the directory as a
	// scope or dir: reference. Guarded by mu.
	scopeEpoch map[uint64]uint64
	qcache     *plan.Cache // ad-hoc Search result cache

	attrs         *attrCache
	fds           *fdTable
	verify        bool
	par           int // default evaluation parallelism (0 = NumCPU)
	remoteTimeout time.Duration
	autoSync      autoSyncSet

	obsv *obs.Observer // never nil; Discard() when observability is off
	met  *fsMetrics    // pre-resolved handles into obsv's registry
}

var _ vfs.FileSystem = (*FS)(nil)

// New wraps a substrate file system in a HAC layer with a fresh index.
func New(under vfs.FileSystem, opts Options) *FS {
	return newFS(under, opts, nil)
}

// newFS builds the HAC layer. preIx, when non-nil, is a preloaded index
// (LoadVolume's index section) that arrives with its transducers and
// tokenizer already attached via load options; nil means a fresh empty
// index, onto which Options.Transducers are registered here.
func newFS(under vfs.FileSystem, opts Options, preIx *index.Index) *FS {
	if opts.AttrCacheSize <= 0 {
		opts.AttrCacheSize = 4096
	}
	if opts.RemoteTimeout == 0 {
		opts.RemoteTimeout = DefaultRemoteTimeout
	}
	if opts.Observer == nil {
		opts.Observer = obs.Default()
	}
	ix := preIx
	if ix == nil {
		ix = index.New()
	}
	fs := &FS{
		under:         under,
		ix:            ix,
		names:         namemap.New(),
		graph:         depgraph.New(),
		dirs:          make(map[uint64]*dirState),
		mounts:        make(map[string][]Namespace),
		scopeEpoch:    make(map[uint64]uint64),
		qcache:        plan.NewCache(plan.DefaultCacheSize),
		attrs:         newAttrCache(opts.AttrCacheSize),
		fds:           newFDTable(),
		verify:        opts.VerifyMatches,
		par:           opts.Parallelism,
		remoteTimeout: opts.RemoteTimeout,
		obsv:          opts.Observer,
		met:           newFSMetrics(opts.Observer),
	}
	fs.ix.SetObserver(opts.Observer)
	fs.graph.SetObserver(opts.Observer)
	fs.registerVolumeGauges(opts.Observer)
	if preIx == nil {
		for ext, ts := range opts.Transducers {
			for _, t := range ts {
				// A fresh index is empty; registration cannot fail.
				_ = fs.ix.RegisterTransducer(ext, t)
			}
		}
	}
	fs.mu.Lock()
	fs.registerDirLocked("/")
	fs.mu.Unlock()
	return fs
}

// NewWith wraps a substrate file system in a HAC layer configured by
// functional options — the preferred constructor. NewWith(u) is
// equivalent to New(u, Options{}); construction-time options are
// WithParallelism, WithVerify, WithAttrCacheSize, WithRemoteTimeout and
// WithTransducer.
func NewWith(under vfs.FileSystem, opts ...Option) *FS {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return New(under, c.vol)
}

// Under returns the substrate file system.
func (fs *FS) Under() vfs.FileSystem { return fs.under }

// Index returns the CBA engine indexing this volume.
func (fs *FS) Index() *index.Index { return fs.ix }

// registerDirLocked ensures path has a UID, a dirState and a graph
// node, returning its state. Caller holds fs.mu for writing.
func (fs *FS) registerDirLocked(path string) *dirState {
	uid := fs.names.Register(path)
	ds, ok := fs.dirs[uid]
	if !ok {
		ds = newDirState(uid)
		fs.dirs[uid] = ds
		fs.graph.Add(uid)
		fs.gen++
	}
	return ds
}

// stateAtLocked returns the dirState for path if one is registered.
func (fs *FS) stateAtLocked(path string) (*dirState, bool) {
	uid, ok := fs.names.UIDOf(path)
	if !ok {
		return nil, false
	}
	ds, ok := fs.dirs[uid]
	return ds, ok
}

// pathOfLocked resolves a UID to its current path.
func (fs *FS) pathOfLocked(uid uint64) (string, bool) {
	return fs.names.PathOf(uid)
}

// bumpScopeEpochLocked records that uid's link set — the scope it
// provides — changed, advancing its epoch and, through the dependency
// graph, the epoch of every transitive dependent (their queries read
// uid's scope, so their cached results are stale too). Caller holds
// fs.mu for writing.
func (fs *FS) bumpScopeEpochLocked(uid uint64) {
	fs.scopeEpoch[uid]++
	for _, dep := range fs.graph.AffectedBy(uid) {
		fs.scopeEpoch[dep]++
	}
}

// IsSemantic reports whether path is a semantic directory.
func (fs *FS) IsSemantic(path string) bool {
	clean, err := vfs.Clean(path)
	if err != nil {
		return false
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	ds, ok := fs.stateAtLocked(clean)
	return ok && ds.semantic
}

// ---------------------------------------------------------------------
// vfs.FileSystem implementation: every operation passes through to the
// substrate, plus the HAC bookkeeping whose cost Table 1 measures.
// ---------------------------------------------------------------------

// resolvePath is HAC's user-space path resolution. The paper's HAC is a
// user-level library that "intercepts all file system calls" and "uses
// this name space to resolve the users' path names": before an
// operation reaches the substrate, HAC walks the directory components,
// consulting its own global name map and validating each prefix — the
// same mechanism that gives every user-level file system in Table 2 its
// overhead. The substrate remains authoritative for errors, so failures
// here are ignored.
func (fs *FS) resolvePath(p string) {
	clean, err := vfs.Clean(p)
	if err != nil {
		return
	}
	dir, _ := vfs.Split(clean)
	if dir == "/" {
		return
	}
	cur := "/"
	for _, c := range splitComponents(dir) {
		cur = vfs.Join(cur, c)
		fs.names.UIDOf(cur) // HAC name-space lookup
		if _, err := fs.under.Lstat(cur); err != nil {
			return
		}
	}
}

// Mkdir creates a (syntactic) directory. As in the paper, HAC also
// creates and initializes the directory's query structures, registers
// it in the global name map, and adds a node to the dependency graph.
func (fs *FS) Mkdir(path string) error {
	fs.resolvePath(path)
	if err := fs.under.Mkdir(path); err != nil {
		return err
	}
	clean, _ := vfs.Clean(path)
	fs.mu.Lock()
	fs.registerDirLocked(clean)
	fs.mu.Unlock()
	return nil
}

// MkdirAll creates a directory and any missing parents.
func (fs *FS) MkdirAll(path string) error {
	if err := fs.under.MkdirAll(path); err != nil {
		return err
	}
	clean, _ := vfs.Clean(path)
	fs.mu.Lock()
	// Register every component so any of them can act as a parent or a
	// query reference later.
	p := "/"
	fs.registerDirLocked(p)
	for _, c := range splitComponents(clean) {
		p = vfs.Join(p, c)
		fs.registerDirLocked(p)
	}
	fs.mu.Unlock()
	return nil
}

func splitComponents(clean string) []string {
	if clean == "/" {
		return nil
	}
	var out []string
	for _, c := range splitSlash(clean) {
		if c != "" {
			out = append(out, c)
		}
	}
	return out
}

func splitSlash(p string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(p); i++ {
		if i == len(p) || p[i] == '/' {
			out = append(out, p[start:i])
			start = i + 1
		}
	}
	return out
}

// Create creates or truncates a file. HAC additionally initializes the
// file's attribute-cache entry and descriptor-table slot (the Copy
// phase overhead of Table 1).
func (fs *FS) Create(path string) (vfs.File, error) {
	return fs.OpenFile(path, vfs.ORead|vfs.OWrite|vfs.OCreate|vfs.OTrunc)
}

// Open opens a file for reading.
func (fs *FS) Open(path string) (vfs.File, error) {
	return fs.OpenFile(path, vfs.ORead)
}

// OpenFile opens path with the given flags, tracking the handle in the
// descriptor table and keeping the attribute cache coherent.
func (fs *FS) OpenFile(path string, flag int) (vfs.File, error) {
	fs.resolvePath(path)
	f, err := fs.under.OpenFile(path, flag)
	if err != nil {
		return nil, err
	}
	clean, _ := vfs.Clean(path)
	if flag&(vfs.OWrite|vfs.OTrunc) != 0 {
		fs.attrs.invalidate(clean)
	}
	fs.fds.open()
	if info, err := f.Stat(); err == nil {
		fs.attrs.put(clean, info)
	}
	return &trackedFile{File: f, fs: fs, path: clean}, nil
}

// ReadFile returns the contents of the file at path. As in the paper,
// the read goes through HAC's descriptor table and per-file
// bookkeeping (a measured overhead in the Andrew Copy and Read
// phases).
func (fs *FS) ReadFile(path string) ([]byte, error) {
	f, err := fs.OpenFile(path, vfs.ORead)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, info.Size)
	n, err := f.ReadAt(buf, 0)
	if err == io.EOF {
		err = nil
	}
	return buf[:n], err
}

// WriteFile creates or replaces the file at path, initializing the
// descriptor-table slot and attribute-cache entry for the new file as
// the paper's HAC does on every create.
func (fs *FS) WriteFile(path string, data []byte) error {
	f, err := fs.OpenFile(path, vfs.OWrite|vfs.OCreate|vfs.OTrunc)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	clean, _ := vfs.Clean(path)
	fs.autoSyncTouch(clean, false)
	return nil
}

// Symlink creates a symbolic link. When the link is created inside a
// semantic directory, HAC classifies it as a permanent link (§2.3:
// "links that were explicitly added by the user") and restores scope
// consistency for the directories that depend on it.
func (fs *FS) Symlink(target, link string) error {
	fs.resolvePath(link)
	clean, cerr := vfs.Clean(link)
	if cerr != nil {
		return &vfs.PathError{Op: "symlink", Path: link, Err: cerr}
	}
	dir, base := vfs.Split(clean)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.gen++
	if ds, ok := fs.stateAtLocked(dir); ok && ds.semantic {
		// If the target already had a (transient) link under another
		// name, the user's new link supersedes it; drop the old one so
		// the directory holds a single link per target. The removal
		// comes first: if creating the new symlink then fails, the old
		// one is still classified and the Sync repair pass (sync.go)
		// rematerializes it. The reverse order could fail with the new
		// symlink on disk but unclassified — a state no repair pass can
		// distinguish from a user link that was never registered.
		if old, had := ds.linkName[target]; had && old != base {
			if err := fs.under.Remove(vfs.Join(dir, old)); err != nil && !isNotExist(err) {
				return err
			}
		}
		if err := fs.under.Symlink(target, clean); err != nil {
			return err
		}
		ds.class[target] = Permanent
		ds.linkName[target] = base
		// The user may be re-adding a link they once deleted; an
		// explicit action overrides the prohibition (§2.3).
		delete(ds.prohibited, target)
		fs.bumpScopeEpochLocked(ds.uid)
		return fs.syncDependentsLocked(ds.uid)
	}
	return fs.under.Symlink(target, clean)
}

// Readlink returns the target of the symlink at path.
func (fs *FS) Readlink(path string) (string, error) {
	return fs.under.Readlink(path)
}

// Remove deletes the object at path. Deleting a symbolic link from a
// semantic directory marks its target prohibited, so that it "will not
// be implicitly added later without a direct action by the user"
// (§2.3). Deleting a semantic directory referenced by other queries is
// refused.
func (fs *FS) Remove(path string) error {
	fs.resolvePath(path)
	clean, err := vfs.Clean(path)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	rmErr := fs.removeLocked(clean, false)
	fs.mu.Unlock()
	if rmErr == nil {
		fs.autoSyncTouch(clean, true)
	}
	return rmErr
}

// RemoveAll deletes path and everything beneath it, with the same
// semantic-directory rules as Remove.
func (fs *FS) RemoveAll(path string) error {
	fs.resolvePath(path)
	clean, err := vfs.Clean(path)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	rmErr := fs.removeLocked(clean, true)
	fs.mu.Unlock()
	if rmErr == nil {
		fs.autoSyncTouch(clean, true)
	}
	return rmErr
}

func (fs *FS) removeLocked(clean string, recursive bool) error {
	fs.gen++
	dir, base := vfs.Split(clean)
	_ = base

	// A symlink disappearing from a semantic directory becomes a
	// prohibition. Inspect before the substrate removes it — and abort
	// on an inspection failure: proceeding would delete the link without
	// recording the prohibition (or skip the referenced-by check below),
	// silently losing §2.3 state on a transient substrate fault.
	var prohibitIn *dirState
	var prohibitTarget string
	info, lerr := fs.under.Lstat(clean)
	if lerr != nil && !isNotExist(lerr) {
		return lerr
	}
	if lerr == nil && info.Type == vfs.TypeSymlink {
		if ds, ok := fs.stateAtLocked(dir); ok && ds.semantic {
			target, rerr := fs.under.Readlink(clean)
			if rerr != nil {
				return rerr
			}
			prohibitIn = ds
			prohibitTarget = target
		}
	}

	// Removing a directory subtree must not orphan queries that
	// reference directories inside it.
	if lerr == nil && info.Type == vfs.TypeDir {
		if err := fs.checkRemovableLocked(clean); err != nil {
			return err
		}
	}

	var err error
	if recursive {
		err = fs.under.RemoveAll(clean)
	} else {
		err = fs.under.Remove(clean)
	}
	if err != nil {
		return err
	}
	fs.attrs.invalidatePrefix(clean)

	if prohibitIn != nil {
		if _, had := prohibitIn.class[prohibitTarget]; had {
			delete(prohibitIn.class, prohibitTarget)
			delete(prohibitIn.linkName, prohibitTarget)
			prohibitIn.prohibited[prohibitTarget] = true
		} else {
			// An unclassified (pre-existing) link: still record the
			// explicit deletion.
			prohibitIn.prohibited[prohibitTarget] = true
		}
		fs.bumpScopeEpochLocked(prohibitIn.uid)
		return fs.syncDependentsLocked(prohibitIn.uid)
	}

	// Drop bookkeeping for removed directories.
	for _, uid := range fs.names.RemoveSubtree(clean) {
		fs.graph.Remove(uid)
		delete(fs.dirs, uid)
	}
	return nil
}

// checkRemovableLocked fails if any directory in the subtree at clean
// is referenced by a query outside that subtree.
func (fs *FS) checkRemovableLocked(clean string) error {
	for _, p := range fs.names.Paths() {
		if !vfs.HasPrefix(p, clean) {
			continue
		}
		uid, _ := fs.names.UIDOf(p)
		for _, dep := range fs.graph.Dependents(uid) {
			dp, ok := fs.pathOfLocked(dep)
			if !ok {
				continue
			}
			if !vfs.HasPrefix(dp, clean) {
				return fmt.Errorf("%w: %s referenced by query of %s", ErrDependedOn, p, dp)
			}
		}
	}
	return nil
}

// Rename moves oldPath to newPath. HAC updates the global UID→path map
// (§2.5) — so queries referencing renamed directories stay valid — and
// re-establishes scope consistency for any semantic directory whose
// parent changed. Moving a symlink between semantic directories
// reclassifies it: a prohibition where it left, a permanent link where
// it arrived.
func (fs *FS) Rename(oldPath, newPath string) error {
	fs.resolvePath(oldPath)
	fs.resolvePath(newPath)
	oldClean, err := vfs.Clean(oldPath)
	if err != nil {
		return err
	}
	newClean, err := vfs.Clean(newPath)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.gen++

	info, statErr := fs.under.Lstat(oldClean)

	// Moving a symlink: capture its target and the directories involved.
	var linkTarget string
	isLink := statErr == nil && info.Type == vfs.TypeSymlink
	if isLink {
		if t, err := fs.under.Readlink(oldClean); err == nil {
			linkTarget = t
		}
	}

	if err := fs.under.Rename(oldClean, newClean); err != nil {
		return err
	}
	fs.attrs.invalidatePrefix(oldClean)
	fs.attrs.invalidatePrefix(newClean)

	oldDir, _ := vfs.Split(oldClean)
	newDir, newBase := vfs.Split(newClean)

	if isLink {
		var resync []uint64
		if ds, ok := fs.stateAtLocked(oldDir); ok && ds.semantic && linkTarget != "" {
			if _, had := ds.class[linkTarget]; had {
				delete(ds.class, linkTarget)
				delete(ds.linkName, linkTarget)
				ds.prohibited[linkTarget] = true
				resync = append(resync, ds.uid)
			}
		}
		if ds, ok := fs.stateAtLocked(newDir); ok && ds.semantic && linkTarget != "" {
			ds.class[linkTarget] = Permanent
			ds.linkName[linkTarget] = newBase
			delete(ds.prohibited, linkTarget)
			resync = append(resync, ds.uid)
		}
		for _, uid := range resync {
			fs.bumpScopeEpochLocked(uid)
			if err := fs.syncDependentsLocked(uid); err != nil {
				return err
			}
		}
		return nil
	}

	if statErr == nil && info.Type == vfs.TypeDir {
		// One global-map update instead of rewriting queries (§2.5).
		fs.names.Rename(oldClean, newClean)
		fs.ix.RenamePrefix(oldClean, newClean)
		// Classified links elsewhere follow the renamed subtree: HAC
		// observed the rename, so the user's permanent links and
		// prohibitions keep tracking the same documents instead of
		// dangling until they notice.
		if err := fs.rewriteTargetsLocked(oldClean, newClean); err != nil {
			return err
		}
		// If a semantic directory changed parents its scope changed;
		// re-establish consistency from it downward.
		if vfs.Dir(oldClean) != vfs.Dir(newClean) {
			if ds, ok := fs.stateAtLocked(newClean); ok && ds.semantic {
				if err := fs.rebindDepsLocked(ds); err != nil {
					return err
				}
				return fs.syncFromLocked(ds.uid)
			}
		}
		return nil
	}

	// Regular file moved: the index follows immediately; link targets
	// pointing at the file are rewritten for the same reason as above.
	// Content re-checks remain lazy (§2.4).
	fs.ix.RenamePath(oldClean, newClean)
	return fs.rewriteTargetsLocked(oldClean, newClean)
}

// rewriteTargetsLocked updates every classified link target at or under
// oldPrefix to the corresponding path under newPrefix, re-pointing the
// physical symlinks. Prohibitions follow too: the user prohibited the
// document, not its path. Caller holds fs.mu.
func (fs *FS) rewriteTargetsLocked(oldPrefix, newPrefix string) error {
	for _, ds := range fs.dirs {
		if !ds.semantic {
			continue
		}
		dirPath, ok := fs.pathOfLocked(ds.uid)
		if !ok {
			continue
		}
		type move struct{ old, new string }
		var moves []move
		for t := range ds.class {
			if !IsRemoteTarget(t) && vfs.HasPrefix(t, oldPrefix) {
				moves = append(moves, move{t, newPrefix + t[len(oldPrefix):]})
			}
		}
		for _, m := range moves {
			class := ds.class[m.old]
			name := ds.linkName[m.old]
			delete(ds.class, m.old)
			delete(ds.linkName, m.old)
			ds.class[m.new] = class
			if name == "" {
				continue
			}
			ds.linkName[m.new] = name
			lp := vfs.Join(dirPath, name)
			if err := fs.under.Remove(lp); err != nil && !isNotExist(err) {
				return err
			}
			if err := fs.under.Symlink(m.new, lp); err != nil {
				return err
			}
		}
		var prohMoves []move
		for t := range ds.prohibited {
			if !IsRemoteTarget(t) && vfs.HasPrefix(t, oldPrefix) {
				prohMoves = append(prohMoves, move{t, newPrefix + t[len(oldPrefix):]})
			}
		}
		for _, m := range prohMoves {
			delete(ds.prohibited, m.old)
			ds.prohibited[m.new] = true
		}
		if len(moves) > 0 {
			fs.bumpScopeEpochLocked(ds.uid)
		}
	}
	return nil
}

// Stat returns metadata for path, consulting the attribute cache first
// (the paper's shared-memory attribute cache, which speeds the Scan
// phase of the Andrew benchmark).
func (fs *FS) Stat(path string) (vfs.Info, error) {
	clean, err := vfs.Clean(path)
	if err != nil {
		return vfs.Info{}, &vfs.PathError{Op: "stat", Path: path, Err: err}
	}
	if info, ok := fs.attrs.get(clean); ok {
		return info, nil
	}
	fs.resolvePath(clean)
	info, err := fs.under.Stat(clean)
	if err != nil {
		return vfs.Info{}, err
	}
	fs.attrs.put(clean, info)
	return info, nil
}

// Lstat returns metadata without following a final symlink. Results are
// not cached (the cache stores followed attributes).
func (fs *FS) Lstat(path string) (vfs.Info, error) {
	return fs.under.Lstat(path)
}

// ReadDir lists a directory.
func (fs *FS) ReadDir(path string) ([]vfs.DirEntry, error) {
	fs.resolvePath(path)
	return fs.under.ReadDir(path)
}
