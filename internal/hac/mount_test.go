package hac

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"hacfs/internal/bitset"
	"hacfs/internal/index"
	"hacfs/internal/query"
	"hacfs/internal/vfs"
)

// fakeNS is an in-process Namespace backed by a map of documents. It
// evaluates queries with the real query language over a private index,
// standing in for a remote search engine.
type fakeNS struct {
	name     string
	docs     map[string]string
	searches int
}

func newFakeNS(name string, docs map[string]string) *fakeNS {
	return &fakeNS{name: name, docs: docs}
}

func (n *fakeNS) Name() string { return n.name }

func (n *fakeNS) Search(q string) ([]string, error) {
	n.searches++
	ix := index.New()
	for p, content := range n.docs {
		ix.Add(p, []byte(content))
	}
	ast, err := query.Parse(q)
	if err != nil {
		return nil, err
	}
	bm, err := query.Eval(ast, &nsEnv{ix})
	if err != nil {
		return nil, err
	}
	return ix.Paths(bm), nil
}

func (n *fakeNS) Fetch(path string) ([]byte, error) {
	content, ok := n.docs[path]
	if !ok {
		return nil, fmt.Errorf("fakeNS: no document %s", path)
	}
	return []byte(content), nil
}

// nsEnv evaluates queries over a bare index: directory references are
// meaningless remotely and resolve to the empty set.
type nsEnv struct{ ix *index.Index }

func (e *nsEnv) Term(w string) (*bitset.Segmented, error)   { return e.ix.Lookup(w), nil }
func (e *nsEnv) Prefix(p string) (*bitset.Segmented, error) { return e.ix.LookupPrefix(p), nil }
func (e *nsEnv) Fuzzy(w string) (*bitset.Segmented, error)  { return e.ix.LookupFuzzy(w), nil }
func (e *nsEnv) Universe() (*bitset.Segmented, error)       { return e.ix.AllDocs(), nil }
func (e *nsEnv) DirRef(*query.DirRef) (*bitset.Segmented, error) {
	return e.ix.AllDocs(), nil // degrade gracefully: dir refs don't filter remotely
}

func digLibrary() *fakeNS {
	return newFakeNS("diglib", map[string]string{
		"/papers/fp-matching.ps":  "fingerprint matching algorithms survey",
		"/papers/fp-sensors.ps":   "fingerprint sensor hardware design",
		"/papers/iris.ps":         "iris recognition methods",
		"/papers/crime-report.ps": "fingerprint evidence in murder case",
	})
}

func TestSemanticMountImportsResults(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkdirAll("/lib"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SemanticMount("/lib", digLibrary()); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/fp", "fingerprint"); err != nil {
		t.Fatal(err)
	}
	targets := targetsOf(t, fs, "/fp")
	want := []string{
		"remote://diglib/papers/crime-report.ps",
		"remote://diglib/papers/fp-matching.ps",
		"remote://diglib/papers/fp-sensors.ps",
	}
	sort.Strings(want)
	if len(targets) != 3 {
		t.Fatalf("targets = %v, want %v", targets, want)
	}
	for i := range want {
		if targets[i] != want[i] {
			t.Fatalf("targets = %v, want %v", targets, want)
		}
	}
	// The links are real symlinks with namespace-derived names.
	entries, _ := fs.ReadDir("/fp")
	var names []string
	for _, e := range entries {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	if !strings.HasPrefix(names[0], "diglib.") {
		t.Fatalf("remote link names = %v", names)
	}
}

func TestSemanticMountMixedLocalRemote(t *testing.T) {
	fs := newTestFS(t)
	// Local file mentioning fingerprints.
	if err := fs.WriteFile("/docs/fp-notes.txt", []byte("my fingerprint notes apple")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/lib"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SemanticMount("/lib", digLibrary()); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/fp", "fingerprint"); err != nil {
		t.Fatal(err)
	}
	targets := targetsOf(t, fs, "/fp")
	if len(targets) != 4 {
		t.Fatalf("mixed targets = %v, want 1 local + 3 remote", targets)
	}
	hasLocal := false
	for _, tg := range targets {
		if tg == "/docs/fp-notes.txt" {
			hasLocal = true
		}
	}
	if !hasLocal {
		t.Fatal("local result missing from mixed query")
	}
}

func TestMultipleSemanticMount(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkdirAll("/lib"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SemanticMount("/lib", digLibrary()); err != nil {
		t.Fatal(err)
	}
	other := newFakeNS("websearch", map[string]string{
		"/results/fp-wiki": "fingerprint biometrics overview",
	})
	// Same mount point: a multiple semantic mount point (§3.2).
	if err := fs.SemanticMount("/lib", other); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/fp", "fingerprint"); err != nil {
		t.Fatal(err)
	}
	targets := targetsOf(t, fs, "/fp")
	if len(targets) != 4 {
		t.Fatalf("multiple-mount targets = %v", targets)
	}
	// Results are disjoint per namespace.
	byNS := map[string]int{}
	for _, tg := range targets {
		ns, _, ok := splitRemoteTarget(tg)
		if !ok {
			t.Fatalf("unexpected local target %s", tg)
		}
		byNS[ns]++
	}
	if byNS["diglib"] != 3 || byNS["websearch"] != 1 {
		t.Fatalf("per-namespace counts = %v", byNS)
	}
	mounts := fs.SemanticMounts()
	if got := mounts["/lib"]; len(got) != 2 {
		t.Fatalf("SemanticMounts = %v", mounts)
	}
}

func TestDuplicateNamespaceRejected(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkdirAll("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SemanticMount("/a", digLibrary()); err != nil {
		t.Fatal(err)
	}
	if err := fs.SemanticMount("/b", digLibrary()); err == nil {
		t.Fatal("duplicate namespace name accepted")
	}
}

func TestSemanticUnmount(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkdirAll("/lib"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SemanticMount("/lib", digLibrary()); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/fp", "fingerprint"); err != nil {
		t.Fatal(err)
	}
	if len(targetsOf(t, fs, "/fp")) != 3 {
		t.Fatal("setup failed")
	}
	if err := fs.SemanticUnmount("/lib", "diglib"); err != nil {
		t.Fatal(err)
	}
	// Unmount re-syncs: remote transients disappear.
	wantTargets(t, fs, "/fp")
	if err := fs.SemanticUnmount("/lib", "diglib"); !errors.Is(err, ErrNoNamespace) {
		t.Fatalf("double unmount err = %v", err)
	}
}

func TestRemoteScopeRefinement(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkdirAll("/lib"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SemanticMount("/lib", digLibrary()); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/fp", "fingerprint"); err != nil {
		t.Fatal(err)
	}
	// Child of a semantic dir: remote scope is the parent's remote
	// links. "matching" only matches fp-matching.ps, which the parent
	// holds.
	if err := fs.MkSemDir("/fp/match", "matching"); err != nil {
		t.Fatal(err)
	}
	targets := targetsOf(t, fs, "/fp/match")
	if len(targets) != 1 || targets[0] != "remote://diglib/papers/fp-matching.ps" {
		t.Fatalf("child remote targets = %v", targets)
	}
	// Prohibit a remote link in the parent: the child loses it.
	entries, _ := fs.ReadDir("/fp")
	var matchingName string
	for _, e := range entries {
		if strings.Contains(e.Name, "fp-matching") {
			matchingName = e.Name
		}
	}
	if matchingName == "" {
		t.Fatal("no fp-matching link in parent")
	}
	if err := fs.Remove(vfs.Join("/fp", matchingName)); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/fp/match")
}

func TestRemoteProhibition(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkdirAll("/lib"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SemanticMount("/lib", digLibrary()); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/fp", "fingerprint"); err != nil {
		t.Fatal(err)
	}
	// The paper's example: remove the crime story even though it
	// matches. (Query "fingerprint AND NOT murder" would also work —
	// "but often it is easier to remove a few files manually".)
	entries, _ := fs.ReadDir("/fp")
	for _, e := range entries {
		if strings.Contains(e.Name, "crime") {
			if err := fs.Remove(vfs.Join("/fp", e.Name)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := fs.Sync("/"); err != nil {
		t.Fatal(err)
	}
	for _, tg := range targetsOf(t, fs, "/fp") {
		if strings.Contains(tg, "crime") {
			t.Fatal("prohibited remote link returned")
		}
	}
}

func TestExtractRemote(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkdirAll("/lib"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SemanticMount("/lib", digLibrary()); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/fp", "sensor"); err != nil {
		t.Fatal(err)
	}
	entries, _ := fs.ReadDir("/fp")
	if len(entries) != 1 {
		t.Fatalf("entries = %v", entries)
	}
	data, err := fs.Extract(vfs.Join("/fp", entries[0].Name))
	if err != nil || !strings.Contains(string(data), "sensor hardware") {
		t.Fatalf("Extract remote = %q, %v", data, err)
	}
}

func TestMountErrorsHAC(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.SemanticMount("/missing", digLibrary()); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("mount on missing err = %v", err)
	}
	if err := fs.SemanticMount("/docs/apple1.txt", digLibrary()); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatalf("mount on file err = %v", err)
	}
	if err := fs.SemanticMount("/docs", nil); !errors.Is(err, vfs.ErrInvalid) {
		t.Fatalf("nil namespace err = %v", err)
	}
}

func TestScopeExcludesMountOutsideParent(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkdirAll("/lib"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SemanticMount("/lib", digLibrary()); err != nil {
		t.Fatal(err)
	}
	// A semantic dir whose parent is /docs: the mount at /lib is not in
	// its scope, so no remote results appear.
	if err := fs.MkSemDir("/docs/fp", "fingerprint"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/docs/fp")
}

func TestRemoteTargetHelpers(t *testing.T) {
	target := RemoteTarget("lib", "/a/b.ps")
	if target != "remote://lib/a/b.ps" {
		t.Fatalf("RemoteTarget = %q", target)
	}
	ns, p, ok := splitRemoteTarget(target)
	if !ok || ns != "lib" || p != "/a/b.ps" {
		t.Fatalf("splitRemoteTarget = %q %q %v", ns, p, ok)
	}
	if IsRemoteTarget("/local/path") {
		t.Fatal("local path reported remote")
	}
	if _, _, ok := splitRemoteTarget("remote://noslash"); ok {
		t.Fatal("malformed remote target accepted")
	}
	// Paths without leading slash are normalized.
	if got := RemoteTarget("ns", "rel/path"); got != "remote://ns/rel/path" {
		t.Fatalf("RemoteTarget rel = %q", got)
	}
}
