package hac

import (
	"strings"
	"testing"
)

func TestCheckConsistencyCleanVolume(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/sel/sub", "fruit"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/sel/apple2.txt"); err != nil {
		t.Fatal(err)
	}
	if problems := fs.CheckConsistency(); len(problems) != 0 {
		t.Fatalf("clean volume reported: %v", problems)
	}
}

func TestCheckConsistencyDetectsTampering(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	// Tamper with the substrate directly, bypassing the HAC layer: an
	// unclassified symlink appears.
	if err := fs.Under().Symlink("/docs/banana.txt", "/sel/rogue"); err != nil {
		t.Fatal(err)
	}
	problems := fs.CheckConsistency()
	if len(problems) == 0 {
		t.Fatal("tampering not detected")
	}
	found := false
	for _, p := range problems {
		if strings.Contains(p, "unclassified symlink") && strings.Contains(p, "rogue") {
			found = true
		}
	}
	if !found {
		t.Fatalf("wrong diagnosis: %v", problems)
	}
}

func TestCheckConsistencyDetectsMissingLink(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	// Delete a classified symlink behind HAC's back.
	if err := fs.Under().Remove("/sel/apple1.txt"); err != nil {
		t.Fatal(err)
	}
	problems := fs.CheckConsistency()
	found := false
	for _, p := range problems {
		if strings.Contains(p, "has no symlink") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing link not detected: %v", problems)
	}
	// Repair: prohibit the target (dropping the stale classification,
	// tolerating the already-missing symlink) and lift the prohibition
	// so the next pass re-materializes the link cleanly.
	if err := fs.MarkProhibited("/sel", "/docs/apple1.txt"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unprohibit("/sel", "/docs/apple1.txt"); err != nil {
		t.Fatal(err)
	}
	if problems := fs.CheckConsistency(); len(problems) != 0 {
		t.Fatalf("repair failed: %v", problems)
	}
}
