package hac

import (
	"errors"
	"strings"
	"testing"

	"hacfs/internal/vfs"
)

func TestSearchWithDirRef(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/curated", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/curated/m1.txt"); err != nil {
		t.Fatal(err)
	}
	// Ad-hoc search referencing the curated directory.
	got, err := fs.SearchPaths("dir:/curated AND fruit", "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "/docs/apple1.txt" {
		t.Fatalf("Search dir-ref = %v", got)
	}
	// Unknown reference errors cleanly.
	if _, err := fs.SearchPaths("dir:/nowhere", "/"); !errors.Is(err, ErrDanglingRef) {
		t.Fatalf("dangling search err = %v", err)
	}
}

func TestSearchBadInputs(t *testing.T) {
	fs := newTestFS(t)
	if _, err := fs.SearchPaths("(((", "/"); err == nil {
		t.Fatal("bad query accepted")
	}
	if _, err := fs.SearchPaths("apple", "relative"); err == nil {
		t.Fatal("relative scope accepted")
	}
}

func TestExtractErrors(t *testing.T) {
	fs := newTestFS(t)
	if _, err := fs.Extract("/missing"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("Extract missing err = %v", err)
	}
	// A remote link whose namespace is gone.
	if err := fs.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Under().Symlink("remote://ghost/x", "/d/ln"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Extract("/d/ln"); !errors.Is(err, ErrNoNamespace) {
		t.Fatalf("ghost namespace err = %v", err)
	}
	// A dangling local link.
	if err := fs.Under().Symlink("/gone", "/d/dang"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Extract("/d/dang"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("dangling extract err = %v", err)
	}
}

func TestExtractRelativeLink(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.Under().Symlink("apple1.txt", "/docs/rel"); err != nil {
		t.Fatal(err)
	}
	data, err := fs.Extract("/docs/rel")
	if err != nil || string(data) != "apple fruit red" {
		t.Fatalf("relative extract = %q, %v", data, err)
	}
}

func TestSetQueryEmptyClearsTransients(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/docs/cherry.txt", "/sel/mine"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetQuery("/sel", ""); err != nil {
		t.Fatal(err)
	}
	// Transients gone; the permanent link stays.
	wantTargets(t, fs, "/sel", "/docs/cherry.txt")
	q, err := fs.Query("/sel")
	if err != nil || q != "" {
		t.Fatalf("query = %q, %v", q, err)
	}
}

func TestMkSemDirOnExistingPathFails(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/docs", "apple"); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("MkSemDir on existing dir err = %v", err)
	}
	if err := fs.MkSemDir("/docs/apple1.txt", "apple"); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("MkSemDir on file err = %v", err)
	}
}

func TestQueryDisplayPlainTerms(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple AND banana"); err != nil {
		t.Fatal(err)
	}
	disp, err := fs.QueryDisplay("/sel")
	if err != nil || disp != "(apple AND banana)" {
		t.Fatalf("QueryDisplay = %q, %v", disp, err)
	}
}

func TestLinksErrorSurface(t *testing.T) {
	fs := newTestFS(t)
	if _, err := fs.Links("/docs"); !errors.Is(err, ErrNotSemantic) {
		t.Fatalf("Links err = %v", err)
	}
	if _, err := fs.LinkTargets("relative"); err == nil {
		t.Fatal("relative path accepted")
	}
}

func TestSemanticDirsListing(t *testing.T) {
	fs := newTestFS(t)
	for _, d := range []string{"/b-sel", "/a-sel"} {
		if err := fs.MkSemDir(d, "apple"); err != nil {
			t.Fatal(err)
		}
	}
	got := fs.SemanticDirs()
	if len(got) != 2 || got[0] != "/a-sel" || got[1] != "/b-sel" {
		t.Fatalf("SemanticDirs = %v", got)
	}
}

func TestSyncOnFileFails(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.Sync("/docs/apple1.txt"); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatalf("Sync on file err = %v", err)
	}
	if err := fs.Sync("/nope"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("Sync on missing err = %v", err)
	}
}

func TestDeepLinkChainsInScope(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/first", "apple"); err != nil {
		t.Fatal(err)
	}
	// A second semantic dir holds a link pointing at the FIRST dir's
	// link (link-to-link); scope resolution must chase it to the file.
	if err := fs.MkSemDir("/second", ""); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/first/apple1.txt", "/second/indirect"); err != nil {
		t.Fatal(err)
	}
	// A child of /second scopes over the resolved file.
	if err := fs.MkSemDir("/second/sub", "fruit"); err != nil {
		t.Fatal(err)
	}
	targets, err := fs.LinkTargets("/second/sub")
	if err != nil || len(targets) != 1 || !strings.Contains(targets[0], "apple1") {
		t.Fatalf("link-chain scope = %v, %v", targets, err)
	}
}

func TestMkSemDirUnderFileFails(t *testing.T) {
	fs := newTestFS(t)
	err := fs.MkSemDir("/docs/apple1.txt/sub", "apple")
	if !errors.Is(err, vfs.ErrNotDir) && !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}
