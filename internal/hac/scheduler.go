package hac

import (
	"sync"
	"time"

	"hacfs/internal/index"
)

// RegisterTransducer attaches an attribute-extracting transducer to a
// file extension in the volume's index (see index.Transducer). It must
// be called before the first Reindex: once documents are indexed the
// call fails with a *vfs.PathError wrapping index.ErrNotEmpty, because
// the existing documents would silently lack the new attribute terms.
// Prefer registering at construction time (Options.Transducers or
// WithTransducer); loaded volumes re-attach transducers the same way.
func (fs *FS) RegisterTransducer(ext string, t index.Transducer) error {
	return fs.ix.RegisterTransducer(ext, t)
}

// Scheduler periodically runs the §2.4 data-consistency pass: "HAC
// invokes the CBA mechanism to reindex the file system periodically
// (say, once a day or once an hour), determined by the user." Users can
// also trigger a pass at any time with TriggerNow.
type Scheduler struct {
	fs   *FS
	root string

	mu      sync.Mutex
	stop    chan struct{}
	kick    chan chan error
	stopped bool
	runs    int
	lastErr error
}

// StartAutoReindex begins reindexing the subtree at root every
// interval. Stop the scheduler when done.
func (fs *FS) StartAutoReindex(root string, interval time.Duration) *Scheduler {
	s := &Scheduler{
		fs:   fs,
		root: root,
		stop: make(chan struct{}),
		kick: make(chan chan error),
	}
	go s.loop(interval)
	return s
}

func (s *Scheduler) loop(interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.runOnce(nil)
		case reply := <-s.kick:
			s.runOnce(reply)
		}
	}
}

func (s *Scheduler) runOnce(reply chan error) {
	_, err := s.fs.Reindex(s.root)
	s.mu.Lock()
	s.runs++
	s.lastErr = err
	s.mu.Unlock()
	if reply != nil {
		reply <- err
	}
}

// TriggerNow runs a reindex pass immediately ("HAC also allows users to
// initiate reindexing at any time", §2.4) and returns its error. After
// Stop it is a no-op returning nil.
func (s *Scheduler) TriggerNow() error {
	reply := make(chan error, 1)
	select {
	case <-s.stop:
		return nil
	case s.kick <- reply:
		return <-reply
	}
}

// Stop halts the scheduler. It is idempotent.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.stopped {
		s.stopped = true
		close(s.stop)
	}
}

// Runs returns how many passes have completed and the error of the most
// recent one.
func (s *Scheduler) Runs() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs, s.lastErr
}
