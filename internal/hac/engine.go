package hac

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hacfs/internal/index"
	"hacfs/internal/obs"
)

// Option configures a volume at construction (NewWith) or one
// evaluation pass (Sync, SyncAll, Reindex). Options passed to a
// constructor become the volume's defaults; options passed to a pass
// override the defaults for that pass only.
type Option func(*config)

// config accumulates both volume-construction settings and per-pass
// evaluation overrides.
type config struct {
	vol  Options
	eval evalConfig
	set  struct {
		parallelism bool
		verify      bool
	}
}

// evalConfig is the resolved configuration of one evaluation pass.
type evalConfig struct {
	parallelism int
	verify      bool
	ctx         context.Context
	// span is the pass's root span (hac.Sync / hac.SyncAll /
	// hac.Reindex); per-directory evaluation spans are its children.
	// nil — as in mutation-triggered consistency passes — disables
	// tracing for the pass.
	span *obs.Span
}

// WithParallelism sets the worker count for Reindex tokenization and
// for within-level query re-evaluation. 0 selects runtime.NumCPU();
// 1 disables concurrency.
func WithParallelism(n int) Option {
	return func(c *config) {
		c.vol.Parallelism = n
		c.eval.parallelism = n
		c.set.parallelism = true
	}
}

// WithVerify toggles the Glimpse-style second level: every query match
// is confirmed by scanning the file's content (see
// Options.VerifyMatches).
func WithVerify(v bool) Option {
	return func(c *config) {
		c.vol.VerifyMatches = v
		c.eval.verify = v
		c.set.verify = true
	}
}

// WithContext attaches a context to an evaluation pass. Remote
// namespace calls issued by the pass are bounded by it (in addition to
// the volume's default remote timeout). It has no effect at
// construction time.
func WithContext(ctx context.Context) Option {
	return func(c *config) { c.eval.ctx = ctx }
}

// WithObserver directs the volume's metrics and spans to o
// (construction only). nil selects the process-wide obs.Default();
// obs.Discard() disables recording.
func WithObserver(o *obs.Observer) Option {
	return func(c *config) { c.vol.Observer = o }
}

// WithAttrCacheSize bounds the attribute cache (construction only).
func WithAttrCacheSize(n int) Option {
	return func(c *config) { c.vol.AttrCacheSize = n }
}

// WithRemoteTimeout bounds each remote namespace RPC issued during
// evaluation (construction only; default 10s).
func WithRemoteTimeout(d time.Duration) Option {
	return func(c *config) { c.vol.RemoteTimeout = d }
}

// WithTransducer registers an attribute transducer for a file
// extension at construction ("" = every file).
func WithTransducer(ext string, t index.Transducer) Option {
	return func(c *config) {
		if c.vol.Transducers == nil {
			c.vol.Transducers = make(map[string][]index.Transducer)
		}
		c.vol.Transducers[ext] = append(c.vol.Transducers[ext], t)
	}
}

// resolveParallelism maps the configured worker count to an effective
// one.
func resolveParallelism(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// evalCfg resolves one pass's configuration from the volume defaults
// plus per-call options.
func (fs *FS) evalCfg(opts []Option) evalConfig {
	var c config
	c.eval = evalConfig{
		parallelism: fs.par,
		verify:      fs.verify,
		ctx:         context.Background(),
	}
	for _, o := range opts {
		o(&c)
	}
	if !c.set.parallelism {
		c.eval.parallelism = fs.par
	}
	if !c.set.verify {
		c.eval.verify = fs.verify
	}
	if c.eval.ctx == nil {
		c.eval.ctx = context.Background()
	}
	c.eval.parallelism = resolveParallelism(c.eval.parallelism)
	return c.eval
}

// ---------------------------------------------------------------------
// Level-parallel scope-consistency engine.
//
// The dependency DAG already encodes which directories may be
// re-evaluated independently: within one antichain ("level") no
// directory's query can observe another's links. The engine therefore
// walks the levels in topological order and, inside each level,
// evaluates all semantic directories concurrently under the volume's
// read lock. Evaluation is pure — it only reads the index, the name
// map and the scopes committed by earlier levels — and stages each
// directory's new transient target set. Link mutations then commit
// under the write lock, in ascending path order, so symlink names and
// substrate mutation order are deterministic regardless of worker
// scheduling.
//
// Lock hierarchy (see DESIGN.md "Evaluation engine"): fs.mu (RW) >
// index.mu > namemap.mu > substrate locks. Evaluation holds fs.mu.R,
// commit holds fs.mu.W; worker goroutines themselves take no locks —
// they are covered by the coordinator's read lock.
//
// Because the read lock is released between evaluation and commit,
// a user mutation can slip in. Every mutating operation bumps fs.gen
// under the write lock; if the generation moved, the staged results
// are discarded and the level is re-evaluated serially under the
// write lock (the pre-parallel behavior), which is always safe.
// ---------------------------------------------------------------------

// stagedResult is one directory's computed transient target set,
// held until its level commits.
type stagedResult struct {
	uid     uint64
	path    string
	targets map[string]bool
	err     error
}

// syncLevels restores scope consistency for the given dependency
// levels, in order.
func (fs *FS) syncLevels(levels [][]uint64, cfg evalConfig) error {
	for _, level := range levels {
		if err := fs.syncOneLevel(level, cfg); err != nil {
			return err
		}
	}
	return nil
}

// syncOneLevel re-evaluates every semantic directory of one antichain.
func (fs *FS) syncOneLevel(level []uint64, cfg evalConfig) error {
	if cfg.parallelism <= 1 || len(level) <= 1 {
		fs.mu.Lock()
		defer fs.mu.Unlock()
		for _, uid := range level {
			ds, ok := fs.dirs[uid]
			if !ok || !ds.semantic {
				continue
			}
			if err := fs.reevalCfgLocked(ds, cfg); err != nil {
				return err
			}
		}
		fs.gen++
		return nil
	}

	// Evaluation phase: stage every directory's new target set under
	// the read lock. Workers take no locks themselves — the
	// coordinator's RLock keeps all writers out.
	fs.mu.RLock()
	startGen := fs.gen
	staged := make([]stagedResult, 0, len(level))
	for _, uid := range level {
		ds, ok := fs.dirs[uid]
		if !ok || !ds.semantic {
			continue
		}
		p, ok := fs.pathOfLocked(uid)
		if !ok {
			continue
		}
		staged = append(staged, stagedResult{uid: uid, path: p})
	}
	if len(staged) == 0 {
		fs.mu.RUnlock()
		return nil
	}
	workers := cfg.parallelism
	if workers > len(staged) {
		workers = len(staged)
	}
	fs.met.queueDepth.Set(int64(len(staged)))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fs.met.workersBusy.Add(1)
			defer fs.met.workersBusy.Add(-1)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(staged) {
					return
				}
				ds := fs.dirs[staged[i].uid]
				staged[i].targets, staged[i].err = fs.computeTargetsLocked(ds, cfg)
				fs.met.queueDepth.Add(-1)
			}
		}()
	}
	wg.Wait()
	fs.met.queueDepth.Set(0)
	fs.mu.RUnlock()

	// Commit phase: apply in ascending path order under the write
	// lock, so link materialization is deterministic.
	sort.Slice(staged, func(i, j int) bool { return staged[i].path < staged[j].path })
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.gen != startGen {
		// A mutation interleaved between evaluation and commit; the
		// staged scopes may be stale. Fall back to serial
		// re-evaluation under the write lock.
		fs.met.genFallbacks.Add(1)
		for _, s := range staged {
			ds, ok := fs.dirs[s.uid]
			if !ok || !ds.semantic {
				continue
			}
			if err := fs.reevalCfgLocked(ds, cfg); err != nil {
				return err
			}
		}
		fs.gen++
		return nil
	}
	for _, s := range staged {
		if s.err != nil {
			return s.err
		}
		ds, ok := fs.dirs[s.uid]
		if !ok || !ds.semantic {
			continue
		}
		if err := fs.commitTargetsLocked(ds, s.targets); err != nil {
			return err
		}
	}
	fs.gen++
	return nil
}
