package hac

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"hacfs/internal/vfs"
)

func TestPermanentLinkFollowsFileRename(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	// A permanent link to a non-matching file.
	if err := fs.Symlink("/docs/cherry.txt", "/sel/keep.txt"); err != nil {
		t.Fatal(err)
	}
	// The file is renamed: the link must keep tracking it.
	if err := fs.Rename("/docs/cherry.txt", "/docs/cherry-v2.txt"); err != nil {
		t.Fatal(err)
	}
	target, err := fs.Readlink("/sel/keep.txt")
	if err != nil || target != "/docs/cherry-v2.txt" {
		t.Fatalf("link target after file rename = %q, %v", target, err)
	}
	data, err := fs.ReadFile("/sel/keep.txt")
	if err != nil || string(data) != "cherry tree dark" {
		t.Fatalf("read through rewritten link = %q, %v", data, err)
	}
	links, _ := fs.Links("/sel")
	for _, l := range links {
		if l.Target == "/docs/cherry.txt" {
			t.Fatal("stale target survives in classification")
		}
		if l.Target == "/docs/cherry-v2.txt" && l.Class != Permanent {
			t.Fatalf("rewritten link class = %v", l.Class)
		}
	}
	if problems := fs.CheckConsistency(); len(problems) != 0 {
		t.Fatalf("inconsistent after file rename: %v", problems)
	}
}

func TestProhibitionFollowsFileRename(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/sel/apple1.txt"); err != nil {
		t.Fatal(err)
	}
	// The prohibited document moves; the prohibition must follow it.
	if err := fs.Rename("/docs/apple1.txt", "/docs/apple1-renamed.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	for _, target := range targetsOf(t, fs, "/sel") {
		if target == "/docs/apple1-renamed.txt" {
			t.Fatal("prohibition did not follow the renamed document")
		}
	}
}

func TestLinksFollowDirectoryRename(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/docs/cherry.txt", "/sel/pinned.txt"); err != nil {
		t.Fatal(err)
	}
	// Renaming the whole directory rewrites every target under it.
	if err := fs.Rename("/docs", "/papers"); err != nil {
		t.Fatal(err)
	}
	target, err := fs.Readlink("/sel/pinned.txt")
	if err != nil || target != "/papers/cherry.txt" {
		t.Fatalf("permanent link after dir rename = %q, %v", target, err)
	}
	// Transient links were rewritten too; everything readable.
	for _, tg := range targetsOf(t, fs, "/sel") {
		if _, _, remote := splitRemoteTarget(tg); remote {
			continue
		}
		if _, err := fs.ReadFile(tg); err != nil {
			t.Fatalf("target %s unreadable after dir rename: %v", tg, err)
		}
	}
	if problems := fs.CheckConsistency(); len(problems) != 0 {
		t.Fatalf("inconsistent after dir rename: %v", problems)
	}
}

// TestConcurrentRenameAndSync races Rename against Sync, Search,
// Reindex and the background segment merger. The snapshot-pinned
// evaluation must never observe a half-renamed ID space: no operation
// may fail, and once the dust settles the volume is fully consistent.
// CI runs this under the race detector.
func TestConcurrentRenameAndSync(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	stopMerger := fs.Index().StartMerger(time.Millisecond)
	defer stopMerger()

	const rounds = 40
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { // renames a matching file back and forth
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if err := fs.Rename("/docs/apple1.txt", "/docs/apple1-moved.txt"); err != nil {
				t.Errorf("rename out: %v", err)
				return
			}
			if err := fs.Rename("/docs/apple1-moved.txt", "/docs/apple1.txt"); err != nil {
				t.Errorf("rename back: %v", err)
				return
			}
		}
	}()
	go func() { // re-syncs the semantic directory
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if err := fs.Sync("/sel"); err != nil {
				t.Errorf("sync: %v", err)
				return
			}
		}
	}()
	go func() { // searches against pinned snapshots
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := fs.SearchPaths("apple", "/"); err != nil {
				t.Errorf("search: %v", err)
				return
			}
		}
	}()
	go func() { // keeps the index churning (staleness detection + merge)
		defer wg.Done()
		for i := 0; i < rounds/4; i++ {
			if err := fs.WriteFile("/docs/churn.txt", []byte(fmt.Sprintf("apple churn %d", i))); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			if _, err := fs.Reindex("/docs"); err != nil {
				t.Errorf("reindex: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Settle and audit.
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncAll(); err != nil {
		t.Fatal(err)
	}
	if problems := fs.CheckConsistency(); len(problems) != 0 {
		t.Fatalf("inconsistent after concurrent rename/sync: %v", problems)
	}
	got, err := fs.SearchPaths("apple", "/")
	if err != nil {
		t.Fatal(err)
	}
	if want := targetsOf(t, fs, "/sel"); !reflect.DeepEqual(got, want) {
		t.Fatalf("search = %v, targets = %v", got, want)
	}
}

// TestDirRenameUnderQueryRefAcrossCrash interleaves a directory rename
// with a crash and recovery: a semantic directory referenced by another
// directory's dir: query is renamed while the substrate dies mid-way,
// and the volume is recovered from the last good image via LoadVolume +
// Reindex. The dir: reference must stay bound (by UID, §2.5) on every
// path through the interleaving — clean rename before the save, crashed
// rename after it — and the recovered volume must be fully consistent.
func TestDirRenameUnderQueryRefAcrossCrash(t *testing.T) {
	fault := vfs.NewFaultFS(vfs.New(), vfs.FaultConfig{Seed: 11, TornWrites: true})
	fs := New(fault, Options{})
	if err := fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	for p, c := range map[string]string{
		"/docs/apple1.txt": "apple fruit red",
		"/docs/apple2.txt": "apple banana mixed",
		"/docs/cherry.txt": "cherry fruit dark",
	} {
		if err := fs.WriteFile(p, []byte(c)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	// /apples references /fruit by dir: — the dependency the rename
	// must not sever.
	if err := fs.MkSemDir("/fruit", "fruit"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/apples", "apple AND dir:/fruit"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, fs, "/apples", "/docs/apple1.txt")

	// Save a good image with the reference in place.
	var good bytes.Buffer
	if err := fs.SaveVolume(&good); err != nil {
		t.Fatal(err)
	}

	// The machine dies partway through renaming the referenced
	// directory. The substrate-level rename may or may not have
	// happened; the HAC layer must report the failure either way.
	fault.CrashAfter(2)
	renameErr := fs.Rename("/fruit", "/basket")
	if renameErr == nil {
		t.Fatal("rename on crashing store succeeded")
	}
	if !errors.Is(renameErr, vfs.ErrCrashed) && !errors.Is(renameErr, vfs.ErrInjected) {
		t.Fatalf("rename error = %v, want injected crash", renameErr)
	}

	// Recovery: the good image loads on a fresh substrate and the
	// reference still resolves — /fruit is back under its saved name.
	rec, err := LoadVolume(bytes.NewReader(good.Bytes()), Options{})
	if err != nil {
		t.Fatalf("recovery load: %v", err)
	}
	if _, err := rec.Reindex("/"); err != nil {
		t.Fatalf("recovery reindex: %v", err)
	}
	if problems := rec.CheckConsistency(); len(problems) != 0 {
		t.Fatalf("recovered volume inconsistent: %v", problems)
	}
	wantTargets(t, rec, "/apples", "/docs/apple1.txt")
	if q, err := rec.QueryDisplay("/apples"); err != nil || !strings.Contains(q, "dir:/fruit") {
		t.Fatalf("recovered query = %q, %v; want dir:/fruit reference", q, err)
	}

	// The same rename now completes cleanly on the recovered volume:
	// the dir: reference follows the directory to its new name, and
	// the whole state survives another save/load cycle.
	if err := rec.Rename("/fruit", "/basket"); err != nil {
		t.Fatal(err)
	}
	wantTargets(t, rec, "/apples", "/docs/apple1.txt")
	if q, err := rec.QueryDisplay("/apples"); err != nil || !strings.Contains(q, "dir:/basket") {
		t.Fatalf("query after rename = %q, %v; want dir:/basket", q, err)
	}
	var again bytes.Buffer
	if err := rec.SaveVolume(&again); err != nil {
		t.Fatal(err)
	}
	rec2, err := LoadVolume(bytes.NewReader(again.Bytes()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantTargets(t, rec2, "/apples", "/docs/apple1.txt")
	if q, err := rec2.QueryDisplay("/apples"); err != nil || !strings.Contains(q, "dir:/basket") {
		t.Fatalf("reloaded query = %q, %v; want dir:/basket", q, err)
	}
	if problems := rec2.CheckConsistency(); len(problems) != 0 {
		t.Fatalf("reloaded volume inconsistent: %v", problems)
	}
}
