package hac

import (
	"testing"
)

func TestPermanentLinkFollowsFileRename(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	// A permanent link to a non-matching file.
	if err := fs.Symlink("/docs/cherry.txt", "/sel/keep.txt"); err != nil {
		t.Fatal(err)
	}
	// The file is renamed: the link must keep tracking it.
	if err := fs.Rename("/docs/cherry.txt", "/docs/cherry-v2.txt"); err != nil {
		t.Fatal(err)
	}
	target, err := fs.Readlink("/sel/keep.txt")
	if err != nil || target != "/docs/cherry-v2.txt" {
		t.Fatalf("link target after file rename = %q, %v", target, err)
	}
	data, err := fs.ReadFile("/sel/keep.txt")
	if err != nil || string(data) != "cherry tree dark" {
		t.Fatalf("read through rewritten link = %q, %v", data, err)
	}
	links, _ := fs.Links("/sel")
	for _, l := range links {
		if l.Target == "/docs/cherry.txt" {
			t.Fatal("stale target survives in classification")
		}
		if l.Target == "/docs/cherry-v2.txt" && l.Class != Permanent {
			t.Fatalf("rewritten link class = %v", l.Class)
		}
	}
	if problems := fs.CheckConsistency(); len(problems) != 0 {
		t.Fatalf("inconsistent after file rename: %v", problems)
	}
}

func TestProhibitionFollowsFileRename(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/sel/apple1.txt"); err != nil {
		t.Fatal(err)
	}
	// The prohibited document moves; the prohibition must follow it.
	if err := fs.Rename("/docs/apple1.txt", "/docs/apple1-renamed.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	for _, target := range targetsOf(t, fs, "/sel") {
		if target == "/docs/apple1-renamed.txt" {
			t.Fatal("prohibition did not follow the renamed document")
		}
	}
}

func TestLinksFollowDirectoryRename(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/docs/cherry.txt", "/sel/pinned.txt"); err != nil {
		t.Fatal(err)
	}
	// Renaming the whole directory rewrites every target under it.
	if err := fs.Rename("/docs", "/papers"); err != nil {
		t.Fatal(err)
	}
	target, err := fs.Readlink("/sel/pinned.txt")
	if err != nil || target != "/papers/cherry.txt" {
		t.Fatalf("permanent link after dir rename = %q, %v", target, err)
	}
	// Transient links were rewritten too; everything readable.
	for _, tg := range targetsOf(t, fs, "/sel") {
		if _, _, remote := splitRemoteTarget(tg); remote {
			continue
		}
		if _, err := fs.ReadFile(tg); err != nil {
			t.Fatalf("target %s unreadable after dir rename: %v", tg, err)
		}
	}
	if problems := fs.CheckConsistency(); len(problems) != 0 {
		t.Fatalf("inconsistent after dir rename: %v", problems)
	}
}
