package remotefs

import (
	"context"
	"fmt"
	"io"
	"time"

	"hacfs/internal/obs"
	"hacfs/internal/vfs"
	"hacfs/internal/wire"
)

// MuxClient is a vfs.FileSystem backed by a remote Server over the
// multiplexed binary framing: any number of goroutines issue requests
// concurrently over ONE connection, each tagged with a request ID —
// where the legacy gob Client serializes them. Views onto different
// tenants of the same server share the connection (see Tenant).
type MuxClient struct {
	tenant string
	mux    *wire.Mux
	met    clientMetrics
	obsv   *obs.Observer
}

var _ vfs.FileSystem = (*MuxClient)(nil)

// DialMux creates a binary-protocol client for the server at addr,
// addressing the server's default volume. The connection is
// established lazily.
func DialMux(addr string) *MuxClient {
	return &MuxClient{
		mux:  wire.NewMux(addr, 10*time.Second, maxFrameBuf),
		met:  newClientMetrics(obs.Default()),
		obsv: obs.Default(),
	}
}

// Tenant returns a view of the same connection addressing the named
// tenant volume. Views are independent and safe for concurrent use.
func (c *MuxClient) Tenant(name string) *MuxClient {
	view := *c
	view.tenant = name
	return &view
}

// SetTimeout changes the dial / per-request deadline.
func (c *MuxClient) SetTimeout(d time.Duration) { c.mux.SetTimeout(d) }

// SetObserver redirects the client's metrics, spans and slow-op log
// to o.
func (c *MuxClient) SetObserver(o *obs.Observer) {
	c.met = newClientMetrics(o)
	c.obsv = o
}

// startRPC opens the client-side span for one remote operation: the
// local fragment of the distributed trace, parent of the server's
// span (the span's context is handed straight to the mux for frame
// injection — the client never needs it back out of a context, so
// nothing is re-wrapped). Only the semantic ops — search, streamed
// search, sync — mint a trace of their own; everything else joins a
// trace only when the caller's ctx already carries one (a span started
// with no trace in ctx would orphan otherwise-untraced cheap ops into
// single-span traces).
func (c *MuxClient) startRPC(ctx context.Context, op opCode) (*obs.Span, obs.SpanContext) {
	sc, traced := obs.FromContext(ctx)
	if !traced {
		switch op {
		case opSearch, opSearchStream, opSync:
		default:
			return nil, sc
		}
	}
	var sp *obs.Span
	if c.tenant != "" {
		sp = c.obsv.Tracer().StartRemote(sc, rpcSpanNames[op], "addr", c.mux.Addr(), "tenant", c.tenant)
	} else {
		sp = c.obsv.Tracer().StartRemote(sc, rpcSpanNames[op], "addr", c.mux.Addr())
	}
	if sp == nil {
		// Tracing disabled here; still forward the caller's trace so the
		// server can join it.
		return nil, sc
	}
	return sp, sp.Context()
}

// Close drops the connection (shared by all tenant views); later
// requests re-dial.
func (c *MuxClient) Close() error { return c.mux.Close() }

// call performs one framed round trip.
func (c *MuxClient) call(req *request) (*response, error) {
	return c.callCtx(context.Background(), req)
}

func (c *MuxClient) callCtx(ctx context.Context, req *request) (_ *response, err error) {
	if m, ok := c.met.ops[req.Op]; ok {
		defer m.done(time.Now(), &err)
	}
	sp, sc := c.startRPC(ctx, req.Op)
	defer func() { sp.FinishErr(err) }()
	req.Tenant = c.tenant
	f, err := c.mux.CallOneSC(ctx, sc, rfReq, appendRequest(nil, req))
	if err != nil {
		return nil, fmt.Errorf("remotefs: %w", err)
	}
	return decodeRespFrame(f)
}

func decodeRespFrame(f wire.Frame) (*response, error) {
	switch f.Type {
	case rfResp:
		var resp response
		if err := decodeResponse(f.Payload, &resp); err != nil {
			return nil, err
		}
		return &resp, nil
	case rfErr:
		return nil, fmt.Errorf("remotefs: server: %s", f.Payload)
	default:
		return nil, fmt.Errorf("remotefs: unexpected frame type %d", f.Type)
	}
}

// do is call for operations whose only interesting result is an error.
func (c *MuxClient) do(req *request) error {
	resp, err := c.call(req)
	if err != nil {
		return err
	}
	return resp.Err.decode()
}

// Ping checks liveness.
func (c *MuxClient) Ping() error { return c.PingContext(context.Background()) }

// PingContext checks liveness, bounded by ctx.
func (c *MuxClient) PingContext(ctx context.Context) error {
	resp, err := c.callCtx(ctx, &request{Op: opPing})
	if err != nil {
		return err
	}
	return resp.Err.decode()
}

// SyncPath restores scope consistency for the semantic directory at
// path on the served volume (the paper's ssync, over the wire).
func (c *MuxClient) SyncPath(path string) error {
	return c.SyncPathContext(context.Background(), path)
}

// SyncPathContext is SyncPath bounded by ctx.
func (c *MuxClient) SyncPathContext(ctx context.Context, path string) error {
	resp, err := c.callCtx(ctx, &request{Op: opSync, Path: path})
	if err != nil {
		return err
	}
	return resp.Err.decode()
}

// SearchPage runs a content query on the served volume and returns one
// cursor page of matching paths (see Client.SearchPage).
func (c *MuxClient) SearchPage(ctx context.Context, query, scope string, after uint64, limit int) ([]string, uint64, error) {
	if after > (1<<63 - 1) {
		return nil, 0, fmt.Errorf("remotefs: search cursor overflow")
	}
	resp, err := c.callCtx(ctx, &request{Op: opSearch, Path: scope, Path2: query, Offset: int64(after), N: limit})
	if err != nil {
		return nil, 0, err
	}
	if err := resp.Err.decode(); err != nil {
		return nil, 0, err
	}
	return resp.Strs, uint64(resp.Off), nil
}

// SearchStream runs a content query and streams every result page
// through fn: the server walks the cursor itself and ships one framed
// page per callback, so a large result needs one request, not one
// round trip per page. pageSize <= 0 uses the server default.
func (c *MuxClient) SearchStream(ctx context.Context, query, scope string, pageSize int, fn func(paths []string) error) (err error) {
	if m, ok := c.met.ops[opSearchStream]; ok {
		defer m.done(time.Now(), &err)
	}
	sp, sc := c.startRPC(ctx, opSearchStream)
	defer func() { sp.FinishErr(err) }()
	req := &request{Op: opSearchStream, Tenant: c.tenant, Path: scope, Path2: query, N: pageSize}
	st, err := c.mux.CallSC(ctx, sc, rfReq, appendRequest(nil, req))
	if err != nil {
		return fmt.Errorf("remotefs: %w", err)
	}
	defer st.Cancel()
	for {
		f, err := st.Next(ctx)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		resp, err := decodeRespFrame(f)
		if err != nil {
			return err
		}
		if err := resp.Err.decode(); err != nil {
			return err
		}
		if len(resp.Strs) > 0 || f.Final() {
			if err := fn(resp.Strs); err != nil {
				return err
			}
		}
		if f.Final() {
			return nil
		}
	}
}

// ReadFileContext reads a whole remote file, bounded by ctx.
func (c *MuxClient) ReadFileContext(ctx context.Context, path string) ([]byte, error) {
	resp, err := c.callCtx(ctx, &request{Op: opReadFile, Path: path})
	if err != nil {
		return nil, err
	}
	return resp.Data, resp.Err.decode()
}

// ReadDirContext lists a remote directory, bounded by ctx.
func (c *MuxClient) ReadDirContext(ctx context.Context, path string) ([]vfs.DirEntry, error) {
	resp, err := c.callCtx(ctx, &request{Op: opReadDir, Path: path})
	if err != nil {
		return nil, err
	}
	return resp.Entries, resp.Err.decode()
}

// StatContext returns remote metadata, bounded by ctx.
func (c *MuxClient) StatContext(ctx context.Context, path string) (vfs.Info, error) {
	resp, err := c.callCtx(ctx, &request{Op: opStat, Path: path})
	if err != nil {
		return vfs.Info{}, err
	}
	return resp.Info, resp.Err.decode()
}

// Mkdir creates a directory on the remote volume.
func (c *MuxClient) Mkdir(path string) error {
	return c.do(&request{Op: opMkdir, Path: path})
}

// MkdirAll creates a directory and missing parents.
func (c *MuxClient) MkdirAll(path string) error {
	return c.do(&request{Op: opMkdirAll, Path: path})
}

// Create creates or truncates a remote file.
func (c *MuxClient) Create(path string) (vfs.File, error) {
	return c.OpenFile(path, vfs.ORead|vfs.OWrite|vfs.OCreate|vfs.OTrunc)
}

// Open opens a remote file for reading.
func (c *MuxClient) Open(path string) (vfs.File, error) {
	return c.OpenFile(path, vfs.ORead)
}

// OpenFile opens a remote file.
func (c *MuxClient) OpenFile(path string, flag int) (vfs.File, error) {
	resp, err := c.call(&request{Op: opOpenFile, Path: path, Flag: flag})
	if err != nil {
		return nil, err
	}
	if err := resp.Err.decode(); err != nil {
		return nil, err
	}
	return &muxFile{c: c, handle: resp.Handle, name: path}, nil
}

// ReadFile reads a whole remote file.
func (c *MuxClient) ReadFile(path string) ([]byte, error) {
	resp, err := c.call(&request{Op: opReadFile, Path: path})
	if err != nil {
		return nil, err
	}
	return resp.Data, resp.Err.decode()
}

// WriteFile writes a whole remote file.
func (c *MuxClient) WriteFile(path string, data []byte) error {
	return c.do(&request{Op: opWriteFile, Path: path, Data: data})
}

// Symlink creates a remote symbolic link.
func (c *MuxClient) Symlink(target, link string) error {
	return c.do(&request{Op: opSymlink, Path: link, Path2: target})
}

// Readlink reads a remote symbolic link.
func (c *MuxClient) Readlink(path string) (string, error) {
	resp, err := c.call(&request{Op: opReadlink, Path: path})
	if err != nil {
		return "", err
	}
	return resp.Str, resp.Err.decode()
}

// Remove deletes one remote object.
func (c *MuxClient) Remove(path string) error {
	return c.do(&request{Op: opRemove, Path: path})
}

// RemoveAll deletes a remote subtree.
func (c *MuxClient) RemoveAll(path string) error {
	return c.do(&request{Op: opRemoveAll, Path: path})
}

// Rename moves a remote object.
func (c *MuxClient) Rename(oldPath, newPath string) error {
	return c.do(&request{Op: opRename, Path: oldPath, Path2: newPath})
}

// Stat returns remote metadata, following symlinks.
func (c *MuxClient) Stat(path string) (vfs.Info, error) {
	resp, err := c.call(&request{Op: opStat, Path: path})
	if err != nil {
		return vfs.Info{}, err
	}
	return resp.Info, resp.Err.decode()
}

// Lstat returns remote metadata without following a final symlink.
func (c *MuxClient) Lstat(path string) (vfs.Info, error) {
	resp, err := c.call(&request{Op: opLstat, Path: path})
	if err != nil {
		return vfs.Info{}, err
	}
	return resp.Info, resp.Err.decode()
}

// ReadDir lists a remote directory.
func (c *MuxClient) ReadDir(path string) ([]vfs.DirEntry, error) {
	resp, err := c.call(&request{Op: opReadDir, Path: path})
	if err != nil {
		return nil, err
	}
	return resp.Entries, resp.Err.decode()
}

// muxFile is an open handle on the server, reached over the shared
// multiplexed connection.
type muxFile struct {
	c      *MuxClient
	handle uint64
	name   string
}

var _ vfs.File = (*muxFile)(nil)

func (f *muxFile) Name() string { return f.name }

func (f *muxFile) Read(p []byte) (int, error) {
	resp, err := f.c.call(&request{Op: opFileRead, Handle: f.handle, N: len(p)})
	if err != nil {
		return 0, err
	}
	if err := resp.Err.decode(); err != nil {
		return 0, err
	}
	n := copy(p, resp.Data)
	if resp.EOF {
		return n, io.EOF
	}
	return n, nil
}

func (f *muxFile) ReadAt(p []byte, off int64) (int, error) {
	resp, err := f.c.call(&request{Op: opFileReadAt, Handle: f.handle, N: len(p), Offset: off})
	if err != nil {
		return 0, err
	}
	if err := resp.Err.decode(); err != nil {
		return 0, err
	}
	n := copy(p, resp.Data)
	if resp.EOF {
		return n, io.EOF
	}
	return n, nil
}

func (f *muxFile) Write(p []byte) (int, error) {
	resp, err := f.c.call(&request{Op: opFileWrite, Handle: f.handle, Data: p})
	if err != nil {
		return 0, err
	}
	return resp.N, resp.Err.decode()
}

func (f *muxFile) WriteAt(p []byte, off int64) (int, error) {
	resp, err := f.c.call(&request{Op: opFileWriteAt, Handle: f.handle, Data: p, Offset: off})
	if err != nil {
		return 0, err
	}
	return resp.N, resp.Err.decode()
}

func (f *muxFile) Seek(offset int64, whence int) (int64, error) {
	resp, err := f.c.call(&request{Op: opFileSeek, Handle: f.handle, Offset: offset, Whence: whence})
	if err != nil {
		return 0, err
	}
	return resp.Off, resp.Err.decode()
}

func (f *muxFile) Truncate(size int64) error {
	resp, err := f.c.call(&request{Op: opFileTruncate, Handle: f.handle, Size: size})
	if err != nil {
		return err
	}
	return resp.Err.decode()
}

func (f *muxFile) Stat() (vfs.Info, error) {
	resp, err := f.c.call(&request{Op: opFileStat, Handle: f.handle})
	if err != nil {
		return vfs.Info{}, err
	}
	return resp.Info, resp.Err.decode()
}

func (f *muxFile) Close() error {
	resp, err := f.c.call(&request{Op: opFileClose, Handle: f.handle})
	if err != nil {
		return err
	}
	return resp.Err.decode()
}
