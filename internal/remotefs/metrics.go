package remotefs

import (
	"time"

	"hacfs/internal/obs"
)

// opNames maps protocol op codes to the label value used in the
// remotefs_rpc_* series.
var opNames = map[opCode]string{
	opMkdir:        "mkdir",
	opMkdirAll:     "mkdirall",
	opOpenFile:     "open",
	opReadFile:     "readfile",
	opWriteFile:    "writefile",
	opSymlink:      "symlink",
	opReadlink:     "readlink",
	opRemove:       "remove",
	opRemoveAll:    "removeall",
	opRename:       "rename",
	opStat:         "stat",
	opLstat:        "lstat",
	opReadDir:      "readdir",
	opFileRead:     "fread",
	opFileWrite:    "fwrite",
	opFileReadAt:   "freadat",
	opFileWriteAt:  "fwriteat",
	opFileSeek:     "fseek",
	opFileTruncate: "ftruncate",
	opFileStat:     "fstat",
	opFileClose:    "fclose",
	opPing:         "ping",
	opSearch:       "search",
	opSync:         "sync",
	opSearchStream: "searchstream",
	opManifest:     "manifest",
	opBlobs:        "blobs",
}

// rpcSpanNames and rfsSpanNames are the client- and server-side span
// names per op, built once so the per-request hot path doesn't
// re-concatenate them.
var rpcSpanNames, rfsSpanNames = func() (map[opCode]string, map[opCode]string) {
	rpc := make(map[opCode]string, len(opNames))
	rfs := make(map[opCode]string, len(opNames))
	for op, name := range opNames {
		rpc[op] = "rpc." + name
		rfs[op] = "rfs." + name
	}
	return rpc, rfs
}()

// rpcMetrics instruments one protocol op: call count, transport latency
// and transport-error count (server-side errors travel inside the
// response and are not counted here).
type rpcMetrics struct {
	calls   *obs.Counter   // remotefs_rpc_total{op=...}
	errors  *obs.Counter   // remotefs_rpc_errors_total{op=...}
	seconds *obs.Histogram // remotefs_rpc_seconds{op=...}
}

func (m rpcMetrics) done(start time.Time, err *error) {
	m.calls.Add(1)
	m.seconds.ObserveSince(start)
	if *err != nil {
		m.errors.Add(1)
	}
}

// clientMetrics is the client's handle bundle, resolved once at Dial
// (against obs.Default()) or by SetObserver.
type clientMetrics struct {
	ops          map[opCode]rpcMetrics
	retries      *obs.Counter // remotefs_rpc_retries_total
	dialFailures *obs.Counter // remotefs_dial_failures_total
}

func newClientMetrics(o *obs.Observer) clientMetrics {
	r := o.Registry()
	ops := make(map[opCode]rpcMetrics, len(opNames))
	for op, name := range opNames {
		ops[op] = rpcMetrics{
			calls:   r.Counter("remotefs_rpc_total", "op", name),
			errors:  r.Counter("remotefs_rpc_errors_total", "op", name),
			seconds: r.Histogram("remotefs_rpc_seconds", nil, "op", name),
		}
	}
	return clientMetrics{
		ops:          ops,
		retries:      r.Counter("remotefs_rpc_retries_total"),
		dialFailures: r.Counter("remotefs_dial_failures_total"),
	}
}

// SetObserver redirects the client's metrics to o (they default to the
// process-wide obs.Default()).
func (c *Client) SetObserver(o *obs.Observer) {
	c.mu.Lock()
	c.met = newClientMetrics(o)
	c.mu.Unlock()
}
