package remotefs

import (
	"fmt"
	"time"

	"hacfs/internal/vfs"
	"hacfs/internal/wire"
)

// Binary codec for the multiplexed framing (DESIGN.md §12). The gob
// stream of the legacy protocol re-sends type information and cannot
// interleave messages; the binary codec writes every request and
// response as one self-contained frame payload with a fixed field
// schema, so frames from many in-flight requests can share a
// connection. Every variable-length field is decoded against an
// explicit bound before any allocation.

// maxIO bounds one read/write payload.
const maxIO = 16 << 20

// Decode bounds.
const (
	maxNameLen  = 1 << 10 // tenant names
	maxPathLen  = 64 << 10
	maxErrLen   = 16 << 10
	maxEntries  = 1 << 20 // directory entries / search paths per page
	maxFrameBuf = maxIO + (1 << 20)
)

func appendRequest(b []byte, req *request) []byte {
	b = append(b, byte(req.Op))
	b = wire.AppendString(b, req.Tenant)
	b = wire.AppendString(b, req.Path)
	b = wire.AppendString(b, req.Path2)
	b = wire.AppendBytes(b, req.Data)
	b = wire.AppendVarint(b, int64(req.Flag))
	b = wire.AppendUvarint(b, req.Handle)
	b = wire.AppendVarint(b, req.Offset)
	b = wire.AppendVarint(b, int64(req.Whence))
	b = wire.AppendVarint(b, req.Size)
	b = wire.AppendVarint(b, int64(req.N))
	return b
}

// decodeRequest parses one request payload. Data aliases the payload
// slice, which the caller owns for the request's lifetime.
func decodeRequest(payload []byte, req *request) error {
	d := wire.NewDec(payload)
	req.Op = opCode(d.Byte())
	req.Tenant = d.String(maxNameLen)
	req.Path = d.String(maxPathLen)
	req.Path2 = d.String(maxPathLen)
	req.Data = d.Bytes(maxIO)
	req.Flag = d.Int()
	req.Handle = d.Uvarint()
	req.Offset = d.Varint()
	req.Whence = d.Int()
	req.Size = d.Varint()
	req.N = d.Int()
	return d.Close()
}

func appendTime(b []byte, t time.Time) []byte {
	if t.IsZero() {
		return wire.AppendBool(b, false)
	}
	b = wire.AppendBool(b, true)
	return wire.AppendVarint(b, t.UnixNano())
}

func decodeTime(d *wire.Dec) time.Time {
	if !d.Bool() {
		return time.Time{}
	}
	return time.Unix(0, d.Varint())
}

func appendInfo(b []byte, info vfs.Info) []byte {
	b = wire.AppendString(b, info.Name)
	b = wire.AppendUvarint(b, info.Ino)
	b = append(b, byte(info.Type))
	b = wire.AppendVarint(b, info.Size)
	b = appendTime(b, info.ModTime)
	b = wire.AppendString(b, info.Target)
	return b
}

func decodeInfo(d *wire.Dec) vfs.Info {
	var info vfs.Info
	info.Name = d.String(maxPathLen)
	info.Ino = d.Uvarint()
	info.Type = vfs.NodeType(d.Byte())
	info.Size = d.Varint()
	info.ModTime = decodeTime(d)
	info.Target = d.String(maxPathLen)
	return info
}

func appendResponse(b []byte, resp *response) []byte {
	if resp.Err != nil {
		b = wire.AppendBool(b, true)
		b = wire.AppendString(b, resp.Err.Op)
		b = wire.AppendString(b, resp.Err.Path)
		b = wire.AppendString(b, resp.Err.Kind)
		b = wire.AppendString(b, resp.Err.Msg)
	} else {
		b = wire.AppendBool(b, false)
	}
	b = wire.AppendBytes(b, resp.Data)
	b = appendInfo(b, resp.Info)
	b = wire.AppendUvarint(b, uint64(len(resp.Entries)))
	for _, e := range resp.Entries {
		b = wire.AppendString(b, e.Name)
		b = append(b, byte(e.Type))
		b = wire.AppendUvarint(b, e.Ino)
	}
	b = wire.AppendString(b, resp.Str)
	b = wire.AppendStrings(b, resp.Strs)
	b = wire.AppendUvarint(b, resp.Handle)
	b = wire.AppendVarint(b, int64(resp.N))
	b = wire.AppendVarint(b, resp.Off)
	b = wire.AppendBool(b, resp.EOF)
	return b
}

func decodeResponse(payload []byte, resp *response) error {
	d := wire.NewDec(payload)
	if d.Bool() {
		we := &wireError{}
		we.Op = d.String(maxPathLen)
		we.Path = d.String(maxPathLen)
		we.Kind = d.String(maxNameLen)
		we.Msg = d.String(maxErrLen)
		resp.Err = we
	}
	resp.Data = d.Bytes(maxIO)
	resp.Info = decodeInfo(d)
	n := d.Uvarint()
	// Each entry costs at least 3 payload bytes; bounding the count by
	// the bytes actually remaining (and an absolute cap) keeps a hostile
	// count from over-allocating.
	if n > maxEntries || n > uint64(d.Len()) {
		return fmt.Errorf("remotefs: entry count %d exceeds payload", n)
	}
	if n > 0 {
		resp.Entries = make([]vfs.DirEntry, 0, n)
		for i := uint64(0); i < n; i++ {
			var e vfs.DirEntry
			e.Name = d.String(maxPathLen)
			e.Type = vfs.NodeType(d.Byte())
			e.Ino = d.Uvarint()
			if d.Err() != nil {
				return d.Err()
			}
			resp.Entries = append(resp.Entries, e)
		}
	}
	resp.Str = d.String(maxPathLen)
	resp.Strs = d.Strings(maxPathLen, maxEntries)
	resp.Handle = d.Uvarint()
	resp.N = d.Int()
	resp.Off = d.Varint()
	resp.EOF = d.Bool()
	return d.Close()
}
