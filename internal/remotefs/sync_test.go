package remotefs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"hacfs/internal/hac"
	"hacfs/internal/vfs"
	"hacfs/internal/vfs/cas"
)

// syncCorpus populates fsys with a small tree: nested dirs, a symlink,
// and files with one duplicated content blob.
func syncCorpus(t *testing.T, fsys vfs.FileSystem) {
	t.Helper()
	for _, dir := range []string{"/docs", "/docs/deep", "/mail"} {
		if err := fsys.Mkdir(dir); err != nil {
			t.Fatal(err)
		}
	}
	files := map[string]string{
		"/docs/a.txt":      "alpha content",
		"/docs/deep/b.txt": "beta content",
		"/mail/c.txt":      "alpha content", // dedup hit against a.txt
		"/mail/d.txt":      strings.Repeat("delta", 200),
	}
	for path, data := range files {
		if err := fsys.WriteFile(path, []byte(data)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fsys.Symlink("/docs/a.txt", "/link"); err != nil {
		t.Fatal(err)
	}
}

// treeOf flattens a file system into path → description for equality
// checks across substrates.
func treeOf(t *testing.T, fsys vfs.FileSystem) map[string]string {
	t.Helper()
	out := make(map[string]string)
	err := vfs.Walk(fsys, "/", func(p string, info vfs.Info) error {
		switch info.Type {
		case vfs.TypeDir:
			out[p] = "dir"
		case vfs.TypeSymlink:
			target, err := fsys.Readlink(p)
			if err != nil {
				return err
			}
			out[p] = "link:" + target
		case vfs.TypeFile:
			data, err := fsys.ReadFile(p)
			if err != nil {
				return err
			}
			out[p] = "file:" + string(data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func requireSameTree(t *testing.T, want, got vfs.FileSystem) {
	t.Helper()
	w, g := treeOf(t, want), treeOf(t, got)
	if !reflect.DeepEqual(w, g) {
		t.Fatalf("trees differ:\nwant %v\ngot  %v", w, g)
	}
}

func TestMirrorVolumeManifestDiff(t *testing.T) {
	for _, tc := range []struct {
		name string
		dial func(t *testing.T, fsys vfs.FileSystem) Peer
	}{
		{"gob", func(t *testing.T, fsys vfs.FileSystem) Peer { return serve(t, fsys) }},
		{"mux", func(t *testing.T, fsys vfs.FileSystem) Peer { return serveMuxClient(t, fsys) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src := cas.New(nil)
			syncCorpus(t, src)
			peer := tc.dial(t, src)
			dst := cas.New(nil)

			stats, err := MirrorVolume(context.Background(), peer, dst)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Mode != "manifest-diff" {
				t.Fatalf("Mode = %q, want manifest-diff", stats.Mode)
			}
			if stats.ManifestBytes <= 0 {
				t.Fatalf("ManifestBytes = %d, want > 0", stats.ManifestBytes)
			}
			// Three distinct contents across four files: the duplicate
			// blob must cross the wire once.
			if stats.BlobsFetched != 3 {
				t.Fatalf("BlobsFetched = %d, want 3", stats.BlobsFetched)
			}
			requireSameTree(t, src, dst)

			// Unchanged re-sync: every blob is already local.
			stats, err = MirrorVolume(context.Background(), peer, dst)
			if err != nil {
				t.Fatal(err)
			}
			if stats.BlobsFetched != 0 || stats.BlobBytes != 0 {
				t.Fatalf("re-sync fetched %d blobs / %d bytes, want 0/0", stats.BlobsFetched, stats.BlobBytes)
			}
			requireSameTree(t, src, dst)

			// Incremental: one changed file ships exactly one blob of
			// that file's size.
			changed := []byte("alpha content, revised")
			if err := src.WriteFile("/docs/a.txt", changed); err != nil {
				t.Fatal(err)
			}
			if err := src.Remove("/mail/d.txt"); err != nil {
				t.Fatal(err)
			}
			stats, err = MirrorVolume(context.Background(), peer, dst)
			if err != nil {
				t.Fatal(err)
			}
			if stats.BlobsFetched != 1 || stats.BlobBytes != int64(len(changed)) {
				t.Fatalf("dirty sync fetched %d blobs / %d bytes, want 1/%d",
					stats.BlobsFetched, stats.BlobBytes, len(changed))
			}
			requireSameTree(t, src, dst)
		})
	}
}

// A HAC volume over a cas substrate serves its substrate's manifest, so
// a replica mirrors the underlying tree through the quota-free wire.
func TestMirrorVolumeThroughHACVolume(t *testing.T) {
	substrate := cas.New(nil)
	hfs := hac.New(substrate, hac.Options{})
	syncCorpus(t, substrate)
	peer := serve(t, hfs)
	dst := cas.New(nil)

	stats, err := MirrorVolume(context.Background(), peer, dst)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mode != "manifest-diff" {
		t.Fatalf("Mode = %q, want manifest-diff", stats.Mode)
	}
	requireSameTree(t, substrate, dst)
}

// A legacy or non-CAS server answers opManifest with Unsupported and
// the mirror negotiates down to the full copy; the result is still an
// exact replica.
func TestMirrorVolumeLegacyFallback(t *testing.T) {
	src := vfs.New()
	syncCorpus(t, src)
	peer := serve(t, src)
	dst := cas.New(nil)
	if err := dst.WriteFile("/stale.txt", []byte("must go")); err != nil {
		t.Fatal(err)
	}

	stats, err := MirrorVolume(context.Background(), peer, dst)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mode != "full" {
		t.Fatalf("Mode = %q, want full", stats.Mode)
	}
	if stats.FilesCopied != 4 {
		t.Fatalf("FilesCopied = %d, want 4", stats.FilesCopied)
	}
	requireSameTree(t, src, dst)
}

// A non-CAS destination never asks for a manifest: the full copy runs
// even against a capable server.
func TestMirrorVolumeNonCASDestination(t *testing.T) {
	src := cas.New(nil)
	syncCorpus(t, src)
	peer := serve(t, src)
	dst := vfs.New()

	stats, err := MirrorVolume(context.Background(), peer, dst)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mode != "full" {
		t.Fatalf("Mode = %q, want full", stats.Mode)
	}
	requireSameTree(t, src, dst)
}

// fakePeer answers the manifest ops from a local hook while delegating
// the file surface to an embedded file system.
type fakePeer struct {
	vfs.FileSystem
	respond func(req *request) (*response, error)
	calls   map[opCode]int
}

func (p *fakePeer) callCtx(_ context.Context, req *request) (*response, error) {
	if p.calls == nil {
		p.calls = make(map[opCode]int)
	}
	p.calls[req.Op]++
	return p.respond(req)
}

// casPeer serves src's manifest and blobs through the real wire
// encoding, locally.
func casPeer(src *cas.FS) *fakePeer {
	return &fakePeer{FileSystem: src, respond: func(req *request) (*response, error) {
		switch req.Op {
		case opManifest:
			m, err := src.CASManifest()
			if err != nil {
				return &response{Err: encodeErr(err)}, nil
			}
			return &response{Data: m.EncodeBinary()}, nil
		case opBlobs:
			hashes, err := splitHashes(req.Data)
			if err != nil {
				return &response{Err: encodeErr(err)}, nil
			}
			blobs, err := src.CASBlobs(hashes)
			if err != nil {
				return &response{Err: encodeErr(err)}, nil
			}
			data, err := encodeBlobList(blobs)
			if err != nil {
				return &response{Err: encodeErr(err)}, nil
			}
			return &response{Data: data, N: len(blobs)}, nil
		}
		return &response{Err: encodeErr(vfs.ErrUnsupported)}, nil
	}}
}

// Blob fetches are packed into count-bounded batches.
func TestMirrorVolumeBatchesBlobFetches(t *testing.T) {
	src := cas.New(nil)
	n := syncBatchCount + syncBatchCount/2 // forces two opBlobs round trips
	for i := 0; i < n; i++ {
		if err := src.WriteFile(fmt.Sprintf("/f%04d.txt", i), []byte(fmt.Sprintf("content %04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	peer := casPeer(src)
	dst := cas.New(nil)
	stats, err := MirrorVolume(context.Background(), peer, dst)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlobsFetched != n {
		t.Fatalf("BlobsFetched = %d, want %d", stats.BlobsFetched, n)
	}
	if got := peer.calls[opBlobs]; got != 2 {
		t.Fatalf("opBlobs round trips = %d, want 2", got)
	}
	requireSameTree(t, src, dst)
}

// A server returning content that does not hash to what was requested
// is rejected before anything enters the local store.
func TestMirrorVolumeRejectsWrongContent(t *testing.T) {
	src := cas.New(nil)
	syncCorpus(t, src)
	honest := casPeer(src)
	peer := &fakePeer{FileSystem: src, respond: func(req *request) (*response, error) {
		resp, err := honest.respond(req)
		if err == nil && req.Op == opBlobs && resp.Err == nil && len(resp.Data) > 8 {
			resp.Data = bytes.Clone(resp.Data)
			resp.Data[len(resp.Data)-1] ^= 0x01 // corrupt the last blob's content
		}
		return resp, err
	}}
	dst := cas.New(nil)
	_, err := MirrorVolume(context.Background(), peer, dst)
	if err == nil || !strings.Contains(err.Error(), "wrong content") {
		t.Fatalf("err = %v, want wrong-content rejection", err)
	}
	if got := dst.Store().UniqueBytes(); got != 0 {
		t.Fatalf("rejected sync left %d bytes pinned in the store", got)
	}
}

// A failed sync must leave no temporary references pinned in a store
// shared with other volumes.
func TestMirrorVolumeFailureReleasesFetchedBlobs(t *testing.T) {
	src := cas.New(nil)
	syncCorpus(t, src)
	honest := casPeer(src)
	fail := errors.New("link dropped")
	var blobCalls int
	peer := &fakePeer{FileSystem: src, respond: func(req *request) (*response, error) {
		if req.Op == opBlobs {
			blobCalls++
			if blobCalls > 1 {
				return nil, fail
			}
		}
		return honest.respond(req)
	}}
	// Two files each over half the batch byte budget force at least two
	// round trips, so the cut connection interrupts a partially fetched
	// sync with temporaries already in the store.
	big := bytes.Repeat([]byte("x"), syncBatchBytes/2+1)
	if err := src.WriteFile("/big1.bin", big); err != nil {
		t.Fatal(err)
	}
	if err := src.WriteFile("/big2.bin", append(bytes.Clone(big), 'y')); err != nil {
		t.Fatal(err)
	}
	shared := cas.NewStore()
	dst := cas.New(shared)
	_, err := MirrorVolume(context.Background(), peer, dst)
	if !errors.Is(err, fail) {
		t.Fatalf("err = %v, want %v", err, fail)
	}
	if got := shared.UniqueBytes(); got != 0 {
		t.Fatalf("failed sync left %d bytes pinned in the shared store", got)
	}
}

func TestBlobListCodec(t *testing.T) {
	blobs := [][]byte{[]byte("one"), {}, []byte("three")}
	data, err := encodeBlobList(blobs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeBlobList(data, len(blobs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(blobs, got) {
		t.Fatalf("round trip = %q, want %q", got, blobs)
	}
	// Wrong expected counts, truncations, and oversize lengths reject.
	if _, err := decodeBlobList(data, 2); err == nil {
		t.Fatal("extra blob accepted")
	}
	if _, err := decodeBlobList(data, 4); err == nil {
		t.Fatal("missing blob accepted")
	}
	if _, err := decodeBlobList(data[:len(data)-1], len(blobs)); err == nil {
		t.Fatal("truncated content accepted")
	}
	if _, err := decodeBlobList(data[:4], 1); err == nil {
		t.Fatal("truncated length accepted")
	}
	huge := make([]byte, 8)
	huge[0] = 0xff
	if _, err := decodeBlobList(huge, 1); err == nil {
		t.Fatal("oversize length accepted")
	}
}

func TestHashCodec(t *testing.T) {
	hashes := []cas.Hash{cas.Sum([]byte("a")), cas.Sum([]byte("b"))}
	got, err := splitHashes(joinHashes(hashes))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hashes, got) {
		t.Fatalf("round trip = %v, want %v", got, hashes)
	}
	if _, err := splitHashes(make([]byte, 33)); err == nil {
		t.Fatal("ragged hash list accepted")
	}
	if _, err := splitHashes(make([]byte, 32*(maxBlobFetch+1))); err == nil {
		t.Fatal("oversized hash list accepted")
	}
}
