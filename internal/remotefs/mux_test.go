package remotefs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"hacfs/internal/hac"
	"hacfs/internal/vfs"
	"hacfs/internal/wire"
)

// hostServe exports vols on a loopback listener and returns its
// address.
func hostServe(t *testing.T, vols Volumes) string {
	t.Helper()
	srv := NewHostServer(vols, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(srv.Close)
	return l.Addr().String()
}

// serveMuxClient exports fsys and returns a connected binary client.
func serveMuxClient(t *testing.T, fsys vfs.FileSystem) *MuxClient {
	t.Helper()
	c := DialMux(hostServe(t, soloVolumes{fsys}))
	c.SetTimeout(5 * time.Second)
	t.Cleanup(func() { c.Close() })
	return c
}

func TestMuxBasicOps(t *testing.T) {
	backing := vfs.New()
	c := serveMuxClient(t, backing)

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile("/a/b/f.txt", []byte("framed")); err != nil {
		t.Fatal(err)
	}
	if data, err := c.ReadFile("/a/b/f.txt"); err != nil || string(data) != "framed" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if data, err := backing.ReadFile("/a/b/f.txt"); err != nil || string(data) != "framed" {
		t.Fatalf("backing = %q, %v", data, err)
	}
	if err := c.Symlink("/a/b/f.txt", "/ln"); err != nil {
		t.Fatal(err)
	}
	if target, err := c.Readlink("/ln"); err != nil || target != "/a/b/f.txt" {
		t.Fatalf("Readlink = %q, %v", target, err)
	}
	li, err := c.Lstat("/ln")
	if err != nil || li.Type != vfs.TypeSymlink {
		t.Fatalf("Lstat = %+v, %v", li, err)
	}
	if err := c.Rename("/a/b/f.txt", "/a/b/g.txt"); err != nil {
		t.Fatal(err)
	}
	entries, err := c.ReadDir("/a/b")
	if err != nil || len(entries) != 1 || entries[0].Name != "g.txt" {
		t.Fatalf("ReadDir = %v, %v", entries, err)
	}

	// Handle I/O across frames.
	f, err := c.Create("/a/b/h.bin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(2, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if n, err := f.Read(buf); err != nil || string(buf[:n]) != "2345" {
		t.Fatalf("Read = %q, %v", buf[:n], err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if info, err := f.Stat(); err != nil || info.Size != 4 {
		t.Fatalf("Stat = %+v, %v", info, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Sentinels survive the binary frames too.
	if _, err := c.ReadFile("/missing"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("missing file error = %v, want ErrNotExist", err)
	}
	var pe *vfs.PathError
	if err := c.Mkdir("/a/b"); !errors.As(err, &pe) || !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("mkdir existing = %v, want PathError{ErrExist}", err)
	}
}

// testVolumes is a two-tenant Volumes for routing tests.
type testVolumes struct {
	vols map[string]vfs.FileSystem

	mu      sync.Mutex
	admits  map[string]int
	pending int
}

func newTestVolumes(vols map[string]vfs.FileSystem) *testVolumes {
	return &testVolumes{vols: vols, admits: make(map[string]int)}
}

func (v *testVolumes) Volume(tenant string) (vfs.FileSystem, error) {
	fsys, ok := v.vols[tenant]
	if !ok {
		return nil, &vfs.PathError{Op: "volume", Path: "/" + tenant, Err: vfs.ErrNotExist}
	}
	return fsys, nil
}

func (v *testVolumes) Admit(tenant, op string) (func(), error) {
	v.mu.Lock()
	v.admits[tenant]++
	v.pending++
	v.mu.Unlock()
	return func() {
		v.mu.Lock()
		v.pending--
		v.mu.Unlock()
	}, nil
}

func TestMuxTenantRouting(t *testing.T) {
	alice, bob := vfs.New(), vfs.New()
	vols := newTestVolumes(map[string]vfs.FileSystem{"alice": alice, "bob": bob})
	addr := hostServe(t, vols)
	c := DialMux(addr)
	c.SetTimeout(5 * time.Second)
	defer c.Close()

	ca, cb := c.Tenant("alice"), c.Tenant("bob")
	if err := ca.WriteFile("/f", []byte("from alice")); err != nil {
		t.Fatal(err)
	}
	if err := cb.WriteFile("/f", []byte("from bob")); err != nil {
		t.Fatal(err)
	}
	if data, err := alice.ReadFile("/f"); err != nil || string(data) != "from alice" {
		t.Fatalf("alice volume = %q, %v", data, err)
	}
	if data, err := bob.ReadFile("/f"); err != nil || string(data) != "from bob" {
		t.Fatalf("bob volume = %q, %v", data, err)
	}
	// Tenant views share the one connection but stay isolated.
	if _, err := ca.ReadFile("/g"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("cross-tenant read = %v", err)
	}
	// Unknown tenants are rejected with the typed sentinel.
	if _, err := c.Tenant("mallory").ReadFile("/f"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("unknown tenant = %v, want ErrNotExist", err)
	}
	// Handle ops are charged to the opening tenant.
	f, err := ca.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	before := vols.admits["alice"]
	if _, err := io.ReadAll(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	vols.mu.Lock()
	after, pending := vols.admits["alice"], vols.pending
	vols.mu.Unlock()
	if after <= before {
		t.Fatalf("handle reads admitted %d ops for alice, want > 0", after-before)
	}
	if pending != 0 {
		t.Fatalf("leaked %d admission slots", pending)
	}
}

// TestGobTenantRouting checks the legacy protocol reaches tenant
// volumes too (SetTenant on the gob client).
func TestGobTenantRouting(t *testing.T) {
	alice := vfs.New()
	vols := newTestVolumes(map[string]vfs.FileSystem{"": vfs.New(), "alice": alice})
	addr := hostServe(t, vols)
	c := Dial(addr)
	c.SetTimeout(5 * time.Second)
	defer c.Close()
	c.SetTenant("alice")
	if err := c.WriteFile("/f", []byte("gob tenant")); err != nil {
		t.Fatal(err)
	}
	if data, err := alice.ReadFile("/f"); err != nil || string(data) != "gob tenant" {
		t.Fatalf("alice volume = %q, %v", data, err)
	}
}

// admitReject fails admission with a typed backpressure error.
type admitReject struct{ fsys vfs.FileSystem }

func (v admitReject) Volume(tenant string) (vfs.FileSystem, error) { return v.fsys, nil }

func (v admitReject) Admit(tenant, op string) (func(), error) {
	return nil, &vfs.PathError{Op: op, Path: "/" + tenant, Err: vfs.ErrBackpressure}
}

func TestAdmissionErrorsTravelTyped(t *testing.T) {
	c := DialMux(hostServe(t, admitReject{vfs.New()}))
	c.SetTimeout(5 * time.Second)
	defer c.Close()
	err := c.WriteFile("/f", []byte("x"))
	var pe *vfs.PathError
	if !errors.As(err, &pe) || !errors.Is(err, vfs.ErrBackpressure) {
		t.Fatalf("admission rejection = %v, want PathError{ErrBackpressure}", err)
	}
	// Ping stays unadmitted: health checks work under backpressure.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping under backpressure = %v", err)
	}
}

func newSearchableHAC(t *testing.T, n int) (*hac.FS, []string) {
	t.Helper()
	hfs := hac.New(vfs.New(), hac.Options{})
	if err := hfs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("/docs/note%03d.txt", i)
		if err := hfs.WriteFile(p, []byte("fingerprint survey")); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	if _, err := hfs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	return hfs, want
}

func TestMuxSearchStream(t *testing.T) {
	hfs, want := newSearchableHAC(t, 23)
	c := serveMuxClient(t, hfs)
	ctx := context.Background()

	var got []string
	pages := 0
	err := c.SearchStream(ctx, "fingerprint", "/docs", 5, func(paths []string) error {
		pages++
		got = append(got, paths...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if pages < 2 {
		t.Fatalf("stream arrived in %d page(s), want several", pages)
	}
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed search = %v, want %v", got, want)
	}

	// The one-page API still works over the mux.
	page, next, err := c.SearchPage(ctx, "fingerprint", "/docs", 0, 5)
	if err != nil || len(page) != 5 || next == 0 {
		t.Fatalf("SearchPage = %v, %d, %v", page, next, err)
	}
	// A consumer error cancels the stream.
	boom := errors.New("stop")
	if err := c.SearchStream(ctx, "fingerprint", "/docs", 5, func([]string) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("stream consumer error = %v, want %v", err, boom)
	}
	// Streaming on the legacy protocol is cleanly unsupported.
	lc := Dial(c.mux.Addr())
	lc.SetTimeout(5 * time.Second)
	defer lc.Close()
	if err := lc.do(&request{Op: opSearchStream, Path: "/docs", Path2: "fingerprint"}); !errors.Is(err, vfs.ErrUnsupported) {
		t.Fatalf("legacy stream = %v, want ErrUnsupported", err)
	}
}

func TestMuxSyncPath(t *testing.T) {
	hfs, _ := newSearchableHAC(t, 3)
	if err := hfs.MkSemDir("/fp", "fingerprint"); err != nil {
		t.Fatal(err)
	}
	c := serveMuxClient(t, hfs)
	if err := c.SyncPath("/fp"); err != nil {
		t.Fatal(err)
	}
	if entries, err := c.ReadDir("/fp"); err != nil || len(entries) != 3 {
		t.Fatalf("semantic dir after remote ssync = %v, %v", entries, err)
	}
	// ssync against a plain memfs is unsupported, with the sentinel.
	plain := serveMuxClient(t, vfs.New())
	if err := plain.SyncPath("/"); !errors.Is(err, vfs.ErrUnsupported) {
		t.Fatalf("ssync on memfs = %v, want ErrUnsupported", err)
	}
}

// TestMuxManyInFlight floods one connection with concurrent requests
// from many goroutines — the multiplexing the gob protocol lacks.
func TestMuxManyInFlight(t *testing.T) {
	backing := vfs.New()
	c := serveMuxClient(t, backing)
	if err := c.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	const workers = 64
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := fmt.Sprintf("/d/f%02d", i)
			body := []byte(fmt.Sprintf("body %02d", i))
			if err := c.WriteFile(p, body); err != nil {
				errs <- err
				return
			}
			for j := 0; j < 10; j++ {
				data, err := c.ReadFile(p)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(data, body) {
					errs <- fmt.Errorf("%s = %q, want %q", p, data, body)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if entries, err := c.ReadDir("/d"); err != nil || len(entries) != workers {
		t.Fatalf("ReadDir = %d entries, %v", len(entries), err)
	}
}

// TestMuxVersionRejected checks a future-version client receives the
// server hello plus a versioned error frame.
func TestMuxVersionRejected(t *testing.T) {
	addr := hostServe(t, soloVolumes{vfs.New()})
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := wire.WriteHello(conn, 99); err != nil {
		t.Fatal(err)
	}
	if ver, err := wire.ReadHello(conn); err != nil || ver != wire.Version {
		t.Fatalf("server hello = %d, %v", ver, err)
	}
	f, err := wire.ReadFrame(conn, maxFrameBuf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != rfErr || !bytes.Contains(f.Payload, []byte("unsupported protocol version")) {
		t.Fatalf("reply = type %d %q, want versioned error", f.Type, f.Payload)
	}
}

// FuzzDecodeFrame drives the framing plus both payload codecs with
// arbitrary bytes: no panics, no over-allocation past the declared
// bounds, truncated and hostile lengths must error.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 2, 'x', 'y'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add(func() []byte {
		var buf bytes.Buffer
		req := &request{Op: opWriteFile, Tenant: "alice", Path: "/a", Data: []byte("hello")}
		wire.WriteFrame(&buf, wire.Frame{Type: rfReq, ID: 7, Payload: appendRequest(nil, req)})
		return buf.Bytes()
	}())
	f.Add(func() []byte {
		var buf bytes.Buffer
		resp := &response{
			Err:     &wireError{Op: "open", Path: "/x", Kind: "NotExist", Msg: "no"},
			Entries: []vfs.DirEntry{{Name: "a", Type: vfs.TypeFile, Ino: 3}},
			Strs:    []string{"/p", "/q"},
		}
		wire.WriteFrame(&buf, wire.Frame{Type: rfResp, Flags: wire.FlagFinal, ID: 9, Payload: appendResponse(nil, resp)})
		return buf.Bytes()
	}())
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := wire.ReadFrame(bytes.NewReader(data), maxFrameBuf)
		if err != nil {
			return // malformed framing must error, never panic
		}
		if len(fr.Payload) > maxFrameBuf {
			t.Fatalf("frame payload %d exceeds bound %d", len(fr.Payload), maxFrameBuf)
		}
		var req request
		if err := decodeRequest(fr.Payload, &req); err == nil {
			if len(req.Tenant) > maxNameLen || len(req.Path) > maxPathLen || len(req.Path2) > maxPathLen {
				t.Fatalf("request field exceeds bound: %d/%d/%d", len(req.Tenant), len(req.Path), len(req.Path2))
			}
			if len(req.Data) > maxIO {
				t.Fatalf("request data %d exceeds bound %d", len(req.Data), maxIO)
			}
		}
		var resp response
		if err := decodeResponse(fr.Payload, &resp); err == nil {
			if len(resp.Data) > maxIO || len(resp.Entries) > maxEntries || len(resp.Strs) > maxEntries {
				t.Fatalf("response field exceeds bound: %d/%d/%d", len(resp.Data), len(resp.Entries), len(resp.Strs))
			}
		}
	})
}
