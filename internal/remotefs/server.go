package remotefs

import (
	"encoding/gob"
	"io"
	"log"
	"net"
	"sync"

	"hacfs/internal/vfs"
)

// Server exports one file system to any number of clients. Each client
// connection is served by its own goroutine with its own open-handle
// table; the wrapped file system provides whatever concurrency safety
// it has (MemFS and hac.FS are both safe).
type Server struct {
	fsys   vfs.FileSystem
	logger *log.Logger

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server exporting fsys. logger may be nil.
func NewServer(fsys vfs.FileSystem, logger *log.Logger) *Server {
	return &Server{fsys: fsys, logger: logger, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections until Close.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Close stops the server and all connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// Searcher is the optional content-search surface a served file system
// may provide; hac.FS implements it. The cursor contract is
// hac.FS.SearchPage's: after 0 starts, the returned next cursor resumes,
// 0 means no more pages.
type Searcher interface {
	SearchPage(query, scope string, after uint64, limit int) ([]string, uint64, error)
}

// session is one client connection's state.
type session struct {
	fsys       vfs.FileSystem
	handles    map[uint64]vfs.File
	nextHandle uint64
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	sess := &session{fsys: s.fsys, handles: make(map[uint64]vfs.File)}
	defer sess.closeAll()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			if err != io.EOF {
				s.logf("remotefs: decode: %v", err)
			}
			return
		}
		resp := sess.handle(&req)
		if err := enc.Encode(resp); err != nil {
			s.logf("remotefs: encode: %v", err)
			return
		}
	}
}

func (sess *session) closeAll() {
	for _, f := range sess.handles {
		f.Close()
	}
}

// maxIO bounds one read/write payload.
const maxIO = 16 << 20

func (sess *session) handle(req *request) *response {
	switch req.Op {
	case opPing:
		return &response{}
	case opMkdir:
		return &response{Err: encodeErr(sess.fsys.Mkdir(req.Path))}
	case opMkdirAll:
		return &response{Err: encodeErr(sess.fsys.MkdirAll(req.Path))}
	case opOpenFile:
		f, err := sess.fsys.OpenFile(req.Path, req.Flag)
		if err != nil {
			return &response{Err: encodeErr(err)}
		}
		sess.nextHandle++
		sess.handles[sess.nextHandle] = f
		return &response{Handle: sess.nextHandle}
	case opReadFile:
		data, err := sess.fsys.ReadFile(req.Path)
		return &response{Data: data, Err: encodeErr(err)}
	case opWriteFile:
		return &response{Err: encodeErr(sess.fsys.WriteFile(req.Path, req.Data))}
	case opSymlink:
		return &response{Err: encodeErr(sess.fsys.Symlink(req.Path2, req.Path))}
	case opReadlink:
		str, err := sess.fsys.Readlink(req.Path)
		return &response{Str: str, Err: encodeErr(err)}
	case opRemove:
		return &response{Err: encodeErr(sess.fsys.Remove(req.Path))}
	case opRemoveAll:
		return &response{Err: encodeErr(sess.fsys.RemoveAll(req.Path))}
	case opRename:
		return &response{Err: encodeErr(sess.fsys.Rename(req.Path, req.Path2))}
	case opStat:
		info, err := sess.fsys.Stat(req.Path)
		return &response{Info: info, Err: encodeErr(err)}
	case opLstat:
		info, err := sess.fsys.Lstat(req.Path)
		return &response{Info: info, Err: encodeErr(err)}
	case opReadDir:
		entries, err := sess.fsys.ReadDir(req.Path)
		return &response{Entries: entries, Err: encodeErr(err)}
	case opSearch:
		sr, ok := sess.fsys.(Searcher)
		if !ok {
			return &response{Err: &wireError{Kind: "Unsupported", Msg: "remotefs: file system is not searchable"}}
		}
		if req.Offset < 0 {
			return &response{Err: &wireError{Kind: "Invalid", Msg: "remotefs: negative search cursor"}}
		}
		paths, next, err := sr.SearchPage(req.Path2, req.Path, uint64(req.Offset), req.N)
		if err != nil {
			return &response{Err: encodeErr(err)}
		}
		if next > (1<<63 - 1) {
			return &response{Err: &wireError{Kind: "Invalid", Msg: "remotefs: search cursor overflow"}}
		}
		return &response{Strs: paths, Off: int64(next)}
	}

	// Handle-based operations.
	f, ok := sess.handles[req.Handle]
	if !ok {
		return &response{Err: &wireError{Kind: "Closed", Msg: "remotefs: unknown handle"}}
	}
	switch req.Op {
	case opFileRead:
		n := req.N
		if n <= 0 || n > maxIO {
			n = 64 << 10
		}
		buf := make([]byte, n)
		rn, err := f.Read(buf)
		resp := &response{Data: buf[:rn], N: rn}
		if err == io.EOF {
			resp.EOF = true
		} else if err != nil {
			resp.Err = encodeErr(err)
		}
		return resp
	case opFileReadAt:
		n := req.N
		if n <= 0 || n > maxIO {
			n = 64 << 10
		}
		buf := make([]byte, n)
		rn, err := f.ReadAt(buf, req.Offset)
		resp := &response{Data: buf[:rn], N: rn}
		if err == io.EOF {
			resp.EOF = true
		} else if err != nil {
			resp.Err = encodeErr(err)
		}
		return resp
	case opFileWrite:
		n, err := f.Write(req.Data)
		return &response{N: n, Err: encodeErr(err)}
	case opFileWriteAt:
		n, err := f.WriteAt(req.Data, req.Offset)
		return &response{N: n, Err: encodeErr(err)}
	case opFileSeek:
		off, err := f.Seek(req.Offset, req.Whence)
		return &response{Off: off, Err: encodeErr(err)}
	case opFileTruncate:
		return &response{Err: encodeErr(f.Truncate(req.Size))}
	case opFileStat:
		info, err := f.Stat()
		return &response{Info: info, Err: encodeErr(err)}
	case opFileClose:
		delete(sess.handles, req.Handle)
		return &response{Err: encodeErr(f.Close())}
	default:
		return &response{Err: &wireError{Kind: "Unsupported", Msg: "remotefs: unknown op"}}
	}
}
