package remotefs

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"hacfs/internal/vfs"
	"hacfs/internal/wire"
)

// Volumes resolves tenant names to exported file systems and admits
// requests — the seam between the protocol layer and the multi-tenant
// serving layer (internal/serve implements it with quotas, admission
// control and fair scheduling). A single-volume server wraps its one
// file system in soloVolumes.
type Volumes interface {
	// Volume returns the file system serving the named tenant ("" is
	// the default volume).
	Volume(tenant string) (vfs.FileSystem, error)
	// Admit asks to run one operation for the tenant. It may block
	// until a fair-scheduling slot is free; the returned release must
	// be called when the operation finishes. A backpressure or
	// shutdown rejection comes back as a *vfs.PathError so it travels
	// the wire typed.
	Admit(tenant, op string) (release func(), err error)
}

// soloVolumes exports one file system as the default tenant, with no
// admission control — the pre-multi-tenant behavior.
type soloVolumes struct{ fsys vfs.FileSystem }

func (s soloVolumes) Volume(tenant string) (vfs.FileSystem, error) {
	if tenant != "" {
		return nil, &vfs.PathError{Op: "volume", Path: "/" + tenant, Err: vfs.ErrNotExist}
	}
	return s.fsys, nil
}

func (s soloVolumes) Admit(tenant, op string) (func(), error) { return func() {}, nil }

// Server exports file systems to any number of clients, speaking both
// the legacy one-request-at-a-time gob protocol and the multiplexed
// binary framing; the first bytes of each connection select the
// protocol, so old clients keep working unchanged.
type Server struct {
	vols   Volumes
	logger *log.Logger

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server exporting fsys as its only volume. logger
// may be nil.
func NewServer(fsys vfs.FileSystem, logger *log.Logger) *Server {
	return NewHostServer(soloVolumes{fsys}, logger)
}

// NewHostServer returns a server routing requests through vols — the
// multi-tenant form (see internal/serve.Host).
func NewHostServer(vols Volumes, logger *log.Logger) *Server {
	return &Server{vols: vols, logger: logger, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections until Close.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// CloseListener stops accepting new connections but leaves the live
// ones serving — the first step of a graceful shutdown (drain the
// volumes, checkpoint, then Close).
func (s *Server) CloseListener() {
	s.mu.Lock()
	if s.listener != nil {
		s.listener.Close()
	}
	s.mu.Unlock()
}

// Close stops the server and all connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// Searcher is the optional content-search surface a served file system
// may provide; hac.FS implements it. The cursor contract is
// hac.FS.SearchPage's: after 0 starts, the returned next cursor resumes,
// 0 means no more pages.
type Searcher interface {
	SearchPage(query, scope string, after uint64, limit int) ([]string, uint64, error)
}

// PathSyncer is the optional scope-consistency surface; hac.FS
// implements it (the paper's ssync command, served over the wire).
type PathSyncer interface {
	SyncPath(path string) error
}

// handleState is one open file handle plus the lock that serializes
// multiplexed operations on it (vfs.File is not concurrency-safe).
type handleState struct {
	mu     sync.Mutex
	f      vfs.File
	tenant string
}

// session is one client connection's state, shared by both protocol
// decoders. The handle table is locked because binary-framing requests
// execute concurrently.
type session struct {
	vols Volumes

	mu         sync.Mutex
	handles    map[uint64]*handleState
	nextHandle uint64
}

func newSession(vols Volumes) *session {
	return &session{vols: vols, handles: make(map[uint64]*handleState)}
}

func (sess *session) closeAll() {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	for _, h := range sess.handles {
		h.f.Close()
	}
	sess.handles = map[uint64]*handleState{}
}

func (sess *session) addHandle(f vfs.File, tenant string) uint64 {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.nextHandle++
	sess.handles[sess.nextHandle] = &handleState{f: f, tenant: tenant}
	return sess.nextHandle
}

func (sess *session) handle(id uint64) (*handleState, bool) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	h, ok := sess.handles[id]
	return h, ok
}

func (sess *session) dropHandle(id uint64) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	delete(sess.handles, id)
}

// serveConn sniffs the protocol and dispatches. Binary connections
// open with the wire magic; everything else is the legacy gob stream.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	if prefix, err := r.Peek(len(wire.Magic)); err == nil && wire.IsMagic(prefix) {
		s.serveMux(conn, r)
		return
	}
	s.serveGob(conn, r)
}

// serveGob answers the legacy one-request-at-a-time protocol.
func (s *Server) serveGob(conn net.Conn, r *bufio.Reader) {
	sess := newSession(s.vols)
	defer sess.closeAll()
	dec := gob.NewDecoder(r)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			if err != io.EOF {
				s.logf("remotefs: decode: %v", err)
			}
			return
		}
		resp := sess.dispatch(&req)
		if err := enc.Encode(resp); err != nil {
			s.logf("remotefs: encode: %v", err)
			return
		}
	}
}

// Binary frame types.
const (
	rfReq  uint8 = 1 // client → server, payload = encoded request
	rfResp uint8 = 2 // server → client, payload = encoded response
	rfErr  uint8 = 3 // protocol-level error, payload = message
)

// maxConnInflight bounds concurrently executing requests per
// connection, protecting the server from one hostile client.
const maxConnInflight = 256

// muxWriter serializes response frames. Frames accumulate in a
// buffered writer and only the last sender in a pack flushes, so one
// syscall carries a whole batch of responses under load while an idle
// connection still sees every frame immediately.
type muxWriter struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	writers atomic.Int64
}

func newMuxWriter(conn net.Conn) *muxWriter {
	return &muxWriter{bw: bufio.NewWriterSize(conn, 64<<10)}
}

func (w *muxWriter) send(f wire.Frame) error {
	w.writers.Add(1)
	w.mu.Lock()
	defer w.mu.Unlock()
	err := wire.WriteFrame(w.bw, f)
	if w.writers.Add(-1) == 0 && err == nil {
		err = w.bw.Flush()
	}
	return err
}

func (w *muxWriter) sendResp(id uint64, flags uint8, resp *response) error {
	return w.send(wire.Frame{Type: rfResp, Flags: flags, ID: id, Payload: appendResponse(nil, resp)})
}

// serveMux answers the multiplexed binary framing: every request frame
// runs on its own goroutine (bounded), responses interleave by ID, and
// streamed searches emit one frame per page.
func (s *Server) serveMux(conn net.Conn, r *bufio.Reader) {
	ver, err := wire.ReadHello(r)
	if err != nil {
		return
	}
	// Always answer with the server's own hello: a client speaking a
	// different framing version reads it and reports a clean versioned
	// error instead of misparsing a frame.
	if err := wire.WriteHello(conn, wire.Version); err != nil {
		return
	}
	w := newMuxWriter(conn)
	if ver != wire.Version {
		w.send(wire.Frame{Type: rfErr, Flags: wire.FlagFinal,
			Payload: []byte(fmt.Sprintf("unsupported protocol version %d (server speaks %d)", ver, wire.Version))})
		return
	}
	sess := newSession(s.vols)
	defer sess.closeAll()
	sem := make(chan struct{}, maxConnInflight)
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		f, err := wire.ReadFrame(r, maxFrameBuf)
		if err != nil {
			return
		}
		if f.Type != rfReq {
			w.send(wire.Frame{Type: rfErr, Flags: wire.FlagFinal, ID: f.ID,
				Payload: []byte(fmt.Sprintf("unexpected frame type %d", f.Type))})
			continue
		}
		sem <- struct{}{}
		reqWG.Add(1)
		go func(f wire.Frame) {
			defer reqWG.Done()
			defer func() { <-sem }()
			var req request
			if err := decodeRequest(f.Payload, &req); err != nil {
				w.send(wire.Frame{Type: rfErr, Flags: wire.FlagFinal, ID: f.ID, Payload: []byte(err.Error())})
				return
			}
			if req.Op == opSearchStream {
				sess.streamSearch(w, f.ID, &req)
				return
			}
			resp := sess.dispatch(&req)
			if err := w.sendResp(f.ID, wire.FlagFinal, resp); err != nil {
				s.logf("remotefs: send: %v", err)
			}
		}(f)
	}
}

// streamSearch walks the whole cursor server-side, emitting one
// response frame per page; the last page carries FlagFinal. Page size
// comes from req.N, an optional page budget from req.Size.
func (sess *session) streamSearch(w *muxWriter, id uint64, req *request) {
	fail := func(we *wireError) { w.sendResp(id, wire.FlagFinal, &response{Err: we}) }
	fsys, release, we := sess.admit(req)
	if we != nil {
		fail(we)
		return
	}
	defer release()
	sr, ok := fsys.(Searcher)
	if !ok {
		fail(&wireError{Kind: "Unsupported", Msg: "remotefs: file system is not searchable"})
		return
	}
	if req.Offset < 0 {
		fail(&wireError{Kind: "Invalid", Msg: "remotefs: negative search cursor"})
		return
	}
	pageSize := req.N
	if pageSize <= 0 {
		pageSize = 512
	}
	cursor := uint64(req.Offset)
	for page := 0; ; page++ {
		paths, next, err := sr.SearchPage(req.Path2, req.Path, cursor, pageSize)
		if err != nil {
			fail(encodeErr(err))
			return
		}
		if next > (1<<63 - 1) {
			fail(&wireError{Kind: "Invalid", Msg: "remotefs: search cursor overflow"})
			return
		}
		final := next == 0 || (req.Size > 0 && int64(page+1) >= req.Size)
		var flags uint8
		if final {
			flags = wire.FlagFinal
		}
		if err := w.sendResp(id, flags, &response{Strs: paths, Off: int64(next)}); err != nil {
			return
		}
		if final {
			return
		}
		cursor = next
	}
}

// admit resolves the request's tenant volume and passes admission
// control. Handle-bound operations charge the tenant the handle was
// opened for.
func (sess *session) admit(req *request) (vfs.FileSystem, func(), *wireError) {
	tenant := req.Tenant
	if req.Op >= opFileRead && req.Op <= opFileClose {
		if h, ok := sess.handle(req.Handle); ok {
			tenant = h.tenant
		}
	}
	fsys, err := sess.vols.Volume(tenant)
	if err != nil {
		return nil, nil, encodeErr(err)
	}
	release, err := sess.vols.Admit(tenant, opNames[req.Op])
	if err != nil {
		return nil, nil, encodeErr(err)
	}
	return fsys, release, nil
}

// dispatch admits and executes one request.
func (sess *session) dispatch(req *request) *response {
	if req.Op == opPing {
		return &response{}
	}
	fsys, release, we := sess.admit(req)
	if we != nil {
		return &response{Err: we}
	}
	defer release()
	return sess.exec(fsys, req)
}

// exec performs one operation against the resolved volume.
func (sess *session) exec(fsys vfs.FileSystem, req *request) *response {
	switch req.Op {
	case opMkdir:
		return &response{Err: encodeErr(fsys.Mkdir(req.Path))}
	case opMkdirAll:
		return &response{Err: encodeErr(fsys.MkdirAll(req.Path))}
	case opOpenFile:
		f, err := fsys.OpenFile(req.Path, req.Flag)
		if err != nil {
			return &response{Err: encodeErr(err)}
		}
		return &response{Handle: sess.addHandle(f, req.Tenant)}
	case opReadFile:
		data, err := fsys.ReadFile(req.Path)
		return &response{Data: data, Err: encodeErr(err)}
	case opWriteFile:
		return &response{Err: encodeErr(fsys.WriteFile(req.Path, req.Data))}
	case opSymlink:
		return &response{Err: encodeErr(fsys.Symlink(req.Path2, req.Path))}
	case opReadlink:
		str, err := fsys.Readlink(req.Path)
		return &response{Str: str, Err: encodeErr(err)}
	case opRemove:
		return &response{Err: encodeErr(fsys.Remove(req.Path))}
	case opRemoveAll:
		return &response{Err: encodeErr(fsys.RemoveAll(req.Path))}
	case opRename:
		return &response{Err: encodeErr(fsys.Rename(req.Path, req.Path2))}
	case opStat:
		info, err := fsys.Stat(req.Path)
		return &response{Info: info, Err: encodeErr(err)}
	case opLstat:
		info, err := fsys.Lstat(req.Path)
		return &response{Info: info, Err: encodeErr(err)}
	case opReadDir:
		entries, err := fsys.ReadDir(req.Path)
		return &response{Entries: entries, Err: encodeErr(err)}
	case opSearchStream:
		// Streaming needs the framing's multi-frame responses; the
		// legacy protocol pages with opSearch instead.
		return &response{Err: &wireError{Kind: "Unsupported", Msg: "remotefs: streamed search requires the binary protocol"}}
	case opSync:
		ps, ok := fsys.(PathSyncer)
		if !ok {
			return &response{Err: &wireError{Kind: "Unsupported", Msg: "remotefs: file system has no semantic layer"}}
		}
		return &response{Err: encodeErr(ps.SyncPath(req.Path))}
	case opSearch:
		sr, ok := fsys.(Searcher)
		if !ok {
			return &response{Err: &wireError{Kind: "Unsupported", Msg: "remotefs: file system is not searchable"}}
		}
		if req.Offset < 0 {
			return &response{Err: &wireError{Kind: "Invalid", Msg: "remotefs: negative search cursor"}}
		}
		paths, next, err := sr.SearchPage(req.Path2, req.Path, uint64(req.Offset), req.N)
		if err != nil {
			return &response{Err: encodeErr(err)}
		}
		if next > (1<<63 - 1) {
			return &response{Err: &wireError{Kind: "Invalid", Msg: "remotefs: search cursor overflow"}}
		}
		return &response{Strs: paths, Off: int64(next)}
	}

	// Handle-based operations.
	h, ok := sess.handle(req.Handle)
	if !ok {
		return &response{Err: &wireError{Kind: "Closed", Msg: "remotefs: unknown handle"}}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	f := h.f
	switch req.Op {
	case opFileRead:
		n := req.N
		if n <= 0 || n > maxIO {
			n = 64 << 10
		}
		buf := make([]byte, n)
		rn, err := f.Read(buf)
		resp := &response{Data: buf[:rn], N: rn}
		if err == io.EOF {
			resp.EOF = true
		} else if err != nil {
			resp.Err = encodeErr(err)
		}
		return resp
	case opFileReadAt:
		n := req.N
		if n <= 0 || n > maxIO {
			n = 64 << 10
		}
		buf := make([]byte, n)
		rn, err := f.ReadAt(buf, req.Offset)
		resp := &response{Data: buf[:rn], N: rn}
		if err == io.EOF {
			resp.EOF = true
		} else if err != nil {
			resp.Err = encodeErr(err)
		}
		return resp
	case opFileWrite:
		n, err := f.Write(req.Data)
		return &response{N: n, Err: encodeErr(err)}
	case opFileWriteAt:
		n, err := f.WriteAt(req.Data, req.Offset)
		return &response{N: n, Err: encodeErr(err)}
	case opFileSeek:
		off, err := f.Seek(req.Offset, req.Whence)
		return &response{Off: off, Err: encodeErr(err)}
	case opFileTruncate:
		return &response{Err: encodeErr(f.Truncate(req.Size))}
	case opFileStat:
		info, err := f.Stat()
		return &response{Info: info, Err: encodeErr(err)}
	case opFileClose:
		sess.dropHandle(req.Handle)
		return &response{Err: encodeErr(f.Close())}
	default:
		return &response{Err: &wireError{Kind: "Unsupported", Msg: "remotefs: unknown op"}}
	}
}
