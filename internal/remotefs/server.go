package remotefs

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hacfs/internal/obs"
	"hacfs/internal/vfs"
	"hacfs/internal/vfs/cas"
	"hacfs/internal/wire"
)

// Volumes resolves tenant names to exported file systems and admits
// requests — the seam between the protocol layer and the multi-tenant
// serving layer (internal/serve implements it with quotas, admission
// control and fair scheduling). A single-volume server wraps its one
// file system in soloVolumes.
type Volumes interface {
	// Volume returns the file system serving the named tenant ("" is
	// the default volume).
	Volume(tenant string) (vfs.FileSystem, error)
	// Admit asks to run one operation for the tenant. It may block
	// until a fair-scheduling slot is free; the returned release must
	// be called when the operation finishes. A backpressure or
	// shutdown rejection comes back as a *vfs.PathError so it travels
	// the wire typed.
	Admit(tenant, op string) (release func(), err error)
}

// soloVolumes exports one file system as the default tenant, with no
// admission control — the pre-multi-tenant behavior.
type soloVolumes struct{ fsys vfs.FileSystem }

func (s soloVolumes) Volume(tenant string) (vfs.FileSystem, error) {
	if tenant != "" {
		return nil, &vfs.PathError{Op: "volume", Path: "/" + tenant, Err: vfs.ErrNotExist}
	}
	return s.fsys, nil
}

func (s soloVolumes) Admit(tenant, op string) (func(), error) { return func() {}, nil }

// Server exports file systems to any number of clients, speaking both
// the legacy one-request-at-a-time gob protocol and the multiplexed
// binary framing; the first bytes of each connection select the
// protocol, so old clients keep working unchanged.
type Server struct {
	vols   Volumes
	logger *log.Logger
	obsv   *obs.Observer

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server exporting fsys as its only volume. logger
// may be nil.
func NewServer(fsys vfs.FileSystem, logger *log.Logger) *Server {
	return NewHostServer(soloVolumes{fsys}, logger)
}

// NewHostServer returns a server routing requests through vols — the
// multi-tenant form (see internal/serve.Host).
func NewHostServer(vols Volumes, logger *log.Logger) *Server {
	return &Server{vols: vols, logger: logger, obsv: obs.Default(), conns: make(map[net.Conn]struct{})}
}

// SetObserver redirects the server's spans and slow-op log to o (they
// default to the process-wide obs.Default()). Call before Serve.
func (s *Server) SetObserver(o *obs.Observer) { s.obsv = o }

// Serve accepts connections until Close.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// CloseListener stops accepting new connections but leaves the live
// ones serving — the first step of a graceful shutdown (drain the
// volumes, checkpoint, then Close).
func (s *Server) CloseListener() {
	s.mu.Lock()
	if s.listener != nil {
		s.listener.Close()
	}
	s.mu.Unlock()
}

// Close stops the server and all connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// Searcher is the optional content-search surface a served file system
// may provide; hac.FS implements it. The cursor contract is
// hac.FS.SearchPage's: after 0 starts, the returned next cursor resumes,
// 0 means no more pages.
type Searcher interface {
	SearchPage(query, scope string, after uint64, limit int) ([]string, uint64, error)
}

// ContextSearcher is Searcher with the request context threaded
// through, so a propagated trace (and tenant baggage) reaches the
// engine's spans; hac.FS implements it. The server prefers it when
// present.
type ContextSearcher interface {
	SearchPageContext(ctx context.Context, query, scope string, after uint64, limit int) ([]string, uint64, error)
}

// BlobSource is the optional content-addressed surface a served volume
// may provide (hac.FS over a cas substrate implements it, and serving
// wrappers forward it). It powers manifest-diff replication: a replica
// fetches the manifest, diffs blob hashes against its own store, and
// fetches only what it is missing.
type BlobSource interface {
	// CASManifest returns the live manifest of the volume's
	// content-addressed substrate.
	CASManifest() (*cas.Manifest, error)
	// CASBlobs returns the content of each requested blob, in request
	// order. A missing blob is an error wrapping vfs.ErrNotExist.
	CASBlobs(hashes []cas.Hash) ([][]byte, error)
}

// PathSyncer is the optional scope-consistency surface; hac.FS
// implements it (the paper's ssync command, served over the wire).
type PathSyncer interface {
	SyncPath(path string) error
}

// ContextSyncer is PathSyncer with the request context threaded
// through (see ContextSearcher); hac.FS implements it.
type ContextSyncer interface {
	SyncPathContext(ctx context.Context, path string) error
}

// handleState is one open file handle plus the lock that serializes
// multiplexed operations on it (vfs.File is not concurrency-safe).
type handleState struct {
	mu     sync.Mutex
	f      vfs.File
	tenant string
}

// session is one client connection's state, shared by both protocol
// decoders. The handle table is locked because binary-framing requests
// execute concurrently.
type session struct {
	vols Volumes
	obsv *obs.Observer

	mu         sync.Mutex
	handles    map[uint64]*handleState
	nextHandle uint64
}

func newSession(vols Volumes, obsv *obs.Observer) *session {
	return &session{vols: vols, obsv: obsv, handles: make(map[uint64]*handleState)}
}

func (sess *session) closeAll() {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	for _, h := range sess.handles {
		h.f.Close()
	}
	sess.handles = map[uint64]*handleState{}
}

func (sess *session) addHandle(f vfs.File, tenant string) uint64 {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.nextHandle++
	sess.handles[sess.nextHandle] = &handleState{f: f, tenant: tenant}
	return sess.nextHandle
}

func (sess *session) handle(id uint64) (*handleState, bool) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	h, ok := sess.handles[id]
	return h, ok
}

func (sess *session) dropHandle(id uint64) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	delete(sess.handles, id)
}

// serveConn sniffs the protocol and dispatches. Binary connections
// open with the wire magic; everything else is the legacy gob stream.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	if prefix, err := r.Peek(len(wire.Magic)); err == nil && wire.IsMagic(prefix) {
		s.serveMux(conn, r)
		return
	}
	s.serveGob(conn, r)
}

// serveGob answers the legacy one-request-at-a-time protocol.
func (s *Server) serveGob(conn net.Conn, r *bufio.Reader) {
	sess := newSession(s.vols, s.obsv)
	defer sess.closeAll()
	dec := gob.NewDecoder(r)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			if err != io.EOF {
				s.logf("remotefs: decode: %v", err)
			}
			return
		}
		var parent obs.SpanContext
		if req.TraceHi != 0 || req.TraceLo != 0 {
			parent = obs.SpanContext{
				Trace: obs.TraceIDFromWords(req.TraceHi, req.TraceLo),
				Span:  obs.SpanID(req.TraceSpan),
			}
		}
		resp := sess.dispatch(context.Background(), &req, parent)
		if err := enc.Encode(resp); err != nil {
			s.logf("remotefs: encode: %v", err)
			return
		}
	}
}

// Binary frame types.
const (
	rfReq  uint8 = 1 // client → server, payload = encoded request
	rfResp uint8 = 2 // server → client, payload = encoded response
	rfErr  uint8 = 3 // protocol-level error, payload = message
)

// maxConnInflight bounds concurrently executing requests per
// connection, protecting the server from one hostile client.
const maxConnInflight = 256

// muxWriter serializes response frames. Frames accumulate in a
// buffered writer and only the last sender in a pack flushes, so one
// syscall carries a whole batch of responses under load while an idle
// connection still sees every frame immediately.
type muxWriter struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	writers atomic.Int64
}

func newMuxWriter(conn net.Conn) *muxWriter {
	return &muxWriter{bw: bufio.NewWriterSize(conn, 64<<10)}
}

func (w *muxWriter) send(f wire.Frame) error {
	w.writers.Add(1)
	w.mu.Lock()
	defer w.mu.Unlock()
	err := wire.WriteFrame(w.bw, f)
	if w.writers.Add(-1) == 0 && err == nil {
		err = w.bw.Flush()
	}
	return err
}

func (w *muxWriter) sendResp(id uint64, flags uint8, resp *response) error {
	return w.send(wire.Frame{Type: rfResp, Flags: flags, ID: id, Payload: appendResponse(nil, resp)})
}

// serveMux answers the multiplexed binary framing: every request frame
// runs on its own goroutine (bounded), responses interleave by ID, and
// streamed searches emit one frame per page.
func (s *Server) serveMux(conn net.Conn, r *bufio.Reader) {
	ver, err := wire.ReadHello(r)
	if err != nil {
		return
	}
	// Always answer with the server's own hello: a client speaking a
	// different framing version reads it and reports a clean versioned
	// error instead of misparsing a frame.
	if err := wire.WriteHello(conn, wire.Version); err != nil {
		return
	}
	w := newMuxWriter(conn)
	if ver != wire.Version {
		w.send(wire.Frame{Type: rfErr, Flags: wire.FlagFinal,
			Payload: []byte(fmt.Sprintf("unsupported protocol version %d (server speaks %d)", ver, wire.Version))})
		return
	}
	sess := newSession(s.vols, s.obsv)
	defer sess.closeAll()
	sem := make(chan struct{}, maxConnInflight)
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		f, err := wire.ReadFrame(r, maxFrameBuf)
		if err != nil {
			return
		}
		if f.Type != rfReq {
			w.send(wire.Frame{Type: rfErr, Flags: wire.FlagFinal, ID: f.ID,
				Payload: []byte(fmt.Sprintf("unexpected frame type %d", f.Type))})
			continue
		}
		sem <- struct{}{}
		reqWG.Add(1)
		go func(f wire.Frame) {
			defer reqWG.Done()
			defer func() { <-sem }()
			var req request
			if err := decodeRequest(f.Payload, &req); err != nil {
				w.send(wire.Frame{Type: rfErr, Flags: wire.FlagFinal, ID: f.ID, Payload: []byte(err.Error())})
				return
			}
			parent := obs.SpanContext{Trace: f.Trace, Span: f.Span}
			if req.Op == opSearchStream {
				sess.streamSearch(context.Background(), w, f.ID, &req, parent)
				return
			}
			resp := sess.dispatch(context.Background(), &req, parent)
			if err := w.sendResp(f.ID, wire.FlagFinal, resp); err != nil {
				s.logf("remotefs: send: %v", err)
			}
		}(f)
	}
}

// streamSearch walks the whole cursor server-side, emitting one
// response frame per page; the last page carries FlagFinal. Page size
// comes from req.N, an optional page budget from req.Size.
func (sess *session) streamSearch(ctx context.Context, w *muxWriter, id uint64, req *request, parent obs.SpanContext) {
	fail := func(we *wireError) { w.sendResp(id, wire.FlagFinal, &response{Err: we}) }
	fsys, tenant, release, we := sess.admit(req)
	if we != nil {
		fail(we)
		return
	}
	defer release()
	ctx = obs.WithTenant(ctx, tenant)
	sp, ctx := sess.startOp(ctx, req, tenant, parent)
	start := time.Now()
	var opErr error
	defer func() { sess.finishOp(ctx, sp, req, start, opErr) }()
	search, ok := searchFunc(ctx, fsys)
	if !ok {
		fail(&wireError{Kind: "Unsupported", Msg: "remotefs: file system is not searchable"})
		return
	}
	if req.Offset < 0 {
		fail(&wireError{Kind: "Invalid", Msg: "remotefs: negative search cursor"})
		return
	}
	pageSize := req.N
	if pageSize <= 0 {
		pageSize = 512
	}
	cursor := uint64(req.Offset)
	for page := 0; ; page++ {
		paths, next, err := search(req.Path2, req.Path, cursor, pageSize)
		if err != nil {
			opErr = err
			fail(encodeErr(err))
			return
		}
		if next > (1<<63 - 1) {
			fail(&wireError{Kind: "Invalid", Msg: "remotefs: search cursor overflow"})
			return
		}
		final := next == 0 || (req.Size > 0 && int64(page+1) >= req.Size)
		var flags uint8
		if final {
			flags = wire.FlagFinal
		}
		if err := w.sendResp(id, flags, &response{Strs: paths, Off: int64(next)}); err != nil {
			return
		}
		if final {
			return
		}
		cursor = next
	}
}

// admit resolves the request's tenant volume and passes admission
// control. Handle-bound operations charge the tenant the handle was
// opened for.
func (sess *session) admit(req *request) (vfs.FileSystem, string, func(), *wireError) {
	tenant := req.Tenant
	if req.Op >= opFileRead && req.Op <= opFileClose {
		if h, ok := sess.handle(req.Handle); ok {
			tenant = h.tenant
		}
	}
	fsys, err := sess.vols.Volume(tenant)
	if err != nil {
		return nil, tenant, nil, encodeErr(err)
	}
	release, err := sess.vols.Admit(tenant, opNames[req.Op])
	if err != nil {
		return nil, tenant, nil, encodeErr(err)
	}
	return fsys, tenant, release, nil
}

// startOp opens the server-side span for one request, parented to the
// span context the client shipped on the wire (zero parent = the
// request arrived untraced). Cheap ops only get a span when the client
// propagated a trace (so an untraced fread storm costs nothing); the
// semantic ops worth tracing standalone — search, streamed search,
// sync — always do.
func (sess *session) startOp(ctx context.Context, req *request, tenant string, parent obs.SpanContext) (*obs.Span, context.Context) {
	if !parent.Valid() {
		switch req.Op {
		case opSearch, opSearchStream, opSync:
		default:
			return nil, ctx
		}
	}
	var sp *obs.Span
	if tenant != "" {
		sp = sess.obsv.Tracer().StartRemote(parent, rfsSpanNames[req.Op], "tenant", tenant)
	} else {
		sp = sess.obsv.Tracer().StartRemote(parent, rfsSpanNames[req.Op])
	}
	if sp == nil {
		// Tracing disabled here; still forward the inbound trace so an
		// engine with its own observer can join it.
		return nil, obs.ContextWith(ctx, parent)
	}
	return sp, obs.ContextWithSpan(ctx, sp)
}

// finishOp closes the request's span and records it in the slow-op log
// when over threshold.
func (sess *session) finishOp(ctx context.Context, sp *obs.Span, req *request, start time.Time, err error) {
	sp.FinishErr(err)
	dur := time.Since(start)
	if slow := sess.obsv.Slow(); slow.Over(dur) {
		op := obs.SlowOp{
			Op:     rfsSpanNames[req.Op],
			Tenant: obs.TenantFromContext(ctx),
			Dur:    dur,
		}
		if sc, ok := obs.FromContext(ctx); ok {
			op.Trace = sc.Trace
		}
		switch req.Op {
		case opSearch, opSearchStream:
			op.Arg = req.Path2
		default:
			op.Arg = req.Path
		}
		if err != nil {
			op.Err = err.Error()
		}
		slow.Record(op)
	}
}

// searchFunc resolves the volume's search surface, preferring the
// context-threading form so the trace reaches the engine.
func searchFunc(ctx context.Context, fsys vfs.FileSystem) (func(query, scope string, after uint64, limit int) ([]string, uint64, error), bool) {
	if cs, ok := fsys.(ContextSearcher); ok {
		return func(query, scope string, after uint64, limit int) ([]string, uint64, error) {
			return cs.SearchPageContext(ctx, query, scope, after, limit)
		}, true
	}
	if sr, ok := fsys.(Searcher); ok {
		return sr.SearchPage, true
	}
	return nil, false
}

// dispatch admits and executes one request.
func (sess *session) dispatch(ctx context.Context, req *request, parent obs.SpanContext) *response {
	if req.Op == opPing {
		return &response{}
	}
	fsys, tenant, release, we := sess.admit(req)
	if we != nil {
		return &response{Err: we}
	}
	defer release()
	ctx = obs.WithTenant(ctx, tenant)
	sp, ctx := sess.startOp(ctx, req, tenant, parent)
	start := time.Now()
	resp := sess.exec(ctx, fsys, req)
	var err error
	if resp.Err != nil {
		err = errors.New(resp.Err.Msg)
	}
	sess.finishOp(ctx, sp, req, start, err)
	return resp
}

// exec performs one operation against the resolved volume.
func (sess *session) exec(ctx context.Context, fsys vfs.FileSystem, req *request) *response {
	switch req.Op {
	case opMkdir:
		return &response{Err: encodeErr(fsys.Mkdir(req.Path))}
	case opMkdirAll:
		return &response{Err: encodeErr(fsys.MkdirAll(req.Path))}
	case opOpenFile:
		f, err := fsys.OpenFile(req.Path, req.Flag)
		if err != nil {
			return &response{Err: encodeErr(err)}
		}
		return &response{Handle: sess.addHandle(f, req.Tenant)}
	case opReadFile:
		data, err := fsys.ReadFile(req.Path)
		return &response{Data: data, Err: encodeErr(err)}
	case opWriteFile:
		return &response{Err: encodeErr(fsys.WriteFile(req.Path, req.Data))}
	case opSymlink:
		return &response{Err: encodeErr(fsys.Symlink(req.Path2, req.Path))}
	case opReadlink:
		str, err := fsys.Readlink(req.Path)
		return &response{Str: str, Err: encodeErr(err)}
	case opRemove:
		return &response{Err: encodeErr(fsys.Remove(req.Path))}
	case opRemoveAll:
		return &response{Err: encodeErr(fsys.RemoveAll(req.Path))}
	case opRename:
		return &response{Err: encodeErr(fsys.Rename(req.Path, req.Path2))}
	case opStat:
		info, err := fsys.Stat(req.Path)
		return &response{Info: info, Err: encodeErr(err)}
	case opLstat:
		info, err := fsys.Lstat(req.Path)
		return &response{Info: info, Err: encodeErr(err)}
	case opReadDir:
		entries, err := fsys.ReadDir(req.Path)
		return &response{Entries: entries, Err: encodeErr(err)}
	case opSearchStream:
		// Streaming needs the framing's multi-frame responses; the
		// legacy protocol pages with opSearch instead.
		return &response{Err: &wireError{Kind: "Unsupported", Msg: "remotefs: streamed search requires the binary protocol"}}
	case opManifest:
		bs, ok := fsys.(BlobSource)
		if !ok {
			return &response{Err: &wireError{Kind: "Unsupported", Msg: "remotefs: volume is not content-addressed"}}
		}
		m, err := bs.CASManifest()
		if err != nil {
			return &response{Err: encodeErr(err)}
		}
		return &response{Data: m.EncodeBinary()}
	case opBlobs:
		bs, ok := fsys.(BlobSource)
		if !ok {
			return &response{Err: &wireError{Kind: "Unsupported", Msg: "remotefs: volume is not content-addressed"}}
		}
		hashes, err := splitHashes(req.Data)
		if err != nil {
			return &response{Err: &wireError{Kind: "Invalid", Msg: err.Error()}}
		}
		blobs, err := bs.CASBlobs(hashes)
		if err != nil {
			return &response{Err: encodeErr(err)}
		}
		data, err := encodeBlobList(blobs)
		if err != nil {
			return &response{Err: &wireError{Kind: "Invalid", Msg: err.Error()}}
		}
		return &response{Data: data, N: len(blobs)}
	case opSync:
		if cs, ok := fsys.(ContextSyncer); ok {
			return &response{Err: encodeErr(cs.SyncPathContext(ctx, req.Path))}
		}
		ps, ok := fsys.(PathSyncer)
		if !ok {
			return &response{Err: &wireError{Kind: "Unsupported", Msg: "remotefs: file system has no semantic layer"}}
		}
		return &response{Err: encodeErr(ps.SyncPath(req.Path))}
	case opSearch:
		search, ok := searchFunc(ctx, fsys)
		if !ok {
			return &response{Err: &wireError{Kind: "Unsupported", Msg: "remotefs: file system is not searchable"}}
		}
		if req.Offset < 0 {
			return &response{Err: &wireError{Kind: "Invalid", Msg: "remotefs: negative search cursor"}}
		}
		paths, next, err := search(req.Path2, req.Path, uint64(req.Offset), req.N)
		if err != nil {
			return &response{Err: encodeErr(err)}
		}
		if next > (1<<63 - 1) {
			return &response{Err: &wireError{Kind: "Invalid", Msg: "remotefs: search cursor overflow"}}
		}
		return &response{Strs: paths, Off: int64(next)}
	}

	// Handle-based operations.
	h, ok := sess.handle(req.Handle)
	if !ok {
		return &response{Err: &wireError{Kind: "Closed", Msg: "remotefs: unknown handle"}}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	f := h.f
	switch req.Op {
	case opFileRead:
		n := req.N
		if n <= 0 || n > maxIO {
			n = 64 << 10
		}
		buf := make([]byte, n)
		rn, err := f.Read(buf)
		resp := &response{Data: buf[:rn], N: rn}
		if err == io.EOF {
			resp.EOF = true
		} else if err != nil {
			resp.Err = encodeErr(err)
		}
		return resp
	case opFileReadAt:
		n := req.N
		if n <= 0 || n > maxIO {
			n = 64 << 10
		}
		buf := make([]byte, n)
		rn, err := f.ReadAt(buf, req.Offset)
		resp := &response{Data: buf[:rn], N: rn}
		if err == io.EOF {
			resp.EOF = true
		} else if err != nil {
			resp.Err = encodeErr(err)
		}
		return resp
	case opFileWrite:
		n, err := f.Write(req.Data)
		return &response{N: n, Err: encodeErr(err)}
	case opFileWriteAt:
		n, err := f.WriteAt(req.Data, req.Offset)
		return &response{N: n, Err: encodeErr(err)}
	case opFileSeek:
		off, err := f.Seek(req.Offset, req.Whence)
		return &response{Off: off, Err: encodeErr(err)}
	case opFileTruncate:
		return &response{Err: encodeErr(f.Truncate(req.Size))}
	case opFileStat:
		info, err := f.Stat()
		return &response{Info: info, Err: encodeErr(err)}
	case opFileClose:
		sess.dropHandle(req.Handle)
		return &response{Err: encodeErr(f.Close())}
	default:
		return &response{Err: &wireError{Kind: "Unsupported", Msg: "remotefs: unknown op"}}
	}
}
