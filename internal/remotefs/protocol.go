// Package remotefs exports a whole file system over TCP — the
// machinery behind distributed syntactic mount points (§3 of the
// paper: "Connecting different file systems across a distributed
// system can be done with mount points... They allow different file
// systems to share certain directories").
//
// A Server wraps any vfs.FileSystem (a raw MemFS or a live HAC volume)
// and serves it; a Client implements vfs.FileSystem, so the remote
// volume can be mounted into a local tree with MemFS.Mount, browsed,
// written to, and even used as the substrate of a local HAC layer.
// This is how one user's personal classification becomes visible to
// coworkers (§3.2).
//
// The wire format is gob-encoded request/response pairs over one TCP
// connection per client; requests are answered in order.
package remotefs

import (
	"errors"

	"hacfs/internal/vfs"
)

// op codes.
type opCode uint8

const (
	opMkdir opCode = iota + 1
	opMkdirAll
	opOpenFile
	opReadFile
	opWriteFile
	opSymlink
	opReadlink
	opRemove
	opRemoveAll
	opRename
	opStat
	opLstat
	opReadDir
	// per-handle operations
	opFileRead
	opFileWrite
	opFileReadAt
	opFileWriteAt
	opFileSeek
	opFileTruncate
	opFileStat
	opFileClose
	opPing
	// opSearch asks the served file system for one cursor page of query
	// matches (Path = scope, Path2 = query, Offset = after-cursor,
	// N = page limit). Only file systems that implement Searcher — a HAC
	// volume — answer it; others reply Unsupported.
	opSearch
	// opSync restores scope consistency for the semantic directory at
	// Path (the paper's ssync, over the wire). Only file systems that
	// implement PathSyncer — a HAC volume — answer it.
	opSync
	// opSearchStream is opSearch in streaming form, binary framing only:
	// the server walks the cursor itself and returns every page as its
	// own response frame, the last one flagged final. N = page size,
	// Size = max pages (0 = all).
	opSearchStream
	// opManifest returns the served volume's content-addressed manifest
	// (encoded cas.Manifest in Data). Only volumes over a cas substrate
	// answer; others reply Unsupported — which is also how manifest-diff
	// sync negotiates: a legacy or non-CAS peer rejects the op and the
	// caller falls back to full-content sync.
	opManifest
	// opBlobs fetches blob contents by hash: request Data is concatenated
	// 32-byte SHA-256 hashes, response Data is, per requested hash in
	// order, a u64 big-endian length followed by the content.
	opBlobs
)

// request is one marshalled operation.
type request struct {
	Op     opCode
	Tenant string // addressed volume; "" = the server's default
	Path   string
	Path2  string // rename destination / symlink target
	Data   []byte
	Flag   int
	Handle uint64
	Offset int64
	Whence int
	Size   int64
	N      int // read length

	// Propagated trace context (DESIGN.md §13), legacy gob protocol
	// only — the binary framing ships it as the wire trace header
	// instead, so the strict binary codec is unchanged. Gob omits
	// zero-valued fields, so an untraced request from a new client is
	// byte-identical to a legacy client's, and old servers decoding a
	// traced request silently drop the unknown fields.
	TraceHi, TraceLo uint64 // 128-bit trace ID halves (0,0 = untraced)
	TraceSpan        uint64 // caller's span ID, the server span's parent
}

// response is one marshalled result.
type response struct {
	Err     *wireError
	Data    []byte
	Info    vfs.Info
	Entries []vfs.DirEntry
	Str     string
	Strs    []string // opSearch: one page of matching paths
	Handle  uint64
	N       int
	Off     int64 // seek result / opSearch next cursor
	EOF     bool
}

// wireError carries an error across the connection, preserving the vfs
// sentinel so errors.Is keeps working on the client side.
type wireError struct {
	Op   string
	Path string
	Kind string // sentinel name, or "" for plain errors
	Msg  string
}

// sentinel names ↔ errors.
var sentinelByName = map[string]error{
	"NotExist":      vfs.ErrNotExist,
	"Exist":         vfs.ErrExist,
	"NotDir":        vfs.ErrNotDir,
	"IsDir":         vfs.ErrIsDir,
	"NotEmpty":      vfs.ErrNotEmpty,
	"Invalid":       vfs.ErrInvalid,
	"Loop":          vfs.ErrLoop,
	"CrossMount":    vfs.ErrCrossMount,
	"Closed":        vfs.ErrClosed,
	"ReadOnly":      vfs.ErrReadOnly,
	"WriteOnly":     vfs.ErrWriteOnly,
	"Busy":          vfs.ErrBusy,
	"Unsupported":   vfs.ErrUnsupported,
	"QuotaExceeded": vfs.ErrQuotaExceeded,
	"Backpressure":  vfs.ErrBackpressure,
	"ShuttingDown":  vfs.ErrShuttingDown,
	"EOF":           errEOFSentinel,
}

// errEOFSentinel marks io.EOF on the wire (handled specially).
var errEOFSentinel = errors.New("EOF")

func sentinelName(err error) string {
	for name, sentinel := range sentinelByName {
		if errors.Is(err, sentinel) {
			return name
		}
	}
	return ""
}

// encodeErr converts an error for transmission.
func encodeErr(err error) *wireError {
	if err == nil {
		return nil
	}
	we := &wireError{Msg: err.Error(), Kind: sentinelName(err)}
	var pe *vfs.PathError
	if errors.As(err, &pe) {
		we.Op, we.Path = pe.Op, pe.Path
	}
	return we
}

// decodeErr reconstructs a client-side error.
func (we *wireError) decode() error {
	if we == nil {
		return nil
	}
	base := errors.New(we.Msg)
	if we.Kind != "" {
		if sentinel, ok := sentinelByName[we.Kind]; ok {
			base = sentinel
		}
	}
	if we.Op != "" {
		return &vfs.PathError{Op: we.Op, Path: we.Path, Err: base}
	}
	return base
}
