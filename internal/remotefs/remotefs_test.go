package remotefs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"hacfs/internal/andrew"
	"hacfs/internal/hac"
	"hacfs/internal/vfs"
)

// serve exports fsys on a loopback listener and returns a connected
// client.
func serve(t *testing.T, fsys vfs.FileSystem) *Client {
	t.Helper()
	srv := NewServer(fsys, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(srv.Close)
	c := Dial(l.Addr().String())
	c.SetTimeout(5 * time.Second)
	t.Cleanup(func() { c.Close() })
	return c
}

func TestBasicOpsOverWire(t *testing.T) {
	backing := vfs.New()
	c := serve(t, backing)

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile("/a/b/f.txt", []byte("over the wire")); err != nil {
		t.Fatal(err)
	}
	data, err := c.ReadFile("/a/b/f.txt")
	if err != nil || string(data) != "over the wire" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	// The write really landed on the backing FS.
	if data, err := backing.ReadFile("/a/b/f.txt"); err != nil || string(data) != "over the wire" {
		t.Fatalf("backing = %q, %v", data, err)
	}
	info, err := c.Stat("/a/b/f.txt")
	if err != nil || info.Size != 13 {
		t.Fatalf("Stat = %+v, %v", info, err)
	}
	if err := c.Symlink("/a/b/f.txt", "/ln"); err != nil {
		t.Fatal(err)
	}
	if target, err := c.Readlink("/ln"); err != nil || target != "/a/b/f.txt" {
		t.Fatalf("Readlink = %q, %v", target, err)
	}
	li, err := c.Lstat("/ln")
	if err != nil || li.Type != vfs.TypeSymlink {
		t.Fatalf("Lstat = %+v, %v", li, err)
	}
	if err := c.Rename("/a/b/f.txt", "/a/b/g.txt"); err != nil {
		t.Fatal(err)
	}
	entries, err := c.ReadDir("/a/b")
	if err != nil || len(entries) != 1 || entries[0].Name != "g.txt" {
		t.Fatalf("ReadDir = %v, %v", entries, err)
	}
	if err := c.Remove("/ln"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveAll("/a"); err != nil {
		t.Fatal(err)
	}
}

func TestErrorSentinelsSurviveWire(t *testing.T) {
	c := serve(t, vfs.New())
	if _, err := c.ReadFile("/missing"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("ErrNotExist lost: %v", err)
	}
	if err := c.Mkdir("/x"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/x"); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("ErrExist lost: %v", err)
	}
	if _, err := c.ReadFile("/x"); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("ErrIsDir lost: %v", err)
	}
	// PathError shape preserved too.
	_, err := c.Stat("/nope")
	var pe *vfs.PathError
	if !errors.As(err, &pe) || pe.Path != "/nope" {
		t.Fatalf("PathError lost: %v", err)
	}
}

func TestHandleIO(t *testing.T) {
	c := serve(t, vfs.New())
	f, err := c.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if pos, err := f.Seek(2, io.SeekStart); err != nil || pos != 2 {
		t.Fatalf("Seek = %d, %v", pos, err)
	}
	buf := make([]byte, 3)
	if n, err := f.Read(buf); err != nil || n != 3 || string(buf) != "234" {
		t.Fatalf("Read = %d %q %v", n, buf, err)
	}
	if _, err := f.WriteAt([]byte("X"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(buf[:1], 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if buf[0] != 'X' {
		t.Fatalf("ReadAt = %q", buf[:1])
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	info, err := f.Stat()
	if err != nil || info.Size != 4 {
		t.Fatalf("Stat = %+v, %v", info, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Operations on a closed handle fail cleanly.
	if _, err := f.Read(buf); err == nil {
		t.Fatal("read after close succeeded")
	}
	// EOF propagates.
	g, _ := c.Open("/f")
	defer g.Close()
	if _, err := g.Seek(0, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Read(buf); err != io.EOF {
		t.Fatalf("EOF not propagated: %v", err)
	}
}

func TestMountRemoteVolume(t *testing.T) {
	// A served volume mounted syntactically into a local tree — the §3
	// distributed mount point.
	remoteSide := vfs.New()
	if err := remoteSide.WriteFile("/shared.txt", []byte("from afar")); err != nil {
		t.Fatal(err)
	}
	c := serve(t, remoteSide)

	local := vfs.New()
	if err := local.MkdirAll("/net/peer"); err != nil {
		t.Fatal(err)
	}
	if err := local.Mount("/net/peer", c); err != nil {
		t.Fatal(err)
	}
	data, err := local.ReadFile("/net/peer/shared.txt")
	if err != nil || string(data) != "from afar" {
		t.Fatalf("read through remote mount = %q, %v", data, err)
	}
	// Writes cross the wire through the mount.
	if err := local.WriteFile("/net/peer/back.txt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := remoteSide.Stat("/back.txt"); err != nil {
		t.Fatalf("write did not reach remote: %v", err)
	}
}

func TestHACOverRemoteSubstrate(t *testing.T) {
	// The composability payoff: a local HAC layer over a remote
	// substrate. Every file lives on the server; the semantic machinery
	// runs locally.
	c := serve(t, vfs.New())
	fs := hac.New(c, hac.Options{})
	if err := fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/docs/a.txt", []byte("apple pie")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/docs/b.txt", []byte("banana bread")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkSemDir("/sel", "apple"); err != nil {
		t.Fatal(err)
	}
	targets, err := fs.LinkTargets("/sel")
	if err != nil || len(targets) != 1 || targets[0] != "/docs/a.txt" {
		t.Fatalf("targets = %v, %v", targets, err)
	}
}

func TestServeLiveHACVolume(t *testing.T) {
	// §3.2 over the network: Alice's live HAC volume, served whole; Bob
	// browses her semantic directory remotely.
	alice := hac.New(vfs.New(), hac.Options{})
	if err := alice.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := alice.WriteFile("/docs/fp.txt", []byte("fingerprint notes")); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Reindex("/"); err != nil {
		t.Fatal(err)
	}
	if err := alice.MkSemDir("/fp", "fingerprint"); err != nil {
		t.Fatal(err)
	}

	bob := serve(t, alice)
	entries, err := bob.ReadDir("/fp")
	if err != nil || len(entries) != 1 {
		t.Fatalf("remote browse = %v, %v", entries, err)
	}
	data, err := bob.ReadFile("/fp/" + entries[0].Name)
	if err != nil || string(data) != "fingerprint notes" {
		t.Fatalf("remote read through link = %q, %v", data, err)
	}
}

func TestSearchOverWire(t *testing.T) {
	// A served HAC volume answers opSearch with cursor pages.
	hfs := hac.New(vfs.New(), hac.Options{})
	if err := hfs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 9; i++ {
		p := fmt.Sprintf("/docs/note%d.txt", i)
		if err := hfs.WriteFile(p, []byte("fingerprint survey")); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	if _, err := hfs.Reindex("/"); err != nil {
		t.Fatal(err)
	}

	c := serve(t, hfs)
	ctx := context.Background()
	var got []string
	var after uint64
	for pages := 0; ; pages++ {
		if pages > len(want) {
			t.Fatalf("cursor did not terminate: got %v", got)
		}
		page, next, err := c.SearchPage(ctx, "fingerprint", "/docs", after, 4)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page...)
		if next == 0 {
			break
		}
		after = next
	}
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("paged search = %v, want %v", got, want)
	}

	// Out-of-scope search matches nothing.
	page, next, err := c.SearchPage(ctx, "fingerprint", "/empty", 0, 0)
	if err != nil || next != 0 || len(page) != 0 {
		t.Fatalf("out-of-scope search = %v, %d, %v", page, next, err)
	}
}

func TestSearchUnsupportedOverWire(t *testing.T) {
	// A plain MemFS is not a Searcher; the wire error keeps its
	// sentinel.
	c := serve(t, vfs.New())
	_, _, err := c.SearchPage(context.Background(), "anything", "/", 0, 0)
	if !errors.Is(err, vfs.ErrUnsupported) {
		t.Fatalf("search on plain memfs = %v, want ErrUnsupported", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	backing := vfs.New()
	srv := NewServer(backing, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := Dial(l.Addr().String())
			defer c.Close()
			dir := "/c" + string(rune('a'+i))
			if err := c.MkdirAll(dir); err != nil {
				t.Errorf("mkdir: %v", err)
				return
			}
			for k := 0; k < 25; k++ {
				p := dir + "/f" + string(rune('0'+k%10))
				if err := c.WriteFile(p, []byte{byte(k)}); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if _, err := c.ReadFile(p); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	files, err := vfs.Files(backing, "/")
	if err != nil || len(files) != 40 {
		t.Fatalf("files = %d, %v", len(files), err)
	}
}

func TestAndrewOverRemote(t *testing.T) {
	if testing.Short() {
		t.Skip("network Andrew run")
	}
	c := serve(t, vfs.New())
	spec := andrew.Spec{Dirs: 2, FilesPerDir: 3, FileSize: 512, MakeRounds: 1}
	if err := andrew.GenerateSource(c, "/src", spec); err != nil {
		t.Fatal(err)
	}
	res, err := andrew.Run(c, "/src", "/dst", spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.FilesRead != 6 {
		t.Fatalf("FilesRead = %d", res.FilesRead)
	}
}

func TestServerSurvivesGarbageBytes(t *testing.T) {
	backing := vfs.New()
	srv := NewServer(backing, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	// Raw garbage: the server must drop the connection, not crash.
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("\x00\xde\xad\xbe\xefnot gob at all"))
	conn.Close()

	// A well-behaved client still works afterwards.
	c := Dial(l.Addr().String())
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("server unusable after garbage: %v", err)
	}
}

func TestClientEquivalentTreeState(t *testing.T) {
	// The remote client and a local MemFS driven by identical ops end
	// in identical states.
	local := vfs.New()
	c := serve(t, vfs.New())
	ops := func(fsys vfs.FileSystem) {
		fsys.MkdirAll("/d/e")
		fsys.WriteFile("/d/e/f", []byte("x"))
		fsys.Symlink("/d/e/f", "/d/ln")
		fsys.Rename("/d/e/f", "/d/e/g")
		fsys.WriteFile("/d/h", []byte("y"))
		fsys.Remove("/d/h")
	}
	ops(local)
	ops(c)
	lf, _ := vfs.Files(local, "/")
	rf, _ := vfs.Files(c, "/")
	if !reflect.DeepEqual(lf, rf) {
		t.Fatalf("states diverged: %v vs %v", lf, rf)
	}
}
