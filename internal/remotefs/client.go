package remotefs

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"hacfs/internal/obs"
	"hacfs/internal/vfs"
)

// Client is a vfs.FileSystem backed by a remote Server. All local
// layers compose over it: it can be mounted syntactically into a
// MemFS, or serve as the substrate of a local HAC volume.
//
// One connection carries all requests; the client serializes them, so
// it is safe for concurrent use.
type Client struct {
	addr    string
	timeout time.Duration
	tenant  string

	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	met  clientMetrics
}

var _ vfs.FileSystem = (*Client)(nil)

// Dial creates a client for the server at addr. The connection is
// established lazily.
func Dial(addr string) *Client {
	return &Client{
		addr:    addr,
		timeout: 10 * time.Second,
		met:     newClientMetrics(obs.Default()),
	}
}

// SetTimeout changes the per-request deadline.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// SetTenant addresses all subsequent requests at the named tenant
// volume on a multi-tenant server ("" = the server's default volume).
func (c *Client) SetTenant(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tenant = name
}

// Close drops the connection; later requests re-dial.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropLocked()
}

func (c *Client) dropLocked() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn, c.enc, c.dec = nil, nil, nil
	return err
}

func (c *Client) ensureLocked(ctx context.Context) error {
	if c.conn != nil {
		return nil
	}
	d := net.Dialer{Timeout: c.timeout}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		c.met.dialFailures.Add(1)
		return fmt.Errorf("remotefs: dial %s: %w", c.addr, err)
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.dec = gob.NewDecoder(conn)
	return nil
}

// deadlineLocked computes the connection deadline for one request: the
// per-request timeout, further tightened by the context's deadline.
func (c *Client) deadlineLocked(ctx context.Context) time.Time {
	var dl time.Time
	if c.timeout > 0 {
		dl = time.Now().Add(c.timeout)
	}
	if cd, ok := ctx.Deadline(); ok && (dl.IsZero() || cd.Before(dl)) {
		dl = cd
	}
	return dl
}

// call performs one round trip, retrying once on a fresh connection
// after transport errors. Requests carrying open handles are not
// retried (the handle died with the connection).
func (c *Client) call(req *request) (*response, error) {
	return c.callCtx(context.Background(), req)
}

// callCtx is call bounded by ctx: the dial and the round trip honor
// the context's deadline and cancellation, on top of the client's
// per-request timeout.
func (c *Client) callCtx(ctx context.Context, req *request) (_ *response, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.met.ops[req.Op]; ok {
		defer m.done(time.Now(), &err)
	}
	req.Tenant = c.tenant
	if sc, ok := obs.FromContext(ctx); ok {
		req.TraceHi, req.TraceLo = sc.Trace.Words()
		req.TraceSpan = uint64(sc.Span)
	}
	attempts := 2
	if req.Handle != 0 {
		attempts = 1
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			c.met.retries.Add(1)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := c.ensureLocked(ctx); err != nil {
			return nil, err
		}
		if dl := c.deadlineLocked(ctx); !dl.IsZero() {
			c.conn.SetDeadline(dl)
		}
		if err := c.enc.Encode(req); err != nil {
			lastErr = err
			c.dropLocked()
			continue
		}
		var resp response
		if err := c.dec.Decode(&resp); err != nil {
			lastErr = err
			c.dropLocked()
			continue
		}
		return &resp, nil
	}
	return nil, fmt.Errorf("remotefs: %s: %w", c.addr, lastErr)
}

// do is call for operations whose only interesting result is an error.
func (c *Client) do(req *request) error {
	resp, err := c.call(req)
	if err != nil {
		return err
	}
	return resp.Err.decode()
}

// Ping checks liveness.
func (c *Client) Ping() error { return c.PingContext(context.Background()) }

// PingContext checks liveness, bounded by ctx.
func (c *Client) PingContext(ctx context.Context) error {
	resp, err := c.callCtx(ctx, &request{Op: opPing})
	if err != nil {
		return err
	}
	return resp.Err.decode()
}

// SyncPath restores scope consistency for the semantic directory at
// path on the served volume (the paper's ssync, over the wire). Only
// servers exporting a HAC volume answer; others return
// vfs.ErrUnsupported.
func (c *Client) SyncPath(path string) error {
	return c.do(&request{Op: opSync, Path: path})
}

// ReadFileContext reads a whole remote file, bounded by ctx.
func (c *Client) ReadFileContext(ctx context.Context, path string) ([]byte, error) {
	resp, err := c.callCtx(ctx, &request{Op: opReadFile, Path: path})
	if err != nil {
		return nil, err
	}
	return resp.Data, resp.Err.decode()
}

// ReadDirContext lists a remote directory, bounded by ctx.
func (c *Client) ReadDirContext(ctx context.Context, path string) ([]vfs.DirEntry, error) {
	resp, err := c.callCtx(ctx, &request{Op: opReadDir, Path: path})
	if err != nil {
		return nil, err
	}
	return resp.Entries, resp.Err.decode()
}

// StatContext returns remote metadata, bounded by ctx.
func (c *Client) StatContext(ctx context.Context, path string) (vfs.Info, error) {
	resp, err := c.callCtx(ctx, &request{Op: opStat, Path: path})
	if err != nil {
		return vfs.Info{}, err
	}
	return resp.Info, resp.Err.decode()
}

// SearchPage runs a content query on the remote volume and returns one
// cursor page of matching paths: matches under scope starting at cursor
// after (0 = first page), at most limit of them, plus the cursor of the
// next page (0 = no more). Only servers exporting a searchable file
// system — a HAC volume — answer; others return vfs.ErrUnsupported.
func (c *Client) SearchPage(ctx context.Context, query, scope string, after uint64, limit int) ([]string, uint64, error) {
	if after > (1<<63 - 1) {
		return nil, 0, fmt.Errorf("remotefs: search cursor overflow")
	}
	resp, err := c.callCtx(ctx, &request{Op: opSearch, Path: scope, Path2: query, Offset: int64(after), N: limit})
	if err != nil {
		return nil, 0, err
	}
	if err := resp.Err.decode(); err != nil {
		return nil, 0, err
	}
	return resp.Strs, uint64(resp.Off), nil
}

// Mkdir creates a directory on the remote volume.
func (c *Client) Mkdir(path string) error {
	return c.do(&request{Op: opMkdir, Path: path})
}

// MkdirAll creates a directory and missing parents.
func (c *Client) MkdirAll(path string) error {
	return c.do(&request{Op: opMkdirAll, Path: path})
}

// Create creates or truncates a remote file.
func (c *Client) Create(path string) (vfs.File, error) {
	return c.OpenFile(path, vfs.ORead|vfs.OWrite|vfs.OCreate|vfs.OTrunc)
}

// Open opens a remote file for reading.
func (c *Client) Open(path string) (vfs.File, error) {
	return c.OpenFile(path, vfs.ORead)
}

// OpenFile opens a remote file.
func (c *Client) OpenFile(path string, flag int) (vfs.File, error) {
	resp, err := c.call(&request{Op: opOpenFile, Path: path, Flag: flag})
	if err != nil {
		return nil, err
	}
	if err := resp.Err.decode(); err != nil {
		return nil, err
	}
	return &remoteFile{c: c, handle: resp.Handle, name: path}, nil
}

// ReadFile reads a whole remote file.
func (c *Client) ReadFile(path string) ([]byte, error) {
	resp, err := c.call(&request{Op: opReadFile, Path: path})
	if err != nil {
		return nil, err
	}
	return resp.Data, resp.Err.decode()
}

// WriteFile writes a whole remote file.
func (c *Client) WriteFile(path string, data []byte) error {
	return c.do(&request{Op: opWriteFile, Path: path, Data: data})
}

// Symlink creates a remote symbolic link.
func (c *Client) Symlink(target, link string) error {
	return c.do(&request{Op: opSymlink, Path: link, Path2: target})
}

// Readlink reads a remote symbolic link.
func (c *Client) Readlink(path string) (string, error) {
	resp, err := c.call(&request{Op: opReadlink, Path: path})
	if err != nil {
		return "", err
	}
	return resp.Str, resp.Err.decode()
}

// Remove deletes one remote object.
func (c *Client) Remove(path string) error {
	return c.do(&request{Op: opRemove, Path: path})
}

// RemoveAll deletes a remote subtree.
func (c *Client) RemoveAll(path string) error {
	return c.do(&request{Op: opRemoveAll, Path: path})
}

// Rename moves a remote object.
func (c *Client) Rename(oldPath, newPath string) error {
	return c.do(&request{Op: opRename, Path: oldPath, Path2: newPath})
}

// Stat returns remote metadata, following symlinks.
func (c *Client) Stat(path string) (vfs.Info, error) {
	resp, err := c.call(&request{Op: opStat, Path: path})
	if err != nil {
		return vfs.Info{}, err
	}
	return resp.Info, resp.Err.decode()
}

// Lstat returns remote metadata without following a final symlink.
func (c *Client) Lstat(path string) (vfs.Info, error) {
	resp, err := c.call(&request{Op: opLstat, Path: path})
	if err != nil {
		return vfs.Info{}, err
	}
	return resp.Info, resp.Err.decode()
}

// ReadDir lists a remote directory.
func (c *Client) ReadDir(path string) ([]vfs.DirEntry, error) {
	resp, err := c.call(&request{Op: opReadDir, Path: path})
	if err != nil {
		return nil, err
	}
	return resp.Entries, resp.Err.decode()
}

// remoteFile is an open handle on the server.
type remoteFile struct {
	c      *Client
	handle uint64
	name   string
}

var _ vfs.File = (*remoteFile)(nil)

func (f *remoteFile) Name() string { return f.name }

func (f *remoteFile) Read(p []byte) (int, error) {
	resp, err := f.c.call(&request{Op: opFileRead, Handle: f.handle, N: len(p)})
	if err != nil {
		return 0, err
	}
	if err := resp.Err.decode(); err != nil {
		return 0, err
	}
	n := copy(p, resp.Data)
	if resp.EOF {
		return n, io.EOF
	}
	return n, nil
}

func (f *remoteFile) ReadAt(p []byte, off int64) (int, error) {
	resp, err := f.c.call(&request{Op: opFileReadAt, Handle: f.handle, N: len(p), Offset: off})
	if err != nil {
		return 0, err
	}
	if err := resp.Err.decode(); err != nil {
		return 0, err
	}
	n := copy(p, resp.Data)
	if resp.EOF {
		return n, io.EOF
	}
	return n, nil
}

func (f *remoteFile) Write(p []byte) (int, error) {
	resp, err := f.c.call(&request{Op: opFileWrite, Handle: f.handle, Data: p})
	if err != nil {
		return 0, err
	}
	return resp.N, resp.Err.decode()
}

func (f *remoteFile) WriteAt(p []byte, off int64) (int, error) {
	resp, err := f.c.call(&request{Op: opFileWriteAt, Handle: f.handle, Data: p, Offset: off})
	if err != nil {
		return 0, err
	}
	return resp.N, resp.Err.decode()
}

func (f *remoteFile) Seek(offset int64, whence int) (int64, error) {
	resp, err := f.c.call(&request{Op: opFileSeek, Handle: f.handle, Offset: offset, Whence: whence})
	if err != nil {
		return 0, err
	}
	return resp.Off, resp.Err.decode()
}

func (f *remoteFile) Truncate(size int64) error {
	resp, err := f.c.call(&request{Op: opFileTruncate, Handle: f.handle, Size: size})
	if err != nil {
		return err
	}
	return resp.Err.decode()
}

func (f *remoteFile) Stat() (vfs.Info, error) {
	resp, err := f.c.call(&request{Op: opFileStat, Handle: f.handle})
	if err != nil {
		return vfs.Info{}, err
	}
	return resp.Info, resp.Err.decode()
}

func (f *remoteFile) Close() error {
	resp, err := f.c.call(&request{Op: opFileClose, Handle: f.handle})
	if err != nil {
		return err
	}
	return resp.Err.decode()
}
