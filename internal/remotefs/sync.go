package remotefs

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"hacfs/internal/vfs"
	"hacfs/internal/vfs/cas"
)

// Manifest-diff replication (DESIGN.md §15). A replica mirrors a remote
// volume by fetching its manifest — paths and content hashes, a few
// dozen bytes per file — diffing the hashes against its own blob store,
// and fetching only the blobs it is missing. At 1% churn that ships
// roughly 1% of the content a full copy would, plus the manifest. The
// capability negotiates itself: a server without a content-addressed
// volume answers opManifest with Unsupported, and MirrorVolume falls
// back to walking the remote tree and copying every file — the exact
// behavior a legacy peer always had.

// Batching bounds for blob fetches: each opBlobs round trip carries at
// most syncBatchCount hashes and is sized (using the manifest's sizes)
// to stay well under the frame budget.
const (
	syncBatchCount = 512
	syncBatchBytes = 4 << 20
	// maxBlobFetch bounds one request's hash count server-side.
	maxBlobFetch = 4096
)

// splitHashes parses a request's concatenated 32-byte hashes.
func splitHashes(data []byte) ([]cas.Hash, error) {
	if len(data)%len(cas.Hash{}) != 0 {
		return nil, fmt.Errorf("remotefs: blob request length %d is not a multiple of %d", len(data), len(cas.Hash{}))
	}
	n := len(data) / len(cas.Hash{})
	if n > maxBlobFetch {
		return nil, fmt.Errorf("remotefs: %d blobs requested, limit %d", n, maxBlobFetch)
	}
	hashes := make([]cas.Hash, n)
	for i := range hashes {
		copy(hashes[i][:], data[i*len(cas.Hash{}):])
	}
	return hashes, nil
}

// joinHashes is the inverse of splitHashes.
func joinHashes(hashes []cas.Hash) []byte {
	out := make([]byte, 0, len(hashes)*len(cas.Hash{}))
	for _, h := range hashes {
		out = append(out, h[:]...)
	}
	return out
}

// encodeBlobList frames blob contents for one opBlobs response: per
// blob, a u64 big-endian length then the content. The total must fit
// the response frame's Data bound.
func encodeBlobList(blobs [][]byte) ([]byte, error) {
	total := 0
	for _, b := range blobs {
		total += 8 + len(b)
	}
	if total > maxIO {
		return nil, fmt.Errorf("remotefs: blob batch of %d bytes exceeds the %d frame budget", total, maxIO)
	}
	out := make([]byte, 0, total)
	for _, b := range blobs {
		var l [8]byte
		binary.BigEndian.PutUint64(l[:], uint64(len(b)))
		out = append(out, l[:]...)
		out = append(out, b...)
	}
	return out, nil
}

// decodeBlobList parses an opBlobs response into exactly want blobs.
func decodeBlobList(data []byte, want int) ([][]byte, error) {
	blobs := make([][]byte, 0, want)
	for len(data) > 0 {
		if len(blobs) == want {
			return nil, errors.New("remotefs: blob response has trailing bytes")
		}
		if len(data) < 8 {
			return nil, errors.New("remotefs: truncated blob length")
		}
		l := binary.BigEndian.Uint64(data[:8])
		data = data[8:]
		if l > uint64(len(data)) {
			return nil, fmt.Errorf("remotefs: blob length %d exceeds remaining %d bytes", l, len(data))
		}
		blobs = append(blobs, data[:l:l])
		data = data[l:]
	}
	if len(blobs) != want {
		return nil, fmt.Errorf("remotefs: %d blobs in response, want %d", len(blobs), want)
	}
	return blobs, nil
}

// Peer is the client surface MirrorVolume drives: the remote volume's
// file operations for the full-copy fallback plus the raw request
// channel for the manifest ops. Both Client and MuxClient satisfy it.
type Peer interface {
	vfs.FileSystem
	callCtx(ctx context.Context, req *request) (*response, error)
}

var (
	_ Peer = (*Client)(nil)
	_ Peer = (*MuxClient)(nil)
)

// FetchManifest retrieves the remote volume's content-addressed
// manifest. A server without one answers vfs.ErrUnsupported.
func FetchManifest(ctx context.Context, p Peer, dst *cas.Manifest) (wireBytes int64, err error) {
	resp, err := p.callCtx(ctx, &request{Op: opManifest})
	if err != nil {
		return 0, err
	}
	if err := resp.Err.decode(); err != nil {
		return 0, err
	}
	m, err := cas.DecodeManifest(resp.Data)
	if err != nil {
		return 0, fmt.Errorf("remotefs: remote manifest: %w", err)
	}
	*dst = *m
	return int64(len(resp.Data)), nil
}

// fetchBlobs retrieves one batch of blobs by hash, verifying each
// against the hash it was requested under — a corrupt or hostile server
// cannot poison the local store.
func fetchBlobs(ctx context.Context, p Peer, hashes []cas.Hash) ([][]byte, error) {
	resp, err := p.callCtx(ctx, &request{Op: opBlobs, Data: joinHashes(hashes)})
	if err != nil {
		return nil, err
	}
	if err := resp.Err.decode(); err != nil {
		return nil, err
	}
	blobs, err := decodeBlobList(resp.Data, len(hashes))
	if err != nil {
		return nil, err
	}
	for i, b := range blobs {
		if cas.Sum(b) != hashes[i] {
			return nil, fmt.Errorf("remotefs: blob %s arrived with wrong content", hashes[i].Short())
		}
	}
	return blobs, nil
}

// SyncStats reports what one MirrorVolume run shipped.
type SyncStats struct {
	Mode          string // "manifest-diff" or "full"
	ManifestBytes int64  // encoded manifest size (manifest-diff only)
	BlobsFetched  int    // distinct blobs pulled (manifest-diff only)
	BlobBytes     int64  // content bytes pulled via opBlobs
	FilesCopied   int    // files copied in full mode
	ContentBytes  int64  // total content bytes that crossed the wire
}

// MirrorVolume makes dst an exact copy of the remote volume's tree.
// When dst is content-addressed (a cas.FS, possibly under wrappers
// exposing Under()) and the server exports a manifest, only blobs
// missing from dst's store cross the wire; otherwise every file is
// copied. The returned stats say which path ran and what it cost.
func MirrorVolume(ctx context.Context, p Peer, dst vfs.FileSystem) (SyncStats, error) {
	if cfs := casTarget(dst); cfs != nil {
		var m cas.Manifest
		mBytes, err := FetchManifest(ctx, p, &m)
		switch {
		case err == nil:
			return mirrorByManifest(ctx, p, cfs, &m, mBytes)
		case errors.Is(err, vfs.ErrUnsupported):
			// Legacy or non-CAS peer: negotiate down to the full copy.
		default:
			return SyncStats{}, err
		}
	}
	return mirrorFull(ctx, p, dst)
}

// casTarget unwraps layering down to a content-addressed destination.
func casTarget(dst vfs.FileSystem) *cas.FS {
	for {
		if c, ok := dst.(*cas.FS); ok {
			return c
		}
		u, ok := dst.(interface{ Under() vfs.FileSystem })
		if !ok {
			return nil
		}
		dst = u.Under()
	}
}

// mirrorByManifest is the diff path: fetch missing blobs in size-bounded
// batches, then atomically swing the tree to the manifest.
func mirrorByManifest(ctx context.Context, p Peer, dst *cas.FS, m *cas.Manifest, mBytes int64) (SyncStats, error) {
	stats := SyncStats{Mode: "manifest-diff", ManifestBytes: mBytes}
	store := dst.Store()
	missing := m.MissingFrom(store)

	// The manifest knows each blob's size; pack batches against the
	// frame budget. Oversized singletons still go alone — the server
	// rejects them with a typed error rather than jamming the frame.
	sizeOf := make(map[cas.Hash]int64, len(missing))
	for _, e := range m.Entries {
		if e.Type == vfs.TypeFile {
			sizeOf[e.Hash] = e.Size
		}
	}
	// Temporary references pin fetched blobs until the manifest swap
	// takes its own; released on every exit path.
	var fetched []cas.Hash
	defer func() {
		for _, h := range fetched {
			store.Unref(h)
		}
	}()
	for start := 0; start < len(missing); {
		end, bytes := start, int64(0)
		for end < len(missing) && end-start < syncBatchCount {
			if end > start && bytes+sizeOf[missing[end]] > syncBatchBytes {
				break
			}
			bytes += sizeOf[missing[end]]
			end++
		}
		blobs, err := fetchBlobs(ctx, p, missing[start:end])
		if err != nil {
			return stats, err
		}
		for _, b := range blobs {
			h, _ := store.Put(b)
			fetched = append(fetched, h)
			stats.BlobBytes += int64(len(b))
		}
		stats.BlobsFetched += len(blobs)
		start = end
	}
	if err := dst.ReplaceWithManifest(m); err != nil {
		return stats, err
	}
	stats.ContentBytes = stats.BlobBytes
	return stats, nil
}

// mirrorFull is the fallback: clear the destination and copy the whole
// remote tree through the ordinary file operations.
func mirrorFull(ctx context.Context, p Peer, dst vfs.FileSystem) (SyncStats, error) {
	stats := SyncStats{Mode: "full"}
	rootEntries, err := dst.ReadDir("/")
	if err != nil {
		return stats, err
	}
	for _, e := range rootEntries {
		if err := dst.RemoveAll("/" + e.Name); err != nil {
			return stats, err
		}
	}
	var copyDir func(path string) error
	copyDir = func(path string) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		entries, err := p.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			child := vfs.Join(path, e.Name)
			switch e.Type {
			case vfs.TypeDir:
				if err := dst.Mkdir(child); err != nil {
					return err
				}
				if err := copyDir(child); err != nil {
					return err
				}
			case vfs.TypeSymlink:
				target, err := p.Readlink(child)
				if err != nil {
					return err
				}
				if err := dst.Symlink(target, child); err != nil {
					return err
				}
			case vfs.TypeFile:
				data, err := p.ReadFile(child)
				if err != nil {
					return err
				}
				if err := dst.WriteFile(child, data); err != nil {
					return err
				}
				stats.FilesCopied++
				stats.ContentBytes += int64(len(data))
			}
		}
		return nil
	}
	if err := copyDir("/"); err != nil {
		return stats, err
	}
	return stats, nil
}
