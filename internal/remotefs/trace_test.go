package remotefs

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"hacfs/internal/hac"
	"hacfs/internal/obs"
	servepkg "hacfs/internal/serve"
	"hacfs/internal/vfs"
)

// traceHost builds a two-tenant serve.Host whose spans land in srvObs
// and serves it on a loopback socket. Each tenant's corpus answers a
// query of "<tenant>doc".
func traceHost(t *testing.T, srvObs *obs.Observer) string {
	t.Helper()
	mkFS := func(marker string) *hac.FS {
		hfs := hac.New(vfs.New(), hac.Options{Observer: srvObs})
		if err := hfs.MkdirAll("/docs"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			p := fmt.Sprintf("/docs/n%02d.txt", i)
			if err := hfs.WriteFile(p, []byte(marker+" corpus body")); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := hfs.Reindex("/"); err != nil {
			t.Fatal(err)
		}
		return hfs
	}
	host := servepkg.NewHost(2, srvObs)
	for _, name := range []string{"alice", "bob"} {
		if err := host.AddTenant(name, mkFS(name+"doc"), servepkg.Quota{}, ""); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewHostServer(host, nil)
	srv.SetObserver(srvObs)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(srv.Close)
	return l.Addr().String()
}

func findSpan(spans []*obs.Span, name string) *obs.Span {
	for _, s := range spans {
		if s.Name == name {
			return s
		}
	}
	return nil
}

func spanNames(spans []*obs.Span) []string {
	out := make([]string, 0, len(spans))
	for _, s := range spans {
		out = append(out, s.Name)
	}
	return out
}

// waitSpans polls until every named span of the trace is retained in
// tr's ring — the server finishes its spans after the response frame
// is already on the wire, so the client can get here first.
func waitSpans(t *testing.T, tr *obs.Tracer, id obs.TraceID, names ...string) []*obs.Span {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		spans := tr.ByTrace(id)
		missing := false
		for _, n := range names {
			if findSpan(spans, n) == nil {
				missing = true
			}
		}
		if !missing {
			return spans
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never retained %v, have %v", id, names, spanNames(spans))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTraceSpansClientAndServerRings drives traced searches from two
// tenants concurrently through the mux protocol into a multi-tenant
// host with SEPARATE client- and server-side observers, then checks
// that each request's spans — caller root, client RPC, server
// dispatch, hac search — carry one trace ID and link parent to child
// across the process boundary (the link rides the frame header).
func TestTraceSpansClientAndServerRings(t *testing.T) {
	clientObs, srvObs := obs.NewObserver(), obs.NewObserver()
	addr := traceHost(t, srvObs)
	c := DialMux(addr)
	c.SetTimeout(5 * time.Second)
	defer c.Close()
	c.SetObserver(clientObs)

	tenants := []string{"alice", "bob"}
	traces := make([]obs.TraceID, len(tenants))
	var wg sync.WaitGroup
	for i, tenant := range tenants {
		wg.Add(1)
		go func(i int, tenant string) {
			defer wg.Done()
			root, ctx := clientObs.Tracer().StartCtx(context.Background(), "test.root")
			paths, _, err := c.Tenant(tenant).SearchPage(ctx, tenant+"doc", "/", 0, 32)
			root.FinishErr(err)
			if err != nil {
				t.Errorf("%s: traced search: %v", tenant, err)
				return
			}
			if len(paths) != 8 {
				t.Errorf("%s: search returned %d paths, want 8", tenant, len(paths))
			}
			traces[i] = root.Trace
		}(i, tenant)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if traces[0] == traces[1] {
		t.Fatal("two independent requests share a trace id")
	}

	for i, tenant := range tenants {
		id := traces[i]
		cspans := clientObs.Tracer().ByTrace(id)
		root, rpc := findSpan(cspans, "test.root"), findSpan(cspans, "rpc.search")
		if root == nil || rpc == nil {
			t.Fatalf("%s: client ring retained %v, want test.root and rpc.search", tenant, spanNames(cspans))
		}
		if rpc.Parent != root.ID {
			t.Fatalf("%s: rpc span parent = %d, want root %d", tenant, rpc.Parent, root.ID)
		}
		sspans := waitSpans(t, srvObs.Tracer(), id, "rfs.search", "hac.Search")
		rfs, hacSp := findSpan(sspans, "rfs.search"), findSpan(sspans, "hac.Search")
		if rfs.Trace != id || hacSp.Trace != id {
			t.Fatalf("%s: server spans carry trace %s/%s, want %s", tenant, rfs.Trace, hacSp.Trace, id)
		}
		// The cross-process link: the server span's parent is the span
		// the client stamped into the frame header.
		if rfs.Parent != rpc.ID {
			t.Fatalf("%s: server span parent = %d, want client rpc span %d", tenant, rfs.Parent, rpc.ID)
		}
		if hacSp.Parent != rfs.ID {
			t.Fatalf("%s: hac span parent = %d, want rfs span %d", tenant, hacSp.Parent, rfs.ID)
		}
		var taggedTenant string
		for _, a := range rfs.Attrs {
			if a.Key == "tenant" {
				taggedTenant = a.Value
			}
		}
		if taggedTenant != tenant {
			t.Fatalf("server span tenant attr = %q, want %q", taggedTenant, tenant)
		}
	}
}

// TestGobLegacyClientUntraced: the gob protocol's trace fields are
// optional — a client that never sets them (what a pre-trace binary
// sends) must be served exactly as before against a tracing-enabled
// server, and the server must not fabricate a joined trace for it.
func TestGobLegacyClientUntraced(t *testing.T) {
	srvObs := obs.NewObserver()
	addr := traceHost(t, srvObs)
	lc := Dial(addr)
	lc.SetTimeout(5 * time.Second)
	defer lc.Close()
	lc.SetTenant("alice")

	// Cheap untraced ops stay spanless server-side.
	if _, err := lc.ReadDir("/docs"); err != nil {
		t.Fatal(err)
	}
	// A semantic op still works; the server mints its own standalone
	// trace (Parent 0 — nothing upstream to join).
	paths, _, err := lc.SearchPage(context.Background(), "alicedoc", "/", 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 8 {
		t.Fatalf("legacy search returned %d paths, want 8", len(paths))
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if sp := findSpan(srvObs.Tracer().Recent(), "rfs.search"); sp != nil {
			if sp.Parent != 0 {
				t.Fatalf("untraced request produced a parented server span (parent %d)", sp.Parent)
			}
			if sp.Trace.IsZero() {
				t.Fatal("standalone server span should still mint a trace id")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rfs.search span never retained; ring has %v", spanNames(srvObs.Tracer().Recent()))
		}
		time.Sleep(5 * time.Millisecond)
	}
}
