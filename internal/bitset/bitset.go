// Package bitset provides compact representations of sets of file
// identifiers, as used by HAC to store query results ("the list of files
// matching the query of a semantic directory").
//
// The paper (§4) stores one bitmap of N/8 bytes per semantic directory,
// where N is the number of indexed files, and names "better sparse-set
// representations" as future work. This package provides both: a dense
// Bitmap and a sorted Sparse set, behind the common Set interface, so the
// tradeoff can be measured (see the ablate-sets experiment).
//
// All identifiers are uint32 document/file IDs assigned by the index.
package bitset

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Set is a mutable set of uint32 identifiers. Implementations are not
// safe for concurrent mutation; callers synchronize externally.
type Set interface {
	// Add inserts id into the set.
	Add(id uint32)
	// Remove deletes id from the set if present.
	Remove(id uint32)
	// Contains reports whether id is in the set.
	Contains(id uint32) bool
	// Len returns the number of elements.
	Len() int
	// Range calls fn for each element in ascending order until fn
	// returns false.
	Range(fn func(id uint32) bool)
	// SizeBytes returns the approximate in-memory footprint of the
	// set's payload, used by the space-overhead experiments.
	SizeBytes() int
}

const wordBits = 64

// Bitmap is a dense bitmap set. Its footprint is ceil(universe/8) bytes
// regardless of how many elements are present — exactly the
// representation the paper uses for per-directory query results.
type Bitmap struct {
	words []uint64
}

// NewBitmap returns an empty bitmap sized for ids in [0, universe).
// The bitmap grows automatically if larger ids are added.
func NewBitmap(universe int) *Bitmap {
	if universe < 0 {
		universe = 0
	}
	return &Bitmap{words: make([]uint64, (universe+wordBits-1)/wordBits)}
}

// BitmapOf returns a bitmap containing exactly the given ids.
func BitmapOf(ids ...uint32) *Bitmap {
	b := NewBitmap(0)
	for _, id := range ids {
		b.Add(id)
	}
	return b
}

func (b *Bitmap) grow(n int) {
	if n <= len(b.words) {
		return
	}
	w := make([]uint64, n)
	copy(w, b.words)
	b.words = w
}

// Add inserts id.
func (b *Bitmap) Add(id uint32) {
	w := int(id / wordBits)
	b.grow(w + 1)
	b.words[w] |= 1 << (id % wordBits)
}

// Remove deletes id if present.
func (b *Bitmap) Remove(id uint32) {
	w := int(id / wordBits)
	if w < len(b.words) {
		b.words[w] &^= 1 << (id % wordBits)
	}
}

// Contains reports whether id is present.
func (b *Bitmap) Contains(id uint32) bool {
	w := int(id / wordBits)
	return w < len(b.words) && b.words[w]&(1<<(id%wordBits)) != 0
}

// Len returns the population count.
func (b *Bitmap) Len() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Range visits elements in ascending order.
func (b *Bitmap) Range(fn func(id uint32) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(uint32(wi*wordBits + bit)) {
				return
			}
			w &= w - 1
		}
	}
}

// SizeBytes returns the payload footprint: one bit per id in the universe.
func (b *Bitmap) SizeBytes() int { return len(b.words) * 8 }

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitmap{words: w}
}

// Trim removes every element >= n, keeping only ids in [0, n). Used by
// epoch snapshots to cap a result at the committed length of the active
// index segment.
func (b *Bitmap) Trim(n int) {
	if n < 0 {
		n = 0
	}
	w := n / wordBits
	if w < len(b.words) {
		b.words[w] &= (1 << (n % wordBits)) - 1
		for i := w + 1; i < len(b.words); i++ {
			b.words[i] = 0
		}
	}
}

// FullBitmap returns a bitmap containing every id in [0, n).
func FullBitmap(n int) *Bitmap {
	b := NewBitmap(n)
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.Trim(n)
	return b
}

// Clear removes all elements without releasing storage.
func (b *Bitmap) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// And intersects b with other in place.
func (b *Bitmap) And(other *Bitmap) {
	n := len(b.words)
	if len(other.words) < n {
		n = len(other.words)
	}
	for i := 0; i < n; i++ {
		b.words[i] &= other.words[i]
	}
	for i := n; i < len(b.words); i++ {
		b.words[i] = 0
	}
}

// Or unions other into b in place.
func (b *Bitmap) Or(other *Bitmap) {
	b.grow(len(other.words))
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// AndNot removes every element of other from b in place.
func (b *Bitmap) AndNot(other *Bitmap) {
	n := len(b.words)
	if len(other.words) < n {
		n = len(other.words)
	}
	for i := 0; i < n; i++ {
		b.words[i] &^= other.words[i]
	}
}

// Equal reports whether b and other contain the same elements.
func (b *Bitmap) Equal(other *Bitmap) bool {
	long, short := b.words, other.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if long[i] != w {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Any reports whether the set is non-empty.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Slice returns the elements in ascending order.
func (b *Bitmap) Slice() []uint32 {
	out := make([]uint32, 0, b.Len())
	b.Range(func(id uint32) bool {
		out = append(out, id)
		return true
	})
	return out
}

// String renders the set for debugging, e.g. "{1 5 9}".
func (b *Bitmap) String() string { return setString(b) }

// Sparse is a sorted-slice set. Its footprint is 4 bytes per element,
// which beats the bitmap when fewer than universe/32 ids are present —
// the "better sparse-set representation" the paper leaves to future work.
type Sparse struct {
	ids []uint32 // sorted, unique
}

// NewSparse returns an empty sparse set.
func NewSparse() *Sparse { return &Sparse{} }

// SparseOf returns a sparse set of the given ids.
func SparseOf(ids ...uint32) *Sparse {
	s := NewSparse()
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

func (s *Sparse) search(id uint32) int {
	return sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
}

// Add inserts id.
func (s *Sparse) Add(id uint32) {
	i := s.search(id)
	if i < len(s.ids) && s.ids[i] == id {
		return
	}
	s.ids = append(s.ids, 0)
	copy(s.ids[i+1:], s.ids[i:])
	s.ids[i] = id
}

// Remove deletes id if present.
func (s *Sparse) Remove(id uint32) {
	i := s.search(id)
	if i < len(s.ids) && s.ids[i] == id {
		s.ids = append(s.ids[:i], s.ids[i+1:]...)
	}
}

// Contains reports whether id is present.
func (s *Sparse) Contains(id uint32) bool {
	i := s.search(id)
	return i < len(s.ids) && s.ids[i] == id
}

// Len returns the number of elements.
func (s *Sparse) Len() int { return len(s.ids) }

// Range visits elements in ascending order.
func (s *Sparse) Range(fn func(id uint32) bool) {
	for _, id := range s.ids {
		if !fn(id) {
			return
		}
	}
}

// SizeBytes returns the payload footprint: 4 bytes per element.
func (s *Sparse) SizeBytes() int { return 4 * len(s.ids) }

// Slice returns the elements in ascending order. The returned slice is
// a copy and may be retained by the caller.
func (s *Sparse) Slice() []uint32 {
	out := make([]uint32, len(s.ids))
	copy(out, s.ids)
	return out
}

// String renders the set for debugging.
func (s *Sparse) String() string { return setString(s) }

// FromBitmap converts a bitmap into a sparse set.
func FromBitmap(b *Bitmap) *Sparse {
	return &Sparse{ids: b.Slice()}
}

// ToBitmap converts any Set into a dense bitmap sized for the given
// universe (0 means "grow as needed").
func ToBitmap(s Set, universe int) *Bitmap {
	b := NewBitmap(universe)
	s.Range(func(id uint32) bool {
		b.Add(id)
		return true
	})
	return b
}

func setString(s Set) string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	s.Range(func(id uint32) bool {
		if !first {
			sb.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&sb, "%d", id)
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}

// Union returns a new bitmap holding a ∪ b.
func Union(a, b *Bitmap) *Bitmap {
	out := a.Clone()
	out.Or(b)
	return out
}

// Intersect returns a new bitmap holding a ∩ b.
func Intersect(a, b *Bitmap) *Bitmap {
	out := a.Clone()
	out.And(b)
	return out
}

// Difference returns a new bitmap holding a − b.
func Difference(a, b *Bitmap) *Bitmap {
	out := a.Clone()
	out.AndNot(b)
	return out
}
