package bitset

import (
	"bytes"
	"math/rand"
	"testing"
)

// refSet is the oracle: a plain map.
type refSet map[uint32]bool

func (r refSet) slice() []uint32 {
	out := []uint32{}
	for v := range r {
		out = append(out, v)
	}
	sortU32(out)
	return out
}

func sortU32(a []uint32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randomContainer builds a container + reference with one of several
// shapes (sparse, dense, runs) and optionally forces a representation.
func randomContainer(rng *rand.Rand, shape int) (*Container, refSet) {
	c, ref := NewContainer(), refSet{}
	add := func(v uint32) {
		c.Add(v)
		ref[v] = true
	}
	switch shape % 4 {
	case 0: // sparse
		for i := 0; i < rng.Intn(50); i++ {
			add(rng.Uint32() % 10000)
		}
	case 1: // dense block
		base := rng.Uint32() % 1000
		for i := 0; i < 300+rng.Intn(300); i++ {
			add(base + uint32(rng.Intn(600)))
		}
	case 2: // runs
		for r := 0; r < 1+rng.Intn(4); r++ {
			lo := rng.Uint32() % 5000
			for v := lo; v < lo+uint32(50+rng.Intn(200)); v++ {
				add(v)
			}
		}
	case 3: // empty or tiny
		for i := 0; i < rng.Intn(3); i++ {
			add(rng.Uint32() % 100)
		}
	}
	if rng.Intn(2) == 0 {
		c.Pack()
	}
	if rng.Intn(3) == 0 {
		c.toBitmap()
	}
	return c, ref
}

func TestContainerBasicOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		c, ref := randomContainer(rng, trial)
		if c.Len() != len(ref) {
			t.Fatalf("trial %d: Len=%d want %d (kind %s)", trial, c.Len(), len(ref), c.Kind())
		}
		if !equalU32(c.Slice(), ref.slice()) {
			t.Fatalf("trial %d: Slice mismatch (kind %s)", trial, c.Kind())
		}
		for i := 0; i < 20; i++ {
			v := rng.Uint32() % 12000
			if c.Contains(v) != ref[v] {
				t.Fatalf("trial %d: Contains(%d)=%v want %v (kind %s)",
					trial, v, c.Contains(v), ref[v], c.Kind())
			}
		}
		// Remove a few and re-check.
		for _, v := range ref.slice() {
			if rng.Intn(4) == 0 {
				c.Remove(v)
				delete(ref, v)
			}
		}
		if !equalU32(c.Slice(), ref.slice()) {
			t.Fatalf("trial %d: Slice after Remove mismatch (kind %s)", trial, c.Kind())
		}
	}
}

func TestContainerSetOps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		a, ra := randomContainer(rng, trial)
		b, rb := randomContainer(rng, trial+rng.Intn(4))

		and := a.Clone()
		and.And(b)
		want := []uint32{}
		for v := range ra {
			if rb[v] {
				want = append(want, v)
			}
		}
		sortU32(want)
		if !equalU32(and.Slice(), want) {
			t.Fatalf("trial %d: And mismatch %s×%s: got %v want %v",
				trial, a.Kind(), b.Kind(), and.Slice(), want)
		}
		if and.Len() != len(want) {
			t.Fatalf("trial %d: And Len=%d want %d", trial, and.Len(), len(want))
		}

		or := a.Clone()
		or.Or(b)
		want = want[:0]
		seen := map[uint32]bool{}
		for v := range ra {
			seen[v] = true
		}
		for v := range rb {
			seen[v] = true
		}
		for v := range seen {
			want = append(want, v)
		}
		sortU32(want)
		if !equalU32(or.Slice(), want) {
			t.Fatalf("trial %d: Or mismatch %s×%s", trial, a.Kind(), b.Kind())
		}

		andNot := a.Clone()
		andNot.AndNot(b)
		want = want[:0]
		for v := range ra {
			if !rb[v] {
				want = append(want, v)
			}
		}
		sortU32(want)
		if !equalU32(andNot.Slice(), want) {
			t.Fatalf("trial %d: AndNot mismatch %s×%s", trial, a.Kind(), b.Kind())
		}
	}
}

func TestContainerBitmapOps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		a, ra := randomContainer(rng, trial)
		bm := NewBitmap(0)
		rb := refSet{}
		for i := 0; i < rng.Intn(400); i++ {
			v := rng.Uint32() % 8000
			bm.Add(v)
			rb[v] = true
		}

		and := a.Clone()
		and.AndBitmap(bm)
		want := []uint32{}
		for v := range ra {
			if rb[v] {
				want = append(want, v)
			}
		}
		sortU32(want)
		if !equalU32(and.Slice(), want) {
			t.Fatalf("trial %d: AndBitmap mismatch (kind %s)", trial, a.Kind())
		}

		andNot := a.Clone()
		andNot.AndNotBitmap(bm)
		want = want[:0]
		for v := range ra {
			if !rb[v] {
				want = append(want, v)
			}
		}
		sortU32(want)
		if !equalU32(andNot.Slice(), want) {
			t.Fatalf("trial %d: AndNotBitmap mismatch (kind %s)", trial, a.Kind())
		}
	}
}

func TestContainerPackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		c, ref := randomContainer(rng, trial)
		before := c.Slice()
		c.Pack()
		if !equalU32(c.Slice(), before) {
			t.Fatalf("trial %d: Pack changed contents (kind %s)", trial, c.Kind())
		}
		if c.Len() != len(ref) {
			t.Fatalf("trial %d: Pack changed Len", trial)
		}
	}
}

func TestContainerPackChoosesRun(t *testing.T) {
	c := NewContainer()
	for v := uint32(100); v < 5000; v++ {
		c.Add(v)
	}
	c.Pack()
	if c.Kind() != "run" {
		t.Fatalf("contiguous block packed as %s, want run", c.Kind())
	}
	if c.SizeBytes() != 8 {
		t.Fatalf("single run costs %d bytes, want 8", c.SizeBytes())
	}
}

func TestContainerPackChoosesArray(t *testing.T) {
	c := ContainerOf(5, 90000, 500000)
	c.toBitmap()
	c.Pack()
	if c.Kind() != "array" {
		t.Fatalf("sparse set packed as %s, want array", c.Kind())
	}
}

func TestContainerTrim(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		c, ref := randomContainer(rng, trial)
		limit := rng.Intn(6000)
		c.Trim(limit)
		want := []uint32{}
		for v := range ref {
			if int(v) < limit {
				want = append(want, v)
			}
		}
		sortU32(want)
		if !equalU32(c.Slice(), want) {
			t.Fatalf("trial %d: Trim(%d) mismatch (kind %s)", trial, limit, c.Kind())
		}
		if c.Len() != len(want) {
			t.Fatalf("trial %d: Trim Len mismatch", trial)
		}
	}
}

func TestContainerIterAdvance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		c, ref := randomContainer(rng, trial)
		all := ref.slice()
		it := c.Iter()
		// Advance through ascending random targets.
		target := uint32(0)
		for {
			target += uint32(rng.Intn(500))
			got, ok := it.Advance(target)
			// Oracle: smallest v in all with v >= target.
			var want uint32
			wantOK := false
			for _, v := range all {
				if v >= target {
					want, wantOK = v, true
					break
				}
			}
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("trial %d: Advance(%d)=(%d,%v) want (%d,%v) kind %s",
					trial, target, got, ok, want, wantOK, c.Kind())
			}
			if !ok {
				break
			}
			// Consume everything == got from oracle so next Advance
			// starts past it.
			idx := 0
			for idx < len(all) && all[idx] <= got {
				idx++
			}
			all = all[idx:]
			target = got
			if target == ^uint32(0) {
				break
			}
			target++
		}
	}
}

func TestContainerCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		c, _ := randomContainer(rng, trial)
		if rng.Intn(2) == 0 {
			c.Pack()
		}
		data := c.AppendBinary(nil)
		got, n, err := DecodeContainer(data)
		if err != nil {
			t.Fatalf("trial %d: decode: %v (kind %s)", trial, err, c.Kind())
		}
		if n != len(data) {
			t.Fatalf("trial %d: consumed %d of %d bytes", trial, n, len(data))
		}
		if !got.Equal(c) {
			t.Fatalf("trial %d: round-trip mismatch (kind %s→%s)", trial, c.Kind(), got.Kind())
		}
	}
}

func TestContainerCodecRejectsCorrupt(t *testing.T) {
	bad := [][]byte{
		nil,
		{codecArray},
		{codecArray, 2, 0, 0, 0, 5, 0, 0, 0, 3, 0, 0, 0},  // unsorted
		{codecArray, 2, 0, 0, 0, 5, 0, 0, 0, 5, 0, 0, 0},  // duplicate
		{codecRun, 1, 0, 0, 0, 9, 0, 0, 0, 3, 0, 0, 0},    // inverted run
		{codecBitmap, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // trailing zero word
		{'Z', 0, 0, 0, 0},                // unknown kind
		{codecArray, 255, 255, 255, 255}, // implausible count
		{codecRun, 2, 0, 0, 0, 1, 0, 0, 0, 5, 0, 0, 0, 6, 0, 0, 0, 9, 0, 0, 0}, // adjacent runs
	}
	for i, data := range bad {
		if _, _, err := DecodeContainer(data); err == nil {
			t.Fatalf("case %d: corrupt image %v decoded without error", i, data)
		}
	}
}

func TestSegmentedMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		s := NewSegmented()
		for seg := 0; seg < rng.Intn(5); seg++ {
			for i := 0; i < rng.Intn(100); i++ {
				s.Add(joinSegID(uint32(seg*3), rng.Uint32()%5000))
			}
		}
		if rng.Intn(2) == 0 {
			s.Pack()
		}
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		got, err := UnmarshalSegmented(data)
		if err != nil {
			t.Fatalf("trial %d: unmarshal: %v", trial, err)
		}
		if !got.Equal(s) || !s.Equal(got) {
			t.Fatalf("trial %d: round-trip mismatch", trial)
		}
		// Canonical: re-marshal matches when packed state is identical.
		data2, _ := got.MarshalBinary()
		if !bytes.Equal(data, data2) {
			t.Fatalf("trial %d: re-marshal differs", trial)
		}
	}
}

func TestSegmentedKinds(t *testing.T) {
	s := NewSegmented()
	for _, i := range []uint64{0, 500, 900} {
		s.Add(i) // segment 0, sparse
	}
	for i := uint64(0); i < 1000; i++ {
		s.Add(1<<32 | i) // segment 1, one run
	}
	s.Pack()
	if got := s.Kinds(); got != "array:1 run:1" {
		t.Fatalf("Kinds() = %q, want %q", got, "array:1 run:1")
	}
}

// FuzzContainerCodec asserts the decoder never panics, never accepts an
// invariant-violating image, and that accepted images re-encode to an
// equal container.
func FuzzContainerCodec(f *testing.F) {
	seed := ContainerOf(1, 2, 3, 100, 5000)
	f.Add(seed.AppendBinary(nil))
	seed.Pack()
	f.Add(seed.AppendBinary(nil))
	run := NewContainer()
	for v := uint32(10); v < 200; v++ {
		run.Add(v)
	}
	run.Pack()
	f.Add(run.AppendBinary(nil))
	f.Add([]byte{codecBitmap, 1, 0, 0, 0, 0xff, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, n, err := DecodeContainer(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		// Invariants: Len matches iteration, iteration strictly ascending.
		count := 0
		prev, first := uint32(0), true
		c.Range(func(v uint32) bool {
			if !first && v <= prev {
				t.Fatalf("iteration not strictly ascending: %d after %d", v, prev)
			}
			prev, first = v, false
			count++
			return true
		})
		if count != c.Len() {
			t.Fatalf("Len()=%d but iterated %d", c.Len(), count)
		}
		// Re-encode and re-decode: must be equal.
		data2 := c.AppendBinary(nil)
		c2, _, err := DecodeContainer(data2)
		if err != nil {
			t.Fatalf("re-decode of accepted image failed: %v", err)
		}
		if !c2.Equal(c) {
			t.Fatalf("re-encode round-trip mismatch")
		}
	})
}
