package bitset

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
)

// Container is a compressed set of uint32 local IDs — the per-segment
// payload of a Segmented set. Following the roaring design, each
// container picks the representation its cardinality profile favors:
//
//   - array: a sorted slice of IDs, 4 bytes per element — wins for
//     sparse results (the paper's "better sparse-set representations");
//   - bitmap: the dense N/8-byte form the paper stores per semantic
//     directory — wins above ~1/32 density;
//   - run: sorted [lo,hi] intervals, 8 bytes per run — wins for the
//     near-contiguous sets produced by compaction (aliveLocal of a
//     merged segment is typically one run).
//
// Mutating operations may change the representation; Pack re-selects
// the cheapest one. Like Bitmap, a Container is not safe for concurrent
// mutation.
type Container struct {
	kind  uint8
	n     int      // exact cardinality
	arr   []uint32 // kindArray: sorted, unique
	words []uint64 // kindBitmap
	runs  []irun   // kindRun: sorted, non-overlapping, gap >= 1 apart
}

// Container kinds.
const (
	kindArray uint8 = iota
	kindBitmap
	kindRun
)

// irun is one inclusive interval.
type irun struct{ lo, hi uint32 }

// arrayConvertLen is the array length beyond which Add switches the
// container to a bitmap (mirrors roaring's 4096-element rule).
const arrayConvertLen = 4096

// NewContainer returns an empty container (array representation).
func NewContainer() *Container { return &Container{kind: kindArray} }

// ContainerOf returns a container holding exactly the given ids.
func ContainerOf(ids ...uint32) *Container {
	c := NewContainer()
	for _, id := range ids {
		c.Add(id)
	}
	return c
}

// ContainerFromBitmap packs a dense bitmap into the cheapest
// representation. The bitmap is not retained.
func ContainerFromBitmap(bm *Bitmap) *Container {
	c := &Container{kind: kindBitmap, words: append([]uint64(nil), bm.words...)}
	c.n = bm.Len()
	c.Pack()
	return c
}

// containerSharingBitmap wraps bm's storage without copying; the caller
// must own bm and not reuse it afterwards.
func containerSharingBitmap(bm *Bitmap) *Container {
	c := &Container{kind: kindBitmap, words: bm.words}
	c.n = bm.Len()
	return c
}

// Kind names the current representation ("array", "bitmap" or "run"),
// for Explain output and tests.
func (c *Container) Kind() string {
	switch c.kind {
	case kindArray:
		return "array"
	case kindBitmap:
		return "bitmap"
	case kindRun:
		return "run"
	}
	return fmt.Sprintf("kind(%d)", c.kind)
}

// Len returns the number of elements.
func (c *Container) Len() int { return c.n }

// Any reports whether the container is non-empty.
func (c *Container) Any() bool { return c.n > 0 }

// SizeBytes returns the payload footprint of the current representation.
func (c *Container) SizeBytes() int {
	switch c.kind {
	case kindArray:
		return 4 * len(c.arr)
	case kindBitmap:
		return 8 * len(c.words)
	default:
		return 8 * len(c.runs)
	}
}

// Contains reports whether id is present.
func (c *Container) Contains(id uint32) bool {
	switch c.kind {
	case kindArray:
		i := searchU32(c.arr, id)
		return i < len(c.arr) && c.arr[i] == id
	case kindBitmap:
		w := int(id / wordBits)
		return w < len(c.words) && c.words[w]&(1<<(id%wordBits)) != 0
	default:
		i := sort.Search(len(c.runs), func(i int) bool { return c.runs[i].hi >= id })
		return i < len(c.runs) && c.runs[i].lo <= id
	}
}

func searchU32(a []uint32, v uint32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Add inserts id, converting representation when the array form
// outgrows its sweet spot.
func (c *Container) Add(id uint32) {
	switch c.kind {
	case kindArray:
		// Fast path: ascending appends (index commit order).
		if len(c.arr) == 0 || id > c.arr[len(c.arr)-1] {
			c.arr = append(c.arr, id)
			c.n++
		} else {
			i := searchU32(c.arr, id)
			if c.arr[i] == id {
				return
			}
			c.arr = append(c.arr, 0)
			copy(c.arr[i+1:], c.arr[i:])
			c.arr[i] = id
			c.n++
		}
		if len(c.arr) > arrayConvertLen {
			c.toBitmap()
		}
	case kindBitmap:
		w := int(id / wordBits)
		c.growWords(w + 1)
		mask := uint64(1) << (id % wordBits)
		if c.words[w]&mask == 0 {
			c.words[w] |= mask
			c.n++
		}
	default: // run: fall back to a mutable form
		c.toBitmap()
		c.Add(id)
	}
}

// Remove deletes id if present.
func (c *Container) Remove(id uint32) {
	switch c.kind {
	case kindArray:
		i := searchU32(c.arr, id)
		if i < len(c.arr) && c.arr[i] == id {
			c.arr = append(c.arr[:i], c.arr[i+1:]...)
			c.n--
		}
	case kindBitmap:
		w := int(id / wordBits)
		if w < len(c.words) {
			mask := uint64(1) << (id % wordBits)
			if c.words[w]&mask != 0 {
				c.words[w] &^= mask
				c.n--
			}
		}
	default:
		if c.Contains(id) {
			c.toBitmap()
			c.Remove(id)
		}
	}
}

func (c *Container) growWords(n int) {
	if n <= len(c.words) {
		return
	}
	w := make([]uint64, n)
	copy(w, c.words)
	c.words = w
}

// Range visits elements in ascending order until fn returns false.
func (c *Container) Range(fn func(id uint32) bool) {
	switch c.kind {
	case kindArray:
		for _, id := range c.arr {
			if !fn(id) {
				return
			}
		}
	case kindBitmap:
		for wi, w := range c.words {
			for w != 0 {
				bit := bits.TrailingZeros64(w)
				if !fn(uint32(wi*wordBits + bit)) {
					return
				}
				w &= w - 1
			}
		}
	default:
		for _, r := range c.runs {
			for v := uint64(r.lo); v <= uint64(r.hi); v++ {
				if !fn(uint32(v)) {
					return
				}
			}
		}
	}
}

// Slice returns the elements in ascending order.
func (c *Container) Slice() []uint32 {
	out := make([]uint32, 0, c.n)
	c.Range(func(id uint32) bool {
		out = append(out, id)
		return true
	})
	return out
}

// Clone returns a deep copy.
func (c *Container) Clone() *Container {
	out := &Container{kind: c.kind, n: c.n}
	switch c.kind {
	case kindArray:
		out.arr = append([]uint32(nil), c.arr...)
	case kindBitmap:
		out.words = append([]uint64(nil), c.words...)
	default:
		out.runs = append([]irun(nil), c.runs...)
	}
	return out
}

// Bitmap returns the container's elements as a fresh dense bitmap.
func (c *Container) Bitmap() *Bitmap {
	if c.kind == kindBitmap {
		return &Bitmap{words: append([]uint64(nil), c.words...)}
	}
	bm := NewBitmap(int(c.max()) + 1)
	c.Range(func(id uint32) bool {
		bm.Add(id)
		return true
	})
	return bm
}

// max returns the largest element, or 0 when empty.
func (c *Container) max() uint32 {
	if c.n == 0 {
		return 0
	}
	switch c.kind {
	case kindArray:
		return c.arr[len(c.arr)-1]
	case kindBitmap:
		for wi := len(c.words) - 1; wi >= 0; wi-- {
			if w := c.words[wi]; w != 0 {
				return uint32(wi*wordBits + 63 - bits.LeadingZeros64(w))
			}
		}
		return 0
	default:
		return c.runs[len(c.runs)-1].hi
	}
}

// toBitmap converts the representation to a dense bitmap in place.
func (c *Container) toBitmap() {
	if c.kind == kindBitmap {
		return
	}
	words := make([]uint64, int(c.max())/wordBits+1)
	if c.n == 0 {
		words = nil
	}
	switch c.kind {
	case kindArray:
		for _, id := range c.arr {
			words[id/wordBits] |= 1 << (id % wordBits)
		}
		c.arr = nil
	default:
		for _, r := range c.runs {
			for v := uint64(r.lo); v <= uint64(r.hi); v++ {
				words[v/wordBits] |= 1 << (v % wordBits)
			}
		}
		c.runs = nil
	}
	c.kind = kindBitmap
	c.words = words
}

// toArray converts the representation to a sorted array in place.
func (c *Container) toArray() {
	if c.kind == kindArray {
		return
	}
	c.arr = c.Slice()
	c.words, c.runs = nil, nil
	c.kind = kindArray
}

// runCount returns the number of maximal runs in the set.
func (c *Container) runCount() int {
	runs, prev := 0, uint64(1<<33)
	c.Range(func(id uint32) bool {
		if uint64(id) != prev+1 {
			runs++
		}
		prev = uint64(id)
		return true
	})
	return runs
}

// Pack re-selects the cheapest representation for the current contents:
// 4n bytes as an array, span/8 as a bitmap, 8r as runs.
func (c *Container) Pack() {
	if c.n == 0 {
		*c = Container{kind: kindArray}
		return
	}
	arrCost := 4 * c.n
	bmpCost := (int(c.max())/wordBits + 1) * 8
	r := c.runCount()
	runCost := 8 * r
	switch {
	case runCost <= arrCost && runCost <= bmpCost:
		if c.kind == kindRun {
			return
		}
		runs := make([]irun, 0, r)
		first := true
		var cur irun
		c.Range(func(id uint32) bool {
			if first {
				cur = irun{id, id}
				first = false
			} else if id == cur.hi+1 {
				cur.hi = id
			} else {
				runs = append(runs, cur)
				cur = irun{id, id}
			}
			return true
		})
		runs = append(runs, cur)
		n := c.n
		*c = Container{kind: kindRun, runs: runs, n: n}
	case arrCost <= bmpCost:
		c.toArray()
	default:
		c.toBitmap()
	}
}

// Trim removes every element >= limit, keeping only ids in [0, limit).
func (c *Container) Trim(limit int) {
	if limit < 0 {
		limit = 0
	}
	switch c.kind {
	case kindArray:
		i := len(c.arr)
		for i > 0 && uint64(c.arr[i-1]) >= uint64(limit) {
			i--
		}
		c.arr = c.arr[:i]
		c.n = i
	case kindBitmap:
		w := limit / wordBits
		if w < len(c.words) {
			c.words[w] &= (1 << (limit % wordBits)) - 1
			for i := w + 1; i < len(c.words); i++ {
				c.words[i] = 0
			}
			c.recount()
		}
	default:
		out := c.runs[:0]
		for _, r := range c.runs {
			if uint64(r.lo) >= uint64(limit) {
				break
			}
			if uint64(r.hi) >= uint64(limit) {
				r.hi = uint32(limit - 1)
			}
			out = append(out, r)
		}
		c.runs = out
		c.recount()
	}
}

func (c *Container) recount() {
	switch c.kind {
	case kindArray:
		c.n = len(c.arr)
	case kindBitmap:
		n := 0
		for _, w := range c.words {
			n += bits.OnesCount64(w)
		}
		c.n = n
	default:
		n := 0
		for _, r := range c.runs {
			n += int(r.hi-r.lo) + 1
		}
		c.n = n
	}
}

// Equal reports whether c and o contain the same elements.
func (c *Container) Equal(o *Container) bool {
	if c.n != o.n {
		return false
	}
	ci, oi := c.Iter(), o.Iter()
	for {
		cv, cok := ci.Next()
		ov, ook := oi.Next()
		if cok != ook {
			return false
		}
		if !cok {
			return true
		}
		if cv != ov {
			return false
		}
	}
}

// And intersects c with o in place. Array-vs-array uses a galloping
// merge (exponential probe from the current position), the skip-list
// style intersection the planner's cheapest-first AND chains rely on.
func (c *Container) And(o *Container) {
	if c.n == 0 {
		return
	}
	if o.n == 0 {
		*c = Container{kind: kindArray}
		return
	}
	switch {
	case c.kind == kindArray && o.kind == kindArray:
		c.arr = intersectGalloping(c.arr, o.arr)
		c.n = len(c.arr)
	case c.kind == kindArray:
		out := c.arr[:0]
		for _, id := range c.arr {
			if o.Contains(id) {
				out = append(out, id)
			}
		}
		c.arr = out
		c.n = len(out)
	case c.kind == kindBitmap && o.kind == kindBitmap:
		n := min(len(c.words), len(o.words))
		for i := 0; i < n; i++ {
			c.words[i] &= o.words[i]
		}
		for i := n; i < len(c.words); i++ {
			c.words[i] = 0
		}
		c.recount()
	case c.kind == kindBitmap && o.kind == kindArray:
		// Probe the small side: the result is at most o.
		out := make([]uint32, 0, min(c.n, o.n))
		for _, id := range o.arr {
			if c.Contains(id) {
				out = append(out, id)
			}
		}
		*c = Container{kind: kindArray, arr: out, n: len(out)}
	case c.kind == kindBitmap: // o is runs: mask words outside o's runs
		c.maskToRuns(o.runs)
		c.recount()
	default: // c is runs
		if o.kind == kindRun {
			c.runs = intersectRuns(c.runs, o.runs)
			c.recount()
			return
		}
		c.toBitmap()
		c.And(o)
	}
}

// intersectGalloping intersects two sorted slices in place of a, using
// exponential search on the longer side.
func intersectGalloping(a, b []uint32) []uint32 {
	if len(a) > len(b) {
		// Keep the probe side the longer one; result fits in a's storage.
		out := a[:0]
		bi := 0
		for _, v := range b {
			bi = gallopTo(a, bi, v)
			if bi < len(a) && a[bi] == v {
				out = append(out, v)
			}
			if bi >= len(a) {
				break
			}
		}
		return out
	}
	out := a[:0]
	bi := 0
	for _, v := range a {
		bi = gallopTo(b, bi, v)
		if bi >= len(b) {
			break
		}
		if b[bi] == v {
			out = append(out, v)
		}
	}
	return out
}

// gallopTo returns the smallest index i >= from with a[i] >= v, probing
// exponentially before the final binary search.
func gallopTo(a []uint32, from int, v uint32) int {
	if from >= len(a) || a[from] >= v {
		return from
	}
	step := 1
	lo := from
	for lo+step < len(a) && a[lo+step] < v {
		lo += step
		step <<= 1
	}
	hi := min(lo+step, len(a))
	return lo + searchU32(a[lo:hi], v)
}

// maskToRuns clears every bit of a bitmap container outside runs.
func (c *Container) maskToRuns(runs []irun) {
	masked := make([]uint64, len(c.words))
	for _, r := range runs {
		loW, hiW := int(r.lo/wordBits), int(r.hi/wordBits)
		if loW >= len(c.words) {
			break
		}
		hiW = min(hiW, len(c.words)-1)
		for w := loW; w <= hiW; w++ {
			mask := ^uint64(0)
			if w == loW {
				mask &= ^uint64(0) << (r.lo % wordBits)
			}
			if w == int(r.hi/wordBits) {
				keep := uint64(r.hi%wordBits) + 1
				if keep < 64 {
					mask &= (1 << keep) - 1
				}
			}
			masked[w] |= c.words[w] & mask
		}
	}
	c.words = masked
}

// intersectRuns intersects two sorted run lists.
func intersectRuns(a, b []irun) []irun {
	var out []irun
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := max(a[i].lo, b[j].lo)
		hi := min(a[i].hi, b[j].hi)
		if lo <= hi {
			out = append(out, irun{lo, hi})
		}
		if a[i].hi < b[j].hi {
			i++
		} else {
			j++
		}
	}
	return out
}

// Or unions o into c in place.
func (c *Container) Or(o *Container) {
	if o.n == 0 {
		return
	}
	if c.n == 0 {
		*c = *o.Clone()
		return
	}
	switch {
	case c.kind == kindArray && o.kind == kindArray:
		c.arr = unionArrays(c.arr, o.arr)
		c.n = len(c.arr)
		if len(c.arr) > arrayConvertLen {
			c.toBitmap()
		}
	case c.kind == kindRun && o.kind == kindRun:
		c.runs = unionRuns(c.runs, o.runs)
		c.recount()
	case c.kind == kindBitmap && o.kind == kindBitmap:
		c.growWords(len(o.words))
		for i, w := range o.words {
			c.words[i] |= w
		}
		c.recount()
	default:
		c.toBitmap()
		c.growWords(int(o.max())/wordBits + 1)
		o.Range(func(id uint32) bool {
			c.words[id/wordBits] |= 1 << (id % wordBits)
			return true
		})
		c.recount()
	}
}

func unionArrays(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func unionRuns(a, b []irun) []irun {
	all := make([]irun, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var next irun
		if j >= len(b) || (i < len(a) && a[i].lo <= b[j].lo) {
			next = a[i]
			i++
		} else {
			next = b[j]
			j++
		}
		if n := len(all); n > 0 && uint64(next.lo) <= uint64(all[n-1].hi)+1 {
			if next.hi > all[n-1].hi {
				all[n-1].hi = next.hi
			}
		} else {
			all = append(all, next)
		}
	}
	return all
}

// AndNot removes every element of o from c in place.
func (c *Container) AndNot(o *Container) {
	if c.n == 0 || o.n == 0 {
		return
	}
	switch {
	case c.kind == kindArray:
		out := c.arr[:0]
		for _, id := range c.arr {
			if !o.Contains(id) {
				out = append(out, id)
			}
		}
		c.arr = out
		c.n = len(out)
	case c.kind == kindBitmap && o.kind == kindBitmap:
		n := min(len(c.words), len(o.words))
		for i := 0; i < n; i++ {
			c.words[i] &^= o.words[i]
		}
		c.recount()
	case c.kind == kindBitmap && o.kind == kindArray:
		for _, id := range o.arr {
			c.Remove(id)
		}
	case c.kind == kindBitmap: // o is runs
		for _, r := range o.runs {
			for w := int(r.lo / wordBits); w <= int(r.hi/wordBits) && w < len(c.words); w++ {
				mask := ^uint64(0)
				if w == int(r.lo/wordBits) {
					mask &= ^uint64(0) << (r.lo % wordBits)
				}
				if w == int(r.hi/wordBits) {
					keep := uint64(r.hi%wordBits) + 1
					if keep < 64 {
						mask &= (1 << keep) - 1
					}
				}
				c.words[w] &^= mask
			}
		}
		c.recount()
	default: // c is runs
		c.toBitmap()
		c.AndNot(o)
	}
}

// AndBitmap keeps only elements also present in bm — the probe step of
// a scope-first term lookup, where c is the (small) in-scope set and bm
// a segment's dense posting bitmap.
func (c *Container) AndBitmap(bm *Bitmap) {
	switch c.kind {
	case kindArray:
		out := c.arr[:0]
		for _, id := range c.arr {
			if bm.Contains(id) {
				out = append(out, id)
			}
		}
		c.arr = out
		c.n = len(out)
	case kindBitmap:
		n := min(len(c.words), len(bm.words))
		for i := 0; i < n; i++ {
			c.words[i] &= bm.words[i]
		}
		for i := n; i < len(c.words); i++ {
			c.words[i] = 0
		}
		c.recount()
	default:
		c.toBitmap()
		c.AndBitmap(bm)
	}
}

// AndNotBitmap removes every element of bm from c.
func (c *Container) AndNotBitmap(bm *Bitmap) {
	switch c.kind {
	case kindArray:
		out := c.arr[:0]
		for _, id := range c.arr {
			if !bm.Contains(id) {
				out = append(out, id)
			}
		}
		c.arr = out
		c.n = len(out)
	case kindBitmap:
		n := min(len(c.words), len(bm.words))
		for i := 0; i < n; i++ {
			c.words[i] &^= bm.words[i]
		}
		c.recount()
	default:
		c.toBitmap()
		c.AndNotBitmap(bm)
	}
}

// Iter returns an iterator positioned before the first element.
type ContainerIter struct {
	c   *Container
	idx int    // array index / run index
	wi  int    // bitmap word index
	w   uint64 // remaining bits of current word
	cur uint64 // next value within current run (run kind)
}

// Iter returns a fresh iterator over c. Mutating c invalidates it.
func (c *Container) Iter() *ContainerIter {
	it := &ContainerIter{c: c}
	if c.kind == kindBitmap && len(c.words) > 0 {
		it.w = c.words[0]
	}
	if c.kind == kindRun && len(c.runs) > 0 {
		it.cur = uint64(c.runs[0].lo)
	}
	return it
}

// Next returns the next element in ascending order.
func (it *ContainerIter) Next() (uint32, bool) {
	c := it.c
	switch c.kind {
	case kindArray:
		if it.idx >= len(c.arr) {
			return 0, false
		}
		v := c.arr[it.idx]
		it.idx++
		return v, true
	case kindBitmap:
		for it.wi < len(c.words) {
			if it.w != 0 {
				bit := bits.TrailingZeros64(it.w)
				it.w &= it.w - 1
				return uint32(it.wi*wordBits + bit), true
			}
			it.wi++
			if it.wi < len(c.words) {
				it.w = c.words[it.wi]
			}
		}
		return 0, false
	default:
		for it.idx < len(c.runs) {
			r := c.runs[it.idx]
			if it.cur < uint64(r.lo) {
				it.cur = uint64(r.lo)
			}
			if it.cur <= uint64(r.hi) {
				v := uint32(it.cur)
				it.cur++
				return v, true
			}
			it.idx++
			if it.idx < len(c.runs) {
				it.cur = uint64(c.runs[it.idx].lo)
			}
		}
		return 0, false
	}
}

// Advance returns the smallest element >= v at or after the iterator's
// position (galloping on arrays, word-skipping on bitmaps, run-skipping
// on run lists), advancing past it. Calls must use non-decreasing v.
func (it *ContainerIter) Advance(v uint32) (uint32, bool) {
	c := it.c
	switch c.kind {
	case kindArray:
		it.idx = gallopTo(c.arr, it.idx, v)
		return it.Next()
	case kindBitmap:
		w := int(v / wordBits)
		if w > it.wi {
			it.wi = w
			if it.wi < len(c.words) {
				it.w = c.words[it.wi]
			} else {
				it.w = 0
			}
		}
		if it.wi == w && it.wi < len(c.words) {
			it.w &= ^uint64(0) << (v % wordBits)
		}
		return it.Next()
	default:
		for it.idx < len(c.runs) && c.runs[it.idx].hi < v {
			it.idx++
			if it.idx < len(c.runs) {
				it.cur = uint64(c.runs[it.idx].lo)
			}
		}
		if it.idx < len(c.runs) && it.cur < uint64(v) {
			it.cur = uint64(v)
		}
		return it.Next()
	}
}

// ---------------------------------------------------------------------
// Binary codec. One container serializes as
//
//	kind byte ('A' | 'B' | 'R') | u32 count | payload (LE fixed-width)
//
// where payload is count*4 bytes of sorted ids (A), count*8 bytes of
// words (B), or count*8 bytes of [lo,hi] pairs (R). Decoding validates
// every representation invariant, so a corrupted or adversarial image
// yields an error, never a malformed set (FuzzContainerCodec drives
// this).
// ---------------------------------------------------------------------

// Codec kind bytes.
const (
	codecArray  = 'A'
	codecBitmap = 'B'
	codecRun    = 'R'
)

// maxCodecCount bounds the element/word/run count a decoder accepts.
const maxCodecCount = 1 << 28

// AppendBinary appends the container's serialized form to dst.
func (c *Container) AppendBinary(dst []byte) []byte {
	switch c.kind {
	case kindArray:
		dst = append(dst, codecArray)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(c.arr)))
		for _, id := range c.arr {
			dst = binary.LittleEndian.AppendUint32(dst, id)
		}
	case kindBitmap:
		words := c.words
		for len(words) > 0 && words[len(words)-1] == 0 {
			words = words[:len(words)-1]
		}
		dst = append(dst, codecBitmap)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(words)))
		for _, w := range words {
			dst = binary.LittleEndian.AppendUint64(dst, w)
		}
	default:
		dst = append(dst, codecRun)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(c.runs)))
		for _, r := range c.runs {
			dst = binary.LittleEndian.AppendUint32(dst, r.lo)
			dst = binary.LittleEndian.AppendUint32(dst, r.hi)
		}
	}
	return dst
}

// DecodeContainer decodes one container from the front of data,
// returning it and the number of bytes consumed.
func DecodeContainer(data []byte) (*Container, int, error) {
	if len(data) < 5 {
		return nil, 0, fmt.Errorf("bitset: container truncated (%d bytes)", len(data))
	}
	kind := data[0]
	count := int(binary.LittleEndian.Uint32(data[1:5]))
	if count < 0 || count > maxCodecCount {
		return nil, 0, fmt.Errorf("bitset: implausible container count %d", count)
	}
	body := data[5:]
	switch kind {
	case codecArray:
		need := 4 * count
		if len(body) < need {
			return nil, 0, fmt.Errorf("bitset: array container truncated")
		}
		arr := make([]uint32, count)
		for i := range arr {
			arr[i] = binary.LittleEndian.Uint32(body[4*i:])
			if i > 0 && arr[i] <= arr[i-1] {
				return nil, 0, fmt.Errorf("bitset: array container not strictly sorted at %d", i)
			}
		}
		return &Container{kind: kindArray, arr: arr, n: count}, 5 + need, nil
	case codecBitmap:
		need := 8 * count
		if len(body) < need {
			return nil, 0, fmt.Errorf("bitset: bitmap container truncated")
		}
		words := make([]uint64, count)
		n := 0
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(body[8*i:])
			n += bits.OnesCount64(words[i])
		}
		if count > 0 && words[count-1] == 0 {
			return nil, 0, fmt.Errorf("bitset: bitmap container has trailing zero word")
		}
		return &Container{kind: kindBitmap, words: words, n: n}, 5 + need, nil
	case codecRun:
		need := 8 * count
		if len(body) < need {
			return nil, 0, fmt.Errorf("bitset: run container truncated")
		}
		runs := make([]irun, count)
		n := 0
		for i := range runs {
			lo := binary.LittleEndian.Uint32(body[8*i:])
			hi := binary.LittleEndian.Uint32(body[8*i+4:])
			if hi < lo {
				return nil, 0, fmt.Errorf("bitset: inverted run [%d,%d]", lo, hi)
			}
			if i > 0 && uint64(lo) <= uint64(runs[i-1].hi)+1 {
				return nil, 0, fmt.Errorf("bitset: overlapping or adjacent runs at %d", i)
			}
			runs[i] = irun{lo, hi}
			n += int(hi-lo) + 1
			if n > maxCodecCount {
				return nil, 0, fmt.Errorf("bitset: implausible run cardinality")
			}
		}
		return &Container{kind: kindRun, runs: runs, n: n}, 5 + need, nil
	default:
		return nil, 0, fmt.Errorf("bitset: unknown container kind %q", kind)
	}
}
