package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitmapBasic(t *testing.T) {
	b := NewBitmap(100)
	if b.Len() != 0 {
		t.Fatalf("new bitmap Len = %d, want 0", b.Len())
	}
	b.Add(3)
	b.Add(64)
	b.Add(99)
	if !b.Contains(3) || !b.Contains(64) || !b.Contains(99) {
		t.Fatal("missing added elements")
	}
	if b.Contains(4) {
		t.Fatal("contains element never added")
	}
	if got := b.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	b.Remove(64)
	if b.Contains(64) {
		t.Fatal("contains removed element")
	}
	if got := b.Len(); got != 2 {
		t.Fatalf("Len after remove = %d, want 2", got)
	}
}

func TestBitmapGrow(t *testing.T) {
	b := NewBitmap(0)
	b.Add(1000)
	if !b.Contains(1000) {
		t.Fatal("bitmap did not grow on Add")
	}
	// Remove beyond current size must not panic.
	b.Remove(1 << 20)
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
}

func TestBitmapRangeOrder(t *testing.T) {
	b := BitmapOf(9, 1, 5, 63, 64, 65)
	var got []uint32
	b.Range(func(id uint32) bool {
		got = append(got, id)
		return true
	})
	want := []uint32{1, 5, 9, 63, 64, 65}
	if len(got) != len(want) {
		t.Fatalf("Range visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range visited %v, want %v", got, want)
		}
	}
}

func TestBitmapRangeEarlyStop(t *testing.T) {
	b := BitmapOf(1, 2, 3, 4, 5)
	n := 0
	b.Range(func(uint32) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("Range visited %d elements after early stop, want 2", n)
	}
}

func TestBitmapSetOps(t *testing.T) {
	a := BitmapOf(1, 2, 3, 100)
	b := BitmapOf(2, 3, 4)

	if got := Intersect(a, b).Slice(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Intersect = %v, want [2 3]", got)
	}
	if got := Union(a, b).Len(); got != 5 {
		t.Fatalf("Union Len = %d, want 5", got)
	}
	if got := Difference(a, b).Slice(); len(got) != 2 || got[0] != 1 || got[1] != 100 {
		t.Fatalf("Difference = %v, want [1 100]", got)
	}
}

func TestBitmapAndShorterOperand(t *testing.T) {
	a := BitmapOf(1, 1000) // long
	b := BitmapOf(1)       // short
	a.And(b)
	if a.Contains(1000) {
		t.Fatal("And with shorter operand kept high bits")
	}
	if !a.Contains(1) {
		t.Fatal("And dropped shared element")
	}
}

func TestBitmapEqual(t *testing.T) {
	a := BitmapOf(1, 2, 3)
	b := NewBitmap(10000) // longer word slice, same content
	for _, id := range []uint32{1, 2, 3} {
		b.Add(id)
	}
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("Equal must ignore trailing zero words")
	}
	b.Add(9999)
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("Equal true for different sets")
	}
}

func TestBitmapCloneIndependent(t *testing.T) {
	a := BitmapOf(1, 2)
	c := a.Clone()
	c.Add(3)
	if a.Contains(3) {
		t.Fatal("Clone shares storage with original")
	}
}

func TestBitmapClearAndAny(t *testing.T) {
	a := BitmapOf(5, 6)
	if !a.Any() {
		t.Fatal("Any = false for non-empty set")
	}
	a.Clear()
	if a.Any() || a.Len() != 0 {
		t.Fatal("Clear left elements behind")
	}
}

func TestSparseBasic(t *testing.T) {
	s := NewSparse()
	s.Add(5)
	s.Add(1)
	s.Add(5) // duplicate
	s.Add(3)
	if got := s.Slice(); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("Slice = %v, want [1 3 5]", got)
	}
	s.Remove(3)
	if s.Contains(3) || s.Len() != 2 {
		t.Fatal("Remove failed")
	}
	s.Remove(999) // absent: no-op
	if s.Len() != 2 {
		t.Fatal("Remove of absent element changed set")
	}
}

func TestConversions(t *testing.T) {
	b := BitmapOf(7, 70, 700)
	s := FromBitmap(b)
	if s.Len() != 3 || !s.Contains(70) {
		t.Fatalf("FromBitmap = %v", s)
	}
	b2 := ToBitmap(s, 1000)
	if !b.Equal(b2) {
		t.Fatalf("round trip mismatch: %v vs %v", b, b2)
	}
}

func TestSizeBytes(t *testing.T) {
	b := NewBitmap(17000)
	// Paper: N/8 bytes ≈ 2 KB for N=17000 (rounded up to word granularity).
	if got := b.SizeBytes(); got < 17000/8 || got > 17000/8+8 {
		t.Fatalf("bitmap SizeBytes = %d, want ≈ %d", got, 17000/8)
	}
	s := SparseOf(1, 2, 3)
	if got := s.SizeBytes(); got != 12 {
		t.Fatalf("sparse SizeBytes = %d, want 12", got)
	}
}

func TestString(t *testing.T) {
	if got := BitmapOf(1, 5).String(); got != "{1 5}" {
		t.Fatalf("String = %q, want {1 5}", got)
	}
	if got := NewSparse().String(); got != "{}" {
		t.Fatalf("empty String = %q, want {}", got)
	}
}

// Property: a bitmap and a sparse set driven by the same operation
// sequence always agree.
func TestPropertyBitmapSparseAgree(t *testing.T) {
	f := func(ops []uint16) bool {
		b := NewBitmap(0)
		s := NewSparse()
		for _, op := range ops {
			id := uint32(op % 512)
			if op%3 == 0 {
				b.Remove(id)
				s.Remove(id)
			} else {
				b.Add(id)
				s.Add(id)
			}
		}
		if b.Len() != s.Len() {
			return false
		}
		ok := true
		s.Range(func(id uint32) bool {
			if !b.Contains(id) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan over a finite universe —
// universe − (a ∪ b) == (universe − a) ∩ (universe − b).
func TestPropertyDeMorgan(t *testing.T) {
	const universe = 256
	full := NewBitmap(universe)
	for i := uint32(0); i < universe; i++ {
		full.Add(i)
	}
	f := func(aIDs, bIDs []uint16) bool {
		a, b := NewBitmap(universe), NewBitmap(universe)
		for _, id := range aIDs {
			a.Add(uint32(id % universe))
		}
		for _, id := range bIDs {
			b.Add(uint32(id % universe))
		}
		lhs := Difference(full, Union(a, b))
		rhs := Intersect(Difference(full, a), Difference(full, b))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Add then Remove restores the original membership.
func TestPropertyAddRemoveInverse(t *testing.T) {
	f := func(base []uint16, id uint16) bool {
		b := NewBitmap(0)
		for _, x := range base {
			b.Add(uint32(x))
		}
		had := b.Contains(uint32(id))
		b.Add(uint32(id))
		if !b.Contains(uint32(id)) {
			return false
		}
		b.Remove(uint32(id))
		if b.Contains(uint32(id)) {
			return false
		}
		_ = had
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := NewBitmap(0)
	ref := map[uint32]bool{}
	for i := 0; i < 20000; i++ {
		id := uint32(rng.Intn(4096))
		switch rng.Intn(3) {
		case 0:
			b.Remove(id)
			delete(ref, id)
		default:
			b.Add(id)
			ref[id] = true
		}
	}
	if b.Len() != len(ref) {
		t.Fatalf("Len = %d, reference = %d", b.Len(), len(ref))
	}
	for id := range ref {
		if !b.Contains(id) {
			t.Fatalf("missing %d", id)
		}
	}
}
