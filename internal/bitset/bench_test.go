package bitset

import "testing"

func benchBitmaps(n, stride int) (*Bitmap, *Bitmap) {
	a, b := NewBitmap(n), NewBitmap(n)
	for i := 0; i < n; i += stride {
		a.Add(uint32(i))
		b.Add(uint32((i + stride/2) % n))
	}
	return a, b
}

func BenchmarkBitmapAnd17000(b *testing.B) {
	x, y := benchBitmaps(17000, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := x.Clone()
		c.And(y)
	}
}

func BenchmarkBitmapOr17000(b *testing.B) {
	x, y := benchBitmaps(17000, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := x.Clone()
		c.Or(y)
	}
}

func BenchmarkBitmapRange(b *testing.B) {
	x, _ := benchBitmaps(17000, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		x.Range(func(uint32) bool {
			n++
			return true
		})
	}
}

func BenchmarkSparseAdd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSparse()
		for j := uint32(0); j < 256; j++ {
			s.Add(j * 7 % 509)
		}
	}
}
