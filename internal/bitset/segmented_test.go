package bitset

import (
	"math/rand"
	"reflect"
	"testing"
)

func seg(s, l uint32) uint64 { return uint64(s)<<32 | uint64(l) }

func TestSegmentedAddRemoveContains(t *testing.T) {
	s := NewSegmented()
	ids := []uint64{seg(0, 0), seg(0, 63), seg(0, 64), seg(1, 5), seg(7, 1000)}
	for _, id := range ids {
		s.Add(id)
	}
	for _, id := range ids {
		if !s.Contains(id) {
			t.Fatalf("missing %d:%d", id>>32, uint32(id))
		}
	}
	if s.Contains(seg(1, 6)) || s.Contains(seg(2, 5)) {
		t.Fatal("contains elements never added")
	}
	if s.Len() != len(ids) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(ids))
	}
	s.Remove(seg(1, 5))
	if s.Contains(seg(1, 5)) || s.Len() != len(ids)-1 {
		t.Fatal("Remove failed")
	}
	// Removing a segment's last element drops its bitmap entirely — the
	// no-empty-bitmaps invariant Any/Equal depend on.
	if s.Seg(1) != nil {
		t.Fatal("emptied segment bitmap retained")
	}
	s.Remove(seg(9, 9)) // absent: no-op
}

func TestSegmentedRangeAscending(t *testing.T) {
	s := SegmentedOf(seg(3, 2), seg(0, 7), seg(3, 0), seg(1, 64), seg(0, 1))
	want := []uint64{seg(0, 1), seg(0, 7), seg(1, 64), seg(3, 0), seg(3, 2)}
	if got := s.Slice(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Slice = %v, want %v", got, want)
	}
	// Early stop.
	var seen int
	s.Range(func(uint64) bool { seen++; return seen < 2 })
	if seen != 2 {
		t.Fatalf("Range visited %d after stop, want 2", seen)
	}
}

func TestSegmentedSetOps(t *testing.T) {
	a := SegmentedOf(seg(0, 1), seg(0, 2), seg(1, 1), seg(2, 9))
	b := SegmentedOf(seg(0, 2), seg(1, 1), seg(1, 2), seg(3, 4))

	and := a.Clone()
	and.And(b)
	if want := SegmentedOf(seg(0, 2), seg(1, 1)); !and.Equal(want) {
		t.Fatalf("And = %v", and)
	}
	or := a.Clone()
	or.Or(b)
	if or.Len() != 6 || !or.Contains(seg(3, 4)) || !or.Contains(seg(2, 9)) {
		t.Fatalf("Or = %v", or)
	}
	andNot := a.Clone()
	andNot.AndNot(b)
	if want := SegmentedOf(seg(0, 1), seg(2, 9)); !andNot.Equal(want) {
		t.Fatalf("AndNot = %v", andNot)
	}
	// Operands are untouched.
	if a.Len() != 4 || b.Len() != 4 {
		t.Fatal("set ops mutated their operands")
	}
	// Or clones the donor's bitmaps: mutating the result later must not
	// write through into b.
	or.Add(seg(3, 5))
	if b.Contains(seg(3, 5)) {
		t.Fatal("Or shares bitmap storage with its operand")
	}
}

func TestSegmentedEqual(t *testing.T) {
	a := SegmentedOf(seg(0, 1), seg(5, 2))
	b := SegmentedOf(seg(5, 2), seg(0, 1))
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("equal sets not Equal")
	}
	b.Add(seg(5, 3))
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("unequal sets Equal")
	}
	if !NewSegmented().Equal(NewSegmented()) {
		t.Fatal("empty sets not Equal")
	}
}

func TestSegmentedPutSegAndSeg(t *testing.T) {
	s := NewSegmented()
	s.PutSeg(4, BitmapOf(1, 3, 5))
	if s.Len() != 3 || !s.Contains(seg(4, 3)) {
		t.Fatalf("PutSeg contents wrong: %v", s)
	}
	if got := s.Seg(4); got == nil || got.Len() != 3 {
		t.Fatal("Seg did not return the installed bitmap")
	}
	// Installing an empty bitmap clears the segment.
	s.PutSeg(4, NewBitmap(0))
	if s.Any() || s.Seg(4) != nil {
		t.Fatal("PutSeg with empty bitmap did not clear the segment")
	}
	s.PutSeg(2, nil)
	if s.Seg(2) != nil {
		t.Fatal("PutSeg(nil) installed something")
	}
}

// TestPropertySegmentedMatchesMap cross-checks the structure against a
// plain map-of-IDs model under random mixed operations.
func TestPropertySegmentedMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSegmented()
	model := map[uint64]bool{}
	randID := func() uint64 { return seg(uint32(rng.Intn(4)), uint32(rng.Intn(200))) }
	for i := 0; i < 5000; i++ {
		id := randID()
		switch rng.Intn(3) {
		case 0, 1:
			s.Add(id)
			model[id] = true
		case 2:
			s.Remove(id)
			delete(model, id)
		}
		if probe := randID(); s.Contains(probe) != model[probe] {
			t.Fatalf("op %d: Contains(%d:%d) = %v, model says %v", i, probe>>32, uint32(probe), s.Contains(probe), model[probe])
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, model has %d", s.Len(), len(model))
	}
	for id := range model {
		if !s.Contains(id) {
			t.Fatalf("model element %d:%d missing", id>>32, uint32(id))
		}
	}
}
