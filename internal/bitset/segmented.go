package bitset

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Segmented is a set of 64-bit segmented document IDs, as produced by
// the segmented index store: the high 32 bits of an ID name a segment,
// the low 32 bits a local slot within it. Each segment's local set is a
// Container — a roaring-style compressed set that picks an array,
// bitmap, or run representation by cardinality — so sparse query
// results cost bytes proportional to their size while dense postings
// keep the paper's flat-bitmap operation costs.
//
// Like Bitmap, a Segmented is not safe for concurrent mutation.
type Segmented struct {
	segs map[uint32]*Container // segment → local set, no empty containers
}

// NewSegmented returns an empty segmented set.
func NewSegmented() *Segmented {
	return &Segmented{segs: make(map[uint32]*Container)}
}

// SegmentedOf returns a segmented set containing exactly the given ids.
func SegmentedOf(ids ...uint64) *Segmented {
	s := NewSegmented()
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

func splitSegID(id uint64) (seg, local uint32) {
	return uint32(id >> 32), uint32(id)
}

func joinSegID(seg, local uint32) uint64 {
	return uint64(seg)<<32 | uint64(local)
}

// Add inserts id.
func (s *Segmented) Add(id uint64) {
	seg, local := splitSegID(id)
	c, ok := s.segs[seg]
	if !ok {
		c = NewContainer()
		s.segs[seg] = c
	}
	c.Add(local)
}

// Remove deletes id if present.
func (s *Segmented) Remove(id uint64) {
	seg, local := splitSegID(id)
	if c, ok := s.segs[seg]; ok {
		c.Remove(local)
		if !c.Any() {
			delete(s.segs, seg)
		}
	}
}

// Contains reports whether id is present.
func (s *Segmented) Contains(id uint64) bool {
	seg, local := splitSegID(id)
	c, ok := s.segs[seg]
	return ok && c.Contains(local)
}

// Len returns the number of elements.
func (s *Segmented) Len() int {
	n := 0
	for _, c := range s.segs {
		n += c.Len()
	}
	return n
}

// Any reports whether the set is non-empty.
func (s *Segmented) Any() bool {
	for _, c := range s.segs {
		if c.Any() {
			return true
		}
	}
	return false
}

// segments returns the segment keys in ascending order.
func (s *Segmented) segments() []uint32 {
	keys := make([]uint32, 0, len(s.segs))
	for k := range s.segs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Range visits elements in ascending ID order until fn returns false.
func (s *Segmented) Range(fn func(id uint64) bool) {
	for _, seg := range s.segments() {
		stop := false
		s.segs[seg].Range(func(local uint32) bool {
			if !fn(joinSegID(seg, local)) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Slice returns the elements in ascending order.
func (s *Segmented) Slice() []uint64 {
	out := make([]uint64, 0, s.Len())
	s.Range(func(id uint64) bool {
		out = append(out, id)
		return true
	})
	return out
}

// Clone returns a deep copy.
func (s *Segmented) Clone() *Segmented {
	out := NewSegmented()
	for seg, c := range s.segs {
		out.segs[seg] = c.Clone()
	}
	return out
}

// And intersects s with other in place.
func (s *Segmented) And(other *Segmented) {
	for seg, c := range s.segs {
		oc, ok := other.segs[seg]
		if !ok {
			delete(s.segs, seg)
			continue
		}
		c.And(oc)
		if !c.Any() {
			delete(s.segs, seg)
		}
	}
}

// Or unions other into s in place.
func (s *Segmented) Or(other *Segmented) {
	for seg, oc := range other.segs {
		if !oc.Any() {
			continue
		}
		c, ok := s.segs[seg]
		if !ok {
			s.segs[seg] = oc.Clone()
			continue
		}
		c.Or(oc)
	}
}

// AndNot removes every element of other from s in place.
func (s *Segmented) AndNot(other *Segmented) {
	for seg, c := range s.segs {
		if oc, ok := other.segs[seg]; ok {
			c.AndNot(oc)
			if !c.Any() {
				delete(s.segs, seg)
			}
		}
	}
}

// Equal reports whether s and other contain the same elements.
func (s *Segmented) Equal(other *Segmented) bool {
	for seg, c := range s.segs {
		oc, ok := other.segs[seg]
		if !ok {
			if c.Any() {
				return false
			}
			continue
		}
		if !c.Equal(oc) {
			return false
		}
	}
	for seg, oc := range other.segs {
		if _, ok := s.segs[seg]; !ok && oc.Any() {
			return false
		}
	}
	return true
}

// SizeBytes returns the approximate payload footprint across segments.
func (s *Segmented) SizeBytes() int {
	n := 0
	for _, c := range s.segs {
		n += 8 + c.SizeBytes()
	}
	return n
}

// Seg returns one segment's local set as a dense bitmap, or nil when
// the segment is empty. The bitmap is a copy; mutating it does not
// affect s.
func (s *Segmented) Seg(seg uint32) *Bitmap {
	c, ok := s.segs[seg]
	if !ok {
		return nil
	}
	return c.Bitmap()
}

// PutSeg installs bm as the local set of one segment, taking ownership
// of bm. An empty bm clears the segment.
func (s *Segmented) PutSeg(seg uint32, bm *Bitmap) {
	if bm == nil || !bm.Any() {
		delete(s.segs, seg)
		return
	}
	s.segs[seg] = containerSharingBitmap(bm)
}

// SegContainer returns the container stored for one segment, or nil.
// The container is shared, not copied; treat it as read-only.
func (s *Segmented) SegContainer(seg uint32) *Container {
	return s.segs[seg]
}

// PutSegContainer installs c as the local set of one segment, taking
// ownership of c. An empty or nil c clears the segment.
func (s *Segmented) PutSegContainer(seg uint32, c *Container) {
	if c == nil || !c.Any() {
		delete(s.segs, seg)
		return
	}
	s.segs[seg] = c
}

// Pack re-selects the cheapest representation for every segment.
func (s *Segmented) Pack() {
	for _, c := range s.segs {
		c.Pack()
	}
}

// Kinds returns a "kind:count" histogram of segment representations,
// e.g. "array:3 run:1", for Explain output and tests.
func (s *Segmented) Kinds() string {
	counts := map[string]int{}
	for _, c := range s.segs {
		counts[c.Kind()]++
	}
	names := make([]string, 0, len(counts))
	for k := range counts {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, k := range names {
		parts = append(parts, fmt.Sprintf("%s:%d", k, counts[k]))
	}
	return strings.Join(parts, " ")
}

// MarshalBinary serializes the set as
//
//	u32 segCount | repeated (u32 segID | container)
//
// with segments in ascending order. Containers are packed first so the
// image is canonical for a given element set and representation choice.
func (s *Segmented) MarshalBinary() ([]byte, error) {
	out := binary.LittleEndian.AppendUint32(nil, uint32(len(s.segs)))
	for _, seg := range s.segments() {
		out = binary.LittleEndian.AppendUint32(out, seg)
		out = s.segs[seg].AppendBinary(out)
	}
	return out, nil
}

// UnmarshalSegmented decodes a set serialized by MarshalBinary,
// validating all container invariants.
func UnmarshalSegmented(data []byte) (*Segmented, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("bitset: segmented image truncated")
	}
	count := int(binary.LittleEndian.Uint32(data))
	if count > maxCodecCount {
		return nil, fmt.Errorf("bitset: implausible segment count %d", count)
	}
	data = data[4:]
	s := NewSegmented()
	prev, first := uint32(0), true
	for i := 0; i < count; i++ {
		if len(data) < 4 {
			return nil, fmt.Errorf("bitset: segmented image truncated at segment %d", i)
		}
		seg := binary.LittleEndian.Uint32(data)
		if !first && seg <= prev {
			return nil, fmt.Errorf("bitset: segment ids out of order at %d", i)
		}
		prev, first = seg, false
		c, n, err := DecodeContainer(data[4:])
		if err != nil {
			return nil, err
		}
		if !c.Any() {
			return nil, fmt.Errorf("bitset: empty container for segment %d", seg)
		}
		data = data[4+n:]
		s.segs[seg] = c
	}
	return s, nil
}

// String renders the set for debugging, e.g. "{1:0 1:5 3:2}" as
// segment:local pairs.
func (s *Segmented) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	s.Range(func(id uint64) bool {
		if !first {
			sb.WriteByte(' ')
		}
		first = false
		seg, local := splitSegID(id)
		fmt.Fprintf(&sb, "%d:%d", seg, local)
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}
