package bitset

import (
	"fmt"
	"sort"
	"strings"
)

// Segmented is a set of 64-bit segmented document IDs, as produced by
// the segmented index store: the high 32 bits of an ID name a segment,
// the low 32 bits a local slot within it. The representation is one
// dense Bitmap per segment, so the per-segment set operations stay as
// cheap as the paper's flat N/8-byte bitmaps while the ID space can
// grow segment by segment without renumbering.
//
// Like Bitmap, a Segmented is not safe for concurrent mutation.
type Segmented struct {
	segs map[uint32]*Bitmap // segment → local bitmap, no empty bitmaps
}

// NewSegmented returns an empty segmented set.
func NewSegmented() *Segmented {
	return &Segmented{segs: make(map[uint32]*Bitmap)}
}

// SegmentedOf returns a segmented set containing exactly the given ids.
func SegmentedOf(ids ...uint64) *Segmented {
	s := NewSegmented()
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

func splitSegID(id uint64) (seg, local uint32) {
	return uint32(id >> 32), uint32(id)
}

func joinSegID(seg, local uint32) uint64 {
	return uint64(seg)<<32 | uint64(local)
}

// Add inserts id.
func (s *Segmented) Add(id uint64) {
	seg, local := splitSegID(id)
	bm, ok := s.segs[seg]
	if !ok {
		bm = NewBitmap(0)
		s.segs[seg] = bm
	}
	bm.Add(local)
}

// Remove deletes id if present.
func (s *Segmented) Remove(id uint64) {
	seg, local := splitSegID(id)
	if bm, ok := s.segs[seg]; ok {
		bm.Remove(local)
		if !bm.Any() {
			delete(s.segs, seg)
		}
	}
}

// Contains reports whether id is present.
func (s *Segmented) Contains(id uint64) bool {
	seg, local := splitSegID(id)
	bm, ok := s.segs[seg]
	return ok && bm.Contains(local)
}

// Len returns the number of elements.
func (s *Segmented) Len() int {
	n := 0
	for _, bm := range s.segs {
		n += bm.Len()
	}
	return n
}

// Any reports whether the set is non-empty.
func (s *Segmented) Any() bool {
	for _, bm := range s.segs {
		if bm.Any() {
			return true
		}
	}
	return false
}

// segments returns the segment keys in ascending order.
func (s *Segmented) segments() []uint32 {
	keys := make([]uint32, 0, len(s.segs))
	for k := range s.segs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Range visits elements in ascending ID order until fn returns false.
func (s *Segmented) Range(fn func(id uint64) bool) {
	for _, seg := range s.segments() {
		stop := false
		s.segs[seg].Range(func(local uint32) bool {
			if !fn(joinSegID(seg, local)) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Slice returns the elements in ascending order.
func (s *Segmented) Slice() []uint64 {
	out := make([]uint64, 0, s.Len())
	s.Range(func(id uint64) bool {
		out = append(out, id)
		return true
	})
	return out
}

// Clone returns a deep copy.
func (s *Segmented) Clone() *Segmented {
	out := NewSegmented()
	for seg, bm := range s.segs {
		out.segs[seg] = bm.Clone()
	}
	return out
}

// And intersects s with other in place.
func (s *Segmented) And(other *Segmented) {
	for seg, bm := range s.segs {
		ob, ok := other.segs[seg]
		if !ok {
			delete(s.segs, seg)
			continue
		}
		bm.And(ob)
		if !bm.Any() {
			delete(s.segs, seg)
		}
	}
}

// Or unions other into s in place.
func (s *Segmented) Or(other *Segmented) {
	for seg, ob := range other.segs {
		if !ob.Any() {
			continue
		}
		bm, ok := s.segs[seg]
		if !ok {
			s.segs[seg] = ob.Clone()
			continue
		}
		bm.Or(ob)
	}
}

// AndNot removes every element of other from s in place.
func (s *Segmented) AndNot(other *Segmented) {
	for seg, bm := range s.segs {
		if ob, ok := other.segs[seg]; ok {
			bm.AndNot(ob)
			if !bm.Any() {
				delete(s.segs, seg)
			}
		}
	}
}

// Equal reports whether s and other contain the same elements.
func (s *Segmented) Equal(other *Segmented) bool {
	for seg, bm := range s.segs {
		ob, ok := other.segs[seg]
		if !ok {
			if bm.Any() {
				return false
			}
			continue
		}
		if !bm.Equal(ob) {
			return false
		}
	}
	for seg, ob := range other.segs {
		if _, ok := s.segs[seg]; !ok && ob.Any() {
			return false
		}
	}
	return true
}

// SizeBytes returns the approximate payload footprint across segments.
func (s *Segmented) SizeBytes() int {
	n := 0
	for _, bm := range s.segs {
		n += 8 + bm.SizeBytes()
	}
	return n
}

// Seg returns the local bitmap stored for one segment, or nil. The
// bitmap is shared, not copied; treat it as read-only.
func (s *Segmented) Seg(seg uint32) *Bitmap {
	return s.segs[seg]
}

// PutSeg installs bm as the local bitmap of one segment, taking
// ownership of bm. An empty bm clears the segment.
func (s *Segmented) PutSeg(seg uint32, bm *Bitmap) {
	if bm == nil || !bm.Any() {
		delete(s.segs, seg)
		return
	}
	s.segs[seg] = bm
}

// String renders the set for debugging, e.g. "{1:0 1:5 3:2}" as
// segment:local pairs.
func (s *Segmented) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	s.Range(func(id uint64) bool {
		if !first {
			sb.WriteByte(' ')
		}
		first = false
		seg, local := splitSegID(id)
		fmt.Fprintf(&sb, "%d:%d", seg, local)
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}
