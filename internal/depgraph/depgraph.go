// Package depgraph maintains the directed acyclic graph of dependencies
// between semantic directories (§2.5 of the paper).
//
// A directory depends on another when its query references it — either
// implicitly (every semantic directory's query is conjoined with a
// reference to its parent's scope) or explicitly (the user wrote a
// dir: reference in the query). The paper requires this graph to be
// acyclic and consistency updates to run in topological order; this
// package enforces both.
//
// Nodes are identified by the uint64 directory UIDs issued by the
// namemap package. The graph is safe for concurrent use.
package depgraph

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrCycle is returned when an edge set would create a dependency
// cycle.
var ErrCycle = errors.New("depgraph: dependency cycle")

// ErrUnknown is returned when an operation names a node that was never
// added.
var ErrUnknown = errors.New("depgraph: unknown node")

// Graph is a DAG of directory dependencies. The zero value is not
// usable; call New.
type Graph struct {
	mu         sync.RWMutex
	deps       map[uint64]map[uint64]bool // node → the nodes it depends on
	dependents map[uint64]map[uint64]bool // node → the nodes that depend on it
	met        graphMetrics
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		deps:       make(map[uint64]map[uint64]bool),
		dependents: make(map[uint64]map[uint64]bool),
	}
}

// Add registers a node with no dependencies. Adding an existing node is
// a no-op.
func (g *Graph) Add(id uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.addLocked(id)
}

func (g *Graph) addLocked(id uint64) {
	if _, ok := g.deps[id]; !ok {
		g.deps[id] = make(map[uint64]bool)
		g.dependents[id] = make(map[uint64]bool)
	}
}

// Has reports whether id is a node.
func (g *Graph) Has(id uint64) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.deps[id]
	return ok
}

// Len returns the number of nodes.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.deps)
}

// Remove deletes a node and all edges touching it. Nodes that depended
// on id simply lose that dependency (the caller is expected to have
// rewritten or invalidated their queries).
func (g *Graph) Remove(id uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for dep := range g.deps[id] {
		delete(g.dependents[dep], id)
	}
	for dependent := range g.dependents[id] {
		delete(g.deps[dependent], id)
	}
	delete(g.deps, id)
	delete(g.dependents, id)
}

// SetDeps replaces the dependency set of id. It fails with ErrCycle if
// any new dependency can reach id, leaving the graph unchanged.
// Dependencies that are not yet nodes are added implicitly.
func (g *Graph) SetDeps(id uint64, deps []uint64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.addLocked(id)
	for _, d := range deps {
		if d == id {
			return fmt.Errorf("%w: %d depends on itself", ErrCycle, id)
		}
		g.addLocked(d)
		if g.reachableLocked(d, id) {
			return fmt.Errorf("%w: %d → %d", ErrCycle, id, d)
		}
	}
	for old := range g.deps[id] {
		delete(g.dependents[old], id)
	}
	nd := make(map[uint64]bool, len(deps))
	for _, d := range deps {
		nd[d] = true
		g.dependents[d][id] = true
	}
	g.deps[id] = nd
	return nil
}

// reachableLocked reports whether "to" is reachable from "from" along
// dependency edges. Caller holds g.mu.
func (g *Graph) reachableLocked(from, to uint64) bool {
	if from == to {
		return true
	}
	seen := map[uint64]bool{from: true}
	stack := []uint64{from}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := range g.deps[cur] {
			if next == to {
				return true
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

// Deps returns the direct dependencies of id, sorted.
func (g *Graph) Deps(id uint64) []uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return sortedKeys(g.deps[id])
}

// Dependents returns the nodes that directly depend on id, sorted.
func (g *Graph) Dependents(id uint64) []uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return sortedKeys(g.dependents[id])
}

// AffectedBy returns every node that transitively depends on id — the
// set whose queries must be re-evaluated when id's link set changes —
// in topological order (dependencies before dependents). id itself is
// not included.
func (g *Graph) AffectedBy(id uint64) []uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()

	// Collect the transitive dependents.
	affected := map[uint64]bool{}
	stack := []uint64{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := range g.dependents[cur] {
			if !affected[next] {
				affected[next] = true
				stack = append(stack, next)
			}
		}
	}
	return g.topoLocked(affected)
}

// TopoAll returns all nodes in topological order.
func (g *Graph) TopoAll() []uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	all := make(map[uint64]bool, len(g.deps))
	for id := range g.deps {
		all[id] = true
	}
	return g.topoLocked(all)
}

// TopoLevels returns all nodes partitioned into dependency levels
// (antichains): every node in level i has all of its dependencies in
// levels < i, so the nodes of one level may be evaluated concurrently
// once all earlier levels have committed. Levels are emitted in
// topological order and each level is sorted by id.
func (g *Graph) TopoLevels() [][]uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	all := make(map[uint64]bool, len(g.deps))
	for id := range g.deps {
		all[id] = true
	}
	return g.levelsLocked(all)
}

// AffectedLevels is AffectedBy partitioned into dependency levels, with
// the same antichain guarantee as TopoLevels. When includeSelf is true,
// id itself is part of the subset (as level 0, alone or with other
// roots).
func (g *Graph) AffectedLevels(id uint64, includeSelf bool) [][]uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	affected := map[uint64]bool{}
	if includeSelf {
		affected[id] = true
	}
	stack := []uint64{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := range g.dependents[cur] {
			if !affected[next] {
				affected[next] = true
				stack = append(stack, next)
			}
		}
	}
	return g.levelsLocked(affected)
}

// levelsLocked runs layered Kahn over the induced subgraph: level 0 is
// every node with no in-subset dependencies, level i+1 every node whose
// last in-subset dependency sits in level i. Caller holds g.mu.
func (g *Graph) levelsLocked(subset map[uint64]bool) [][]uint64 {
	g.met.recomputes.Add(1)
	indeg := make(map[uint64]int, len(subset))
	for id := range subset {
		n := 0
		for d := range g.deps[id] {
			if subset[d] {
				n++
			}
		}
		indeg[id] = n
	}
	var frontier []uint64
	for id, n := range indeg {
		if n == 0 {
			frontier = append(frontier, id)
		}
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })

	var levels [][]uint64
	for len(frontier) > 0 {
		level := frontier
		g.met.levelWidth.Observe(float64(len(level)))
		levels = append(levels, level)
		frontier = nil
		for _, cur := range level {
			for dep := range g.dependents[cur] {
				if !subset[dep] {
					continue
				}
				indeg[dep]--
				if indeg[dep] == 0 {
					frontier = append(frontier, dep)
				}
			}
		}
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
	}
	return levels
}

// topoLocked runs Kahn's algorithm restricted to the given node subset,
// breaking ties by ascending id for determinism. Caller holds g.mu.
func (g *Graph) topoLocked(subset map[uint64]bool) []uint64 {
	g.met.recomputes.Add(1)
	indeg := make(map[uint64]int, len(subset))
	for id := range subset {
		n := 0
		for d := range g.deps[id] {
			if subset[d] {
				n++
			}
		}
		indeg[id] = n
	}
	var ready []uint64
	for id, n := range indeg {
		if n == 0 {
			ready = append(ready, id)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })

	out := make([]uint64, 0, len(subset))
	for len(ready) > 0 {
		cur := ready[0]
		ready = ready[1:]
		out = append(out, cur)
		var unlocked []uint64
		for dep := range g.dependents[cur] {
			if !subset[dep] {
				continue
			}
			indeg[dep]--
			if indeg[dep] == 0 {
				unlocked = append(unlocked, dep)
			}
		}
		sort.Slice(unlocked, func(i, j int) bool { return unlocked[i] < unlocked[j] })
		// Merge keeping overall determinism: append then resort the
		// frontier (frontiers are small).
		ready = append(ready, unlocked...)
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	}
	return out
}

func sortedKeys(m map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
