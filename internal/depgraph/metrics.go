package depgraph

import "hacfs/internal/obs"

// graphMetrics is the graph's metric handle bundle. Handles are nil
// (no-op) until SetObserver is called.
type graphMetrics struct {
	// levelWidth observes the width of every antichain emitted by
	// TopoLevels/AffectedLevels — the available evaluation parallelism.
	levelWidth *obs.Histogram // hac_depgraph_level_width
	// recomputes counts topological-order computations (full or
	// affected-subset).
	recomputes *obs.Counter // hac_depgraph_topo_recomputes_total
}

// SetObserver directs the graph's metrics to o. Called by hac.New;
// safe to call again to redirect.
func (g *Graph) SetObserver(o *obs.Observer) {
	r := o.Registry()
	g.mu.Lock()
	g.met = graphMetrics{
		levelWidth: r.Histogram("hac_depgraph_level_width", obs.DefWidthBuckets),
		recomputes: r.Counter("hac_depgraph_topo_recomputes_total"),
	}
	g.mu.Unlock()
	if r == nil {
		return
	}
	r.GaugeFunc("hac_depgraph_nodes", func() float64 {
		return float64(g.Len())
	})
}
