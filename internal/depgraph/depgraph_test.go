package depgraph

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddHasRemove(t *testing.T) {
	g := New()
	g.Add(1)
	g.Add(1) // idempotent
	if !g.Has(1) || g.Has(2) || g.Len() != 1 {
		t.Fatalf("Has/Len wrong after Add")
	}
	g.Remove(1)
	if g.Has(1) || g.Len() != 0 {
		t.Fatal("Remove failed")
	}
	g.Remove(99) // absent: no-op
}

func TestSetDepsAndQueries(t *testing.T) {
	g := New()
	// 3 depends on 1 and 2; 4 depends on 3.
	if err := g.SetDeps(3, []uint64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetDeps(4, []uint64{3}); err != nil {
		t.Fatal(err)
	}
	if got := g.Deps(3); !reflect.DeepEqual(got, []uint64{1, 2}) {
		t.Fatalf("Deps(3) = %v", got)
	}
	if got := g.Dependents(1); !reflect.DeepEqual(got, []uint64{3}) {
		t.Fatalf("Dependents(1) = %v", got)
	}
	if got := g.AffectedBy(1); !reflect.DeepEqual(got, []uint64{3, 4}) {
		t.Fatalf("AffectedBy(1) = %v", got)
	}
	if got := g.AffectedBy(4); len(got) != 0 {
		t.Fatalf("AffectedBy(4) = %v, want empty", got)
	}
	// Replacing deps drops old edges.
	if err := g.SetDeps(3, []uint64{2}); err != nil {
		t.Fatal(err)
	}
	if got := g.Dependents(1); len(got) != 0 {
		t.Fatalf("stale dependents after SetDeps: %v", got)
	}
}

func TestCycleRejection(t *testing.T) {
	g := New()
	if err := g.SetDeps(2, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetDeps(3, []uint64{2}); err != nil {
		t.Fatal(err)
	}
	// 1 → 3 would close the cycle 1 → 3 → 2 → 1.
	err := g.SetDeps(1, []uint64{3})
	if !errors.Is(err, ErrCycle) {
		t.Fatalf("cycle err = %v", err)
	}
	// Graph unchanged by the failed call.
	if got := g.Deps(1); len(got) != 0 {
		t.Fatalf("failed SetDeps mutated graph: %v", got)
	}
	// Self-dependency.
	if err := g.SetDeps(5, []uint64{5}); !errors.Is(err, ErrCycle) {
		t.Fatalf("self-dep err = %v", err)
	}
}

func TestRemoveDetachesEdges(t *testing.T) {
	g := New()
	if err := g.SetDeps(2, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetDeps(3, []uint64{2}); err != nil {
		t.Fatal(err)
	}
	g.Remove(2)
	if got := g.Dependents(1); len(got) != 0 {
		t.Fatalf("Dependents(1) after Remove(2) = %v", got)
	}
	if got := g.Deps(3); len(got) != 0 {
		t.Fatalf("Deps(3) after Remove(2) = %v", got)
	}
	// Removing 2 must not allow cycles through ghosts.
	if err := g.SetDeps(1, []uint64{3}); err != nil {
		t.Fatal(err)
	}
}

func TestTopoAll(t *testing.T) {
	g := New()
	// Diamond: 4 deps on 2,3; 2 and 3 dep on 1.
	for _, e := range []struct {
		id   uint64
		deps []uint64
	}{{2, []uint64{1}}, {3, []uint64{1}}, {4, []uint64{2, 3}}} {
		if err := g.SetDeps(e.id, e.deps); err != nil {
			t.Fatal(err)
		}
	}
	order := g.TopoAll()
	pos := map[uint64]int{}
	for i, id := range order {
		pos[id] = i
	}
	if len(order) != 4 {
		t.Fatalf("TopoAll len = %d", len(order))
	}
	if pos[1] > pos[2] || pos[1] > pos[3] || pos[2] > pos[4] || pos[3] > pos[4] {
		t.Fatalf("TopoAll order invalid: %v", order)
	}
	// Deterministic.
	if !reflect.DeepEqual(order, g.TopoAll()) {
		t.Fatal("TopoAll not deterministic")
	}
}

func TestAffectedByDiamondOrder(t *testing.T) {
	g := New()
	// 1 ← 2 ← 4, 1 ← 3 ← 4 (4 depends on both 2 and 3).
	for _, e := range []struct {
		id   uint64
		deps []uint64
	}{{2, []uint64{1}}, {3, []uint64{1}}, {4, []uint64{2, 3}}} {
		if err := g.SetDeps(e.id, e.deps); err != nil {
			t.Fatal(err)
		}
	}
	got := g.AffectedBy(1)
	if !reflect.DeepEqual(got, []uint64{2, 3, 4}) {
		t.Fatalf("AffectedBy(1) = %v, want [2 3 4]", got)
	}
}

// Property: SetDeps never admits a cycle — for random edge insertions,
// TopoAll always returns every node exactly once with dependencies
// first.
func TestPropertyAcyclicInvariant(t *testing.T) {
	f := func(edges []struct{ A, B uint8 }) bool {
		g := New()
		for _, e := range edges {
			id, dep := uint64(e.A%16)+1, uint64(e.B%16)+1
			// Accumulate: new deps = old deps + dep.
			deps := append(g.Deps(id), dep)
			_ = g.SetDeps(id, deps) // may reject; fine
		}
		order := g.TopoAll()
		if len(order) != g.Len() {
			return false
		}
		pos := map[uint64]int{}
		for i, id := range order {
			pos[id] = i
		}
		for _, id := range order {
			for _, d := range g.Deps(id) {
				if pos[d] >= pos[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: AffectedBy(x) is exactly the set of nodes from which x is
// reachable along dependency edges.
func TestPropertyAffectedMatchesReachability(t *testing.T) {
	f := func(edges []struct{ A, B uint8 }, probe uint8) bool {
		g := New()
		for _, e := range edges {
			id, dep := uint64(e.A%12)+1, uint64(e.B%12)+1
			deps := append(g.Deps(id), dep)
			_ = g.SetDeps(id, deps)
		}
		x := uint64(probe%12) + 1
		if !g.Has(x) {
			return true
		}
		affected := map[uint64]bool{}
		for _, id := range g.AffectedBy(x) {
			affected[id] = true
		}
		// Reference: BFS over dependents.
		want := map[uint64]bool{}
		queue := []uint64{x}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, d := range g.Dependents(cur) {
				if !want[d] {
					want[d] = true
					queue = append(queue, d)
				}
			}
		}
		return reflect.DeepEqual(affected, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
