package depgraph

import "testing"

// buildChainAndFanout creates a graph shaped like a real volume: one
// deep chain plus many directories depending only on the root node.
func buildChainAndFanout(b *testing.B, chain, fanout int) *Graph {
	b.Helper()
	g := New()
	g.Add(1)
	for i := 2; i <= chain; i++ {
		if err := g.SetDeps(uint64(i), []uint64{uint64(i - 1)}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < fanout; i++ {
		if err := g.SetDeps(uint64(1000+i), []uint64{1}); err != nil {
			b.Fatal(err)
		}
	}
	return g
}

func BenchmarkAffectedBy(b *testing.B) {
	g := buildChainAndFanout(b, 20, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.AffectedBy(1); len(got) == 0 {
			b.Fatal("no dependents")
		}
	}
}

func BenchmarkTopoAll(b *testing.B) {
	g := buildChainAndFanout(b, 20, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.TopoAll(); len(got) != 520 {
			b.Fatalf("topo = %d", len(got))
		}
	}
}

func BenchmarkSetDepsWithCycleCheck(b *testing.B) {
	g := buildChainAndFanout(b, 50, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rebinding the chain tail exercises the reachability check
		// over the whole chain.
		if err := g.SetDeps(50, []uint64{49}); err != nil {
			b.Fatal(err)
		}
	}
}
