package index

import (
	"sort"
	"strings"
	"sync"
)

// termDict is a lazily built read-only view of a sealed segment's term
// vocabulary, backing the planner's prefix and fuzzy selectivity
// estimates (PrefixCost, FuzzyCost). Sealed segments never change
// their postings, so the dictionary is built at most once per segment,
// on first use, under a sync.Once — safe while holders of the index
// read lock race to trigger it. The active segment is mutable and gets
// no dictionary; cost queries scan its postings map directly, which is
// fine because the active segment is bounded by the seal threshold.
type termDict struct {
	once   sync.Once
	sorted []string         // all terms, lexicographic — prefix range scans
	byLen  map[int][]string // byte length → terms — edit-distance candidates
}

// dict returns the segment's term dictionary, building it on first
// use. Only call on sealed segments.
func (s *segment) dictionary() *termDict {
	d := &s.dict
	d.once.Do(func() {
		d.sorted = make([]string, 0, len(s.postings))
		d.byLen = make(map[int][]string)
		for term := range s.postings {
			d.sorted = append(d.sorted, term)
			d.byLen[len(term)] = append(d.byLen[len(term)], term)
		}
		sort.Strings(d.sorted)
	})
	return d
}

// prefixRange visits every term with the given prefix, in order.
func (d *termDict) prefixRange(prefix string, fn func(term string)) {
	i := sort.SearchStrings(d.sorted, prefix)
	for ; i < len(d.sorted); i++ {
		if !strings.HasPrefix(d.sorted[i], prefix) {
			return
		}
		fn(d.sorted[i])
	}
}

// fuzzyCandidates visits every term within edit distance 1 of term:
// only the three length buckets |term|-1 .. |term|+1 can hold one, so
// the scan skips the rest of the vocabulary entirely.
func (d *termDict) fuzzyCandidates(term string, fn func(candidate string)) {
	for l := len(term) - 1; l <= len(term)+1; l++ {
		for _, candidate := range d.byLen[l] {
			if withinOneEdit(term, candidate) {
				fn(candidate)
			}
		}
	}
}

// PrefixCost returns the total posting cardinality of every term with
// the given prefix across the pinned segments — the planner's
// selectivity estimate for a prefix leaf. Like TermCost, dead slots
// are counted; sealed segments answer from their sorted term
// dictionary (a binary search plus the matching range), the active
// segment by a bounded scan.
func (sn *Snapshot) PrefixCost(prefix string) int {
	prefix = normalizeTerm(prefix)
	n := 0
	sn.ix.mu.RLock()
	defer sn.ix.mu.RUnlock()
	for _, s := range sn.segs {
		if s.sealed {
			d := s.dictionary()
			d.prefixRange(prefix, func(term string) {
				n += s.postings[term].Len()
			})
			continue
		}
		for term, bm := range s.postings {
			if strings.HasPrefix(term, prefix) {
				n += bm.Len()
			}
		}
	}
	return n
}

// FuzzyCost returns the total posting cardinality of every term within
// edit distance 1 of term across the pinned segments — the planner's
// selectivity estimate for a fuzzy leaf. Sealed segments answer from
// their length-bucketed dictionary (candidates can only differ in
// length by one); the active segment scans.
func (sn *Snapshot) FuzzyCost(term string) int {
	term = normalizeTerm(term)
	if term == "" {
		return 0
	}
	n := 0
	sn.ix.mu.RLock()
	defer sn.ix.mu.RUnlock()
	for _, s := range sn.segs {
		if s.sealed {
			d := s.dictionary()
			d.fuzzyCandidates(term, func(candidate string) {
				n += s.postings[candidate].Len()
			})
			continue
		}
		for candidate, bm := range s.postings {
			if withinOneEdit(term, candidate) {
				n += bm.Len()
			}
		}
	}
	return n
}
