package index

import (
	gopath "path"

	"hacfs/internal/bitset"
)

// Composite path-prefix × term index. Each segment keeps, for every
// proper ancestor directory of its document paths (the root "/"
// excluded — it would mirror the whole segment), the compressed set of
// local slots beneath it. A dir:-scoped lookup then intersects one
// container with one posting bitmap instead of scanning every doc
// entry's path, and a segment whose dirs map lacks the scope root is
// skipped wholesale — the "scope-first pruning" the planner's cost
// model depends on (DESIGN.md §11).
//
// Maintenance mirrors the docs slice: slots are added at commit, moved
// on rename, and left in place on tombstone (the dead bitmap filters
// them at query time, exactly as it filters postings).

// eachAncestorDir visits every proper ancestor directory of path except
// "/": for "/a/b/c.txt" it visits "/a" then "/a/b".
func eachAncestorDir(path string, fn func(dir string)) {
	for i := 1; i < len(path); i++ {
		if path[i] == '/' {
			fn(path[:i])
		}
	}
}

// dirsAdd records that local lives at path. Caller holds ix.mu.
func (s *segment) dirsAdd(path string, local uint32) {
	eachAncestorDir(path, func(dir string) {
		c, ok := s.dirs[dir]
		if !ok {
			c = bitset.NewContainer()
			s.dirs[dir] = c
		}
		c.Add(local)
	})
}

// dirsRemove drops local from path's ancestor containers. Caller holds
// ix.mu.
func (s *segment) dirsRemove(path string, local uint32) {
	eachAncestorDir(path, func(dir string) {
		if c, ok := s.dirs[dir]; ok {
			c.Remove(local)
			if !c.Any() {
				delete(s.dirs, dir)
			}
		}
	})
}

// dirsRename moves local between ancestor chains. Caller holds ix.mu.
func (s *segment) dirsRename(oldPath, newPath string, local uint32) {
	if oldPath == newPath {
		return
	}
	s.dirsRemove(oldPath, local)
	s.dirsAdd(newPath, local)
}

// packDirs re-selects the cheapest representation for every container;
// called once when a segment seals or installs, after which the map is
// read-mostly.
func (s *segment) packDirs() {
	for _, c := range s.dirs {
		c.Pack()
	}
}

// underLocked returns the local slots of s beneath root (alive or
// dead; the caller applies the dead mask), or nil when none. For a
// non-"/" root this is one map probe plus, when the root itself names
// an indexed file, one byPath check. The returned container is shared;
// callers must clone before mutating. Caller holds ix.mu.
func (ix *Index) underLocked(s *segment, root string) *bitset.Container {
	c := s.dirs[root]
	// vfs.HasPrefix(p, root) also matches p == root: a file path used as
	// a scope selects the file itself.
	if id, ok := ix.byPath[root]; ok {
		if rs, local, ok := ix.resolveLocked(id); ok && rs == s {
			self := bitset.ContainerOf(local)
			if c != nil {
				self.Or(c)
			}
			return self
		}
	}
	return c
}

// DocsUnderCount returns how many live documents lie beneath root,
// without materializing the set — the planner's selectivity probe for
// scope pushdown.
func (ix *Index) DocsUnderCount(root string) int {
	root = gopath.Clean(root)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if root == "/" {
		return ix.liveDocs
	}
	n := 0
	ix.eachSegmentLocked(func(s *segment) {
		if c := ix.underLocked(s, root); c != nil {
			if s.deadCount == 0 {
				n += c.Len()
			} else {
				live := c.Clone()
				live.AndNotBitmap(s.dead)
				n += live.Len()
			}
		}
	})
	return n
}
