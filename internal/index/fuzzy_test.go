package index

import (
	"testing"
	"testing/quick"
)

func TestWithinOneEdit(t *testing.T) {
	yes := [][2]string{
		{"apple", "apple"},  // equal
		{"apple", "applee"}, // insertion at end
		{"apple", "aapple"}, // insertion at start
		{"apple", "aple"},   // deletion
		{"apple", "ample"},  // substitution
		{"apple", "papple"}, // insertion
		{"ab", "ba"},        // transposition
		{"apple", "aplpe"},  // transposition middle
		{"a", ""},           // deletion to empty
		{"x", "y"},          // substitution single char
	}
	no := [][2]string{
		{"apple", "applesx"}, // distance 2 (two insertions)
		{"apple", "apl"},     // two deletions
		{"apple", "orange"},
		{"ab", "cd"},     // two substitutions
		{"abcd", "badc"}, // two transpositions
		{"", "xy"},
		{"abc", "cba"}, // not adjacent swap
	}
	for _, c := range yes {
		if !withinOneEdit(c[0], c[1]) || !withinOneEdit(c[1], c[0]) {
			t.Errorf("withinOneEdit(%q, %q) = false, want true", c[0], c[1])
		}
	}
	for _, c := range no {
		if withinOneEdit(c[0], c[1]) || withinOneEdit(c[1], c[0]) {
			t.Errorf("withinOneEdit(%q, %q) = true, want false", c[0], c[1])
		}
	}
}

// Property: withinOneEdit agrees with a reference Damerau–Levenshtein
// implementation (restricted distance) for short strings.
func TestPropertyWithinOneEditMatchesReference(t *testing.T) {
	alphabet := []byte("abc")
	mk := func(seed []byte, maxLen int) string {
		out := make([]byte, 0, maxLen)
		for i, b := range seed {
			if i >= maxLen {
				break
			}
			out = append(out, alphabet[int(b)%len(alphabet)])
		}
		return string(out)
	}
	f := func(sa, sb []byte) bool {
		a, b := mk(sa, 5), mk(sb, 5)
		want := damerau(a, b) <= 1
		return withinOneEdit(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// damerau computes the optimal-string-alignment distance (reference
// implementation for tests).
func damerau(a, b string) int {
	la, lb := len(a), len(b)
	d := make([][]int, la+1)
	for i := range d {
		d[i] = make([]int, lb+1)
		d[i][0] = i
	}
	for j := 0; j <= lb; j++ {
		d[0][j] = j
	}
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := d[i-1][j] + 1
			if v := d[i][j-1] + 1; v < m {
				m = v
			}
			if v := d[i-1][j-1] + cost; v < m {
				m = v
			}
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if v := d[i-2][j-2] + 1; v < m {
					m = v
				}
			}
			d[i][j] = m
		}
	}
	return d[la][lb]
}

func TestLookupFuzzy(t *testing.T) {
	ix := New()
	ix.Add("/a", []byte("fingerprint"))
	ix.Add("/b", []byte("fingerprints")) // one insertion away
	ix.Add("/c", []byte("fingerpaint"))  // one substitution away
	ix.Add("/d", []byte("footprint"))    // far away

	got := ix.Paths(ix.LookupFuzzy("fingerprint"))
	want := map[string]bool{"/a": true, "/b": true, "/c": true}
	if len(got) != 3 {
		t.Fatalf("fuzzy matches = %v", got)
	}
	for _, p := range got {
		if !want[p] {
			t.Fatalf("unexpected fuzzy match %s", p)
		}
	}
	// Exact lookups stay exact.
	if got := ix.Lookup("fingerprint").Len(); got != 1 {
		t.Fatalf("exact matches = %d", got)
	}
	// Empty and unknown terms.
	if ix.LookupFuzzy("").Any() {
		t.Fatal("empty fuzzy term matched")
	}
	if ix.LookupFuzzy("zzzzzzz").Any() {
		t.Fatal("distant fuzzy term matched")
	}
}

func TestLookupFuzzyRespectsTombstones(t *testing.T) {
	ix := New()
	ix.Add("/a", []byte("typo"))
	ix.Add("/b", []byte("typos"))
	ix.Remove("/b")
	if got := ix.LookupFuzzy("typo").Len(); got != 1 {
		t.Fatalf("fuzzy after remove = %d, want 1", got)
	}
}
