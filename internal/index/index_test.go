package index

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"hacfs/internal/bitset"
	"hacfs/internal/corpus"
	"hacfs/internal/vfs"
)

func TestTokenize(t *testing.T) {
	got := Tokenize([]byte("Hello, World! x it's CamelCase42 a"))
	want := []string{"hello", "world", "it", "camelcase42"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	if got := Tokenize(nil); len(got) != 0 {
		t.Fatalf("Tokenize(nil) = %v", got)
	}
	// Over-long runs are dropped.
	long := make([]byte, 100)
	for i := range long {
		long[i] = 'a'
	}
	if got := Tokenize(long); len(got) != 0 {
		t.Fatalf("Tokenize(long run) = %v", got)
	}
}

func TestAddAndLookup(t *testing.T) {
	ix := New()
	a := ix.Add("/a", []byte("apple banana"))
	b := ix.Add("/b", []byte("banana cherry"))

	if got := ix.Lookup("apple").Slice(); len(got) != 1 || got[0] != a {
		t.Fatalf("apple = %v, want [%d]", got, a)
	}
	if got := ix.Lookup("banana").Len(); got != 2 {
		t.Fatalf("banana matches %d docs, want 2", got)
	}
	if got := ix.Lookup("cherry").Slice(); len(got) != 1 || got[0] != b {
		t.Fatalf("cherry = %v, want [%d]", got, b)
	}
	if got := ix.Lookup("durian").Len(); got != 0 {
		t.Fatalf("missing term matched %d docs", got)
	}
	// Lookup normalizes case.
	if got := ix.Lookup("APPLE").Len(); got != 1 {
		t.Fatalf("case-insensitive lookup failed: %d", got)
	}
	if ix.NumDocs() != 2 {
		t.Fatalf("NumDocs = %d, want 2", ix.NumDocs())
	}
}

func TestUpdateReplacesDocument(t *testing.T) {
	ix := New()
	ix.Add("/f", []byte("old content here"))
	ix.Add("/f", []byte("new stuff"))

	if ix.NumDocs() != 1 {
		t.Fatalf("NumDocs = %d, want 1", ix.NumDocs())
	}
	if ix.Lookup("old").Any() {
		t.Fatal("stale term still matches after update")
	}
	if !ix.Lookup("new").Any() {
		t.Fatal("new term does not match after update")
	}
	id, ok := ix.IDOf("/f")
	if !ok {
		t.Fatal("IDOf lost the path")
	}
	if p, ok := ix.PathOf(id); !ok || p != "/f" {
		t.Fatalf("PathOf(%d) = %q, %v", id, p, ok)
	}
}

func TestRemove(t *testing.T) {
	ix := New()
	ix.Add("/a", []byte("apple"))
	ix.Add("/b", []byte("apple"))
	if !ix.Remove("/a") {
		t.Fatal("Remove reported no document")
	}
	if ix.Remove("/a") {
		t.Fatal("second Remove reported a document")
	}
	if got := ix.Lookup("apple").Len(); got != 1 {
		t.Fatalf("after remove, apple matches %d, want 1", got)
	}
	if _, ok := ix.IDOf("/a"); ok {
		t.Fatal("removed path still resolves")
	}
	if ix.NumDocs() != 1 {
		t.Fatalf("NumDocs = %d, want 1", ix.NumDocs())
	}
}

func TestRenamePath(t *testing.T) {
	ix := New()
	ix.Add("/old", []byte("apple"))
	if !ix.RenamePath("/old", "/new") {
		t.Fatal("RenamePath failed")
	}
	if ix.RenamePath("/old", "/other") {
		t.Fatal("RenamePath on missing path succeeded")
	}
	paths := ix.Paths(ix.Lookup("apple"))
	if len(paths) != 1 || paths[0] != "/new" {
		t.Fatalf("after rename, paths = %v", paths)
	}
}

func TestLookupPrefix(t *testing.T) {
	ix := New()
	ix.Add("/a", []byte("fingerprint"))
	ix.Add("/b", []byte("finger"))
	ix.Add("/c", []byte("toe"))
	if got := ix.LookupPrefix("finger").Len(); got != 2 {
		t.Fatalf("prefix finger matches %d, want 2", got)
	}
	if got := ix.LookupPrefix("fingerp").Len(); got != 1 {
		t.Fatalf("prefix fingerp matches %d, want 1", got)
	}
}

func TestPathsSortedAndLive(t *testing.T) {
	ix := New()
	ix.Add("/z", []byte("apple"))
	ix.Add("/a", []byte("apple"))
	ix.Add("/m", []byte("apple"))
	bm := ix.Lookup("apple")
	ix.Remove("/m")
	got := ix.Paths(bm) // bm still holds the dead ID
	want := []string{"/a", "/z"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Paths = %v, want %v", got, want)
	}
}

func TestIDsOf(t *testing.T) {
	ix := New()
	ix.Add("/a", []byte("x"))
	ix.Add("/b", []byte("x"))
	bm := ix.IDsOf([]string{"/a", "/missing", "/b"})
	if bm.Len() != 2 {
		t.Fatalf("IDsOf len = %d, want 2", bm.Len())
	}
}

func TestForceMerge(t *testing.T) {
	ix := New()
	a := ix.Add("/a", []byte("apple"))
	b := ix.Add("/b", []byte("apple banana"))
	ix.Add("/c", []byte("cherry"))
	ix.Remove("/b")

	ix.ForceMerge()
	if ix.Universe() != 2 {
		t.Fatalf("Universe after merge = %d, want 2", ix.Universe())
	}
	// Pre-merge IDs stay valid: the live one resolves through the
	// forward table, the dead one resolves to nothing.
	if p, ok := ix.PathOf(a); !ok || p != "/a" {
		t.Fatalf("PathOf(pre-merge id) = %q, %v", p, ok)
	}
	if _, ok := ix.PathOf(b); ok {
		t.Fatal("dead pre-merge ID still resolves")
	}
	if got := ix.Paths(ix.Lookup("apple")); len(got) != 1 || got[0] != "/a" {
		t.Fatalf("apple after merge = %v", got)
	}
	if ix.Lookup("banana").Any() {
		t.Fatal("dead doc's unique term survived merge")
	}
	if got := ix.Paths(ix.Lookup("cherry")); len(got) != 1 || got[0] != "/c" {
		t.Fatalf("cherry after merge = %v", got)
	}
	st := ix.Stats()
	if st.DeadDocs != 0 || st.Docs != 2 {
		t.Fatalf("Stats after merge = %+v", st)
	}
}

func TestStats(t *testing.T) {
	ix := New()
	ix.Add("/a", []byte("one two three"))
	st := ix.Stats()
	if st.Docs != 1 || st.Terms != 3 || st.IndexBytes <= 0 || st.ContentBytes != 13 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestSyncTree(t *testing.T) {
	fs := vfs.New()
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	fs.SetClock(func() time.Time { return clock })
	if err := fs.MkdirAll("/data/sub"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/data/a.txt", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/data/sub/b.txt", []byte("beta")); err != nil {
		t.Fatal(err)
	}

	ix := New()
	added, updated, removed, err := ix.SyncTree(fs, "/data")
	if err != nil || added != 2 || updated != 0 || removed != 0 {
		t.Fatalf("first sync = %d/%d/%d, %v", added, updated, removed, err)
	}
	if !ix.Lookup("alpha").Any() || !ix.Lookup("beta").Any() {
		t.Fatal("terms missing after sync")
	}

	// No changes → no work.
	added, updated, removed, _ = ix.SyncTree(fs, "/data")
	if added != 0 || updated != 0 || removed != 0 {
		t.Fatalf("idle sync = %d/%d/%d", added, updated, removed)
	}

	// Modify, add, remove.
	clock = clock.Add(time.Minute)
	if err := fs.WriteFile("/data/a.txt", []byte("gamma")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/data/c.txt", []byte("delta")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/data/sub/b.txt"); err != nil {
		t.Fatal(err)
	}
	added, updated, removed, _ = ix.SyncTree(fs, "/data")
	if added != 1 || updated != 1 || removed != 1 {
		t.Fatalf("second sync = %d/%d/%d, want 1/1/1", added, updated, removed)
	}
	if ix.Lookup("alpha").Any() || ix.Lookup("beta").Any() {
		t.Fatal("stale terms survive sync")
	}
	if !ix.Lookup("gamma").Any() || !ix.Lookup("delta").Any() {
		t.Fatal("new terms missing after sync")
	}
}

func TestSyncTreeScoped(t *testing.T) {
	fs := vfs.New()
	for _, p := range []string{"/x", "/y"} {
		if err := fs.MkdirAll(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.WriteFile("/x/a", []byte("xterm")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/y/b", []byte("yterm")); err != nil {
		t.Fatal(err)
	}
	ix := New()
	if _, _, _, err := ix.SyncTree(fs, "/x"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ix.SyncTree(fs, "/y"); err != nil {
		t.Fatal(err)
	}
	// Removing /y/b and syncing only /x must not drop /y/b.
	if err := fs.Remove("/y/b"); err != nil {
		t.Fatal(err)
	}
	if _, _, removed, _ := ix.SyncTree(fs, "/x"); removed != 0 {
		t.Fatalf("scoped sync removed %d docs outside scope", removed)
	}
	if !ix.Lookup("yterm").Any() {
		t.Fatal("document outside sync scope was dropped")
	}
	if _, _, removed, _ := ix.SyncTree(fs, "/y"); removed != 1 {
		t.Fatal("in-scope removal not detected")
	}
}

func TestIndexCorpus(t *testing.T) {
	fs := vfs.New()
	if err := fs.MkdirAll("/c"); err != nil {
		t.Fatal(err)
	}
	man, err := corpus.Generate(fs, "/c", corpus.Spec{Files: 150, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ix := New()
	added, _, _, err := ix.SyncTree(fs, "/c")
	if err != nil || added != 150 {
		t.Fatalf("sync = %d, %v", added, err)
	}
	// Planted marker counts match the manifest exactly.
	for term, paths := range man.MarkerFiles {
		got := ix.Paths(ix.Lookup(term))
		if !reflect.DeepEqual(got, paths) {
			t.Fatalf("%s: index found %d files, manifest says %d", term, len(got), len(paths))
		}
	}
	// Topic terms too.
	for ti, term := range man.TopicTerm {
		got := ix.Paths(ix.Lookup(term))
		if !reflect.DeepEqual(got, man.TopicFiles[ti]) {
			t.Fatalf("topic %d: got %d files, want %d", ti, len(got), len(man.TopicFiles[ti]))
		}
	}
}

// Property: for any documents, every document that contains a term is in
// Lookup(term), and none that lack it are.
func TestPropertyLookupExact(t *testing.T) {
	words := []string{"ant", "bee", "cat", "dog", "elk"}
	f := func(docWords [][]byte) bool {
		ix := New()
		contains := map[string]map[string]bool{}
		for i, raw := range docWords {
			if i >= 20 {
				break
			}
			path := fmt.Sprintf("/d%d", i)
			var content []byte
			has := map[string]bool{}
			for _, b := range raw {
				w := words[int(b)%len(words)]
				content = append(content, []byte(w+" ")...)
				has[w] = true
			}
			ix.Add(path, content)
			contains[path] = has
		}
		for _, w := range words {
			got := map[string]bool{}
			for _, p := range ix.Paths(ix.Lookup(w)) {
				got[p] = true
			}
			for p, has := range contains {
				if got[p] != has[w] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a merge preserves query results (paths and pre-merge result
// bitmaps, not internal layout). The seal threshold is forced low so
// random op sequences exercise real multi-segment layouts.
func TestPropertyMergePreservesResults(t *testing.T) {
	f := func(ops []uint8) bool {
		ix := New()
		ix.SetSealThreshold(4)
		terms := []string{"red", "green", "blue"}
		for i, op := range ops {
			p := fmt.Sprintf("/f%d", int(op)%10)
			switch {
			case op%5 == 0:
				ix.Remove(p)
			default:
				ix.Add(p, []byte(terms[int(op)%3]+" filler"))
			}
			_ = i
		}
		before := map[string][]string{}
		held := map[string]*bitset.Segmented{}
		for _, term := range terms {
			held[term] = ix.Lookup(term)
			before[term] = ix.Paths(held[term])
		}
		ix.ForceMerge()
		for _, term := range terms {
			// Fresh lookups see the same documents...
			if !reflect.DeepEqual(before[term], ix.Paths(ix.Lookup(term))) {
				return false
			}
			// ...and result bitmaps captured before the merge still
			// resolve to the same paths through the forward tables.
			if !reflect.DeepEqual(before[term], ix.Paths(held[term])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAllDocs(t *testing.T) {
	ix := New()
	ix.Add("/a", []byte("x"))
	ix.Add("/b", []byte("y"))
	ix.Remove("/a")
	all := ix.AllDocs()
	if all.Len() != 1 {
		t.Fatalf("AllDocs len = %d, want 1", all.Len())
	}
	// Returned bitmap is a copy.
	all.Add(99)
	if ix.AllDocs().Contains(99) {
		t.Fatal("AllDocs returned aliased bitmap")
	}
}

func TestCustomTokenizer(t *testing.T) {
	ix := New()
	if err := ix.SetTokenizer(func(content []byte) []string { return []string{"constant"} }); err != nil {
		t.Fatal(err)
	}
	ix.Add("/a", []byte("whatever"))
	if !ix.Lookup("constant").Any() {
		t.Fatal("custom tokenizer not used")
	}
	if ix.Lookup("whatever").Any() {
		t.Fatal("default tokenizer still in effect")
	}
}

// Changing how content maps to terms is only allowed on an empty store:
// both calls fail with a typed *vfs.PathError wrapping ErrNotEmpty once
// a document has been indexed — even a tombstoned one, since its slots
// still hold old-tokenizer terms.
func TestTokenizerAndTransducerLockedAfterAdd(t *testing.T) {
	ix := New()
	if err := ix.RegisterTransducer("", PathTransducer); err != nil {
		t.Fatalf("RegisterTransducer on empty index: %v", err)
	}
	ix.Add("/a", []byte("word"))
	err := ix.SetTokenizer(func([]byte) []string { return nil })
	if !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("SetTokenizer err = %v, want ErrNotEmpty", err)
	}
	var pe *vfs.PathError
	if !errors.As(err, &pe) {
		t.Fatalf("SetTokenizer err %T, want *vfs.PathError", err)
	}
	err = ix.RegisterTransducer(".eml", EmailTransducer)
	if !errors.Is(err, ErrNotEmpty) || !errors.As(err, &pe) {
		t.Fatalf("RegisterTransducer err = %v, want *vfs.PathError wrapping ErrNotEmpty", err)
	}
	// A removed document does not unlock the store: its slot survives
	// until a merge, still carrying old terms.
	ix.Remove("/a")
	if err := ix.SetTokenizer(func([]byte) []string { return nil }); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("SetTokenizer after Remove err = %v, want ErrNotEmpty", err)
	}
}

func BenchmarkAdd(b *testing.B) {
	content := []byte("the quick brown fox jumps over the lazy dog repeatedly and often")
	b.ReportAllocs()
	ix := New()
	for i := 0; i < b.N; i++ {
		ix.Add(fmt.Sprintf("/f%d", i), content)
	}
}

func BenchmarkLookup(b *testing.B) {
	ix := New()
	for i := 0; i < 10000; i++ {
		ix.Add(fmt.Sprintf("/f%d", i), []byte(fmt.Sprintf("common term%d", i%100)))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Lookup("common")
	}
}
