package index

import "hacfs/internal/bitset"

// LookupFuzzy returns the live documents containing any term within
// edit distance 1 of the given term (insertion, deletion, substitution,
// or adjacent transposition), plus exact matches. This is the
// approximate matching that made Glimpse — the paper's CBA engine —
// distinctive; the query language spells it "~term".
func (ix *Index) LookupFuzzy(term string) *bitset.Segmented {
	term = normalizeTerm(term)
	out := bitset.NewSegmented()
	if term == "" {
		return out
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ix.eachSegmentLocked(func(s *segment) {
		var acc *bitset.Bitmap
		for candidate, bm := range s.postings {
			if withinOneEdit(term, candidate) {
				if acc == nil {
					acc = bm.Clone()
				} else {
					acc.Or(bm)
				}
			}
		}
		if acc != nil {
			acc.AndNot(s.dead)
			out.PutSeg(s.id, acc)
		}
	})
	return out
}

// withinOneEdit reports whether a and b are equal or one
// Damerau–Levenshtein edit apart. It runs in O(len) with no
// allocation.
func withinOneEdit(a, b string) bool {
	la, lb := len(a), len(b)
	if la > lb {
		a, b, la, lb = b, a, lb, la
	}
	switch lb - la {
	case 0:
		// Same length: zero or one substitution, or one transposition.
		diff := -1
		for i := 0; i < la; i++ {
			if a[i] != b[i] {
				if diff >= 0 {
					// Second mismatch: only OK as the tail of an
					// adjacent transposition.
					if diff == i-1 && a[diff] == b[i] && a[i] == b[diff] {
						// Check the remainder is identical.
						return a[i+1:] == b[i+1:]
					}
					return false
				}
				diff = i
			}
		}
		return true
	case 1:
		// One insertion into a (the shorter) yields b.
		i, j := 0, 0
		skipped := false
		for i < la {
			if a[i] == b[j] {
				i++
				j++
				continue
			}
			if skipped {
				return false
			}
			skipped = true
			j++ // skip one byte of b
		}
		return true
	default:
		return false
	}
}
