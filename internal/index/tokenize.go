package index

import (
	"sort"
	"strings"
	"unicode"
)

// Term length bounds: shorter terms are noise, longer ones are almost
// certainly binary garbage.
const (
	minTermLen = 2
	maxTermLen = 40
)

// Tokenize is the default tokenizer: it splits content into maximal
// runs of letters and digits, lowercased. Runs outside the length
// bounds are dropped.
func Tokenize(content []byte) []string {
	var out []string
	start := -1
	flush := func(end int) {
		if start < 0 {
			return
		}
		if n := end - start; n >= minTermLen && n <= maxTermLen {
			out = append(out, strings.ToLower(string(content[start:end])))
		}
		start = -1
	}
	for i, b := range content {
		if isTermByte(b) {
			if start < 0 {
				start = i
			}
		} else {
			flush(i)
		}
	}
	flush(len(content))
	return out
}

func isTermByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}

// normalizeTerm canonicalizes a query term the same way Tokenize
// canonicalizes document terms.
func normalizeTerm(term string) string {
	return strings.ToLower(strings.TrimFunc(term, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	}))
}

func sortStrings(s []string) { sort.Strings(s) }
