package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"hacfs/internal/bitset"
	"hacfs/internal/vfs"
)

// naiveDocsUnder is the pre-composite-index oracle: scan every doc
// entry and test its path.
func naiveDocsUnder(ix *Index, root string) *bitset.Segmented {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := bitset.NewSegmented()
	ix.eachSegmentLocked(func(s *segment) {
		for local, d := range s.docs {
			if d.alive && vfs.HasPrefix(d.path, root) {
				out.Add(makeID(s.id, uint32(local)))
			}
		}
	})
	return out
}

// randomCorpusIndex builds an index with a few directory levels and
// enough churn (updates, removes, renames, merges) to exercise the
// composite index maintenance paths.
func randomCorpusIndex(t *testing.T, rng *rand.Rand, n int) (*Index, []string) {
	t.Helper()
	ix := New()
	ix.SetSealThreshold(16) // force multi-segment layouts
	var paths []string
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("/d%d/s%d/f%03d.txt", rng.Intn(4), rng.Intn(3), i)
		ix.Add(p, []byte(fmt.Sprintf("alpha beta w%d", i%7)))
		paths = append(paths, p)
	}
	// Churn: updates, removes, renames.
	for i := 0; i < n/4; i++ {
		switch rng.Intn(3) {
		case 0:
			ix.Add(paths[rng.Intn(len(paths))], []byte("alpha updated"))
		case 1:
			ix.Remove(paths[rng.Intn(len(paths))])
		case 2:
			j := rng.Intn(len(paths))
			np := fmt.Sprintf("/moved/s%d/f%03dr.txt", rng.Intn(3), j)
			if ix.RenamePath(paths[j], np) {
				paths[j] = np
			}
		}
	}
	if rng.Intn(2) == 0 {
		ix.ForceMerge()
	}
	return ix, paths
}

func TestDocsUnderMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	roots := []string{"/", "/d0", "/d1/s2", "/moved", "/moved/s1", "/nowhere", "/d2/s0"}
	for trial := 0; trial < 30; trial++ {
		ix, paths := randomCorpusIndex(t, rng, 60)
		checks := append([]string{}, roots...)
		// A file path as scope selects the file itself.
		checks = append(checks, paths[rng.Intn(len(paths))])
		for _, root := range checks {
			got := ix.DocsUnder(root)
			want := naiveDocsUnder(ix, root)
			if !got.Equal(want) {
				t.Fatalf("trial %d: DocsUnder(%q) = %v, want %v", trial, root, got, want)
			}
			if c := ix.DocsUnderCount(root); c != want.Len() {
				t.Fatalf("trial %d: DocsUnderCount(%q) = %d, want %d", trial, root, c, want.Len())
			}
		}
	}
}

func TestSnapshotDocsUnderMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		ix, paths := randomCorpusIndex(t, rng, 60)
		sn := ix.Snapshot()
		for _, root := range []string{"/", "/d0", "/d2/s1", "/moved", paths[rng.Intn(len(paths))]} {
			got := sn.DocsUnder(root)
			want := naiveDocsUnder(ix, root)
			if !got.Equal(want) {
				t.Fatalf("trial %d: snapshot DocsUnder(%q) = %v, want %v", trial, root, got, want)
			}
		}
	}
}

func TestLookupUnderMatchesLookupAndScope(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		ix, _ := randomCorpusIndex(t, rng, 80)
		sn := ix.Snapshot()
		for _, term := range []string{"alpha", "w3", "updated", "missing"} {
			for _, root := range []string{"/", "/d0", "/d1/s1", "/moved", "/nowhere"} {
				got, _ := sn.LookupUnder(term, root)
				want := sn.Lookup(term)
				want.And(sn.DocsUnder(root))
				if !got.Equal(want) {
					t.Fatalf("trial %d: LookupUnder(%q, %q) = %v, want %v",
						trial, term, root, got, want)
				}
			}
		}
	}
}

func TestLookupUnderSkipsOutOfScopeSegments(t *testing.T) {
	ix := New()
	ix.SetSealThreshold(4)
	for i := 0; i < 8; i++ {
		ix.Add(fmt.Sprintf("/a/f%d.txt", i), []byte("common"))
	}
	for i := 0; i < 8; i++ {
		ix.Add(fmt.Sprintf("/b/f%d.txt", i), []byte("common"))
	}
	sn := ix.Snapshot()
	got, skipped := sn.LookupUnder("common", "/a")
	if got.Len() != 8 {
		t.Fatalf("LookupUnder found %d docs, want 8", got.Len())
	}
	if skipped < 8 {
		t.Fatalf("scope pruning skipped %d postings, want >= 8 (the /b segments)", skipped)
	}
}

func TestVersionAdvancesOnMutations(t *testing.T) {
	ix := New()
	v0 := ix.Version()
	ix.Add("/a/f.txt", []byte("x"))
	v1 := ix.Version()
	if v1 <= v0 {
		t.Fatalf("Add did not advance version: %d -> %d", v0, v1)
	}
	ix.RenamePath("/a/f.txt", "/b/f.txt")
	v2 := ix.Version()
	if v2 <= v1 {
		t.Fatalf("RenamePath did not advance version: %d -> %d", v1, v2)
	}
	ix.Remove("/b/f.txt")
	v3 := ix.Version()
	if v3 <= v2 {
		t.Fatalf("Remove did not advance version: %d -> %d", v2, v3)
	}
	if ix.Version() != v3 {
		t.Fatalf("Version moved without a mutation")
	}
}

func TestVersionAdvancesOnMerge(t *testing.T) {
	ix := New()
	ix.SetSealThreshold(4)
	for i := 0; i < 12; i++ {
		ix.Add(fmt.Sprintf("/f%d.txt", i), []byte("x"))
	}
	v := ix.Version()
	ix.ForceMerge()
	if ix.Version() <= v {
		t.Fatalf("ForceMerge did not advance version")
	}
}

func TestDirsSurviveSaveLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	ix, paths := randomCorpusIndex(t, rng, 50)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, root := range []string{"/", "/d0", "/d1/s1", "/moved", paths[0]} {
		got := loaded.DocsUnder(root)
		want := naiveDocsUnder(loaded, root)
		if !got.Equal(want) {
			t.Fatalf("after load: DocsUnder(%q) = %v, want %v", root, got, want)
		}
	}
	// Postings round-trip through the packed codec.
	if got, want := loaded.Lookup("alpha").Len(), ix.Lookup("alpha").Len(); got != want {
		t.Fatalf("after load: Lookup(alpha) = %d docs, want %d", got, want)
	}
}
