package index

import (
	"bytes"
	"strings"

	"hacfs/internal/vfs"
)

// A Transducer extracts attribute terms from a document, in the spirit
// of the Semantic File System's transducers (discussed in §5 of the
// paper): beyond the plain words produced by the tokenizer, a
// transducer can emit typed attribute terms such as "from:alice" or
// "ext:eml" that queries can then use directly.
//
// Attribute terms deliberately contain a colon, which the tokenizer
// never emits, so they cannot collide with content words.
type Transducer func(path string, content []byte) []string

// RegisterTransducer attaches a transducer to a file extension (with
// the dot, e.g. ".eml"). The empty extension registers a transducer
// that runs on every document. Like SetTokenizer, it must be called
// before any documents are indexed: registering late would leave the
// existing documents silently missing the new attribute terms, so once
// the store is non-empty it fails with a *vfs.PathError wrapping
// ErrNotEmpty.
func (ix *Index) RegisterTransducer(ext string, t Transducer) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.totalSlots > 0 {
		return &vfs.PathError{Op: "registertransducer", Path: "index", Err: ErrNotEmpty}
	}
	ix.registerTransducerLocked(ext, t)
	return nil
}

// registerTransducerLocked installs the transducer without the
// empty-store check; LoadIndex uses it to attach transducers to a
// freshly decoded image before handing the index out.
func (ix *Index) registerTransducerLocked(ext string, t Transducer) {
	if ix.transducers == nil {
		ix.transducers = make(map[string][]Transducer)
	}
	ix.transducers[strings.ToLower(ext)] = append(ix.transducers[strings.ToLower(ext)], t)
}

// applyTransducers collects attribute terms for one document. Caller
// must not hold ix.mu (transducers are read under the lock, run
// outside it).
func (ix *Index) applyTransducers(path string, content []byte) []string {
	ix.mu.RLock()
	if ix.transducers == nil {
		ix.mu.RUnlock()
		return nil
	}
	ext := strings.ToLower(pathExt(path))
	ts := make([]Transducer, 0, 4)
	ts = append(ts, ix.transducers[""]...)
	if ext != "" {
		ts = append(ts, ix.transducers[ext]...)
	}
	ix.mu.RUnlock()

	var out []string
	for _, t := range ts {
		out = append(out, t(path, content)...)
	}
	return out
}

func pathExt(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		switch p[i] {
		case '.':
			return p[i:]
		case '/':
			return ""
		}
	}
	return ""
}

// EmailTransducer extracts from:, to: and subject: attributes from
// RFC-822-style headers ("from alice" or "From: alice" on a line of its
// own before the first blank line).
func EmailTransducer(path string, content []byte) []string {
	var out []string
	for _, line := range bytes.Split(content, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			break // end of headers
		}
		for _, h := range []string{"from", "to", "subject"} {
			rest, ok := headerValue(line, h)
			if !ok {
				continue
			}
			for _, w := range Tokenize(rest) {
				out = append(out, h+":"+w)
			}
		}
	}
	return out
}

// headerValue matches "name value" or "Name: value" at the start of a
// line, case-insensitively.
func headerValue(line []byte, name string) ([]byte, bool) {
	if len(line) < len(name)+1 {
		return nil, false
	}
	if !strings.EqualFold(string(line[:len(name)]), name) {
		return nil, false
	}
	rest := line[len(name):]
	switch rest[0] {
	case ' ', '\t':
		return rest[1:], true
	case ':':
		return bytes.TrimLeft(rest[1:], " \t"), true
	}
	return nil, false
}

// PathTransducer emits attributes derived from the document's path:
// ext:<extension> and name:<basename words>. Register it under the
// empty extension to annotate every document.
func PathTransducer(path string, _ []byte) []string {
	out := []string{}
	if ext := pathExt(path); ext != "" {
		out = append(out, "ext:"+strings.ToLower(ext[1:]))
	}
	base := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		base = path[i+1:]
	}
	for _, w := range Tokenize([]byte(base)) {
		out = append(out, "name:"+w)
	}
	return out
}

// SourceTransducer extracts crude structural attributes from C-like
// source files: include:<header> for #include lines and lang:c.
func SourceTransducer(path string, content []byte) []string {
	out := []string{"lang:c"}
	for _, line := range bytes.Split(content, []byte{'\n'}) {
		trimmed := bytes.TrimSpace(line)
		if !bytes.HasPrefix(trimmed, []byte("#include")) {
			continue
		}
		for _, w := range Tokenize(trimmed[len("#include"):]) {
			out = append(out, "include:"+w)
		}
	}
	return out
}
