package index

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

func TestIndexSaveLoadRoundTrip(t *testing.T) {
	ix := New()
	mt := time.Date(2026, 5, 1, 10, 0, 0, 0, time.UTC)
	ix.AddWithTime("/a", []byte("apple banana"), mt)
	ix.AddWithTime("/b", []byte("banana cherry"), mt.Add(time.Hour))
	ix.Add("/c", []byte("cherry"))
	ix.Remove("/c") // tombstone: must not survive the image

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.NumDocs() != 2 || loaded.Universe() != 2 {
		t.Fatalf("loaded docs = %d universe = %d", loaded.NumDocs(), loaded.Universe())
	}
	for _, term := range []string{"apple", "banana", "cherry"} {
		want := ix.Paths(ix.Lookup(term))
		got := loaded.Paths(loaded.Lookup(term))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: loaded %v, want %v", term, got, want)
		}
	}
	// Tombstoned term gone entirely.
	if loaded.Lookup("cherry").Len() != 1 {
		t.Fatalf("cherry matches = %d, want 1", loaded.Lookup("cherry").Len())
	}
	// Modification times survive (SyncTree staleness detection works).
	id, _ := loaded.IDOf("/a")
	if p, ok := loaded.PathOf(id); !ok || p != "/a" {
		t.Fatalf("PathOf = %q, %v", p, ok)
	}
	// Incremental updates still work on the loaded index.
	loaded.Add("/d", []byte("date"))
	if !loaded.Lookup("date").Any() {
		t.Fatal("loaded index rejects new documents")
	}
}

func TestIndexSaveLoadEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New().Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDocs() != 0 {
		t.Fatalf("docs = %d", loaded.NumDocs())
	}
}

func TestLoadIndexRejectsGarbage(t *testing.T) {
	if _, err := LoadIndex(bytes.NewReader([]byte("not an index"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestIndexSaveLoadPreservesModTimes(t *testing.T) {
	ix := New()
	mt := time.Date(2026, 6, 2, 0, 0, 0, 0, time.UTC)
	ix.AddWithTime("/f", []byte("word"), mt)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	loaded.mu.RLock()
	got := loaded.docs[0].modTime
	loaded.mu.RUnlock()
	if !got.Equal(mt) {
		t.Fatalf("modTime = %v, want %v", got, mt)
	}
}
