package index

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"reflect"
	"testing"
	"time"

	"hacfs/internal/vfs"
)

func TestIndexSaveLoadRoundTrip(t *testing.T) {
	ix := New()
	mt := time.Date(2026, 5, 1, 10, 0, 0, 0, time.UTC)
	ix.AddWithTime("/a", []byte("apple banana"), mt)
	ix.AddWithTime("/b", []byte("banana cherry"), mt.Add(time.Hour))
	ix.Add("/c", []byte("cherry"))
	ix.Remove("/c") // tombstone: must not survive the image

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.NumDocs() != 2 || loaded.Universe() != 2 {
		t.Fatalf("loaded docs = %d universe = %d", loaded.NumDocs(), loaded.Universe())
	}
	for _, term := range []string{"apple", "banana", "cherry"} {
		want := ix.Paths(ix.Lookup(term))
		got := loaded.Paths(loaded.Lookup(term))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: loaded %v, want %v", term, got, want)
		}
	}
	// Tombstoned term gone entirely.
	if loaded.Lookup("cherry").Len() != 1 {
		t.Fatalf("cherry matches = %d, want 1", loaded.Lookup("cherry").Len())
	}
	// Modification times survive (SyncTree staleness detection works).
	id, _ := loaded.IDOf("/a")
	if p, ok := loaded.PathOf(id); !ok || p != "/a" {
		t.Fatalf("PathOf = %q, %v", p, ok)
	}
	// Incremental updates still work on the loaded index.
	loaded.Add("/d", []byte("date"))
	if !loaded.Lookup("date").Any() {
		t.Fatal("loaded index rejects new documents")
	}
}

func TestIndexSaveLoadEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New().Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDocs() != 0 {
		t.Fatalf("docs = %d", loaded.NumDocs())
	}
}

func TestLoadIndexRejectsGarbage(t *testing.T) {
	if _, err := LoadIndex(bytes.NewReader([]byte("not an index"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

// blockStarts walks the framed blocks of a saved image and returns
// each block's byte offset (container first, then segments).
func blockStarts(img []byte) []int {
	var starts []int
	for off := 0; off+18 <= len(img); {
		starts = append(starts, off)
		off += 14 + int(binary.BigEndian.Uint64(img[off+6:off+14])) + 4
	}
	return starts
}

// multiSegmentIndex builds an index whose image has several segment
// blocks: a low seal threshold forces sealing every two documents.
func multiSegmentIndex(tb testing.TB) *Index {
	tb.Helper()
	ix := New()
	ix.SetSealThreshold(2)
	for i := 0; i < 6; i++ {
		ix.Add(fmt.Sprintf("/f%d", i), []byte(fmt.Sprintf("shared term%d", i)))
	}
	return ix
}

// TestLoadIndexSkipsDamagedSegment pins the containment contract: a bit
// flip inside one segment block's payload costs that segment only. The
// partial index is returned together with a typed error, and the intact
// segments' documents all still resolve.
func TestLoadIndexSkipsDamagedSegment(t *testing.T) {
	ix := multiSegmentIndex(t)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	starts := blockStarts(img)
	if len(starts) < 3 {
		t.Fatalf("expected container + ≥2 segment blocks, got %d blocks", len(starts))
	}
	mut := append([]byte(nil), img...)
	mut[starts[1]+14+5] ^= 0xff // payload byte of the first segment block

	loaded, err := LoadIndex(bytes.NewReader(mut))
	if loaded == nil {
		t.Fatalf("partial index discarded entirely: %v", err)
	}
	if err == nil {
		t.Fatal("segment damage went unreported")
	}
	var pe *vfs.PathError
	if !errors.Is(err, ErrCorruptIndex) || !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *vfs.PathError wrapping ErrCorruptIndex", err)
	}
	if got := loaded.NumDocs(); got == 0 || got >= ix.NumDocs() {
		t.Fatalf("partial load holds %d docs, want strictly between 0 and %d", got, ix.NumDocs())
	}
	// Every surviving document fully resolves.
	for _, p := range loaded.Paths(loaded.Lookup("shared")) {
		if id, ok := loaded.IDOf(p); !ok {
			t.Fatalf("surviving doc %s has no ID", p)
		} else if rp, ok := loaded.PathOf(id); !ok || rp != p {
			t.Fatalf("surviving doc %s round-trips to %q, %v", p, rp, ok)
		}
	}
	// The lost documents can simply be re-added (how hac's settling
	// reindex recovers them).
	loaded.Add("/f0", []byte("shared term0"))
	if !loaded.Lookup("term0").Any() {
		t.Fatal("partial index rejects re-added documents")
	}
}

// TestLoadIndexTornTailKeepsEarlierSegments: truncation inside a later
// segment block loses the stream position — the error wraps
// ErrBlockFraming so embedding callers treat the stream as torn — but
// the segments already read still come back.
func TestLoadIndexTornTailKeepsEarlierSegments(t *testing.T) {
	ix := multiSegmentIndex(t)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	starts := blockStarts(img)
	if len(starts) < 3 {
		t.Fatalf("expected container + ≥2 segment blocks, got %d blocks", len(starts))
	}
	cut := starts[2] + 7 // mid-header of the second segment block
	loaded, err := LoadIndex(bytes.NewReader(img[:cut]))
	if !errors.Is(err, ErrBlockFraming) || !errors.Is(err, ErrCorruptIndex) {
		t.Fatalf("err = %v, want ErrBlockFraming wrapping ErrCorruptIndex", err)
	}
	if loaded == nil || loaded.NumDocs() == 0 {
		t.Fatal("torn tail discarded the intact earlier segments")
	}
}

// legacyIndexImage writes a version-2 monolithic image: one frame whose
// gob stream is header, then docs, then postings — what the
// pre-segmented format looked like.
func legacyIndexImage(t *testing.T, docs []docImage, posts []postingImage) []byte {
	t.Helper()
	var payload bytes.Buffer
	enc := gob.NewEncoder(&payload)
	if err := enc.Encode(&legacyHeader{Version: legacyIndexVersion, Docs: len(docs), Terms: len(posts)}); err != nil {
		t.Fatal(err)
	}
	for i := range docs {
		if err := enc.Encode(&docs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range posts {
		if err := enc.Encode(&posts[i]); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	var hdr [14]byte
	copy(hdr[:4], indexMagic[:])
	binary.BigEndian.PutUint16(hdr[4:6], legacyIndexVersion)
	binary.BigEndian.PutUint64(hdr[6:14], uint64(payload.Len()))
	out.Write(hdr[:])
	out.Write(payload.Bytes())
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], crc32.Checksum(payload.Bytes(), indexCRC))
	out.Write(trailer[:])
	return out.Bytes()
}

// TestLoadIndexLegacyV2 is the migration path: a version-2 monolithic
// image loads into a single sealed segment, queries work, and
// incremental updates resume in a fresh active segment.
func TestLoadIndexLegacyV2(t *testing.T) {
	mt := time.Date(2026, 1, 15, 9, 0, 0, 0, time.UTC)
	img := legacyIndexImage(t,
		[]docImage{{Path: "/a", ModTime: mt, Size: 12}, {Path: "/b", ModTime: mt, Size: 13}},
		[]postingImage{{Term: "apple", IDs: []uint32{0}}, {Term: "banana", IDs: []uint32{0, 1}}},
	)
	loaded, err := LoadIndex(bytes.NewReader(img))
	if err != nil {
		t.Fatalf("legacy image rejected: %v", err)
	}
	if loaded.NumDocs() != 2 {
		t.Fatalf("docs = %d, want 2", loaded.NumDocs())
	}
	if got := loaded.Paths(loaded.Lookup("banana")); !reflect.DeepEqual(got, []string{"/a", "/b"}) {
		t.Fatalf("banana = %v", got)
	}
	if got := loaded.Paths(loaded.Lookup("apple")); !reflect.DeepEqual(got, []string{"/a"}) {
		t.Fatalf("apple = %v", got)
	}
	id, ok := loaded.IDOf("/a")
	if !ok {
		t.Fatal("legacy doc lost its ID")
	}
	if seg, _ := splitID(id); seg != 0 {
		t.Fatalf("legacy docs should land in segment 0, got %d", seg)
	}
	loaded.Add("/c", []byte("cherry"))
	if !loaded.Lookup("cherry").Any() {
		t.Fatal("migrated index rejects new documents")
	}
	// Saving the migrated index produces a current-format image.
	var again bytes.Buffer
	if err := loaded.Save(&again); err != nil {
		t.Fatal(err)
	}
	re, err := LoadIndex(&again)
	if err != nil {
		t.Fatalf("re-saved migrated index rejected: %v", err)
	}
	if re.NumDocs() != 3 {
		t.Fatalf("re-saved migrated index: docs = %d, want 3", re.NumDocs())
	}
}

func TestIndexSaveLoadPreservesModTimes(t *testing.T) {
	ix := New()
	mt := time.Date(2026, 6, 2, 0, 0, 0, 0, time.UTC)
	ix.AddWithTime("/f", []byte("word"), mt)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	id, ok := loaded.IDOf("/f")
	if !ok {
		t.Fatal("loaded index lost /f")
	}
	seg, local := splitID(id)
	loaded.mu.RLock()
	got := loaded.bySeg[seg].docs[local].modTime
	loaded.mu.RUnlock()
	if !got.Equal(mt) {
		t.Fatalf("modTime = %v, want %v", got, mt)
	}
}
