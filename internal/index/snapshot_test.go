package index

import (
	"fmt"
	"testing"
)

// TestSnapshotStableIDsAcrossMerge pins the central DocID contract: a
// snapshot is taken, a compaction is forced underneath it, and every ID
// issued before the merge still resolves — through the forward tables
// on the index, and through the provenance chains on the snapshot — to
// the same document in both directions.
func TestSnapshotStableIDsAcrossMerge(t *testing.T) {
	ix := New()
	ix.SetSealThreshold(4)
	const n = 24
	ids := make(map[string]DocID, n)
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("/d/f%02d.txt", i)
		ix.Add(p, []byte(fmt.Sprintf("common unique%02d", i)))
		id, ok := ix.IDOf(p)
		if !ok {
			t.Fatalf("IDOf(%s) missing after Add", p)
		}
		ids[p] = id
	}
	snap := ix.Snapshot()

	// Delete a third of the documents, then compact everything.
	removed := make(map[string]bool)
	for i := 0; i < n; i += 3 {
		p := fmt.Sprintf("/d/f%02d.txt", i)
		if !ix.Remove(p) {
			t.Fatalf("Remove(%s) found nothing", p)
		}
		removed[p] = true
	}
	ix.ForceMerge()

	for p, id := range ids {
		got, ok := ix.PathOf(id)
		if removed[p] {
			if ok {
				t.Fatalf("%s was removed but PathOf(%#x) = %q", p, id, got)
			}
			continue
		}
		if !ok || got != p {
			t.Fatalf("PathOf(%#x) = %q, %v; want %q", id, got, ok, p)
		}
		// The pinned snapshot resolves both directions too: the ID it
		// issued maps to the path, and the path maps back to the same
		// pre-merge ID even though byPath now holds the merged one.
		if sp, ok := snap.PathOf(id); !ok || sp != p {
			t.Fatalf("snapshot PathOf(%#x) = %q, %v; want %q", id, sp, ok, p)
		}
		if sid, ok := snap.IDOf(p); !ok || sid != id {
			t.Fatalf("snapshot IDOf(%s) = %#x, %v; want %#x", p, sid, ok, id)
		}
	}
}

// TestSnapshotResultSurvivesMerge evaluates against a pinned snapshot,
// lets a merge commit between the lookup and the path resolution, and
// checks the result set still resolves exactly — the multi-call query
// evaluation the snapshot exists for.
func TestSnapshotResultSurvivesMerge(t *testing.T) {
	ix := New()
	ix.SetSealThreshold(3)
	var want []string
	for i := 0; i < 12; i++ {
		p := fmt.Sprintf("/x/a%02d", i)
		ix.Add(p, []byte("apple"))
		want = append(want, p)
	}
	snap := ix.Snapshot()
	res := snap.Lookup("apple")

	// The merge retires every sealed segment the result references.
	ix.ForceMerge()
	got := snap.Paths(res)
	if len(got) != len(want) {
		t.Fatalf("Paths after merge = %v, want %d docs", got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Paths[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// The index's own Paths degrades gracefully on the old result set
	// as well, via the forward tables.
	if got := ix.Paths(res); len(got) != len(want) {
		t.Fatalf("index Paths on pre-merge result = %v, want %d docs", got, len(want))
	}
}

// TestSnapshotFreezesIDSpace checks that documents added after the pin
// are invisible to the snapshot, while deletions after the pin take
// effect immediately (liveness is call-time, the ID space is not).
func TestSnapshotFreezesIDSpace(t *testing.T) {
	ix := New()
	ix.Add("/a", []byte("apple"))
	ix.Add("/b", []byte("apple"))
	snap := ix.Snapshot()

	ix.Add("/c", []byte("apple")) // post-pin: outside the frozen space
	ix.Remove("/b")               // post-pin: stops matching immediately

	if got := snap.Paths(snap.Lookup("apple")); len(got) != 1 || got[0] != "/a" {
		t.Fatalf("pinned lookup = %v, want [/a]", got)
	}
	if _, ok := snap.IDOf("/c"); ok {
		t.Fatal("snapshot resolved a document committed after the pin")
	}
	if epoch := snap.Epoch(); epoch != ix.Snapshot().Epoch() {
		t.Fatalf("epoch moved without a merge: %d vs %d", epoch, ix.Snapshot().Epoch())
	}
}
