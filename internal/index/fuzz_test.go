package index

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

// FuzzTokenize checks the tokenizer's contract on arbitrary bytes: no
// panics, every term within length bounds, lowercase, and only
// alphanumeric bytes.
func FuzzTokenize(f *testing.F) {
	for _, s := range []string{
		"", "hello world", "CamelCase42", "a", strings.Repeat("x", 100),
		"\x00\xff\xfe", "tab\tsep", "mixed123abc!@#", "ünïcödé",
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, content []byte) {
		for _, term := range Tokenize(content) {
			if len(term) < minTermLen || len(term) > maxTermLen {
				t.Fatalf("term %q violates length bounds", term)
			}
			for i := 0; i < len(term); i++ {
				b := term[i]
				ok := b >= 'a' && b <= 'z' || b >= '0' && b <= '9'
				if !ok {
					t.Fatalf("term %q contains non-lowercase-alnum byte %q", term, b)
				}
			}
		}
	})
}

// segmentSeedBlock saves a small index and strips the container block,
// leaving one valid framed segment block for the fuzz corpus.
func segmentSeedBlock(tb testing.TB) []byte {
	tb.Helper()
	ix := New()
	ix.Add("/a", []byte("apple banana"))
	ix.Add("/b", []byte("banana cherry"))
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	img := buf.Bytes()
	off := 14 + int(binary.BigEndian.Uint64(img[6:14])) + 4
	if off >= len(img) {
		tb.Fatal("saved image has no segment block")
	}
	return img[off:]
}

// FuzzLoadSegment feeds arbitrary bytes — seeded with a valid segment
// block and systematic corruptions of it — to the per-segment decoder.
// The contract: exactly one of (image, error) comes back, errors wrap
// ErrCorruptIndex, and a decoded image never references slots outside
// its own document table (the invariant installSegment relies on).
func FuzzLoadSegment(f *testing.F) {
	blk := segmentSeedBlock(f)
	f.Add(blk)
	f.Add([]byte{})
	f.Add(blk[:13])
	f.Add(blk[:len(blk)/2])
	f.Add(blk[:len(blk)-1])
	flipped := append([]byte(nil), blk...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("HACS not a segment"))

	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := loadSegmentBlock(bytes.NewReader(data))
		switch {
		case img != nil && err != nil:
			t.Fatalf("both image and error returned: %v", err)
		case img == nil && err == nil:
			t.Fatal("neither image nor error returned")
		case err != nil:
			if !errors.Is(err, ErrCorruptIndex) {
				t.Fatalf("err = %v, does not wrap ErrCorruptIndex", err)
			}
		default:
			for _, pi := range img.Postings {
				for _, l := range pi.IDs {
					if int(l) >= len(img.Docs) {
						t.Fatalf("posting %q references slot %d of %d", pi.Term, l, len(img.Docs))
					}
				}
			}
		}
	})
}

// FuzzWithinOneEdit cross-checks the fast edit-distance predicate
// against the reference implementation on arbitrary short strings.
func FuzzWithinOneEdit(f *testing.F) {
	f.Add("apple", "aple")
	f.Add("", "")
	f.Add("ab", "ba")
	f.Add("xyz", "zyx")
	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > 12 || len(b) > 12 {
			return // keep the O(n²) reference cheap
		}
		got := withinOneEdit(a, b)
		want := damerau(a, b) <= 1
		if got != want {
			t.Fatalf("withinOneEdit(%q, %q) = %v, reference says %v", a, b, got, want)
		}
	})
}
