package index

import (
	"strings"
	"testing"
)

// FuzzTokenize checks the tokenizer's contract on arbitrary bytes: no
// panics, every term within length bounds, lowercase, and only
// alphanumeric bytes.
func FuzzTokenize(f *testing.F) {
	for _, s := range []string{
		"", "hello world", "CamelCase42", "a", strings.Repeat("x", 100),
		"\x00\xff\xfe", "tab\tsep", "mixed123abc!@#", "ünïcödé",
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, content []byte) {
		for _, term := range Tokenize(content) {
			if len(term) < minTermLen || len(term) > maxTermLen {
				t.Fatalf("term %q violates length bounds", term)
			}
			for i := 0; i < len(term); i++ {
				b := term[i]
				ok := b >= 'a' && b <= 'z' || b >= '0' && b <= '9'
				if !ok {
					t.Fatalf("term %q contains non-lowercase-alnum byte %q", term, b)
				}
			}
		}
	})
}

// FuzzWithinOneEdit cross-checks the fast edit-distance predicate
// against the reference implementation on arbitrary short strings.
func FuzzWithinOneEdit(f *testing.F) {
	f.Add("apple", "aple")
	f.Add("", "")
	f.Add("ab", "ba")
	f.Add("xyz", "zyx")
	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > 12 || len(b) > 12 {
			return // keep the O(n²) reference cheap
		}
		got := withinOneEdit(a, b)
		want := damerau(a, b) <= 1
		if got != want {
			t.Fatalf("withinOneEdit(%q, %q) = %v, reference says %v", a, b, got, want)
		}
	})
}
